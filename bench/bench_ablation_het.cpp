// Ablation bench (beyond the paper's figures): the eight Het selection
// variants, platform by platform.
//
// The paper reports only that Het simulates all eight and that "80% of
// the time the performance of Het was in fact obtained thanks to a
// global resource selection". This bench regenerates that statistic and
// shows the per-variant makespans, making the design choice DESIGN.md
// calls out (global vs local, look-ahead, C-cost) measurable.
#include <iostream>
#include <map>

#include "common.hpp"
#include "sched/het.hpp"
#include "util/table.hpp"

using namespace hmxp;

int main(int argc, char** argv) {
  const auto args = bench::parse_bench_args(
      argc, argv, "Ablation: the eight Het selection variants");
  if (!args) return 0;

  struct Case {
    std::string name;
    platform::Platform plat;
    matrix::Partition part;
  };
  util::Rng rng(20080220);
  std::vector<Case> cases;
  cases.push_back({"memory", platform::hetero_memory(),
                   bench::paper_partition(800)});
  cases.push_back({"links", platform::hetero_links(),
                   bench::paper_partition(800)});
  cases.push_back({"compute", platform::hetero_compute(),
                   bench::paper_partition(800)});
  cases.push_back({"ratio-4", platform::fully_hetero(4.0),
                   bench::paper_partition(1000)});
  if (!args->quick) {
    for (int i = 1; i <= 4; ++i) {
      util::Rng child = rng.fork();
      cases.push_back({"random-" + std::to_string(i),
                       platform::random_platform(child),
                       bench::paper_partition(1000)});
    }
  }

  const auto variants = sched::all_het_variants();
  std::vector<std::string> headers{"platform"};
  for (const auto& variant : variants) headers.push_back(variant.name());
  headers.push_back("winner");
  util::Table table(std::move(headers));
  table.set_align(0, util::Align::kLeft);

  std::map<std::string, int> wins;
  int global_wins = 0;
  for (const Case& entry : cases) {
    const sched::HetSelection selection =
        sched::select_het(entry.plat, entry.part);
    auto row = table.build_row();
    row.cell(entry.name);
    for (const double makespan : selection.variant_makespans)
      row.cell(makespan / selection.predicted_makespan, 3);
    row.cell(selection.variant.name());
    row.done();
    wins[selection.variant.name()] += 1;
    if (selection.variant.global) ++global_wins;
  }

  std::cout << "== Het variant ablation (makespan / best, per platform) ==\n";
  table.print(std::cout);
  std::cout << "\nGlobal selection wins " << global_wins << "/" << cases.size()
            << " platforms (paper: ~80% global)\n";
  return 0;
}
