// Section 3 reproduction: the communication-to-computation bounds and
// the maximum re-use algorithm (Figures 2-3 and the surrounding
// analysis).
//
// Prints (1) the paper's m = 21, mu = 4 walkthrough, (2) the CCR of the
// maximum re-use algorithm measured in simulation against the closed
// forms and both lower bounds across a memory sweep, and (3) the
// layout comparison against Toledo's thirds layout (the sqrt(3) gap).
#include <cmath>
#include <iostream>

#include "common.hpp"
#include "model/bounds.hpp"
#include "sched/maxreuse.hpp"
#include "sim/scheduler.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

using namespace hmxp;

int main(int argc, char** argv) {
  const auto args = bench::parse_bench_args(
      argc, argv, "Section 3: CCR bounds and the maximum re-use layout");
  if (!args) return 0;

  // --- The paper's walkthrough: m = 21 buffers.
  std::cout << "== Fig. 2/3: maximum re-use layout walkthrough (m = 21) ==\n";
  const model::BlockCount m21 = 21;
  const model::BlockCount mu = model::max_reuse_mu(m21);
  std::cout << "mu = " << mu << " (1 buffer for A, " << mu << " for B, "
            << mu * mu << " for C; 1 + mu + mu^2 = "
            << model::max_reuse_footprint(mu) << " <= 21)\n\n";

  // --- CCR sweep: simulated algorithm vs closed forms vs bounds.
  std::cout << "== CCR vs memory (t = 100 blocks, simulated vs theory) ==\n";
  util::Table table({"m", "mu", "CCR sim", "2/t+2/mu", "2/sqrt(m)",
                     "Toledo CCR", "bound sqrt(27/8m)", "ITT sqrt(1/8m)",
                     "sim/bound"});
  const auto part = matrix::Partition::from_blocks(84, 100, 84, 80);
  for (const model::BlockCount m :
       {21LL, 57LL, 157LL, 507LL, 1807LL, 4557LL}) {
    // Platform memory m; r and s chosen divisible by common mu values so
    // the simulated CCR is exact, not edge-affected.
    const auto plat = platform::Platform::homogeneous(1, 1.0, 1.0, m);
    sched::MaxReuseScheduler scheduler(plat, part);
    const sim::RunResult run = sim::simulate(scheduler, plat, part);
    table.build_row()
        .cell(static_cast<long long>(m))
        .cell(static_cast<long long>(scheduler.mu()))
        .cell(run.ccr(), 4)
        .cell(model::max_reuse_ccr(m, 100), 4)
        .cell(model::max_reuse_ccr_closed_form(m), 4)
        .cell(model::toledo_ccr(m, 100), 4)
        .cell(model::ccr_lower_bound(m), 4)
        .cell(model::ccr_lower_bound_itt(m), 4)
        .cell(run.ccr() / model::ccr_lower_bound(m), 3)
        .done();
  }
  table.print(std::cout);

  std::cout << "\nAsymptotics: maxreuse / lower-bound -> sqrt(32/27) = "
            << util::format_fixed(std::sqrt(32.0 / 27.0), 4)
            << "; Toledo / maxreuse -> sqrt(3) = "
            << util::format_fixed(std::sqrt(3.0), 4) << "\n";
  const model::BlockCount big = 1000000;
  std::cout << "At m = 10^6: maxreuse/bound = "
            << util::format_fixed(
                   model::max_reuse_ccr_asymptotic(big) /
                       model::ccr_lower_bound(big),
                   4)
            << ", Toledo/maxreuse = "
            << util::format_fixed(model::toledo_ccr_asymptotic(big) /
                                      model::max_reuse_ccr_asymptotic(big),
                                  4)
            << "\n";
  return 0;
}
