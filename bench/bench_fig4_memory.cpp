// Figure 4 reproduction: heterogeneous memory.
//
// Platform: 8 workers with uniform links and speeds and memories
// {2 x 256 MiB, 4 x 512 MiB, 2 x 1 GiB}; A is 8000x8000 and B grows from
// 8000x64000 to 8000x128000 (s = 800..1600 blocks of q = 80).
// Paper shape: ODDOML and Het achieve the best makespans, OMMOML is
// about twice as bad, the rest ~20% off; in relative work OMMOML is
// thriftiest and ORROML/BMM are worst.
#include "common.hpp"

using namespace hmxp;

int main(int argc, char** argv) {
  const auto args = bench::parse_bench_args(
      argc, argv, "Figure 4: heterogeneous memory experiment");
  if (!args) return 0;
  auto instances = bench::fig4_instances();
  if (args->quick) instances.erase(instances.begin() + 1, instances.end());
  bench::report_experiment("Fig. 4: heterogeneous memory", instances,
                           args->csv_prefix);
  return 0;
}
