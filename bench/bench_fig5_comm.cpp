// Figure 5 reproduction: heterogeneous communication links.
//
// Platform: 8 workers, uniform speeds and memories (1 GiB), links in the
// paper's 10:5:1 ratio {2 fast, 4 medium, 2 slow}.
// Paper shape: Het and HomI excellent; Hom under-enrolls badly (its
// virtual platform assumes the worst link for everyone); BMM has the
// worst makespan and, with no resource selection, the worst work.
#include "common.hpp"

using namespace hmxp;

int main(int argc, char** argv) {
  const auto args = bench::parse_bench_args(
      argc, argv, "Figure 5: heterogeneous communication links experiment");
  if (!args) return 0;
  auto instances = bench::fig5_instances();
  if (args->quick) instances.erase(instances.begin() + 1, instances.end());
  bench::report_experiment("Fig. 5: heterogeneous communication links",
                           instances, args->csv_prefix);
  return 0;
}
