// Figure 6 reproduction: heterogeneous computation speeds.
//
// Platform: 8 workers, uniform links and memories (1 GiB), speeds
// {2 x S, 4 x S/2, 2 x S/4}.
// Paper shape: Het best; BMM performs rather well (its finer chunks
// balance heterogeneous speeds) but stays behind Het; ODDOML good;
// OMMOML ~2x off; relative-work gaps widen as the paper notes.
#include "common.hpp"

using namespace hmxp;

int main(int argc, char** argv) {
  const auto args = bench::parse_bench_args(
      argc, argv, "Figure 6: heterogeneous computation speeds experiment");
  if (!args) return 0;
  auto instances = bench::fig6_instances();
  if (args->quick) instances.erase(instances.begin() + 1, instances.end());
  bench::report_experiment("Fig. 6: heterogeneous computation speeds",
                           instances, args->csv_prefix);
  return 0;
}
