// Figure 7 reproduction: fully heterogeneous platforms.
//
// Twelve platforms: link/speed/memory each taking two values with ratio
// 2 (first column) or 4 (second), the eight workers enumerating the
// combinations; then ten random platforms with per-axis ratios up to 4.
// B is 8000x80000 (s = 1000).
// Paper shape: Het best on all but ~2 platforms and within ~9% there;
// every other algorithm is at least once >40% off; ODDOML reasonable in
// cost but poor in work.
#include "common.hpp"
#include "util/flags.hpp"

using namespace hmxp;

int main(int argc, char** argv) {
  util::Flags flags;
  flags.define("csv", "", "prefix for CSV output files (empty: no CSV)");
  flags.define_bool("quick", false, "only the two ratio platforms");
  flags.define("seed", "20080220", "seed for the ten random platforms");
  flags.parse(argc, argv);
  if (flags.help_requested()) {
    std::cout << flags.usage("Figure 7: fully heterogeneous platforms");
    return 0;
  }
  auto instances = bench::fig7_instances(
      static_cast<std::uint64_t>(flags.get_int("seed")));
  if (flags.get_bool("quick"))
    instances.erase(instances.begin() + 2, instances.end());
  std::optional<std::string> csv;
  if (!flags.get_string("csv").empty()) csv = flags.get_string("csv");
  std::cout << "[seed " << flags.get_int("seed") << " for random platforms]\n";
  bench::report_experiment("Fig. 7: fully heterogeneous platforms", instances,
                           csv);
  return 0;
}
