// Figure 8 reproduction: the real twenty-worker Lyon platform.
//
// Twenty workers (four homogeneous groups of five P4-class nodes), in
// the August 2007 configuration (all nodes upgraded to 1 GiB) and the
// November 2006 configuration (the 5013-GM and IDE250W groups still at
// 256 MiB). B is 8000x320000 (s = 4000 blocks).
// Paper shape: on the upgraded cluster all algorithms but BMM are close
// and the selecting ones enroll ~11 of 20 workers; on the 2006 cluster
// the memory heterogeneity separates them like Fig. 4, with Het working
// essentially on the 1 GiB workers.
#include "common.hpp"
#include "util/flags.hpp"

using namespace hmxp;

int main(int argc, char** argv) {
  util::Flags flags;
  flags.define("csv", "", "prefix for CSV output files (empty: no CSV)");
  flags.define("s", "4000", "width of B in blocks (paper: 4000)");
  flags.define_bool("quick", false, "use s = 1000 for a fast smoke run");
  flags.parse(argc, argv);
  if (flags.help_requested()) {
    std::cout << flags.usage("Figure 8: real platform (20 workers)");
    return 0;
  }
  const std::size_t s = flags.get_bool("quick")
                            ? 1000u
                            : static_cast<std::size_t>(flags.get_int("s"));
  std::optional<std::string> csv;
  if (!flags.get_string("csv").empty()) csv = flags.get_string("csv");
  bench::report_experiment("Fig. 8: real platform (s = " + std::to_string(s) +
                               " blocks)",
                           bench::fig8_instances(s), csv);
  return 0;
}
