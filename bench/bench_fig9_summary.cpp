// Figure 9 reproduction: summary over every experiment.
//
// Re-runs the Fig. 4-8 instance sets and aggregates, per algorithm, the
// relative cost and relative work; then prints the paper's headline
// comparisons for Het, ODDOML (best dynamic heuristic on our layout)
// and BMM (Toledo layout):
//   * our layout (ODDOML) vs Toledo's (BMM): ~19% mean gain in the paper;
//   * Het vs BMM: ~27%;
//   * Het's mean distance from the best makespan: ~1%, worst 14%
//     (ODDOML 61%, BMM 128%);
//   * steady-state upper bound vs Het throughput: mean 2.29x, worst 3.42x.
#include "common.hpp"
#include "util/stats.hpp"

using namespace hmxp;

int main(int argc, char** argv) {
  const auto args = bench::parse_bench_args(
      argc, argv, "Figure 9: summary of all experiments");
  if (!args) return 0;

  std::vector<core::Instance> instances;
  const auto append = [&](std::vector<core::Instance> extra) {
    for (auto& instance : extra) instances.push_back(std::move(instance));
  };
  if (args->quick) {
    auto f4 = bench::fig4_instances();
    f4.erase(f4.begin() + 1, f4.end());
    append(std::move(f4));
  } else {
    append(bench::fig4_instances());
    append(bench::fig5_instances());
    append(bench::fig6_instances());
    append(bench::fig7_instances(20080220));
    append(bench::fig8_instances(2000));  // trimmed from 4000 to keep the
                                          // summary bench under a minute
  }

  const auto& algorithms = core::paper_algorithms();
  const auto results = core::run_experiment(instances, algorithms);
  const auto summaries = core::summarize(results, algorithms);

  std::cout << "== Fig. 9: summary over " << instances.size()
            << " instances ==\n\n";
  util::Table table({"algorithm", "rel cost mean", "rel cost max",
                     "rel work mean", "rel work max", "mean enrolled",
                     "bound/achieved mean", "bound/achieved max"});
  table.set_align(0, util::Align::kLeft);
  for (const auto& summary : summaries) {
    table.build_row()
        .cell(summary.label)
        .cell(summary.relative_cost.mean(), 3)
        .cell(summary.relative_cost.max(), 3)
        .cell(summary.relative_work.mean(), 3)
        .cell(summary.relative_work.max(), 3)
        .cell(summary.enrolled.mean(), 1)
        .cell(summary.bound_over_achieved.mean(), 2)
        .cell(summary.bound_over_achieved.max(), 2)
        .done();
  }
  table.print(std::cout);

  const auto find = [&](core::Algorithm algorithm) -> const auto& {
    for (const auto& summary : summaries)
      if (summary.algorithm == algorithm) return summary;
    throw std::logic_error("missing summary");
  };
  const auto& het = find("Het");
  const auto& oddoml = find("ODDOML");
  const auto& bmm = find("BMM");

  std::cout << "\nHeadline comparisons (paper values in parentheses):\n";
  std::cout << "  layout gain, BMM vs ODDOML mean rel cost: "
            << util::format_fixed(
                   100.0 * (bmm.relative_cost.mean() /
                                oddoml.relative_cost.mean() -
                            1.0),
                   1)
            << "% (paper ~19%)\n";
  std::cout << "  Het vs BMM mean rel cost gain:            "
            << util::format_fixed(
                   100.0 * (bmm.relative_cost.mean() /
                                het.relative_cost.mean() -
                            1.0),
                   1)
            << "% (paper ~27%)\n";
  std::cout << "  Het mean distance from best:              "
            << util::format_fixed(100.0 * (het.relative_cost.mean() - 1.0), 1)
            << "% (paper ~1%), worst "
            << util::format_fixed(100.0 * (het.relative_cost.max() - 1.0), 1)
            << "% (paper 14%)\n";
  std::cout << "  ODDOML worst distance from best:          "
            << util::format_fixed(100.0 * (oddoml.relative_cost.max() - 1.0),
                                  1)
            << "% (paper 61%)\n";
  std::cout << "  BMM worst distance from best:             "
            << util::format_fixed(100.0 * (bmm.relative_cost.max() - 1.0), 1)
            << "% (paper 128%)\n";
  std::cout << "  steady-state bound / Het throughput:      mean "
            << util::format_fixed(het.bound_over_achieved.mean(), 2)
            << "x (paper 2.29x), worst "
            << util::format_fixed(het.bound_over_achieved.max(), 2)
            << "x (paper 3.42x)\n";
  return 0;
}
