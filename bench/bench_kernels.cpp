// google-benchmark microbenchmarks backing the calibration constants:
// GEMM kernel rates per dispatch tier (the w_i of the model), engine
// decision throughput (the cost of Het's 8-variant simulation), the
// pooled online runtime, and the simplex solver.
//
// Unless --benchmark_out is given, results are also written to
// BENCH_kernels.json (google-benchmark's JSON schema) in the working
// directory, so CI keeps a machine-readable perf trajectory across PRs.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <array>
#include <atomic>
#include <cstdint>
#include <cstring>
#include <iostream>
#include <memory>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "common.hpp"
#include "core/run.hpp"
#include "matrix/gemm.hpp"
#include "matrix/kernel_dispatch.hpp"
#include "model/steady_state.hpp"
#include "platform/generator.hpp"
#include "runtime/executor.hpp"
#include "sched/demand_driven.hpp"
#include "sched/registry.hpp"
#include "service/client.hpp"
#include "service/daemon.hpp"
#include "sim/scheduler.hpp"
#include "util/rng.hpp"

namespace {

using namespace hmxp;

void report_gflops(benchmark::State& state, std::size_t n) {
  state.counters["GFlop/s"] = benchmark::Counter(
      matrix::gemm_flops(n, n, n) * static_cast<double>(state.iterations()) /
          1e9,
      benchmark::Counter::kIsRate);
}

void BM_GemmNaive(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  util::Rng rng(1);
  const auto a = matrix::Matrix::random(n, n, rng);
  const auto b = matrix::Matrix::random(n, n, rng);
  matrix::Matrix c(n, n, 0.0);
  for (auto _ : state) {
    matrix::gemm_naive(a.view(), b.view(), c.view());
    benchmark::DoNotOptimize(c.data());
  }
  report_gflops(state, n);
}
BENCHMARK(BM_GemmNaive)->Arg(80);

void BM_GemmTiled(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  util::Rng rng(2);
  const auto a = matrix::Matrix::random(n, n, rng);
  const auto b = matrix::Matrix::random(n, n, rng);
  matrix::Matrix c(n, n, 0.0);
  for (auto _ : state) {
    matrix::gemm_tiled(a.view(), b.view(), c.view());
    benchmark::DoNotOptimize(c.data());
  }
  report_gflops(state, n);
}
BENCHMARK(BM_GemmTiled)->Arg(80)->Arg(160)->Arg(320)->Arg(512)->Arg(1024);

/// Stamps which micro-kernel the packed tier ran (one-hot avx512 /
/// avx2 counters) and the blocking it used, so per-tier GFLOP/s in
/// BENCH_kernels.json is attributable to a configuration.
void report_packed_config(benchmark::State& state) {
  state.counters["avx512"] =
      std::strcmp(matrix::packed_kernel_variant(), "avx512") == 0 ? 1 : 0;
  state.counters["avx2"] =
      std::strcmp(matrix::packed_kernel_variant(), "avx2+fma") == 0 ? 1 : 0;
  const matrix::BlockingParams blocking = matrix::active_blocking();
  state.counters["mc"] = static_cast<double>(blocking.mc);
  state.counters["kc"] = static_cast<double>(blocking.kc);
  state.counters["nc"] = static_cast<double>(blocking.nc);
}

void BM_GemmSimd(benchmark::State& state) {
  // The packed micro-kernel path with whatever micro-kernel the host
  // dispatches and the AUTOTUNED blocking (counters mc/kc/nc say which
  // won); BM_GemmSimdFixedBlocking below is the hardcoded-120/256/512
  // baseline this must never fall below.
  const auto n = static_cast<std::size_t>(state.range(0));
  util::Rng rng(2);
  const auto a = matrix::Matrix::random(n, n, rng);
  const auto b = matrix::Matrix::random(n, n, rng);
  matrix::Matrix c(n, n, 0.0);
  for (auto _ : state) {
    matrix::gemm_simd(a.view(), b.view(), c.view());
    benchmark::DoNotOptimize(c.data());
  }
  report_gflops(state, n);
  report_packed_config(state);
}
BENCHMARK(BM_GemmSimd)->Arg(80)->Arg(160)->Arg(320)->Arg(512)->Arg(1024);

void BM_GemmSimdFixedBlocking(benchmark::State& state) {
  // The packed path pinned to the historical hardcoded blocking
  // (120/256/512): the no-regression baseline for the autotuner.
  // BM_GemmSimd GFLOP/s >= this, shape by shape, is the honest-win
  // criterion the tuning cache answers for.
  const auto n = static_cast<std::size_t>(state.range(0));
  util::Rng rng(2);
  const auto a = matrix::Matrix::random(n, n, rng);
  const auto b = matrix::Matrix::random(n, n, rng);
  matrix::Matrix c(n, n, 0.0);
  for (auto _ : state) {
    matrix::gemm_simd_with_blocking(a.view(), b.view(), c.view(),
                                    matrix::kDefaultBlocking);
    benchmark::DoNotOptimize(c.data());
  }
  report_gflops(state, n);
}
BENCHMARK(BM_GemmSimdFixedBlocking)->Arg(512)->Arg(1024);

void BM_GemmAvx512(benchmark::State& state) {
  // The AVX-512 8x8 micro-kernel, explicitly pinned. Registered from
  // main() only when the host can execute it, so the benchmark (and
  // the CI filter entry naming it) simply does not exist elsewhere.
  const auto n = static_cast<std::size_t>(state.range(0));
  util::Rng rng(2);
  const auto a = matrix::Matrix::random(n, n, rng);
  const auto b = matrix::Matrix::random(n, n, rng);
  matrix::Matrix c(n, n, 0.0);
  const auto previous = matrix::forced_micro_kernel_variant();
  matrix::force_micro_kernel_variant(matrix::MicroKernelVariant::kAvx512);
  for (auto _ : state) {
    matrix::gemm_simd(a.view(), b.view(), c.view());
    benchmark::DoNotOptimize(c.data());
  }
  report_gflops(state, n);
  report_packed_config(state);
  matrix::force_micro_kernel_variant(previous);
}

void BM_GemmSimdPortable(benchmark::State& state) {
  // Same packed path pinned to the portable micro-kernel: what the
  // "simd" tier delivers on a host without AVX2 (must be no slower
  // than the tiled baseline).
  const auto n = static_cast<std::size_t>(state.range(0));
  util::Rng rng(2);
  const auto a = matrix::Matrix::random(n, n, rng);
  const auto b = matrix::Matrix::random(n, n, rng);
  matrix::Matrix c(n, n, 0.0);
  matrix::force_portable_micro_kernel(true);
  for (auto _ : state) {
    matrix::gemm_simd(a.view(), b.view(), c.view());
    benchmark::DoNotOptimize(c.data());
  }
  matrix::force_portable_micro_kernel(false);
  report_gflops(state, n);
}
BENCHMARK(BM_GemmSimdPortable)->Arg(320)->Arg(512);

void BM_GemmParallel(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  util::Rng rng(3);
  const auto a = matrix::Matrix::random(n, n, rng);
  const auto b = matrix::Matrix::random(n, n, rng);
  matrix::Matrix c(n, n, 0.0);
  for (auto _ : state) {
    matrix::gemm_parallel(a.view(), b.view(), c.view());
    benchmark::DoNotOptimize(c.data());
  }
  report_gflops(state, n);
}
BENCHMARK(BM_GemmParallel)->Arg(320)->Arg(1024);

void BM_BlockUpdate(benchmark::State& state) {
  // One q x q block update: the atom whose cost is w_i in the model.
  const std::size_t q = 80;
  util::Rng rng(4);
  const auto a = matrix::Matrix::random(q, q, rng);
  const auto b = matrix::Matrix::random(q, q, rng);
  matrix::Matrix c(q, q, 0.0);
  for (auto _ : state) {
    matrix::gemm_auto(a.view(), b.view(), c.view());
    benchmark::DoNotOptimize(c.data());
  }
}
BENCHMARK(BM_BlockUpdate);

void BM_EngineDecisionThroughput(benchmark::State& state) {
  // Full simulated run of ODDOML on the Fig. 4 platform; reports
  // scheduling decisions per second, the cost driver of Het's phase 1.
  const auto plat = platform::hetero_memory();
  const auto part = matrix::Partition::from_blocks(
      100, 100, static_cast<std::size_t>(state.range(0)), 80);
  std::size_t decisions = 0;
  for (auto _ : state) {
    auto scheduler = sched::make_oddoml(plat, part);
    sim::Engine engine(plat, part, /*record_trace=*/false);
    const sim::RunResult result = sim::run(scheduler, engine);
    decisions += result.decisions;
    benchmark::DoNotOptimize(result.makespan);
  }
  state.counters["decisions/s"] = benchmark::Counter(
      static_cast<double>(decisions), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_EngineDecisionThroughput)->Arg(400)->Arg(800);

void BM_OnlineRuntime(benchmark::State& state) {
  // End-to-end online execution: live demand-driven scheduling through
  // the threaded master loop on real matrices. Reports blocks moved
  // through the executor per second -- the perf trajectory of the
  // runtime path (channel hops, window copies, mirror bookkeeping),
  // with verification off so the reference product does not dominate.
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto plat = platform::Platform::homogeneous(4, 0.01, 0.002, 40);
  const matrix::Partition part(n, n, n, 16);
  util::Rng rng(5);
  const auto a = matrix::Matrix::random(n, n, rng);
  const auto b = matrix::Matrix::random(n, n, rng);
  matrix::Matrix c(n, n, 0.0);
  std::size_t blocks = 0;
  std::size_t updates = 0;
  std::size_t pool_allocations = 0;
  std::size_t pool_acquires = 0;
  for (auto _ : state) {
    auto scheduler = sched::make_oddoml(plat, part);
    runtime::ExecutorOptions options;
    options.verify = false;
    const runtime::ExecutorReport report =
        runtime::execute_online(scheduler, plat, part, a, b, c, options);
    blocks += static_cast<std::size_t>(report.result.comm_blocks);
    updates += report.updates_performed;
    pool_allocations = report.buffer_pool.allocations;  // last run's counts
    pool_acquires = report.buffer_pool.acquires;
    benchmark::DoNotOptimize(report.wall_seconds);
  }
  state.counters["blocks/s"] = benchmark::Counter(
      static_cast<double>(blocks), benchmark::Counter::kIsRate);
  state.counters["updates/s"] = benchmark::Counter(
      static_cast<double>(updates), benchmark::Counter::kIsRate);
  state.counters["pool_allocs"] = static_cast<double>(pool_allocations);
  state.counters["pool_acquires"] = static_cast<double>(pool_acquires);
}
BENCHMARK(BM_OnlineRuntime)
    ->Arg(160)
    ->Arg(320)
    ->Arg(640)
    ->Unit(benchmark::kMillisecond);

void BM_OnlineRuntimeProcess(benchmark::State& state) {
  // The same end-to-end online run over the PROCESS transport: one
  // forked worker process per worker, every message serialized into
  // length-prefixed frames over a socketpair. Blocks/sec against
  // BM_OnlineRuntime is the price of address-space isolation, and the
  // serde counters break it down: bytes moved across the sockets per
  // second and the master-side seconds spent encoding/decoding frames
  // per run (serde_ms), next to the pool counters the thread transport
  // reports.
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto plat = platform::Platform::homogeneous(4, 0.01, 0.002, 40);
  const matrix::Partition part(n, n, n, 16);
  util::Rng rng(5);
  const auto a = matrix::Matrix::random(n, n, rng);
  const auto b = matrix::Matrix::random(n, n, rng);
  matrix::Matrix c(n, n, 0.0);
  std::size_t blocks = 0;
  std::size_t updates = 0;
  std::size_t wire_bytes = 0;
  double serde_seconds = 0.0;
  std::size_t runs = 0;
  for (auto _ : state) {
    auto scheduler = sched::make_oddoml(plat, part);
    runtime::ExecutorOptions options;
    options.transport = runtime::TransportKind::kProcess;
    options.verify = false;
    const runtime::ExecutorReport report =
        runtime::execute_online(scheduler, plat, part, a, b, c, options);
    blocks += static_cast<std::size_t>(report.result.comm_blocks);
    updates += report.updates_performed;
    wire_bytes += report.transport_stats.bytes_sent +
                  report.transport_stats.bytes_received;
    serde_seconds += report.transport_stats.serde_seconds;
    ++runs;
    benchmark::DoNotOptimize(report.wall_seconds);
  }
  state.counters["blocks/s"] = benchmark::Counter(
      static_cast<double>(blocks), benchmark::Counter::kIsRate);
  state.counters["updates/s"] = benchmark::Counter(
      static_cast<double>(updates), benchmark::Counter::kIsRate);
  state.counters["wire_MB/s"] = benchmark::Counter(
      static_cast<double>(wire_bytes) / (1024.0 * 1024.0),
      benchmark::Counter::kIsRate);
  state.counters["serde_ms"] =
      runs > 0 ? serde_seconds * 1e3 / static_cast<double>(runs) : 0.0;
}
BENCHMARK(BM_OnlineRuntimeProcess)
    ->Arg(160)
    ->Arg(320)
    ->Unit(benchmark::kMillisecond);

void BM_OnlineRuntimeShm(benchmark::State& state) {
  // The same end-to-end online run over the zero-copy SHM transport:
  // forked worker processes sharing a pre-fork payload arena, with only
  // (slot, length) descriptors crossing the sockets. Blocks/sec against
  // BM_OnlineRuntime (thread) and BM_OnlineRuntimeProcess quantifies
  // what the arena buys back of the process transport's serialization
  // tax; zero_copy_MB/s is the payload volume that moved WITHOUT being
  // copied, wire_MB/s the descriptor traffic that replaced it, and the
  // arena counters expose slot occupancy (arena_leaked must stay 0).
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto plat = platform::Platform::homogeneous(4, 0.01, 0.002, 40);
  const matrix::Partition part(n, n, n, 16);
  util::Rng rng(5);
  const auto a = matrix::Matrix::random(n, n, rng);
  const auto b = matrix::Matrix::random(n, n, rng);
  matrix::Matrix c(n, n, 0.0);
  std::size_t blocks = 0;
  std::size_t updates = 0;
  std::size_t wire_bytes = 0;
  std::size_t zero_copy_bytes = 0;
  std::size_t arena_peak = 0;
  std::size_t arena_leaked = 0;
  double serde_seconds = 0.0;
  std::size_t runs = 0;
  for (auto _ : state) {
    auto scheduler = sched::make_oddoml(plat, part);
    runtime::ExecutorOptions options;
    options.transport = runtime::TransportKind::kShm;
    options.verify = false;
    const runtime::ExecutorReport report =
        runtime::execute_online(scheduler, plat, part, a, b, c, options);
    blocks += static_cast<std::size_t>(report.result.comm_blocks);
    updates += report.updates_performed;
    wire_bytes += report.transport_stats.bytes_sent +
                  report.transport_stats.bytes_received;
    zero_copy_bytes += report.transport_stats.bytes_zero_copied;
    arena_peak =
        std::max(arena_peak, report.transport_stats.arena_peak_slots);
    arena_leaked += report.transport_stats.arena_leaked_slots;
    serde_seconds += report.transport_stats.serde_seconds;
    ++runs;
    benchmark::DoNotOptimize(report.wall_seconds);
  }
  state.counters["blocks/s"] = benchmark::Counter(
      static_cast<double>(blocks), benchmark::Counter::kIsRate);
  state.counters["updates/s"] = benchmark::Counter(
      static_cast<double>(updates), benchmark::Counter::kIsRate);
  state.counters["wire_MB/s"] = benchmark::Counter(
      static_cast<double>(wire_bytes) / (1024.0 * 1024.0),
      benchmark::Counter::kIsRate);
  state.counters["zero_copy_MB/s"] = benchmark::Counter(
      static_cast<double>(zero_copy_bytes) / (1024.0 * 1024.0),
      benchmark::Counter::kIsRate);
  state.counters["serde_ms"] =
      runs > 0 ? serde_seconds * 1e3 / static_cast<double>(runs) : 0.0;
  state.counters["arena_peak"] = static_cast<double>(arena_peak);
  state.counters["arena_leaked"] = static_cast<double>(arena_leaked);
}
BENCHMARK(BM_OnlineRuntimeShm)
    ->Arg(160)
    ->Arg(320)
    ->Arg(640)
    ->Unit(benchmark::kMillisecond);

void BM_OnlineRuntimeTcp(benchmark::State& state) {
  // The same end-to-end online run over the loopback-TCP transport with
  // wire compression on: forked workers DIAL the master's listen socket,
  // speak the versioned handshake, and every frame crosses a real TCP
  // stream. Blocks/sec against BM_OnlineRuntimeProcess is the price of
  // the socket layer over raw socketpairs; wire_MB/s is the traffic
  // that actually hit the wire (post-compression), and compression_x is
  // the codec's ratio (raw bytes / shipped bytes) on this workload --
  // the initial C is all zeros, so result frames start out maximally
  // compressible and decay as the product fills in.
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto plat = platform::Platform::homogeneous(4, 0.01, 0.002, 40);
  const matrix::Partition part(n, n, n, 16);
  util::Rng rng(5);
  const auto a = matrix::Matrix::random(n, n, rng);
  const auto b = matrix::Matrix::random(n, n, rng);
  matrix::Matrix c(n, n, 0.0);
  std::size_t blocks = 0;
  std::size_t updates = 0;
  std::size_t wire_bytes = 0;
  std::size_t frames_compressed = 0;
  std::size_t bytes_saved = 0;
  double serde_seconds = 0.0;
  std::size_t runs = 0;
  for (auto _ : state) {
    auto scheduler = sched::make_oddoml(plat, part);
    runtime::ExecutorOptions options;
    options.transport = runtime::TransportKind::kTcp;
    options.wire_compression = true;
    options.verify = false;
    const runtime::ExecutorReport report =
        runtime::execute_online(scheduler, plat, part, a, b, c, options);
    blocks += static_cast<std::size_t>(report.result.comm_blocks);
    updates += report.updates_performed;
    wire_bytes += report.transport_stats.bytes_sent +
                  report.transport_stats.bytes_received;
    frames_compressed += report.transport_stats.frames_compressed;
    bytes_saved += report.transport_stats.bytes_saved_by_compression;
    serde_seconds += report.transport_stats.serde_seconds;
    ++runs;
    benchmark::DoNotOptimize(report.wall_seconds);
  }
  state.counters["blocks/s"] = benchmark::Counter(
      static_cast<double>(blocks), benchmark::Counter::kIsRate);
  state.counters["updates/s"] = benchmark::Counter(
      static_cast<double>(updates), benchmark::Counter::kIsRate);
  state.counters["wire_MB/s"] = benchmark::Counter(
      static_cast<double>(wire_bytes) / (1024.0 * 1024.0),
      benchmark::Counter::kIsRate);
  const double raw_bytes = static_cast<double>(wire_bytes + bytes_saved);
  state.counters["compression_x"] =
      wire_bytes > 0 ? raw_bytes / static_cast<double>(wire_bytes) : 1.0;
  state.counters["frames_compressed"] =
      static_cast<double>(frames_compressed);
  state.counters["serde_ms"] =
      runs > 0 ? serde_seconds * 1e3 / static_cast<double>(runs) : 0.0;
}
BENCHMARK(BM_OnlineRuntimeTcp)
    ->Arg(160)
    ->Arg(320)
    ->Unit(benchmark::kMillisecond);

void BM_OnlineRuntimeFaulty(benchmark::State& state) {
  // The unreliable-platform path: one of four workers is killed partway
  // through every run (its 4th operand step) and the fault-tolerant
  // demand-driven policy re-assigns the lost chunk to the survivors.
  // Blocks/sec here vs BM_OnlineRuntime is the price of recovery --
  // failure detection, channel draining, mirror rollback, re-planning.
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto plat = platform::Platform::homogeneous(4, 0.01, 0.002, 40);
  const matrix::Partition part(n, n, n, 16);
  util::Rng rng(5);
  const auto a = matrix::Matrix::random(n, n, rng);
  const auto b = matrix::Matrix::random(n, n, rng);
  matrix::Matrix c(n, n, 0.0);
  std::size_t blocks = 0;
  std::size_t updates = 0;
  std::size_t failures = 0;
  for (auto _ : state) {
    auto scheduler =
        sched::Registry::instance().make("FT-ODDOML", plat, part);
    runtime::ExecutorOptions options;
    options.verify = false;
    options.tolerate_faults = true;
    auto steps = std::make_shared<std::array<std::atomic<int>, 4>>();
    options.fault_hook = [steps](int worker, std::size_t) {
      if (worker == 1 && 1 + (*steps)[1].fetch_add(1) == 4)
        throw std::runtime_error("benchmark kill: worker 1");
    };
    const runtime::ExecutorReport report =
        runtime::execute_online(*scheduler, plat, part, a, b, c, options);
    blocks += static_cast<std::size_t>(report.result.comm_blocks);
    updates += report.updates_performed;
    failures += static_cast<std::size_t>(report.workers_failed);
    benchmark::DoNotOptimize(report.wall_seconds);
  }
  state.counters["blocks/s"] = benchmark::Counter(
      static_cast<double>(blocks), benchmark::Counter::kIsRate);
  state.counters["updates/s"] = benchmark::Counter(
      static_cast<double>(updates), benchmark::Counter::kIsRate);
  state.counters["failures"] = static_cast<double>(failures);
}
BENCHMARK(BM_OnlineRuntimeFaulty)
    ->Arg(160)
    ->Arg(320)
    ->Unit(benchmark::kMillisecond);

void BM_OnlineRuntimeStraggler(benchmark::State& state) {
  // The slow-but-alive path: one of four workers ramps to 8x its
  // nominal compute cost early in every run (compounding co-tenant
  // starvation, emulated by repeated kernel work -- not sleeps) and the
  // speculative wrapper races duplicates of its chunks on idle
  // survivors, cancelling the loser. Blocks/sec vs BM_OnlineRuntime is
  // the price of living with a degraded worker: calibration, duplicate
  // sends, cancellation drains, wasted twin updates.
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto plat = platform::Platform::homogeneous(4, 0.01, 0.002, 40);
  const matrix::Partition part(n, n, n, 16);
  util::Rng rng(6);
  const auto a = matrix::Matrix::random(n, n, rng);
  const auto b = matrix::Matrix::random(n, n, rng);
  matrix::Matrix c(n, n, 0.0);
  std::size_t blocks = 0;
  std::size_t updates = 0;
  std::size_t duplicates = 0;
  std::size_t cancelled = 0;
  for (auto _ : state) {
    auto scheduler =
        sched::Registry::instance().make("SP-ODDOML", plat, part);
    runtime::ExecutorOptions options;
    options.verify = false;
    options.perturbation =
        platform::make_ramping_straggler(1, 0.002, 0.004, 2.0, 3);
    const runtime::ExecutorReport report =
        runtime::execute_online(*scheduler, plat, part, a, b, c, options);
    blocks += static_cast<std::size_t>(report.result.comm_blocks);
    updates += report.updates_performed;
    duplicates += report.speculation.duplicates_issued;
    cancelled += report.speculation.duplicates_cancelled;
    benchmark::DoNotOptimize(report.wall_seconds);
  }
  state.counters["blocks/s"] = benchmark::Counter(
      static_cast<double>(blocks), benchmark::Counter::kIsRate);
  state.counters["updates/s"] = benchmark::Counter(
      static_cast<double>(updates), benchmark::Counter::kIsRate);
  state.counters["duplicates"] = static_cast<double>(duplicates);
  state.counters["cancelled"] = static_cast<double>(cancelled);
}
BENCHMARK(BM_OnlineRuntimeStraggler)
    ->Arg(160)
    ->Arg(320)
    ->Unit(benchmark::kMillisecond);

void BM_ServiceThroughput(benchmark::State& state) {
  // The persistent multi-job service under concurrent load: ONE daemon
  // (ONE warm fleet, pools and calibration) serves 8 client threads, 2
  // jobs each, per iteration. jobs/s against
  // BM_ServiceBaselineIndependent below -- the same 16 jobs each
  // spawning and tearing down their own 4-worker runtime -- is what the
  // service buys: no per-job worker spawn, warm buffer pools, and
  // fair-shared (not oversubscribed) cores. The daemon outlives the
  // timing loop on purpose; its spawn cost is the one-time price the
  // service amortizes.
  const int clients = 8;
  const int jobs_per_client = 2;
  service::DaemonConfig config;
  // m = 256: admission prices buffer demand against OBSERVED speeds, and
  // on a fast bench machine the calibrated working set outgrows the
  // m = 40 the sibling benches use -- give the fleet headroom so every
  // job stays admissible for the whole run.
  config.platform = platform::Platform::homogeneous(4, 0.01, 0.002, 1000000);
  config.executor.verify = false;
  config.max_payload_doubles = 256 * 256;
  config.max_concurrent_jobs = static_cast<std::size_t>(clients);
  config.queue_capacity = 64;
  config.calibration_cache = "off";  // benches never touch the user cache
  service::Daemon daemon(std::move(config));
  std::size_t jobs_served = 0;
  std::size_t failures = 0;
  for (auto _ : state) {
    std::vector<std::thread> threads;
    threads.reserve(clients);
    std::atomic<std::size_t> completed{0};
    std::atomic<std::size_t> failed{0};
    for (int t = 0; t < clients; ++t) {
      threads.emplace_back([&daemon, &completed, &failed, t] {
        service::Client client(daemon);
        for (int j = 0; j < jobs_per_client; ++j) {
          service::JobSpec spec;
          spec.n_a = spec.n_ab = spec.n_b = 48;
          spec.q = 16;
          spec.data_seed = static_cast<std::uint64_t>(t * 16 + j);
          const service::JobResult result = client.run(spec);
          if (result.state == service::JobState::kCompleted) {
            ++completed;
          } else {
            static std::atomic<bool> reported{false};
            if (!reported.exchange(true))
              std::cerr << "service job failed: state="
                        << service::job_state_name(result.state) << " error=\""
                        << result.error << "\"\n";
            ++failed;
          }
        }
      });
    }
    for (std::thread& thread : threads) thread.join();
    jobs_served += completed.load();
    failures += failed.load();
  }
  state.counters["jobs/s"] = benchmark::Counter(
      static_cast<double>(jobs_served), benchmark::Counter::kIsRate);
  state.counters["failures"] = static_cast<double>(failures);
  const runtime::BufferPool::Stats pool = daemon.fleet().pool().stats();
  state.counters["pool_allocs"] = static_cast<double>(pool.allocations);
  state.counters["pool_acquires"] = static_cast<double>(pool.acquires);
}
BENCHMARK(BM_ServiceThroughput)->Unit(benchmark::kMillisecond)->UseRealTime();

void BM_ServiceBaselineIndependent(benchmark::State& state) {
  // The no-service counterfactual for BM_ServiceThroughput: the same 8
  // concurrent clients x 2 jobs, but every job is an independent
  // run_algorithm_online -- it spawns its own 4 worker threads, warms
  // its own pools, calibrates from scratch and tears everything down.
  // Eight 4-worker runtimes oversubscribe the machine on top of paying
  // the per-job spawn; the service's jobs/s over this baseline is the
  // acceptance ratio (>= 1.5x on the reference machine).
  const int clients = 8;
  const int jobs_per_client = 2;
  const auto plat = platform::Platform::homogeneous(4, 0.01, 0.002, 1000000);
  const matrix::Partition part(48, 48, 48, 16);
  std::size_t jobs_served = 0;
  std::size_t failures = 0;
  for (auto _ : state) {
    std::vector<std::thread> threads;
    threads.reserve(clients);
    std::atomic<std::size_t> completed{0};
    std::atomic<std::size_t> failed{0};
    for (int t = 0; t < clients; ++t) {
      threads.emplace_back([&plat, &part, &completed, &failed, t] {
        for (int j = 0; j < jobs_per_client; ++j) {
          core::OnlineOptions options;
          options.verify = false;
          options.data_seed = static_cast<std::uint64_t>(t * 16 + j);
          try {
            core::run_algorithm_online("FT-ODDOML", plat, part, options);
            ++completed;
          } catch (const std::exception&) {
            ++failed;
          }
        }
      });
    }
    for (std::thread& thread : threads) thread.join();
    jobs_served += completed.load();
    failures += failed.load();
  }
  state.counters["jobs/s"] = benchmark::Counter(
      static_cast<double>(jobs_served), benchmark::Counter::kIsRate);
  state.counters["failures"] = static_cast<double>(failures);
}
BENCHMARK(BM_ServiceBaselineIndependent)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

void BM_SteadyStateSimplex(benchmark::State& state) {
  const auto plat = platform::real_platform_aug2007();
  const auto workers = plat.steady_workers();
  for (auto _ : state) {
    const auto solution = model::solve_lp(workers);
    benchmark::DoNotOptimize(solution.throughput);
  }
}
BENCHMARK(BM_SteadyStateSimplex);

void BM_BandwidthCentricGreedy(benchmark::State& state) {
  const auto plat = platform::real_platform_aug2007();
  const auto workers = plat.steady_workers();
  for (auto _ : state) {
    const auto solution = model::solve_bandwidth_centric(workers);
    benchmark::DoNotOptimize(solution.throughput);
  }
}
BENCHMARK(BM_BandwidthCentricGreedy);

}  // namespace

int main(int argc, char** argv) {
  // The committed BENCH_kernels.json is the repo's perf baseline; a
  // debug-build capture would silently poison every later comparison.
  // Unoptimized builds therefore never auto-emit the file -- an
  // explicit --benchmark_out still works, and the build type is stamped
  // into the JSON context either way so a stray capture is traceable.
#if defined(NDEBUG)
  constexpr bool optimized_build = true;
#else
  constexpr bool optimized_build = false;
#endif
  benchmark::AddCustomContext("hmxp_build_type",
                              optimized_build ? "release" : "debug");

  // --kernel / --tune mirror the figure benches (they are consumed
  // here, before google-benchmark sees the argument list): pin the
  // dispatch, set the tune mode, or force an explicit MCxKCxNC.
  std::vector<std::string> args;
  for (int i = 0; i < argc; ++i) {
    const std::string arg(argv[i]);
    if (arg.rfind("--kernel=", 0) == 0) {
      hmxp::matrix::apply_kernel_pin(arg.substr(9));
    } else if (arg.rfind("--tune=", 0) == 0) {
      hmxp::bench::apply_tune_flag(arg.substr(7));
    } else {
      args.push_back(arg);
    }
  }

  // Resolve the packed blocking up front (running the autotune search
  // now, not inside the first timed benchmark) and stamp the resulting
  // configuration into the JSON context: every GFLOP/s figure in this
  // file is attributable to a (variant, blocking, source) triple.
  {
    namespace matrix = hmxp::matrix;
    const matrix::TuneOutcome outcome =
        matrix::resolve_blocking(matrix::active_micro_kernel_variant());
    benchmark::AddCustomContext("hmxp_kernel_variant",
                                matrix::packed_kernel_variant());
    benchmark::AddCustomContext("hmxp_blocking",
                                matrix::blocking_to_string(outcome.params));
    benchmark::AddCustomContext("hmxp_blocking_source", outcome.source);
  }

  // Host-capability-gated registration: on a non-AVX-512 machine the
  // benchmark is absent rather than failing or lying.
  if (hmxp::matrix::cpu_supports_avx512())
    benchmark::RegisterBenchmark("BM_GemmAvx512", &BM_GemmAvx512)
        ->Arg(512)
        ->Arg(1024);

  bool has_out = false;
  for (const std::string& arg : args)
    if (arg == "--benchmark_out" || arg.rfind("--benchmark_out=", 0) == 0)
      has_out = true;
  if (!has_out) {
    if (!optimized_build) {
      std::cerr << "bench_kernels: DEBUG build -- refusing to auto-write "
                   "BENCH_kernels.json (numbers would be meaningless as a "
                   "baseline). Pass --benchmark_out=... explicitly to "
                   "capture anyway.\n";
    } else {
      args.push_back("--benchmark_out=BENCH_kernels.json");
      args.push_back("--benchmark_out_format=json");
    }
  }

  std::vector<char*> argv_patched;
  argv_patched.reserve(args.size());
  for (std::string& arg : args) argv_patched.push_back(arg.data());
  int argc_patched = static_cast<int>(argv_patched.size());

  benchmark::Initialize(&argc_patched, argv_patched.data());
  if (benchmark::ReportUnrecognizedArguments(argc_patched,
                                             argv_patched.data()))
    return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
