// Table 1 reproduction: the steady-state linear program.
//
// For every experimental platform, solves Table 1's LP twice (simplex
// and the closed-form bandwidth-centric greedy), prints the optimal
// throughput, the enrolled set, and the bound-to-achieved ratio of Het
// -- the section 6.3 claim that the (optimistic) bound averages 2.29x
// Het's throughput.
#include <iostream>

#include "common.hpp"
#include "core/run.hpp"
#include "model/steady_state.hpp"
#include "util/table.hpp"

using namespace hmxp;

int main(int argc, char** argv) {
  const auto args = bench::parse_bench_args(
      argc, argv, "Table 1: bandwidth-centric steady-state LP");
  if (!args) return 0;

  struct Case {
    std::string name;
    platform::Platform plat;
  };
  std::vector<Case> cases = {
      {"hetero-memory", platform::hetero_memory()},
      {"hetero-links", platform::hetero_links()},
      {"hetero-compute", platform::hetero_compute()},
      {"fully-hetero-2", platform::fully_hetero(2.0)},
      {"fully-hetero-4", platform::fully_hetero(4.0)},
      {"real-aug2007", platform::real_platform_aug2007()},
  };
  if (args->quick) cases.resize(2);

  std::cout << "== Table 1: steady-state LP per platform ==\n\n";
  util::Table table({"platform", "LP throughput", "greedy", "saturated",
                     "partial", "Het achieved", "bound/Het"});
  table.set_align(0, util::Align::kLeft);

  const auto part = bench::paper_partition(800);
  for (const Case& entry : cases) {
    const auto workers = entry.plat.steady_workers();
    const auto lp = model::solve_lp(workers);
    const auto greedy = model::solve_bandwidth_centric(workers);
    int saturated = 0, partial = 0;
    for (std::size_t i = 0; i < workers.size(); ++i) {
      if (greedy.saturated[i]) ++saturated;
      else if (greedy.x[i] > 1e-12) ++partial;
    }
    const auto het =
        core::run_algorithm("Het", entry.plat, part);
    table.build_row()
        .cell(entry.name)
        .cell(lp.throughput, 2)
        .cell(greedy.throughput, 2)
        .cell(static_cast<long long>(saturated))
        .cell(static_cast<long long>(partial))
        .cell(het.result.throughput(), 2)
        .cell(het.bound_over_achieved, 2)
        .done();
  }
  table.print(std::cout);
  std::cout << "\n(throughputs in q x q block updates per second; the LP and "
               "greedy columns must agree -- the greedy is the LP's "
               "closed-form optimum)\n";
  return 0;
}
