// Table 2 reproduction: the bandwidth-centric counterexample.
//
// The two-worker platform c = {1, x}, w = {2, 2x}, mu = {2, 2} saturates
// the port for every x, but sustaining the steady-state rates requires
// P1 to buffer ever more data while the master serves P2's long
// transfers: the buffer demand grows ~ sqrt(8x), unbounded in x, so the
// bandwidth-centric schedule is unrealizable with fixed memory -- the
// motivation for the paper's incremental selection (section 5).
#include <iostream>

#include "common.hpp"
#include "model/steady_state.hpp"
#include "util/table.hpp"

using namespace hmxp;

int main(int argc, char** argv) {
  const auto args = bench::parse_bench_args(
      argc, argv, "Table 2: bandwidth-centric infeasibility sweep");
  if (!args) return 0;

  std::cout << "== Table 2: c = {1, x}, w = {2, 2x}, mu = 2 ==\n\n";
  util::Table table({"x", "port P1", "port P2", "throughput", "P1 buffers",
                     "fits m=12?"});
  std::vector<double> sweep = {1, 2, 4, 8, 16, 32, 64, 128, 256, 1024};
  if (args->quick) sweep.resize(4);
  for (const double x : sweep) {
    const auto workers = model::table2_platform(x);
    const auto solution = model::solve_bandwidth_centric(workers);
    const auto demand = model::steady_state_buffer_demand(workers);
    // mu = 2 under the double-buffered layout needs mu^2 + 4mu = 12
    // buffers; anything above is infeasible for the Table 2 worker.
    const bool fits = demand[0] <= 12.0 + 1e-9;
    table.build_row()
        .cell(x, 0)
        .cell(solution.port_share[0], 3)
        .cell(solution.port_share[1], 3)
        .cell(solution.throughput, 4)
        .cell(demand[0], 1)
        .cell(fits ? "yes" : "NO")
        .done();
  }
  table.print(std::cout);
  std::cout
      << "\nBoth workers always saturate the port (shares sum to 1), yet\n"
         "P1's buffer demand grows without bound: the steady-state optimum\n"
         "cannot be realized with limited memory, exactly as Table 2 argues.\n";
  return 0;
}
