#include "common.hpp"

#include <sstream>

#include "matrix/kernel_dispatch.hpp"
#include "matrix/tuning.hpp"
#include "util/check.hpp"
#include "util/csv.hpp"

namespace hmxp::bench {

matrix::Partition paper_partition(std::size_t s_blocks) {
  return matrix::Partition::from_blocks(100, 100, s_blocks, 80);
}

const std::vector<std::size_t>& paper_size_sweep() {
  static const std::vector<std::size_t> sizes = {800, 1000, 1200, 1400, 1600};
  return sizes;
}

namespace {
std::vector<core::Instance> size_sweep_instances(
    const platform::Platform& plat) {
  std::vector<core::Instance> instances;
  for (const std::size_t s : paper_size_sweep()) {
    instances.push_back(core::Instance{
        "s=" + std::to_string(s), plat, paper_partition(s)});
  }
  return instances;
}
}  // namespace

std::vector<core::Instance> fig4_instances() {
  return size_sweep_instances(platform::hetero_memory());
}

std::vector<core::Instance> fig5_instances() {
  return size_sweep_instances(platform::hetero_links());
}

std::vector<core::Instance> fig6_instances() {
  return size_sweep_instances(platform::hetero_compute());
}

std::vector<core::Instance> fig7_instances(std::uint64_t seed) {
  // Two deterministic ratio platforms plus ten seeded random ones; the
  // paper fixes B = 8000x80000 here (s = 1000).
  std::vector<core::Instance> instances;
  const auto part = paper_partition(1000);
  instances.push_back(core::Instance{"ratio-2", platform::fully_hetero(2.0), part});
  instances.push_back(core::Instance{"ratio-4", platform::fully_hetero(4.0), part});
  util::Rng rng(seed);
  for (int i = 1; i <= 10; ++i) {
    util::Rng child = rng.fork();
    instances.push_back(core::Instance{
        "random-" + std::to_string(i), platform::random_platform(child), part});
  }
  return instances;
}

std::vector<core::Instance> fig8_instances(std::size_t s_blocks) {
  const auto part = paper_partition(s_blocks);
  return {
      core::Instance{"aug-2007", platform::real_platform_aug2007(), part},
      core::Instance{"nov-2006", platform::real_platform_nov2006(), part},
  };
}

void report_experiment(const std::string& title,
                       const std::vector<core::Instance>& instances,
                       const std::optional<std::string>& csv_prefix) {
  const auto& algorithms = core::paper_algorithms();
  const auto results = core::run_experiment(instances, algorithms);

  std::cout << "== " << title << " ==\n\n";
  std::cout << "(a) Relative cost (makespan / best makespan):\n";
  core::relative_cost_table(results, algorithms).print(std::cout);
  std::cout << "\n(b) Relative work (makespan x enrolled / best):\n";
  core::relative_work_table(results, algorithms).print(std::cout);
  std::cout << "\nEnrolled workers:\n";
  core::enrolled_table(results, algorithms).print(std::cout);

  // Absolute makespans give the reader the paper's "execution time"
  // sentences ("Het needs about 2000 seconds ...").
  util::Table makespans(
      [&] {
        std::vector<std::string> headers{"instance"};
        for (const auto& algorithm : algorithms)
          headers.push_back(core::algorithm_name(algorithm));
        return headers;
      }());
  makespans.set_align(0, util::Align::kLeft);
  for (const auto& instance : results) {
    auto row = makespans.build_row();
    row.cell(instance.instance_name);
    for (const auto& report : instance.reports)
      row.cell(report.result.makespan, 1);
    row.done();
  }
  std::cout << "\nAbsolute makespans (simulated seconds):\n";
  makespans.print(std::cout);
  std::cout << '\n';

  if (csv_prefix) {
    util::CsvWriter csv(*csv_prefix + ".csv");
    std::vector<std::string> header{"instance", "algorithm",
                                    "makespan_s",  "relative_cost",
                                    "relative_work", "enrolled",
                                    "comm_blocks", "ccr",
                                    "bound_over_achieved"};
    csv.header(header);
    for (const auto& instance : results) {
      for (std::size_t a = 0; a < algorithms.size(); ++a) {
        const auto& report = instance.reports[a];
        csv.build_row()
            .cell(instance.instance_name)
            .cell(report.algorithm_label)
            .cell(report.result.makespan)
            .cell(instance.relative_cost[a])
            .cell(instance.relative_work[a])
            .cell(static_cast<long long>(report.result.workers_enrolled))
            .cell(static_cast<long long>(report.result.comm_blocks))
            .cell(report.result.ccr())
            .cell(report.bound_over_achieved)
            .done();
      }
    }
    std::cout << "[csv] wrote " << *csv_prefix << ".csv\n\n";
  }
}

std::optional<BenchArgs> parse_bench_args(int argc, char** argv,
                                          const std::string& description) {
  util::Flags flags;
  flags.define("csv", "", "prefix for CSV output files (empty: no CSV)");
  flags.define_bool("quick", false, "reduced sweep for smoke runs");
  flags.define("kernel", "",
               "pin the GEMM dispatch: naive|tiled|simd|portable|avx2|"
               "avx512 (empty: auto; equivalent to HMXP_FORCE_KERNEL)");
  flags.define("tune", "",
               "packed-kernel blocking: off|auto|force|smoke, or an "
               "explicit MCxKCxNC pin like 120x256x512 (empty: "
               "HMXP_TUNE, default auto)");
  flags.parse(argc, argv);
  if (flags.help_requested()) {
    std::cout << flags.usage(description);
    return std::nullopt;
  }
  BenchArgs args;
  const std::string prefix = flags.get_string("csv");
  if (!prefix.empty()) args.csv_prefix = prefix;
  args.quick = flags.get_bool("quick");
  const std::string kernel = flags.get_string("kernel");
  // apply_kernel_pin throws listing every valid name (tier and
  // micro-kernel variant alike) on a typo or an unsupported ISA.
  if (!kernel.empty()) matrix::apply_kernel_pin(kernel);
  const std::string tune = flags.get_string("tune");
  if (!tune.empty()) apply_tune_flag(tune);
  return args;
}

void apply_tune_flag(const std::string& value) {
  if (const auto mode = matrix::parse_tune_mode(value); mode.has_value()) {
    matrix::set_tune_mode(mode);
    return;
  }
  // Not a mode name: accept an explicit MCxKCxNC blocking pin.
  matrix::BlockingParams params;
  char sep1 = '\0';
  char sep2 = '\0';
  std::istringstream stream(value);
  const bool parsed = static_cast<bool>(stream >> params.mc >> sep1 >>
                                        params.kc >> sep2 >> params.nc) &&
                      sep1 == 'x' && sep2 == 'x' && stream.eof();
  HMXP_REQUIRE(parsed,
               "--tune must be off, auto, force, smoke or MCxKCxNC (e.g. "
               "120x256x512), got \"" +
                   value + '"');
  matrix::force_blocking(params);  // validates against the active kernel
}

}  // namespace hmxp::bench
