// Shared machinery for the figure-reproduction benches: the paper's
// instance sets, table printing and optional CSV dumps.
#pragma once

#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "core/experiment.hpp"
#include "platform/generator.hpp"
#include "util/flags.hpp"

namespace hmxp::bench {

/// Paper matrix sizes: A is 8000x8000 (r = t = 100 at q = 80); B is
/// 8000 x (800 q) .. 8000 x (1600 q) for the size sweeps.
matrix::Partition paper_partition(std::size_t s_blocks);

/// The five B widths of the size sweeps (s = 800..1600 blocks,
/// i.e. B = 8000x64000 .. 8000x128000).
const std::vector<std::size_t>& paper_size_sweep();

/// Instances of each figure's experiment.
std::vector<core::Instance> fig4_instances();             // hetero memory
std::vector<core::Instance> fig5_instances();             // hetero links
std::vector<core::Instance> fig6_instances();             // hetero compute
std::vector<core::Instance> fig7_instances(std::uint64_t seed);  // fully hetero
std::vector<core::Instance> fig8_instances(std::size_t s_blocks);  // real

/// Runs an experiment and prints the paper's two charts (relative cost
/// and relative work) plus the enrolled-worker table; optionally dumps
/// CSV series next to the binary.
void report_experiment(const std::string& title,
                       const std::vector<core::Instance>& instances,
                       const std::optional<std::string>& csv_prefix);

/// Common flag setup: --csv=<prefix> to dump series, --quick for a
/// reduced sweep (used by CI-style smoke runs).
struct BenchArgs {
  std::optional<std::string> csv_prefix;
  bool quick = false;
};
std::optional<BenchArgs> parse_bench_args(int argc, char** argv,
                                          const std::string& description);

/// Applies a --tune value: a mode name (off|auto|force|smoke) sets the
/// tune mode, an explicit "MCxKCxNC" pins the blocking; anything else
/// throws std::invalid_argument.
void apply_tune_flag(const std::string& value);

}  // namespace hmxp::bench
