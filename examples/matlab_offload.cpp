// The paper's motivating scenario: a MATLAB/SCILAB-style server holds
// the matrices and offloads C <- C + A*B to whatever heterogeneous
// machines it is allowed to enroll.
//
// This example plays the server: given the cluster description, it asks
// every algorithm for a plan, prints the trade-off table (time vs
// resources used), recommends one, and then actually runs the
// recommended plan on real data through the threaded runtime.
//
// Run:  ./matlab_offload [--s=<block-cols of B>]
#include <iostream>

#include "core/experiment.hpp"
#include "platform/generator.hpp"
#include "runtime/executor.hpp"
#include "util/flags.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace hmxp;
  util::Flags flags;
  flags.define("s", "800", "width of B in q-blocks for the planning phase");
  flags.parse(argc, argv);
  if (flags.help_requested()) {
    std::cout << flags.usage("MATLAB-offload scenario");
    return 0;
  }

  // The server's view of the machines it may enroll: the paper's
  // memory-heterogeneous cluster.
  const platform::Platform plat = platform::hetero_memory();
  std::cout << "Cluster available to the server:\n" << plat.to_string() << '\n';

  // Planning phase: evaluate all seven algorithms on the full problem
  // (simulation only; nothing is sent anywhere).
  const auto s = static_cast<std::size_t>(flags.get_int("s"));
  const matrix::Partition plan_part =
      matrix::Partition::from_blocks(100, 100, s, 80);
  const core::Instance instance{"plan", plat, plan_part};
  const auto results = core::run_instance(instance, core::paper_algorithms());

  util::Table table({"algorithm", "makespan", "workers", "rel cost",
                     "rel work", "port blocks"});
  table.set_align(0, util::Align::kLeft);
  for (std::size_t i = 0; i < results.reports.size(); ++i) {
    const auto& report = results.reports[i];
    table.build_row()
        .cell(report.algorithm_label)
        .cell(util::format_duration(report.result.makespan))
        .cell(static_cast<long long>(report.result.workers_enrolled))
        .cell(results.relative_cost[i], 3)
        .cell(results.relative_work[i], 3)
        .cell(static_cast<long long>(report.result.comm_blocks))
        .done();
  }
  std::cout << "Plans for C (8000x" << s * 80 << ") += A (8000x8000) * B:\n";
  table.print(std::cout);

  // Recommendation: best makespan, ties broken by fewer workers.
  std::size_t best = 0;
  for (std::size_t i = 1; i < results.reports.size(); ++i) {
    const auto& challenger = results.reports[i];
    const auto& incumbent = results.reports[best];
    if (challenger.result.makespan < incumbent.result.makespan - 1e-9 ||
        (challenger.result.makespan < incumbent.result.makespan + 1e-9 &&
         challenger.result.workers_enrolled <
             incumbent.result.workers_enrolled))
      best = i;
  }
  const std::string chosen = results.reports[best].algorithm_label;
  std::cout << "\nRecommended: " << chosen << " ("
            << util::format_duration(results.reports[best].result.makespan)
            << " predicted, " << results.reports[best].result.workers_enrolled
            << " workers)\n\n";

  // Execution phase on a laptop-sized instance of the same shape so the
  // example finishes in seconds: same cluster, q = 8.
  const matrix::Partition exec_part(160, 160, 480, 8);
  util::Rng rng(7);
  const auto a = matrix::Matrix::random(160, 160, rng);
  const auto b = matrix::Matrix::random(160, 480, rng);
  matrix::Matrix c(160, 480, 0.0);
  const auto executed =
      runtime::run_on_data(chosen, plat, exec_part, a, b, c);
  std::cout << "Executed " << chosen << " on real data: "
            << executed.updates_performed << " block updates across "
            << executed.chunks_processed << " chunks, max |error| "
            << executed.max_abs_error << (executed.verified ? " [verified]" : "")
            << '\n';
  return 0;
}
