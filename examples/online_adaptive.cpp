// Online adaptive execution: demand-driven scheduling LIVE on the
// threaded runtime, on a platform whose speeds change mid-run.
//
//   1. describe a heterogeneous star platform and partition the
//      matrices into q x q blocks;
//   2. predict with the simulator: the same ODDOML policy on the pure
//      cost model (which knows nothing about the perturbation);
//   3. execute ONLINE: the scheduler runs inside the master loop,
//      reacting to actual completion messages, while a wall-clock
//      SlowdownSchedule decelerates workers under it mid-run (the
//      paper's deceleration trick, made time-varying);
//   4. verify C against a reference product and print the RunResult --
//      the exact shape the simulator emits -- next to the prediction.
//
// Run:  ./online_adaptive [--backend=thread|process|shm|tcp]
//                         [--speculate] [--drift-threshold=2.0]
//                         [--kernel=...] [--tune=...]
//
// --speculate wraps the live policy in the straggler-speculation layer
// (SP-ODDOML): once a worker's observed drift crosses
// --drift-threshold, its in-flight chunk is duplicated onto the best
// idle survivor, the first completion commits, and the loser is
// cancelled without killing the worker. The run then prints the
// speculation telemetry (duplicates issued / won / cancelled, wasted
// updates, raced results discarded).
//
// --backend picks the data-plane transport for step 3: worker threads
// (default), one forked worker process per worker with serialized
// frames over socketpairs -- the in-machine analogue of the companion
// report's MPI deployment -- forked workers over the zero-copy
// shared-memory arena (process isolation without the serialization
// tax), or forked workers dialing the master over loopback TCP (the
// versioned-handshake, reconnect-capable cluster rehearsal). The
// scheduler, the perturbation, and the verified result are identical
// on all four.
//
// --kernel pins the GEMM dispatch (naive|tiled|simd|portable|avx2|
// avx512); --tune sets the packed tier's blocking resolution
// (off|auto|force|smoke). On the forked backends the hello handshake
// proves every worker runs the identical tuned configuration.
#include <iostream>
#include <memory>

#include "matrix/gemm.hpp"
#include "matrix/matrix.hpp"
#include "platform/perturbation.hpp"
#include "runtime/executor.hpp"
#include "runtime/transport.hpp"
#include "sched/demand_driven.hpp"
#include "sched/speculative.hpp"
#include "sim/scheduler.hpp"
#include "util/flags.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/strings.hpp"

int main(int argc, char** argv) {
  using namespace hmxp;

  util::Flags flags;
  flags.define("backend", "thread",
               "data-plane transport for the live run: thread | process | "
               "shm | tcp");
  flags.define_bool("speculate", false,
                    "duplicate stragglers' chunks onto idle workers "
                    "(SP-ODDOML, cancel-on-first-completion)");
  flags.define("drift-threshold", "2.0",
               "observed-drift ratio that marks a worker a straggler");
  flags.define("kernel", "",
               "pin the GEMM dispatch: naive|tiled|simd|portable|avx2|"
               "avx512 (empty: auto)");
  flags.define("tune", "",
               "packed-blocking resolution: off|auto|force|smoke (empty: "
               "HMXP_TUNE, default auto)");
  flags.parse(argc, argv);
  if (flags.help_requested()) {
    std::cout << flags.usage(
        "Online adaptive execution on a drifting platform.");
    return 0;
  }
  const auto transport =
      runtime::parse_transport_kind(flags.get_string("backend"));
  if (!transport.has_value()) {
    std::cerr << "unknown --backend (want thread, process, shm or tcp)\n";
    return 1;
  }
  const std::string kernel = flags.get_string("kernel");
  if (!kernel.empty()) matrix::apply_kernel_pin(kernel);  // throws on typo
  const std::string tune = flags.get_string("tune");
  if (!tune.empty()) {
    const auto mode = matrix::parse_tune_mode(tune);
    if (!mode.has_value()) {
      std::cerr << "unknown --tune (want off, auto, force or smoke)\n";
      return 1;
    }
    matrix::set_tune_mode(mode);
  }

  // A 4-worker star platform. Units: seconds per block transferred (c),
  // seconds per block update (w), memory in blocks (m).
  std::vector<platform::WorkerSpec> workers = {
      {0.002, 0.004, 60, "fast-link"},
      {0.004, 0.002, 140, "balanced"},
      {0.010, 0.001, 320, "big-memory"},
      {0.004, 0.003, 90, "spare"},
  };
  const platform::Platform plat("online-adaptive", workers);
  std::cout << plat.to_string() << '\n';

  // C (640x960) += A (640x800) * B (800x960), in 16x16 element blocks.
  const matrix::Partition part(640, 800, 960, 16);
  std::cout << "Partition: " << part.to_string() << "  ("
            << part.total_updates() << " block updates)\n\n";

  util::Rng rng(42);
  const auto a = matrix::Matrix::random(640, 800, rng);
  const auto b = matrix::Matrix::random(800, 960, rng);
  matrix::Matrix c = matrix::Matrix::random(640, 960, rng);

  // What the model expects of this platform (no perturbation knowledge).
  auto predicted_scheduler = sched::make_oddoml(plat, part);
  const sim::RunResult predicted = sim::simulate(predicted_scheduler, plat,
                                                 part);

  // The platform drifts mid-run: the big-memory node collapses to 1/8
  // speed 30 wall-milliseconds in, the fast-link node slows 3x a little
  // later, and the big node later recovers. The online scheduler never
  // sees this schedule -- only its effects, through which workers
  // actually hand results back.
  runtime::ExecutorOptions options;
  options.transport = *transport;
  options.perturbation.add(/*worker=*/2, /*at=*/0.030, /*factor=*/8.0);
  options.perturbation.add(/*worker=*/0, /*at=*/0.060, /*factor=*/3.0);
  options.perturbation.add(/*worker=*/2, /*at=*/0.200, /*factor=*/1.0);
  options.verify = true;  // prove the adaptive schedule still computes C

  const bool speculate = flags.get_bool("speculate");
  std::unique_ptr<sim::Scheduler> live_scheduler =
      std::make_unique<sched::DemandDrivenScheduler>(
          sched::make_oddoml(plat, part));
  if (speculate)
    live_scheduler = sched::make_speculative(
        "SP-ODDOML", std::move(live_scheduler),
        sched::SpeculationOptions{flags.get_double("drift-threshold")});
  const runtime::ExecutorReport executed = runtime::execute_online(
      *live_scheduler, plat, part, a, b, c, options);

  const auto show = [&](const char* title, const sim::RunResult& result) {
    std::cout << title << " [" << result.scheduler_name << "]"
              << "\n  model makespan      "
              << util::format_duration(result.makespan)
              << "\n  decisions           " << result.decisions
              << "\n  workers enrolled    " << result.workers_enrolled
              << " of " << plat.size() << "\n  blocks through port "
              << result.comm_blocks << " (CCR "
              << util::format_fixed(result.ccr(), 4) << ")\n";
  };
  show("Simulator prediction", predicted);
  show("Online execution    ", executed.result);

  std::cout << "\nOnline run [" << executed.transport << " transport]: "
            << executed.chunks_processed << " chunks, "
            << executed.updates_performed << " block updates in "
            << util::format_fixed(executed.wall_seconds, 3)
            << " s wall; per-worker updates:";
  for (std::size_t i = 0; i < executed.updates_per_worker.size(); ++i)
    std::cout << "  " << plat.worker(static_cast<int>(i)).label << "="
              << executed.updates_per_worker[i];
  if (speculate) {
    const runtime::SpeculationStats& sp = executed.speculation;
    std::cout << "\nspeculation: " << sp.duplicates_issued
              << " duplicates issued, " << sp.duplicates_won << " won, "
              << sp.duplicates_cancelled << " cancelled; "
              << sp.wasted_updates << " updates wasted, "
              << sp.stale_results << " raced results discarded";
  }
  std::cout << "\nkernel: " << executed.kernel_variant << " blocking "
            << matrix::blocking_to_string(executed.kernel_blocking)
            << "\nmax |error| = " << executed.max_abs_error
            << (executed.verified ? "  [verified]" : "") << '\n';
  return 0;
}
