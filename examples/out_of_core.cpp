// Section 3 in action: one memory-limited worker running the maximum
// re-use algorithm -- the out-of-core view of the problem.
//
// Sweeps the worker's memory and shows how the chunk side mu, the
// communication volume and the achieved CCR follow the theory: CCR =
// 2/t + 2/mu, within sqrt(32/27) of the paper's lower bound and a
// factor ~sqrt(3) below Toledo's thirds layout.
//
// Run:  ./out_of_core
#include <iostream>

#include "model/bounds.hpp"
#include "platform/platform.hpp"
#include "sched/demand_driven.hpp"
#include "sched/maxreuse.hpp"
#include "sim/scheduler.hpp"
#include "util/table.hpp"

int main() {
  using namespace hmxp;

  const auto part = matrix::Partition::from_blocks(60, 100, 60, 80);
  std::cout << "One worker, C of 60x60 blocks, t = 100 inner steps.\n\n";

  util::Table table({"memory m", "mu", "beta", "maxreuse CCR", "2/t+2/mu",
                     "BMM CCR", "lower bound", "maxreuse/bound"});
  for (const model::BlockCount m : {21LL, 90LL, 341LL, 1121LL, 3782LL}) {
    const auto plat = platform::Platform::homogeneous(1, 1.0, 0.05, m);
    sched::MaxReuseScheduler maxreuse(plat, part);
    const sim::RunResult mr = sim::simulate(maxreuse, plat, part);
    auto bmm = sched::make_bmm(plat, part);
    const sim::RunResult toledo = sim::simulate(bmm, plat, part);
    table.build_row()
        .cell(static_cast<long long>(m))
        .cell(static_cast<long long>(model::max_reuse_mu(m)))
        .cell(static_cast<long long>(model::toledo_beta(m)))
        .cell(mr.ccr(), 4)
        .cell(model::max_reuse_ccr(m, 100), 4)
        .cell(toledo.ccr(), 4)
        .cell(model::ccr_lower_bound(m), 4)
        .cell(mr.ccr() / model::ccr_lower_bound(m), 3)
        .done();
  }
  table.print(std::cout);
  std::cout << "\nEvery extra buffer pays: CCR falls like 2/sqrt(m), and the\n"
               "maximum re-use layout tracks the lower bound within ~9-30%\n"
               "(exactly sqrt(32/27) when mu divides the matrix evenly),\n"
               "while the thirds layout trails by up to sqrt(3).\n";
  return 0;
}
