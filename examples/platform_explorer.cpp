// Platform explorer: sweep one heterogeneity axis and watch how each
// algorithm's makespan and resource selection respond -- an interactive
// way to reproduce the crossovers behind Figs. 4-6.
//
// Run:  ./platform_explorer --axis=links --points=5
//       (axes: memory | links | compute)
#include <iostream>

#include "core/experiment.hpp"
#include "platform/calibration.hpp"
#include "util/flags.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace hmxp;
  util::Flags flags;
  flags.define("axis", "links", "heterogeneity axis: memory|links|compute");
  flags.define("points", "4", "sweep points (degradation 1x .. 2^(points-1)x)");
  flags.define("s", "400", "width of B in q-blocks");
  flags.parse(argc, argv);
  if (flags.help_requested()) {
    std::cout << flags.usage("Heterogeneity sweep explorer");
    return 0;
  }
  const std::string axis = flags.get_string("axis");
  const auto points = static_cast<int>(flags.get_int("points"));
  const auto s = static_cast<std::size_t>(flags.get_int("s"));
  const matrix::Partition part =
      matrix::Partition::from_blocks(100, 100, s, 80);

  // 8 workers; half stay at the base spec, half degrade by the factor.
  const auto make_platform = [&](double factor) {
    std::vector<platform::WorkerSpec> workers;
    for (int i = 0; i < 8; ++i) {
      platform::PhysicalSpec spec;
      spec.mbps = 100.0;
      spec.gflops = 1.5;
      spec.ram_mib = 1024.0;
      spec.label = i < 4 ? "base" : "degraded";
      if (i >= 4) {
        if (axis == "memory") spec.ram_mib /= factor;
        else if (axis == "links") spec.mbps /= factor;
        else spec.gflops /= factor;
      }
      workers.push_back(platform::calibrate(spec));
    }
    return platform::Platform(axis + "-x" + util::format_fixed(factor, 1),
                              std::move(workers));
  };

  const auto& algorithms = core::paper_algorithms();
  std::vector<std::string> headers{"degradation"};
  for (const auto& algorithm : algorithms)
    headers.push_back(core::algorithm_name(algorithm));
  util::Table cost(headers);
  util::Table enrolled(headers);
  cost.set_align(0, util::Align::kLeft);
  enrolled.set_align(0, util::Align::kLeft);

  double factor = 1.0;
  for (int point = 0; point < points; ++point, factor *= 2.0) {
    const core::Instance instance{"sweep", make_platform(factor), part};
    const auto results = core::run_instance(instance, algorithms);
    auto cost_row = cost.build_row();
    auto enrolled_row = enrolled.build_row();
    cost_row.cell(util::format_fixed(factor, 1) + "x");
    enrolled_row.cell(util::format_fixed(factor, 1) + "x");
    for (std::size_t a = 0; a < algorithms.size(); ++a) {
      cost_row.cell(results.relative_cost[a], 3);
      enrolled_row.cell(static_cast<long long>(
          results.reports[a].result.workers_enrolled));
    }
    cost_row.done();
    enrolled_row.done();
  }

  std::cout << "Axis: " << axis << " (4 of 8 workers degraded)\n\n"
            << "Relative cost per degradation factor:\n";
  cost.print(std::cout);
  std::cout << "\nEnrolled workers:\n";
  enrolled.print(std::cout);
  std::cout << "\nWatch Het stay near 1.0 while fixed strategies drift as "
               "heterogeneity grows.\n";
  return 0;
}
