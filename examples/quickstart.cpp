// Quickstart: multiply two matrices on a small heterogeneous star
// platform with the paper's Het algorithm, end to end.
//
//   1. describe the platform (per-worker link cost, compute cost, memory),
//   2. partition the matrices into q x q blocks,
//   3. let Het pick its schedule (simulating its eight selection
//      variants and keeping the best),
//   4. execute that schedule for real on worker threads and verify the
//      numerical result against a reference product.
//
// Run:  ./quickstart
#include <iostream>

#include "core/run.hpp"
#include "matrix/matrix.hpp"
#include "runtime/executor.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/strings.hpp"

int main() {
  using namespace hmxp;

  // A 3-worker star platform: a fast-link small-memory node, a balanced
  // node, and a slow-link big-memory node. Units: seconds per block
  // transferred (c), seconds per block update (w), memory in blocks (m).
  std::vector<platform::WorkerSpec> workers = {
      {0.002, 0.004, 60, "fast-link"},
      {0.004, 0.002, 140, "balanced"},
      {0.010, 0.001, 320, "big-memory"},
  };
  const platform::Platform plat("quickstart", workers);
  std::cout << plat.to_string() << '\n';

  // C (200x320) += A (200x240) * B (240x320), in 8x8 element blocks.
  const std::size_t q = 8;
  const matrix::Partition part(200, 240, 320, q);
  std::cout << "Partition: " << part.to_string() << "  ("
            << part.total_updates() << " block updates)\n\n";

  util::Rng rng(42);
  const auto a = matrix::Matrix::random(200, 240, rng);
  const auto b = matrix::Matrix::random(240, 320, rng);
  matrix::Matrix c = matrix::Matrix::random(200, 320, rng);

  // Phase 1: simulate. run_algorithm reports the predicted makespan,
  // resource selection and communication volume under the paper's
  // one-port model.
  const core::RunReport report =
      core::run_algorithm("Het", plat, part);
  std::cout << "Het chose variant '" << report.het_variant->name()
            << "'\n  predicted makespan  "
            << util::format_duration(report.result.makespan)
            << "\n  workers enrolled    " << report.result.workers_enrolled
            << " of " << plat.size() << "\n  blocks through port "
            << report.result.comm_blocks << " (CCR "
            << util::format_fixed(report.result.ccr(), 4)
            << ")\n  steady-state bound  "
            << util::format_fixed(report.bound_over_achieved, 2)
            << "x above achieved throughput\n\n";

  // Phase 2: execute the same schedule on real data with one thread per
  // worker, then verify against a reference product.
  const runtime::ExecutorReport executed =
      runtime::run_on_data("Het", plat, part, a, b, c);
  std::cout << "Threaded execution: " << executed.chunks_processed
            << " chunks, " << executed.updates_performed
            << " block updates, max |error| = " << executed.max_abs_error
            << (executed.verified ? "  [verified]" : "") << '\n';
  return 0;
}
