// Persistent multi-job service demo: one long-lived daemon, a warm
// worker fleet, and several concurrent clients feeding it a queue of
// matrix-product jobs.
//
//   build/service_demo [clients] [jobs-per-client]
//
// Shows the service properties in action: jobs from many clients run
// concurrently over DISJOINT worker leases of one fleet, the buffer
// pool stays warm across jobs (later jobs allocate nothing), per-worker
// calibration accumulates, and admission rejects work the fleet cannot
// carry (a non-FT policy, an oversized payload) with a reason instead
// of wedging the queue.
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "platform/platform.hpp"
#include "service/client.hpp"
#include "service/daemon.hpp"

int main(int argc, char** argv) {
  using namespace hmxp;
  const int clients = argc > 1 ? std::atoi(argv[1]) : 4;
  const int jobs_per_client = argc > 2 ? std::atoi(argv[2]) : 3;

  service::DaemonConfig config;
  config.platform = platform::Platform::homogeneous(
      /*p=*/4, /*c=*/0.005, /*w=*/0.001, /*m=*/48);
  config.executor.verify = false;
  config.max_payload_doubles = 256 * 256;
  config.max_concurrent_jobs = 4;
  config.calibration_cache = "off";  // demo: do not touch the user cache
  service::Daemon daemon(std::move(config));
  std::printf("daemon up: %d workers, thread transport\n",
              daemon.alive_workers());

  // Admission in action: a non-fault-tolerant policy is refused.
  service::JobSpec bad;
  bad.algorithm = "ODDOML";
  bad.n_a = bad.n_ab = bad.n_b = 64;
  bad.q = 16;
  const service::JobResult refused = daemon.wait(daemon.submit(bad));
  std::printf("rejected as expected: %s\n", refused.error.c_str());

  // Concurrent clients, each a thread with its own in-process Client.
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(clients));
  for (int t = 0; t < clients; ++t) {
    threads.emplace_back([&daemon, t, jobs_per_client] {
      service::Client client(daemon);
      for (int j = 0; j < jobs_per_client; ++j) {
        service::JobSpec spec;
        spec.n_a = 96;
        spec.n_ab = 80;
        spec.n_b = 112;
        spec.q = 16;
        spec.data_seed = static_cast<std::uint64_t>(t * 100 + j);
        const service::JobResult result = client.run(spec);
        std::printf(
            "client %d job %d: %s in %.3fs (%d workers, %zu chunks, "
            "pool-allocs %zu)\n",
            t, j, service::job_state_name(result.state),
            result.wall_seconds, result.workers_used,
            result.chunks_processed, result.pool_delta.allocations);
      }
    });
  }
  for (std::thread& thread : threads) thread.join();

  std::printf("served %zu jobs; fleet still has %d workers alive\n",
              daemon.jobs_completed(), daemon.alive_workers());
  daemon.shutdown();
  return 0;
}
