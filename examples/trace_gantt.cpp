// Trace/Gantt export: run one algorithm, dump the full event trace
// (master port operations + per-worker computations) as CSV for
// plotting, and print an ASCII utilization strip per resource.
//
// Run:  ./trace_gantt --algorithm=Het --out=gantt.csv
#include <fstream>
#include <iostream>

#include "core/algorithms.hpp"
#include "platform/generator.hpp"
#include "sim/scheduler.hpp"
#include "util/flags.hpp"
#include "util/strings.hpp"

int main(int argc, char** argv) {
  using namespace hmxp;
  util::Flags flags;
  flags.define("algorithm", "Het", "one of Hom|HomI|Het|ORROML|OMMOML|ODDOML|BMM");
  flags.define("out", "gantt.csv", "CSV output path");
  flags.define("s", "200", "width of B in q-blocks");
  flags.parse(argc, argv);
  if (flags.help_requested()) {
    std::cout << flags.usage("Gantt trace exporter");
    return 0;
  }

  const platform::Platform plat = platform::hetero_compute();
  const matrix::Partition part = matrix::Partition::from_blocks(
      100, 20, static_cast<std::size_t>(flags.get_int("s")), 80);
  std::string algorithm;
  try {
    algorithm = core::algorithm_from_name(flags.get_string("algorithm"));
  } catch (const std::invalid_argument& error) {
    std::cerr << "error: " << error.what() << '\n';
    return 1;
  }
  auto scheduler = core::make_scheduler(algorithm, plat, part);
  const sim::RunResult result =
      sim::simulate(*scheduler, plat, part, /*record_trace=*/true);

  const std::string path = flags.get_string("out");
  std::ofstream out(path);
  result.trace.write_gantt_csv(out);
  std::cout << core::algorithm_name(algorithm) << " on " << plat.name()
            << ": makespan " << util::format_duration(result.makespan)
            << ", " << result.trace.comms().size() << " port ops, "
            << result.trace.computes().size() << " computes -> " << path
            << "\n\n";

  // ASCII utilization strips: 60 buckets across the makespan.
  constexpr int kBuckets = 60;
  const auto strip = [&](auto busy_in_bucket, const std::string& label) {
    std::string bar;
    for (int bucket = 0; bucket < kBuckets; ++bucket) {
      const double t0 = result.makespan * bucket / kBuckets;
      const double t1 = result.makespan * (bucket + 1) / kBuckets;
      const double busy = busy_in_bucket(t0, t1) / (t1 - t0);
      bar += busy > 0.75 ? '#' : busy > 0.25 ? '+' : busy > 0.01 ? '.' : ' ';
    }
    std::cout << util::pad_right(label, 10) << '[' << bar << "]\n";
  };

  strip(
      [&](double t0, double t1) {
        double busy = 0.0;
        for (const auto& event : result.trace.comms())
          busy += std::max(0.0, std::min(event.end, t1) -
                                    std::max(event.start, t0));
        return busy;
      },
      "master");
  for (int worker = 0; worker < plat.size(); ++worker) {
    strip(
        [&](double t0, double t1) {
          double busy = 0.0;
          for (const auto& event : result.trace.computes()) {
            if (event.worker != worker) continue;
            busy += std::max(0.0, std::min(event.end, t1) -
                                      std::max(event.start, t0));
          }
          return busy;
        },
        "P" + std::to_string(worker + 1));
  }
  std::cout << "\n('#' busy > 75%, '+' > 25%, '.' > 1%)\n";
  return 0;
}
