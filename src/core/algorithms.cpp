#include "core/algorithms.hpp"

#include <stdexcept>

#include "sched/demand_driven.hpp"
#include "sched/min_min.hpp"
#include "sched/round_robin.hpp"
#include "sched/virtual_platform.hpp"

namespace hmxp::core {

const std::vector<Algorithm>& all_algorithms() {
  static const std::vector<Algorithm> algorithms = {
      Algorithm::kHom,    Algorithm::kHomI,   Algorithm::kHet,
      Algorithm::kOrroml, Algorithm::kOmmoml, Algorithm::kOddoml,
      Algorithm::kBmm};
  return algorithms;
}

std::string algorithm_name(Algorithm algorithm) {
  switch (algorithm) {
    case Algorithm::kHom: return "Hom";
    case Algorithm::kHomI: return "HomI";
    case Algorithm::kHet: return "Het";
    case Algorithm::kOrroml: return "ORROML";
    case Algorithm::kOmmoml: return "OMMOML";
    case Algorithm::kOddoml: return "ODDOML";
    case Algorithm::kBmm: return "BMM";
  }
  return "?";
}

Algorithm algorithm_from_name(const std::string& name) {
  for (const Algorithm algorithm : all_algorithms()) {
    if (algorithm_name(algorithm) == name) return algorithm;
  }
  throw std::invalid_argument("unknown algorithm: " + name);
}

std::unique_ptr<sim::Scheduler> make_scheduler(
    Algorithm algorithm, const platform::Platform& platform,
    const matrix::Partition& partition,
    sched::HetSelection* het_selection) {
  switch (algorithm) {
    case Algorithm::kHom:
      return std::make_unique<sched::RoundRobinScheduler>(
          sched::make_hom(platform, partition));
    case Algorithm::kHomI:
      return std::make_unique<sched::RoundRobinScheduler>(
          sched::make_homi(platform, partition));
    case Algorithm::kHet:
      return std::make_unique<sim::ReplayScheduler>(
          sched::make_het(platform, partition, het_selection));
    case Algorithm::kOrroml:
      return std::make_unique<sched::RoundRobinScheduler>(
          sched::make_orroml(platform, partition));
    case Algorithm::kOmmoml:
      return std::make_unique<sched::MinMinScheduler>(
          sched::make_ommoml(platform, partition));
    case Algorithm::kOddoml:
      return std::make_unique<sched::DemandDrivenScheduler>(
          sched::make_oddoml(platform, partition));
    case Algorithm::kBmm:
      return std::make_unique<sched::DemandDrivenScheduler>(
          sched::make_bmm(platform, partition));
  }
  throw std::invalid_argument("unknown algorithm id");
}

}  // namespace hmxp::core
