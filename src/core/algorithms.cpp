#include "core/algorithms.hpp"

#include "sched/registry.hpp"

namespace hmxp::core {

std::vector<Algorithm> all_algorithms() {
  return sched::Registry::instance().names();
}

std::vector<Algorithm> paper_algorithms() {
  // Presentation order puts the paper's seven first (orders 0-6); the
  // unreliable-platform family registers at 10+.
  std::vector<Algorithm> paper;
  for (const Algorithm& name : sched::Registry::instance().names()) {
    if (sched::Registry::instance().at(name).paper_order < 10)
      paper.push_back(name);
  }
  return paper;
}

std::string algorithm_name(const Algorithm& algorithm) {
  return sched::Registry::instance().at(algorithm).name;
}

Algorithm algorithm_from_name(const std::string& name) {
  return sched::Registry::instance().at(name).name;
}

std::unique_ptr<sim::Scheduler> make_scheduler(
    const Algorithm& algorithm, const platform::Platform& platform,
    const matrix::Partition& partition,
    sched::HetSelection* het_selection) {
  return sched::Registry::instance().make(algorithm, platform, partition,
                                          het_selection);
}

}  // namespace hmxp::core
