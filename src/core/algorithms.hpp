// Thin facade over sched::Registry, the self-registering algorithm
// registry. Historically this file owned a hardcoded enum of the seven
// section-6 algorithms; the registry replaced it so that new algorithms
// plug in without touching core. An Algorithm is now simply the
// canonical registry name ("Het", "ODDOML", ...).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "matrix/partition.hpp"
#include "platform/platform.hpp"
#include "sched/het.hpp"
#include "sim/scheduler.hpp"

namespace hmxp::core {

/// Canonical algorithm name, as registered in sched::Registry.
using Algorithm = std::string;

/// Every registered algorithm, in the paper's presentation order
/// (paper columns first, then the unreliable-platform family: FT-*
/// wrappers and the calibrated min-min).
std::vector<Algorithm> all_algorithms();

/// The paper's seven section-6 columns only -- what the figure/table
/// reproduction benches iterate, so their output keeps the paper's
/// shape as the registry grows scenario-specific variants.
std::vector<Algorithm> paper_algorithms();

/// Canonical spelling of (a possibly differently-cased) `algorithm`;
/// throws std::invalid_argument listing the valid names on unknowns.
std::string algorithm_name(const Algorithm& algorithm);
/// Case-insensitive lookup returning the canonical name; throws
/// std::invalid_argument listing the valid names on unknowns.
Algorithm algorithm_from_name(const std::string& name);

/// Instantiates the scheduler (running any selection phase the
/// algorithm requires). `het_selection` (if non-null) receives the
/// phase-1 outcome of algorithms that have one (Het).
std::unique_ptr<sim::Scheduler> make_scheduler(
    const Algorithm& algorithm, const platform::Platform& platform,
    const matrix::Partition& partition,
    sched::HetSelection* het_selection = nullptr);

}  // namespace hmxp::core
