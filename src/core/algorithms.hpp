// Registry of the seven algorithms compared in section 6.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "matrix/partition.hpp"
#include "platform/platform.hpp"
#include "sched/het.hpp"
#include "sim/scheduler.hpp"

namespace hmxp::core {

enum class Algorithm {
  kHom,     // homogeneous algorithm on the best memory-threshold platform
  kHomI,    // improved Hom: (m, c, w) threshold grid
  kHet,     // the paper's heterogeneous algorithm (8-variant selection)
  kOrroml,  // overlapped round-robin, our layout
  kOmmoml,  // overlapped min-min, our layout
  kOddoml,  // overlapped demand-driven, our layout
  kBmm      // Toledo's block matrix multiply (thirds layout)
};

/// All seven, in the paper's presentation order.
const std::vector<Algorithm>& all_algorithms();

std::string algorithm_name(Algorithm algorithm);
/// Inverse of algorithm_name; throws std::invalid_argument on unknowns.
Algorithm algorithm_from_name(const std::string& name);

/// Instantiates the scheduler (running any selection phase the
/// algorithm requires). For kHet, `het_selection` (if non-null)
/// receives the phase-1 outcome.
std::unique_ptr<sim::Scheduler> make_scheduler(
    Algorithm algorithm, const platform::Platform& platform,
    const matrix::Partition& partition,
    sched::HetSelection* het_selection = nullptr);

}  // namespace hmxp::core
