#include "core/experiment.hpp"

#include <algorithm>
#include <cstdlib>
#include <limits>

#include "sched/registry.hpp"
#include "util/check.hpp"
#include "util/thread_pool.hpp"

namespace hmxp::core {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Canonical spelling for registered names, the raw spelling otherwise
/// (so tables and summaries can still label a failed unknown-name cell).
std::string display_name(const Algorithm& algorithm) {
  return sched::Registry::instance().contains(algorithm)
             ? algorithm_name(algorithm)
             : algorithm;
}

/// Runs one grid cell on the configured backend, capturing any failure
/// as text instead of letting it sink the whole grid.
void run_cell(const Instance& instance, const Algorithm& algorithm,
              const ExperimentOptions& options, RunReport& report,
              std::string& error) {
  try {
    if (options.backend == Backend::kSim) {
      report = run_algorithm(algorithm, instance.platform, instance.partition,
                             options.sim);
    } else {
      OnlineOptions online = options.online;
      online.backend = options.backend;  // the grid knob wins
      report = run_algorithm_online(algorithm, instance.platform,
                                    instance.partition, online);
    }
  } catch (const std::exception& exception) {
    report = RunReport{};
    report.algorithm = algorithm;
    report.algorithm_label = algorithm;
    error = exception.what();
    if (error.empty()) error = "unknown error";
  }
}

/// Fills the relative metrics of one instance row from its reports,
/// considering only cells that succeeded.
void finalize_instance(InstanceResults& results) {
  results.best_makespan = kInf;
  results.best_work = kInf;
  for (std::size_t i = 0; i < results.reports.size(); ++i) {
    if (!results.cell_ok(i)) continue;
    const RunReport& report = results.reports[i];
    results.best_makespan =
        std::min(results.best_makespan, report.result.makespan);
    results.best_work = std::min(results.best_work, report.result.work());
  }
  for (std::size_t i = 0; i < results.reports.size(); ++i) {
    if (results.cell_ok(i)) {
      results.relative_cost.push_back(results.reports[i].result.makespan /
                                      results.best_makespan);
      results.relative_work.push_back(results.reports[i].result.work() /
                                      results.best_work);
    } else {
      results.relative_cost.push_back(kInf);
      results.relative_work.push_back(kInf);
    }
  }
}

}  // namespace

InstanceResults run_instance(const Instance& instance,
                             const std::vector<Algorithm>& algorithms) {
  ExperimentOptions serial;
  serial.threads = 1;
  return run_experiment({instance}, algorithms, serial).front();
}

std::vector<InstanceResults> run_experiment(
    const std::vector<Instance>& instances,
    const std::vector<Algorithm>& algorithms,
    const ExperimentOptions& options) {
  HMXP_REQUIRE(!algorithms.empty(), "no algorithms to run");
  HMXP_REQUIRE(options.threads >= 0, "thread count cannot be negative");

  // Flat (instance x algorithm) grid: every cell owns a pre-assigned
  // slot, so completion order -- the only nondeterminism threads add --
  // cannot reorder results.
  const std::size_t cells = instances.size() * algorithms.size();
  std::vector<RunReport> reports(cells);
  std::vector<std::string> errors(cells);
  const auto run_one = [&](std::size_t cell) {
    const Instance& instance = instances[cell / algorithms.size()];
    const Algorithm& algorithm = algorithms[cell % algorithms.size()];
    run_cell(instance, algorithm, options, reports[cell], errors[cell]);
  };

  int threads = options.threads;
  if (threads == 0) {
    // Operator override for the auto thread count (benches and examples
    // pass 0), e.g. HMXP_THREADS=16 ./bench_fig9_summary.
    if (const char* env = std::getenv("HMXP_THREADS"))
      threads = std::max(0, std::atoi(env));
    if (threads == 0) threads = util::ThreadPool::default_thread_count();
  }
  threads = static_cast<int>(
      std::min<std::size_t>(static_cast<std::size_t>(threads), cells));
  if (threads <= 1) {
    for (std::size_t cell = 0; cell < cells; ++cell) run_one(cell);
  } else {
    util::ThreadPool pool(threads);
    for (std::size_t cell = 0; cell < cells; ++cell)
      pool.submit([&run_one, cell] { run_one(cell); });
    pool.wait_idle();
  }

  std::vector<InstanceResults> all;
  all.reserve(instances.size());
  for (std::size_t i = 0; i < instances.size(); ++i) {
    InstanceResults results;
    results.instance_name = instances[i].name;
    const std::size_t base = i * algorithms.size();
    results.reports.assign(
        std::make_move_iterator(reports.begin() + base),
        std::make_move_iterator(reports.begin() + base + algorithms.size()));
    results.errors.assign(errors.begin() + base,
                          errors.begin() + base + algorithms.size());
    finalize_instance(results);
    all.push_back(std::move(results));
  }
  return all;
}

std::vector<AlgorithmSummary> summarize(
    const std::vector<InstanceResults>& results,
    const std::vector<Algorithm>& algorithms) {
  std::vector<AlgorithmSummary> summaries;
  for (std::size_t a = 0; a < algorithms.size(); ++a) {
    AlgorithmSummary summary;
    summary.algorithm = algorithms[a];
    summary.label = display_name(algorithms[a]);
    for (const InstanceResults& instance : results) {
      HMXP_CHECK(instance.reports.size() == algorithms.size(),
                 "results not aligned with algorithm list");
      if (!instance.cell_ok(a)) continue;
      summary.relative_cost.add(instance.relative_cost[a]);
      summary.relative_work.add(instance.relative_work[a]);
      summary.bound_over_achieved.add(
          instance.reports[a].bound_over_achieved);
      summary.enrolled.add(
          static_cast<double>(instance.reports[a].result.workers_enrolled));
    }
    summaries.push_back(std::move(summary));
  }
  return summaries;
}

namespace {
util::Table metric_table(const std::vector<InstanceResults>& results,
                         const std::vector<Algorithm>& algorithms,
                         const std::vector<double> InstanceResults::* metric,
                         int precision) {
  std::vector<std::string> headers{"instance"};
  for (const Algorithm& algorithm : algorithms)
    headers.push_back(display_name(algorithm));
  util::Table table(std::move(headers));
  table.set_align(0, util::Align::kLeft);
  for (const InstanceResults& instance : results) {
    auto row = table.build_row();
    row.cell(instance.instance_name);
    for (const double value : instance.*metric) row.cell(value, precision);
    row.done();
  }
  return table;
}
}  // namespace

util::Table relative_cost_table(const std::vector<InstanceResults>& results,
                                const std::vector<Algorithm>& algorithms) {
  return metric_table(results, algorithms, &InstanceResults::relative_cost, 3);
}

util::Table relative_work_table(const std::vector<InstanceResults>& results,
                                const std::vector<Algorithm>& algorithms) {
  return metric_table(results, algorithms, &InstanceResults::relative_work, 3);
}

util::Table enrolled_table(const std::vector<InstanceResults>& results,
                           const std::vector<Algorithm>& algorithms) {
  std::vector<std::string> headers{"instance"};
  for (const Algorithm& algorithm : algorithms)
    headers.push_back(display_name(algorithm));
  util::Table table(std::move(headers));
  table.set_align(0, util::Align::kLeft);
  for (const InstanceResults& instance : results) {
    auto row = table.build_row();
    row.cell(instance.instance_name);
    for (const RunReport& report : instance.reports)
      row.cell(static_cast<long long>(report.result.workers_enrolled));
    row.done();
  }
  return table;
}

}  // namespace hmxp::core
