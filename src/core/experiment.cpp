#include "core/experiment.hpp"

#include <algorithm>
#include <limits>

#include "util/check.hpp"

namespace hmxp::core {

InstanceResults run_instance(const Instance& instance,
                             const std::vector<Algorithm>& algorithms) {
  HMXP_REQUIRE(!algorithms.empty(), "no algorithms to run");
  InstanceResults results;
  results.instance_name = instance.name;
  results.reports.reserve(algorithms.size());
  for (const Algorithm algorithm : algorithms) {
    results.reports.push_back(
        run_algorithm(algorithm, instance.platform, instance.partition));
  }

  results.best_makespan = std::numeric_limits<double>::infinity();
  results.best_work = std::numeric_limits<double>::infinity();
  for (const RunReport& report : results.reports) {
    results.best_makespan =
        std::min(results.best_makespan, report.result.makespan);
    results.best_work = std::min(results.best_work, report.result.work());
  }
  for (const RunReport& report : results.reports) {
    results.relative_cost.push_back(report.result.makespan /
                                    results.best_makespan);
    results.relative_work.push_back(report.result.work() / results.best_work);
  }
  return results;
}

std::vector<InstanceResults> run_experiment(
    const std::vector<Instance>& instances,
    const std::vector<Algorithm>& algorithms) {
  std::vector<InstanceResults> all;
  all.reserve(instances.size());
  for (const Instance& instance : instances)
    all.push_back(run_instance(instance, algorithms));
  return all;
}

std::vector<AlgorithmSummary> summarize(
    const std::vector<InstanceResults>& results,
    const std::vector<Algorithm>& algorithms) {
  std::vector<AlgorithmSummary> summaries;
  for (std::size_t a = 0; a < algorithms.size(); ++a) {
    AlgorithmSummary summary;
    summary.algorithm = algorithms[a];
    summary.label = algorithm_name(algorithms[a]);
    for (const InstanceResults& instance : results) {
      HMXP_CHECK(instance.reports.size() == algorithms.size(),
                 "results not aligned with algorithm list");
      summary.relative_cost.add(instance.relative_cost[a]);
      summary.relative_work.add(instance.relative_work[a]);
      summary.bound_over_achieved.add(
          instance.reports[a].bound_over_achieved);
      summary.enrolled.add(
          static_cast<double>(instance.reports[a].result.workers_enrolled));
    }
    summaries.push_back(std::move(summary));
  }
  return summaries;
}

namespace {
util::Table metric_table(const std::vector<InstanceResults>& results,
                         const std::vector<Algorithm>& algorithms,
                         const std::vector<double> InstanceResults::* metric,
                         int precision) {
  std::vector<std::string> headers{"instance"};
  for (const Algorithm algorithm : algorithms)
    headers.push_back(algorithm_name(algorithm));
  util::Table table(std::move(headers));
  table.set_align(0, util::Align::kLeft);
  for (const InstanceResults& instance : results) {
    auto row = table.build_row();
    row.cell(instance.instance_name);
    for (const double value : instance.*metric) row.cell(value, precision);
    row.done();
  }
  return table;
}
}  // namespace

util::Table relative_cost_table(const std::vector<InstanceResults>& results,
                                const std::vector<Algorithm>& algorithms) {
  return metric_table(results, algorithms, &InstanceResults::relative_cost, 3);
}

util::Table relative_work_table(const std::vector<InstanceResults>& results,
                                const std::vector<Algorithm>& algorithms) {
  return metric_table(results, algorithms, &InstanceResults::relative_work, 3);
}

util::Table enrolled_table(const std::vector<InstanceResults>& results,
                           const std::vector<Algorithm>& algorithms) {
  std::vector<std::string> headers{"instance"};
  for (const Algorithm algorithm : algorithms)
    headers.push_back(algorithm_name(algorithm));
  util::Table table(std::move(headers));
  table.set_align(0, util::Align::kLeft);
  for (const InstanceResults& instance : results) {
    auto row = table.build_row();
    row.cell(instance.instance_name);
    for (const RunReport& report : instance.reports)
      row.cell(static_cast<long long>(report.result.workers_enrolled));
    row.done();
  }
  return table;
}

}  // namespace hmxp::core
