// Experiment harness: runs sets of algorithms over sets of instances and
// computes the paper's two figures of merit.
//
//   relative cost  = makespan / (best makespan on the instance)
//   relative work  = makespan * enrolled / min(makespan * enrolled)
//
// Section 6.3 presents every experiment as these two bar charts; the
// benches print one table per chart with the same rows.
//
// run_experiment fans the (instance x algorithm) cells of the grid
// across a util::ThreadPool. Every cell is independent and the engine is
// deterministic, so results are written into index-addressed slots and
// the produced tables are bit-identical to a serial run regardless of
// thread count. A cell that throws does not sink the grid: its error
// text is captured per-cell and the relative metrics are computed over
// the surviving cells.
#pragma once

#include <limits>
#include <string>
#include <vector>

#include "core/run.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace hmxp::core {

struct Instance {
  std::string name;               // e.g. "s=800" or "random-3"
  platform::Platform platform;
  matrix::Partition partition;
};

struct InstanceResults {
  std::string instance_name;
  std::vector<RunReport> reports;       // aligned with the algorithm list
  /// Per-cell error text, aligned with reports; empty string = success.
  /// A failed cell carries a default-constructed report and +inf
  /// relative metrics.
  std::vector<std::string> errors;
  std::vector<double> relative_cost;    // aligned with reports
  std::vector<double> relative_work;
  double best_makespan = 0.0;
  double best_work = 0.0;

  bool cell_ok(std::size_t index) const { return errors[index].empty(); }
};

struct ExperimentOptions {
  /// Worker threads for the (instance x algorithm) grid; 0 = the
  /// HMXP_THREADS environment variable if set, else one per hardware
  /// thread; 1 = serial (no pool).
  int threads = 0;
  /// Execution backend for every cell: the simulator (default) or the
  /// online runtime over worker threads (kOnline) or forked worker
  /// processes (kProcess). Real matrices are generated per online cell;
  /// each online cell spawns its own workers, so prefer threads = 1 for
  /// online and process grids.
  Backend backend = Backend::kSim;
  /// Knobs for online cells (seed, verification, dynamic perturbation,
  /// fault schedule, calibration, throttled channel). The grid's
  /// `backend` above overrides `online.backend` per cell.
  OnlineOptions online;
  /// Knobs for Backend::kSim cells (model-clock slowdown + fault
  /// schedules, calibration) -- any cell can run the unreliable-platform
  /// scenario on either backend.
  SimOptions sim;
};

/// Runs every algorithm on the instance and fills the relative metrics.
InstanceResults run_instance(const Instance& instance,
                             const std::vector<Algorithm>& algorithms);

/// Runs a whole experiment (one per figure), fanning cells across
/// `options.threads` workers; results are deterministic and identical
/// to the serial path for any thread count.
std::vector<InstanceResults> run_experiment(
    const std::vector<Instance>& instances,
    const std::vector<Algorithm>& algorithms,
    const ExperimentOptions& options = {});

/// Per-algorithm aggregation across instances (fig. 9): mean and max of
/// both relative metrics, plus the bound/achieved throughput ratio.
struct AlgorithmSummary {
  Algorithm algorithm;
  std::string label;
  util::Samples relative_cost;
  util::Samples relative_work;
  util::Samples bound_over_achieved;
  util::Samples enrolled;
};

std::vector<AlgorithmSummary> summarize(
    const std::vector<InstanceResults>& results,
    const std::vector<Algorithm>& algorithms);

/// Renders the two paper-style tables (cost and work) for an experiment:
/// one row per instance, one column per algorithm.
util::Table relative_cost_table(const std::vector<InstanceResults>& results,
                                const std::vector<Algorithm>& algorithms);
util::Table relative_work_table(const std::vector<InstanceResults>& results,
                                const std::vector<Algorithm>& algorithms);
/// Enrolled-workers table (the resource-selection story of the figures).
util::Table enrolled_table(const std::vector<InstanceResults>& results,
                           const std::vector<Algorithm>& algorithms);

}  // namespace hmxp::core
