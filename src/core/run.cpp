#include "core/run.hpp"

#include <chrono>

#include "model/steady_state.hpp"
#include "runtime/executor.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"

namespace hmxp::core {

const char* backend_name(Backend backend) {
  switch (backend) {
    case Backend::kSim:
      return "sim";
    case Backend::kOnline:
      return "online";
    case Backend::kProcess:
      return "process";
    case Backend::kShm:
      return "shm";
    case Backend::kTcp:
      return "tcp";
  }
  return "unknown";
}

std::optional<Backend> parse_backend(const std::string& name) {
  const std::string lower = util::to_lower(name);
  if (lower == "sim" || lower == "simulator") return Backend::kSim;
  if (lower == "online" || lower == "thread" || lower == "threads")
    return Backend::kOnline;
  if (lower == "process" || lower == "processes") return Backend::kProcess;
  if (lower == "shm" || lower == "shmem" || lower == "shared-memory")
    return Backend::kShm;
  if (lower == "tcp" || lower == "loopback-tcp" || lower == "socket")
    return Backend::kTcp;
  return std::nullopt;
}

namespace {

/// Shared tail of both backends: the steady-state bound and its ratio
/// against the achieved (model-projected) throughput.
void fill_bounds(RunReport& report, const platform::Platform& platform) {
  report.steady_state_bound =
      model::steady_state_throughput(platform.steady_workers());
  const double achieved = report.result.throughput();
  report.bound_over_achieved =
      achieved > 0 ? report.steady_state_bound / achieved : 0.0;
}

/// Builds the scheduler, timing the selection phase (Het's 8-variant
/// simulation, the virtual-platform search) as the paper does.
std::unique_ptr<sim::Scheduler> timed_scheduler(
    RunReport& report, const Algorithm& algorithm,
    const platform::Platform& platform, const matrix::Partition& partition) {
  sched::HetSelection het_selection;
  const auto begin = std::chrono::steady_clock::now();
  std::unique_ptr<sim::Scheduler> scheduler =
      make_scheduler(algorithm, platform, partition, &het_selection);
  const auto end = std::chrono::steady_clock::now();
  report.selection_wall_seconds =
      std::chrono::duration<double>(end - begin).count();
  // Builders without a selection phase leave the outcome empty.
  if (!het_selection.decisions.empty())
    report.het_variant = het_selection.variant;
  return scheduler;
}

}  // namespace

RunReport run_algorithm(const Algorithm& algorithm,
                        const platform::Platform& platform,
                        const matrix::Partition& partition,
                        bool record_trace) {
  return run_algorithm(algorithm, platform, partition, SimOptions{},
                       record_trace);
}

RunReport run_algorithm(const Algorithm& algorithm,
                        const platform::Platform& platform,
                        const matrix::Partition& partition,
                        const SimOptions& options, bool record_trace) {
  RunReport report;
  report.algorithm = algorithm_name(algorithm);
  report.algorithm_label = report.algorithm;
  report.backend = Backend::kSim;

  sched::set_default_speculation_options(options.speculation);
  std::unique_ptr<sim::Scheduler> scheduler =
      timed_scheduler(report, algorithm, platform, partition);
  report.result = sim::simulate(
      *scheduler,
      sim::InstanceContext::make(platform, partition, options.slowdown,
                                 options.faults, options.calibration),
      record_trace);
  fill_bounds(report, platform);
  return report;
}

OperandSet generate_operands(const matrix::Partition& partition,
                             std::uint64_t seed) {
  // The draw ORDER (A, then B, then C from one stream) is part of the
  // contract: every producer of a (partition, seed) job must yield
  // bit-identical operands.
  util::Rng rng(seed);
  OperandSet operands;
  operands.a =
      matrix::Matrix::random(partition.n_a(), partition.n_ab(), rng);
  operands.b =
      matrix::Matrix::random(partition.n_ab(), partition.n_b(), rng);
  operands.c = matrix::Matrix::random(partition.n_a(), partition.n_b(), rng);
  return operands;
}

RunReport run_algorithm_online(const Algorithm& algorithm,
                               const platform::Platform& platform,
                               const matrix::Partition& partition,
                               const OnlineOptions& options,
                               bool record_trace) {
  HMXP_REQUIRE(options.backend != Backend::kSim,
               "OnlineOptions::backend must be kOnline, kProcess, kShm or "
               "kTcp (simulation takes SimOptions)");
  RunReport report;
  report.algorithm = algorithm_name(algorithm);
  report.algorithm_label = report.algorithm;
  report.backend = options.backend;

  sched::set_default_speculation_options(options.speculation);
  std::unique_ptr<sim::Scheduler> scheduler =
      timed_scheduler(report, algorithm, platform, partition);

  OperandSet operands = generate_operands(partition, options.data_seed);
  const matrix::Matrix& a = operands.a;
  const matrix::Matrix& b = operands.b;
  matrix::Matrix& c = operands.c;

  runtime::ExecutorOptions executor_options;
  switch (options.backend) {
    case Backend::kProcess:
      executor_options.transport = runtime::TransportKind::kProcess;
      break;
    case Backend::kShm:
      executor_options.transport = runtime::TransportKind::kShm;
      break;
    case Backend::kTcp:
      executor_options.transport = runtime::TransportKind::kTcp;
      break;
    default:
      executor_options.transport = runtime::TransportKind::kThread;
      break;
  }
  executor_options.verify = options.verify;
  executor_options.perturbation = options.perturbation;
  executor_options.faults = options.faults;
  executor_options.tolerate_faults = options.tolerate_faults;
  executor_options.calibration = options.calibration;
  executor_options.throttle_block_seconds = options.throttle_block_seconds;
  executor_options.record_trace = record_trace;
  const runtime::ExecutorReport executed = runtime::execute_online(
      *scheduler, platform, partition, a, b, c, executor_options);

  report.result = executed.result;
  report.online_wall_seconds = executed.wall_seconds;
  report.online_verified = executed.verified;
  fill_bounds(report, platform);
  return report;
}

}  // namespace hmxp::core
