#include "core/run.hpp"

#include <chrono>

#include "model/steady_state.hpp"

namespace hmxp::core {

RunReport run_algorithm(const Algorithm& algorithm,
                        const platform::Platform& platform,
                        const matrix::Partition& partition,
                        bool record_trace) {
  RunReport report;
  report.algorithm = algorithm_name(algorithm);
  report.algorithm_label = report.algorithm;

  sched::HetSelection het_selection;
  const auto selection_begin = std::chrono::steady_clock::now();
  std::unique_ptr<sim::Scheduler> scheduler =
      make_scheduler(algorithm, platform, partition, &het_selection);
  const auto selection_end = std::chrono::steady_clock::now();
  report.selection_wall_seconds =
      std::chrono::duration<double>(selection_end - selection_begin).count();
  // Builders without a selection phase leave the outcome empty.
  if (!het_selection.decisions.empty())
    report.het_variant = het_selection.variant;

  report.result = sim::simulate(*scheduler, platform, partition, record_trace);

  report.steady_state_bound =
      model::steady_state_throughput(platform.steady_workers());
  const double achieved = report.result.throughput();
  report.bound_over_achieved =
      achieved > 0 ? report.steady_state_bound / achieved : 0.0;
  return report;
}

}  // namespace hmxp::core
