// One-call execution of an algorithm on a platform instance, with the
// derived metrics the paper reports.
#pragma once

#include <optional>
#include <string>

#include "core/algorithms.hpp"
#include "sim/scheduler.hpp"

namespace hmxp::core {

struct RunReport {
  Algorithm algorithm;         // canonical registry name
  std::string algorithm_label; // same spelling, for table columns
  sim::RunResult result;

  /// Steady-state upper bound on throughput (Table 1 LP) and the ratio
  /// bound/achieved the paper quotes (2.29x mean for Het).
  double steady_state_bound = 0.0;   // block updates per second
  double bound_over_achieved = 0.0;

  /// Wall-clock seconds spent in the algorithm's decision phase
  /// (virtual-platform search, Het's 8-variant simulation); the paper
  /// includes this "decision process" in its measurements, we report it
  /// separately since simulated and wall time differ by design.
  double selection_wall_seconds = 0.0;

  /// Winning Het variant (set only for algorithms with a selection
  /// phase, i.e. Het).
  std::optional<sched::HetVariant> het_variant;
};

/// Simulates `algorithm` on the instance. `record_trace` keeps the full
/// event trace in the report (memory-heavy for big instances).
RunReport run_algorithm(const Algorithm& algorithm,
                        const platform::Platform& platform,
                        const matrix::Partition& partition,
                        bool record_trace = false);

}  // namespace hmxp::core
