// One-call execution of an algorithm on a platform instance, with the
// derived metrics the paper reports. Every (instance x algorithm) cell
// can run on any execution backend:
//   * Backend::kSim     -- the discrete-event simulator (default);
//   * Backend::kOnline  -- the online runtime over the THREAD transport:
//     the scheduler runs live against worker threads computing a real
//     product on generated matrices, and the report carries the
//     model-projected RunResult its mirror emits (same shape as the
//     simulator) plus wall-clock and verification facts;
//   * Backend::kProcess -- the same online runtime over the PROCESS
//     transport: one forked worker process per worker, messages
//     serialized over socketpairs -- the in-machine reproduction of the
//     companion report's real-cluster (MPI) deployment;
//   * Backend::kShm    -- the same forked isolation, but payloads live
//     in a pre-fork shared-memory arena and only (slot, length)
//     descriptors cross the sockets: zero-copy process isolation;
//   * Backend::kTcp    -- the same online runtime over loopback TCP:
//     forked workers DIAL the master's listen socket, handshake with a
//     versioned hello and reconnect after a dropped connection -- the
//     in-machine rehearsal of a real cluster deployment, including the
//     fault-tolerant re-admission path.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "core/algorithms.hpp"
#include "matrix/matrix.hpp"
#include "platform/perturbation.hpp"
#include "sched/speculative.hpp"
#include "sim/scheduler.hpp"

namespace hmxp::core {

enum class Backend { kSim, kOnline, kProcess, kShm, kTcp };

/// Canonical name ("sim" / "online" / "process" / "shm" / "tcp").
const char* backend_name(Backend backend);
/// Parses a backend name (case-insensitive; "thread" is accepted as an
/// alias of "online"); nullopt if unrecognized.
std::optional<Backend> parse_backend(const std::string& name);

/// Knobs for online cells (Backend::kOnline, kProcess, kShm and kTcp).
struct OnlineOptions {
  /// Which online backend executes the cell: kOnline (worker threads,
  /// the default), kProcess (forked worker processes), kShm (forked
  /// workers over the zero-copy shared-memory arena) or kTcp (forked
  /// workers dialing the master over loopback TCP). kSim is not a
  /// valid value here -- simulation takes SimOptions instead. The
  /// experiment grid overrides this with ExperimentOptions::backend, so
  /// a grid switches transports with one knob.
  Backend backend = Backend::kOnline;
  /// Seed for the deterministically generated A, B, C matrices.
  std::uint64_t data_seed = 42;
  /// Verify C against a reference product (throws on mismatch).
  bool verify = true;
  /// Dynamic per-worker compute/bandwidth drift, keyed on wall seconds
  /// since run start.
  platform::SlowdownSchedule perturbation;
  /// Permanent worker kills, keyed on wall seconds since run start.
  platform::FaultSchedule faults;
  /// Recover from worker loss instead of aborting (pair with an FT-*
  /// algorithm; a non-fault-tolerant policy cannot finish after one).
  bool tolerate_faults = false;
  /// EWMA knobs for the observed-speed feedback loop.
  platform::CalibrationOptions calibration;
  /// Port emulation: master-side wall seconds per block moved, scaled
  /// by the perturbation's bandwidth factor (0 = no throttled channel).
  double throttle_block_seconds = 0.0;
  /// Straggler-speculation knobs, applied process-wide before the
  /// scheduler is built (consumed by SP-* algorithms; others ignore it).
  sched::SpeculationOptions speculation;
};

/// Knobs for Backend::kSim cells: the same unreliable-platform scenario
/// on the model clock (the engine applies both schedules at decision
/// boundaries and feeds the calibration from projected step costs).
struct SimOptions {
  platform::SlowdownSchedule slowdown;
  platform::FaultSchedule faults;
  platform::CalibrationOptions calibration;
  /// Straggler-speculation knobs (consumed by SP-* algorithms).
  sched::SpeculationOptions speculation;
};

struct RunReport {
  Algorithm algorithm;         // canonical registry name
  std::string algorithm_label; // same spelling, for table columns
  Backend backend = Backend::kSim;
  sim::RunResult result;

  /// Steady-state upper bound on throughput (Table 1 LP) and the ratio
  /// bound/achieved the paper quotes (2.29x mean for Het).
  double steady_state_bound = 0.0;   // block updates per second
  double bound_over_achieved = 0.0;

  /// Wall-clock seconds spent in the algorithm's decision phase
  /// (virtual-platform search, Het's 8-variant simulation); the paper
  /// includes this "decision process" in its measurements, we report it
  /// separately since simulated and wall time differ by design.
  double selection_wall_seconds = 0.0;

  /// Winning Het variant (set only for algorithms with a selection
  /// phase, i.e. Het).
  std::optional<sched::HetVariant> het_variant;

  /// Online-backend facts (Backend::kOnline / Backend::kProcess only).
  double online_wall_seconds = 0.0;
  bool online_verified = false;
};

/// Simulates `algorithm` on the instance. `record_trace` keeps the full
/// event trace in the report (memory-heavy for big instances).
RunReport run_algorithm(const Algorithm& algorithm,
                        const platform::Platform& platform,
                        const matrix::Partition& partition,
                        bool record_trace = false);

/// Same, over a perturbed/unreliable instance (slowdown + fault
/// schedules on the model clock, calibration knobs).
RunReport run_algorithm(const Algorithm& algorithm,
                        const platform::Platform& platform,
                        const matrix::Partition& partition,
                        const SimOptions& options, bool record_trace = false);

/// The deterministically generated operands of an online run: A, B and
/// the initial C, shaped to `partition` and fully determined by `seed`.
/// Factored out so OTHER producers of the same job -- the multi-job
/// service, tests comparing a service job against a standalone run --
/// generate bit-identical inputs from a (partition, seed) pair.
struct OperandSet {
  matrix::Matrix a;
  matrix::Matrix b;
  matrix::Matrix c;
};
OperandSet generate_operands(const matrix::Partition& partition,
                             std::uint64_t seed);

/// Runs `algorithm` live on the online runtime: random matrices are
/// generated to the partition's shape, the scheduler drives real
/// workers -- threads or forked processes, per options.backend -- and C
/// is verified unless options say otherwise.
RunReport run_algorithm_online(const Algorithm& algorithm,
                               const platform::Platform& platform,
                               const matrix::Partition& partition,
                               const OnlineOptions& options = {},
                               bool record_trace = false);

}  // namespace hmxp::core
