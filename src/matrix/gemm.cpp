#include "matrix/gemm.hpp"

#include <algorithm>
#include <thread>
#include <vector>

#include "util/check.hpp"

namespace hmxp::matrix {

namespace {
void check_shapes(ConstView a, ConstView b, const View& c) {
  HMXP_REQUIRE(a.cols() == b.rows(), "inner dimensions differ");
  HMXP_REQUIRE(c.rows() == a.rows() && c.cols() == b.cols(),
               "output shape mismatch");
}

// Tile sizes: MC x KC panel of A resident in L2, KC x NR slab of B
// streamed, 1 x NR register accumulation. Chosen for the q = 80..128
// blocks the paper uses; not autotuned.
constexpr std::size_t kMc = 64;
constexpr std::size_t kKc = 128;
constexpr std::size_t kNr = 4;

void tile_kernel(ConstView a, ConstView b, View c, std::size_t i0,
                 std::size_t i1, std::size_t k0, std::size_t k1) {
  const std::size_t n = c.cols();
  for (std::size_t i = i0; i < i1; ++i) {
    const double* a_row = a.row(i);
    double* c_row = c.row(i);
    std::size_t j = 0;
    // 4-wide register-blocked main loop.
    for (; j + kNr <= n; j += kNr) {
      double acc0 = 0.0, acc1 = 0.0, acc2 = 0.0, acc3 = 0.0;
      for (std::size_t k = k0; k < k1; ++k) {
        const double aik = a_row[k];
        const double* b_row = b.row(k);
        acc0 += aik * b_row[j];
        acc1 += aik * b_row[j + 1];
        acc2 += aik * b_row[j + 2];
        acc3 += aik * b_row[j + 3];
      }
      c_row[j] += acc0;
      c_row[j + 1] += acc1;
      c_row[j + 2] += acc2;
      c_row[j + 3] += acc3;
    }
    // Remainder columns.
    for (; j < n; ++j) {
      double acc = 0.0;
      for (std::size_t k = k0; k < k1; ++k) acc += a_row[k] * b.row(k)[j];
      c_row[j] += acc;
    }
  }
}

void gemm_tiled_rows(ConstView a, ConstView b, View c, std::size_t row_begin,
                     std::size_t row_end) {
  const std::size_t kk = a.cols();
  for (std::size_t i0 = row_begin; i0 < row_end; i0 += kMc) {
    const std::size_t i1 = std::min(i0 + kMc, row_end);
    for (std::size_t k0 = 0; k0 < kk; k0 += kKc) {
      const std::size_t k1 = std::min(k0 + kKc, kk);
      tile_kernel(a, b, c, i0, i1, k0, k1);
    }
  }
}
}  // namespace

void gemm_naive(ConstView a, ConstView b, View c) {
  check_shapes(a, b, c);
  for (std::size_t i = 0; i < c.rows(); ++i) {
    for (std::size_t j = 0; j < c.cols(); ++j) {
      double acc = 0.0;
      for (std::size_t k = 0; k < a.cols(); ++k)
        acc += a.at(i, k) * b.at(k, j);
      c.at(i, j) += acc;
    }
  }
}

void gemm_tiled(ConstView a, ConstView b, View c) {
  check_shapes(a, b, c);
  gemm_tiled_rows(a, b, c, 0, c.rows());
}

void gemm_parallel(ConstView a, ConstView b, View c, int threads) {
  check_shapes(a, b, c);
  std::size_t worker_count = threads > 0
      ? static_cast<std::size_t>(threads)
      : std::max<std::size_t>(1, std::thread::hardware_concurrency());
  worker_count = std::min(worker_count, c.rows());
  if (worker_count <= 1) {
    gemm_tiled(a, b, c);
    return;
  }
  // Row-partitioning keeps every thread's C region disjoint: no
  // synchronization needed beyond join.
  std::vector<std::thread> pool;
  pool.reserve(worker_count);
  const std::size_t rows_per = (c.rows() + worker_count - 1) / worker_count;
  for (std::size_t w = 0; w < worker_count; ++w) {
    const std::size_t begin = w * rows_per;
    const std::size_t end = std::min(begin + rows_per, c.rows());
    if (begin >= end) break;
    pool.emplace_back(
        [&, begin, end] { gemm_tiled_rows(a, b, c, begin, end); });
  }
  for (std::thread& t : pool) t.join();
}

void gemm(const Matrix& a, const Matrix& b, Matrix& c) {
  HMXP_REQUIRE(a.cols() == b.rows(), "inner dimensions differ");
  HMXP_REQUIRE(c.rows() == a.rows() && c.cols() == b.cols(),
               "output shape mismatch");
  gemm_tiled(a.view(), b.view(), c.view());
}

double gemm_flops(std::size_t m, std::size_t n, std::size_t k) {
  return 2.0 * static_cast<double>(m) * static_cast<double>(n) *
         static_cast<double>(k);
}

}  // namespace hmxp::matrix
