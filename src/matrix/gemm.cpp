#include "matrix/gemm.hpp"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstring>
#include <exception>
#include <mutex>

#include "matrix/kernel_dispatch.hpp"
#include "util/aligned.hpp"
#include "util/check.hpp"
#include "util/thread_pool.hpp"

#if defined(__x86_64__) && defined(__GNUC__)
#define HMXP_X86_TARGETS 1
#include <immintrin.h>
#endif

namespace hmxp::matrix {

namespace {
void check_shapes(ConstView a, ConstView b, const View& c) {
  HMXP_REQUIRE(a.cols() == b.rows(), "inner dimensions differ");
  HMXP_REQUIRE(c.rows() == a.rows() && c.cols() == b.cols(),
               "output shape mismatch");
}

ConstView subview(ConstView v, std::size_t row0, std::size_t col0,
                  std::size_t rows, std::size_t cols) {
  return ConstView(v.row(row0) + col0, rows, cols, v.stride());
}

View subview(View v, std::size_t row0, std::size_t col0, std::size_t rows,
             std::size_t cols) {
  return View(v.row(row0) + col0, rows, cols, v.stride());
}

// ---------------------------------------------------------------------------
// Tiled scalar kernel (the "tiled" tier, kept as the portable baseline).
// Tile sizes: MC x KC panel of A resident in L2, KC x NR slab of B
// streamed, 1 x NR register accumulation.
constexpr std::size_t kTiledMc = 64;
constexpr std::size_t kTiledKc = 128;
constexpr std::size_t kTiledNr = 4;

void tile_kernel(ConstView a, ConstView b, View c, std::size_t i0,
                 std::size_t i1, std::size_t k0, std::size_t k1) {
  const std::size_t n = c.cols();
  for (std::size_t i = i0; i < i1; ++i) {
    const double* a_row = a.row(i);
    double* c_row = c.row(i);
    std::size_t j = 0;
    // 4-wide register-blocked main loop.
    for (; j + kTiledNr <= n; j += kTiledNr) {
      double acc0 = 0.0, acc1 = 0.0, acc2 = 0.0, acc3 = 0.0;
      for (std::size_t k = k0; k < k1; ++k) {
        const double aik = a_row[k];
        const double* b_row = b.row(k);
        acc0 += aik * b_row[j];
        acc1 += aik * b_row[j + 1];
        acc2 += aik * b_row[j + 2];
        acc3 += aik * b_row[j + 3];
      }
      c_row[j] += acc0;
      c_row[j + 1] += acc1;
      c_row[j + 2] += acc2;
      c_row[j + 3] += acc3;
    }
    // Remainder columns.
    for (; j < n; ++j) {
      double acc = 0.0;
      for (std::size_t k = k0; k < k1; ++k) acc += a_row[k] * b.row(k)[j];
      c_row[j] += acc;
    }
  }
}

void gemm_tiled_unchecked(ConstView a, ConstView b, View c) {
  const std::size_t kk = a.cols();
  for (std::size_t i0 = 0; i0 < c.rows(); i0 += kTiledMc) {
    const std::size_t i1 = std::min(i0 + kTiledMc, c.rows());
    for (std::size_t k0 = 0; k0 < kk; k0 += kTiledKc) {
      const std::size_t k1 = std::min(k0 + kTiledKc, kk);
      tile_kernel(a, b, c, i0, i1, k0, k1);
    }
  }
}

// ---------------------------------------------------------------------------
// Packed path (the "simd" tier): BLIS-style blocking. A is packed into
// MC x KC panels of MR-row slivers (sliver layout a[k*MR + r], zero-
// padded to MR), B into KC x NC panels of NR-column slivers
// (b[k*NR + c], zero-padded to NR), both in 64-byte-aligned
// thread-local buffers; the micro-kernel then runs unconditionally on
// full MR x NR register tiles, with short edge tiles accumulated
// through a small stack buffer.
//
// MC/KC/NC -- the A panel sized for L2, the B panel for L3 -- are no
// longer compile-time constants: they are runtime BlockingParams
// resolved by matrix/tuning.hpp (forced pin > per-host tuning cache >
// at-first-use measured search > the historical 120/256/512 default).
// Only the register-tile bounds stay static, for the edge-tile stack
// buffer: the widest micro-kernel is the AVX-512 8x8.
constexpr std::size_t kMaxMr = 8;
constexpr std::size_t kMaxNr = 8;

/// C[MR x NR] += packed_a (KC x MR slivers) * packed_b (KC x NR slivers).
/// `c` has row stride ldc and is NOT assumed aligned.
using MicroKernel = void (*)(std::size_t kc, const double* a, const double* b,
                             double* c, std::size_t ldc);

struct MicroKernelInfo {
  std::size_t mr = 0;
  std::size_t nr = 0;
  MicroKernel fn = nullptr;
};

/// Portable 4x8 micro-kernel: 32 scalar accumulators the compiler keeps
/// in registers and auto-vectorizes (SSE2 on baseline x86-64).
void micro_kernel_portable_4x8(std::size_t kc, const double* a,
                               const double* b, double* c, std::size_t ldc) {
  double acc[4][8] = {};
  for (std::size_t k = 0; k < kc; ++k) {
    const double* bk = b + k * 8;
    const double* ak = a + k * 4;
    for (std::size_t r = 0; r < 4; ++r) {
      const double ar = ak[r];
      for (std::size_t j = 0; j < 8; ++j) acc[r][j] += ar * bk[j];
    }
  }
  for (std::size_t r = 0; r < 4; ++r) {
    double* c_row = c + r * ldc;
    for (std::size_t j = 0; j < 8; ++j) c_row[j] += acc[r][j];
  }
}

#ifdef HMXP_X86_TARGETS
/// AVX2+FMA 6x8 micro-kernel: 12 ymm accumulators (6 rows x 2 vectors),
/// 2 ymm B loads (aligned: slivers are 64-byte aligned and each k-step
/// advances 8 doubles) and 1 broadcast per row per k. Compiled with a
/// target attribute so the rest of the binary stays baseline-ISA; only
/// dispatched when cpuid reports AVX2 and FMA.
__attribute__((target("avx2,fma"))) void micro_kernel_avx2_6x8(
    std::size_t kc, const double* a, const double* b, double* c,
    std::size_t ldc) {
  __m256d c00 = _mm256_setzero_pd(), c01 = _mm256_setzero_pd();
  __m256d c10 = _mm256_setzero_pd(), c11 = _mm256_setzero_pd();
  __m256d c20 = _mm256_setzero_pd(), c21 = _mm256_setzero_pd();
  __m256d c30 = _mm256_setzero_pd(), c31 = _mm256_setzero_pd();
  __m256d c40 = _mm256_setzero_pd(), c41 = _mm256_setzero_pd();
  __m256d c50 = _mm256_setzero_pd(), c51 = _mm256_setzero_pd();
  for (std::size_t k = 0; k < kc; ++k) {
    const __m256d b0 = _mm256_load_pd(b + k * 8);
    const __m256d b1 = _mm256_load_pd(b + k * 8 + 4);
    const double* ak = a + k * 6;
    __m256d ar = _mm256_broadcast_sd(ak + 0);
    c00 = _mm256_fmadd_pd(ar, b0, c00);
    c01 = _mm256_fmadd_pd(ar, b1, c01);
    ar = _mm256_broadcast_sd(ak + 1);
    c10 = _mm256_fmadd_pd(ar, b0, c10);
    c11 = _mm256_fmadd_pd(ar, b1, c11);
    ar = _mm256_broadcast_sd(ak + 2);
    c20 = _mm256_fmadd_pd(ar, b0, c20);
    c21 = _mm256_fmadd_pd(ar, b1, c21);
    ar = _mm256_broadcast_sd(ak + 3);
    c30 = _mm256_fmadd_pd(ar, b0, c30);
    c31 = _mm256_fmadd_pd(ar, b1, c31);
    ar = _mm256_broadcast_sd(ak + 4);
    c40 = _mm256_fmadd_pd(ar, b0, c40);
    c41 = _mm256_fmadd_pd(ar, b1, c41);
    ar = _mm256_broadcast_sd(ak + 5);
    c50 = _mm256_fmadd_pd(ar, b0, c50);
    c51 = _mm256_fmadd_pd(ar, b1, c51);
  }
  double* r0 = c;
  double* r1 = c + ldc;
  double* r2 = c + 2 * ldc;
  double* r3 = c + 3 * ldc;
  double* r4 = c + 4 * ldc;
  double* r5 = c + 5 * ldc;
  _mm256_storeu_pd(r0, _mm256_add_pd(_mm256_loadu_pd(r0), c00));
  _mm256_storeu_pd(r0 + 4, _mm256_add_pd(_mm256_loadu_pd(r0 + 4), c01));
  _mm256_storeu_pd(r1, _mm256_add_pd(_mm256_loadu_pd(r1), c10));
  _mm256_storeu_pd(r1 + 4, _mm256_add_pd(_mm256_loadu_pd(r1 + 4), c11));
  _mm256_storeu_pd(r2, _mm256_add_pd(_mm256_loadu_pd(r2), c20));
  _mm256_storeu_pd(r2 + 4, _mm256_add_pd(_mm256_loadu_pd(r2 + 4), c21));
  _mm256_storeu_pd(r3, _mm256_add_pd(_mm256_loadu_pd(r3), c30));
  _mm256_storeu_pd(r3 + 4, _mm256_add_pd(_mm256_loadu_pd(r3 + 4), c31));
  _mm256_storeu_pd(r4, _mm256_add_pd(_mm256_loadu_pd(r4), c40));
  _mm256_storeu_pd(r4 + 4, _mm256_add_pd(_mm256_loadu_pd(r4 + 4), c41));
  _mm256_storeu_pd(r5, _mm256_add_pd(_mm256_loadu_pd(r5), c50));
  _mm256_storeu_pd(r5 + 4, _mm256_add_pd(_mm256_loadu_pd(r5 + 4), c51));
}

/// AVX-512F 8x8 micro-kernel: 8 zmm accumulators (one full C row each),
/// 1 aligned zmm B load (the sliver is 64-byte aligned and each k-step
/// advances 8 doubles = exactly one cache line) and 1 broadcast+FMA per
/// row per k. Half the register pressure of the AVX2 kernel for the
/// same tile row count, leaving zmm8-31 free for the compiler to
/// software-pipeline the loads.
__attribute__((target("avx512f"))) void micro_kernel_avx512_8x8(
    std::size_t kc, const double* a, const double* b, double* c,
    std::size_t ldc) {
  __m512d c0 = _mm512_setzero_pd();
  __m512d c1 = _mm512_setzero_pd();
  __m512d c2 = _mm512_setzero_pd();
  __m512d c3 = _mm512_setzero_pd();
  __m512d c4 = _mm512_setzero_pd();
  __m512d c5 = _mm512_setzero_pd();
  __m512d c6 = _mm512_setzero_pd();
  __m512d c7 = _mm512_setzero_pd();
  for (std::size_t k = 0; k < kc; ++k) {
    const __m512d bk = _mm512_load_pd(b + k * 8);
    const double* ak = a + k * 8;
    c0 = _mm512_fmadd_pd(_mm512_set1_pd(ak[0]), bk, c0);
    c1 = _mm512_fmadd_pd(_mm512_set1_pd(ak[1]), bk, c1);
    c2 = _mm512_fmadd_pd(_mm512_set1_pd(ak[2]), bk, c2);
    c3 = _mm512_fmadd_pd(_mm512_set1_pd(ak[3]), bk, c3);
    c4 = _mm512_fmadd_pd(_mm512_set1_pd(ak[4]), bk, c4);
    c5 = _mm512_fmadd_pd(_mm512_set1_pd(ak[5]), bk, c5);
    c6 = _mm512_fmadd_pd(_mm512_set1_pd(ak[6]), bk, c6);
    c7 = _mm512_fmadd_pd(_mm512_set1_pd(ak[7]), bk, c7);
  }
  double* r0 = c;
  _mm512_storeu_pd(r0, _mm512_add_pd(_mm512_loadu_pd(r0), c0));
  r0 += ldc;
  _mm512_storeu_pd(r0, _mm512_add_pd(_mm512_loadu_pd(r0), c1));
  r0 += ldc;
  _mm512_storeu_pd(r0, _mm512_add_pd(_mm512_loadu_pd(r0), c2));
  r0 += ldc;
  _mm512_storeu_pd(r0, _mm512_add_pd(_mm512_loadu_pd(r0), c3));
  r0 += ldc;
  _mm512_storeu_pd(r0, _mm512_add_pd(_mm512_loadu_pd(r0), c4));
  r0 += ldc;
  _mm512_storeu_pd(r0, _mm512_add_pd(_mm512_loadu_pd(r0), c5));
  r0 += ldc;
  _mm512_storeu_pd(r0, _mm512_add_pd(_mm512_loadu_pd(r0), c6));
  r0 += ldc;
  _mm512_storeu_pd(r0, _mm512_add_pd(_mm512_loadu_pd(r0), c7));
}
#endif  // HMXP_X86_TARGETS

/// Implementation table for a variant. The caller guarantees the host
/// can execute it (force_micro_kernel_variant and the env pin both
/// reject unsupported ISAs, and the default is cpuid-derived).
MicroKernelInfo micro_kernel_info(MicroKernelVariant variant) {
#ifdef HMXP_X86_TARGETS
  if (variant == MicroKernelVariant::kAvx512)
    return {8, 8, &micro_kernel_avx512_8x8};
  if (variant == MicroKernelVariant::kAvx2Fma)
    return {6, 8, &micro_kernel_avx2_6x8};
#else
  (void)variant;
#endif
  return {4, 8, &micro_kernel_portable_4x8};
}

/// Selected per call from the pin/env/cpuid resolution -- one relaxed
/// atomic load, negligible next to packing.
MicroKernelInfo micro_kernel_info() {
  return micro_kernel_info(active_micro_kernel_variant());
}

/// Packs A[i0:i0+mc, k0:k0+kc] into MR-row slivers: sliver s holds rows
/// [i0+s*mr, i0+s*mr+mr) column-major within the sliver
/// (out[s*kc*mr + k*mr + r]), short slivers zero-padded to mr. The
/// scattered writes land in a kc*mr (<= 12 KiB) region that stays in L1.
void pack_a(ConstView a, std::size_t i0, std::size_t mc, std::size_t k0,
            std::size_t kc, std::size_t mr, double* out) {
  for (std::size_t s = 0; s * mr < mc; ++s) {
    const std::size_t row0 = s * mr;
    const std::size_t rows = std::min(mr, mc - row0);
    double* dst = out + s * kc * mr;
    for (std::size_t r = 0; r < rows; ++r) {
      const double* src = a.row(i0 + row0 + r) + k0;
      for (std::size_t k = 0; k < kc; ++k) dst[k * mr + r] = src[k];
    }
    for (std::size_t r = rows; r < mr; ++r)
      for (std::size_t k = 0; k < kc; ++k) dst[k * mr + r] = 0.0;
  }
}

/// Packs B[k0:k0+kc, j0:j0+nc] into NR-column slivers
/// (out[s*kc*nr + k*nr + c]), short slivers zero-padded to nr.
void pack_b(ConstView b, std::size_t k0, std::size_t kc, std::size_t j0,
            std::size_t nc, std::size_t nr, double* out) {
  for (std::size_t s = 0; s * nr < nc; ++s) {
    const std::size_t col0 = s * nr;
    const std::size_t cols = std::min(nr, nc - col0);
    double* dst = out + s * kc * nr;
    for (std::size_t k = 0; k < kc; ++k) {
      const double* src = b.row(k0 + k) + j0 + col0;
      double* row = dst + k * nr;
      for (std::size_t c = 0; c < cols; ++c) row[c] = src[c];
      for (std::size_t c = cols; c < nr; ++c) row[c] = 0.0;
    }
  }
}

/// Runs the micro-kernel over every MR x NR register tile of a packed
/// MC x NC block. Interior tiles accumulate straight into C; edge tiles
/// compute into a zeroed stack buffer and fold the valid region in.
void macro_kernel(const MicroKernelInfo& mk, std::size_t mc, std::size_t nc,
                  std::size_t kc, const double* apack, const double* bpack,
                  View c, std::size_t i0, std::size_t j0) {
  for (std::size_t js = 0; js * mk.nr < nc; ++js) {
    const std::size_t col0 = js * mk.nr;
    const std::size_t cols = std::min(mk.nr, nc - col0);
    const double* b_sliver = bpack + js * kc * mk.nr;
    for (std::size_t is = 0; is * mk.mr < mc; ++is) {
      const std::size_t row0 = is * mk.mr;
      const std::size_t rows = std::min(mk.mr, mc - row0);
      const double* a_sliver = apack + is * kc * mk.mr;
      double* c_tile = c.row(i0 + row0) + j0 + col0;
      if (rows == mk.mr && cols == mk.nr) {
        mk.fn(kc, a_sliver, b_sliver, c_tile, c.stride());
      } else {
        alignas(util::kCacheLineBytes) double tmp[kMaxMr * kMaxNr] = {};
        mk.fn(kc, a_sliver, b_sliver, tmp, mk.nr);
        for (std::size_t r = 0; r < rows; ++r) {
          double* c_row = c_tile + r * c.stride();
          const double* t_row = tmp + r * mk.nr;
          for (std::size_t j = 0; j < cols; ++j) c_row[j] += t_row[j];
        }
      }
    }
  }
}

/// Per-thread pack buffers: grow-only, reused for the lifetime of the
/// thread. Growth only happens when a run needs MORE capacity than any
/// previous run on this thread -- changing BlockingParams between runs
/// (re-tuning, a forced pin) never shrinks or reallocates downward, so
/// after one warm-up at the largest blocking in play, steady-state GEMM
/// performs zero heap allocation (asserted by tests, the same contract
/// PR-3 established for BufferPool).
struct PackBuffers {
  util::AlignedVector<double> a;
  util::AlignedVector<double> b;
};

PackBuffers& thread_pack_buffers() {
  thread_local PackBuffers buffers;
  return buffers;
}

std::atomic<std::size_t> pack_buffer_allocation_count{0};

/// Grows `buffer` to hold `needed` doubles; counts only actual heap
/// growth, never a same-or-smaller request.
double* ensure_pack_capacity(util::AlignedVector<double>& buffer,
                             std::size_t needed) {
  if (needed > buffer.size()) {
    if (needed > buffer.capacity())
      pack_buffer_allocation_count.fetch_add(1, std::memory_order_relaxed);
    buffer.resize(needed);
  }
  return buffer.data();
}

constexpr std::size_t round_up(std::size_t value, std::size_t unit) {
  return (value + unit - 1) / unit * unit;
}

void gemm_packed_unchecked(ConstView a, ConstView b, View c,
                           const MicroKernelInfo& mk,
                           const BlockingParams& blocking) {
  const std::size_t m = c.rows();
  const std::size_t n = c.cols();
  const std::size_t kk = a.cols();
  if (m == 0 || n == 0 || kk == 0) return;

  PackBuffers& buffers = thread_pack_buffers();
  // Sliver zero-padding means the packed extents round up to MR/NR.
  double* apack = ensure_pack_capacity(
      buffers.a,
      round_up(std::min(m, blocking.mc), mk.mr) * std::min(kk, blocking.kc));
  double* bpack = ensure_pack_capacity(
      buffers.b,
      round_up(std::min(n, blocking.nc), mk.nr) * std::min(kk, blocking.kc));

  for (std::size_t jc = 0; jc < n; jc += blocking.nc) {
    const std::size_t nc = std::min(blocking.nc, n - jc);
    for (std::size_t kc0 = 0; kc0 < kk; kc0 += blocking.kc) {
      const std::size_t kc = std::min(blocking.kc, kk - kc0);
      pack_b(b, kc0, kc, jc, nc, mk.nr, bpack);
      for (std::size_t ic = 0; ic < m; ic += blocking.mc) {
        const std::size_t mc = std::min(blocking.mc, m - ic);
        pack_a(a, ic, mc, kc0, kc, mk.mr, apack);
        macro_kernel(mk, mc, nc, kc, apack, bpack, c, ic, jc);
      }
    }
  }
}

void gemm_packed_unchecked(ConstView a, ConstView b, View c) {
  gemm_packed_unchecked(a, b, c, micro_kernel_info(), active_blocking());
}

void gemm_naive_unchecked(ConstView a, ConstView b, View c) {
  for (std::size_t i = 0; i < c.rows(); ++i) {
    for (std::size_t j = 0; j < c.cols(); ++j) {
      double acc = 0.0;
      for (std::size_t k = 0; k < a.cols(); ++k)
        acc += a.at(i, k) * b.at(k, j);
      c.at(i, j) += acc;
    }
  }
}

void dispatch_serial(ConstView a, ConstView b, View c) {
  switch (active_kernel_tier()) {
    case KernelTier::kNaive:
      gemm_naive_unchecked(a, b, c);
      return;
    case KernelTier::kTiled:
      gemm_tiled_unchecked(a, b, c);
      return;
    case KernelTier::kPacked:
      gemm_packed_unchecked(a, b, c);
      return;
  }
}

// ---------------------------------------------------------------------------
// Parallel driver: a 2-D grid of C tiles claimed from an atomic cursor
// (work-stealing: fast threads simply claim more tiles), each tile run
// through the active serial kernel on a disjoint C window. The pool is
// shared and persistent -- no per-call thread spawn.

util::ThreadPool& shared_gemm_pool() {
  static util::ThreadPool pool;  // hardware_concurrency workers
  return pool;
}

struct TileRun {
  ConstView a;
  ConstView b;
  View c;
  std::size_t tile_m = 0, tile_n = 0;
  std::size_t grid_m = 0, grid_n = 0;
  std::atomic<std::size_t> cursor{0};

  std::mutex mutex;
  std::condition_variable done;
  std::size_t helpers_running = 0;
  std::exception_ptr error;

  TileRun(ConstView a_in, ConstView b_in, View c_in)
      : a(a_in), b(b_in), c(c_in) {}

  std::size_t tile_count() const { return grid_m * grid_n; }

  void drain() {
    for (std::size_t t = cursor.fetch_add(1, std::memory_order_relaxed);
         t < tile_count();
         t = cursor.fetch_add(1, std::memory_order_relaxed)) {
      const std::size_t ti = t / grid_n;
      const std::size_t tj = t % grid_n;
      const std::size_t i0 = ti * tile_m;
      const std::size_t j0 = tj * tile_n;
      const std::size_t rows = std::min(tile_m, c.rows() - i0);
      const std::size_t cols = std::min(tile_n, c.cols() - j0);
      dispatch_serial(subview(a, i0, 0, rows, a.cols()),
                      subview(b, 0, j0, b.rows(), cols),
                      subview(c, i0, j0, rows, cols));
    }
  }
};

/// Picks tile extents: start from the packed blocking (the RUNTIME
/// MC x NC when the packed tier is active -- a tuned NC changes the
/// natural tile width) and shrink toward micro-tile multiples until
/// the grid feeds every participant, so tall-skinny / short-wide
/// shapes still split evenly. Aligning tiles to the runtime NC keeps
/// each worker's packed-B panel private to its own thread-local
/// buffer: every thread packs (first-touches) the B columns it
/// multiplies, which places the panels on the worker's own NUMA node
/// instead of sharing one master-packed copy across sockets.
void choose_tiles(TileRun& run, std::size_t workers) {
  const std::size_t m = run.c.rows();
  const std::size_t n = run.c.cols();
  // Non-packed tiers never consult BlockingParams; using the default
  // seed there avoids triggering an autotune search from a tiled run.
  const BlockingParams blocking = active_kernel_tier() == KernelTier::kPacked
                                      ? active_blocking()
                                      : kDefaultBlocking;
  run.tile_m = blocking.mc;
  run.tile_n = blocking.nc;
  const std::size_t target = 4 * workers;
  auto grid = [&] {
    run.grid_m = (m + run.tile_m - 1) / run.tile_m;
    run.grid_n = (n + run.tile_n - 1) / run.tile_n;
    return run.grid_m * run.grid_n;
  };
  while (grid() < target &&
         (run.tile_m > kMaxMr * 2 || run.tile_n > kMaxNr * 2)) {
    // Halve the larger extent, keeping micro-tile-multiple sizes.
    if (run.tile_m >= run.tile_n && run.tile_m > kMaxMr * 2)
      run.tile_m = round_up(run.tile_m / 2, kMaxMr * 2);
    else
      run.tile_n = round_up(run.tile_n / 2, kMaxNr);
  }
  grid();
}

}  // namespace

void gemm_naive(ConstView a, ConstView b, View c) {
  check_shapes(a, b, c);
  gemm_naive_unchecked(a, b, c);
}

void gemm_tiled(ConstView a, ConstView b, View c) {
  check_shapes(a, b, c);
  gemm_tiled_unchecked(a, b, c);
}

void gemm_simd(ConstView a, ConstView b, View c) {
  check_shapes(a, b, c);
  gemm_packed_unchecked(a, b, c);
}

void gemm_simd_with_blocking(ConstView a, ConstView b, View c,
                             const BlockingParams& blocking,
                             std::optional<MicroKernelVariant> variant) {
  check_shapes(a, b, c);
  const MicroKernelVariant chosen =
      variant.value_or(active_micro_kernel_variant());
  HMXP_REQUIRE(micro_kernel_supported(chosen),
               std::string("micro-kernel ") +
                   micro_kernel_variant_name(chosen) +
                   " cannot execute on this CPU");
  validate_blocking(blocking, micro_kernel_mr(chosen),
                    micro_kernel_nr(chosen));
  gemm_packed_unchecked(a, b, c, micro_kernel_info(chosen), blocking);
}

std::size_t pack_buffer_allocations() {
  return pack_buffer_allocation_count.load(std::memory_order_relaxed);
}

void gemm_auto(ConstView a, ConstView b, View c) {
  check_shapes(a, b, c);
  dispatch_serial(a, b, c);
}

void gemm_parallel(ConstView a, ConstView b, View c, int threads) {
  check_shapes(a, b, c);
  if (c.rows() == 0 || c.cols() == 0) return;
  util::ThreadPool& pool = shared_gemm_pool();
  // Default: hardware_concurrency participants TOTAL (the caller counts
  // as one), matching the old per-call-spawn thread budget.
  const std::size_t want = threads > 0 ? static_cast<std::size_t>(threads)
                                       : static_cast<std::size_t>(pool.size());

  TileRun run(a, b, c);
  choose_tiles(run, want);
  // Helpers beyond the tile count (or the pool) would only idle.
  const std::size_t helpers =
      std::min({want - 1, static_cast<std::size_t>(pool.size()),
                run.tile_count() - 1});
  if (helpers == 0) {
    dispatch_serial(a, b, c);
    return;
  }

  {
    const std::lock_guard<std::mutex> lock(run.mutex);
    run.helpers_running = helpers;
  }
  // If a submit throws (bad_alloc, pool shutting down), the helpers
  // already queued still hold &run: un-count the never-submitted rest,
  // then fall through to the normal drain-and-wait so the stack frame
  // outlives every queued helper, and rethrow only after the join.
  std::exception_ptr submit_error;
  for (std::size_t submitted = 0; submitted < helpers; ++submitted) {
    try {
      pool.submit([&run] {
        std::exception_ptr error;
        try {
          run.drain();
        } catch (...) {
          error = std::current_exception();
        }
        const std::lock_guard<std::mutex> lock(run.mutex);
        if (error != nullptr && run.error == nullptr) run.error = error;
        if (--run.helpers_running == 0) run.done.notify_all();
      });
    } catch (...) {
      submit_error = std::current_exception();
      const std::lock_guard<std::mutex> lock(run.mutex);
      run.helpers_running -= helpers - submitted;
      break;
    }
  }
  // The caller is a full participant: it steals tiles like any helper,
  // which also guarantees progress when the pool is busy elsewhere.
  std::exception_ptr own_error;
  try {
    run.drain();
  } catch (...) {
    own_error = std::current_exception();
  }
  std::unique_lock<std::mutex> lock(run.mutex);
  run.done.wait(lock, [&run] { return run.helpers_running == 0; });
  lock.unlock();
  if (own_error != nullptr) std::rethrow_exception(own_error);
  if (run.error != nullptr) std::rethrow_exception(run.error);
  if (submit_error != nullptr) std::rethrow_exception(submit_error);
}

void gemm(const Matrix& a, const Matrix& b, Matrix& c) {
  HMXP_REQUIRE(a.cols() == b.rows(), "inner dimensions differ");
  HMXP_REQUIRE(c.rows() == a.rows() && c.cols() == b.cols(),
               "output shape mismatch");
  gemm_auto(a.view(), b.view(), c.view());
}

double gemm_flops(std::size_t m, std::size_t n, std::size_t k) {
  return 2.0 * static_cast<double>(m) * static_cast<double>(n) *
         static_cast<double>(k);
}

}  // namespace hmxp::matrix
