// GEMM kernels: C += A * B on views.
//
// The paper assumes ATLAS-generated Level-3 BLAS on each worker; hmxp is
// dependency-free, so it carries its own kernels:
//   * gemm_naive     -- reference i-j-k triple loop, the test oracle;
//   * gemm_tiled     -- cache-tiled i-k-j with 4-wide register blocking;
//                       the portable comparison baseline and the "tiled"
//                       dispatch tier;
//   * gemm_simd      -- the production kernel: BLIS-style packed path.
//                       A is packed into MC x KC and B into KC x NC
//                       contiguous 64-byte-aligned panels of MR/NR
//                       slivers, driven through a register-tiled
//                       micro-kernel (AVX2+FMA when the CPU has it,
//                       auto-vectorized portable otherwise -- see
//                       matrix/kernel_dispatch.hpp);
//   * gemm_auto      -- dispatches to the active kernel tier (honours
//                       HMXP_FORCE_KERNEL / force_kernel_tier);
//   * gemm_parallel  -- 2-D tile decomposition of C fanned over the
//                       shared persistent util::ThreadPool with
//                       work-stealing (an atomic tile cursor); each tile
//                       runs the active serial kernel on a disjoint C
//                       region, so no synchronization beyond the final
//                       join is needed.
//
// All kernels accumulate (C += A*B), matching the paper's kernel
// C <- C + A B, and all accept rectangular shapes so edge blocks
// (short rows/cols) work unchanged.
#pragma once

#include <cstddef>

#include <optional>

#include "matrix/kernel_dispatch.hpp"
#include "matrix/matrix.hpp"
#include "matrix/tuning.hpp"

namespace hmxp::matrix {

/// Reference kernel. Requires a.cols() == b.rows(), c is a.rows() x b.cols().
void gemm_naive(ConstView a, ConstView b, View c);

/// Cache-tiled scalar kernel; same contract as gemm_naive.
void gemm_tiled(ConstView a, ConstView b, View c);

/// Packed micro-kernel path (the "simd" tier); same contract. Blocking
/// comes from matrix/tuning.hpp's active_blocking() (forced pin >
/// tuning cache > at-first-use search > 120/256/512 default).
void gemm_simd(ConstView a, ConstView b, View c);

/// Packed path with an explicit blocking (validated against the
/// micro-kernel's register tile; throws std::invalid_argument on an
/// absurd one). Never consults active_blocking(), so the autotuner's
/// measurement sweep -- and blocking-edge tests -- run through here
/// without recursing into resolution. `variant` defaults to the active
/// micro-kernel; pinning one the host cannot execute throws.
void gemm_simd_with_blocking(
    ConstView a, ConstView b, View c, const BlockingParams& blocking,
    std::optional<MicroKernelVariant> variant = std::nullopt);

/// Number of times any thread's packing buffers grew since process
/// start. The buffers are grow-only: after a warm-up call at the
/// largest blocking in play, steady-state GEMM performs zero heap
/// allocation even when BlockingParams change between runs.
std::size_t pack_buffer_allocations();

/// Dispatches to the active kernel tier (see kernel_dispatch.hpp).
void gemm_auto(ConstView a, ConstView b, View c);

/// Multi-threaded kernel over the shared persistent thread pool;
/// `threads` <= 0 picks hardware_concurrency, and any request is
/// clamped to the pool size + the calling thread (oversubscribing a
/// compute-bound kernel never helps; the count only bounds
/// parallelism, never changes the result). Tiles of C are claimed
/// work-stealing style, so any thread count is load-balanced --
/// including tall-skinny and short-wide C.
void gemm_parallel(ConstView a, ConstView b, View c, int threads = 0);

/// Whole-matrix convenience: c += a * b (through gemm_auto).
void gemm(const Matrix& a, const Matrix& b, Matrix& c);

/// Flop count of one such update (2 * m * n * k).
double gemm_flops(std::size_t m, std::size_t n, std::size_t k);

}  // namespace hmxp::matrix
