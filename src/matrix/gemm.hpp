// GEMM kernels: C += A * B on views.
//
// The paper assumes ATLAS-generated Level-3 BLAS on each worker; hmxp is
// dependency-free, so it carries its own kernels:
//   * gemm_naive     -- reference i-j-k triple loop, the test oracle;
//   * gemm_tiled     -- cache-tiled i-k-j with 4-wide register blocking,
//                       the production kernel workers run;
//   * gemm_parallel  -- row-partitioned std::thread wrapper over the
//                       tiled kernel for large single-node products
//                       (used by the verification oracle on big cases).
//
// All kernels accumulate (C += A*B), matching the paper's kernel
// C <- C + A B, and all accept rectangular shapes so edge blocks
// (short rows/cols) work unchanged.
#pragma once

#include <cstddef>

#include "matrix/matrix.hpp"

namespace hmxp::matrix {

/// Reference kernel. Requires a.cols() == b.rows(), c is a.rows() x b.cols().
void gemm_naive(ConstView a, ConstView b, View c);

/// Cache-tiled kernel; same contract as gemm_naive.
void gemm_tiled(ConstView a, ConstView b, View c);

/// Multi-threaded tiled kernel; `threads` <= 0 picks hardware_concurrency.
void gemm_parallel(ConstView a, ConstView b, View c, int threads = 0);

/// Whole-matrix convenience: c += a * b.
void gemm(const Matrix& a, const Matrix& b, Matrix& c);

/// Flop count of one such update (2 * m * n * k).
double gemm_flops(std::size_t m, std::size_t n, std::size_t k);

}  // namespace hmxp::matrix
