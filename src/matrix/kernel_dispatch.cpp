#include "matrix/kernel_dispatch.hpp"

#include <atomic>
#include <cstdlib>

#include "util/check.hpp"
#include "util/strings.hpp"

namespace hmxp::matrix {

namespace {

// Encodes optional<KernelTier> in an atomic int: -1 = no override.
std::atomic<int> forced_tier{-1};
// Likewise for optional<MicroKernelVariant>.
std::atomic<int> forced_variant{-1};

/// HMXP_FORCE_KERNEL resolved once: the environment cannot retarget a
/// running process, and getenv is not safe against concurrent setenv.
const KernelPin& env_pin() {
  static const KernelPin resolved = [] {
    const char* forced = std::getenv("HMXP_FORCE_KERNEL");
    if (forced == nullptr || *forced == '\0') return KernelPin{};
    const std::optional<KernelPin> pin = parse_kernel_pin(forced);
    HMXP_REQUIRE(pin.has_value(),
                 std::string("HMXP_FORCE_KERNEL must be ") +
                     kernel_pin_names() + ", got \"" + forced + '"');
    if (pin->variant.has_value())
      HMXP_REQUIRE(micro_kernel_supported(*pin->variant),
                   std::string("HMXP_FORCE_KERNEL pins ") +
                       micro_kernel_variant_name(*pin->variant) +
                       " but this CPU cannot execute it");
    return *pin;
  }();
  return resolved;
}

MicroKernelVariant widest_supported_variant() {
  if (cpu_supports_avx512()) return MicroKernelVariant::kAvx512;
  if (cpu_supports_avx2_fma()) return MicroKernelVariant::kAvx2Fma;
  return MicroKernelVariant::kPortable;
}

}  // namespace

const char* kernel_tier_name(KernelTier tier) {
  switch (tier) {
    case KernelTier::kNaive:
      return "naive";
    case KernelTier::kTiled:
      return "tiled";
    case KernelTier::kPacked:
      return "simd";
  }
  return "unknown";
}

const char* micro_kernel_variant_name(MicroKernelVariant variant) {
  switch (variant) {
    case MicroKernelVariant::kPortable:
      return "portable";
    case MicroKernelVariant::kAvx2Fma:
      return "avx2+fma";
    case MicroKernelVariant::kAvx512:
      return "avx512";
  }
  return "unknown";
}

std::optional<KernelTier> parse_kernel_tier(const std::string& name) {
  const std::string lower = util::to_lower(name);
  if (lower == "naive") return KernelTier::kNaive;
  if (lower == "tiled") return KernelTier::kTiled;
  if (lower == "simd" || lower == "packed") return KernelTier::kPacked;
  return std::nullopt;
}

std::optional<MicroKernelVariant> parse_micro_kernel_variant(
    const std::string& name) {
  const std::string lower = util::to_lower(name);
  if (lower == "portable") return MicroKernelVariant::kPortable;
  if (lower == "avx2" || lower == "avx2+fma")
    return MicroKernelVariant::kAvx2Fma;
  if (lower == "avx512" || lower == "avx-512")
    return MicroKernelVariant::kAvx512;
  return std::nullopt;
}

std::optional<KernelPin> parse_kernel_pin(const std::string& name) {
  if (const auto tier = parse_kernel_tier(name); tier.has_value())
    return KernelPin{tier, std::nullopt};
  if (const auto variant = parse_micro_kernel_variant(name);
      variant.has_value())
    // A variant name implies the packed tier: "avx512" means "run the
    // packed path on the AVX-512 micro-kernel", not just a preference.
    return KernelPin{KernelTier::kPacked, variant};
  return std::nullopt;
}

const char* kernel_pin_names() {
  return "naive, tiled, simd, portable, avx2 or avx512";
}

void apply_kernel_pin(const std::string& name) {
  const std::optional<KernelPin> pin = parse_kernel_pin(name);
  HMXP_REQUIRE(pin.has_value(), std::string("kernel pin must be ") +
                                    kernel_pin_names() + ", got \"" + name +
                                    '"');
  force_micro_kernel_variant(pin->variant);  // throws before any change
  force_kernel_tier(pin->tier);
}

KernelTier active_kernel_tier() {
  const int forced = forced_tier.load(std::memory_order_relaxed);
  if (forced >= 0) return static_cast<KernelTier>(forced);
  return env_pin().tier.value_or(KernelTier::kPacked);
}

void force_kernel_tier(std::optional<KernelTier> tier) {
  forced_tier.store(tier.has_value() ? static_cast<int>(*tier) : -1,
                    std::memory_order_relaxed);
}

std::optional<KernelTier> forced_kernel_tier() {
  const int forced = forced_tier.load(std::memory_order_relaxed);
  if (forced < 0) return std::nullopt;
  return static_cast<KernelTier>(forced);
}

MicroKernelVariant active_micro_kernel_variant() {
  const int forced = forced_variant.load(std::memory_order_relaxed);
  if (forced >= 0) return static_cast<MicroKernelVariant>(forced);
  if (env_pin().variant.has_value()) return *env_pin().variant;
  return widest_supported_variant();
}

void force_micro_kernel_variant(std::optional<MicroKernelVariant> variant) {
  if (variant.has_value())
    HMXP_REQUIRE(micro_kernel_supported(*variant),
                 std::string("cannot pin micro-kernel ") +
                     micro_kernel_variant_name(*variant) +
                     ": this CPU cannot execute it");
  forced_variant.store(
      variant.has_value() ? static_cast<int>(*variant) : -1,
      std::memory_order_relaxed);
}

std::optional<MicroKernelVariant> forced_micro_kernel_variant() {
  const int forced = forced_variant.load(std::memory_order_relaxed);
  if (forced < 0) return std::nullopt;
  return static_cast<MicroKernelVariant>(forced);
}

std::size_t micro_kernel_mr(MicroKernelVariant variant) {
  switch (variant) {
    case MicroKernelVariant::kPortable:
      return 4;
    case MicroKernelVariant::kAvx2Fma:
      return 6;
    case MicroKernelVariant::kAvx512:
      return 8;
  }
  return 4;
}

std::size_t micro_kernel_nr(MicroKernelVariant variant) {
  (void)variant;  // every implementation accumulates 8-wide rows of C
  return 8;
}

bool cpu_supports_avx2_fma() {
#if defined(__x86_64__) && defined(__GNUC__)
  static const bool supported =
      __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
  return supported;
#else
  return false;
#endif
}

bool cpu_supports_avx512() {
#if defined(__x86_64__) && defined(__GNUC__)
  static const bool supported = __builtin_cpu_supports("avx512f") != 0;
  return supported;
#else
  return false;
#endif
}

bool micro_kernel_supported(MicroKernelVariant variant) {
  switch (variant) {
    case MicroKernelVariant::kPortable:
      return true;
    case MicroKernelVariant::kAvx2Fma:
      return cpu_supports_avx2_fma();
    case MicroKernelVariant::kAvx512:
      return cpu_supports_avx512();
  }
  return false;
}

void force_portable_micro_kernel(bool force) {
  force_micro_kernel_variant(
      force ? std::optional(MicroKernelVariant::kPortable) : std::nullopt);
}

bool portable_micro_kernel_forced() {
  return forced_micro_kernel_variant() == MicroKernelVariant::kPortable;
}

const char* packed_kernel_variant() {
  return micro_kernel_variant_name(active_micro_kernel_variant());
}

}  // namespace hmxp::matrix
