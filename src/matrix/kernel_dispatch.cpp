#include "matrix/kernel_dispatch.hpp"

#include <atomic>
#include <cstdlib>

#include "util/check.hpp"
#include "util/strings.hpp"

namespace hmxp::matrix {

namespace {

// Encodes optional<KernelTier> in an atomic int: -1 = no override.
std::atomic<int> forced_tier{-1};

KernelTier env_or_default_tier() {
  // Read once: the environment cannot retarget a running process, and
  // getenv is not safe against concurrent setenv.
  static const KernelTier resolved = [] {
    const char* forced = std::getenv("HMXP_FORCE_KERNEL");
    if (forced == nullptr || *forced == '\0') return KernelTier::kPacked;
    const std::optional<KernelTier> tier = parse_kernel_tier(forced);
    HMXP_REQUIRE(tier.has_value(),
                 "HMXP_FORCE_KERNEL must be naive, tiled or simd, got \"" +
                     std::string(forced) + '"');
    return *tier;
  }();
  return resolved;
}

}  // namespace

const char* kernel_tier_name(KernelTier tier) {
  switch (tier) {
    case KernelTier::kNaive:
      return "naive";
    case KernelTier::kTiled:
      return "tiled";
    case KernelTier::kPacked:
      return "simd";
  }
  return "unknown";
}

std::optional<KernelTier> parse_kernel_tier(const std::string& name) {
  const std::string lower = util::to_lower(name);
  if (lower == "naive") return KernelTier::kNaive;
  if (lower == "tiled") return KernelTier::kTiled;
  if (lower == "simd" || lower == "packed") return KernelTier::kPacked;
  return std::nullopt;
}

KernelTier active_kernel_tier() {
  const int forced = forced_tier.load(std::memory_order_relaxed);
  if (forced >= 0) return static_cast<KernelTier>(forced);
  return env_or_default_tier();
}

void force_kernel_tier(std::optional<KernelTier> tier) {
  forced_tier.store(tier.has_value() ? static_cast<int>(*tier) : -1,
                    std::memory_order_relaxed);
}

std::optional<KernelTier> forced_kernel_tier() {
  const int forced = forced_tier.load(std::memory_order_relaxed);
  if (forced < 0) return std::nullopt;
  return static_cast<KernelTier>(forced);
}

bool cpu_supports_avx2_fma() {
#if defined(__x86_64__) && defined(__GNUC__)
  static const bool supported =
      __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
  return supported;
#else
  return false;
#endif
}

namespace {
std::atomic<bool> portable_forced{false};
}  // namespace

void force_portable_micro_kernel(bool force) {
  portable_forced.store(force, std::memory_order_relaxed);
}

bool portable_micro_kernel_forced() {
  return portable_forced.load(std::memory_order_relaxed);
}

const char* packed_kernel_variant() {
  return cpu_supports_avx2_fma() && !portable_micro_kernel_forced()
             ? "avx2+fma"
             : "portable";
}

}  // namespace hmxp::matrix
