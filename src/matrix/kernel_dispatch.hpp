// Runtime kernel dispatch for the GEMM compute plane.
//
// Three tiers, slowest to fastest:
//   kNaive -- the i-j-k oracle (tests only);
//   kTiled -- the cache-tiled scalar kernel (the pre-packing production
//             kernel, kept as the portable comparison baseline);
//   kPacked -- the BLIS-style path: operands packed into aligned
//             MR/NR slivers and driven through a register-tiled
//             micro-kernel. The micro-kernel implementation (AVX2+FMA
//             when the CPU has it, auto-vectorized portable otherwise)
//             is selected once per process.
//
// The active tier is resolved once, in this order:
//   1. a programmatic force_kernel_tier() override (tests/benches);
//   2. the HMXP_FORCE_KERNEL environment variable (naive|tiled|simd),
//      so any host -- including CI machines without AVX2 -- can pin a
//      tier; an unrecognized value throws, typos must not silently
//      change an experiment;
//   3. kPacked (it beats kTiled on every host: packing alone wins even
//      with the portable micro-kernel).
#pragma once

#include <optional>
#include <string>

namespace hmxp::matrix {

enum class KernelTier { kNaive, kTiled, kPacked };

/// "naive", "tiled" or "simd" (the user-facing name of kPacked).
const char* kernel_tier_name(KernelTier tier);

/// Parses a tier name (case-insensitive); nullopt if unrecognized.
std::optional<KernelTier> parse_kernel_tier(const std::string& name);

/// The tier gemm_auto/gemm_parallel dispatch to right now.
KernelTier active_kernel_tier();

/// Pins (or, with nullopt, unpins) the dispatch tier for this process.
/// Takes precedence over HMXP_FORCE_KERNEL. Not thread-safe against
/// concurrent GEMM calls; call from test/bench setup only.
void force_kernel_tier(std::optional<KernelTier> tier);

/// The programmatic pin currently in force (nullopt = none). The
/// process transport captures it (together with active_kernel_tier())
/// before forking and re-asserts it inside every worker process, so a
/// --kernel / force_kernel_tier() choice governs the micro-kernel on
/// both transports.
std::optional<KernelTier> forced_kernel_tier();

/// True when the running CPU can execute the AVX2+FMA micro-kernel.
bool cpu_supports_avx2_fma();

/// Test/bench hook: pin the packed tier's micro-kernel to the portable
/// implementation even on an AVX2 host, so the fallback can be measured
/// and tested anywhere. Not thread-safe against concurrent GEMM calls.
void force_portable_micro_kernel(bool force);
bool portable_micro_kernel_forced();

/// Micro-kernel implementation the packed tier uses right now:
/// "avx2+fma" or "portable".
const char* packed_kernel_variant();

}  // namespace hmxp::matrix
