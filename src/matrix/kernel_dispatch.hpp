// Runtime kernel dispatch for the GEMM compute plane.
//
// Two orthogonal axes are resolved at runtime:
//
//  * the TIER -- which algorithm runs:
//      kNaive  -- the i-j-k oracle (tests only);
//      kTiled  -- the cache-tiled scalar kernel (the pre-packing
//                 production kernel, kept as the portable comparison
//                 baseline);
//      kPacked -- the BLIS-style path: operands packed into aligned
//                 MR/NR slivers and driven through a register-tiled
//                 micro-kernel;
//
//  * the packed tier's MICRO-KERNEL VARIANT -- which ISA implements the
//    register tile, widest supported first:
//      kAvx512   -- 8x8, zmm accumulators (AVX-512F);
//      kAvx2Fma  -- 6x8, ymm accumulators (AVX2+FMA);
//      kPortable -- 4x8, auto-vectorized scalar (baseline x86-64 or
//                   any other architecture).
//
// The active tier/variant pair is resolved once, in this order:
//   1. programmatic pins -- force_kernel_tier() /
//      force_micro_kernel_variant() (tests/benches/forked workers);
//   2. the HMXP_FORCE_KERNEL environment variable. It accepts tier
//      names (naive|tiled|simd) and variant names (portable|avx2|
//      avx512 -- each implies the packed tier), so any host --
//      including CI machines without AVX2/AVX-512 -- can pin the
//      dispatch; an unrecognized value throws, typos must not silently
//      change an experiment;
//   3. kPacked with the widest micro-kernel cpuid reports.
//
// Blocking parameters (MC/KC/NC) for the packed tier are the third
// runtime axis; they live in matrix/tuning.hpp (searched at first use,
// persisted per host).
#pragma once

#include <cstddef>
#include <optional>
#include <string>

namespace hmxp::matrix {

enum class KernelTier { kNaive, kTiled, kPacked };

/// Micro-kernel implementations of the packed tier, narrowest first
/// (the enum order is also the preference order reversed).
enum class MicroKernelVariant { kPortable, kAvx2Fma, kAvx512 };

/// "naive", "tiled" or "simd" (the user-facing name of kPacked).
const char* kernel_tier_name(KernelTier tier);

/// "portable", "avx2+fma" or "avx512".
const char* micro_kernel_variant_name(MicroKernelVariant variant);

/// Parses a tier name (case-insensitive); nullopt if unrecognized.
std::optional<KernelTier> parse_kernel_tier(const std::string& name);

/// Parses a variant name (case-insensitive; "avx2" and "avx2+fma" both
/// name kAvx2Fma); nullopt if unrecognized.
std::optional<MicroKernelVariant> parse_micro_kernel_variant(
    const std::string& name);

/// A combined dispatch pin as HMXP_FORCE_KERNEL / --kernel spell it:
/// tier names pin only the tier; variant names pin the packed tier AND
/// its micro-kernel.
struct KernelPin {
  std::optional<KernelTier> tier;
  std::optional<MicroKernelVariant> variant;
};

/// Parses a pin name (naive|tiled|simd|portable|avx2|avx512,
/// case-insensitive); nullopt if unrecognized.
std::optional<KernelPin> parse_kernel_pin(const std::string& name);

/// Every name parse_kernel_pin accepts, for error messages:
/// "naive, tiled, simd, portable, avx2 or avx512".
const char* kernel_pin_names();

/// Parses `name` and installs it as the programmatic pin
/// (force_kernel_tier + force_micro_kernel_variant). Throws
/// std::invalid_argument listing kernel_pin_names() on an unrecognized
/// name, and if the named ISA is not executable on this host.
void apply_kernel_pin(const std::string& name);

/// The tier gemm_auto/gemm_parallel dispatch to right now.
KernelTier active_kernel_tier();

/// Pins (or, with nullopt, unpins) the dispatch tier for this process.
/// Takes precedence over HMXP_FORCE_KERNEL. Not thread-safe against
/// concurrent GEMM calls; call from test/bench setup only.
void force_kernel_tier(std::optional<KernelTier> tier);

/// The programmatic pin currently in force (nullopt = none). The
/// process/shm transports capture it (together with the full
/// matrix::KernelConfig) before forking and re-assert it inside every
/// worker process, so a --kernel / force_kernel_tier() choice governs
/// the micro-kernel on every transport.
std::optional<KernelTier> forced_kernel_tier();

/// The micro-kernel the packed tier dispatches to right now
/// (pin > HMXP_FORCE_KERNEL variant > widest supported).
MicroKernelVariant active_micro_kernel_variant();

/// Pins (or unpins) the packed tier's micro-kernel. Pinning narrower
/// than the host (portable/avx2 on an AVX-512 machine) is always legal
/// -- that is how the fallbacks are tested and measured anywhere --
/// but pinning an ISA the host cannot execute throws
/// std::invalid_argument. Not thread-safe against concurrent GEMM.
void force_micro_kernel_variant(std::optional<MicroKernelVariant> variant);
std::optional<MicroKernelVariant> forced_micro_kernel_variant();

/// Register-tile extents of a variant's micro-kernel: MR rows x NR
/// columns of C per invocation. Blocking parameters are validated
/// against these (MC must be a multiple of MR, NC of NR).
std::size_t micro_kernel_mr(MicroKernelVariant variant);
std::size_t micro_kernel_nr(MicroKernelVariant variant);

/// True when the running CPU can execute the AVX2+FMA micro-kernel.
bool cpu_supports_avx2_fma();

/// True when the running CPU can execute the AVX-512 micro-kernel
/// (AVX-512F is sufficient for the 8x8 double kernel).
bool cpu_supports_avx512();

/// True when `variant` can execute on this host.
bool micro_kernel_supported(MicroKernelVariant variant);

/// Back-compat wrapper: force=true pins kPortable, force=false unpins.
void force_portable_micro_kernel(bool force);
bool portable_micro_kernel_forced();

/// Name of the micro-kernel the packed tier uses right now:
/// "avx512", "avx2+fma" or "portable" -- the same string
/// ExecutorReport::kernel_variant and the bench context carry.
const char* packed_kernel_variant();

}  // namespace hmxp::matrix
