#include "matrix/matrix.hpp"

#include <algorithm>
#include <cmath>

namespace hmxp::matrix {

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n, 0.0);
  for (std::size_t i = 0; i < n; ++i) m.at(i, i) = 1.0;
  return m;
}

Matrix Matrix::random(std::size_t rows, std::size_t cols, util::Rng& rng,
                      double lo, double hi) {
  Matrix m(rows, cols);
  for (double& value : m.data_) value = rng.uniform(lo, hi);
  return m;
}

View Matrix::window(std::size_t row0, std::size_t col0, std::size_t rows,
                    std::size_t cols) {
  HMXP_REQUIRE(row0 + rows <= rows_ && col0 + cols <= cols_,
               "window exceeds matrix bounds");
  return View(data_.data() + row0 * cols_ + col0, rows, cols, cols_);
}

ConstView Matrix::window(std::size_t row0, std::size_t col0, std::size_t rows,
                         std::size_t cols) const {
  HMXP_REQUIRE(row0 + rows <= rows_ && col0 + cols <= cols_,
               "window exceeds matrix bounds");
  return ConstView(data_.data() + row0 * cols_ + col0, rows, cols, cols_);
}

double Matrix::max_abs_diff(const Matrix& a, const Matrix& b) {
  HMXP_REQUIRE(a.rows() == b.rows() && a.cols() == b.cols(),
               "shape mismatch in max_abs_diff");
  double worst = 0.0;
  for (std::size_t k = 0; k < a.data_.size(); ++k)
    worst = std::max(worst, std::fabs(a.data_[k] - b.data_[k]));
  return worst;
}

double Matrix::frobenius_norm() const {
  double sum = 0.0;
  for (double value : data_) sum += value * value;
  return std::sqrt(sum);
}

void copy_into(ConstView src, View dst) {
  HMXP_REQUIRE(src.rows() == dst.rows() && src.cols() == dst.cols(),
               "shape mismatch in copy_into");
  for (std::size_t i = 0; i < src.rows(); ++i)
    std::copy(src.row(i), src.row(i) + src.cols(), dst.row(i));
}

void accumulate(ConstView src, View dst) {
  HMXP_REQUIRE(src.rows() == dst.rows() && src.cols() == dst.cols(),
               "shape mismatch in accumulate");
  for (std::size_t i = 0; i < src.rows(); ++i) {
    const double* s = src.row(i);
    double* d = dst.row(i);
    for (std::size_t j = 0; j < src.cols(); ++j) d[j] += s[j];
  }
}

}  // namespace hmxp::matrix
