// Dense row-major double-precision matrix and lightweight mutable /
// immutable views. This is the data substrate the threaded runtime
// multiplies for real; the simulator never touches element data.
// Storage is 64-byte aligned (util::AlignedVector) so the packed GEMM
// path reads cache-line-aligned panels and adjacent matrices never
// share a line across worker threads.
#pragma once

#include <cstddef>
#include <vector>

#include "util/aligned.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace hmxp::matrix {

class ConstView;

/// Non-owning mutable view of a rows x cols window with a row stride.
class View {
 public:
  View(double* data, std::size_t rows, std::size_t cols, std::size_t stride)
      : data_(data), rows_(rows), cols_(cols), stride_(stride) {
    HMXP_REQUIRE(stride >= cols, "stride must cover a full row");
  }
  double& at(std::size_t i, std::size_t j) const {
    HMXP_CHECK(i < rows_ && j < cols_, "view index out of range");
    return data_[i * stride_ + j];
  }
  double* row(std::size_t i) const { return data_ + i * stride_; }
  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t stride() const { return stride_; }
  double* data() const { return data_; }

 private:
  double* data_;
  std::size_t rows_, cols_, stride_;
};

/// Non-owning immutable view.
class ConstView {
 public:
  ConstView(const double* data, std::size_t rows, std::size_t cols,
            std::size_t stride)
      : data_(data), rows_(rows), cols_(cols), stride_(stride) {
    HMXP_REQUIRE(stride >= cols, "stride must cover a full row");
  }
  // Implicit: every mutable view is readable.
  ConstView(const View& view)  // NOLINT(google-explicit-constructor)
      : data_(view.data()), rows_(view.rows()), cols_(view.cols()),
        stride_(view.stride()) {}
  double at(std::size_t i, std::size_t j) const {
    HMXP_CHECK(i < rows_ && j < cols_, "view index out of range");
    return data_[i * stride_ + j];
  }
  const double* row(std::size_t i) const { return data_ + i * stride_; }
  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t stride() const { return stride_; }
  const double* data() const { return data_; }

 private:
  const double* data_;
  std::size_t rows_, cols_, stride_;
};

/// Owning dense row-major matrix.
class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  static Matrix identity(std::size_t n);
  /// Entries i.i.d. uniform in [lo, hi) from the given deterministic rng.
  static Matrix random(std::size_t rows, std::size_t cols, util::Rng& rng,
                       double lo = -1.0, double hi = 1.0);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  double& at(std::size_t i, std::size_t j) {
    HMXP_CHECK(i < rows_ && j < cols_, "matrix index out of range");
    return data_[i * cols_ + j];
  }
  double at(std::size_t i, std::size_t j) const {
    HMXP_CHECK(i < rows_ && j < cols_, "matrix index out of range");
    return data_[i * cols_ + j];
  }

  double* data() { return data_.data(); }
  const double* data() const { return data_.data(); }

  /// Whole-matrix views.
  View view() { return View(data_.data(), rows_, cols_, cols_); }
  ConstView view() const { return ConstView(data_.data(), rows_, cols_, cols_); }

  /// Window view of the [row0, row0+rows) x [col0, col0+cols) submatrix.
  View window(std::size_t row0, std::size_t col0, std::size_t rows,
              std::size_t cols);
  ConstView window(std::size_t row0, std::size_t col0, std::size_t rows,
                   std::size_t cols) const;

  void fill(double value) { std::fill(data_.begin(), data_.end(), value); }

  /// Largest |a_ij - b_ij|; requires identical shapes.
  static double max_abs_diff(const Matrix& a, const Matrix& b);

  /// Frobenius norm; used for relative-error checks in tests.
  double frobenius_norm() const;

  bool operator==(const Matrix& other) const = default;

 private:
  std::size_t rows_ = 0, cols_ = 0;
  util::AlignedVector<double> data_;
};

/// Copies a window of `src` into a dense buffer (used when the runtime
/// serializes a block into a message).
void copy_into(ConstView src, View dst);

/// dst += src, element-wise over equal-shaped views.
void accumulate(ConstView src, View dst);

}  // namespace hmxp::matrix
