#include "matrix/partition.hpp"

#include <sstream>

#include "util/check.hpp"

namespace hmxp::matrix {

std::string BlockRect::to_string() const {
  std::ostringstream os;
  os << "[" << i0 << "," << i1 << ")x[" << j0 << "," << j1 << ")";
  return os.str();
}

namespace {
std::size_t div_up(std::size_t a, std::size_t b) { return (a + b - 1) / b; }
}  // namespace

Partition::Partition(std::size_t n_a, std::size_t n_ab, std::size_t n_b,
                     std::size_t q)
    : n_a_(n_a), n_ab_(n_ab), n_b_(n_b), q_(q) {
  HMXP_REQUIRE(q >= 1, "block size q must be positive");
  HMXP_REQUIRE(n_a >= 1 && n_ab >= 1 && n_b >= 1, "matrix dims must be positive");
  r_ = div_up(n_a, q);
  t_ = div_up(n_ab, q);
  s_ = div_up(n_b, q);
}

Partition Partition::from_blocks(std::size_t r, std::size_t t, std::size_t s,
                                 std::size_t q) {
  HMXP_REQUIRE(r >= 1 && t >= 1 && s >= 1, "block dims must be positive");
  HMXP_REQUIRE(q >= 1, "block size q must be positive");
  Partition p;
  p.q_ = q;
  p.r_ = r;
  p.t_ = t;
  p.s_ = s;
  p.n_a_ = r * q;
  p.n_ab_ = t * q;
  p.n_b_ = s * q;
  return p;
}

std::size_t Partition::row_begin(std::size_t i) const {
  HMXP_REQUIRE(i < r_, "block-row out of range");
  return i * q_;
}

std::size_t Partition::row_size(std::size_t i) const {
  HMXP_REQUIRE(i < r_, "block-row out of range");
  return (i + 1 == r_) ? n_a_ - i * q_ : q_;
}

std::size_t Partition::col_begin(std::size_t j) const {
  HMXP_REQUIRE(j < s_, "block-col out of range");
  return j * q_;
}

std::size_t Partition::col_size(std::size_t j) const {
  HMXP_REQUIRE(j < s_, "block-col out of range");
  return (j + 1 == s_) ? n_b_ - j * q_ : q_;
}

std::size_t Partition::inner_begin(std::size_t k) const {
  HMXP_REQUIRE(k < t_, "inner block out of range");
  return k * q_;
}

std::size_t Partition::inner_size(std::size_t k) const {
  HMXP_REQUIRE(k < t_, "inner block out of range");
  return (k + 1 == t_) ? n_ab_ - k * q_ : q_;
}

std::string Partition::to_string() const {
  std::ostringstream os;
  os << "Partition{q=" << q_ << ", r=" << r_ << ", t=" << t_ << ", s=" << s_
     << "}";
  return os.str();
}

std::size_t chunk_count(std::size_t rows, std::size_t cols,
                        model::BlockCount mu) {
  HMXP_REQUIRE(mu >= 1, "mu must be positive");
  const auto m = static_cast<std::size_t>(mu);
  return div_up(rows, m) * div_up(cols, m);
}

}  // namespace hmxp::matrix
