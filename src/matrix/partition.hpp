// Figure 1 of the paper: the r x t x s block decomposition.
//
//   A (nA x nAB)  -> r horizontal stripes of t blocks      A_{i,k}
//   B (nAB x nB)  -> s vertical stripes of t blocks        B_{k,j}
//   C (nA x nB)   -> r x s blocks                          C_{i,j}
//
// with square q x q blocks (q = 80 or 100 to suit Level-3 BLAS). Block
// indices are 0-based in code (the paper is 1-based). Edge blocks may be
// smaller when q does not divide the element dimensions; helpers expose
// the exact element window of every block so schedulers and the runtime
// never recompute geometry.
#pragma once

#include <cstddef>
#include <string>

#include "model/layout.hpp"

namespace hmxp::matrix {

/// Index of one q x q block within a partitioned matrix.
struct BlockCoord {
  std::size_t i = 0;  // block-row
  std::size_t j = 0;  // block-col
  bool operator==(const BlockCoord&) const = default;
  auto operator<=>(const BlockCoord&) const = default;
};

/// Half-open rectangle of blocks [i0, i1) x [j0, j1).
struct BlockRect {
  std::size_t i0 = 0, i1 = 0, j0 = 0, j1 = 0;
  std::size_t rows() const { return i1 - i0; }
  std::size_t cols() const { return j1 - j0; }
  std::size_t count() const { return rows() * cols(); }
  bool empty() const { return i0 >= i1 || j0 >= j1; }
  bool contains(BlockCoord coord) const {
    return coord.i >= i0 && coord.i < i1 && coord.j >= j0 && coord.j < j1;
  }
  bool overlaps(const BlockRect& other) const {
    return i0 < other.i1 && other.i0 < i1 && j0 < other.j1 && other.j0 < j1;
  }
  bool operator==(const BlockRect&) const = default;
  std::string to_string() const;
};

/// Geometry of one C = C + A * B problem in blocks.
class Partition {
 public:
  /// From element dimensions: A is n_a x n_ab, B is n_ab x n_b.
  Partition(std::size_t n_a, std::size_t n_ab, std::size_t n_b, std::size_t q);

  /// Directly in block counts (all blocks full q x q; q still recorded
  /// for cost conversions). Used by the simulator-driven experiments.
  static Partition from_blocks(std::size_t r, std::size_t t, std::size_t s,
                               std::size_t q);

  std::size_t q() const { return q_; }
  std::size_t r() const { return r_; }  // block-rows of A and C
  std::size_t t() const { return t_; }  // inner block dimension
  std::size_t s() const { return s_; }  // block-cols of B and C

  std::size_t n_a() const { return n_a_; }
  std::size_t n_ab() const { return n_ab_; }
  std::size_t n_b() const { return n_b_; }

  /// Total C blocks (r * s) and total block updates (r * s * t).
  std::size_t c_blocks() const { return r_ * s_; }
  std::size_t total_updates() const { return r_ * s_ * t_; }

  /// Element extents of block index `i` along each axis (edge blocks may
  /// be short).
  std::size_t row_begin(std::size_t i) const;   // element row of block-row i
  std::size_t row_size(std::size_t i) const;
  std::size_t col_begin(std::size_t j) const;   // element col of block-col j
  std::size_t col_size(std::size_t j) const;
  std::size_t inner_begin(std::size_t k) const; // element index of block k
  std::size_t inner_size(std::size_t k) const;

  bool operator==(const Partition&) const = default;
  std::string to_string() const;

 private:
  Partition() = default;
  std::size_t n_a_ = 0, n_ab_ = 0, n_b_ = 0, q_ = 0;
  std::size_t r_ = 0, t_ = 0, s_ = 0;
};

/// Splits a rectangle [0,r) x [j0,j1) into chunks of at most mu x mu
/// blocks, column-major (all chunks of a column group before moving
/// right), the traversal order of Algorithm 1. Exposed for tests.
std::size_t chunk_count(std::size_t rows, std::size_t cols,
                        model::BlockCount mu);

}  // namespace hmxp::matrix
