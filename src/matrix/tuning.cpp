#include "matrix/tuning.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <limits>
#include <mutex>
#include <sstream>
#include <string>
#include <vector>

#include <unistd.h>

#include "matrix/gemm.hpp"
#include "matrix/matrix.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"

namespace hmxp::matrix {

namespace {

/// Bumped whenever the candidate space, measurement or file format
/// changes: a stale cache must re-tune, never install old winners.
constexpr const char* kCacheHeader = "hmxp-tune v1";

constexpr std::size_t kMaxMcBound = 4096;
constexpr std::size_t kMaxNcBound = 16384;
constexpr std::size_t kMinKc = 4;
constexpr std::size_t kMaxKc = 8192;
constexpr std::size_t kMaxPackedBytes = 256 * 1024 * 1024;

std::size_t round_down_to(std::size_t value, std::size_t unit) {
  return std::max(unit, value / unit * unit);
}

/// Key fragments must survive a line-oriented tab-separated file.
std::string sanitize_key_fragment(const std::string& raw) {
  std::string out = raw;
  for (char& ch : out)
    if (ch == '\t' || ch == '\n' || ch == '\r' || ch == ' ') ch = '_';
  return out;
}

/// First "model name" line of /proc/cpuinfo; "unknown-cpu" elsewhere.
/// This keys the tuning cache: two hosts sharing a file never install
/// each other's winners unless the silicon actually matches.
const std::string& cpu_model_string() {
  static const std::string model = [] {
    std::ifstream cpuinfo("/proc/cpuinfo");
    std::string line;
    while (std::getline(cpuinfo, line)) {
      const auto colon = line.find(':');
      if (colon == std::string::npos) continue;
      if (line.rfind("model name", 0) == 0) {
        std::string value = line.substr(colon + 1);
        const auto begin = value.find_first_not_of(" \t");
        if (begin != std::string::npos) return value.substr(begin);
      }
    }
    return std::string("unknown-cpu");
  }();
  return model;
}

std::optional<std::size_t> parse_sysfs_cache_size(const std::string& text) {
  if (text.empty()) return std::nullopt;
  std::size_t value = 0;
  std::size_t i = 0;
  for (; i < text.size() && text[i] >= '0' && text[i] <= '9'; ++i)
    value = value * 10 + static_cast<std::size_t>(text[i] - '0');
  if (i == 0) return std::nullopt;
  if (i < text.size()) {
    if (text[i] == 'K')
      value *= 1024;
    else if (text[i] == 'M')
      value *= 1024 * 1024;
    else if (text[i] == 'G')
      value *= 1024 * 1024 * 1024;
  }
  return value;
}

std::string read_sysfs_line(const std::filesystem::path& path) {
  std::ifstream stream(path);
  std::string line;
  std::getline(stream, line);
  while (!line.empty() && (line.back() == '\n' || line.back() == '\r'))
    line.pop_back();
  return line;
}

// ---- tune mode --------------------------------------------------------------

std::atomic<int> programmatic_tune_mode{-1};

// ---- forced blocking overlay ------------------------------------------------

// params written before ready.store(release); readers load(acquire)
// first. Re-pinning while GEMM runs concurrently is documented unsafe
// (same contract as force_kernel_tier).
std::atomic<bool> forced_ready{false};
BlockingParams forced_params;

// ---- resolved (tuned) blocking per variant ----------------------------------

struct ResolvedSlot {
  std::atomic<bool> ready{false};
  BlockingParams params;
  const char* source = "";
  std::size_t measured = 0;
};

ResolvedSlot resolved_slots[3];
std::mutex resolve_mutex;

ResolvedSlot& slot_for(MicroKernelVariant variant) {
  return resolved_slots[static_cast<int>(variant)];
}

// ---- cache path override ----------------------------------------------------

std::mutex cache_override_mutex;
std::optional<std::string> cache_override;

// ---- measurement ------------------------------------------------------------

/// Per-candidate score: best wall time over `reps` fixed-work GEMMs,
/// measured in INTERLEAVED rounds (round-robin over the candidates)
/// so machine-wide drift -- another process waking up mid-sweep --
/// lands on every candidate instead of whichever happened to be
/// timed then. The problem size is a multiple of every register tile
/// (96 and 480 are multiples of lcm(4,6,8) = 24) so no candidate is
/// penalized by edge handling; debug builds and smoke mode shrink it
/// -- there the pipeline matters, not the ranking.
std::vector<double> measure_candidates(
    const std::vector<BlockingParams>& candidates,
    MicroKernelVariant variant, std::size_t n, int reps) {
  util::Rng rng(0x7A11ED);
  const Matrix a = Matrix::random(n, n, rng);
  const Matrix b = Matrix::random(n, n, rng);
  Matrix c(n, n, 0.0);
  // Warm-up pass: fault in the matrices and grow the pack buffers to
  // every candidate's footprint outside the timed rounds.
  for (const BlockingParams& params : candidates)
    gemm_simd_with_blocking(a.view(), b.view(), c.view(), params, variant);
  std::vector<double> best(candidates.size(),
                           std::numeric_limits<double>::infinity());
  for (int rep = 0; rep < reps; ++rep) {
    for (std::size_t i = 0; i < candidates.size(); ++i) {
      const auto begin = std::chrono::steady_clock::now();
      gemm_simd_with_blocking(a.view(), b.view(), c.view(), candidates[i],
                              variant);
      const double seconds =
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        begin)
              .count();
      best[i] = std::min(best[i], seconds);
    }
  }
  return best;
}

}  // namespace

std::string blocking_to_string(const BlockingParams& params) {
  return std::to_string(params.mc) + 'x' + std::to_string(params.kc) + 'x' +
         std::to_string(params.nc);
}

void validate_blocking(const BlockingParams& params, std::size_t mr,
                       std::size_t nr) {
  HMXP_REQUIRE(mr > 0 && nr > 0, "register tile must be nonzero");
  HMXP_REQUIRE(params.mc > 0 && params.kc > 0 && params.nc > 0,
               "blocking extents must be nonzero, got " +
                   blocking_to_string(params));
  HMXP_REQUIRE(params.mc % mr == 0,
               "MC=" + std::to_string(params.mc) +
                   " must be a multiple of the micro-kernel MR=" +
                   std::to_string(mr));
  HMXP_REQUIRE(params.nc % nr == 0,
               "NC=" + std::to_string(params.nc) +
                   " must be a multiple of the micro-kernel NR=" +
                   std::to_string(nr));
  HMXP_REQUIRE(params.mc <= kMaxMcBound && params.nc <= kMaxNcBound &&
                   params.kc >= kMinKc && params.kc <= kMaxKc,
               "blocking " + blocking_to_string(params) +
                   " is outside the sane range");
  const std::size_t packed_doubles =
      params.mc * params.kc + params.kc * params.nc;
  HMXP_REQUIRE(packed_doubles <= kMaxPackedBytes / sizeof(double),
               "blocking " + blocking_to_string(params) +
                   " would pack more than 256 MiB");
}

const CacheHierarchy& detect_cache_hierarchy() {
  static const CacheHierarchy hierarchy = [] {
    CacheHierarchy result;
    namespace fs = std::filesystem;
    const fs::path base("/sys/devices/system/cpu/cpu0/cache");
    std::error_code ec;
    if (!fs::is_directory(base, ec)) return result;
    for (const auto& entry : fs::directory_iterator(base, ec)) {
      const fs::path dir = entry.path();
      if (dir.filename().string().rfind("index", 0) != 0) continue;
      const std::string level = read_sysfs_line(dir / "level");
      const std::string type = read_sysfs_line(dir / "type");
      const auto size = parse_sysfs_cache_size(read_sysfs_line(dir / "size"));
      if (!size.has_value() || *size == 0) continue;
      if (level == "1" && type == "Data") {
        result.l1d_bytes = *size;
        result.detected = true;
      } else if (level == "2" && type != "Instruction") {
        result.l2_bytes = *size;
        result.detected = true;
      } else if (level == "3" && type != "Instruction") {
        result.l3_bytes = *size;
        result.detected = true;
      }
    }
    return result;
  }();
  return hierarchy;
}

std::vector<BlockingParams> blocking_candidates(const CacheHierarchy& caches,
                                                std::size_t mr,
                                                std::size_t nr, bool smoke) {
  HMXP_REQUIRE(mr > 0 && nr > 0, "register tile must be nonzero");
  // Analytic BLIS seeding: the streamed KC x NR B sliver plus the
  // KC x MR A sliver should occupy about half of L1d; the MC x KC A
  // panel half of L2; the KC x NC B panel half of L3 (capped -- a
  // panel bigger than a few MiB stops paying even on huge LLCs).
  const auto fit_kc = [&](std::size_t scale_num, std::size_t scale_den) {
    const std::size_t raw = caches.l1d_bytes * scale_num /
                            (scale_den * 2 * sizeof(double) * (mr + nr));
    return std::clamp<std::size_t>(raw, 32, 2048);
  };
  const auto fit_mc = [&](std::size_t kc) {
    const std::size_t raw = caches.l2_bytes / (2 * sizeof(double) * kc);
    return std::clamp<std::size_t>(round_down_to(raw, mr), mr, kMaxMcBound);
  };
  const auto fit_nc = [&](std::size_t kc) {
    const std::size_t raw =
        std::min<std::size_t>(caches.l3_bytes / (2 * sizeof(double) * kc),
                              kMaxNcBound / 4);
    return std::clamp<std::size_t>(round_down_to(raw, nr), nr, kMaxNcBound);
  };

  std::vector<BlockingParams> candidates;
  const auto push = [&](BlockingParams params) {
    try {
      validate_blocking(params, mr, nr);
    } catch (const std::invalid_argument&) {
      return;  // a hierarchy so odd the seed fell out of range
    }
    if (std::find(candidates.begin(), candidates.end(), params) ==
        candidates.end())
      candidates.push_back(params);
  };

  // The historical baseline is always candidate zero: the search can
  // surface a better blocking but never regress below 120/256/512.
  push(kDefaultBlocking);
  const std::size_t kc0 = fit_kc(1, 1);
  push({fit_mc(kc0), kc0, fit_nc(kc0)});
  if (smoke) {
    // Bounded deterministic set for CI: baseline + analytic + one
    // half-MC neighbor.
    push({round_down_to(std::max(fit_mc(kc0) / 2, mr), mr), kc0,
          fit_nc(kc0)});
    return candidates;
  }
  for (const auto& [num, den] :
       {std::pair<std::size_t, std::size_t>{1, 2}, {2, 1}}) {
    const std::size_t kc = fit_kc(num, den);
    push({fit_mc(kc), kc, fit_nc(kc)});
  }
  const std::size_t mc0 = fit_mc(kc0);
  const std::size_t nc0 = fit_nc(kc0);
  push({round_down_to(std::max(mc0 / 2, mr), mr), kc0, nc0});
  push({std::min(kMaxMcBound, mc0 * 2), kc0, nc0});
  push({mc0, kc0, round_down_to(std::max(nc0 / 2, nr), nr)});
  return candidates;
}

const char* tune_mode_name(TuneMode mode) {
  switch (mode) {
    case TuneMode::kOff:
      return "off";
    case TuneMode::kAuto:
      return "auto";
    case TuneMode::kForce:
      return "force";
    case TuneMode::kSmoke:
      return "smoke";
  }
  return "unknown";
}

std::optional<TuneMode> parse_tune_mode(const std::string& name) {
  const std::string lower = util::to_lower(name);
  if (lower == "off" || lower == "0" || lower == "none") return TuneMode::kOff;
  if (lower == "auto" || lower == "on") return TuneMode::kAuto;
  if (lower == "force" || lower == "retune") return TuneMode::kForce;
  if (lower == "smoke") return TuneMode::kSmoke;
  return std::nullopt;
}

void set_tune_mode(std::optional<TuneMode> mode) {
  programmatic_tune_mode.store(
      mode.has_value() ? static_cast<int>(*mode) : -1,
      std::memory_order_relaxed);
}

TuneMode active_tune_mode() {
  const int programmatic =
      programmatic_tune_mode.load(std::memory_order_relaxed);
  if (programmatic >= 0) return static_cast<TuneMode>(programmatic);
  const char* env = std::getenv("HMXP_TUNE");
  if (env == nullptr || *env == '\0') return TuneMode::kAuto;
  const std::optional<TuneMode> mode = parse_tune_mode(env);
  HMXP_REQUIRE(mode.has_value(),
               std::string("HMXP_TUNE must be off, auto, force or smoke, "
                           "got \"") +
                   env + '"');
  return *mode;
}

void set_tuning_cache_override(std::optional<std::string> path_or_off) {
  const std::lock_guard<std::mutex> lock(cache_override_mutex);
  cache_override = std::move(path_or_off);
}

std::string tuning_cache_path() {
  {
    const std::lock_guard<std::mutex> lock(cache_override_mutex);
    if (cache_override.has_value())
      return util::to_lower(*cache_override) == "off" ? std::string()
                                                      : *cache_override;
  }
  const char* env = std::getenv("HMXP_TUNE_CACHE");
  if (env != nullptr && *env != '\0')
    return util::to_lower(env) == "off" ? std::string() : std::string(env);
  if (const char* xdg = std::getenv("XDG_CACHE_HOME");
      xdg != nullptr && *xdg != '\0')
    return std::string(xdg) + "/hmxp/tuning";
  if (const char* home = std::getenv("HOME"); home != nullptr && *home != '\0')
    return std::string(home) + "/.cache/hmxp/tuning";
  return std::string();  // nowhere sane to persist
}

std::string tuning_cache_key(MicroKernelVariant variant) {
  return sanitize_key_fragment(cpu_model_string()) + '|' +
         micro_kernel_variant_name(variant) + "|mr" +
         std::to_string(micro_kernel_mr(variant)) + "nr" +
         std::to_string(micro_kernel_nr(variant));
}

namespace {

/// Strict whole-file parse; nullopt on ANY anomaly (missing, stale
/// header, malformed line) -- a suspect cache is treated as absent.
std::optional<std::vector<std::pair<std::string, BlockingParams>>>
parse_cache_file(const std::string& path) {
  std::ifstream stream(path);
  if (!stream.is_open()) return std::nullopt;
  std::string line;
  if (!std::getline(stream, line) || line != kCacheHeader)
    return std::nullopt;
  std::vector<std::pair<std::string, BlockingParams>> entries;
  while (std::getline(stream, line)) {
    if (line.empty()) continue;
    const auto tab = line.find('\t');
    if (tab == std::string::npos || tab == 0) return std::nullopt;
    std::istringstream values(line.substr(tab + 1));
    BlockingParams params;
    if (!(values >> params.mc >> params.kc >> params.nc))
      return std::nullopt;
    std::string trailing;
    if (values >> trailing) return std::nullopt;
    entries.emplace_back(line.substr(0, tab), params);
  }
  return entries;
}

}  // namespace

std::optional<BlockingParams> load_tuned_blocking(const std::string& path,
                                                  const std::string& key) {
  if (path.empty()) return std::nullopt;
  try {
    const auto entries = parse_cache_file(path);
    if (!entries.has_value()) return std::nullopt;
    for (const auto& [entry_key, params] : *entries)
      if (entry_key == key) return params;
  } catch (...) {
    // Filesystem/locale surprises read as "no cache", never a crash.
  }
  return std::nullopt;
}

bool store_tuned_blocking(const std::string& path, const std::string& key,
                          const BlockingParams& params) {
  if (path.empty()) return false;
  try {
    namespace fs = std::filesystem;
    const fs::path target(path);
    std::error_code ec;
    if (target.has_parent_path())
      fs::create_directories(target.parent_path(), ec);
    // Keep every other host/variant entry a concurrent process may
    // have written; replace ours.
    auto entries = parse_cache_file(path).value_or(
        std::vector<std::pair<std::string, BlockingParams>>{});
    entries.erase(std::remove_if(entries.begin(), entries.end(),
                                 [&](const auto& entry) {
                                   return entry.first == key;
                                 }),
                  entries.end());
    entries.emplace_back(key, params);
    const fs::path tmp =
        target.string() + ".tmp." + std::to_string(::getpid());
    {
      std::ofstream out(tmp, std::ios::trunc);
      if (!out.is_open()) return false;
      out << kCacheHeader << '\n';
      for (const auto& [entry_key, entry] : entries)
        out << entry_key << '\t' << entry.mc << ' ' << entry.kc << ' '
            << entry.nc << '\n';
      if (!out.good()) {
        out.close();
        fs::remove(tmp, ec);
        return false;
      }
    }
    fs::rename(tmp, target, ec);  // atomic: readers see old or new file
    if (ec) {
      fs::remove(tmp, ec);
      return false;
    }
    return true;
  } catch (...) {
    return false;
  }
}

TuneOutcome resolve_blocking(MicroKernelVariant variant) {
  if (forced_ready.load(std::memory_order_acquire))
    return {forced_params, "forced", 0};

  ResolvedSlot& slot = slot_for(variant);
  if (slot.ready.load(std::memory_order_acquire))
    return {slot.params, slot.source, slot.measured};

  const std::lock_guard<std::mutex> lock(resolve_mutex);
  if (slot.ready.load(std::memory_order_relaxed))
    return {slot.params, slot.source, slot.measured};

  const std::size_t mr = micro_kernel_mr(variant);
  const std::size_t nr = micro_kernel_nr(variant);
  const TuneMode mode = active_tune_mode();

  BlockingParams chosen = kDefaultBlocking;
  const char* source = "off";
  std::size_t measured = 0;

  if (mode != TuneMode::kOff) {
    const std::string path = tuning_cache_path();
    const std::string key = tuning_cache_key(variant);
    bool resolved_from_cache = false;
    if (mode == TuneMode::kAuto && !path.empty()) {
      if (const auto cached = load_tuned_blocking(path, key);
          cached.has_value()) {
        try {
          validate_blocking(*cached, mr, nr);
          chosen = *cached;
          source = "cache";
          resolved_from_cache = true;
        } catch (const std::invalid_argument&) {
          // An absurd cached entry is corruption: fall through and
          // re-tune.
        }
      }
    }
    if (!resolved_from_cache && micro_kernel_supported(variant)) {
      const std::vector<BlockingParams> candidates = blocking_candidates(
          detect_cache_hierarchy(), mr, nr, mode == TuneMode::kSmoke);
#if defined(NDEBUG)
      // 480 (a multiple of every register tile) is large enough that
      // the ranking generalizes to production panel sizes -- small
      // probes systematically reward cache-oversized MC/NC that lose
      // at real shapes. Still ~5 ms per rep on a vectorized host: the
      // whole sweep is well under a second, paid once per host.
      const std::size_t problem = mode == TuneMode::kSmoke ? 96 : 480;
      const int reps = mode == TuneMode::kSmoke ? 1 : 3;
#else
      // Debug timings rank nothing meaningful; keep the sweep cheap.
      const std::size_t problem = 96;
      const int reps = 1;
#endif
      // candidates[0] is ALWAYS the historical baseline (see
      // blocking_candidates). Time it twice -- first and last -- so
      // the spread between its two samples estimates this host's
      // timing noise, and demand a challenger beat it by twice that
      // (3% floor): the tie goes to the baseline, because persisting
      // a chance win would regress every later run on this host.
      std::vector<BlockingParams> timed = candidates;
      timed.push_back(timed.front());
      const std::vector<double> times =
          measure_candidates(timed, variant, problem, reps);
      measured = candidates.size();
      const double base = std::min(times.front(), times.back());
      const double spread = (std::max(times.front(), times.back()) - base) /
                            base;
      const double margin = std::min(0.25, std::max(0.03, 2.0 * spread));
      std::size_t best = 0;
      for (std::size_t i = 1; i < candidates.size(); ++i)
        if (times[i] < times[best]) best = i;
      if (best != 0 && times[best] > base * (1.0 - margin)) best = 0;
      chosen = candidates[best];
      source = "search";
      if (!path.empty()) store_tuned_blocking(path, key, chosen);
    }
  }

  validate_blocking(chosen, mr, nr);
  slot.params = chosen;
  slot.source = source;
  slot.measured = measured;
  slot.ready.store(true, std::memory_order_release);
  return {chosen, source, measured};
}

BlockingParams active_blocking() {
  if (forced_ready.load(std::memory_order_acquire)) return forced_params;
  return resolve_blocking(active_micro_kernel_variant()).params;
}

void force_blocking(std::optional<BlockingParams> params) {
  if (!params.has_value()) {
    forced_ready.store(false, std::memory_order_release);
    return;
  }
  const MicroKernelVariant variant = active_micro_kernel_variant();
  validate_blocking(*params, micro_kernel_mr(variant),
                    micro_kernel_nr(variant));
  forced_params = *params;
  forced_ready.store(true, std::memory_order_release);
}

std::optional<BlockingParams> forced_blocking() {
  if (!forced_ready.load(std::memory_order_acquire)) return std::nullopt;
  return forced_params;
}

void invalidate_resolved_blocking() {
  const std::lock_guard<std::mutex> lock(resolve_mutex);
  for (ResolvedSlot& slot : resolved_slots)
    slot.ready.store(false, std::memory_order_release);
}

KernelConfig current_kernel_config() {
  KernelConfig config;
  config.forced_tier = forced_kernel_tier();
  config.active_tier = active_kernel_tier();
  config.forced_variant = forced_micro_kernel_variant();
  config.active_variant = active_micro_kernel_variant();
  // Only the packed tier consumes a blocking; resolving it here (and
  // only here) keeps the autotune search in the master, before any
  // fork, so children inherit an already-tuned configuration.
  config.blocking = config.active_tier == KernelTier::kPacked
                        ? active_blocking()
                        : kDefaultBlocking;
  return config;
}

void install_kernel_config(const KernelConfig& config) {
  // Pin variant before blocking: force_blocking validates against the
  // active variant's register tile.
  force_micro_kernel_variant(config.forced_variant.has_value()
                                 ? config.forced_variant
                                 : std::optional(config.active_variant));
  force_kernel_tier(config.forced_tier.has_value()
                        ? config.forced_tier
                        : std::optional(config.active_tier));
  force_blocking(config.blocking);
  // Exported for exec'd descendants (a fork inherits the pins above);
  // a variant name implies the packed tier, so it carries the most
  // information when that tier is active.
  ::setenv("HMXP_FORCE_KERNEL",
           config.active_tier == KernelTier::kPacked
               ? micro_kernel_variant_name(config.active_variant)
               : kernel_tier_name(config.active_tier),
           1);
}

}  // namespace hmxp::matrix
