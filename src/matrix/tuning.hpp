// Blocking-parameter autotuning for the packed GEMM path.
//
// The packed tier blocks A into MC x KC panels (sized for L2), B into
// KC x NC panels (sized for L3, streamed through L1 in KC x NR
// slivers). One fixed MC/KC/NC cannot fit every cache hierarchy, so
// the blocking is a runtime value resolved at first use, per
// micro-kernel variant, in this order:
//
//   1. force_blocking()            -- programmatic pin (tests, forked
//                                     workers re-asserting the master's
//                                     tuned configuration);
//   2. the host tuning cache       -- winners persisted per
//                                     (cpu model, variant) key, so the
//                                     search cost is paid once per host;
//   3. an at-first-use search      -- candidates seeded from the
//                                     detected cache hierarchy
//                                     (sysfs/fallback) plus the
//                                     historical 120/256/512 baseline,
//                                     each measured on a short
//                                     fixed-work GEMM; the fastest wins
//                                     and is persisted;
//   4. the 120/256/512 default     -- when tuning is off.
//
// Knobs:
//   HMXP_TUNE        off | auto | force | smoke  (--tune on benches /
//                    examples maps here; force ignores the cache and
//                    re-searches, smoke is a bounded deterministic
//                    candidate set for CI).
//   HMXP_TUNE_CACHE  cache file path, or "off" to disable persistence.
//                    Default: $XDG_CACHE_HOME/hmxp/tuning (falling back
//                    to $HOME/.cache/hmxp/tuning; no HOME = disabled).
//
// This is the per-host adaptivity the paper assumes when it takes each
// worker's speed w_i as a measured given: every host runs the packed
// kernel as fast as its own hierarchy allows.
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "matrix/kernel_dispatch.hpp"

namespace hmxp::matrix {

/// Cache-blocking extents of the packed path: A panels are MC x KC,
/// B panels KC x NC.
struct BlockingParams {
  std::size_t mc = 0;
  std::size_t kc = 0;
  std::size_t nc = 0;
  friend bool operator==(const BlockingParams&,
                         const BlockingParams&) = default;
};

/// The historical hardcoded blocking (valid for every micro-kernel:
/// 120 is a multiple of 4, 6 and 8; 512 of 8). Also the search's
/// safety candidate: the winner can never regress below it.
inline constexpr BlockingParams kDefaultBlocking{120, 256, 512};

/// "MCxKCxNC", e.g. "120x256x512".
std::string blocking_to_string(const BlockingParams& params);

/// Throws std::invalid_argument unless `params` is a sane blocking for
/// a micro-kernel with the given register tile: all extents nonzero,
/// MC a multiple of MR (<= 4096), NC a multiple of NR (<= 16384),
/// KC in [4, 8192], and the packed-panel footprint below 256 MiB --
/// deliberately absurd tuned parameters must never install.
void validate_blocking(const BlockingParams& params, std::size_t mr,
                       std::size_t nr);

/// Detected data-cache sizes in bytes; `detected` is false when sysfs
/// was unreadable and the conservative defaults (32 KiB / 1 MiB /
/// 8 MiB) were substituted.
struct CacheHierarchy {
  std::size_t l1d_bytes = 32 * 1024;
  std::size_t l2_bytes = 1024 * 1024;
  std::size_t l3_bytes = 8 * 1024 * 1024;
  bool detected = false;
};

/// Reads /sys/devices/system/cpu/cpu0/cache (Linux); falls back to the
/// defaults above anywhere else. Cached after the first call.
const CacheHierarchy& detect_cache_hierarchy();

/// Candidate blockings for a register tile on a hierarchy: the
/// analytic BLIS seeding (KC from L1d, MC from L2, NC from L3) plus
/// scaled neighbors, always including kDefaultBlocking. `smoke` bounds
/// the set to <= 3 deterministic candidates for CI smoke runs. Every
/// candidate passes validate_blocking.
std::vector<BlockingParams> blocking_candidates(const CacheHierarchy& caches,
                                                std::size_t mr,
                                                std::size_t nr, bool smoke);

enum class TuneMode { kOff, kAuto, kForce, kSmoke };
const char* tune_mode_name(TuneMode mode);
std::optional<TuneMode> parse_tune_mode(const std::string& name);

/// Programmatic override (--tune) > HMXP_TUNE > kAuto.
void set_tune_mode(std::optional<TuneMode> mode);
TuneMode active_tune_mode();

/// Programmatic cache-location override (> HMXP_TUNE_CACHE). Pass the
/// path, "off" to disable persistence, or nullopt to fall back to the
/// environment.
void set_tuning_cache_override(std::optional<std::string> path_or_off);

/// Resolved cache file path; empty when persistence is disabled.
std::string tuning_cache_path();

/// Host key for a variant's tuned blocking: cpu model + variant name +
/// register tile, so a cache file copied across hosts (or an upgraded
/// kernel) can never install a foreign blocking.
std::string tuning_cache_key(MicroKernelVariant variant);

/// Reads `key` from the cache file at `path`. Returns nullopt -- never
/// throws -- on a missing/corrupt/stale-version file or an absent key;
/// a bad cache always falls back to re-tuning.
std::optional<BlockingParams> load_tuned_blocking(const std::string& path,
                                                  const std::string& key);

/// Inserts/updates `key` in the cache file (atomic tmp+rename; other
/// valid entries are preserved). Returns false -- never throws -- when
/// the file cannot be written.
bool store_tuned_blocking(const std::string& path, const std::string& key,
                          const BlockingParams& params);

/// Where an installed blocking came from.
struct TuneOutcome {
  BlockingParams params;
  /// "forced" | "off" | "cache" | "search".
  const char* source = "";
  std::size_t candidates_measured = 0;
};

/// Resolves (and installs) the blocking for `variant`: forced pin >
/// cache > measured search > default, per the mode. Idempotent and
/// thread-safe; the first caller pays the search, everyone after reads
/// the installed value.
TuneOutcome resolve_blocking(MicroKernelVariant variant);

/// The blocking the packed path uses right now (resolves the active
/// micro-kernel variant on first call).
BlockingParams active_blocking();

/// Pins (or unpins) the blocking for every variant, validated against
/// the ACTIVE variant's register tile. Takes precedence over cache and
/// search. Not thread-safe against concurrent GEMM calls.
void force_blocking(std::optional<BlockingParams> params);
std::optional<BlockingParams> forced_blocking();

/// Test hook: drops every resolved (non-forced) blocking so the next
/// active_blocking() re-runs the cache/search resolution.
void invalidate_resolved_blocking();

/// The full kernel configuration of this process: dispatch pins, the
/// resolved tier/variant, and the installed blocking. The process and
/// shm transports capture it in the master before forking, re-assert
/// it in every child (install_kernel_config), and verify it in the
/// bootstrap hello handshake -- a forked worker provably runs the
/// identical tuned configuration.
struct KernelConfig {
  std::optional<KernelTier> forced_tier;
  KernelTier active_tier = KernelTier::kPacked;
  std::optional<MicroKernelVariant> forced_variant;
  MicroKernelVariant active_variant = MicroKernelVariant::kPortable;
  BlockingParams blocking = kDefaultBlocking;
};

/// Captures the current configuration. Resolves the blocking (possibly
/// autotuning) when the packed tier is active, so the search runs in
/// the master BEFORE any fork; other tiers report kDefaultBlocking
/// without triggering a search.
KernelConfig current_kernel_config();

/// Re-asserts `config` in this process: pins tier, variant and
/// blocking, and exports HMXP_FORCE_KERNEL for exec'd descendants.
void install_kernel_config(const KernelConfig& config);

}  // namespace hmxp::matrix
