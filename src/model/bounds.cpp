#include "model/bounds.hpp"

#include <cmath>

#include "util/check.hpp"

namespace hmxp::model {

double loomis_whitney(double n_a, double n_b, double n_c) {
  HMXP_REQUIRE(n_a >= 0 && n_b >= 0 && n_c >= 0,
               "element counts must be non-negative");
  return std::sqrt(n_a * n_b * n_c);
}

double ccr_lower_bound(BlockCount m) {
  HMXP_REQUIRE(m >= 1, "memory must be positive");
  return std::sqrt(27.0 / (8.0 * static_cast<double>(m)));
}

double ccr_lower_bound_itt(BlockCount m) {
  HMXP_REQUIRE(m >= 1, "memory must be positive");
  return std::sqrt(1.0 / (8.0 * static_cast<double>(m)));
}

double max_reuse_ccr(BlockCount m, BlockCount t) {
  HMXP_REQUIRE(t >= 1, "inner dimension must be positive");
  const BlockCount mu = max_reuse_mu(m);
  return 2.0 / static_cast<double>(t) + 2.0 / static_cast<double>(mu);
}

double max_reuse_ccr_asymptotic(BlockCount m) {
  return 2.0 / static_cast<double>(max_reuse_mu(m));
}

double max_reuse_ccr_closed_form(BlockCount m) {
  HMXP_REQUIRE(m >= 1, "memory must be positive");
  return 2.0 / std::sqrt(static_cast<double>(m));
}

double toledo_ccr(BlockCount m, BlockCount t) {
  HMXP_REQUIRE(t >= 1, "inner dimension must be positive");
  const BlockCount beta = toledo_beta(m);
  return 2.0 / static_cast<double>(t) + 2.0 / static_cast<double>(beta);
}

double toledo_ccr_asymptotic(BlockCount m) {
  return 2.0 / static_cast<double>(toledo_beta(m));
}

double max_updates_per_m_communications(BlockCount m) {
  HMXP_REQUIRE(m >= 1, "memory must be positive");
  // Section 3: before m communication steps the memory holds at most m
  // blocks (alpha_old + beta_old + gamma_old <= m) and the steps bring
  // m more. Loomis-Whitney caps updates by
  //   K = sqrt((a_old + a_recv)(b_old + b_recv)(c_old + c_recv)),
  // maximized when each factor equals 2m/3.
  const double third = 2.0 * static_cast<double>(m) / 3.0;
  return loomis_whitney(third, third, third);
}

}  // namespace hmxp::model
