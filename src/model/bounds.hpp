// Communication-to-computation ratio (CCR) bounds from section 3.
//
// Units: a "communication" is one q x q block moved between master and
// worker; a "computation" is one block update C_ij += A_ik * B_kj
// (q^3 multiply-adds). CCR = communications / computations over a run.
#pragma once

#include "model/layout.hpp"

namespace hmxp::model {

/// Loomis-Whitney bound: accessing NA elements of A, NB of B, NC of C
/// permits at most sqrt(NA * NB * NC) elementary updates.
double loomis_whitney(double n_a, double n_b, double n_c);

/// The paper's improved lower bound on CCR for memory m:
/// CCR_opt >= sqrt(27 / (8 m)).
double ccr_lower_bound(BlockCount m);

/// Previous best bound (Irony, Toledo, Tiskin): sqrt(1 / (8 m)).
double ccr_lower_bound_itt(BlockCount m);

/// Exact CCR of the maximum re-use algorithm for memory m and inner
/// dimension t blocks: 2/t + 2/mu with mu = max_reuse_mu(m).
double max_reuse_ccr(BlockCount m, BlockCount t);

/// Asymptotic (t -> infinity) CCR of maximum re-use: 2 / mu.
double max_reuse_ccr_asymptotic(BlockCount m);

/// The paper quotes the asymptotic ratio as 2/sqrt(m) = sqrt(32/(8m));
/// this evaluates that closed form (mu ~ sqrt(m)).
double max_reuse_ccr_closed_form(BlockCount m);

/// Exact CCR of Toledo's blocked algorithm (thirds layout): per chunk of
/// beta^2 C blocks, 2 beta^2 C transfers plus 2 beta^2 operand blocks per
/// beta of the t inner steps => CCR = 2/t + 2/beta, beta = toledo_beta(m).
double toledo_ccr(BlockCount m, BlockCount t);

/// Asymptotic CCR of Toledo's algorithm: 2 / beta (~ 2 sqrt(3) / sqrt(m)).
double toledo_ccr_asymptotic(BlockCount m);

/// Communications needed by a sequence achieving `updates` block updates
/// starting from a memory of m blocks, per the refined section 3
/// argument; used in tests to validate the bound derivation numerically.
/// Returns the maximum number of updates achievable with m consecutive
/// communications (the K of the paper with the balanced 2m/3 split).
double max_updates_per_m_communications(BlockCount m);

}  // namespace hmxp::model
