#include "model/costs.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace hmxp::model {

Time batch_comm_time(BlockCount mu, Time c) {
  HMXP_REQUIRE(mu >= 1 && c >= 0, "invalid batch parameters");
  return 2.0 * static_cast<double>(mu) * c;
}

Time chunk_comm_time(BlockCount blocks, Time c) {
  HMXP_REQUIRE(blocks >= 0 && c >= 0, "invalid chunk parameters");
  return static_cast<double>(blocks) * c;
}

Time batch_compute_time(BlockCount mu, Time w) {
  HMXP_REQUIRE(mu >= 1 && w >= 0, "invalid compute parameters");
  return static_cast<double>(mu * mu) * w;
}

int homogeneous_enrollment(int p, BlockCount mu, Time c, Time w) {
  HMXP_REQUIRE(p >= 1, "need at least one worker");
  HMXP_REQUIRE(mu >= 1, "mu must be positive");
  HMXP_REQUIRE(c > 0 && w > 0, "speeds must be positive");
  const double ratio = static_cast<double>(mu) * w / (2.0 * c);
  const int needed = static_cast<int>(std::ceil(ratio - 1e-12));
  return std::clamp(needed, 1, p);
}

Time homogeneous_makespan_estimate(int p, BlockCount m, Time c, Time w,
                                   BlockCount r, BlockCount s, BlockCount t) {
  HMXP_REQUIRE(p >= 1, "need at least one worker");
  HMXP_REQUIRE(r >= 1 && s >= 1 && t >= 1, "matrix must be non-empty");
  const BlockCount mu = double_buffered_mu(m);
  const int enrolled = homogeneous_enrollment(p, mu, c, w);

  // Chunks of mu x mu C blocks (the last row/column of chunks may be
  // smaller; the estimate uses the average size, adequate for ranking).
  const double chunks =
      std::ceil(static_cast<double>(r) / static_cast<double>(mu)) *
      std::ceil(static_cast<double>(s) / static_cast<double>(mu));
  const double chunk_blocks =
      static_cast<double>(r) * static_cast<double>(s) / chunks;

  // Per chunk: C in + C out (sequentialized, section 4), t operand
  // batches of 2 mu blocks, t batch computations of mu^2 w.
  const double c_io = 2.0 * chunk_blocks * c;
  const double operand_comm =
      static_cast<double>(t) * batch_comm_time(mu, c);
  const double compute = static_cast<double>(t) * batch_compute_time(mu, w);

  // The master pipelines `enrolled` workers: in steady state, each round
  // of one chunk per worker costs the master `enrolled * (operand_comm +
  // c_io)` of port time while each worker computes for `compute`; the
  // round length is the max of the two. Rounds = chunks / enrolled.
  const double rounds = chunks / static_cast<double>(enrolled);
  const double port_per_round =
      static_cast<double>(enrolled) * (operand_comm + c_io);
  const double round_length = std::max(port_per_round, compute + c_io);
  // Pipeline fill: the first chunk's operands must arrive before any
  // computation; drain: the last C chunk must come back.
  const double fill = operand_comm + chunk_blocks * c;
  return fill + rounds * round_length;
}

}  // namespace hmxp::model
