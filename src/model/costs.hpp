// Linear cost model of the paper (section 2) and the closed-form
// quantities the algorithms derive from it.
//
//  * sending X blocks to worker i (or receiving X from it) occupies the
//    master's single port for X * c_i time units;
//  * executing X block updates on worker i takes X * w_i time units;
//  * start-up overheads are neglected (large q x q blocks amortize them).
#pragma once

#include "model/layout.hpp"

namespace hmxp::model {

/// Time is in seconds throughout hmxp.
using Time = double;

/// Port time to ship one operand batch (mu blocks of B + mu blocks of A)
/// for one inner step k: 2 mu c.
Time batch_comm_time(BlockCount mu, Time c);

/// Port time to send or retrieve a C chunk of `blocks` blocks.
Time chunk_comm_time(BlockCount blocks, Time c);

/// Compute time for one inner step over a full mu x mu chunk:
/// mu^2 updates at w each.
Time batch_compute_time(BlockCount mu, Time w);

/// The homogeneous resource selection of section 4: the smallest P with
/// P * mu^2 t w >= 2 mu t c * P ... i.e. the smallest P such that sending
/// operand batches to P workers (2 mu t c each) takes at least as long as
/// one worker's computation (mu^2 t w):  P = ceil(mu w / (2 c)), clamped
/// to [1, p].
int homogeneous_enrollment(int p, BlockCount mu, Time c, Time w);

/// Predicted makespan of the homogeneous algorithm on p identical
/// workers (c, w, m) for an r x t x s block product. Used by Hom / HomI
/// to rank candidate virtual platforms analytically; mirrors the
/// round-based accounting of section 4 including the sequentialized C
/// I/O term. The simulator remains the ground truth; tests check this
/// estimate tracks it within a few percent on divisible instances.
Time homogeneous_makespan_estimate(int p, BlockCount m, Time c, Time w,
                                   BlockCount r, BlockCount s, BlockCount t);

}  // namespace hmxp::model
