#include "model/layout.hpp"

#include <cmath>

#include "util/check.hpp"

namespace hmxp::model {

namespace {
/// Largest integer x >= low with pred(x) true, given pred is monotone
/// (true on a prefix). `hint` seeds the search near the analytic root so
/// the fix-up loops run O(1) iterations regardless of magnitude.
template <typename Pred>
BlockCount largest_satisfying(BlockCount low, BlockCount hint, Pred pred) {
  BlockCount x = hint < low ? low : hint;
  while (!pred(x) && x > low) --x;
  HMXP_CHECK(pred(x), "no feasible layout parameter");
  while (pred(x + 1)) ++x;
  return x;
}
}  // namespace

BlockCount max_reuse_mu(BlockCount m) {
  HMXP_REQUIRE(m >= 3, "maximum re-use layout needs at least 3 buffers");
  // 1 + mu + mu^2 <= m  <=>  mu <= (-1 + sqrt(4m - 3)) / 2.
  const auto hint = static_cast<BlockCount>(
      (std::sqrt(4.0 * static_cast<double>(m) - 3.0) - 1.0) / 2.0);
  return largest_satisfying(1, hint, [m](BlockCount mu) {
    return mu >= 1 && 1 + mu + mu * mu <= m;
  });
}

BlockCount double_buffered_mu(BlockCount m) {
  HMXP_REQUIRE(m >= 5, "double-buffered layout needs at least 5 buffers");
  // mu^2 + 4mu <= m  <=>  (mu + 2)^2 <= m + 4  <=>  mu <= sqrt(m+4) - 2.
  const auto hint = static_cast<BlockCount>(
      std::sqrt(static_cast<double>(m) + 4.0) - 2.0);
  return largest_satisfying(1, hint, [m](BlockCount mu) {
    return mu >= 1 && mu * mu + 4 * mu <= m;
  });
}

BlockCount toledo_beta(BlockCount m) {
  HMXP_REQUIRE(m >= 3, "thirds layout needs at least 3 buffers");
  const auto hint =
      static_cast<BlockCount>(std::sqrt(static_cast<double>(m) / 3.0));
  return largest_satisfying(1, hint, [m](BlockCount beta) {
    return beta >= 1 && 3 * beta * beta <= m;
  });
}

BlockCount double_buffered_footprint(BlockCount mu) {
  HMXP_REQUIRE(mu >= 1, "mu must be positive");
  return mu * mu + 4 * mu;
}

BlockCount max_reuse_footprint(BlockCount mu) {
  HMXP_REQUIRE(mu >= 1, "mu must be positive");
  return 1 + mu + mu * mu;
}

}  // namespace hmxp::model
