// Memory-layout arithmetic from the paper.
//
// All quantities are in *block units*: a buffer holds one q x q block of
// matrix elements, and a worker with memory m_i can hold m_i such blocks
// (from A, B and/or C in any mix).
//
// Three layouts appear in the paper:
//  * maximum re-use (section 3, single worker, no overlap):
//      1 buffer for A, mu for B, mu^2 for C, with 1 + mu + mu^2 <= m.
//  * double-buffered master-worker layout (sections 4-5):
//      2mu for A, 2mu for B (one operand batch in use + one prefetched),
//      mu^2 for C, with mu^2 + 4mu <= m.
//  * Toledo's thirds layout (the BMM baseline, [17]):
//      memory split in three equal panels of beta x beta blocks each,
//      3 beta^2 <= m.
#pragma once

#include <cstdint>

namespace hmxp::model {

/// Number of q x q block buffers a worker can hold.
using BlockCount = std::int64_t;

/// Largest mu >= 1 with 1 + mu + mu^2 <= m (maximum re-use layout).
/// Requires m >= 3 (one buffer each for A, B, C is the degenerate case).
BlockCount max_reuse_mu(BlockCount m);

/// Largest mu >= 1 with mu^2 + 4mu <= m (double-buffered layout).
/// Requires m >= 5.
BlockCount double_buffered_mu(BlockCount m);

/// Largest beta >= 1 with 3 beta^2 <= m (Toledo thirds layout).
/// Requires m >= 3.
BlockCount toledo_beta(BlockCount m);

/// Total buffers consumed by the double-buffered layout for a given mu:
/// mu^2 (C chunk) + 2mu (A) + 2mu (B).
BlockCount double_buffered_footprint(BlockCount mu);

/// Total buffers consumed by the maximum re-use layout for a given mu.
BlockCount max_reuse_footprint(BlockCount mu);

}  // namespace hmxp::model
