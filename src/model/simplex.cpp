#include "model/simplex.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/check.hpp"

namespace hmxp::model {

namespace {

constexpr double kEps = 1e-9;

// Tableau for max c.x st Ax <= b, x >= 0, solved with the standard
// dictionary method. Basis holds the variable index of each row; slack
// variable for row i has index n + i. Bland's rule (smallest index
// entering/leaving) guarantees termination.
class Tableau {
 public:
  Tableau(std::size_t n, std::size_t m) : n_(n), m_(m) {
    a_.assign(m, std::vector<double>(n + m, 0.0));
    b_.assign(m, 0.0);
    c_.assign(n + m, 0.0);
    basis_.resize(m);
    for (std::size_t i = 0; i < m; ++i) basis_[i] = n + i;
  }

  std::vector<std::vector<double>> a_;
  std::vector<double> b_;
  std::vector<double> c_;       // current objective row (reduced costs)
  std::vector<std::size_t> basis_;
  double objective_shift_ = 0.0;
  std::size_t n_;
  std::size_t m_;

  void pivot(std::size_t row, std::size_t col) {
    const double pivot_value = a_[row][col];
    HMXP_CHECK(std::fabs(pivot_value) > kEps, "degenerate pivot element");
    const double inv = 1.0 / pivot_value;
    for (double& v : a_[row]) v *= inv;
    b_[row] *= inv;
    for (std::size_t i = 0; i < m_; ++i) {
      if (i == row) continue;
      const double factor = a_[i][col];
      if (std::fabs(factor) < kEps) continue;
      for (std::size_t j = 0; j < a_[i].size(); ++j)
        a_[i][j] -= factor * a_[row][j];
      b_[i] -= factor * b_[row];
    }
    const double obj_factor = c_[col];
    if (std::fabs(obj_factor) > kEps) {
      for (std::size_t j = 0; j < c_.size(); ++j)
        c_[j] -= obj_factor * a_[row][j];
      objective_shift_ += obj_factor * b_[row];
    }
    basis_[row] = col;
  }

  /// Runs simplex iterations until optimal or unbounded.
  LpStatus iterate() {
    while (true) {
      // Bland: smallest-index column with positive reduced cost.
      std::size_t entering = c_.size();
      for (std::size_t j = 0; j < c_.size(); ++j) {
        if (c_[j] > kEps) {
          entering = j;
          break;
        }
      }
      if (entering == c_.size()) return LpStatus::kOptimal;

      // Ratio test; Bland tie-break on smallest basis index.
      std::size_t leaving = m_;
      double best_ratio = std::numeric_limits<double>::infinity();
      for (std::size_t i = 0; i < m_; ++i) {
        if (a_[i][entering] > kEps) {
          const double ratio = b_[i] / a_[i][entering];
          if (ratio < best_ratio - kEps ||
              (ratio < best_ratio + kEps &&
               (leaving == m_ || basis_[i] < basis_[leaving]))) {
            best_ratio = ratio;
            leaving = i;
          }
        }
      }
      if (leaving == m_) return LpStatus::kUnbounded;
      pivot(leaving, entering);
    }
  }
};

}  // namespace

SimplexSolver::SimplexSolver(std::vector<double> objective)
    : objective_(std::move(objective)) {
  HMXP_REQUIRE(!objective_.empty(), "LP needs at least one variable");
}

void SimplexSolver::add_constraint_le(const std::vector<double>& coeffs,
                                      double rhs) {
  HMXP_REQUIRE(coeffs.size() == objective_.size(),
               "constraint width differs from variable count");
  rows_.push_back(Row{coeffs, rhs});
}

void SimplexSolver::add_constraint_ge(const std::vector<double>& coeffs,
                                      double rhs) {
  std::vector<double> negated(coeffs.size());
  for (std::size_t j = 0; j < coeffs.size(); ++j) negated[j] = -coeffs[j];
  add_constraint_le(negated, -rhs);
}

LpSolution SimplexSolver::solve() const {
  const std::size_t n = objective_.size();
  const std::size_t m = rows_.size();
  LpSolution solution;

  if (m == 0) {
    // No constraints: optimum is 0 iff all costs are <= 0, else unbounded.
    const bool any_positive =
        std::any_of(objective_.begin(), objective_.end(),
                    [](double cj) { return cj > kEps; });
    solution.status = any_positive ? LpStatus::kUnbounded : LpStatus::kOptimal;
    if (!any_positive) solution.x.assign(n, 0.0);
    return solution;
  }

  Tableau tableau(n, m);
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) tableau.a_[i][j] = rows_[i].coeffs[j];
    tableau.a_[i][n + i] = 1.0;
    tableau.b_[i] = rows_[i].rhs;
  }

  // Phase 1 (only if some rhs < 0): drive the most-negative basic
  // variable feasible by the standard dual-style pivot on negative rows.
  for (bool progress = true; progress;) {
    progress = false;
    std::size_t worst_row = m;
    double worst = -kEps;
    for (std::size_t i = 0; i < m; ++i) {
      if (tableau.b_[i] < worst) {
        worst = tableau.b_[i];
        worst_row = i;
      }
    }
    if (worst_row == m) break;  // feasible
    // Pick a column with negative coefficient in that row (Bland order).
    std::size_t col = tableau.a_[worst_row].size();
    for (std::size_t j = 0; j < tableau.a_[worst_row].size(); ++j) {
      if (tableau.a_[worst_row][j] < -kEps) {
        col = j;
        break;
      }
    }
    if (col == tableau.a_[worst_row].size()) {
      solution.status = LpStatus::kInfeasible;
      return solution;
    }
    // Ratio test restricted to rows keeping feasibility.
    std::size_t pivot_row = worst_row;
    double best_ratio = tableau.b_[worst_row] / tableau.a_[worst_row][col];
    for (std::size_t i = 0; i < m; ++i) {
      if (tableau.a_[i][col] > kEps && tableau.b_[i] >= -kEps) {
        const double ratio = tableau.b_[i] / tableau.a_[i][col];
        if (ratio < best_ratio) {
          best_ratio = ratio;
          pivot_row = i;
        }
      }
    }
    tableau.pivot(pivot_row, col);
    progress = true;
  }

  // Install the real objective expressed in the current basis.
  for (std::size_t j = 0; j < n; ++j) tableau.c_[j] = objective_[j];
  for (std::size_t j = n; j < n + m; ++j) tableau.c_[j] = 0.0;
  tableau.objective_shift_ = 0.0;
  for (std::size_t i = 0; i < m; ++i) {
    const std::size_t var = tableau.basis_[i];
    const double cost = tableau.c_[var];
    if (std::fabs(cost) > kEps) {
      for (std::size_t j = 0; j < tableau.c_.size(); ++j)
        tableau.c_[j] -= cost * tableau.a_[i][j];
      tableau.objective_shift_ += cost * tableau.b_[i];
    }
  }

  const LpStatus status = tableau.iterate();
  solution.status = status;
  if (status != LpStatus::kOptimal) return solution;

  solution.x.assign(n, 0.0);
  for (std::size_t i = 0; i < m; ++i) {
    if (tableau.basis_[i] < n) solution.x[tableau.basis_[i]] = tableau.b_[i];
  }
  solution.objective = tableau.objective_shift_;
  return solution;
}

}  // namespace hmxp::model
