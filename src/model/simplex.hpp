// Dense primal simplex solver for small linear programs in the form
//
//     maximize  c . x
//     subject   A x <= b     (b may contain zeros or negatives)
//               x >= 0
//
// Used to solve the steady-state program of Table 1 exactly and to
// cross-check the closed-form bandwidth-centric solution. The LPs here
// have tens of variables at most, so a textbook dense tableau with
// Bland's anti-cycling rule is the right tool: simple, exact enough in
// double precision, no dependencies.
#pragma once

#include <cstddef>
#include <vector>

namespace hmxp::model {

enum class LpStatus {
  kOptimal,    // bounded optimum found
  kUnbounded,  // objective can grow without limit
  kInfeasible  // constraints admit no x >= 0
};

struct LpSolution {
  LpStatus status = LpStatus::kInfeasible;
  double objective = 0.0;
  std::vector<double> x;  // primal solution (empty unless optimal)
};

class SimplexSolver {
 public:
  /// Builds the program: `objective[j]` is c_j; each constraint is a row
  /// of coefficients with its right-hand side.
  explicit SimplexSolver(std::vector<double> objective);

  /// Adds sum_j coeffs[j] * x_j <= rhs. coeffs must match variable count.
  void add_constraint_le(const std::vector<double>& coeffs, double rhs);

  /// Adds sum_j coeffs[j] * x_j >= rhs (stored as negated <=).
  void add_constraint_ge(const std::vector<double>& coeffs, double rhs);

  /// Solves with a two-phase method (phase 1 only if some rhs < 0).
  LpSolution solve() const;

  std::size_t num_variables() const { return objective_.size(); }
  std::size_t num_constraints() const { return rows_.size(); }

 private:
  struct Row {
    std::vector<double> coeffs;
    double rhs;
  };
  std::vector<double> objective_;
  std::vector<Row> rows_;
};

}  // namespace hmxp::model
