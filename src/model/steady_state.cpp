#include "model/steady_state.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/check.hpp"

namespace hmxp::model {

namespace {
/// Strict validation for the simplex path: infinite coefficients would
/// break the tableau, and a mu of zero divides by zero in the coverage
/// row, so the LP demands a fully regular platform.
void validate(const std::vector<SteadyWorker>& workers) {
  HMXP_REQUIRE(!workers.empty(), "steady state needs at least one worker");
  for (const SteadyWorker& worker : workers) {
    HMXP_REQUIRE(worker.c > 0, "communication cost must be positive");
    HMXP_REQUIRE(worker.w > 0, "computation cost must be positive");
    HMXP_REQUIRE(worker.mu >= 1, "mu must be >= 1");
  }
}

/// Relaxed validation for the closed-form greedy path, which an
/// admission controller calls on platforms AS FOUND: a zero-bandwidth
/// link shows up as c = +infinity and a memoryless worker as mu = 0.
/// Both are legal here -- enrollable() below simply excludes them, the
/// worker contributes zero throughput, and the caller learns the
/// platform's honest capacity instead of crashing.
void validate_relaxed(const std::vector<SteadyWorker>& workers) {
  HMXP_REQUIRE(!workers.empty(), "steady state needs at least one worker");
  for (const SteadyWorker& worker : workers) {
    HMXP_REQUIRE(worker.c >= 0, "communication cost must be non-negative");
    HMXP_REQUIRE(worker.w > 0, "computation cost must be positive");
    HMXP_REQUIRE(worker.mu >= 0, "mu must be non-negative");
  }
}

/// A worker the one-port greedy can serve at all: a finite link and at
/// least the one resident buffer the protocol needs.
bool enrollable(const SteadyWorker& worker) {
  return std::isfinite(worker.c) && worker.mu >= 1 &&
         std::isfinite(worker.w);
}
}  // namespace

std::size_t SteadyStateSolution::enrolled_count() const {
  return static_cast<std::size_t>(
      std::count_if(x.begin(), x.end(), [](double xi) { return xi > 1e-12; }));
}

SteadyStateSolution solve_bandwidth_centric(
    const std::vector<SteadyWorker>& workers) {
  validate_relaxed(workers);
  const std::size_t p = workers.size();

  // Sort by non-decreasing 2 c_i / mu_i: cheapest port time per update.
  // Degenerate workers (zero-bandwidth link, zero memory) never enroll:
  // they stay at x = 0 and the rest of the platform carries the load.
  std::vector<std::size_t> order;
  order.reserve(p);
  for (std::size_t i = 0; i < p; ++i)
    if (enrollable(workers[i])) order.push_back(i);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    const double ka = 2.0 * workers[a].c / static_cast<double>(workers[a].mu);
    const double kb = 2.0 * workers[b].c / static_cast<double>(workers[b].mu);
    if (ka != kb) return ka < kb;
    return a < b;  // deterministic tie-break
  });

  SteadyStateSolution solution;
  solution.x.assign(p, 0.0);
  solution.y.assign(p, 0.0);
  solution.port_share.assign(p, 0.0);
  solution.saturated.assign(p, false);

  double port_left = 1.0;  // fraction of master port still available
  for (const std::size_t i : order) {
    if (port_left <= 1e-15) break;
    const SteadyWorker& worker = workers[i];
    // Fully saturating worker i: x = 1/w, y = 2x/mu, port = y c.
    const double x_full = 1.0 / worker.w;
    const double y_full = 2.0 * x_full / static_cast<double>(worker.mu);
    const double port_full = y_full * worker.c;
    if (worker.c <= 0.0) {
      // Free link: saturate outright, no port consumed.
      solution.x[i] = x_full;
      solution.y[i] = y_full;
      solution.saturated[i] = true;
      continue;
    }
    if (port_full <= port_left + 1e-15) {
      solution.x[i] = x_full;
      solution.y[i] = y_full;
      solution.port_share[i] = port_full;
      solution.saturated[i] = true;
      port_left -= port_full;
    } else {
      // Marginal worker: gets the leftover port fraction.
      const double y_partial = port_left / worker.c;
      solution.y[i] = y_partial;
      solution.x[i] = y_partial * static_cast<double>(worker.mu) / 2.0;
      solution.port_share[i] = port_left;
      port_left = 0.0;
    }
  }
  solution.throughput =
      std::accumulate(solution.x.begin(), solution.x.end(), 0.0);
  return solution;
}

SteadyStateSolution solve_lp(const std::vector<SteadyWorker>& workers) {
  validate(workers);
  const std::size_t p = workers.size();
  // Variables: x_0..x_{p-1}, y_0..y_{p-1}.
  std::vector<double> objective(2 * p, 0.0);
  for (std::size_t i = 0; i < p; ++i) objective[i] = 1.0;
  SimplexSolver solver(std::move(objective));

  // Port: sum_i y_i c_i <= 1.
  std::vector<double> port_row(2 * p, 0.0);
  for (std::size_t i = 0; i < p; ++i) port_row[p + i] = workers[i].c;
  solver.add_constraint_le(port_row, 1.0);

  for (std::size_t i = 0; i < p; ++i) {
    // Compute: x_i w_i <= 1.
    std::vector<double> compute_row(2 * p, 0.0);
    compute_row[i] = workers[i].w;
    solver.add_constraint_le(compute_row, 1.0);
    // Data coverage: x_i / mu_i^2 - y_i / (2 mu_i) <= 0.
    std::vector<double> coverage_row(2 * p, 0.0);
    const double mu = static_cast<double>(workers[i].mu);
    coverage_row[i] = 1.0 / (mu * mu);
    coverage_row[p + i] = -1.0 / (2.0 * mu);
    solver.add_constraint_le(coverage_row, 0.0);
  }

  const LpSolution lp = solver.solve();
  HMXP_CHECK(lp.status == LpStatus::kOptimal,
             "Table 1 LP must be bounded and feasible");

  SteadyStateSolution solution;
  solution.throughput = lp.objective;
  solution.x.assign(lp.x.begin(), lp.x.begin() + static_cast<long>(p));
  solution.y.assign(lp.x.begin() + static_cast<long>(p), lp.x.end());
  solution.port_share.assign(p, 0.0);
  solution.saturated.assign(p, false);
  for (std::size_t i = 0; i < p; ++i) {
    solution.port_share[i] = solution.y[i] * workers[i].c;
    solution.saturated[i] =
        std::fabs(solution.x[i] * workers[i].w - 1.0) < 1e-6;
  }
  return solution;
}

double steady_state_throughput(const std::vector<SteadyWorker>& workers) {
  return solve_bandwidth_centric(workers).throughput;
}

std::vector<double> steady_state_buffer_demand(
    const std::vector<SteadyWorker>& workers) {
  validate_relaxed(workers);
  const SteadyStateSolution solution = solve_bandwidth_centric(workers);
  const std::size_t p = workers.size();

  // Service gap seen by worker i: the master must dedicate port_share_j
  // of every time unit to each other enrolled worker j. The coarsest
  // feasible interleaving serves each worker once per "round"; a round in
  // which every enrolled worker j receives one operand batch (2 mu_j
  // blocks, costing 2 mu_j c_j port time) lasts
  //     L = max_j over enrolled (2 mu_j c_j / port_share_j)
  // (the slowest-cycling worker sets the round length; others receive
  // proportionally more batches per round). Worker i is then unserved
  // for up to g_i = L - (its own service time) per round.
  double round_length = 0.0;
  for (std::size_t j = 0; j < p; ++j) {
    if (solution.port_share[j] <= 1e-15) continue;
    const double service =
        2.0 * static_cast<double>(workers[j].mu) * workers[j].c;
    round_length = std::max(round_length, service / solution.port_share[j]);
  }

  std::vector<double> demand(p, 0.0);
  for (std::size_t i = 0; i < p; ++i) {
    if (solution.x[i] <= 1e-15) continue;
    // Worker i's own service overlaps its compute, so the binding gap is
    // the full round in the worst-case phase alignment.
    const double gap = round_length;
    // Updates performed out of buffered data during the gap.
    const double updates = solution.x[i] * gap;
    // Loomis-Whitney with only resident blocks: u updates need at least
    // sqrt(2 u) blocks (paper's Table 2 argument), plus the operand
    // batch in flight (2 mu_i) and nothing less than the layout minimum.
    const double lw = std::sqrt(2.0 * updates);
    const double layout_min =
        static_cast<double>(double_buffered_footprint(workers[i].mu));
    demand[i] = std::max(lw + 2.0 * static_cast<double>(workers[i].mu),
                         layout_min);
  }
  return demand;
}

std::vector<SteadyWorker> table2_platform(double x) {
  HMXP_REQUIRE(x > 0, "Table 2 parameter x must be positive");
  return {SteadyWorker{1.0, 2.0, 2}, SteadyWorker{x, 2.0 * x, 2}};
}

}  // namespace hmxp::model
