// Steady-state analysis of section 5: the linear program of Table 1, its
// closed-form bandwidth-centric optimum, and the memory-feasibility
// argument of Table 2.
//
// Variables (per time unit, in block units):
//   x_i  = C block updates computed by worker i,
//   y_i  = operand blocks (A and B together) received by worker i.
// Program (Table 1):
//   maximize sum_i x_i
//   s.t.     sum_i y_i c_i <= 1            (master port)
//            x_i w_i <= 1                  (worker compute)
//            x_i / mu_i^2 <= y_i / (2 mu_i) (operands cover the updates)
//
// The optimum is the bandwidth-centric allocation: workers sorted by
// non-decreasing 2 c_i / mu_i, enrolled fully while the port fraction
// sum 2 c_i / (mu_i w_i) stays <= 1, the marginal worker fractionally.
// Table 2 shows this schedule may need unboundedly many buffers; the
// demand functions below quantify that.
#pragma once

#include <cstddef>
#include <vector>

#include "model/costs.hpp"
#include "model/layout.hpp"
#include "model/simplex.hpp"

namespace hmxp::model {

/// Per-worker parameters the steady-state program needs.
struct SteadyWorker {
  Time c = 0.0;        // seconds per block on the master link
  Time w = 0.0;        // seconds per block update
  BlockCount mu = 1;   // chunk side the worker's memory supports
};

struct SteadyStateSolution {
  double throughput = 0.0;          // sum of x_i, block updates per second
  std::vector<double> x;            // per-worker compute rates
  std::vector<double> y;            // per-worker operand receive rates
  std::vector<double> port_share;   // y_i * c_i, fraction of master port
  std::vector<bool> saturated;      // x_i == 1 / w_i (fully enrolled)
  /// Workers with x_i > 0.
  std::size_t enrolled_count() const;
};

/// Closed-form bandwidth-centric optimum (fractional knapsack greedy).
SteadyStateSolution solve_bandwidth_centric(
    const std::vector<SteadyWorker>& workers);

/// The same program solved by the simplex method; used to cross-check
/// the greedy (they agree to 1e-9 in tests) and as the general solver if
/// extra constraints are ever added.
SteadyStateSolution solve_lp(const std::vector<SteadyWorker>& workers);

/// Upper bound on achievable throughput for a whole run: steady-state
/// throughput (it ignores C traffic and start/finish transients, so any
/// real schedule is slower -- the paper reports Het within 2.29x mean).
double steady_state_throughput(const std::vector<SteadyWorker>& workers);

/// Memory demanded of worker i to *sustain* the steady-state rates under
/// the one-port model, following the Table 2 argument: while the master
/// serves the other enrolled workers for a gap g_i (the longest port
/// occupancy between two consecutive services of i), worker i performs
/// x_i * g_i updates out of buffered operands. Updating u blocks without
/// new data requires at least sqrt(2 u) resident blocks (Loomis-Whitney
/// with the C chunk held), plus its own operand batch of 2 mu_i.
/// Returns, per worker, that minimal buffer count; infeasible when it
/// exceeds the worker's actual memory.
std::vector<double> steady_state_buffer_demand(
    const std::vector<SteadyWorker>& workers);

/// Table 2 instance: two workers, c = {1, x}, w = {2, 2x}, mu = {2, 2}.
/// Both saturate the port exactly (sum 2c_i/(mu_i w_i) = 1). Exposed so
/// tests and the bench reproduce the published counterexample verbatim.
std::vector<SteadyWorker> table2_platform(double x);

}  // namespace hmxp::model
