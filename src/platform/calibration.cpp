#include "platform/calibration.hpp"

#include <cmath>

#include "util/check.hpp"

namespace hmxp::platform {

std::size_t block_bytes(const CalibrationConstants& constants) {
  return constants.q * constants.q * constants.element_bytes;
}

model::Time block_comm_seconds(double mbps,
                               const CalibrationConstants& constants) {
  HMXP_REQUIRE(mbps > 0, "bandwidth must be positive");
  const double bits = static_cast<double>(block_bytes(constants)) * 8.0;
  return bits / (mbps * 1e6);
}

model::Time block_update_seconds(double gflops,
                                 const CalibrationConstants& constants) {
  HMXP_REQUIRE(gflops > 0, "compute rate must be positive");
  const double q = static_cast<double>(constants.q);
  return 2.0 * q * q * q / (gflops * 1e9);
}

model::BlockCount memory_blocks(double ram_mib, double usable_fraction,
                                const CalibrationConstants& constants) {
  HMXP_REQUIRE(ram_mib > 0, "memory must be positive");
  HMXP_REQUIRE(usable_fraction > 0 && usable_fraction <= 1,
               "usable fraction must be in (0, 1]");
  const double bytes = ram_mib * 1024.0 * 1024.0 * usable_fraction;
  return static_cast<model::BlockCount>(
      std::floor(bytes / static_cast<double>(block_bytes(constants))));
}

WorkerSpec calibrate(const PhysicalSpec& spec,
                     const CalibrationConstants& constants) {
  WorkerSpec worker;
  worker.c = block_comm_seconds(spec.mbps, constants);
  worker.w = block_update_seconds(spec.gflops, constants);
  worker.m = memory_blocks(spec.ram_mib, spec.usable_fraction, constants);
  worker.label = spec.label;
  return worker;
}

void SpeedEstimate::observe(double per_update_cost, double alpha) {
  HMXP_REQUIRE(per_update_cost > 0, "observed cost must be positive");
  HMXP_REQUIRE(alpha > 0 && alpha <= 1, "EWMA alpha must be in (0, 1]");
  ++observations;
  if (observations <= kWarmup) return;  // cold-start steps lie
  if (observations == kWarmup + 1) {
    ewma = per_update_cost;
  } else {
    ewma = alpha * per_update_cost + (1.0 - alpha) * ewma;
  }
  if (baseline_count < kBaselineWindow) {
    baseline_sum += per_update_cost;
    ++baseline_count;
    baseline = baseline_sum / static_cast<double>(baseline_count);
  }
}

double SpeedEstimate::drift() const {
  if (!calibrated() || baseline <= 0.0) return 1.0;
  return ewma / baseline;
}

}  // namespace hmxp::platform
