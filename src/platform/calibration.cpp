#include "platform/calibration.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <sstream>
#include <utility>

#include "util/check.hpp"
#include "util/strings.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

namespace hmxp::platform {

std::size_t block_bytes(const CalibrationConstants& constants) {
  return constants.q * constants.q * constants.element_bytes;
}

model::Time block_comm_seconds(double mbps,
                               const CalibrationConstants& constants) {
  HMXP_REQUIRE(mbps > 0, "bandwidth must be positive");
  const double bits = static_cast<double>(block_bytes(constants)) * 8.0;
  return bits / (mbps * 1e6);
}

model::Time block_update_seconds(double gflops,
                                 const CalibrationConstants& constants) {
  HMXP_REQUIRE(gflops > 0, "compute rate must be positive");
  const double q = static_cast<double>(constants.q);
  return 2.0 * q * q * q / (gflops * 1e9);
}

model::BlockCount memory_blocks(double ram_mib, double usable_fraction,
                                const CalibrationConstants& constants) {
  HMXP_REQUIRE(ram_mib > 0, "memory must be positive");
  HMXP_REQUIRE(usable_fraction > 0 && usable_fraction <= 1,
               "usable fraction must be in (0, 1]");
  const double bytes = ram_mib * 1024.0 * 1024.0 * usable_fraction;
  return static_cast<model::BlockCount>(
      std::floor(bytes / static_cast<double>(block_bytes(constants))));
}

WorkerSpec calibrate(const PhysicalSpec& spec,
                     const CalibrationConstants& constants) {
  WorkerSpec worker;
  worker.c = block_comm_seconds(spec.mbps, constants);
  worker.w = block_update_seconds(spec.gflops, constants);
  worker.m = memory_blocks(spec.ram_mib, spec.usable_fraction, constants);
  worker.label = spec.label;
  return worker;
}

void SpeedEstimate::observe(double per_update_cost, double alpha) {
  HMXP_REQUIRE(per_update_cost > 0, "observed cost must be positive");
  HMXP_REQUIRE(alpha > 0 && alpha <= 1, "EWMA alpha must be in (0, 1]");
  ++observations;
  if (observations <= kWarmup) return;  // cold-start steps lie
  if (observations == kWarmup + 1) {
    ewma = per_update_cost;
  } else {
    ewma = alpha * per_update_cost + (1.0 - alpha) * ewma;
  }
  if (baseline_count < kBaselineWindow) {
    baseline_sum += per_update_cost;
    ++baseline_count;
    baseline = baseline_sum / static_cast<double>(baseline_count);
  }
}

double SpeedEstimate::drift() const {
  if (!calibrated() || baseline <= 0.0) return 1.0;
  return ewma / baseline;
}

// ---- calibration persistence ------------------------------------------------

namespace {

constexpr const char* kCalibHeader = "hmxp-calibration-cache-v1";

std::mutex calib_override_mutex;
std::optional<std::string> calib_override;

/// Key fragments must survive a line-oriented tab-separated file.
std::string sanitize_key_fragment(const std::string& raw) {
  std::string out = raw;
  for (char& ch : out)
    if (ch == '\t' || ch == '\n' || ch == '\r' || ch == ' ') ch = '_';
  return out;
}

/// First "model name" line of /proc/cpuinfo; "unknown-cpu" elsewhere.
/// Same role as the tuning cache's CPU key: estimates only reheat on
/// matching silicon.
const std::string& cpu_model_string() {
  static const std::string model = [] {
    std::ifstream cpuinfo("/proc/cpuinfo");
    std::string line;
    while (std::getline(cpuinfo, line)) {
      const auto colon = line.find(':');
      if (colon == std::string::npos) continue;
      if (line.rfind("model name", 0) == 0) {
        std::string value = line.substr(colon + 1);
        const auto begin = value.find_first_not_of(" \t");
        if (begin != std::string::npos) return value.substr(begin);
      }
    }
    return std::string("unknown-cpu");
  }();
  return model;
}

struct CalibEntry {
  std::string key;
  std::vector<SpeedEstimate> speeds;
};

/// Strict whole-file parse; nullopt on ANY anomaly (missing, stale
/// header, malformed line) -- a suspect cache is treated as absent.
std::optional<std::vector<CalibEntry>> parse_calib_file(
    const std::string& path) {
  std::ifstream stream(path);
  if (!stream.is_open()) return std::nullopt;
  std::string line;
  if (!std::getline(stream, line) || line != kCalibHeader)
    return std::nullopt;
  std::vector<CalibEntry> entries;
  while (std::getline(stream, line)) {
    if (line.empty()) continue;
    const auto tab = line.find('\t');
    if (tab == std::string::npos || tab == 0) return std::nullopt;
    std::istringstream values(line.substr(tab + 1));
    std::size_t count = 0;
    if (!(values >> count) || count == 0 || count > 1u << 20)
      return std::nullopt;
    CalibEntry entry;
    entry.key = line.substr(0, tab);
    entry.speeds.resize(count);
    for (SpeedEstimate& speed : entry.speeds) {
      if (!(values >> speed.ewma >> speed.baseline >> speed.baseline_sum >>
            speed.baseline_count >> speed.observations))
        return std::nullopt;
      if (!std::isfinite(speed.ewma) || !std::isfinite(speed.baseline) ||
          !std::isfinite(speed.baseline_sum))
        return std::nullopt;
    }
    std::string trailing;
    if (values >> trailing) return std::nullopt;
    entries.push_back(std::move(entry));
  }
  return entries;
}

}  // namespace

void set_calibration_cache_override(std::optional<std::string> path_or_off) {
  const std::lock_guard<std::mutex> lock(calib_override_mutex);
  calib_override = std::move(path_or_off);
}

std::string calibration_cache_path() {
  {
    const std::lock_guard<std::mutex> lock(calib_override_mutex);
    if (calib_override.has_value())
      return util::to_lower(*calib_override) == "off" ? std::string()
                                                      : *calib_override;
  }
  const char* env = std::getenv("HMXP_CALIB_CACHE");
  if (env != nullptr && *env != '\0')
    return util::to_lower(env) == "off" ? std::string() : std::string(env);
  if (const char* xdg = std::getenv("XDG_CACHE_HOME");
      xdg != nullptr && *xdg != '\0')
    return std::string(xdg) + "/hmxp/calibration";
  if (const char* home = std::getenv("HOME"); home != nullptr && *home != '\0')
    return std::string(home) + "/.cache/hmxp/calibration";
  return std::string();  // nowhere sane to persist
}

std::string calibration_cache_key(const std::string& fleet_label,
                                  std::size_t workers) {
  return sanitize_key_fragment(cpu_model_string()) + '|' +
         sanitize_key_fragment(fleet_label) + "|p" + std::to_string(workers);
}

std::optional<std::vector<SpeedEstimate>> load_calibration(
    const std::string& path, const std::string& key, std::size_t workers) {
  if (path.empty()) return std::nullopt;
  try {
    const auto entries = parse_calib_file(path);
    if (!entries.has_value()) return std::nullopt;
    for (const CalibEntry& entry : *entries)
      if (entry.key == key && entry.speeds.size() == workers)
        return entry.speeds;
  } catch (...) {
    // Filesystem/locale surprises read as "no cache", never a crash.
  }
  return std::nullopt;
}

bool store_calibration(const std::string& path, const std::string& key,
                       const std::vector<SpeedEstimate>& speeds) {
  if (path.empty() || speeds.empty()) return false;
  try {
    namespace fs = std::filesystem;
    const fs::path target(path);
    std::error_code ec;
    if (target.has_parent_path())
      fs::create_directories(target.parent_path(), ec);
    // Keep every other fleet's entry a concurrent process may have
    // written; replace ours.
    auto entries = parse_calib_file(path).value_or(std::vector<CalibEntry>{});
    entries.erase(std::remove_if(entries.begin(), entries.end(),
                                 [&](const CalibEntry& entry) {
                                   return entry.key == key;
                                 }),
                  entries.end());
    entries.push_back({key, speeds});
    const fs::path tmp =
        target.string() + ".tmp." + std::to_string(::getpid());
    {
      std::ofstream out(tmp, std::ios::trunc);
      if (!out.is_open()) return false;
      out.precision(17);
      out << kCalibHeader << '\n';
      for (const CalibEntry& entry : entries) {
        out << entry.key << '\t' << entry.speeds.size();
        for (const SpeedEstimate& speed : entry.speeds)
          out << ' ' << speed.ewma << ' ' << speed.baseline << ' '
              << speed.baseline_sum << ' ' << speed.baseline_count << ' '
              << speed.observations;
        out << '\n';
      }
      if (!out.good()) {
        out.close();
        fs::remove(tmp, ec);
        return false;
      }
    }
    fs::rename(tmp, target, ec);  // atomic: readers see old or new file
    if (ec) {
      fs::remove(tmp, ec);
      return false;
    }
    return true;
  } catch (...) {
    return false;
  }
}

}  // namespace hmxp::platform
