// Physical-to-model calibration.
//
// Converts hardware descriptions (network Mbps, sustained GFlop/s, RAM)
// into the (c, w, m) block units of the model, for block size q and
// 8-byte doubles. The defaults approximate the paper's Lyon cluster:
// q = 80, switched Fast Ethernet, ~2.4 GFlop/s P4-class nodes, 80% of
// RAM usable for block buffers.
//
// NOTE on the paper's network: section 6.1 says "switched 10 Mbps Fast
// Ethernet". Fast Ethernet is 100 Mbps, and the makespans the paper
// reports (~2000 s for the F4-class instances, ~7800 s for the 20-worker
// run) are only consistent with ~100 Mbps links: at 10 Mbps the operand
// traffic alone would exceed them several-fold. We therefore calibrate
// the base link at 100 Mbps and treat the heterogeneous-link experiment's
// {10, 5, 1} Mbps as the 10:5:1 *ratios* it establishes, i.e.
// {100, 50, 10} Mbps. EXPERIMENTS.md discusses the discrepancy.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "platform/platform.hpp"

namespace hmxp::platform {

struct PhysicalSpec {
  double mbps = 100.0;           // link bandwidth, megabits per second
  double gflops = 2.4;           // sustained dgemm rate
  double ram_mib = 1024.0;       // memory in MiB
  double usable_fraction = 0.8;  // fraction of RAM available for buffers
  std::string label;
};

struct CalibrationConstants {
  std::size_t q = 80;            // block side, elements
  std::size_t element_bytes = 8; // double precision
};

/// Bytes of one q x q block.
std::size_t block_bytes(const CalibrationConstants& constants);

/// Seconds of port time to move one block over an `mbps` link.
model::Time block_comm_seconds(double mbps,
                               const CalibrationConstants& constants);

/// Seconds to apply one block update (2 q^3 flops) at `gflops`.
model::Time block_update_seconds(double gflops,
                                 const CalibrationConstants& constants);

/// Block buffers available in `ram_mib` MiB at the given usable fraction.
model::BlockCount memory_blocks(double ram_mib, double usable_fraction,
                                const CalibrationConstants& constants);

/// Full conversion.
WorkerSpec calibrate(const PhysicalSpec& spec,
                     const CalibrationConstants& constants = {});

// ---- online calibration -----------------------------------------------------

/// EWMA tracker of one worker's observed per-update cost, the online
/// counterpart of the physical calibration above: instead of deriving
/// w_i from a datasheet it is re-estimated from what the worker actually
/// did. Both execution backends fold their observations through this
/// type -- the simulator in model seconds (the engine observes every
/// projected step, so the estimate tracks the SlowdownSchedule's ground
/// truth), the threaded runtime in wall seconds per update (each
/// worker's measured step latencies). The first observation doubles as
/// the baseline, so drift() is a clock-unit-free ratio ("this worker now
/// runs 2.1x slower than when the run started") comparable across
/// backends.
struct SpeedEstimate {
  /// Leading observations discarded outright: a worker's first real
  /// step pays page faults and cold caches and can read 10-30x slow,
  /// which would poison a first-observation baseline for the whole run.
  static constexpr std::size_t kWarmup = 1;
  /// Post-warmup observations averaged into the baseline.
  static constexpr std::size_t kBaselineWindow = 4;

  double ewma = 0.0;          // smoothed per-update cost, backend clock
  double baseline = 0.0;      // mean of the first post-warmup window
  double baseline_sum = 0.0;
  std::size_t baseline_count = 0;
  std::size_t observations = 0;  // total, warm-up included

  /// Folds one observed per-update cost in. `alpha` in (0, 1]: weight of
  /// the new observation (1.0 = always trust the latest step).
  void observe(double per_update_cost, double alpha);

  bool calibrated() const { return observations > kWarmup; }
  /// The smoothed estimate, or `fallback` until warmed up.
  double value_or(double fallback) const {
    return calibrated() ? ewma : fallback;
  }
  /// Current-vs-initial speed ratio (> 1 = the worker slowed down);
  /// exactly 1.0 until warmed up.
  double drift() const;

  bool operator==(const SpeedEstimate&) const = default;
};

/// Knobs for the EWMA calibration loop, shared by both backends.
struct CalibrationOptions {
  /// Weight of the newest observation. The default reaches ~95% of a
  /// stepped speed change within 10 observations while smoothing
  /// single-step jitter.
  double alpha = 0.25;
};

// ---- calibration persistence ------------------------------------------------
//
// A long-lived service loses everything it learned about its workers on
// restart; these helpers give SpeedEstimate the same host-keyed cache
// the kernel autotuner has. The file lives next to the tuning cache,
// follows its discipline -- strict whole-file parse (any anomaly reads
// as "no cache"), atomic tmp+rename writes, never a crash -- and keys
// entries by CPU model + a caller-supplied fleet label + worker count,
// so a fleet only reheats ITS OWN calibration on matching silicon.

/// Resolved cache file path: programmatic override (set below), then
/// the HMXP_CALIB_CACHE environment variable, then "<tuning cache
/// directory>/calibration". The value "off" (override or env) and an
/// unresolvable location both yield "" = persistence disabled.
std::string calibration_cache_path();

/// Overrides the cache location for this process ("off" disables,
/// nullopt restores the default chain). Tests use this for isolation.
void set_calibration_cache_override(std::optional<std::string> path_or_off);

/// Cache key for one fleet: sanitized CPU model + fleet label + worker
/// count. The count is part of the key -- a resized fleet cold-starts
/// rather than misassign estimates to the wrong workers.
std::string calibration_cache_key(const std::string& fleet_label,
                                  std::size_t workers);

/// Loads the estimates stored under `key`, or nullopt if the file is
/// missing, malformed, holds no such key, or the stored worker count
/// differs from `workers`. Never throws.
std::optional<std::vector<SpeedEstimate>> load_calibration(
    const std::string& path, const std::string& key, std::size_t workers);

/// Stores `speeds` under `key`, preserving other keys' entries.
/// Atomic (tmp + rename); false on any failure. Never throws.
bool store_calibration(const std::string& path, const std::string& key,
                       const std::vector<SpeedEstimate>& speeds);

}  // namespace hmxp::platform
