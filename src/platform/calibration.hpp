// Physical-to-model calibration.
//
// Converts hardware descriptions (network Mbps, sustained GFlop/s, RAM)
// into the (c, w, m) block units of the model, for block size q and
// 8-byte doubles. The defaults approximate the paper's Lyon cluster:
// q = 80, switched Fast Ethernet, ~2.4 GFlop/s P4-class nodes, 80% of
// RAM usable for block buffers.
//
// NOTE on the paper's network: section 6.1 says "switched 10 Mbps Fast
// Ethernet". Fast Ethernet is 100 Mbps, and the makespans the paper
// reports (~2000 s for the F4-class instances, ~7800 s for the 20-worker
// run) are only consistent with ~100 Mbps links: at 10 Mbps the operand
// traffic alone would exceed them several-fold. We therefore calibrate
// the base link at 100 Mbps and treat the heterogeneous-link experiment's
// {10, 5, 1} Mbps as the 10:5:1 *ratios* it establishes, i.e.
// {100, 50, 10} Mbps. EXPERIMENTS.md discusses the discrepancy.
#pragma once

#include "platform/platform.hpp"

namespace hmxp::platform {

struct PhysicalSpec {
  double mbps = 100.0;           // link bandwidth, megabits per second
  double gflops = 2.4;           // sustained dgemm rate
  double ram_mib = 1024.0;       // memory in MiB
  double usable_fraction = 0.8;  // fraction of RAM available for buffers
  std::string label;
};

struct CalibrationConstants {
  std::size_t q = 80;            // block side, elements
  std::size_t element_bytes = 8; // double precision
};

/// Bytes of one q x q block.
std::size_t block_bytes(const CalibrationConstants& constants);

/// Seconds of port time to move one block over an `mbps` link.
model::Time block_comm_seconds(double mbps,
                               const CalibrationConstants& constants);

/// Seconds to apply one block update (2 q^3 flops) at `gflops`.
model::Time block_update_seconds(double gflops,
                                 const CalibrationConstants& constants);

/// Block buffers available in `ram_mib` MiB at the given usable fraction.
model::BlockCount memory_blocks(double ram_mib, double usable_fraction,
                                const CalibrationConstants& constants);

/// Full conversion.
WorkerSpec calibrate(const PhysicalSpec& spec,
                     const CalibrationConstants& constants = {});

}  // namespace hmxp::platform
