#include "platform/generator.hpp"

#include <cmath>
#include <string>
#include <vector>

#include "util/check.hpp"
#include "util/stats.hpp"

namespace hmxp::platform {

namespace {
// Group layout shared by the three one-parameter families: two workers of
// the first kind, four of the second, two of the third, as in the paper
// ("two workers ..., four of them ..., and the last two ...").
constexpr int kGroupSizes[3] = {2, 4, 2};
}  // namespace

PhysicalSpec base_spec() {
  PhysicalSpec spec;
  spec.mbps = 100.0;
  // Sustained dgemm on the paper's P4-class nodes: ~1.5 GFlop/s. This
  // pins the regime knee mu*w/(2c) where the paper observed it: the
  // 20-worker 1 GiB run enrolls P = ceil(127 * w / (2c)) = 11 workers,
  // matching "all algorithms making resource selection use eleven
  // workers" in section 6.3.
  spec.gflops = 1.5;
  spec.ram_mib = 512.0;
  spec.usable_fraction = 0.8;
  spec.label = "base";
  return spec;
}

Platform hetero_memory(const CalibrationConstants& constants) {
  const double mems[3] = {256.0, 512.0, 1024.0};
  std::vector<WorkerSpec> workers;
  for (int group = 0; group < 3; ++group) {
    for (int k = 0; k < kGroupSizes[group]; ++k) {
      PhysicalSpec spec = base_spec();
      spec.ram_mib = mems[group];
      spec.label = std::to_string(static_cast<int>(mems[group])) + "MiB";
      workers.push_back(calibrate(spec, constants));
    }
  }
  return Platform("hetero-memory", std::move(workers));
}

Platform hetero_links(const CalibrationConstants& constants) {
  // Paper ratio 10:5:1 -- see calibration.hpp for the 100 Mbps base.
  // Memory is homogeneous at the cluster's 1 GiB; this matters: with
  // mu = 127 only ceil(s / 127) column groups exist, so resource
  // selection also plays out through group scarcity, as in the paper.
  const double mbps[3] = {100.0, 50.0, 10.0};
  std::vector<WorkerSpec> workers;
  for (int group = 0; group < 3; ++group) {
    for (int k = 0; k < kGroupSizes[group]; ++k) {
      PhysicalSpec spec = base_spec();
      spec.ram_mib = 1024.0;
      spec.mbps = mbps[group];
      spec.label = std::to_string(static_cast<int>(mbps[group])) + "Mbps";
      workers.push_back(calibrate(spec, constants));
    }
  }
  return Platform("hetero-links", std::move(workers));
}

Platform hetero_compute(const CalibrationConstants& constants) {
  // Homogeneous links and memory (1 GiB, see hetero_links).
  const double gflops[3] = {1.5, 0.75, 0.375};  // S, S/2, S/4
  std::vector<WorkerSpec> workers;
  for (int group = 0; group < 3; ++group) {
    for (int k = 0; k < kGroupSizes[group]; ++k) {
      PhysicalSpec spec = base_spec();
      spec.ram_mib = 1024.0;
      spec.gflops = gflops[group];
      spec.label = util::format_fixed(gflops[group], 1) + "GF";
      workers.push_back(calibrate(spec, constants));
    }
  }
  return Platform("hetero-compute", std::move(workers));
}

Platform fully_hetero(double ratio, const CalibrationConstants& constants) {
  HMXP_REQUIRE(ratio >= 1.0, "heterogeneity ratio must be >= 1");
  std::vector<WorkerSpec> workers;
  for (int combo = 0; combo < 8; ++combo) {
    const bool fast_link = (combo & 1) != 0;
    const bool fast_cpu = (combo & 2) != 0;
    const bool big_mem = (combo & 4) != 0;
    PhysicalSpec spec = base_spec();
    spec.mbps = fast_link ? 100.0 : 100.0 / ratio;
    spec.gflops = fast_cpu ? 1.5 : 1.5 / ratio;
    spec.ram_mib = big_mem ? 1024.0 : 1024.0 / ratio;
    spec.label = std::string(fast_link ? "L+" : "L-") +
                 (fast_cpu ? "C+" : "C-") + (big_mem ? "M+" : "M-");
    workers.push_back(calibrate(spec, constants));
  }
  return Platform("fully-hetero-r" + util::format_fixed(ratio, 0),
                  std::move(workers));
}

Platform random_platform(util::Rng& rng, int p,
                         const CalibrationConstants& constants) {
  HMXP_REQUIRE(p >= 1, "need at least one worker");
  std::vector<WorkerSpec> workers;
  for (int i = 0; i < p; ++i) {
    PhysicalSpec spec = base_spec();
    // "The ratio between minimum and maximum values ... is up to four."
    spec.mbps = 100.0 / rng.uniform(1.0, 4.0);
    spec.gflops = 1.5 / rng.uniform(1.0, 4.0);
    spec.ram_mib = 1024.0 / rng.uniform(1.0, 4.0);
    spec.label = "rnd" + std::to_string(i + 1);
    workers.push_back(calibrate(spec, constants));
  }
  return Platform("random-seed" + std::to_string(rng.seed()),
                  std::move(workers));
}

namespace {
Platform real_platform(bool memory_upgraded,
                       const CalibrationConstants& constants) {
  struct Group {
    const char* label;
    double ghz;
    double old_ram_mib;  // November 2006
    double new_ram_mib;  // August 2007
  };
  // Sustained dgemm roughly tracks clock for these P4-class parts:
  // ~0.625 flop/cycle with ATLAS (1.5 GFlop/s at 2.4 GHz).
  const Group groups[4] = {
      {"5013-GM P4 2.4GHz", 2.4, 256.0, 1024.0},
      {"6013PI Xeon 2.4GHz", 2.4, 1024.0, 1024.0},
      {"5013SI Xeon 2.6GHz", 2.6, 1024.0, 1024.0},
      {"IDE250W P4 2.8GHz", 2.8, 256.0, 1024.0},
  };
  std::vector<WorkerSpec> workers;
  for (const Group& group : groups) {
    for (int k = 0; k < 5; ++k) {
      PhysicalSpec spec = base_spec();
      spec.gflops = group.ghz * 0.625;
      spec.ram_mib = memory_upgraded ? group.new_ram_mib : group.old_ram_mib;
      spec.label = group.label;
      workers.push_back(calibrate(spec, constants));
    }
  }
  return Platform(memory_upgraded ? "real-aug2007" : "real-nov2006",
                  std::move(workers));
}
}  // namespace

Platform real_platform_aug2007(const CalibrationConstants& constants) {
  return real_platform(/*memory_upgraded=*/true, constants);
}

Platform real_platform_nov2006(const CalibrationConstants& constants) {
  return real_platform(/*memory_upgraded=*/false, constants);
}

}  // namespace hmxp::platform
