// Generators for every platform family of section 6.
//
// Base worker (all experiments): 100 Mbps link, 2.4 GFlop/s, 512 MiB —
// see calibration.hpp for why 100 Mbps. Except where stated, platforms
// have eight workers plus the (implicit) master, as in the paper.
#pragma once

#include "platform/calibration.hpp"
#include "platform/platform.hpp"
#include "util/rng.hpp"

namespace hmxp::platform {

/// Memory-heterogeneous platform of Fig. 4: uniform links and speeds,
/// memories {2 x 256 MiB, 4 x 512 MiB, 2 x 1024 MiB}.
Platform hetero_memory(const CalibrationConstants& constants = {});

/// Link-heterogeneous platform of Fig. 5: uniform speeds and memories,
/// links in the paper's 10:5:1 ratio {2 fast, 4 medium, 2 slow}.
Platform hetero_links(const CalibrationConstants& constants = {});

/// Compute-heterogeneous platform of Fig. 6: uniform links and memories,
/// speeds {2 x S, 4 x S/2, 2 x S/4}.
Platform hetero_compute(const CalibrationConstants& constants = {});

/// Fully heterogeneous platform of Fig. 7 (first two columns): each of
/// link, speed and memory takes two values whose ratio is `ratio`
/// (2 or 4 in the paper); the eight workers enumerate the 2^3 combos.
Platform fully_hetero(double ratio, const CalibrationConstants& constants = {});

/// Random platform of Fig. 7 (last ten columns): per-worker link, speed
/// and memory drawn uniformly with max/min ratio up to 4.
Platform random_platform(util::Rng& rng, int p = 8,
                         const CalibrationConstants& constants = {});

/// The real 20-worker Lyon platform, August 2007 configuration
/// (section 6.3 "Real platform"): four homogeneous groups of five,
/// {P4 2.4 GHz, Xeon 2.4 GHz, Xeon 2.6 GHz, P4 2.8 GHz}, all with 1 GiB.
Platform real_platform_aug2007(const CalibrationConstants& constants = {});

/// November 2006 configuration: same processors, but the 5013-GM and
/// IDE250W groups still had 256 MiB.
Platform real_platform_nov2006(const CalibrationConstants& constants = {});

/// Base physical spec shared by the synthetic families (exposed so tests
/// and benches can derive expectations from it).
PhysicalSpec base_spec();

}  // namespace hmxp::platform
