#include "platform/perturbation.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace hmxp::platform {

void SlowdownSchedule::insert(SlowdownEvent event) {
  HMXP_REQUIRE(event.worker >= 0, "slowdown event needs a worker index");
  HMXP_REQUIRE(event.at >= 0.0, "slowdown event time cannot be negative");
  HMXP_REQUIRE(event.factor > 1e-9, "slowdown factor must be positive");
  // Keep events sorted by time; equal times keep insertion order so the
  // last add() wins, which is what lookup() relies on.
  const auto after = std::upper_bound(
      events_.begin(), events_.end(), event,
      [](const SlowdownEvent& a, const SlowdownEvent& b) { return a.at < b.at; });
  events_.insert(after, event);
}

void SlowdownSchedule::add(int worker, model::Time at, double factor) {
  insert(SlowdownEvent{at, worker, factor, SlowdownEvent::Resource::kCompute});
}

void SlowdownSchedule::add_bandwidth(int worker, model::Time at,
                                     double factor) {
  insert(
      SlowdownEvent{at, worker, factor, SlowdownEvent::Resource::kBandwidth});
}

double SlowdownSchedule::lookup(int worker, model::Time at,
                                SlowdownEvent::Resource resource) const {
  double current = 1.0;
  for (const SlowdownEvent& event : events_) {
    if (event.at > at) break;
    if (event.worker == worker && event.resource == resource)
      current = event.factor;
  }
  return current;
}

double SlowdownSchedule::factor(int worker, model::Time at) const {
  return lookup(worker, at, SlowdownEvent::Resource::kCompute);
}

double SlowdownSchedule::bandwidth_factor(int worker, model::Time at) const {
  return lookup(worker, at, SlowdownEvent::Resource::kBandwidth);
}

bool SlowdownSchedule::has_bandwidth_events() const {
  return std::any_of(events_.begin(), events_.end(),
                     [](const SlowdownEvent& event) {
                       return event.resource ==
                              SlowdownEvent::Resource::kBandwidth;
                     });
}

SlowdownSchedule make_heavy_straggler(int worker, model::Time at,
                                      double factor) {
  SlowdownSchedule schedule;
  schedule.add(worker, at, factor);
  return schedule;
}

SlowdownSchedule make_ramping_straggler(int worker, model::Time at,
                                        model::Time period,
                                        double step_factor, int steps) {
  HMXP_REQUIRE(period > 0.0, "ramping straggler needs a positive period");
  HMXP_REQUIRE(steps >= 1, "ramping straggler needs at least one ramp");
  SlowdownSchedule schedule;
  // Events REPLACE the factor in force (they do not compose), so each
  // ramp carries the full compounded slowdown.
  double factor = 1.0;
  for (int step = 0; step < steps; ++step) {
    factor *= step_factor;
    schedule.add(worker, at + static_cast<model::Time>(step) * period, factor);
  }
  return schedule;
}

void FaultSchedule::add(int worker, model::Time at) {
  HMXP_REQUIRE(worker >= 0, "fault event needs a worker index");
  HMXP_REQUIRE(at >= 0.0, "fault event time cannot be negative");
  FaultEvent event{at, worker};
  const auto after = std::upper_bound(
      events_.begin(), events_.end(), event,
      [](const FaultEvent& a, const FaultEvent& b) { return a.at < b.at; });
  events_.insert(after, event);
}

bool FaultSchedule::dead(int worker, model::Time at) const {
  for (const FaultEvent& event : events_) {
    if (event.at > at) break;
    if (event.worker == worker) return true;
  }
  return false;
}

}  // namespace hmxp::platform
