#include "platform/perturbation.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace hmxp::platform {

void SlowdownSchedule::add(int worker, model::Time at, double factor) {
  HMXP_REQUIRE(worker >= 0, "slowdown event needs a worker index");
  HMXP_REQUIRE(at >= 0.0, "slowdown event time cannot be negative");
  HMXP_REQUIRE(factor > 1e-9, "slowdown factor must be positive");
  SlowdownEvent event{at, worker, factor};
  // Keep events sorted by time; equal times keep insertion order so the
  // last add() wins, which is what factor() relies on.
  const auto after = std::upper_bound(
      events_.begin(), events_.end(), event,
      [](const SlowdownEvent& a, const SlowdownEvent& b) { return a.at < b.at; });
  events_.insert(after, event);
}

double SlowdownSchedule::factor(int worker, model::Time at) const {
  double current = 1.0;
  for (const SlowdownEvent& event : events_) {
    if (event.at > at) break;
    if (event.worker == worker) current = event.factor;
  }
  return current;
}

}  // namespace hmxp::platform
