// Dynamic platform perturbation: per-worker resources that change
// mid-run, the hooks that open the adaptive / time-varying / unreliable
// scenario classes ("Adaptive Private Distributed Matrix
// Multiplication", Bitar et al. 2021: worker speeds drift -- and workers
// drop out -- while the product runs).
//
// A SlowdownSchedule is a piecewise-constant multiplier on a worker's
// per-update compute cost (w_i) or on its link cost (c_i):
// factor(i, t) / bandwidth_factor(i, t) is the multiplier in force for
// worker i at time t (1.0 before any event). Both execution backends
// consume the same schedule, each against its own clock:
//   * the simulator reads it in model seconds -- the engine scales the
//     projected compute duration of every step (and, for bandwidth
//     events, every communication's port time) by the factor in force
//     when it starts, so time-varying platforms are first-class
//     simulation instances;
//   * the threaded runtime reads it in wall seconds since the run began
//     -- each worker re-reads its compute factor before every step and
//     repeats the block product accordingly (the paper's deceleration
//     trick), and the master throttles its per-message port sleep by the
//     bandwidth factor (ExecutorOptions::throttle_block_seconds), so an
//     online scheduler faces links and CPUs that really change under it.
//
// A FaultSchedule is the unreliable-platform counterpart: worker i dies
// for good at time t. The engine applies events at decision boundaries
// of the model clock; runtime workers check the wall clock before every
// message they process and kill themselves past their event.
#pragma once

#include <vector>

#include "model/costs.hpp"

namespace hmxp::platform {

struct SlowdownEvent {
  enum class Resource { kCompute, kBandwidth };
  model::Time at = 0.0;  // backend clock: model secs (sim) / wall secs (rt)
  int worker = -1;
  double factor = 1.0;   // multiplier on the worker's per-update/link cost
  Resource resource = Resource::kCompute;
};

class SlowdownSchedule {
 public:
  SlowdownSchedule() = default;

  /// From `at` on, worker `worker` computes `factor` times slower (>= a
  /// small positive bound; a later event for the same worker replaces
  /// the factor, it does not compose).
  void add(int worker, model::Time at, double factor);
  /// Same, on the worker's link: every block it exchanges with the
  /// master costs `factor` times the static c_i from `at` on.
  void add_bandwidth(int worker, model::Time at, double factor);

  /// Compute multiplier in force for `worker` at `at` (1.0 w/o events).
  double factor(int worker, model::Time at) const;
  /// Link multiplier in force for `worker` at `at` (1.0 w/o events).
  double bandwidth_factor(int worker, model::Time at) const;

  bool empty() const { return events_.empty(); }
  bool has_bandwidth_events() const;
  const std::vector<SlowdownEvent>& events() const { return events_; }

 private:
  void insert(SlowdownEvent event);
  double lookup(int worker, model::Time at,
                SlowdownEvent::Resource resource) const;

  std::vector<SlowdownEvent> events_;  // sorted by (at, insertion order)
};

// ---- heavy-straggler scenario family ----------------------------------------
//
// Canned schedules for straggler-mitigation experiments (the shape the
// SP-* speculation wrappers are built to beat). Times follow the usual
// per-backend clock convention.

/// One worker turns `factor` times slower at `at` and STAYS slow -- the
/// classic heavy straggler (default 4x, the paper's deceleration trick
/// turned hostile).
SlowdownSchedule make_heavy_straggler(int worker, model::Time at,
                                      double factor = 4.0);

/// One worker degrades in compounding ramps: at `at` it is `step_factor`
/// times slower, one `period` later `step_factor^2`, ... for `steps`
/// ramps total (a machine progressively starved by a co-tenant).
SlowdownSchedule make_ramping_straggler(int worker, model::Time at,
                                        model::Time period,
                                        double step_factor = 2.0,
                                        int steps = 3);

/// Permanent worker loss: worker `worker` fails at time `at` (same
/// per-backend clock convention as SlowdownSchedule). A failed worker
/// never recovers; its in-flight chunk returns to the pending set and a
/// fault-tolerant scheduler re-assigns it to a survivor.
struct FaultEvent {
  model::Time at = 0.0;
  int worker = -1;
};

class FaultSchedule {
 public:
  FaultSchedule() = default;

  void add(int worker, model::Time at);

  /// True if `worker` has an event at or before `at`.
  bool dead(int worker, model::Time at) const;

  bool empty() const { return events_.empty(); }
  const std::vector<FaultEvent>& events() const { return events_; }

 private:
  std::vector<FaultEvent> events_;  // sorted by (at, insertion order)
};

}  // namespace hmxp::platform
