// Dynamic platform perturbation: per-worker compute slowdown that
// changes mid-run, the hook that opens the adaptive / time-varying
// scenario class ("Adaptive Private Distributed Matrix Multiplication",
// Bitar et al. 2021: worker speeds drift while the product runs).
//
// A SlowdownSchedule is a piecewise-constant multiplier on a worker's
// per-update compute cost: factor(i, t) is the multiplier in force for
// worker i at time t (1.0 before any event). Both execution backends
// consume the same schedule, each against its own clock:
//   * the simulator reads it in model seconds -- the engine scales the
//     projected compute duration of every step by the factor in force at
//     the step's compute start, so time-varying platforms are first-class
//     simulation instances;
//   * the threaded runtime reads it in wall seconds since the run began
//     -- each worker re-reads its factor before every step and repeats
//     the block product accordingly (the paper's deceleration trick),
//     so an online scheduler faces a platform that really does change
//     under it mid-run.
#pragma once

#include <vector>

#include "model/costs.hpp"

namespace hmxp::platform {

struct SlowdownEvent {
  model::Time at = 0.0;  // backend clock: model secs (sim) / wall secs (rt)
  int worker = -1;
  double factor = 1.0;   // multiplier on the worker's per-update cost
};

class SlowdownSchedule {
 public:
  SlowdownSchedule() = default;

  /// From `at` on, worker `worker` computes `factor` times slower (>= a
  /// small positive bound; a later event for the same worker replaces
  /// the factor, it does not compose).
  void add(int worker, model::Time at, double factor);

  /// Multiplier in force for `worker` at time `at` (1.0 with no event).
  double factor(int worker, model::Time at) const;

  bool empty() const { return events_.empty(); }
  const std::vector<SlowdownEvent>& events() const { return events_; }

 private:
  std::vector<SlowdownEvent> events_;  // sorted by (at, insertion order)
};

}  // namespace hmxp::platform
