#include "platform/platform.hpp"

#include <numeric>
#include <sstream>

#include "util/check.hpp"

namespace hmxp::platform {

model::BlockCount WorkerSpec::mu() const {
  return model::double_buffered_mu(m);
}

model::BlockCount WorkerSpec::beta() const { return model::toledo_beta(m); }

Platform::Platform(std::string name, std::vector<WorkerSpec> workers)
    : name_(std::move(name)), workers_(std::move(workers)) {
  HMXP_REQUIRE(!workers_.empty(), "platform needs at least one worker");
  for (const WorkerSpec& worker : workers_) {
    HMXP_REQUIRE(worker.c > 0, "worker bandwidth cost must be positive");
    HMXP_REQUIRE(worker.w > 0, "worker compute cost must be positive");
    HMXP_REQUIRE(worker.m >= 5,
                 "worker memory must hold at least 5 blocks (mu = 1 layout)");
  }
  original_indices_.resize(workers_.size());
  std::iota(original_indices_.begin(), original_indices_.end(), 0);
}

Platform Platform::homogeneous(int p, model::Time c, model::Time w,
                               model::BlockCount m) {
  HMXP_REQUIRE(p >= 1, "need at least one worker");
  std::vector<WorkerSpec> workers(static_cast<std::size_t>(p),
                                  WorkerSpec{c, w, m, "worker"});
  return Platform("homogeneous", std::move(workers));
}

const WorkerSpec& Platform::worker(int i) const {
  HMXP_REQUIRE(i >= 0 && i < size(), "worker index out of range");
  return workers_[static_cast<std::size_t>(i)];
}

bool Platform::is_homogeneous() const {
  for (const WorkerSpec& worker : workers_) {
    if (worker.c != workers_.front().c || worker.w != workers_.front().w ||
        worker.m != workers_.front().m)
      return false;
  }
  return true;
}

Platform Platform::subset(const std::vector<int>& indices,
                          const std::string& name) const {
  HMXP_REQUIRE(!indices.empty(), "subset needs at least one worker");
  std::vector<WorkerSpec> chosen;
  std::vector<int> mapping;
  chosen.reserve(indices.size());
  for (int index : indices) {
    HMXP_REQUIRE(index >= 0 && index < size(), "subset index out of range");
    chosen.push_back(workers_[static_cast<std::size_t>(index)]);
    mapping.push_back(original_indices_[static_cast<std::size_t>(index)]);
  }
  Platform result(name, std::move(chosen));
  result.original_indices_ = std::move(mapping);
  return result;
}

int Platform::original_index(int i) const {
  HMXP_REQUIRE(i >= 0 && i < size(), "worker index out of range");
  return original_indices_[static_cast<std::size_t>(i)];
}

std::vector<model::SteadyWorker> Platform::steady_workers() const {
  std::vector<model::SteadyWorker> result;
  result.reserve(workers_.size());
  for (const WorkerSpec& worker : workers_)
    result.push_back(model::SteadyWorker{worker.c, worker.w, worker.mu()});
  return result;
}

std::string Platform::to_string() const {
  std::ostringstream os;
  os << "Platform '" << name_ << "' (" << size() << " workers)\n";
  for (int i = 0; i < size(); ++i) {
    const WorkerSpec& w = worker(i);
    os << "  P" << (i + 1) << ": c=" << w.c << " s/block, w=" << w.w
       << " s/update, m=" << w.m << " blocks (mu=" << w.mu()
       << ", beta=" << w.beta() << ")";
    if (!w.label.empty()) os << "  [" << w.label << "]";
    os << '\n';
  }
  return os.str();
}

}  // namespace hmxp::platform
