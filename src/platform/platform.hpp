// The star platform of section 2: a master P0 with no processing
// capability and p workers P1..Pp, each described by
//   c_i  seconds of master-port time per q x q block sent or received,
//   w_i  seconds per block update C_ij += A_ik * B_kj,
//   m_i  memory capacity in q x q block buffers.
#pragma once

#include <string>
#include <vector>

#include "model/costs.hpp"
#include "model/layout.hpp"
#include "model/steady_state.hpp"

namespace hmxp::platform {

struct WorkerSpec {
  model::Time c = 0.0;       // s/block on the link to the master
  model::Time w = 0.0;       // s/block-update
  model::BlockCount m = 0;   // buffers
  std::string label;         // free-form, e.g. "P4-2.4GHz/1GB"

  /// Chunk side this worker's memory supports under the double-buffered
  /// layout (sections 4-5).
  model::BlockCount mu() const;
  /// Chunk side under Toledo's thirds layout (the BMM baseline).
  model::BlockCount beta() const;

  bool operator==(const WorkerSpec&) const = default;
};

class Platform {
 public:
  Platform() = default;
  Platform(std::string name, std::vector<WorkerSpec> workers);

  /// p identical workers (the fully homogeneous case of section 4).
  static Platform homogeneous(int p, model::Time c, model::Time w,
                              model::BlockCount m);

  const std::string& name() const { return name_; }
  int size() const { return static_cast<int>(workers_.size()); }
  const WorkerSpec& worker(int i) const;
  const std::vector<WorkerSpec>& workers() const { return workers_; }

  bool is_homogeneous() const;

  /// Restriction to a subset of workers (for Hom/HomI resource
  /// selection); indices refer to this platform and are preserved in the
  /// returned platform's `original_index` mapping.
  Platform subset(const std::vector<int>& indices,
                  const std::string& name) const;
  /// For platforms built via subset(): index into the parent platform.
  /// Identity for platforms built any other way.
  int original_index(int i) const;

  /// Conversion for the steady-state machinery of Table 1.
  std::vector<model::SteadyWorker> steady_workers() const;

  std::string to_string() const;

 private:
  std::string name_;
  std::vector<WorkerSpec> workers_;
  std::vector<int> original_indices_;
};

}  // namespace hmxp::platform
