#include "runtime/buffer_pool.hpp"

#include <algorithm>
#include <utility>

namespace hmxp::runtime {

BufferPool::Stats BufferPool::Stats::delta_to(const Stats& end) const {
  Stats delta;
  delta.acquires = end.acquires - acquires;
  delta.allocations = end.allocations - allocations;
  delta.reuses = end.reuses - reuses;
  delta.releases = end.releases - releases;
  delta.peak_outstanding = end.peak_outstanding;
  delta.outstanding = end.outstanding;
  return delta;
}

BufferPool::Buffer BufferPool::acquire(std::size_t size) {
  std::lock_guard<std::mutex> lock(mutex_);
  ++stats_.acquires;
  ++stats_.outstanding;
  stats_.peak_outstanding =
      std::max(stats_.peak_outstanding, stats_.outstanding);

  // Best fit: the smallest free buffer whose capacity suffices. When
  // none does, evict the smallest free buffer (keeping the larger ones
  // for later checkouts) and allocate fresh -- growing a recycled
  // vector would pointlessly copy contents the caller overwrites.
  std::size_t best = free_.size();
  std::size_t smallest = 0;
  for (std::size_t i = 0; i < free_.size(); ++i) {
    const std::size_t cap = free_[i].capacity();
    if (cap >= size && (best == free_.size() || cap < free_[best].capacity()))
      best = i;
    if (cap <= free_[smallest].capacity()) smallest = i;
  }
  if (best != free_.size()) {
    Buffer buffer = std::move(free_[best]);
    free_[best] = std::move(free_.back());
    free_.pop_back();
    ++stats_.reuses;
    buffer.resize(size);
    return buffer;
  }
  if (!free_.empty()) {
    free_[smallest] = std::move(free_.back());
    free_.pop_back();
  }
  ++stats_.allocations;
  return Buffer(size);
}

void BufferPool::release(Buffer&& buffer) {
  std::lock_guard<std::mutex> lock(mutex_);
  ++stats_.releases;
  // Clamped so a foreign (never-acquired) release cannot push the
  // in-flight count negative; acquired buffers always balance.
  if (stats_.outstanding > 0) --stats_.outstanding;
  if (buffer.capacity() == 0) return;  // nothing worth recycling
  free_.push_back(std::move(buffer));
}

BufferPool::Stats BufferPool::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

}  // namespace hmxp::runtime
