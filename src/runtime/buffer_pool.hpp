// Recycling pool for message payload buffers, making the online data
// plane allocation-free in steady state: the master reclaims returned-C
// and operand buffers and reuses them for the next copy-out, workers
// return operand buffers after each step. Buffers are plain
// std::vector<double> so they move in and out of messages for free; the
// pool recycles their heap storage, never their contents.
//
// Thread-safe: the master and every worker thread acquire/release
// concurrently. Counters make "zero per-step heap allocation after
// warm-up" an assertable property (tests) and a benchmark counter.
#pragma once

#include <cstddef>
#include <mutex>
#include <vector>

namespace hmxp::runtime {

class BufferPool {
 public:
  using Buffer = std::vector<double>;

  struct Stats {
    std::size_t acquires = 0;     // total checkout count
    std::size_t allocations = 0;  // checkouts that had to grow heap storage
    std::size_t reuses = 0;       // checkouts served entirely from recycling
    std::size_t releases = 0;     // total buffer returns
    std::size_t peak_outstanding = 0;  // max buffers checked out at once
    /// Buffers checked out RIGHT NOW (a gauge, not a counter): 0 at any
    /// quiescent point -- between jobs on a long-lived pool, and at
    /// shutdown -- or payloads leaked.
    std::size_t outstanding = 0;

    /// Per-job view of a long-lived pool: counters are differences
    /// (`end` minus this), gauges (`outstanding`, `peak_outstanding`)
    /// are taken from `end` as-of-job-end values. Counters on a pool
    /// are cumulative and never reset, so N sequential jobs each get an
    /// honest delta while the lifetime totals stay assertable.
    Stats delta_to(const Stats& end) const;
  };

  /// Checks out a buffer of exactly `size` elements (contents
  /// unspecified -- callers overwrite). Served from the free list
  /// whenever a released buffer's capacity suffices; allocates (and
  /// counts it) otherwise.
  Buffer acquire(std::size_t size);

  /// Returns a buffer to the pool for reuse. Accepts any vector --
  /// including one that was never acquired -- so callers can simply
  /// hand back whatever payload they are done with.
  void release(Buffer&& buffer);

  Stats stats() const;

 private:
  mutable std::mutex mutex_;
  std::vector<Buffer> free_;
  Stats stats_;
};

}  // namespace hmxp::runtime
