// Bounded MPSC channel used for master-worker message passing in the
// threaded runtime. The bound is semantically load-bearing: a worker's
// operand channel has capacity prefetch_depth + 1, so a master pushing
// past a worker's buffer capacity blocks -- the same "master waits for
// the worker to free a buffer" rule the simulator's engine enforces.
#pragma once

#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>

#include "util/check.hpp"

namespace hmxp::runtime {

template <typename T>
class Channel {
 public:
  explicit Channel(std::size_t capacity) : capacity_(capacity) {
    HMXP_REQUIRE(capacity >= 1, "channel capacity must be positive");
  }

  /// Blocks while the channel is full; fails if the channel was closed.
  void push(T value) {
    std::unique_lock lock(mutex_);
    not_full_.wait(lock, [&] { return queue_.size() < capacity_ || closed_; });
    HMXP_CHECK(!closed_, "push on closed channel");
    queue_.push_back(std::move(value));
    not_empty_.notify_one();
  }

  // GCC 12's -O3 uninitialized-use analysis reports false positives on
  // the moved-from std::variant payload when these pops inline into the
  // worker loop (the move constructors fully initialize the value; the
  // runtime is ASan/UBSan/TSan-clean). Scope-suppress, don't disable
  // the diagnostic globally.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wuninitialized"
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
#endif

  /// Non-blocking pop: a value if one is queued, nullopt otherwise
  /// (empty or closed-and-drained). The online master uses this to
  /// drain actual completion messages between scheduler decisions.
  std::optional<T> try_pop() {
    std::lock_guard lock(mutex_);
    if (queue_.empty()) return std::nullopt;
    T value = std::move(queue_.front());
    queue_.pop_front();
    not_full_.notify_one();
    return value;
  }

  /// Blocks until a value or close; nullopt means closed-and-drained.
  std::optional<T> pop() {
    std::unique_lock lock(mutex_);
    not_empty_.wait(lock, [&] { return !queue_.empty() || closed_; });
    if (queue_.empty()) return std::nullopt;
    T value = std::move(queue_.front());
    queue_.pop_front();
    not_full_.notify_one();
    return value;
  }

#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic pop
#endif

  /// Wakes all waiters; subsequent pops drain then return nullopt.
  void close() {
    std::lock_guard lock(mutex_);
    closed_ = true;
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  std::size_t capacity() const { return capacity_; }

 private:
  std::size_t capacity_;
  mutable std::mutex mutex_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<T> queue_;
  bool closed_ = false;
};

}  // namespace hmxp::runtime
