#include "runtime/executor.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <exception>
#include <optional>
#include <stdexcept>
#include <thread>

#include "core/algorithms.hpp"
#include "matrix/gemm.hpp"
#include "runtime/buffer_pool.hpp"
#include "runtime/fleet.hpp"
#include "runtime/messages.hpp"
#include "runtime/transport.hpp"
#include "util/check.hpp"

#if defined(__linux__)
#include <sys/mman.h>
#include <unistd.h>
#endif

namespace hmxp::runtime {

namespace {

using Clock = std::chrono::steady_clock;

/// Element window of a block rectangle under a partition (edge blocks
/// may be short, so the window is clipped to the matrix extents).
struct Window {
  std::size_t row0 = 0, row1 = 0, col0 = 0, col1 = 0;
  std::size_t rows() const { return row1 - row0; }
  std::size_t cols() const { return col1 - col0; }
};

Window c_window(const matrix::Partition& part, const matrix::BlockRect& rect) {
  Window window;
  window.row0 = rect.i0 * part.q();
  window.row1 = rect.i1 == part.r() ? part.n_a() : rect.i1 * part.q();
  window.col0 = rect.j0 * part.q();
  window.col1 = rect.j1 == part.s() ? part.n_b() : rect.j1 * part.q();
  return window;
}

/// Copies an element window into transport-allocated payload storage:
/// a pool-recycled vector (thread/process) or a shared-arena slot the
/// shm worker will read in place. In steady state this is a pure copy,
/// no heap allocation -- and for the shm transport it is the ONLY copy
/// the payload ever experiences.
Payload copy_window(Endpoint& endpoint, BufferPool& pool,
                    const matrix::Matrix& source, std::size_t row0,
                    std::size_t row1, std::size_t col0, std::size_t col1) {
  Payload payload =
      endpoint.allocate_payload((row1 - row0) * (col1 - col0), pool);
  matrix::View dst(payload.data(), row1 - row0, col1 - col0, col1 - col0);
  matrix::copy_into(source.window(row0, col0, row1 - row0, col1 - col0), dst);
  return payload;
}

/// The largest single payload a run under `part` can ship: a whole-C
/// chunk, a full-height A panel, or a full-width B panel. Sizes the shm
/// transport's arena slots (MAP_NORESERVE keeps untouched tails free).
std::size_t max_payload_doubles(const matrix::Partition& part) {
  const std::size_t c_doubles = part.n_a() * part.n_b();
  const std::size_t a_doubles = part.n_a() * part.n_ab();
  const std::size_t b_doubles = part.n_ab() * part.n_b();
  return std::max(c_doubles, std::max(a_doubles, b_doubles));
}

/// Excludes the matrices' element storage from fork inheritance while
/// the forking transports spawn their workers, then restores it.
///
/// Worker processes never touch the master's matrices -- every payload
/// reaches them serialized (process transport) or through the shared
/// arena (shm transport) -- yet fork() still copies the page tables of
/// those megabytes and marks every writable page copy-on-write. The
/// master then takes a soft fault on each C page it merges results
/// into, every run. MADV_DONTFORK keeps the spans out of the children
/// entirely: cheaper forks, no post-fork CoW tax. Best-effort (madvise
/// can fail on exotic mappings; that only restores the old cost) and
/// interior-page only, so allocator metadata sharing a page with the
/// buffer's edges is never affected.
class ForkVisibilityGuard {
 public:
  ForkVisibilityGuard(bool active, const matrix::Matrix& a,
                      const matrix::Matrix& b, const matrix::Matrix& c)
      : active_(active), a_(a), b_(b), c_(c) {
    if (!active_) return;
    advise(a_, /*dont_fork=*/true);
    advise(b_, /*dont_fork=*/true);
    advise(c_, /*dont_fork=*/true);
  }
  ~ForkVisibilityGuard() {
    if (!active_) return;
    advise(a_, /*dont_fork=*/false);
    advise(b_, /*dont_fork=*/false);
    advise(c_, /*dont_fork=*/false);
  }
  ForkVisibilityGuard(const ForkVisibilityGuard&) = delete;
  ForkVisibilityGuard& operator=(const ForkVisibilityGuard&) = delete;

 private:
  static void advise(const matrix::Matrix& m, bool dont_fork) {
#if defined(__linux__) && defined(MADV_DONTFORK)
    const auto begin = reinterpret_cast<std::uintptr_t>(m.data());
    const auto end = begin + m.size() * sizeof(double);
    static const std::uintptr_t page =
        static_cast<std::uintptr_t>(::sysconf(_SC_PAGESIZE));
    const std::uintptr_t lo = (begin + page - 1) & ~(page - 1);
    const std::uintptr_t hi = end & ~(page - 1);
    if (hi > lo)
      ::madvise(reinterpret_cast<void*>(lo), hi - lo,
                dont_fork ? MADV_DONTFORK : MADV_DOFORK);
#else
    (void)m;
    (void)dont_fork;
#endif
  }

  bool active_;
  const matrix::Matrix& a_;
  const matrix::Matrix& b_;
  const matrix::Matrix& c_;
};

/// The event-driven master: implements ExecutionView over real workers
/// behind the data-plane Transport (threads or forked processes -- the
/// master never knows which). Scheduler-visible bookkeeping (port
/// clock, WorkerProgress, coverage) lives in a model mirror -- a
/// sim::Engine over the same instance that executes every decision the
/// master really performs -- while readiness is overridden with ACTUAL
/// completions: a worker whose result message has arrived is
/// collectable *now*, whatever the cost model predicted. Blocking
/// semantics come from the transport: a decision whose real
/// precondition is unmet blocks the master, exactly like a decision
/// blocks the simulated port.
class OnlineExecutor final : public sim::ExecutionView {
 public:
  OnlineExecutor(const platform::Platform& platform,
                 const matrix::Partition& partition, const matrix::Matrix& a,
                 const matrix::Matrix& b, matrix::Matrix& c,
                 const ExecutorOptions& options)
      : mirror_(sim::InstanceContext::make(platform, partition),
                options.record_trace),
        a_(a),
        b_(b),
        c_(c),
        options_(options),
        worker_count_(static_cast<std::size_t>(platform.size())),
        views_(worker_count_),
        pending_(worker_count_),
        updates_per_worker_(worker_count_, 0),
        own_speed_(worker_count_),
        failure_handled_(worker_count_, 0) {
    pool_ = &own_pool_;
    wall_speed_ = &own_speed_;
  }

  /// Fleet mode: the same master loop, re-seated over a long-lived
  /// fleet's transport, pool and calibration vector. The mirror spans
  /// the FULL fleet platform; every worker outside `initial_lease`
  /// starts marked failed (the FT-* scheduler schedules around it) and
  /// its endpoint is NEVER touched -- another job may be driving it
  /// concurrently. Grants arriving through `hooks` hot-join through the
  /// same revive path a re-admitted TCP worker uses.
  OnlineExecutor(Fleet& fleet, const matrix::Partition& partition,
                 const matrix::Matrix& a, const matrix::Matrix& b,
                 matrix::Matrix& c, const FleetJobOptions& job,
                 const std::vector<int>& initial_lease,
                 const LeaseHooks& hooks)
      : mirror_(sim::InstanceContext::make(fleet.platform(), partition),
                job.record_trace),
        a_(a),
        b_(b),
        c_(c),
        options_(fleet.options()),
        worker_count_(static_cast<std::size_t>(fleet.size())),
        views_(worker_count_),
        pending_(worker_count_),
        updates_per_worker_(worker_count_, 0),
        failure_handled_(worker_count_, 0),
        fleet_(&fleet),
        hooks_(&hooks),
        leased_(worker_count_, 0),
        ever_leased_(worker_count_, 0) {
    options_.verify = job.verify;
    options_.tolerance = job.tolerance;
    options_.record_trace = job.record_trace;
    pool_ = &fleet.pool();
    wall_speed_ = &fleet.speeds();
    transport_ = &fleet.transport();
    for (const int w : initial_lease) {
      HMXP_REQUIRE(w >= 0 && static_cast<std::size_t>(w) < worker_count_,
                   "lease index out of range");
      HMXP_REQUIRE(fleet.alive(w), "cannot lease a dead worker");
      leased_[static_cast<std::size_t>(w)] = 1;
      ever_leased_[static_cast<std::size_t>(w)] = 1;
    }
    for (std::size_t w = 0; w < worker_count_; ++w) {
      if (leased_[w]) continue;
      // Foreign (or initially unleased) worker: dead on this job's
      // mirror, endpoint untouched. NOT counted in workers_failed_.
      failure_handled_[w] = 1;
      mirror_.fail_worker(static_cast<int>(w));
    }
  }

  ~OnlineExecutor() override { shutdown(); }

  // ----- ExecutionView: the state the live scheduler decides from -----
  model::Time now() const override { return mirror_.now(); }
  int worker_count() const override { return mirror_.worker_count(); }
  const platform::Platform& platform() const override {
    return mirror_.platform();
  }
  const matrix::Partition& partition() const override {
    return mirror_.partition();
  }
  const sim::WorkerProgress& progress(int worker) const override {
    return mirror_.progress(worker);
  }
  model::Time earliest_start(int worker, sim::CommKind kind) const override {
    // The online edge over the pure model: a result that has ACTUALLY
    // arrived is collectable immediately, so policies ranking actions by
    // start time react to real worker speeds (including mid-run
    // perturbations the model knows nothing about).
    if (kind == sim::CommKind::kRecvC &&
        pending_[static_cast<std::size_t>(worker)].has_value() &&
        mirror_.progress(worker).all_steps_received())
      return mirror_.now();
    return mirror_.earliest_start(worker, kind);
  }
  model::Time comm_duration(int worker, sim::CommKind kind) const override {
    return mirror_.comm_duration(worker, kind);
  }
  model::BlockCount unassigned_blocks() const override {
    return mirror_.unassigned_blocks();
  }
  model::BlockCount updates_total() const override {
    return mirror_.updates_total();
  }
  bool all_work_done() const override { return mirror_.all_work_done(); }
  const std::shared_ptr<const sim::InstanceContext>& context() const override {
    return mirror_.context();
  }
  sim::EngineState model_state() const override { return mirror_.snapshot(); }
  bool rect_assigned(const matrix::BlockRect& rect) const override {
    return mirror_.rect_assigned(rect);
  }

  /// Marks the worker failed and reclaims everything it held: the
  /// mirror returns its in-flight chunk to the pending set, queued
  /// messages hand their payload buffers back to the pool, and a
  /// still-running worker is decommissioned through its endpoint (the
  /// exit error that may cause is expected and never rethrown).
  /// Idempotent; also the master's internal path when it detects a dead
  /// worker.
  void fail_worker(int worker) override {
    const auto w = static_cast<std::size_t>(worker);
    HMXP_REQUIRE(worker >= 0 && w < worker_count_,
                 "worker index out of range");
    if (failure_handled_[w]) return;
    failure_handled_[w] = 1;
    ++workers_failed_;
    Endpoint& endpoint = transport_->endpoint(worker);
    if (!endpoint.failed()) endpoint.kill();
    // The pending result FIRST: its payload may be an arena slot the
    // dead worker handed over, and drain()'s crash reclamation below
    // frees every slot still tagged with the worker -- releasing after
    // would double-free a slot another worker may already hold.
    if (pending_[w].has_value()) {
      pending_[w]->c.release_to(*pool_);
      pending_[w].reset();
    }
    endpoint.drain(*pool_);
    views_[w].plan.reset();
    mirror_.fail_worker(worker);
    if (fleet_ != nullptr && leased_[w]) {
      // A real death, not a lease release: the fleet permanently loses
      // the worker and the lease manager must stop offering it.
      leased_[w] = 0;
      fleet_->mark_dead(worker);
      if (hooks_->worker_dead) hooks_->worker_dead(worker);
    }
  }

  /// Static w_i scaled by the worker's observed wall-clock drift: the
  /// EWMA of its measured per-update step latencies over its first
  /// observation. Model units in, model units out, so policies mix it
  /// freely with the platform's w_i -- and a worker that slowed down
  /// 2x mid-run costs 2x in every lookahead that consults it.
  model::Time calibrated_w(int worker) const override {
    return mirror_.platform().worker(worker).w *
           (*wall_speed_)[static_cast<std::size_t>(worker)].drift();
  }
  double observed_drift(int worker) const override {
    return (*wall_speed_)[static_cast<std::size_t>(worker)].drift();
  }

  // ----- the master loop -----
  ExecutorReport run(sim::Scheduler& scheduler,
                     std::vector<sim::Decision>* decision_log) {
    run_begin_ = Clock::now();
    matrix::Matrix reference;
    if (options_.verify) reference = c_;  // C_initial; product added at end

    // Inbox capacity: the chunk message plus (prefetch + 1) operand
    // slots for the deepest layout (double buffering, depth 1). The
    // bound makes a master that overruns a worker's buffers block for
    // real; per-chunk depths below the bound are enforced in model time
    // by the mirror's SendAB timing. A fleet job skips all of this: the
    // fleet's transport (and its workers) already exist.
    if (fleet_ == nullptr) {
      // Workers never see the master's matrices (payloads travel
      // serialized or through the shared arena), so keep those pages
      // out of the forks entirely -- see ForkVisibilityGuard.
      const ForkVisibilityGuard fork_guard(
          options_.transport != TransportKind::kThread, a_, b_, c_);
      owned_transport_ = make_transport(options_.transport,
                                        static_cast<int>(worker_count_),
                                        /*inbox_capacity=*/3, options_,
                                        run_begin_, pool_,
                                        max_payload_doubles(partition()));
      transport_ = owned_transport_.get();
    }
    pool_begin_ = pool_->stats();
    const std::size_t max_decisions =
        sim::decision_budget(mirror_.partition());
    std::size_t executed = 0;
    try {
      while (true) {
        drain_completions();
        sim::Decision decision = scheduler.next(*this);
        if (decision.kind == sim::Decision::Kind::kDone) break;
        // Whether this RecvC commits a speculative duplicate must be
        // read BEFORE the mirror executes (commit clears the flag).
        const bool speculative_recv =
            decision.kind == sim::Decision::Kind::kComm &&
            decision.comm == sim::CommKind::kRecvC &&
            mirror_.progress(decision.worker).chunk_speculative;
        if (options_.tolerate_faults) {
          // A worker can die between the scheduler's decision and the
          // real execution (or while the master blocks inside it). The
          // mirror executes first, so an aborted real half leaves it
          // ahead of reality: snapshot beforehand (into a reused
          // scratch state, so the per-decision snapshot allocates
          // nothing in steady state), and on a death mid-decision
          // rewind the mirror, mark the worker failed, and let the
          // scheduler re-decide against the updated view.
          mirror_.snapshot_into(rollback_state_);
          try {
            mirror_.execute(decision);
            execute_real(decision);
          } catch (...) {
            const auto w = static_cast<std::size_t>(decision.worker);
            if (decision.worker >= 0 && w < worker_count_ &&
                transport_->endpoint(decision.worker).failed() &&
                !transport_->endpoint(decision.worker).killed() &&
                !failure_handled_[w]) {
              mirror_.restore(rollback_state_);
              fail_worker(decision.worker);
              continue;  // the decision never happened
            }
            throw;
          }
        } else {
          // The mirror validates the protocol (throws std::logic_error
          // on violations) and advances the model clock; only then does
          // the decision touch real data.
          mirror_.execute(decision);
          execute_real(decision);
        }
        if (decision.kind == sim::Decision::Kind::kComm) {
          if (decision.comm == sim::CommKind::kSendC && decision.speculative)
            ++spec_stats_.duplicates_issued;
          else if (decision.comm == sim::CommKind::kCancel)
            ++spec_stats_.duplicates_cancelled;
          else if (speculative_recv)
            ++spec_stats_.duplicates_won;
        }
        if (decision_log != nullptr) decision_log->push_back(decision);
        ++executed;
        HMXP_CHECK(executed <= max_decisions,
                   "scheduler exceeded decision budget (livelock?)");
      }
    } catch (...) {
      if (fleet_ != nullptr) {
        // The job failed mid-flight. A still-leased worker may be
        // mid-chunk -- its endpoint protocol state is not at a message
        // boundary, so handing it to another job would corrupt that
        // job's stream. Kill what we hold; the fleet shrinks.
        for (std::size_t w = 0; w < worker_count_; ++w) {
          if (!leased_[w]) continue;
          try {
            fail_worker(static_cast<int>(w));
          } catch (...) {  // best-effort teardown; original error wins
          }
        }
        publish_calibration();
        throw;
      }
      shutdown();
      rethrow_worker_error();  // a dead worker is the root cause
      throw;
    }
    if (fleet_ == nullptr) {
      shutdown();
      rethrow_worker_error();
    } else {
      release_remaining_leases();
      publish_calibration();
    }

    ExecutorReport report;
    report.chunks_processed = chunks_processed_;
    report.updates_per_worker = updates_per_worker_;
    for (const std::size_t updates : updates_per_worker_)
      report.updates_performed += updates;
    report.workers_failed = workers_failed_;
    report.workers_rejoined = workers_rejoined_;
    for (const platform::SpeedEstimate& speed : *wall_speed_)
      report.observed_drift.push_back(speed.drift());
    report.result =
        sim::collect_result(scheduler.name(), mirror_, executed);
    report.buffer_pool = pool_->stats();
    report.buffer_pool_delta = pool_begin_.delta_to(report.buffer_pool);
    report.speculation = spec_stats_;
    report.speculation.wasted_updates =
        static_cast<std::size_t>(mirror_.snapshot().wasted_updates);
    report.transport = transport_->name();
    if (fleet_ == nullptr) {
      // Fleet endpoints keep streaming for OTHER jobs while this report
      // is assembled -- reading the shared counters here would race.
      // Fleet-wide stats are read between jobs via Fleet::transport_stats.
      report.transport_stats = transport_->stats();
    }
    for (const char used : ever_leased_) report.fleet_workers_used += used;
    report.kernel_variant = matrix::packed_kernel_variant();
    // Mirrors the hello handshake: a tuned blocking only when the
    // packed tier actually ran; zeros document "no blocking consumed".
    report.kernel_blocking =
        matrix::active_kernel_tier() == matrix::KernelTier::kPacked
            ? matrix::active_blocking()
            : matrix::BlockingParams{};
    report.wall_seconds =
        std::chrono::duration<double>(Clock::now() - run_begin_).count();

    if (options_.verify) {
      matrix::gemm_parallel(a_.view(), b_.view(), reference.view());
      report.max_abs_error = matrix::Matrix::max_abs_diff(c_, reference);
      if (report.max_abs_error > options_.tolerance)
        throw std::runtime_error("runtime verification failed: max |error| = " +
                                 std::to_string(report.max_abs_error));
      report.verified = true;
    }
    return report;
  }

 private:
  /// Master replica of each worker's data-plane state: which plan it
  /// holds, its element window in C, and how many steps went out.
  struct MasterView {
    std::optional<sim::ChunkPlan> plan;
    Window window;
    std::size_t steps_sent = 0;
    /// Per-worker monotone chunk ticket: stamped on every SendC, echoed
    /// on the result, named by a cancel. Never reset -- a result whose
    /// seq is not the CURRENT chunk's raced a revocation and is stale.
    std::uint64_t seq = 0;
  };

  /// True when `result` belongs to a chunk this worker no longer owns
  /// (it shipped before a CancelMessage landed): its payload goes back
  /// to the pool and its C window is never folded in. Its measured
  /// latencies still feed calibration -- the work really happened.
  bool stale_result(std::size_t w, const ResultMessage& result) const {
    const MasterView& view = views_[w];
    return !view.plan.has_value() || result.seq != view.seq;
  }

  /// Non-blocking sweep of every worker: results that actually arrived
  /// become visible to the scheduler (earliest_start above) before the
  /// next decision, their measured step latencies feed the calibration,
  /// and dead workers are detected EAGERLY -- a worker that dies
  /// between steps surfaces here, not whenever the master next happens
  /// to touch its endpoint (which could be never).
  void drain_completions() {
    if (fleet_ != nullptr) fleet_lease_sweep();
    for (std::size_t w = 0; w < worker_count_; ++w) {
      // NEVER touch an endpoint this job does not hold: another job's
      // master loop may be mid-protocol on it right now.
      if (fleet_ != nullptr && !leased_[w]) continue;
      Endpoint& endpoint = transport_->endpoint(static_cast<int>(w));
      if (failure_handled_[w]) {
        // A handled failure is the safe point to offer re-admission:
        // the mirror rolled back, the in-flight chunk returned to the
        // pending set, the endpoint drained. A TCP worker that
        // reconnected with its identity token rejoins HERE, idle -- the
        // scheduler simply sees it alive again and an FT-* policy hands
        // it orphans or fresh territory (hot-join, the dual of PR-4's
        // failure handling).
        if (options_.tolerate_faults && endpoint.try_readmit()) {
          failure_handled_[w] = 0;
          ++workers_rejoined_;
          mirror_.revive_worker(static_cast<int>(w));
        }
        continue;
      }
      if (endpoint.failed()) {
        if (!options_.tolerate_faults)
          throw std::runtime_error("worker failed");
        fail_worker(static_cast<int>(w));
        continue;
      }
      if (!pending_[w].has_value()) {
        while ((pending_[w] = endpoint.try_recv()).has_value()) {
          observe_result(w, *pending_[w]);
          if (!stale_result(w, *pending_[w])) break;
          pending_[w]->c.release_to(*pool_);
          pending_[w].reset();
          ++spec_stats_.stale_results;
        }
        // try_recv is also the failure pump (a dead process surfaces as
        // an EOF while reading): re-check so the death is handled THIS
        // sweep, not a decision later.
        if (endpoint.failed() && !failure_handled_[w]) {
          if (!options_.tolerate_faults)
            throw std::runtime_error("worker failed");
          fail_worker(static_cast<int>(w));
        }
      }
    }
    if (fleet_ != nullptr) fleet_starvation_guard();
  }

  // ----- fleet-mode lease plumbing -----

  /// A worker with no resident chunk, no undrained result and no plan:
  /// its endpoint is at a message boundary, so the lease can change
  /// hands without corrupting either job's protocol stream.
  bool worker_idle(std::size_t w) const {
    return !views_[w].plan.has_value() && !pending_[w].has_value() &&
           !mirror_.progress(static_cast<int>(w)).has_chunk;
  }

  void apply_grants(const std::vector<int>& grants) {
    for (const int g : grants) {
      const auto w = static_cast<std::size_t>(g);
      HMXP_REQUIRE(g >= 0 && w < worker_count_, "grant index out of range");
      if (leased_[w]) continue;
      leased_[w] = 1;
      ever_leased_[w] = 1;
      failure_handled_[w] = 0;
      // Hot-join: identical to a re-admitted TCP worker -- alive and
      // idle on the mirror, and the FT-* scheduler hands it orphans or
      // fresh territory on its next decision.
      mirror_.revive_worker(g);
    }
  }

  void release_lease(std::size_t w) {
    leased_[w] = 0;
    failure_handled_[w] = 1;  // back to "not ours": skip its endpoint
    views_[w].plan.reset();
    mirror_.fail_worker(static_cast<int>(w));
    if (hooks_->release) hooks_->release(static_cast<int>(w));
  }

  /// Chunk-boundary rebalancing, run before every scheduling decision:
  /// pick up any workers the lease manager granted us, then shed idle
  /// workers we no longer need -- either because all blocks are
  /// assigned (tail drain: a finished worker immediately starts the
  /// NEXT job's prologue, the pipelined epilogue/prologue overlap) or
  /// because we hold more than our fair share. If every leased worker
  /// is gone while work remains, block on the lease manager rather
  /// than let the FT scheduler conclude the run is unrecoverable.
  void fleet_lease_sweep() {
    if (hooks_->poll_grants) apply_grants(hooks_->poll_grants());
    const bool tail = mirror_.unassigned_blocks() == 0;
    int held = 0;
    for (const char lease : leased_) held += lease;
    const int target =
        hooks_->target ? std::max(1, hooks_->target()) : held;
    for (std::size_t w = 0; w < worker_count_ && held > 0; ++w) {
      if (!leased_[w] || !worker_idle(w)) continue;
      if (!tail && held <= target) break;  // keep our fair share busy
      release_lease(w);
      --held;
    }
  }

  /// Runs after the endpoint sweep (which is where deaths surface): if
  /// this job lost its last worker mid-run, block on the lease manager
  /// for a replacement instead of letting the FT scheduler conclude
  /// the run is unrecoverable.
  void fleet_starvation_guard() {
    while (!mirror_.all_work_done()) {
      int held = 0;
      for (const char lease : leased_) held += lease;
      if (held > 0) return;
      HMXP_CHECK(hooks_->wait_grant,
                 "fleet job has no workers and no grant source");
      const std::vector<int> grants = hooks_->wait_grant();
      if (grants.empty())
        throw std::runtime_error(
            "fleet job starved: no workers left to grant");
      apply_grants(grants);
    }
  }

  void release_remaining_leases() {
    // kDone with leases still held (e.g. target kept them busy to the
    // last chunk): they are idle now -- every chunk was received -- so
    // hand them back cleanly.
    for (std::size_t w = 0; w < worker_count_; ++w)
      if (leased_[w]) release_lease(w);
  }

  /// Publishes each used worker's drift snapshot for lock-free readers
  /// (the admission controller) -- the SpeedEstimate vector itself is
  /// only safe under the lease protocol.
  void publish_calibration() {
    for (std::size_t w = 0; w < worker_count_; ++w)
      if (ever_leased_[w])
        fleet_->publish_drift(static_cast<int>(w), (*wall_speed_)[w].drift());
  }

  /// Folds a returned chunk into the master's bookkeeping: its measured
  /// per-step latencies feed the worker's wall-clock speed estimate,
  /// its performed step updates the per-worker work counters. Called
  /// exactly once per received result (on both receive paths).
  void observe_result(std::size_t w, const ResultMessage& result) {
    const std::size_t steps =
        std::min(result.step_seconds.size(), result.plan.steps.size());
    for (std::size_t s = 0; s < steps; ++s) {
      const auto updates =
          static_cast<double>(result.plan.steps[s].updates);
      const double seconds = result.step_seconds[s];
      if (updates <= 0 || seconds <= 0) continue;  // below clock resolution
      (*wall_speed_)[w].observe(seconds / updates,
                                options_.calibration.alpha);
    }
    const std::size_t performed =
        std::min(result.updates_performed, result.plan.steps.size());
    for (std::size_t s = 0; s < performed; ++s)
      updates_per_worker_[w] +=
          static_cast<std::size_t>(result.plan.steps[s].updates);
  }

  /// Port emulation: occupy the master for `blocks` x the configured
  /// per-block time, scaled by the link's drifting bandwidth factor.
  void throttle(int worker, double blocks) {
    if (options_.throttle_block_seconds <= 0.0) return;
    const double elapsed =
        std::chrono::duration<double>(Clock::now() - run_begin_).count();
    const double factor =
        options_.perturbation.bandwidth_factor(worker, elapsed);
    std::this_thread::sleep_for(std::chrono::duration<double>(
        blocks * options_.throttle_block_seconds * factor));
  }

  void execute_real(const sim::Decision& decision) {
    const auto w = static_cast<std::size_t>(decision.worker);
    MasterView& view = views_[w];
    Endpoint& endpoint = transport_->endpoint(decision.worker);
    const matrix::Partition& part = mirror_.partition();
    const std::size_t q = part.q();

    switch (decision.comm) {
      case sim::CommKind::kSendC: {
        const Window window = c_window(part, decision.chunk.rect);
        ChunkMessage message;
        message.plan = decision.chunk;
        message.element_rows = window.rows();
        message.element_cols = window.cols();
        message.c = copy_window(endpoint, *pool_, c_, window.row0, window.row1,
                                window.col0, window.col1);
        message.seq = ++view.seq;
        throttle(decision.worker,
                 static_cast<double>(decision.chunk.rect.count()));
        endpoint.send(std::move(message));
        view.plan = decision.chunk;
        view.window = window;
        view.steps_sent = 0;
        break;
      }
      case sim::CommKind::kSendAB: {
        HMXP_CHECK(view.plan.has_value(), "SendAB without a chunk");
        const sim::StepPlan& step = view.plan->steps[view.steps_sent];
        const std::size_t ek0 = step.k_begin * q;
        const std::size_t ek1 =
            step.k_end == part.t() ? part.n_ab() : step.k_end * q;
        OperandMessage message;
        message.step = view.steps_sent;
        message.k_elem_begin = ek0;
        message.k_elems = ek1 - ek0;
        message.a = copy_window(endpoint, *pool_, a_, view.window.row0,
                                view.window.row1, ek0, ek1);
        message.b = copy_window(endpoint, *pool_, b_, ek0, ek1,
                                view.window.col0, view.window.col1);
        throttle(decision.worker, static_cast<double>(step.operand_blocks));
        endpoint.send(std::move(message));
        ++view.steps_sent;
        break;
      }
      case sim::CommKind::kRecvC: {
        HMXP_CHECK(view.plan.has_value(), "RecvC without a chunk");
        std::optional<ResultMessage> result = std::move(pending_[w]);
        pending_[w].reset();
        // Not drained yet (or the drained result raced a cancel): block
        // until the CURRENT chunk's result really arrives (the master
        // waiting on the port, as in the model).
        while (!result.has_value() || stale_result(w, *result)) {
          if (result.has_value()) {
            result->c.release_to(*pool_);
            ++spec_stats_.stale_results;
          }
          result = endpoint.recv();
          if (!result.has_value()) break;
          observe_result(w, *result);
        }
        HMXP_CHECK(result.has_value(), "worker closed before returning C");
        throttle(decision.worker,
                 static_cast<double>(view.plan->rect.count()));
        HMXP_CHECK(result->element_rows == view.window.rows() &&
                       result->element_cols == view.window.cols(),
                   "returned chunk shape mismatch");
        matrix::ConstView src(result->c.data(), result->element_rows,
                              result->element_cols, result->element_cols);
        matrix::View dst =
            c_.window(view.window.row0, view.window.col0, view.window.rows(),
                      view.window.cols());
        matrix::copy_into(src, dst);
        // The chunk is folded in; recycle its storage for the next send
        // (pool vector or arena slot, per the transport).
        result->c.release_to(*pool_);
        ++chunks_processed_;
        view.plan.reset();
        break;
      }
      case sim::CommKind::kCancel: {
        HMXP_CHECK(view.plan.has_value(), "cancel without a chunk");
        // Revoke by seq: the worker drops its resident chunk iff it
        // still holds this ticket and keeps serving. A result that
        // already shipped is discarded here (if it raced into pending_)
        // or by the stale-seq filters on the receive paths.
        endpoint.send(CancelMessage{view.seq});
        if (pending_[w].has_value()) {
          pending_[w]->c.release_to(*pool_);
          pending_[w].reset();
          ++spec_stats_.stale_results;
        }
        view.plan.reset();
        break;
      }
    }
  }

  /// Stops and reclaims every worker through the transport (join
  /// threads / reap child processes). Idempotent, safe on error paths.
  /// A fleet job owns no transport, so this is a no-op for it -- the
  /// fleet's workers live on to serve the next job.
  void shutdown() noexcept {
    if (owned_transport_ != nullptr) owned_transport_->shutdown();
  }

  /// After shutdown: if any worker failed, its error is the root cause
  /// -- rethrow it (the master's own failure, e.g. a refused send, is
  /// secondary). Errors of workers the master killed on purpose, or
  /// whose failure was tolerated and recovered from, are expected and
  /// stay buried.
  void rethrow_worker_error() {
    if (transport_ == nullptr) return;
    // Fleet mode always tolerates faults: every death this job saw was
    // handled (and reported through the lease hooks), and foreign
    // endpoints are not this job's to inspect.
    if (fleet_ != nullptr) return;
    for (std::size_t w = 0; w < worker_count_; ++w) {
      Endpoint& endpoint = transport_->endpoint(static_cast<int>(w));
      if (!endpoint.error() || endpoint.killed()) continue;
      if (options_.tolerate_faults && failure_handled_[w]) continue;
      std::rethrow_exception(endpoint.error());
    }
  }

  sim::Engine mirror_;
  const matrix::Matrix& a_;
  const matrix::Matrix& b_;
  matrix::Matrix& c_;
  // Owned-vs-borrowed pairs: a standalone run owns its pool, transport
  // and calibration; a fleet job borrows all three from the fleet (the
  // owned slots stay empty). Code paths always go through the pointers.
  BufferPool own_pool_;  // shared with workers; outlives them (first)
  ExecutorOptions options_;
  std::size_t worker_count_;
  std::unique_ptr<Transport> owned_transport_;
  Transport* transport_ = nullptr;
  BufferPool* pool_ = nullptr;
  std::vector<MasterView> views_;
  std::vector<std::optional<ResultMessage>> pending_;
  std::vector<std::size_t> updates_per_worker_;
  std::vector<platform::SpeedEstimate> own_speed_;
  std::vector<platform::SpeedEstimate>* wall_speed_ = nullptr;
  std::vector<char> failure_handled_;  // fail_worker() already ran
  sim::EngineState rollback_state_;    // reused pre-decision snapshot
  SpeculationStats spec_stats_;
  // Fleet mode only (nullptr / empty otherwise).
  Fleet* fleet_ = nullptr;
  const LeaseHooks* hooks_ = nullptr;
  std::vector<char> leased_;       // holds the lease right now
  std::vector<char> ever_leased_;  // held it at some point this job
  BufferPool::Stats pool_begin_{};
  int workers_failed_ = 0;
  int workers_rejoined_ = 0;
  Clock::time_point run_begin_{};
  std::size_t chunks_processed_ = 0;
};

void check_shapes(const matrix::Partition& partition, const matrix::Matrix& a,
                  const matrix::Matrix& b, const matrix::Matrix& c,
                  const platform::Platform& platform,
                  const ExecutorOptions& options) {
  HMXP_REQUIRE(a.rows() == partition.n_a() && a.cols() == partition.n_ab(),
               "A shape does not match the partition");
  HMXP_REQUIRE(b.rows() == partition.n_ab() && b.cols() == partition.n_b(),
               "B shape does not match the partition");
  HMXP_REQUIRE(c.rows() == partition.n_a() && c.cols() == partition.n_b(),
               "C shape does not match the partition");
  HMXP_REQUIRE(options.compute_slowdown.empty() ||
                   options.compute_slowdown.size() ==
                       static_cast<std::size_t>(platform.size()),
               "slowdown vector must cover every worker");
  for (const int slowdown : options.compute_slowdown)
    HMXP_REQUIRE(slowdown >= 1, "slowdown factors must be >= 1");
}

}  // namespace

ExecutorReport execute_online(sim::Scheduler& scheduler,
                              const platform::Platform& platform,
                              const matrix::Partition& partition,
                              const matrix::Matrix& a, const matrix::Matrix& b,
                              matrix::Matrix& c, const ExecutorOptions& options,
                              std::vector<sim::Decision>* decision_log) {
  check_shapes(partition, a, b, c, platform, options);
  OnlineExecutor executor(platform, partition, a, b, c, options);
  return executor.run(scheduler, decision_log);
}

ExecutorReport execute_on_fleet(sim::Scheduler& scheduler, Fleet& fleet,
                                const matrix::Partition& partition,
                                const matrix::Matrix& a,
                                const matrix::Matrix& b, matrix::Matrix& c,
                                const std::vector<int>& initial_lease,
                                const LeaseHooks& hooks,
                                const FleetJobOptions& job,
                                std::vector<sim::Decision>* decision_log) {
  check_shapes(partition, a, b, c, fleet.platform(), fleet.options());
  // The fleet's arena slots and frame ceilings were sized once at
  // spawn; a job that would ship a larger payload must be rejected at
  // admission, and is a hard error here.
  HMXP_REQUIRE(max_payload_doubles(partition) <= fleet.max_payload_doubles(),
               "job payload exceeds the fleet's sizing ceiling");
  OnlineExecutor executor(fleet, partition, a, b, c, job, initial_lease,
                          hooks);
  return executor.run(scheduler, decision_log);
}

ExecutorReport execute(const platform::Platform& platform,
                       const matrix::Partition& partition,
                       const std::vector<sim::Decision>& decisions,
                       const matrix::Matrix& a, const matrix::Matrix& b,
                       matrix::Matrix& c, const ExecutorOptions& options) {
  sim::ReplayScheduler replay("replay", decisions);
  return execute_online(replay, platform, partition, a, b, c, options);
}

ExecutorReport run_on_data(const std::string& algorithm_name,
                           const platform::Platform& platform,
                           const matrix::Partition& partition,
                           const matrix::Matrix& a, const matrix::Matrix& b,
                           matrix::Matrix& c, const ExecutorOptions& options) {
  const core::Algorithm algorithm = core::algorithm_from_name(algorithm_name);
  std::unique_ptr<sim::Scheduler> scheduler =
      core::make_scheduler(algorithm, platform, partition);
  return execute_online(*scheduler, platform, partition, a, b, c, options);
}

}  // namespace hmxp::runtime
