#include "runtime/executor.hpp"

#include <algorithm>
#include <chrono>
#include <stdexcept>
#include <thread>

#include "core/algorithms.hpp"
#include "matrix/gemm.hpp"
#include "runtime/channel.hpp"
#include "runtime/messages.hpp"
#include "util/check.hpp"

namespace hmxp::runtime {

namespace {

/// Element window of a block rectangle under a partition (edge blocks
/// may be short, so the window is clipped to the matrix extents).
struct Window {
  std::size_t row0 = 0, row1 = 0, col0 = 0, col1 = 0;
  std::size_t rows() const { return row1 - row0; }
  std::size_t cols() const { return col1 - col0; }
};

Window c_window(const matrix::Partition& part, const matrix::BlockRect& rect) {
  Window window;
  window.row0 = rect.i0 * part.q();
  window.row1 = rect.i1 == part.r() ? part.n_a() : rect.i1 * part.q();
  window.col0 = rect.j0 * part.q();
  window.col1 = rect.j1 == part.s() ? part.n_b() : rect.j1 * part.q();
  return window;
}

std::vector<double> copy_window(const matrix::Matrix& source, std::size_t row0,
                                std::size_t row1, std::size_t col0,
                                std::size_t col1) {
  std::vector<double> data((row1 - row0) * (col1 - col0));
  matrix::View dst(data.data(), row1 - row0, col1 - col0, col1 - col0);
  matrix::copy_into(source.window(row0, col0, row1 - row0, col1 - col0), dst);
  return data;
}

/// Per-worker thread: consumes chunk and operand messages, performs the
/// real block updates, returns finished chunks.
class WorkerThread {
 public:
  WorkerThread(int index, std::size_t operand_capacity, int slowdown,
               std::size_t* updates_slot)
      : index_(index),
        inbox_(operand_capacity),
        outbox_(1),
        slowdown_(slowdown),
        updates_slot_(updates_slot) {}

  Channel<WorkerMessage>& inbox() { return inbox_; }
  Channel<ResultMessage>& outbox() { return outbox_; }

  void start() {
    thread_ = std::thread([this] { run(); });
  }
  void join() {
    inbox_.close();
    if (thread_.joinable()) thread_.join();
  }

 private:
  void run() {
    // A worker never propagates: on an internal error it closes its
    // outbox so the master's next pop fails its own invariant check and
    // unwinds through the cleanup path. Validated decision logs cannot
    // reach this.
    try {
      while (auto message = inbox_.pop()) {
        if (std::holds_alternative<ChunkMessage>(*message)) {
          HMXP_CHECK(!chunk_.has_value(), "worker received chunk mid-chunk");
          chunk_ = std::get<ChunkMessage>(std::move(*message));
          steps_done_ = 0;
        } else {
          process(std::get<OperandMessage>(std::move(*message)));
        }
      }
    } catch (...) {
      outbox_.close();
    }
  }

  void process(OperandMessage&& operands) {
    HMXP_CHECK(chunk_.has_value(), "operands before chunk");
    ChunkMessage& chunk = *chunk_;
    HMXP_CHECK(operands.step == steps_done_, "operand step out of order");

    const std::size_t rows = chunk.element_rows;
    const std::size_t cols = chunk.element_cols;
    const std::size_t kk = operands.k_elems;
    matrix::ConstView a(operands.a.data(), rows, kk, kk);
    matrix::ConstView b(operands.b.data(), kk, cols, cols);
    matrix::View c(chunk.c.data(), rows, cols, cols);
    matrix::gemm_tiled(a, b, c);

    // Emulated slowdown: redo the same product into scratch, discarding
    // the result, exactly like the paper's artificial deceleration.
    if (slowdown_ > 1) {
      std::vector<double> scratch(rows * cols, 0.0);
      matrix::View sink(scratch.data(), rows, cols, cols);
      for (int rep = 1; rep < slowdown_; ++rep)
        matrix::gemm_tiled(a, b, sink);
    }

    *updates_slot_ += static_cast<std::size_t>(
        chunk.plan.steps[operands.step].updates);
    ++steps_done_;
    if (steps_done_ == chunk.plan.steps.size()) {
      ResultMessage result;
      result.plan = chunk.plan;
      result.element_rows = rows;
      result.element_cols = cols;
      result.c = std::move(chunk.c);
      result.updates_performed = steps_done_;
      chunk_.reset();
      outbox_.push(std::move(result));
    }
  }

  int index_;
  Channel<WorkerMessage> inbox_;
  Channel<ResultMessage> outbox_;
  int slowdown_;
  std::size_t* updates_slot_;
  std::optional<ChunkMessage> chunk_;
  std::size_t steps_done_ = 0;
  std::thread thread_;
};

}  // namespace

ExecutorReport execute(const platform::Platform& platform,
                       const matrix::Partition& partition,
                       const std::vector<sim::Decision>& decisions,
                       const matrix::Matrix& a, const matrix::Matrix& b,
                       matrix::Matrix& c, const ExecutorOptions& options) {
  HMXP_REQUIRE(a.rows() == partition.n_a() && a.cols() == partition.n_ab(),
               "A shape does not match the partition");
  HMXP_REQUIRE(b.rows() == partition.n_ab() && b.cols() == partition.n_b(),
               "B shape does not match the partition");
  HMXP_REQUIRE(c.rows() == partition.n_a() && c.cols() == partition.n_b(),
               "C shape does not match the partition");
  HMXP_REQUIRE(options.compute_slowdown.empty() ||
                   options.compute_slowdown.size() ==
                       static_cast<std::size_t>(platform.size()),
               "slowdown vector must cover every worker");

  const auto wall_begin = std::chrono::steady_clock::now();
  matrix::Matrix reference;
  if (options.verify) {
    reference = c;  // C_initial; reference product computed at the end
  }

  // Channel capacity per worker: chunk message + (prefetch + 1) operand
  // batches, from the largest prefetch any of its chunks uses.
  const auto worker_count = static_cast<std::size_t>(platform.size());
  std::vector<int> prefetch(worker_count, 0);
  for (const sim::Decision& decision : decisions) {
    if (decision.kind == sim::Decision::Kind::kComm &&
        decision.comm == sim::CommKind::kSendC) {
      auto& slot = prefetch[static_cast<std::size_t>(decision.worker)];
      slot = std::max(slot, decision.chunk.prefetch_depth);
    }
  }

  ExecutorReport report;
  report.updates_per_worker.assign(worker_count, 0);

  std::vector<std::unique_ptr<WorkerThread>> workers;
  workers.reserve(worker_count);
  for (std::size_t i = 0; i < worker_count; ++i) {
    const int slowdown = options.compute_slowdown.empty()
                             ? 1
                             : options.compute_slowdown[i];
    HMXP_REQUIRE(slowdown >= 1, "slowdown factors must be >= 1");
    const std::size_t capacity =
        1 + static_cast<std::size_t>(prefetch[i]) + 1;
    workers.push_back(std::make_unique<WorkerThread>(
        static_cast<int>(i), capacity, slowdown,
        &report.updates_per_worker[i]));
    workers.back()->start();
  }

  // Master replica of each worker's plan progression, to know which step
  // an operand decision refers to.
  struct MasterView {
    std::optional<sim::ChunkPlan> plan;
    Window window;
    std::size_t steps_sent = 0;
  };
  std::vector<MasterView> views(worker_count);

  // Any protocol violation below must still join the worker threads
  // before propagating, or thread destructors terminate the process.
  const auto join_all = [&workers] {
    for (auto& worker : workers) worker->join();
  };

  const std::size_t q = partition.q();
  try {
  for (const sim::Decision& decision : decisions) {
    HMXP_CHECK(decision.kind == sim::Decision::Kind::kComm,
               "decision log may only contain communications");
    const auto w = static_cast<std::size_t>(decision.worker);
    HMXP_CHECK(w < worker_count, "decision for unknown worker");
    MasterView& view = views[w];

    switch (decision.comm) {
      case sim::CommKind::kSendC: {
        HMXP_CHECK(!view.plan.has_value(), "SendC while chunk outstanding");
        const Window window = c_window(partition, decision.chunk.rect);
        ChunkMessage message;
        message.plan = decision.chunk;
        message.element_rows = window.rows();
        message.element_cols = window.cols();
        message.c = copy_window(c, window.row0, window.row1, window.col0,
                                window.col1);
        workers[w]->inbox().push(std::move(message));
        view.plan = decision.chunk;
        view.window = window;
        view.steps_sent = 0;
        break;
      }
      case sim::CommKind::kSendAB: {
        HMXP_CHECK(view.plan.has_value(), "SendAB without a chunk");
        HMXP_CHECK(view.steps_sent < view.plan->steps.size(),
                   "SendAB past the last step");
        const sim::StepPlan& step = view.plan->steps[view.steps_sent];
        const std::size_t ek0 = step.k_begin * q;
        const std::size_t ek1 =
            step.k_end == partition.t() ? partition.n_ab() : step.k_end * q;
        OperandMessage message;
        message.step = view.steps_sent;
        message.k_elem_begin = ek0;
        message.k_elems = ek1 - ek0;
        message.a =
            copy_window(a, view.window.row0, view.window.row1, ek0, ek1);
        message.b =
            copy_window(b, ek0, ek1, view.window.col0, view.window.col1);
        workers[w]->inbox().push(std::move(message));
        ++view.steps_sent;
        break;
      }
      case sim::CommKind::kRecvC: {
        HMXP_CHECK(view.plan.has_value(), "RecvC without a chunk");
        HMXP_CHECK(view.steps_sent == view.plan->steps.size(),
                   "RecvC before all steps were sent");
        auto result = workers[w]->outbox().pop();
        HMXP_CHECK(result.has_value(), "worker closed before returning C");
        HMXP_CHECK(result->element_rows == view.window.rows() &&
                       result->element_cols == view.window.cols(),
                   "returned chunk shape mismatch");
        matrix::ConstView src(result->c.data(), result->element_rows,
                              result->element_cols, result->element_cols);
        matrix::View dst =
            c.window(view.window.row0, view.window.col0, view.window.rows(),
                     view.window.cols());
        matrix::copy_into(src, dst);
        ++report.chunks_processed;
        view.plan.reset();
        break;
      }
    }
  }

  } catch (...) {
    join_all();
    throw;
  }

  join_all();
  for (const std::size_t updates : report.updates_per_worker)
    report.updates_performed += updates;

  const auto wall_end = std::chrono::steady_clock::now();
  report.wall_seconds =
      std::chrono::duration<double>(wall_end - wall_begin).count();

  if (options.verify) {
    matrix::gemm_parallel(a.view(), b.view(), reference.view());
    report.max_abs_error = matrix::Matrix::max_abs_diff(c, reference);
    if (report.max_abs_error > options.tolerance)
      throw std::runtime_error(
          "runtime verification failed: max |error| = " +
          std::to_string(report.max_abs_error));
    report.verified = true;
  }
  return report;
}

ExecutorReport run_on_data(const std::string& algorithm_name,
                           const platform::Platform& platform,
                           const matrix::Partition& partition,
                           const matrix::Matrix& a, const matrix::Matrix& b,
                           matrix::Matrix& c, const ExecutorOptions& options) {
  const core::Algorithm algorithm = core::algorithm_from_name(algorithm_name);
  std::unique_ptr<sim::Scheduler> scheduler =
      core::make_scheduler(algorithm, platform, partition);
  std::vector<sim::Decision> decisions;
  sim::simulate(*scheduler, platform, partition, /*record_trace=*/false,
                &decisions);
  return execute(platform, partition, decisions, a, b, c, options);
}

}  // namespace hmxp::runtime
