#include "runtime/executor.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <exception>
#include <optional>
#include <stdexcept>
#include <thread>

#include "core/algorithms.hpp"
#include "matrix/gemm.hpp"
#include "runtime/buffer_pool.hpp"
#include "runtime/channel.hpp"
#include "runtime/messages.hpp"
#include "util/check.hpp"

namespace hmxp::runtime {

namespace {

using Clock = std::chrono::steady_clock;

/// Element window of a block rectangle under a partition (edge blocks
/// may be short, so the window is clipped to the matrix extents).
struct Window {
  std::size_t row0 = 0, row1 = 0, col0 = 0, col1 = 0;
  std::size_t rows() const { return row1 - row0; }
  std::size_t cols() const { return col1 - col0; }
};

Window c_window(const matrix::Partition& part, const matrix::BlockRect& rect) {
  Window window;
  window.row0 = rect.i0 * part.q();
  window.row1 = rect.i1 == part.r() ? part.n_a() : rect.i1 * part.q();
  window.col0 = rect.j0 * part.q();
  window.col1 = rect.j1 == part.s() ? part.n_b() : rect.j1 * part.q();
  return window;
}

/// Copies an element window into a pool-recycled dense buffer: in
/// steady state this is a pure copy, no heap allocation.
std::vector<double> copy_window(BufferPool& pool, const matrix::Matrix& source,
                                std::size_t row0, std::size_t row1,
                                std::size_t col0, std::size_t col1) {
  std::vector<double> data = pool.acquire((row1 - row0) * (col1 - col0));
  matrix::View dst(data.data(), row1 - row0, col1 - col0, col1 - col0);
  matrix::copy_into(source.window(row0, col0, row1 - row0, col1 - col0), dst);
  return data;
}

/// Per-worker thread: consumes chunk and operand messages, performs the
/// real block updates, returns finished chunks. On any internal error it
/// records the exception and closes BOTH its channels, so a master
/// blocked pushing or popping wakes up, unwinds through its cleanup
/// path, and rethrows the worker's exception after joining.
class WorkerThread {
 public:
  WorkerThread(int index, std::size_t operand_capacity,
               const ExecutorOptions& options, Clock::time_point run_begin,
               std::size_t* updates_slot, BufferPool* pool)
      : index_(index),
        pool_(pool),
        inbox_(operand_capacity),
        outbox_(1),
        base_slowdown_(options.compute_slowdown.empty()
                           ? 1
                           : options.compute_slowdown[static_cast<std::size_t>(
                                 index)]),
        perturbation_(&options.perturbation),
        fault_hook_(options.fault_hook),
        run_begin_(run_begin),
        updates_slot_(updates_slot) {}

  Channel<WorkerMessage>& inbox() { return inbox_; }
  Channel<ResultMessage>& outbox() { return outbox_; }

  void start() {
    thread_ = std::thread([this] { run(); });
  }
  /// Signals the worker to exit once its inbox drains.
  void request_stop() { inbox_.close(); }
  void join() {
    if (thread_.joinable()) thread_.join();
  }
  /// Valid only after join().
  const std::exception_ptr& error() const { return error_; }

 private:
  void run() {
    try {
      while (auto message = inbox_.pop()) {
        if (auto* chunk = std::get_if<ChunkMessage>(&*message)) {
          HMXP_CHECK(!chunk_.has_value(), "worker received chunk mid-chunk");
          chunk_ = std::move(*chunk);
          steps_done_ = 0;
        } else {
          process(std::move(std::get<OperandMessage>(*message)));
        }
      }
    } catch (...) {
      error_ = std::current_exception();
      inbox_.close();
      outbox_.close();
    }
  }

  /// Compute repetitions in force right now: the static per-worker
  /// factor times the dynamic perturbation factor at the current wall
  /// offset -- the platform really changes under the master mid-run.
  int current_reps() const {
    if (perturbation_->empty()) return base_slowdown_;
    const double elapsed =
        std::chrono::duration<double>(Clock::now() - run_begin_).count();
    const double factor = perturbation_->factor(index_, elapsed);
    return std::max(1, static_cast<int>(std::lround(
                           static_cast<double>(base_slowdown_) * factor)));
  }

  void process(OperandMessage&& operands) {
    HMXP_CHECK(chunk_.has_value(), "operands before chunk");
    ChunkMessage& chunk = *chunk_;
    HMXP_CHECK(operands.step == steps_done_, "operand step out of order");
    if (fault_hook_) fault_hook_(index_, operands.step);

    const std::size_t rows = chunk.element_rows;
    const std::size_t cols = chunk.element_cols;
    const std::size_t kk = operands.k_elems;
    matrix::ConstView a(operands.a.data(), rows, kk, kk);
    matrix::ConstView b(operands.b.data(), kk, cols, cols);
    matrix::View c(chunk.c.data(), rows, cols, cols);
    matrix::gemm_auto(a, b, c);

    // Emulated slowdown: redo the same product into scratch, discarding
    // the result, exactly like the paper's artificial deceleration.
    const int reps = current_reps();
    if (reps > 1) {
      std::vector<double> scratch = pool_->acquire(rows * cols);
      matrix::View sink(scratch.data(), rows, cols, cols);
      for (int rep = 1; rep < reps; ++rep) matrix::gemm_auto(a, b, sink);
      pool_->release(std::move(scratch));
    }

    // Operand buffers are consumed: hand their storage back for the
    // master's next copy-out.
    pool_->release(std::move(operands.a));
    pool_->release(std::move(operands.b));

    *updates_slot_ += static_cast<std::size_t>(
        chunk.plan.steps[operands.step].updates);
    ++steps_done_;
    if (steps_done_ == chunk.plan.steps.size()) {
      ResultMessage result;
      result.plan = chunk.plan;
      result.element_rows = rows;
      result.element_cols = cols;
      result.c = std::move(chunk.c);
      result.updates_performed = steps_done_;
      chunk_.reset();
      outbox_.push(std::move(result));
    }
  }

  int index_;
  BufferPool* pool_;
  Channel<WorkerMessage> inbox_;
  Channel<ResultMessage> outbox_;
  int base_slowdown_;
  const platform::SlowdownSchedule* perturbation_;
  std::function<void(int, std::size_t)> fault_hook_;
  Clock::time_point run_begin_;
  std::size_t* updates_slot_;
  std::optional<ChunkMessage> chunk_;
  std::size_t steps_done_ = 0;
  std::exception_ptr error_;
  std::thread thread_;
};

/// The event-driven master: implements ExecutionView over real worker
/// threads. Scheduler-visible bookkeeping (port clock, WorkerProgress,
/// coverage) lives in a model mirror -- a sim::Engine over the same
/// instance that executes every decision the master really performs --
/// while readiness is overridden with ACTUAL completions: a worker whose
/// result message has arrived is collectable *now*, whatever the cost
/// model predicted. Blocking semantics come from the real channels: a
/// decision whose real precondition is unmet blocks the master, exactly
/// like a decision blocks the simulated port.
class OnlineExecutor final : public sim::ExecutionView {
 public:
  OnlineExecutor(const platform::Platform& platform,
                 const matrix::Partition& partition, const matrix::Matrix& a,
                 const matrix::Matrix& b, matrix::Matrix& c,
                 const ExecutorOptions& options)
      : mirror_(sim::InstanceContext::make(platform, partition),
                options.record_trace),
        a_(a),
        b_(b),
        c_(c),
        options_(options),
        worker_count_(static_cast<std::size_t>(platform.size())),
        views_(worker_count_),
        pending_(worker_count_),
        updates_per_worker_(worker_count_, 0) {}

  ~OnlineExecutor() override { shutdown(); }

  // ----- ExecutionView: the state the live scheduler decides from -----
  model::Time now() const override { return mirror_.now(); }
  int worker_count() const override { return mirror_.worker_count(); }
  const platform::Platform& platform() const override {
    return mirror_.platform();
  }
  const matrix::Partition& partition() const override {
    return mirror_.partition();
  }
  const sim::WorkerProgress& progress(int worker) const override {
    return mirror_.progress(worker);
  }
  model::Time earliest_start(int worker, sim::CommKind kind) const override {
    // The online edge over the pure model: a result that has ACTUALLY
    // arrived is collectable immediately, so policies ranking actions by
    // start time react to real worker speeds (including mid-run
    // perturbations the model knows nothing about).
    if (kind == sim::CommKind::kRecvC &&
        pending_[static_cast<std::size_t>(worker)].has_value() &&
        mirror_.progress(worker).all_steps_received())
      return mirror_.now();
    return mirror_.earliest_start(worker, kind);
  }
  model::Time comm_duration(int worker, sim::CommKind kind) const override {
    return mirror_.comm_duration(worker, kind);
  }
  model::BlockCount unassigned_blocks() const override {
    return mirror_.unassigned_blocks();
  }
  model::BlockCount updates_total() const override {
    return mirror_.updates_total();
  }
  bool all_work_done() const override { return mirror_.all_work_done(); }
  const std::shared_ptr<const sim::InstanceContext>& context() const override {
    return mirror_.context();
  }
  sim::EngineState model_state() const override { return mirror_.snapshot(); }

  // ----- the master loop -----
  ExecutorReport run(sim::Scheduler& scheduler,
                     std::vector<sim::Decision>* decision_log) {
    const auto wall_begin = Clock::now();
    matrix::Matrix reference;
    if (options_.verify) reference = c_;  // C_initial; product added at end

    start_workers(wall_begin);
    const std::size_t max_decisions =
        sim::decision_budget(mirror_.partition());
    std::size_t executed = 0;
    try {
      while (true) {
        drain_completions();
        sim::Decision decision = scheduler.next(*this);
        if (decision.kind == sim::Decision::Kind::kDone) break;
        // The mirror validates the protocol (throws std::logic_error on
        // violations) and advances the model clock; only then does the
        // decision touch real data.
        mirror_.execute(decision);
        execute_real(decision);
        if (decision_log != nullptr) decision_log->push_back(decision);
        ++executed;
        HMXP_CHECK(executed <= max_decisions,
                   "scheduler exceeded decision budget (livelock?)");
      }
    } catch (...) {
      shutdown();
      rethrow_worker_error();  // a dead worker is the root cause
      throw;
    }
    shutdown();
    rethrow_worker_error();

    ExecutorReport report;
    report.chunks_processed = chunks_processed_;
    report.updates_per_worker = updates_per_worker_;
    for (const std::size_t updates : updates_per_worker_)
      report.updates_performed += updates;
    report.result =
        sim::collect_result(scheduler.name(), mirror_, executed);
    report.buffer_pool = pool_.stats();
    report.wall_seconds =
        std::chrono::duration<double>(Clock::now() - wall_begin).count();

    if (options_.verify) {
      matrix::gemm_parallel(a_.view(), b_.view(), reference.view());
      report.max_abs_error = matrix::Matrix::max_abs_diff(c_, reference);
      if (report.max_abs_error > options_.tolerance)
        throw std::runtime_error("runtime verification failed: max |error| = " +
                                 std::to_string(report.max_abs_error));
      report.verified = true;
    }
    return report;
  }

 private:
  /// Master replica of each worker's data-plane state: which plan it
  /// holds, its element window in C, and how many steps went out.
  struct MasterView {
    std::optional<sim::ChunkPlan> plan;
    Window window;
    std::size_t steps_sent = 0;
  };

  void start_workers(Clock::time_point run_begin) {
    // Inbox capacity: the chunk message plus (prefetch + 1) operand
    // slots for the deepest layout (double buffering, depth 1). The
    // bound makes a master that overruns a worker's buffers block for
    // real; per-chunk depths below the bound are enforced in model time
    // by the mirror's SendAB timing.
    const std::size_t capacity = 3;
    workers_.reserve(worker_count_);
    for (std::size_t i = 0; i < worker_count_; ++i) {
      workers_.push_back(std::make_unique<WorkerThread>(
          static_cast<int>(i), capacity, options_, run_begin,
          &updates_per_worker_[i], &pool_));
      workers_.back()->start();
    }
  }

  /// Non-blocking sweep of every worker's outbox: results that actually
  /// arrived become visible to the scheduler (earliest_start above)
  /// before the next decision.
  void drain_completions() {
    for (std::size_t w = 0; w < worker_count_; ++w)
      if (!pending_[w].has_value())
        pending_[w] = workers_[w]->outbox().try_pop();
  }

  void execute_real(const sim::Decision& decision) {
    const auto w = static_cast<std::size_t>(decision.worker);
    MasterView& view = views_[w];
    const matrix::Partition& part = mirror_.partition();
    const std::size_t q = part.q();

    switch (decision.comm) {
      case sim::CommKind::kSendC: {
        const Window window = c_window(part, decision.chunk.rect);
        ChunkMessage message;
        message.plan = decision.chunk;
        message.element_rows = window.rows();
        message.element_cols = window.cols();
        message.c = copy_window(pool_, c_, window.row0, window.row1,
                                window.col0, window.col1);
        workers_[w]->inbox().push(std::move(message));
        view.plan = decision.chunk;
        view.window = window;
        view.steps_sent = 0;
        break;
      }
      case sim::CommKind::kSendAB: {
        HMXP_CHECK(view.plan.has_value(), "SendAB without a chunk");
        const sim::StepPlan& step = view.plan->steps[view.steps_sent];
        const std::size_t ek0 = step.k_begin * q;
        const std::size_t ek1 =
            step.k_end == part.t() ? part.n_ab() : step.k_end * q;
        OperandMessage message;
        message.step = view.steps_sent;
        message.k_elem_begin = ek0;
        message.k_elems = ek1 - ek0;
        message.a = copy_window(pool_, a_, view.window.row0, view.window.row1,
                                ek0, ek1);
        message.b = copy_window(pool_, b_, ek0, ek1, view.window.col0,
                                view.window.col1);
        workers_[w]->inbox().push(std::move(message));
        ++view.steps_sent;
        break;
      }
      case sim::CommKind::kRecvC: {
        HMXP_CHECK(view.plan.has_value(), "RecvC without a chunk");
        std::optional<ResultMessage> result = std::move(pending_[w]);
        pending_[w].reset();
        // Not drained yet: block until the worker really finishes (the
        // master waiting on the port, as in the model).
        if (!result.has_value()) result = workers_[w]->outbox().pop();
        HMXP_CHECK(result.has_value(), "worker closed before returning C");
        HMXP_CHECK(result->element_rows == view.window.rows() &&
                       result->element_cols == view.window.cols(),
                   "returned chunk shape mismatch");
        matrix::ConstView src(result->c.data(), result->element_rows,
                              result->element_cols, result->element_cols);
        matrix::View dst =
            c_.window(view.window.row0, view.window.col0, view.window.rows(),
                      view.window.cols());
        matrix::copy_into(src, dst);
        // The chunk is folded in; recycle its buffer for the next send.
        pool_.release(std::move(result->c));
        ++chunks_processed_;
        view.plan.reset();
        break;
      }
    }
  }

  /// Stops and joins every worker. Closing the inboxes lets workers
  /// drain out; popping one pending result per outbox unblocks a worker
  /// stuck handing a result back. Idempotent, safe on error paths.
  void shutdown() noexcept {
    for (auto& worker : workers_) worker->request_stop();
    for (auto& worker : workers_) {
      (void)worker->outbox().try_pop();
      worker->join();
    }
  }

  /// After shutdown: if any worker thread failed, its exception is the
  /// root cause -- rethrow it (the master's own failure, e.g. a closed
  /// channel, is secondary).
  void rethrow_worker_error() {
    for (auto& worker : workers_)
      if (worker->error()) std::rethrow_exception(worker->error());
  }

  sim::Engine mirror_;
  const matrix::Matrix& a_;
  const matrix::Matrix& b_;
  matrix::Matrix& c_;
  BufferPool pool_;  // shared with workers; outlives them (declared first)
  ExecutorOptions options_;
  std::size_t worker_count_;
  std::vector<std::unique_ptr<WorkerThread>> workers_;
  std::vector<MasterView> views_;
  std::vector<std::optional<ResultMessage>> pending_;
  std::vector<std::size_t> updates_per_worker_;
  std::size_t chunks_processed_ = 0;
};

void check_shapes(const matrix::Partition& partition, const matrix::Matrix& a,
                  const matrix::Matrix& b, const matrix::Matrix& c,
                  const platform::Platform& platform,
                  const ExecutorOptions& options) {
  HMXP_REQUIRE(a.rows() == partition.n_a() && a.cols() == partition.n_ab(),
               "A shape does not match the partition");
  HMXP_REQUIRE(b.rows() == partition.n_ab() && b.cols() == partition.n_b(),
               "B shape does not match the partition");
  HMXP_REQUIRE(c.rows() == partition.n_a() && c.cols() == partition.n_b(),
               "C shape does not match the partition");
  HMXP_REQUIRE(options.compute_slowdown.empty() ||
                   options.compute_slowdown.size() ==
                       static_cast<std::size_t>(platform.size()),
               "slowdown vector must cover every worker");
  for (const int slowdown : options.compute_slowdown)
    HMXP_REQUIRE(slowdown >= 1, "slowdown factors must be >= 1");
}

}  // namespace

ExecutorReport execute_online(sim::Scheduler& scheduler,
                              const platform::Platform& platform,
                              const matrix::Partition& partition,
                              const matrix::Matrix& a, const matrix::Matrix& b,
                              matrix::Matrix& c, const ExecutorOptions& options,
                              std::vector<sim::Decision>* decision_log) {
  check_shapes(partition, a, b, c, platform, options);
  OnlineExecutor executor(platform, partition, a, b, c, options);
  return executor.run(scheduler, decision_log);
}

ExecutorReport execute(const platform::Platform& platform,
                       const matrix::Partition& partition,
                       const std::vector<sim::Decision>& decisions,
                       const matrix::Matrix& a, const matrix::Matrix& b,
                       matrix::Matrix& c, const ExecutorOptions& options) {
  sim::ReplayScheduler replay("replay", decisions);
  return execute_online(replay, platform, partition, a, b, c, options);
}

ExecutorReport run_on_data(const std::string& algorithm_name,
                           const platform::Platform& platform,
                           const matrix::Partition& partition,
                           const matrix::Matrix& a, const matrix::Matrix& b,
                           matrix::Matrix& c, const ExecutorOptions& options) {
  const core::Algorithm algorithm = core::algorithm_from_name(algorithm_name);
  std::unique_ptr<sim::Scheduler> scheduler =
      core::make_scheduler(algorithm, platform, partition);
  return execute_online(*scheduler, platform, partition, a, b, c, options);
}

}  // namespace hmxp::runtime
