#include "runtime/executor.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <exception>
#include <optional>
#include <stdexcept>
#include <thread>

#include "core/algorithms.hpp"
#include "matrix/gemm.hpp"
#include "runtime/buffer_pool.hpp"
#include "runtime/channel.hpp"
#include "runtime/messages.hpp"
#include "util/check.hpp"

namespace hmxp::runtime {

namespace {

using Clock = std::chrono::steady_clock;

/// Element window of a block rectangle under a partition (edge blocks
/// may be short, so the window is clipped to the matrix extents).
struct Window {
  std::size_t row0 = 0, row1 = 0, col0 = 0, col1 = 0;
  std::size_t rows() const { return row1 - row0; }
  std::size_t cols() const { return col1 - col0; }
};

Window c_window(const matrix::Partition& part, const matrix::BlockRect& rect) {
  Window window;
  window.row0 = rect.i0 * part.q();
  window.row1 = rect.i1 == part.r() ? part.n_a() : rect.i1 * part.q();
  window.col0 = rect.j0 * part.q();
  window.col1 = rect.j1 == part.s() ? part.n_b() : rect.j1 * part.q();
  return window;
}

/// Copies an element window into a pool-recycled dense buffer: in
/// steady state this is a pure copy, no heap allocation.
std::vector<double> copy_window(BufferPool& pool, const matrix::Matrix& source,
                                std::size_t row0, std::size_t row1,
                                std::size_t col0, std::size_t col1) {
  std::vector<double> data = pool.acquire((row1 - row0) * (col1 - col0));
  matrix::View dst(data.data(), row1 - row0, col1 - col0, col1 - col0);
  matrix::copy_into(source.window(row0, col0, row1 - row0, col1 - col0), dst);
  return data;
}

/// Per-worker thread: consumes chunk and operand messages, performs the
/// real block updates, returns finished chunks. On any internal error it
/// records the exception, raises its `failed` flag, and closes BOTH its
/// channels, so a master blocked pushing or popping wakes up; the master
/// notices the flag at its next completion sweep -- and either recovers
/// (tolerate_faults) or unwinds and rethrows the worker's exception.
class WorkerThread {
 public:
  WorkerThread(int index, std::size_t operand_capacity,
               const ExecutorOptions& options, Clock::time_point run_begin,
               std::size_t* updates_slot, BufferPool* pool)
      : index_(index),
        pool_(pool),
        inbox_(operand_capacity),
        outbox_(1),
        base_slowdown_(options.compute_slowdown.empty()
                           ? 1
                           : options.compute_slowdown[static_cast<std::size_t>(
                                 index)]),
        perturbation_(&options.perturbation),
        faults_(&options.faults),
        fault_hook_(options.fault_hook),
        run_begin_(run_begin),
        updates_slot_(updates_slot) {}

  Channel<WorkerMessage>& inbox() { return inbox_; }
  Channel<ResultMessage>& outbox() { return outbox_; }

  void start() {
    thread_ = std::thread([this] { run(); });
  }
  /// Signals the worker to exit once its inbox drains.
  void request_stop() { inbox_.close(); }
  /// Master-initiated decommission: closes both channels so the worker
  /// unblocks and exits; any error it raises on the way out (e.g. a
  /// push on its now-closed outbox) is expected, not a failure.
  void kill() {
    killed_.store(true, std::memory_order_release);
    inbox_.close();
    outbox_.close();
  }
  void join() {
    if (thread_.joinable()) thread_.join();
  }
  /// True once the worker thread died on an exception. The release
  /// store happens after error_ is recorded, so a master that observes
  /// failed() may read error() without a race (even before join).
  bool failed() const { return failed_.load(std::memory_order_acquire); }
  bool killed() const { return killed_.load(std::memory_order_acquire); }
  /// Valid once failed() is observed (or after join()).
  const std::exception_ptr& error() const { return error_; }

 private:
  void run() {
    try {
      while (auto message = inbox_.pop()) {
        check_scheduled_fault();
        if (auto* chunk = std::get_if<ChunkMessage>(&*message)) {
          HMXP_CHECK(!chunk_.has_value(), "worker received chunk mid-chunk");
          chunk_ = std::move(*chunk);
          steps_done_ = 0;
          step_seconds_.clear();
        } else {
          process(std::move(std::get<OperandMessage>(*message)));
        }
      }
    } catch (...) {
      error_ = std::current_exception();
      // A dying worker hands the pool back what it can (its resident C
      // copy); in-flight locals are freed by unwinding instead.
      if (chunk_.has_value()) {
        pool_->release(std::move(chunk_->c));
        chunk_.reset();
      }
      failed_.store(true, std::memory_order_release);
      inbox_.close();
      outbox_.close();
    }
  }

  /// Wall-clock fault schedule: the worker dies for good once its event
  /// time passes, whatever it was about to do.
  void check_scheduled_fault() const {
    if (faults_->empty()) return;
    const double elapsed =
        std::chrono::duration<double>(Clock::now() - run_begin_).count();
    if (faults_->dead(index_, elapsed))
      throw std::runtime_error("scheduled fault: worker " +
                               std::to_string(index_) + " died at t=" +
                               std::to_string(elapsed));
  }

  /// Compute repetitions in force right now: the static per-worker
  /// factor times the dynamic perturbation factor at the current wall
  /// offset -- the platform really changes under the master mid-run.
  int current_reps() const {
    if (perturbation_->empty()) return base_slowdown_;
    const double elapsed =
        std::chrono::duration<double>(Clock::now() - run_begin_).count();
    const double factor = perturbation_->factor(index_, elapsed);
    return std::max(1, static_cast<int>(std::lround(
                           static_cast<double>(base_slowdown_) * factor)));
  }

  void process(OperandMessage&& operands) {
    HMXP_CHECK(chunk_.has_value(), "operands before chunk");
    ChunkMessage& chunk = *chunk_;
    HMXP_CHECK(operands.step == steps_done_, "operand step out of order");
    if (fault_hook_) fault_hook_(index_, operands.step);

    const auto step_begin = Clock::now();
    const std::size_t rows = chunk.element_rows;
    const std::size_t cols = chunk.element_cols;
    const std::size_t kk = operands.k_elems;
    matrix::ConstView a(operands.a.data(), rows, kk, kk);
    matrix::ConstView b(operands.b.data(), kk, cols, cols);
    matrix::View c(chunk.c.data(), rows, cols, cols);
    matrix::gemm_auto(a, b, c);

    // Emulated slowdown: redo the same product into scratch, discarding
    // the result, exactly like the paper's artificial deceleration.
    const int reps = current_reps();
    if (reps > 1) {
      std::vector<double> scratch = pool_->acquire(rows * cols);
      matrix::View sink(scratch.data(), rows, cols, cols);
      for (int rep = 1; rep < reps; ++rep) matrix::gemm_auto(a, b, sink);
      pool_->release(std::move(scratch));
    }
    // The step's measured latency (repetitions included): what the
    // master's calibration loop gets to see.
    step_seconds_.push_back(
        std::chrono::duration<double>(Clock::now() - step_begin).count());

    // Operand buffers are consumed: hand their storage back for the
    // master's next copy-out.
    pool_->release(std::move(operands.a));
    pool_->release(std::move(operands.b));

    *updates_slot_ += static_cast<std::size_t>(
        chunk.plan.steps[operands.step].updates);
    ++steps_done_;
    if (steps_done_ == chunk.plan.steps.size()) {
      ResultMessage result;
      result.plan = chunk.plan;
      result.element_rows = rows;
      result.element_cols = cols;
      result.c = std::move(chunk.c);
      result.updates_performed = steps_done_;
      result.step_seconds = std::move(step_seconds_);
      step_seconds_.clear();
      chunk_.reset();
      outbox_.push(std::move(result));
    }
  }

  int index_;
  BufferPool* pool_;
  Channel<WorkerMessage> inbox_;
  Channel<ResultMessage> outbox_;
  int base_slowdown_;
  const platform::SlowdownSchedule* perturbation_;
  const platform::FaultSchedule* faults_;
  std::function<void(int, std::size_t)> fault_hook_;
  Clock::time_point run_begin_;
  std::size_t* updates_slot_;
  std::optional<ChunkMessage> chunk_;
  std::size_t steps_done_ = 0;
  std::vector<double> step_seconds_;
  std::exception_ptr error_;
  std::atomic<bool> failed_{false};
  std::atomic<bool> killed_{false};
  std::thread thread_;
};

/// The event-driven master: implements ExecutionView over real worker
/// threads. Scheduler-visible bookkeeping (port clock, WorkerProgress,
/// coverage) lives in a model mirror -- a sim::Engine over the same
/// instance that executes every decision the master really performs --
/// while readiness is overridden with ACTUAL completions: a worker whose
/// result message has arrived is collectable *now*, whatever the cost
/// model predicted. Blocking semantics come from the real channels: a
/// decision whose real precondition is unmet blocks the master, exactly
/// like a decision blocks the simulated port.
class OnlineExecutor final : public sim::ExecutionView {
 public:
  OnlineExecutor(const platform::Platform& platform,
                 const matrix::Partition& partition, const matrix::Matrix& a,
                 const matrix::Matrix& b, matrix::Matrix& c,
                 const ExecutorOptions& options)
      : mirror_(sim::InstanceContext::make(platform, partition),
                options.record_trace),
        a_(a),
        b_(b),
        c_(c),
        options_(options),
        worker_count_(static_cast<std::size_t>(platform.size())),
        views_(worker_count_),
        pending_(worker_count_),
        updates_per_worker_(worker_count_, 0),
        wall_speed_(worker_count_),
        failure_handled_(worker_count_, 0) {}

  ~OnlineExecutor() override { shutdown(); }

  // ----- ExecutionView: the state the live scheduler decides from -----
  model::Time now() const override { return mirror_.now(); }
  int worker_count() const override { return mirror_.worker_count(); }
  const platform::Platform& platform() const override {
    return mirror_.platform();
  }
  const matrix::Partition& partition() const override {
    return mirror_.partition();
  }
  const sim::WorkerProgress& progress(int worker) const override {
    return mirror_.progress(worker);
  }
  model::Time earliest_start(int worker, sim::CommKind kind) const override {
    // The online edge over the pure model: a result that has ACTUALLY
    // arrived is collectable immediately, so policies ranking actions by
    // start time react to real worker speeds (including mid-run
    // perturbations the model knows nothing about).
    if (kind == sim::CommKind::kRecvC &&
        pending_[static_cast<std::size_t>(worker)].has_value() &&
        mirror_.progress(worker).all_steps_received())
      return mirror_.now();
    return mirror_.earliest_start(worker, kind);
  }
  model::Time comm_duration(int worker, sim::CommKind kind) const override {
    return mirror_.comm_duration(worker, kind);
  }
  model::BlockCount unassigned_blocks() const override {
    return mirror_.unassigned_blocks();
  }
  model::BlockCount updates_total() const override {
    return mirror_.updates_total();
  }
  bool all_work_done() const override { return mirror_.all_work_done(); }
  const std::shared_ptr<const sim::InstanceContext>& context() const override {
    return mirror_.context();
  }
  sim::EngineState model_state() const override { return mirror_.snapshot(); }

  /// Marks the worker failed and reclaims everything it held: the
  /// mirror returns its in-flight chunk to the pending set, queued
  /// messages hand their payload buffers back to the pool, and a
  /// still-running thread is decommissioned (channels closed; the exit
  /// error that may cause is expected and never rethrown). Idempotent;
  /// also the master's internal path when it detects a dead thread.
  void fail_worker(int worker) override {
    const auto w = static_cast<std::size_t>(worker);
    HMXP_REQUIRE(worker >= 0 && w < worker_count_,
                 "worker index out of range");
    if (failure_handled_[w]) return;
    failure_handled_[w] = 1;
    ++workers_failed_;
    if (w < workers_.size() && !workers_[w]->failed()) workers_[w]->kill();
    reclaim_channels(w);
    if (pending_[w].has_value()) {
      pool_.release(std::move(pending_[w]->c));
      pending_[w].reset();
    }
    views_[w].plan.reset();
    mirror_.fail_worker(worker);
  }

  /// Static w_i scaled by the worker's observed wall-clock drift: the
  /// EWMA of its measured per-update step latencies over its first
  /// observation. Model units in, model units out, so policies mix it
  /// freely with the platform's w_i -- and a worker that slowed down
  /// 2x mid-run costs 2x in every lookahead that consults it.
  model::Time calibrated_w(int worker) const override {
    return mirror_.platform().worker(worker).w *
           wall_speed_[static_cast<std::size_t>(worker)].drift();
  }
  double observed_drift(int worker) const override {
    return wall_speed_[static_cast<std::size_t>(worker)].drift();
  }

  // ----- the master loop -----
  ExecutorReport run(sim::Scheduler& scheduler,
                     std::vector<sim::Decision>* decision_log) {
    run_begin_ = Clock::now();
    matrix::Matrix reference;
    if (options_.verify) reference = c_;  // C_initial; product added at end

    start_workers(run_begin_);
    const std::size_t max_decisions =
        sim::decision_budget(mirror_.partition());
    std::size_t executed = 0;
    try {
      while (true) {
        drain_completions();
        sim::Decision decision = scheduler.next(*this);
        if (decision.kind == sim::Decision::Kind::kDone) break;
        if (options_.tolerate_faults) {
          // A worker can die between the scheduler's decision and the
          // real execution (or while the master blocks inside it). The
          // mirror executes first, so an aborted real half leaves it
          // ahead of reality: snapshot beforehand (into a reused
          // scratch state, so the per-decision snapshot allocates
          // nothing in steady state), and on a death mid-decision
          // rewind the mirror, mark the worker failed, and let the
          // scheduler re-decide against the updated view.
          mirror_.snapshot_into(rollback_state_);
          try {
            mirror_.execute(decision);
            execute_real(decision);
          } catch (...) {
            const auto w = static_cast<std::size_t>(decision.worker);
            if (decision.worker >= 0 && w < workers_.size() &&
                workers_[w]->failed() && !workers_[w]->killed() &&
                !failure_handled_[w]) {
              mirror_.restore(rollback_state_);
              fail_worker(decision.worker);
              continue;  // the decision never happened
            }
            throw;
          }
        } else {
          // The mirror validates the protocol (throws std::logic_error
          // on violations) and advances the model clock; only then does
          // the decision touch real data.
          mirror_.execute(decision);
          execute_real(decision);
        }
        if (decision_log != nullptr) decision_log->push_back(decision);
        ++executed;
        HMXP_CHECK(executed <= max_decisions,
                   "scheduler exceeded decision budget (livelock?)");
      }
    } catch (...) {
      shutdown();
      rethrow_worker_error();  // a dead worker is the root cause
      throw;
    }
    shutdown();
    rethrow_worker_error();

    ExecutorReport report;
    report.chunks_processed = chunks_processed_;
    report.updates_per_worker = updates_per_worker_;
    for (const std::size_t updates : updates_per_worker_)
      report.updates_performed += updates;
    report.workers_failed = workers_failed_;
    for (const platform::SpeedEstimate& speed : wall_speed_)
      report.observed_drift.push_back(speed.drift());
    report.result =
        sim::collect_result(scheduler.name(), mirror_, executed);
    report.buffer_pool = pool_.stats();
    report.wall_seconds =
        std::chrono::duration<double>(Clock::now() - run_begin_).count();

    if (options_.verify) {
      matrix::gemm_parallel(a_.view(), b_.view(), reference.view());
      report.max_abs_error = matrix::Matrix::max_abs_diff(c_, reference);
      if (report.max_abs_error > options_.tolerance)
        throw std::runtime_error("runtime verification failed: max |error| = " +
                                 std::to_string(report.max_abs_error));
      report.verified = true;
    }
    return report;
  }

 private:
  /// Master replica of each worker's data-plane state: which plan it
  /// holds, its element window in C, and how many steps went out.
  struct MasterView {
    std::optional<sim::ChunkPlan> plan;
    Window window;
    std::size_t steps_sent = 0;
  };

  void start_workers(Clock::time_point run_begin) {
    // Inbox capacity: the chunk message plus (prefetch + 1) operand
    // slots for the deepest layout (double buffering, depth 1). The
    // bound makes a master that overruns a worker's buffers block for
    // real; per-chunk depths below the bound are enforced in model time
    // by the mirror's SendAB timing.
    const std::size_t capacity = 3;
    workers_.reserve(worker_count_);
    for (std::size_t i = 0; i < worker_count_; ++i) {
      workers_.push_back(std::make_unique<WorkerThread>(
          static_cast<int>(i), capacity, options_, run_begin,
          &updates_per_worker_[i], &pool_));
      workers_.back()->start();
    }
  }

  /// Non-blocking sweep of every worker: results that actually arrived
  /// become visible to the scheduler (earliest_start above) before the
  /// next decision, their measured step latencies feed the calibration,
  /// and dead threads are detected EAGERLY -- a worker that dies
  /// between steps surfaces here, not whenever the master next happens
  /// to touch its channels (which could be never).
  void drain_completions() {
    for (std::size_t w = 0; w < worker_count_; ++w) {
      if (failure_handled_[w]) continue;
      if (workers_[w]->failed()) {
        if (!options_.tolerate_faults)
          throw std::runtime_error("worker thread failed");
        fail_worker(static_cast<int>(w));
        continue;
      }
      if (!pending_[w].has_value()) {
        pending_[w] = workers_[w]->outbox().try_pop();
        if (pending_[w].has_value()) observe_speeds(w, *pending_[w]);
      }
    }
  }

  /// Folds a returned chunk's measured per-step latencies into the
  /// worker's wall-clock speed estimate.
  void observe_speeds(std::size_t w, const ResultMessage& result) {
    const std::size_t steps =
        std::min(result.step_seconds.size(), result.plan.steps.size());
    for (std::size_t s = 0; s < steps; ++s) {
      const auto updates =
          static_cast<double>(result.plan.steps[s].updates);
      const double seconds = result.step_seconds[s];
      if (updates <= 0 || seconds <= 0) continue;  // below clock resolution
      wall_speed_[w].observe(seconds / updates, options_.calibration.alpha);
    }
  }

  /// Port emulation: occupy the master for `blocks` x the configured
  /// per-block time, scaled by the link's drifting bandwidth factor.
  void throttle(int worker, double blocks) {
    if (options_.throttle_block_seconds <= 0.0) return;
    const double elapsed =
        std::chrono::duration<double>(Clock::now() - run_begin_).count();
    const double factor =
        options_.perturbation.bandwidth_factor(worker, elapsed);
    std::this_thread::sleep_for(std::chrono::duration<double>(
        blocks * options_.throttle_block_seconds * factor));
  }

  /// Hands every payload still queued on the worker's channels back to
  /// the pool (the channels survive close() for draining).
  void reclaim_channels(std::size_t w) {
    if (w >= workers_.size()) return;
    while (auto message = workers_[w]->inbox().try_pop()) {
      if (auto* chunk = std::get_if<ChunkMessage>(&*message)) {
        pool_.release(std::move(chunk->c));
      } else {
        auto& operands = std::get<OperandMessage>(*message);
        pool_.release(std::move(operands.a));
        pool_.release(std::move(operands.b));
      }
    }
    while (auto result = workers_[w]->outbox().try_pop())
      pool_.release(std::move(result->c));
  }

  void execute_real(const sim::Decision& decision) {
    const auto w = static_cast<std::size_t>(decision.worker);
    MasterView& view = views_[w];
    const matrix::Partition& part = mirror_.partition();
    const std::size_t q = part.q();

    switch (decision.comm) {
      case sim::CommKind::kSendC: {
        const Window window = c_window(part, decision.chunk.rect);
        ChunkMessage message;
        message.plan = decision.chunk;
        message.element_rows = window.rows();
        message.element_cols = window.cols();
        message.c = copy_window(pool_, c_, window.row0, window.row1,
                                window.col0, window.col1);
        throttle(decision.worker,
                 static_cast<double>(decision.chunk.rect.count()));
        workers_[w]->inbox().push(std::move(message));
        view.plan = decision.chunk;
        view.window = window;
        view.steps_sent = 0;
        break;
      }
      case sim::CommKind::kSendAB: {
        HMXP_CHECK(view.plan.has_value(), "SendAB without a chunk");
        const sim::StepPlan& step = view.plan->steps[view.steps_sent];
        const std::size_t ek0 = step.k_begin * q;
        const std::size_t ek1 =
            step.k_end == part.t() ? part.n_ab() : step.k_end * q;
        OperandMessage message;
        message.step = view.steps_sent;
        message.k_elem_begin = ek0;
        message.k_elems = ek1 - ek0;
        message.a = copy_window(pool_, a_, view.window.row0, view.window.row1,
                                ek0, ek1);
        message.b = copy_window(pool_, b_, ek0, ek1, view.window.col0,
                                view.window.col1);
        throttle(decision.worker, static_cast<double>(step.operand_blocks));
        workers_[w]->inbox().push(std::move(message));
        ++view.steps_sent;
        break;
      }
      case sim::CommKind::kRecvC: {
        HMXP_CHECK(view.plan.has_value(), "RecvC without a chunk");
        std::optional<ResultMessage> result = std::move(pending_[w]);
        pending_[w].reset();
        // Not drained yet: block until the worker really finishes (the
        // master waiting on the port, as in the model).
        if (!result.has_value()) {
          result = workers_[w]->outbox().pop();
          if (result.has_value()) observe_speeds(w, *result);
        }
        HMXP_CHECK(result.has_value(), "worker closed before returning C");
        throttle(decision.worker,
                 static_cast<double>(view.plan->rect.count()));
        HMXP_CHECK(result->element_rows == view.window.rows() &&
                       result->element_cols == view.window.cols(),
                   "returned chunk shape mismatch");
        matrix::ConstView src(result->c.data(), result->element_rows,
                              result->element_cols, result->element_cols);
        matrix::View dst =
            c_.window(view.window.row0, view.window.col0, view.window.rows(),
                      view.window.cols());
        matrix::copy_into(src, dst);
        // The chunk is folded in; recycle its buffer for the next send.
        pool_.release(std::move(result->c));
        ++chunks_processed_;
        view.plan.reset();
        break;
      }
    }
  }

  /// Stops and joins every worker. Closing the inboxes lets workers
  /// drain out; popping one pending result per outbox unblocks a worker
  /// stuck handing a result back. Idempotent, safe on error paths.
  void shutdown() noexcept {
    for (auto& worker : workers_) worker->request_stop();
    for (auto& worker : workers_) {
      (void)worker->outbox().try_pop();
      worker->join();
    }
  }

  /// After shutdown: if any worker thread failed, its exception is the
  /// root cause -- rethrow it (the master's own failure, e.g. a closed
  /// channel, is secondary). Exceptions of workers the master killed on
  /// purpose, or whose failure was tolerated and recovered from, are
  /// expected and stay buried.
  void rethrow_worker_error() {
    for (std::size_t w = 0; w < workers_.size(); ++w) {
      if (!workers_[w]->error() || workers_[w]->killed()) continue;
      if (options_.tolerate_faults && failure_handled_[w]) continue;
      std::rethrow_exception(workers_[w]->error());
    }
  }

  sim::Engine mirror_;
  const matrix::Matrix& a_;
  const matrix::Matrix& b_;
  matrix::Matrix& c_;
  BufferPool pool_;  // shared with workers; outlives them (declared first)
  ExecutorOptions options_;
  std::size_t worker_count_;
  std::vector<std::unique_ptr<WorkerThread>> workers_;
  std::vector<MasterView> views_;
  std::vector<std::optional<ResultMessage>> pending_;
  std::vector<std::size_t> updates_per_worker_;
  std::vector<platform::SpeedEstimate> wall_speed_;
  std::vector<char> failure_handled_;  // fail_worker() already ran
  sim::EngineState rollback_state_;    // reused pre-decision snapshot
  int workers_failed_ = 0;
  Clock::time_point run_begin_{};
  std::size_t chunks_processed_ = 0;
};

void check_shapes(const matrix::Partition& partition, const matrix::Matrix& a,
                  const matrix::Matrix& b, const matrix::Matrix& c,
                  const platform::Platform& platform,
                  const ExecutorOptions& options) {
  HMXP_REQUIRE(a.rows() == partition.n_a() && a.cols() == partition.n_ab(),
               "A shape does not match the partition");
  HMXP_REQUIRE(b.rows() == partition.n_ab() && b.cols() == partition.n_b(),
               "B shape does not match the partition");
  HMXP_REQUIRE(c.rows() == partition.n_a() && c.cols() == partition.n_b(),
               "C shape does not match the partition");
  HMXP_REQUIRE(options.compute_slowdown.empty() ||
                   options.compute_slowdown.size() ==
                       static_cast<std::size_t>(platform.size()),
               "slowdown vector must cover every worker");
  for (const int slowdown : options.compute_slowdown)
    HMXP_REQUIRE(slowdown >= 1, "slowdown factors must be >= 1");
}

}  // namespace

ExecutorReport execute_online(sim::Scheduler& scheduler,
                              const platform::Platform& platform,
                              const matrix::Partition& partition,
                              const matrix::Matrix& a, const matrix::Matrix& b,
                              matrix::Matrix& c, const ExecutorOptions& options,
                              std::vector<sim::Decision>* decision_log) {
  check_shapes(partition, a, b, c, platform, options);
  OnlineExecutor executor(platform, partition, a, b, c, options);
  return executor.run(scheduler, decision_log);
}

ExecutorReport execute(const platform::Platform& platform,
                       const matrix::Partition& partition,
                       const std::vector<sim::Decision>& decisions,
                       const matrix::Matrix& a, const matrix::Matrix& b,
                       matrix::Matrix& c, const ExecutorOptions& options) {
  sim::ReplayScheduler replay("replay", decisions);
  return execute_online(replay, platform, partition, a, b, c, options);
}

ExecutorReport run_on_data(const std::string& algorithm_name,
                           const platform::Platform& platform,
                           const matrix::Partition& partition,
                           const matrix::Matrix& a, const matrix::Matrix& b,
                           matrix::Matrix& c, const ExecutorOptions& options) {
  const core::Algorithm algorithm = core::algorithm_from_name(algorithm_name);
  std::unique_ptr<sim::Scheduler> scheduler =
      core::make_scheduler(algorithm, platform, partition);
  return execute_online(*scheduler, platform, partition, a, b, c, options);
}

}  // namespace hmxp::runtime
