// Master-worker runtime: a first-class *online* execution backend. Real
// workers (one std::thread each, or one forked PROCESS each -- see
// ExecutorOptions::transport) plus the calling thread as the master,
// which runs an event-driven loop: it consults the scheduler live
// (through sim::ExecutionView), moves real block panels through the
// data-plane Transport (runtime/transport.hpp), and reacts to actual
// completion messages -- workers that really finish early get collected
// early, regardless of what the cost model predicted.
//
// This is the in-machine stand-in for the paper's MPI deployment:
//  * any Scheduler drives it directly (execute_online); demand-driven
//    policies make their decisions on real data, not on a pre-recorded
//    log. Het keeps its two-phase structure: its builder still simulates
//    the eight variants and hands the runtime a ReplayScheduler;
//  * the master owns A, B and C, extracts block panels into messages and
//    folds returned C chunks back in (the "centralized data" hypothesis);
//  * the transport enforces the worker-side buffer limits for real --
//    bounded channels on the thread transport, explicit buffer credits
//    on the process transport; a master pushing past a worker's buffers
//    blocks -- while a model mirror keeps the ExecutionView bookkeeping
//    schedulers read;
//  * heterogeneity can be emulated as in the paper's experiments -- a
//    worker computes each update `slowdown` times -- and can change
//    mid-run through a wall-clock SlowdownSchedule (the adaptive,
//    time-varying-platform scenario);
//  * a worker thread that throws is propagated: channels shut down, all
//    threads are joined, and the worker's exception rethrows from the
//    master (never std::terminate). With ExecutorOptions::
//    tolerate_faults the master instead SURVIVES the loss: the dead
//    worker's channels drain back into the buffer pool, the model
//    mirror rolls back any decision the death interrupted, the worker
//    is marked failed on the ExecutionView, and the live scheduler
//    (an FT-* policy) re-assigns the lost chunk to the survivors.
//
// The runtime targets correctness demonstration and online-scheduling
// experiments, not makespan measurement (wall time on one shared machine
// says nothing about a star network; model-projected times live in the
// RunResult its mirror emits -- the same shape the simulator produces).
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "matrix/matrix.hpp"
#include "matrix/partition.hpp"
#include "matrix/tuning.hpp"
#include "platform/perturbation.hpp"
#include "platform/platform.hpp"
#include "runtime/buffer_pool.hpp"
#include "runtime/transport.hpp"
#include "sim/scheduler.hpp"

namespace hmxp::runtime {

struct ExecutorOptions {
  /// Data plane the run's workers live on: kThread (in-process, the
  /// default) or kProcess (one forked worker process per worker over a
  /// socketpair -- real address-space isolation; a SIGKILL'd child is a
  /// recoverable worker failure under tolerate_faults). Every other
  /// option below behaves identically on both.
  TransportKind transport = TransportKind::kThread;
  /// Per-worker compute repetition factors (>= 1); empty means all 1.
  /// Entry i applies to worker i, mirroring the paper's slowdown trick.
  std::vector<int> compute_slowdown;
  /// Dynamic perturbation: per-worker slowdown factors that change
  /// mid-run, keyed on WALL seconds since the run began. Multiplies
  /// compute_slowdown; workers re-read their factor before every step.
  platform::SlowdownSchedule perturbation;
  /// Verify C against a reference product on completion (costly for
  /// large matrices; on by default since the runtime exists to prove
  /// schedules correct).
  bool verify = true;
  /// Numerical tolerance for verification (absolute, per element).
  double tolerance = 1e-9;
  /// Record the model mirror's event trace into the report's RunResult.
  bool record_trace = false;
  /// Fault-injection hook, called by worker threads before computing
  /// each step (worker index, step index). An exception thrown here
  /// kills the worker: with tolerate_faults the master recovers, without
  /// it the run fails through the clean propagation path -- used by
  /// tests and fault-tolerance experiments.
  std::function<void(int worker, std::size_t step)> fault_hook;
  /// Wall-clock keyed permanent worker loss: each worker checks the
  /// schedule before every message it processes and dies past its event
  /// (the unreliable-platform counterpart of `perturbation`).
  platform::FaultSchedule faults;
  /// Survive worker loss: a dead worker (fault hook, internal
  /// exception, or fault-schedule kill) is marked failed on the
  /// ExecutionView instead of aborting the run -- its channels are
  /// drained, its pooled buffers reclaimed, its in-flight chunk returns
  /// to the pending set, and the live scheduler continues on survivors
  /// (an FT-* policy re-assigns the lost work). Off by default: a
  /// non-fault-tolerant scheduler cannot complete after a loss, so the
  /// historical fail-fast behaviour remains.
  bool tolerate_faults = false;
  /// EWMA knobs for the observed-speed feedback: per-step wall
  /// latencies fold into ExecutionView::calibrated_w / observed_drift.
  platform::CalibrationOptions calibration;
  /// Port emulation for bandwidth experiments: when > 0, the master
  /// sleeps this many wall seconds per block for every message it
  /// exchanges, scaled by the perturbation's bandwidth factor for that
  /// worker -- a throttled channel whose link speeds drift mid-run
  /// exactly like the simulator's c_i perturbation.
  double throttle_block_seconds = 0.0;
  /// Wire-level compression on the TCP transport (zero-RLE byte codec,
  /// runtime/wire_compress.hpp): frames above a threshold ship
  /// compressed whenever the codec actually shrinks them. Aimed at the
  /// bandwidth-bound regime the paper's CCR analysis prices; a no-op on
  /// the local transports (which never serialize or are memory-bound).
  bool wire_compression = false;
  /// Hard ceiling on one wire frame, in bytes; 0 (the default) derives
  /// it from the partition geometry (serde::max_frame_bytes_for). A
  /// frame whose length prefix exceeds the ceiling is protocol
  /// corruption: the endpoint fails cleanly instead of allocating.
  std::size_t max_frame_bytes = 0;
};

/// Speculation telemetry: proactive duplicates the run issued and how
/// each race resolved. Wasted updates are the insurance premium -- the
/// block-steps a cancelled (or out-raced) copy had already delivered.
struct SpeculationStats {
  std::size_t duplicates_issued = 0;     // speculative SendC decisions
  std::size_t duplicates_cancelled = 0;  // CancelMessages shipped
  std::size_t duplicates_won = 0;        // RecvC committed from a duplicate
  std::size_t wasted_updates = 0;        // delivered updates later discarded
  std::size_t stale_results = 0;         // raced results discarded by seq
};

struct ExecutorReport {
  /// Model-projected run summary from the master's mirror -- the same
  /// shape (makespan, decisions, CCR, trace, ...) the simulator emits,
  /// so experiment tables work identically on either backend.
  sim::RunResult result;
  double wall_seconds = 0.0;
  std::size_t chunks_processed = 0;
  /// Block updates accounted as results RETURN to the master (the only
  /// accounting that works identically on every transport -- a child
  /// process shares no counters). A worker that dies mid-chunk is not
  /// credited for partial steps; the chunk's updates are credited to
  /// whoever returns it, and re-executed lost work is credited each
  /// time it comes back, so under faults the total is >= the grid's
  /// update count (the mirror's RunResult.updates stays the exact
  /// effective count).
  std::size_t updates_performed = 0;
  std::vector<std::size_t> updates_per_worker;
  int workers_failed = 0;              // workers lost (and tolerated) mid-run
  /// Workers re-admitted after a mid-run reconnect (TCP transport): a
  /// rejoin counts in workers_failed too -- the disconnect was a real
  /// loss the FT machinery recovered from before the hot-join.
  int workers_rejoined = 0;
  /// Per-worker calibration outcome: EWMA-over-baseline ratio of the
  /// measured per-update wall cost (1.0 = nominal / no observation).
  std::vector<double> observed_drift;
  bool verified = false;               // true iff verify ran and passed
  double max_abs_error = 0.0;          // vs reference (when verify on)
  /// Payload-buffer recycling counters: in steady state acquires grow
  /// while allocations stay at the warm-up count (the "no per-step
  /// payload allocation" property; small per-step bookkeeping like
  /// channel nodes is outside the pool's scope). On a fleet these are
  /// the pool's CUMULATIVE lifetime counters (never reset across
  /// jobs); `buffer_pool_delta` below is this job's own slice.
  BufferPool::Stats buffer_pool;
  /// This run's contribution alone: counter fields are end-minus-start
  /// differences, gauge fields (`outstanding`, `peak_outstanding`) are
  /// as-of-run-end values. A warm fleet job in steady state allocates
  /// (near) nothing: its `buffer_pool_delta.allocations` only covers
  /// growth past every earlier job's in-flight peak, so the total
  /// across N jobs stays bounded by the worst-case in-flight
  /// population, never scaling with N. Any balanced run -- first or
  /// hundredth -- leaves `buffer_pool_delta.outstanding` covering only
  /// payloads other concurrent jobs hold.
  BufferPool::Stats buffer_pool_delta;
  /// Proactive-redundancy outcome (all zero under non-SP schedulers).
  SpeculationStats speculation;
  /// Which transport moved the data plane ("thread" / "process").
  std::string transport;
  /// Data-plane counters: message counts on every transport, frame
  /// bytes and master-side serialization seconds on serializing ones.
  TransportStats transport_stats;
  /// Compute-plane provenance: the micro-kernel variant ("avx512" /
  /// "avx2+fma" / "portable") and the blocking parameters the packed
  /// tier ran with -- the same configuration forked workers verified
  /// in their bootstrap handshake. Blocking is all-zero when the run
  /// dispatched a non-packed tier (naive/tiled consume no blocking).
  std::string kernel_variant;
  matrix::BlockingParams kernel_blocking;
  /// Fleet-mode only: how many distinct workers ever held this job's
  /// lease (0 on the classic own-transport paths).
  int fleet_workers_used = 0;
};

class Fleet;  // fleet.hpp; broken include cycle

/// Lease coordination a fleet-mode master polls at every completion
/// sweep. All callbacks are invoked from the job's master thread; the
/// lease manager behind them (service/daemon.cpp) provides the mutual
/// exclusion that makes worker hand-offs safe. Any callback may be
/// empty: poll_grants/wait_grant default to "no grants ever", target to
/// "keep everything", release/worker_dead to no-ops.
struct LeaseHooks {
  /// Drains workers granted to this job since the last poll (fleet
  /// worker indices; each is idle and alive when granted).
  std::function<std::vector<int>()> poll_grants;
  /// Blocks until at least one worker is granted. An EMPTY result means
  /// the grant can never come (daemon shutting down): the job fails.
  /// Called only when the job holds zero alive workers with work left.
  std::function<std::vector<int>()> wait_grant;
  /// This job's current fair-share worker target. When the job holds
  /// more than the target, it sheds idle workers at chunk boundaries
  /// (the lease rebalancing point: a worker is only ever handed back
  /// between chunks, fully quiesced).
  std::function<int()> target;
  /// Hands an idle, alive, fully-drained worker back to the pool.
  std::function<void(int)> release;
  /// Reports a worker that REALLY died while this job held it (the
  /// job's FT-* scheduler re-completes the lost chunk on survivors;
  /// the fleet never leases the worker again).
  std::function<void(int)> worker_dead;
};

/// Per-job knobs of a fleet run (everything else -- transport, fault
/// schedules, calibration alpha -- is fixed fleet-wide at spawn).
struct FleetJobOptions {
  bool verify = false;  // off by default: fleet jobs verify via their caller
  double tolerance = 1e-9;
  bool record_trace = false;
};

/// Online execution: drives `scheduler` live against real worker
/// threads computing C += A * B with A (n_a x n_ab), B (n_ab x n_b),
/// C (n_a x n_b) under `partition`. The scheduler sees an ExecutionView
/// whose RecvC readiness reflects actual worker completions. Throws
/// std::logic_error on protocol violations, std::runtime_error if
/// verification fails or a worker thread failed. `decision_log`, if
/// non-null, receives every executed decision (for parity checks and
/// replay).
ExecutorReport execute_online(sim::Scheduler& scheduler,
                              const platform::Platform& platform,
                              const matrix::Partition& partition,
                              const matrix::Matrix& a, const matrix::Matrix& b,
                              matrix::Matrix& c,
                              const ExecutorOptions& options = {},
                              std::vector<sim::Decision>* decision_log =
                                  nullptr);

/// Replay backend: executes a prerecorded decision log (e.g. from
/// sim::run) against real data, through the same online master loop.
ExecutorReport execute(const platform::Platform& platform,
                       const matrix::Partition& partition,
                       const std::vector<sim::Decision>& decisions,
                       const matrix::Matrix& a, const matrix::Matrix& b,
                       matrix::Matrix& c, const ExecutorOptions& options = {});

/// Fleet re-entry: the same online master loop, but over a LONG-LIVED
/// fleet's transport, pool and calibration state instead of its own --
/// no worker spawn, no teardown, warm buffers. The job's scheduler sees
/// the full fleet platform with every non-leased worker marked failed
/// (an FT-* policy simply schedules around them), so `scheduler` MUST
/// be fault-tolerant. Workers granted mid-run (LeaseHooks::poll_grants)
/// hot-join exactly like a re-admitted TCP worker; idle workers are
/// shed at chunk boundaries whenever the job exceeds its fair-share
/// target, and every worker is released as the tail drains -- the
/// pipelined epilogue that lets the next job's prologue start while
/// this job's last chunks come home. On any failure the job KILLS the
/// workers it still holds (reporting them dead) rather than hand a
/// non-quiesced worker to the next job. Throws like execute_online.
ExecutorReport execute_on_fleet(sim::Scheduler& scheduler, Fleet& fleet,
                                const matrix::Partition& partition,
                                const matrix::Matrix& a,
                                const matrix::Matrix& b, matrix::Matrix& c,
                                const std::vector<int>& initial_lease,
                                const LeaseHooks& hooks,
                                const FleetJobOptions& job = {},
                                std::vector<sim::Decision>* decision_log =
                                    nullptr);

/// Convenience: build the scheduler for `algorithm` and run it ONLINE on
/// real data (no pre-simulation; algorithms with a selection phase, like
/// Het, still run it inside their builder).
ExecutorReport run_on_data(const std::string& algorithm_name,
                           const platform::Platform& platform,
                           const matrix::Partition& partition,
                           const matrix::Matrix& a, const matrix::Matrix& b,
                           matrix::Matrix& c,
                           const ExecutorOptions& options = {});

}  // namespace hmxp::runtime
