// Threaded master-worker runtime: executes a scheduler's communication
// sequence on real matrices, one std::thread per worker plus the calling
// thread as the master.
//
// This is the in-process stand-in for the paper's MPI deployment:
//  * the decision sequence comes from the same Scheduler code the
//    simulator runs (for Het, the phase-2 replay log -- the paper's own
//    two-phase structure);
//  * the master owns A, B and C, extracts block panels into messages and
//    folds returned C chunks back in (the "centralized data" hypothesis);
//  * bounded channels enforce the worker-side buffer limits;
//  * heterogeneity can be emulated as in the paper's experiments -- a
//    worker computes each update `slowdown` times ("we ask a worker to
//    compute a given matrix-product several times in order to slow down
//    its computation capability").
//
// The runtime targets correctness demonstration and examples, not
// timing experiments (wall time on one shared machine says nothing
// about a star network; the simulator owns makespans).
#pragma once

#include <string>
#include <vector>

#include "matrix/matrix.hpp"
#include "matrix/partition.hpp"
#include "platform/platform.hpp"
#include "sim/engine.hpp"

namespace hmxp::runtime {

struct ExecutorOptions {
  /// Per-worker compute repetition factors (>= 1); empty means all 1.
  /// Entry i applies to worker i, mirroring the paper's slowdown trick.
  std::vector<int> compute_slowdown;
  /// Verify C against a reference product on completion (costly for
  /// large matrices; on by default since the runtime exists to prove
  /// schedules correct).
  bool verify = true;
  /// Numerical tolerance for verification (absolute, per element).
  double tolerance = 1e-9;
};

struct ExecutorReport {
  double wall_seconds = 0.0;
  std::size_t chunks_processed = 0;
  std::size_t updates_performed = 0;   // block updates across workers
  std::vector<std::size_t> updates_per_worker;
  bool verified = false;               // true iff verify ran and passed
  double max_abs_error = 0.0;          // vs reference (when verify on)
};

/// Runs `decisions` (a log from sim::run) against real data:
/// C += A * B with A (n_a x n_ab), B (n_ab x n_b), C (n_a x n_b) under
/// `partition`. Throws std::logic_error on protocol violations and
/// std::runtime_error if verification fails.
ExecutorReport execute(const platform::Platform& platform,
                       const matrix::Partition& partition,
                       const std::vector<sim::Decision>& decisions,
                       const matrix::Matrix& a, const matrix::Matrix& b,
                       matrix::Matrix& c, const ExecutorOptions& options = {});

/// Convenience: build the scheduler for `algorithm`, capture its
/// decision log via simulation, then execute it on real data.
ExecutorReport run_on_data(const std::string& algorithm_name,
                           const platform::Platform& platform,
                           const matrix::Partition& partition,
                           const matrix::Matrix& a, const matrix::Matrix& b,
                           matrix::Matrix& c,
                           const ExecutorOptions& options = {});

}  // namespace hmxp::runtime
