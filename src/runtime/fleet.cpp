#include "runtime/fleet.hpp"

#include "util/check.hpp"

namespace hmxp::runtime {

Fleet::Fleet(platform::Platform platform, ExecutorOptions options,
             std::size_t max_payload_doubles)
    : platform_(std::move(platform)),
      options_(std::move(options)),
      max_payload_doubles_(max_payload_doubles),
      spawn_time_(std::chrono::steady_clock::now()),
      speeds_(static_cast<std::size_t>(platform_.size())) {
  HMXP_REQUIRE(platform_.size() > 0, "fleet needs at least one worker");
  HMXP_REQUIRE(max_payload_doubles_ > 0,
               "fleet needs a positive payload ceiling");
  // Jobs run under fault tolerance unconditionally: a fleet outlives
  // any one job, so a worker death must degrade, never abort.
  options_.tolerate_faults = true;
  const auto count = static_cast<std::size_t>(platform_.size());
  drift_.reserve(count);
  dead_.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    drift_.push_back(std::make_unique<std::atomic<double>>(1.0));
    dead_.push_back(std::make_unique<std::atomic<bool>>(false));
  }
  // Inbox depth 3: the chunk message plus the double-buffered layout's
  // prefetch + 1 operand slots -- the same bound execute_online uses.
  transport_ = make_transport(options_.transport, platform_.size(),
                              /*inbox_capacity=*/3, options_, spawn_time_,
                              &pool_, max_payload_doubles_);
}

Fleet::~Fleet() { shutdown(); }

double Fleet::drift(int worker) const {
  return drift_[static_cast<std::size_t>(worker)]->load(
      std::memory_order_relaxed);
}

void Fleet::publish_drift(int worker, double drift) {
  drift_[static_cast<std::size_t>(worker)]->store(drift,
                                                  std::memory_order_relaxed);
}

void Fleet::mark_dead(int worker) {
  dead_[static_cast<std::size_t>(worker)]->store(true,
                                                 std::memory_order_release);
}

bool Fleet::alive(int worker) const {
  return !dead_[static_cast<std::size_t>(worker)]->load(
      std::memory_order_acquire);
}

int Fleet::alive_count() const {
  int alive = 0;
  for (const auto& dead : dead_)
    if (!dead->load(std::memory_order_acquire)) ++alive;
  return alive;
}

void Fleet::shutdown() noexcept {
  if (transport_ != nullptr) transport_->shutdown();
}

}  // namespace hmxp::runtime
