// A long-lived worker fleet: the transport, buffer pool and per-worker
// calibration state of MANY runs, owned once and reused across jobs.
//
// Today's execute_online spawns its workers, warms its pools and
// calibrates its speeds per run, then throws all of that away. A Fleet
// flips the ownership: the transport (any of the four kinds) is created
// ONCE, worker_main's job-agnostic loop keeps every worker alive
// between jobs, the BufferPool (and the shm transport's SharedArena)
// stay warm, and the platform::SpeedEstimate vector keeps accumulating
// observations -- so the second job starts where the first left off.
//
// Concurrency model: multiple jobs run at the same time, each as its
// own master loop (executor.cpp in fleet mode) driving a DISJOINT set
// of leased workers. A worker's endpoint is only ever touched by the
// job currently holding its lease; lease hand-offs synchronize through
// the lease manager's mutex (service/daemon.cpp), and per-endpoint
// transport-stats slots keep the counters race-free. The fleet itself
// only tracks which workers are still alive: a worker that really died
// (thread exception, SIGKILL'd child, dropped connection) is reported
// by the job that held it and never leased again.
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <memory>
#include <vector>

#include "platform/calibration.hpp"
#include "platform/platform.hpp"
#include "runtime/buffer_pool.hpp"
#include "runtime/executor.hpp"
#include "runtime/transport.hpp"

namespace hmxp::runtime {

class Fleet {
 public:
  /// Spawns the fleet's workers immediately. `options` is the
  /// fleet-wide executor configuration (transport kind, fault hook and
  /// schedules, calibration alpha); it is copied and kept alive for
  /// the fleet's whole lifetime because worker contexts point into it.
  /// `max_payload_doubles` is the largest single payload ANY future job
  /// may ship (admission enforces it): the shm arena and the
  /// serializing transports' frame-length ceilings are sized from it
  /// once, here.
  Fleet(platform::Platform platform, ExecutorOptions options,
        std::size_t max_payload_doubles);
  ~Fleet();
  Fleet(const Fleet&) = delete;
  Fleet& operator=(const Fleet&) = delete;

  int size() const { return platform_.size(); }
  const platform::Platform& platform() const { return platform_; }
  const ExecutorOptions& options() const { return options_; }
  std::size_t max_payload_doubles() const { return max_payload_doubles_; }
  std::chrono::steady_clock::time_point spawn_time() const {
    return spawn_time_;
  }

  Transport& transport() { return *transport_; }
  BufferPool& pool() { return pool_; }

  /// The fleet's persistent per-worker speed estimates. A job observes
  /// only the workers it holds a lease on, so concurrent jobs never
  /// write the same estimate; lease hand-offs order the accesses.
  std::vector<platform::SpeedEstimate>& speeds() { return speeds_; }

  /// Lock-free drift snapshot for readers OUTSIDE the lease protocol
  /// (the admission controller pricing a job while other jobs run).
  /// Published by the leasing job at job end (publish_drift); 1.0
  /// until a worker has been observed.
  double drift(int worker) const;
  void publish_drift(int worker, double drift);

  /// Permanent-death registry: a job that lost worker `w` for real
  /// reports it here; the lease manager stops offering it. (A fleet
  /// has no per-job re-admission: a TCP worker redialing into a
  /// long-lived daemon would need daemon-level re-admission, which is
  /// out of scope -- the fleet just shrinks.)
  void mark_dead(int worker);
  bool alive(int worker) const;
  int alive_count() const;

  /// Summed per-endpoint data-plane counters. Only meaningful at a
  /// quiescent point: call between jobs or after shutdown.
  TransportStats transport_stats() const { return transport_->stats(); }

  /// Stops and reaps every worker. Idempotent; the destructor calls it.
  void shutdown() noexcept;

 private:
  platform::Platform platform_;
  ExecutorOptions options_;  // worker contexts point into this copy
  std::size_t max_payload_doubles_;
  std::chrono::steady_clock::time_point spawn_time_;
  BufferPool pool_;  // outlives the transport's workers (declared first)
  std::unique_ptr<Transport> transport_;
  std::vector<platform::SpeedEstimate> speeds_;
  std::vector<std::unique_ptr<std::atomic<double>>> drift_;
  std::vector<std::unique_ptr<std::atomic<bool>>> dead_;
};

}  // namespace hmxp::runtime
