// Messages exchanged between the master and its workers. Payloads are
// dense copies of the covered element windows -- the worker owns its
// copy, exactly like an MPI rank owns its receive buffer -- carried as
// runtime::Payload, which abstracts WHERE the copy lives: a heap vector
// recycled through the run's runtime::BufferPool (thread and process
// transports), or a window into a cross-process runtime::SharedArena
// slot (the zero-copy shm transport). Either way, in steady state the
// data plane moves its element storage -- the dominant, O(panel)
// allocations -- without allocating any; only O(1)-sized bookkeeping
// (channel nodes, plan metadata) still touches the heap per step.
#pragma once

#include <cstddef>
#include <variant>
#include <vector>

#include "matrix/partition.hpp"
#include "runtime/payload.hpp"
#include "sim/chunk.hpp"

namespace hmxp::runtime {

/// New C chunk: element data for plan.rect (row-major, rect rows of q
/// elements each, edge blocks possibly short).
struct ChunkMessage {
  sim::ChunkPlan plan;
  std::size_t element_rows = 0;   // elements, not blocks
  std::size_t element_cols = 0;
  Payload c;                      // element_rows x element_cols
  /// Per-worker monotone chunk sequence number, echoed by the worker on
  /// the matching ResultMessage and named by a CancelMessage. The master
  /// uses it to discard a result that raced a cancellation.
  std::uint64_t seq = 0;
};

/// Operand batch for one step: the A panel (chunk rows x k-range) and
/// the B panel (k-range x chunk cols).
struct OperandMessage {
  std::size_t step = 0;
  std::size_t k_elem_begin = 0;   // element offset of the inner range
  std::size_t k_elems = 0;        // inner extent in elements
  Payload a;                      // element_rows x k_elems
  Payload b;                      // k_elems x element_cols
};

/// Finished chunk heading home.
struct ResultMessage {
  sim::ChunkPlan plan;
  std::size_t element_rows = 0;
  std::size_t element_cols = 0;
  Payload c;
  std::size_t updates_performed = 0;
  /// Measured wall seconds of each step's compute (slowdown repetitions
  /// included), aligned with plan.steps: the raw material of the
  /// master's online speed calibration.
  std::vector<double> step_seconds;
  /// The seq of the ChunkMessage this result answers.
  std::uint64_t seq = 0;
};

/// Non-fatal chunk revocation (straggler speculation lost the race, or
/// the master committed the speculative twin's result first): the worker
/// drops the chunk whose seq matches -- releasing its payloads -- and
/// keeps running with its territory intact. A mismatched seq means the
/// result already shipped; the worker ignores the cancel and the master
/// discards the raced result by seq instead.
struct CancelMessage {
  std::uint64_t seq = 0;
};

using WorkerMessage = std::variant<ChunkMessage, OperandMessage, CancelMessage>;

}  // namespace hmxp::runtime
