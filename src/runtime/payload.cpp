#include "runtime/payload.hpp"

#include "runtime/buffer_pool.hpp"
#include "runtime/shared_arena.hpp"
#include "util/check.hpp"

namespace hmxp::runtime {

Payload Payload::arena_view(SharedArena* arena, std::uint32_t slot,
                            double* data, std::size_t size) {
  HMXP_REQUIRE(arena != nullptr, "arena view needs an arena");
  Payload payload;
  payload.arena_ = arena;
  payload.slot_ = slot;
  payload.data_ = data;
  payload.size_ = size;
  return payload;
}

void Payload::release_to(BufferPool& pool) {
  if (arena_ != nullptr) {
    arena_->release(slot_);
    arena_ = nullptr;
    data_ = nullptr;
    size_ = 0;
    slot_ = 0;
    return;
  }
  pool.release(std::move(owned_));
  owned_.clear();
}

void Payload::detach() {
  owned_.clear();
  owned_.shrink_to_fit();
  data_ = nullptr;
  size_ = 0;
  arena_ = nullptr;
  slot_ = 0;
}

void Payload::reset() {
  // The destructor's backstop: an arena slot must never leak just
  // because its payload unwound (the owning BufferPool is out of reach
  // here, so owned storage simply frees).
  if (arena_ != nullptr) {
    arena_->release(slot_);
    arena_ = nullptr;
  }
  data_ = nullptr;
  size_ = 0;
  slot_ = 0;
}

}  // namespace hmxp::runtime
