// Payload storage for one dense element window moving through the data
// plane. Two homes, one type:
//
//   * OWNED -- a heap vector checked out of the run's BufferPool. The
//     thread transport moves it by value (zero-copy in-process), the
//     process transport serializes it into socket frames.
//   * ARENA VIEW -- a (pointer, length) window into a SharedArena slot.
//     The shm transport's master packs operand panels straight into
//     shared slots, workers compute directly from (and into) them, and
//     only (slot, length) descriptors ever cross the control socket:
//     the payload bytes are never copied after the initial pack-out.
//
// worker_main, the executor and the transports all speak Payload, so
// the SAME master loop and worker protocol run zero-copy or serialized
// depending only on which transport allocated the storage. Releasing is
// polymorphic too: release_to(pool) recycles owned storage into the
// pool and returns an arena view's slot to its arena.
//
// Move-only, and self-releasing on destruction: a payload dropped on an
// error path (an unwinding worker, a master rolling a decision back)
// frees its arena slot instead of leaking it. detach() breaks that tie
// for the one case where ownership really crosses the process boundary
// (a descriptor frame handing the slot to the peer).
#pragma once

#include <cstddef>
#include <cstdint>
#include <initializer_list>
#include <vector>

namespace hmxp::runtime {

class BufferPool;
class SharedArena;

class Payload {
 public:
  Payload() = default;
  /*implicit*/ Payload(std::vector<double>&& owned)
      : owned_(std::move(owned)) {}
  /*implicit*/ Payload(std::initializer_list<double> values)
      : owned_(values) {}

  /// A view of `size` doubles in `arena`'s slot `slot` at `data`.
  static Payload arena_view(SharedArena* arena, std::uint32_t slot,
                            double* data, std::size_t size);

  Payload(Payload&& other) noexcept { steal(other); }
  Payload& operator=(Payload&& other) noexcept {
    if (this != &other) {
      reset();
      steal(other);
    }
    return *this;
  }
  Payload(const Payload&) = delete;
  Payload& operator=(const Payload&) = delete;
  ~Payload() { reset(); }

  double* data() { return arena_ != nullptr ? data_ : owned_.data(); }
  const double* data() const {
    return arena_ != nullptr ? data_ : owned_.data();
  }
  std::size_t size() const {
    return arena_ != nullptr ? size_ : owned_.size();
  }
  bool empty() const { return size() == 0; }
  bool in_arena() const { return arena_ != nullptr; }
  std::uint32_t slot() const { return slot_; }

  /// Returns the storage for reuse: owned vectors to `pool`, arena
  /// views to their arena. The payload is empty afterwards.
  void release_to(BufferPool& pool);

  /// Forgets an arena view WITHOUT releasing the slot: the slot's
  /// ownership just crossed the process boundary inside a descriptor
  /// frame, and the peer (or the master's crash reclamation) is now
  /// responsible for it. Owned storage is simply dropped.
  void detach();

  /// Element-wise comparison, for tests and parity checks.
  friend bool operator==(const Payload& lhs, const Payload& rhs) {
    if (lhs.size() != rhs.size()) return false;
    const double* a = lhs.data();
    const double* b = rhs.data();
    for (std::size_t i = 0; i < lhs.size(); ++i)
      if (a[i] != b[i]) return false;
    return true;
  }

 private:
  void steal(Payload& other) {
    owned_ = std::move(other.owned_);
    data_ = other.data_;
    size_ = other.size_;
    arena_ = other.arena_;
    slot_ = other.slot_;
    other.owned_.clear();
    other.data_ = nullptr;
    other.size_ = 0;
    other.arena_ = nullptr;
    other.slot_ = 0;
  }
  void reset();

  std::vector<double> owned_;
  double* data_ = nullptr;
  std::size_t size_ = 0;
  SharedArena* arena_ = nullptr;
  std::uint32_t slot_ = 0;
};

}  // namespace hmxp::runtime
