// ProcessTransport: one worker PROCESS per worker, the in-machine
// stand-in for the companion report's real-cluster MPI deployment.
//
// Topology: the master owns one socketpair(2) per worker; each child is
// forked (no exec -- it inherits the executor's options, schedules and
// kernel state copy-on-write) and runs the same worker_main as a thread
// worker, over a SocketWorkerPort that reads/writes length-prefixed
// frames (runtime/serde.hpp). A forked worker is REALLY isolated: a
// SIGKILL, an abort, or an OOM kill surfaces to the master as a socket
// EOF -- a first-class worker failure the fault-tolerant master
// recovers from exactly like a dead thread.
//
// Backpressure: the channel bound of the thread transport becomes
// explicit buffer credits. The master holds `inbox_capacity` credits
// per worker; every frame it ships consumes one, and the worker returns
// one (a kCredit frame) each time it dequeues a message -- the same
// "pop frees the slot, then the worker computes" timing the bounded
// channel enforces. A master pushing past a worker's buffers therefore
// blocks in Endpoint::send, pumping inbound frames while it waits so a
// worker blocked handing a result back can never deadlock it.
//
// Death protocol: a worker that dies on a C++ exception ships a kError
// frame with its what() text before exiting, so the master rethrows the
// real root cause; a worker that dies without unwinding (SIGKILL) just
// disappears and the master synthesizes the cause from waitpid status.
#include <cerrno>
#include <csignal>
#include <cstring>
#include <deque>
#include <memory>
#include <stdexcept>
#include <string>
#include <variant>
#include <vector>

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>
#if defined(__linux__)
#include <sys/prctl.h>
#endif

#include "matrix/kernel_dispatch.hpp"
#include "matrix/tuning.hpp"
#include "runtime/executor.hpp"
#include "runtime/serde.hpp"
#include "runtime/socket_util.hpp"
#include "runtime/transport.hpp"
#include "runtime/worker_main.hpp"
#include "util/check.hpp"

namespace hmxp::runtime {

namespace {

using Clock = std::chrono::steady_clock;
using serde::ByteBuffer;
using serde::FrameType;

double seconds_since(Clock::time_point begin) {
  return std::chrono::duration<double>(Clock::now() - begin).count();
}

// Blocking fd helpers (read_exact / write_exact / read_frame) live in
// runtime/socket_util.hpp, shared with the shm bootstrap channel and
// both sides of the TCP transport.

// ---- child side -------------------------------------------------------------

/// The worker's face of the socket: frame intake with credit return,
/// result frames out. Lives entirely in the child process.
class SocketWorkerPort final : public WorkerPort {
 public:
  SocketWorkerPort(int fd, BufferPool* pool, std::uint64_t max_frame_bytes)
      : fd_(fd), pool_(pool), max_frame_bytes_(max_frame_bytes) {}

  std::optional<WorkerMessage> receive() override {
    if (!read_frame(fd_, body_, max_frame_bytes_))
      return std::nullopt;  // master closed the data plane: done

    // Return the inbox credit BEFORE computing: the slot is free the
    // moment the message is dequeued, exactly like a channel pop.
    tx_.clear();
    serde::encode_control(FrameType::kCredit, tx_);
    write_exact(fd_, tx_.data(), tx_.size());

    switch (serde::frame_type(body_.data(), body_.size())) {
      case FrameType::kChunk:
        return WorkerMessage(
            serde::decode_chunk(body_.data(), body_.size(), *pool_));
      case FrameType::kOperand:
        return WorkerMessage(
            serde::decode_operand(body_.data(), body_.size(), *pool_));
      case FrameType::kCancel:
        return WorkerMessage(
            serde::decode_cancel(body_.data(), body_.size()));
      default:
        throw std::runtime_error("unexpected inbound frame type");
    }
  }

  std::optional<WorkerMessage> try_receive() override {
    // Only commit to the blocking read when a frame has started to
    // arrive; a partially written frame completes in microseconds (the
    // master writes frames whole over a local socketpair). EOF read
    // here returns nullopt like "nothing buffered" -- EOF is sticky,
    // the follow-up blocking receive() re-observes it and exits.
    struct pollfd probe;
    probe.fd = fd_;
    probe.events = POLLIN;
    probe.revents = 0;
    if (::poll(&probe, 1, 0) != 1 || (probe.revents & POLLIN) == 0)
      return std::nullopt;
    return receive();
  }

  void send(ResultMessage result) override {
    tx_.clear();
    serde::encode_result(result, tx_);
    // Payload storage recycles in the worker's own pool.
    result.c.release_to(*pool_);
    write_exact(fd_, tx_.data(), tx_.size());
  }

  void send_hello(const serde::HelloFrame& hello) {
    tx_.clear();
    serde::encode_hello(hello, tx_);
    write_exact(fd_, tx_.data(), tx_.size());
  }

 private:
  int fd_;
  BufferPool* pool_;
  std::uint64_t max_frame_bytes_;
  ByteBuffer body_;
  ByteBuffer tx_;
};

/// Child-process entry: re-assert the master's kernel pin, handshake,
/// then run the shared worker loop. Exits, never returns: 0 on a clean
/// close, 2 on a worker exception (the reason travels as a kError
/// frame when the socket still works).
///
/// NOTE on fork without exec: the child deliberately inherits the
/// master's address space (options, schedules, fault_hook closures and
/// the kernel-dispatch statics all come along for free -- an exec'ing
/// transport could ship none of them). POSIX only blesses
/// async-signal-safe calls in the child of a multithreaded parent;
/// glibc (every deployment target here) additionally makes malloc
/// fork-safe via its internal atfork handlers, which this child relies
/// on. The master bounds the bootstrap wait (wait_hello) so even a
/// wedged child fails the run instead of hanging it.
[[noreturn]] void run_child(int fd, const WorkerContext& context,
                            const matrix::KernelConfig& config,
                            std::uint64_t max_frame_bytes) {
#if defined(__linux__)
  // An orphaned worker must not outlive a crashed master.
  ::prctl(PR_SET_PDEATHSIG, SIGKILL);
#endif
  // fork() inherits the dispatch statics, but the master's full kernel
  // configuration -- tier, micro-kernel variant AND the tuned blocking
  // -- is re-asserted explicitly (and exported) so the guarantee holds
  // for any transport that execs instead of forking, and for the
  // worker's own children: the child can never re-resolve (or re-tune)
  // differently from the master.
  matrix::install_kernel_config(config);

  BufferPool pool;
  SocketWorkerPort port(fd, &pool, max_frame_bytes);
  try {
    // The hello answers with the configuration the child ACTUALLY runs
    // (re-read, not echoed), so the master's verification is end-to-end.
    port.send_hello(serde::local_hello(matrix::current_kernel_config()));
    worker_main(context, port, pool);
  } catch (const std::exception& error) {
    try {
      ByteBuffer notice;
      serde::encode_error(error.what(), notice);
      write_exact(fd, notice.data(), notice.size());
    } catch (...) {
      // The socket is gone too; the EOF alone carries the news.
    }
    ::close(fd);
    ::_exit(2);
  } catch (...) {
    ::close(fd);
    ::_exit(2);
  }
  ::close(fd);
  ::_exit(0);
}

// ---- master side ------------------------------------------------------------

class ProcessEndpoint final : public Endpoint {
 public:
  ProcessEndpoint(int index, int fd, pid_t pid, std::size_t credits,
                  const serde::HelloFrame& expected_hello, BufferPool* pool,
                  TransportStats* stats, std::uint64_t max_frame_bytes)
      : index_(index),
        fd_(fd),
        pid_(pid),
        credits_(credits),
        expected_hello_(expected_hello),
        pool_(pool),
        stats_(stats),
        max_frame_bytes_(max_frame_bytes) {}

  ~ProcessEndpoint() override { teardown(); }

  // ----- Endpoint -----
  void send(WorkerMessage message) override {
    throw_if_dead();
    const auto serde_begin = Clock::now();
    tx_.clear();
    if (auto* chunk = std::get_if<ChunkMessage>(&message)) {
      serde::encode_chunk(*chunk, tx_);
      chunk->c.release_to(*pool_);
    } else if (auto* operands = std::get_if<OperandMessage>(&message)) {
      serde::encode_operand(*operands, tx_);
      operands->a.release_to(*pool_);
      operands->b.release_to(*pool_);
    } else {
      serde::encode_cancel(std::get<CancelMessage>(message), tx_);
    }
    stats_->serde_seconds += seconds_since(serde_begin);

    // The bounded-inbox rule: no credit, no send. Pump while waiting so
    // results and credits keep flowing (and death is noticed).
    while (credits_ == 0 && !failed_) wait_io();
    throw_if_dead();
    --credits_;
    write_frame();
    ++stats_->messages_sent;
    stats_->bytes_sent += tx_.size();
  }

  std::optional<ResultMessage> try_recv() override {
    if (results_.empty() && !failed_) pump();
    return pop_result();
  }

  std::optional<ResultMessage> recv() override {
    pump();
    while (results_.empty() && !failed_) wait_io();
    return pop_result();
  }

  bool failed() const override { return failed_; }
  std::exception_ptr error() const override { return error_; }
  bool killed() const override { return killed_; }

  void kill() override {
    if (killed_) return;
    killed_ = true;
    if (pid_ > 0 && !reaped_) ::kill(pid_, SIGKILL);
    if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
  }

  void drain(BufferPool& pool) override {
    while (!results_.empty()) {
      results_.front().c.release_to(pool);
      results_.pop_front();
    }
    rx_.clear();
  }

  // ----- transport-internal -----
  /// Blocks until the child's bootstrap hello arrived (validating its
  /// kernel tier) or the child died on the launch pad. Bounded: a child
  /// wedged before its first frame (the fork-from-multithreaded-parent
  /// hazard, however unlikely under glibc) must fail the run loudly,
  /// never hang the master in an untimed poll.
  void wait_hello() {
    pump();
    const auto deadline = Clock::now() + std::chrono::seconds(30);
    while (!hello_seen_ && !failed_) {
      if (Clock::now() >= deadline) {
        mark_failed("no bootstrap hello within 30s");
        break;
      }
      wait_io(/*want_write=*/false, /*timeout_ms=*/1000);
    }
  }

  /// Graceful stop: half-close so the child sees EOF once it drains.
  void begin_shutdown() noexcept {
    discarding_ = true;
    if (fd_ >= 0 && !killed_) ::shutdown(fd_, SHUT_WR);
  }

  /// Drains the socket to EOF (unblocking a child mid-result), reaps
  /// the child and closes the fd. Idempotent.
  void finish_shutdown() noexcept {
    discarding_ = true;
    if (fd_ >= 0) {
      try {
        while (!eof_ && !failed_) wait_io();
      } catch (...) {
        // Corrupt trailing frames on a teardown path are ignorable.
      }
    }
    teardown();
  }

 private:
  void teardown() noexcept {
    // Close first: the EOF is what makes a still-draining child exit,
    // so the blocking reap below cannot hang on a healthy worker.
    if (fd_ >= 0) {
      ::close(fd_);
      fd_ = -1;
    }
    if (pid_ > 0 && !reaped_) {
      // A FAILED child may still be alive (wedged before its hello, or
      // spewing corrupt frames): nothing upstream is obliged to have
      // killed it, and waitpid must never block on a process that will
      // not exit. Killing an exited-but-unreaped child is a no-op (the
      // zombie pins the pid, so this cannot hit a recycled process).
      if (failed_) ::kill(pid_, SIGKILL);
      int status = 0;
      while (::waitpid(pid_, &status, 0) < 0 && errno == EINTR) {
      }
      reaped_ = true;
    }
  }

  [[noreturn]] void throw_dead() {
    std::rethrow_exception(error_);
  }
  void throw_if_dead() {
    if (failed_) throw_dead();
  }

  std::optional<ResultMessage> pop_result() {
    if (results_.empty()) return std::nullopt;
    ResultMessage result = std::move(results_.front());
    results_.pop_front();
    ++stats_->messages_received;
    return result;
  }

  /// Marks the endpoint dead, synthesizing the cause: a kError text if
  /// the child managed to ship one, the waitpid status otherwise.
  void mark_failed(const std::string& reason) {
    if (failed_) return;
    std::string what = "worker process " + std::to_string(index_) + ": " +
                       reason;
    if (pid_ > 0 && !reaped_) {
      int status = 0;
      const pid_t reaped = ::waitpid(pid_, &status, WNOHANG);
      if (reaped == pid_) {
        reaped_ = true;
        if (WIFSIGNALED(status)) {
          what += " (killed by signal " + std::to_string(WTERMSIG(status)) +
                  ")";
        } else if (WIFEXITED(status)) {
          what += " (exit status " + std::to_string(WEXITSTATUS(status)) +
                  ")";
        }
      }
    }
    error_ = std::make_exception_ptr(std::runtime_error(what));
    failed_ = true;
  }

  /// Ships the prepared frame, pumping inbound traffic whenever the
  /// socket back-pressures (the child must be able to hand a result
  /// back while the master is mid-send, or both would block forever).
  void write_frame() {
    std::size_t done = 0;
    while (done < tx_.size()) {
      const ssize_t n = ::send(fd_, tx_.data() + done, tx_.size() - done,
                               MSG_NOSIGNAL);
      if (n > 0) {
        done += static_cast<std::size_t>(n);
        continue;
      }
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
        wait_io(/*want_write=*/true);
        if (failed_) throw_dead();
        continue;
      }
      if (n < 0 && errno == EINTR) continue;
      mark_failed(std::string("send failed: ") + std::strerror(errno));
      throw_dead();
    }
  }

  /// Poll until the socket is readable (or writable, when asked), then
  /// absorb whatever arrived.
  void wait_io(bool want_write = false, int timeout_ms = -1) {
    if (eof_ || fd_ < 0) {
      if (!failed_) mark_failed("connection closed");
      return;
    }
    struct pollfd entry;
    entry.fd = fd_;
    entry.events = static_cast<short>(POLLIN | (want_write ? POLLOUT : 0));
    entry.revents = 0;
    const int ready = ::poll(&entry, 1, timeout_ms);
    if (ready < 0 && errno != EINTR) {
      mark_failed(std::string("poll failed: ") + std::strerror(errno));
      return;
    }
    pump();
  }

  /// Non-blocking absorb: reads everything available, parses complete
  /// frames, dispatches credits/results/hello/error, detects EOF.
  void pump() {
    if (eof_ || fd_ < 0) return;
    std::uint8_t buffer[1 << 16];
    for (;;) {
      const ssize_t n = ::recv(fd_, buffer, sizeof buffer, 0);
      if (n > 0) {
        rx_.insert(rx_.end(), buffer, buffer + n);
        if (static_cast<std::size_t>(n) < sizeof buffer) break;
        continue;
      }
      if (n == 0) {
        eof_ = true;
        break;
      }
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      if (errno == EINTR) continue;
      if (errno == ECONNRESET) {
        eof_ = true;
        break;
      }
      mark_failed(std::string("recv failed: ") + std::strerror(errno));
      return;
    }
    parse_frames();
    if (eof_ && !failed_ && !discarding_)
      mark_failed("exited unexpectedly (connection closed)");
  }

  void parse_frames() {
    std::size_t cursor = 0;
    while (rx_.size() - cursor >= serde::kLengthBytes) {
      std::uint64_t length = 0;
      try {
        // Geometry-derived bound: a corrupt prefix fails the endpoint
        // cleanly, it never sizes an allocation.
        length = serde::checked_frame_length(rx_.data() + cursor,
                                             max_frame_bytes_);
      } catch (const std::exception& error) {
        mark_failed(error.what());
        break;
      }
      if (rx_.size() - cursor - serde::kLengthBytes < length) break;
      try {
        dispatch(rx_.data() + cursor + serde::kLengthBytes,
                 static_cast<std::size_t>(length));
      } catch (const std::exception& error) {
        // Corrupt frame CONTENT is the same protocol death as a corrupt
        // length: the worker failed, the run recovers under
        // tolerate_faults -- it must never abort a tolerant run.
        mark_failed(std::string("protocol corruption: ") + error.what());
        break;
      }
      cursor += serde::kLengthBytes + static_cast<std::size_t>(length);
      stats_->bytes_received += serde::kLengthBytes +
                                static_cast<std::size_t>(length);
    }
    if (cursor > 0)
      rx_.erase(rx_.begin(),
                rx_.begin() + static_cast<std::ptrdiff_t>(cursor));
  }

  void dispatch(const std::uint8_t* body, std::size_t size) {
    switch (serde::frame_type(body, size)) {
      case FrameType::kCredit:
        ++credits_;
        break;
      case FrameType::kResult: {
        if (discarding_) break;
        const auto serde_begin = Clock::now();
        results_.push_back(serde::decode_result(body, size, *pool_));
        stats_->serde_seconds += seconds_since(serde_begin);
        break;
      }
      case FrameType::kHello: {
        // decode_hello validates magic and protocol version (throwing
        // with both versions named); the kernel fields are checked
        // here, identity/resource fields legitimately differ.
        const serde::HelloFrame hello = serde::decode_hello(body, size);
        HMXP_CHECK(hello.same_kernel_config(expected_hello_),
                   "worker process booted with a divergent kernel "
                   "configuration (tier/micro-kernel/tuned blocking)");
        hello_seen_ = true;
        break;
      }
      case FrameType::kError:
        mark_failed(serde::decode_error(body, size));
        break;
      default:
        mark_failed("unexpected frame from worker");
        break;
    }
  }

  int index_;
  int fd_;
  pid_t pid_;
  std::size_t credits_;
  serde::HelloFrame expected_hello_;
  BufferPool* pool_;
  TransportStats* stats_;
  ByteBuffer rx_;
  ByteBuffer tx_;
  std::deque<ResultMessage> results_;
  std::exception_ptr error_;
  bool failed_ = false;
  bool killed_ = false;
  bool eof_ = false;
  bool hello_seen_ = false;
  bool discarding_ = false;
  bool reaped_ = false;
  std::uint64_t max_frame_bytes_;
};

class ProcessTransport final : public Transport {
 public:
  ProcessTransport(int workers, std::size_t inbox_capacity,
                   const ExecutorOptions& options,
                   Clock::time_point run_begin, BufferPool* pool,
                   std::size_t max_payload_doubles)
      : endpoint_stats_(static_cast<std::size_t>(workers)) {
    // Capture the kernel configuration ONCE, in the master, before any
    // fork: the explicit pins (force_kernel_tier / --kernel,
    // force_micro_kernel_variant), the tier/variant the dispatch
    // resolved, and the tuned BlockingParams. current_kernel_config()
    // RESOLVES the blocking -- running the autotune search now, in the
    // master -- so every child inherits a settled winner and re-asserts
    // exactly this state instead of re-tuning behind the fork.
    const matrix::KernelConfig config = matrix::current_kernel_config();
    const serde::HelloFrame expected_hello = serde::local_hello(config);
    const std::uint64_t max_frame_bytes =
        options.max_frame_bytes != 0
            ? static_cast<std::uint64_t>(options.max_frame_bytes)
            : serde::max_frame_bytes_for(max_payload_doubles);

    const auto count = static_cast<std::size_t>(workers);
    // master_fds keeps every master-end NUMBER for the whole spawn loop
    // (even once an endpoint owns the fd): each child must close every
    // master end it inherited, or a dead child's socket would never
    // read as EOF and stray fds would pin dead sockets open.
    std::vector<int> master_fds(count, -1);
    std::vector<int> child_fds(count, -1);
    try {
      for (std::size_t i = 0; i < count; ++i) {
        int fds[2];
        HMXP_CHECK(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds) == 0,
                   "socketpair failed");
        master_fds[i] = fds[0];
        child_fds[i] = fds[1];
      }
      endpoints_.reserve(count);
      for (std::size_t i = 0; i < count; ++i) {
        const WorkerContext context =
            make_worker_context(options, static_cast<int>(i), run_begin);

        const pid_t pid = ::fork();
        HMXP_CHECK(pid >= 0, "fork failed");
        if (pid == 0) {
          // Child: keep only this worker's own end.
          for (std::size_t j = 0; j < count; ++j) {
            if (master_fds[j] >= 0) ::close(master_fds[j]);
            if (j != i && child_fds[j] >= 0) ::close(child_fds[j]);
          }
          run_child(child_fds[i], context, config,
                    max_frame_bytes);  // never returns
        }
        // Master: the child end belongs to the child now.
        ::close(child_fds[i]);
        child_fds[i] = -1;
        const int fd = master_fds[i];
        const int flags = ::fcntl(fd, F_GETFL, 0);
        HMXP_CHECK(flags >= 0 &&
                       ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0,
                   "fcntl O_NONBLOCK failed");
        endpoints_.push_back(std::make_unique<ProcessEndpoint>(
            static_cast<int>(i), fd, pid, inbox_capacity, expected_hello,
            pool, &endpoint_stats_[i], max_frame_bytes));
      }
    } catch (...) {
      // Endpoints own master_fds[0 .. endpoints_.size()); close the rest.
      for (std::size_t j = endpoints_.size(); j < count; ++j)
        if (master_fds[j] >= 0) ::close(master_fds[j]);
      for (const int fd : child_fds)
        if (fd >= 0) ::close(fd);
      shutdown();
      throw;
    }
    // Synchronize on every child's bootstrap handshake: launch-pad
    // deaths and kernel-tier mismatches surface here, not mid-run.
    for (auto& endpoint : endpoints_) endpoint->wait_hello();
  }

  ~ProcessTransport() override { shutdown(); }

  TransportKind kind() const override { return TransportKind::kProcess; }
  int worker_count() const override {
    return static_cast<int>(endpoints_.size());
  }
  Endpoint& endpoint(int worker) override {
    HMXP_REQUIRE(worker >= 0 &&
                     static_cast<std::size_t>(worker) < endpoints_.size(),
                 "worker index out of range");
    return *endpoints_[static_cast<std::size_t>(worker)];
  }

  void shutdown() noexcept override {
    for (auto& endpoint : endpoints_) endpoint->begin_shutdown();
    for (auto& endpoint : endpoints_) endpoint->finish_shutdown();
  }

  TransportStats stats() const override {
    TransportStats total;
    for (const TransportStats& slot : endpoint_stats_) total += slot;
    return total;
  }

 private:
  // One slot per endpoint (each writes only its own; stable addresses,
  // never resized) so concurrent fleet jobs never race on a counter.
  std::vector<TransportStats> endpoint_stats_;
  std::vector<std::unique_ptr<ProcessEndpoint>> endpoints_;
};

}  // namespace

std::unique_ptr<Transport> make_process_transport(
    int workers, std::size_t inbox_capacity, const ExecutorOptions& options,
    std::chrono::steady_clock::time_point run_begin, BufferPool* pool,
    std::size_t max_payload_doubles) {
  return std::make_unique<ProcessTransport>(workers, inbox_capacity, options,
                                            run_begin, pool,
                                            max_payload_doubles);
}

}  // namespace hmxp::runtime
