#include "runtime/serde.hpp"

#include <algorithm>
#include <cstring>
#include <stdexcept>
#include <thread>

#include <unistd.h>

#include "runtime/wire_compress.hpp"

namespace hmxp::runtime::serde {

namespace {

void require(bool ok, const char* what) {
  if (!ok) throw std::runtime_error(std::string("corrupt frame: ") + what);
}

std::string to_hex(std::uint32_t value) {
  static const char digits[] = "0123456789abcdef";
  std::string hex(8, '0');
  for (int i = 7; i >= 0; --i, value >>= 4)
    hex[static_cast<std::size_t>(i)] = digits[value & 0xf];
  return hex;
}

// ---- writer -----------------------------------------------------------------

class Writer {
 public:
  explicit Writer(ByteBuffer& out) : out_(out) {}

  void u8(std::uint8_t value) { out_.push_back(value); }
  void u32(std::uint32_t value) { raw(&value, sizeof value); }
  void u64(std::uint64_t value) { raw(&value, sizeof value); }
  void i64(std::int64_t value) { raw(&value, sizeof value); }
  void f64(double value) { raw(&value, sizeof value); }
  void doubles(const double* values, std::size_t count) {
    u64(count);
    if (count > 0) raw(values, count * sizeof(double));
  }
  void doubles(const std::vector<double>& values) {
    doubles(values.data(), values.size());
  }
  /// An arena payload as a (slot, length) descriptor -- the whole point
  /// of the shm transport: bytes stay in the slot, only this crosses.
  void slot_ref(const Payload& payload) {
    u64(payload.slot());
    u64(payload.size());
  }

 private:
  void raw(const void* data, std::size_t size) {
    const auto* bytes = static_cast<const std::uint8_t*>(data);
    out_.insert(out_.end(), bytes, bytes + size);
  }

  ByteBuffer& out_;
};

// ---- reader -----------------------------------------------------------------

class Reader {
 public:
  Reader(const std::uint8_t* data, std::size_t size)
      : data_(data), size_(size) {}

  std::uint8_t u8() {
    require(cursor_ + 1 <= size_, "truncated u8");
    return data_[cursor_++];
  }
  std::uint32_t u32() {
    std::uint32_t value;
    raw(&value, sizeof value);
    return value;
  }
  std::uint64_t u64() {
    std::uint64_t value;
    raw(&value, sizeof value);
    return value;
  }
  std::int64_t i64() {
    std::int64_t value;
    raw(&value, sizeof value);
    return value;
  }
  double f64() {
    double value;
    raw(&value, sizeof value);
    return value;
  }
  std::vector<double> doubles(BufferPool& pool) {
    const std::uint64_t count = u64();
    // Divide, don't multiply: a hostile count must not overflow the check.
    require(count <= (size_ - cursor_) / sizeof(double),
            "truncated doubles");
    std::vector<double> values =
        pool.acquire(static_cast<std::size_t>(count));
    if (count > 0) raw(values.data(), count * sizeof(double));
    return values;
  }
  /// Same, off-pool: for small per-chunk bookkeeping vectors whose
  /// storage is not worth recycling (matches the thread path, where
  /// step_seconds is a per-chunk allocation outside the pool's scope).
  std::vector<double> doubles_plain() {
    const std::uint64_t count = u64();
    require(count <= (size_ - cursor_) / sizeof(double),
            "truncated doubles");
    std::vector<double> values(static_cast<std::size_t>(count));
    if (count > 0) raw(values.data(), count * sizeof(double));
    return values;
  }
  /// Decodes a (slot, length) descriptor into a view of the shared
  /// slot, validating both against the arena's geometry.
  Payload slot_ref(SharedArena& arena) {
    const std::uint64_t slot = u64();
    const std::uint64_t count = u64();
    require(slot < arena.slot_count(), "arena slot out of range");
    require(count <= arena.slot_doubles(), "arena payload overflows slot");
    return Payload::arena_view(&arena, static_cast<std::uint32_t>(slot),
                               arena.slot_data(static_cast<std::uint32_t>(
                                   slot)),
                               static_cast<std::size_t>(count));
  }
  void done() const { require(cursor_ == size_, "trailing frame bytes"); }

 private:
  void raw(void* out, std::size_t size) {
    require(cursor_ + size <= size_, "truncated field");
    std::memcpy(out, data_ + cursor_, size);
    cursor_ += size;
  }

  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t cursor_ = 0;
};

// ---- plan (shared by chunk and result frames) -------------------------------

void write_plan(Writer& writer, const sim::ChunkPlan& plan) {
  writer.u64(plan.rect.i0);
  writer.u64(plan.rect.i1);
  writer.u64(plan.rect.j0);
  writer.u64(plan.rect.j1);
  writer.u64(plan.steps.size());
  for (const sim::StepPlan& step : plan.steps) {
    writer.i64(step.operand_blocks);
    writer.i64(step.updates);
    writer.u64(step.k_begin);
    writer.u64(step.k_end);
  }
  writer.i64(plan.prefetch_depth);
  writer.i64(plan.peak_override);
}

sim::ChunkPlan read_plan(Reader& reader) {
  sim::ChunkPlan plan;
  plan.rect.i0 = static_cast<std::size_t>(reader.u64());
  plan.rect.i1 = static_cast<std::size_t>(reader.u64());
  plan.rect.j0 = static_cast<std::size_t>(reader.u64());
  plan.rect.j1 = static_cast<std::size_t>(reader.u64());
  const std::uint64_t steps = reader.u64();
  require(steps <= 1u << 24, "absurd step count");
  plan.steps.resize(static_cast<std::size_t>(steps));
  for (sim::StepPlan& step : plan.steps) {
    step.operand_blocks = reader.i64();
    step.updates = reader.i64();
    step.k_begin = static_cast<std::size_t>(reader.u64());
    step.k_end = static_cast<std::size_t>(reader.u64());
  }
  plan.prefetch_depth = static_cast<int>(reader.i64());
  plan.peak_override = reader.i64();
  return plan;
}

/// Reserves the length prefix, runs `fill`, then patches the prefix
/// with the number of bytes the body occupied.
template <typename Fill>
void frame(ByteBuffer& out, Fill&& fill) {
  const std::size_t prefix_at = out.size();
  out.resize(out.size() + kLengthBytes);
  fill();
  const std::uint64_t length = out.size() - prefix_at - kLengthBytes;
  std::memcpy(out.data() + prefix_at, &length, sizeof length);
}

}  // namespace

void encode_chunk(const ChunkMessage& message, ByteBuffer& out) {
  frame(out, [&] {
    Writer writer(out);
    writer.u8(static_cast<std::uint8_t>(FrameType::kChunk));
    write_plan(writer, message.plan);
    writer.u64(message.element_rows);
    writer.u64(message.element_cols);
    // seq travels BEFORE the payload: a decoder that throws past this
    // point would destroy an already-acquired payload (returning a pool
    // vector -- or worse, an arena slot the sender still owns -- behind
    // the caller's back), so every fallible field precedes acquisition.
    writer.u64(message.seq);
    writer.doubles(message.c.data(), message.c.size());
  });
}

void encode_operand(const OperandMessage& message, ByteBuffer& out) {
  frame(out, [&] {
    Writer writer(out);
    writer.u8(static_cast<std::uint8_t>(FrameType::kOperand));
    writer.u64(message.step);
    writer.u64(message.k_elem_begin);
    writer.u64(message.k_elems);
    writer.doubles(message.a.data(), message.a.size());
    writer.doubles(message.b.data(), message.b.size());
  });
}

void encode_result(const ResultMessage& message, ByteBuffer& out) {
  frame(out, [&] {
    Writer writer(out);
    writer.u8(static_cast<std::uint8_t>(FrameType::kResult));
    write_plan(writer, message.plan);
    writer.u64(message.element_rows);
    writer.u64(message.element_cols);
    writer.u64(message.seq);  // before the payload (see encode_chunk)
    writer.doubles(message.c.data(), message.c.size());
    writer.u64(message.updates_performed);
    writer.doubles(message.step_seconds);
  });
}

void encode_cancel(const CancelMessage& message, ByteBuffer& out) {
  frame(out, [&] {
    Writer writer(out);
    writer.u8(static_cast<std::uint8_t>(FrameType::kCancel));
    writer.u64(message.seq);
  });
}

void encode_control(FrameType type, ByteBuffer& out) {
  frame(out, [&] {
    Writer writer(out);
    writer.u8(static_cast<std::uint8_t>(type));
  });
}

void encode_hello(const HelloFrame& hello, ByteBuffer& out) {
  frame(out, [&] {
    Writer writer(out);
    writer.u8(static_cast<std::uint8_t>(FrameType::kHello));
    writer.u32(hello.magic);
    writer.u32(hello.version);
    writer.u64(hello.token);
    writer.u32(hello.cores);
    writer.u64(hello.memory_mb);
    writer.u8(hello.kernel_tier);
    writer.u8(hello.kernel_variant);
    writer.u64(hello.mc);
    writer.u64(hello.kc);
    writer.u64(hello.nc);
  });
}

HelloFrame local_hello(const matrix::KernelConfig& config) {
  HelloFrame hello;
  hello.cores = std::max(1u, std::thread::hardware_concurrency());
  const long pages = ::sysconf(_SC_PHYS_PAGES);
  const long page_size = ::sysconf(_SC_PAGESIZE);
  if (pages > 0 && page_size > 0)
    hello.memory_mb = (static_cast<std::uint64_t>(pages) *
                       static_cast<std::uint64_t>(page_size)) >>
                      20;
  hello.kernel_tier = static_cast<std::uint8_t>(config.active_tier);
  hello.kernel_variant = static_cast<std::uint8_t>(config.active_variant);
  hello.mc = static_cast<std::uint64_t>(config.blocking.mc);
  hello.kc = static_cast<std::uint64_t>(config.blocking.kc);
  hello.nc = static_cast<std::uint64_t>(config.blocking.nc);
  return hello;
}

void encode_error(const std::string& what, ByteBuffer& out) {
  frame(out, [&] {
    Writer writer(out);
    writer.u8(static_cast<std::uint8_t>(FrameType::kError));
    writer.u64(what.size());
    for (const char character : what)
      writer.u8(static_cast<std::uint8_t>(character));
  });
}

std::uint64_t decode_length(const std::uint8_t* data) {
  std::uint64_t length;
  std::memcpy(&length, data, sizeof length);
  return length;
}

std::uint64_t max_frame_bytes_for(std::size_t max_payload_doubles) {
  // An operand batch ships two payloads (A and B); 64 KiB covers every
  // header field with room to spare.
  const std::uint64_t bytes =
      2 * static_cast<std::uint64_t>(max_payload_doubles) * sizeof(double) +
      (1ull << 16);
  return std::min(bytes, kMaxFrameBytes);
}

std::uint64_t checked_frame_length(const std::uint8_t* data,
                                   std::uint64_t limit) {
  const std::uint64_t length = decode_length(data);
  if (length == 0 || length > limit)
    throw std::runtime_error(
        "corrupt frame length " + std::to_string(length) + " (limit " +
        std::to_string(limit) + " bytes): refusing to allocate");
  return length;
}

FrameType frame_type(const std::uint8_t* body, std::size_t size) {
  require(size >= 1, "empty frame");
  const std::uint8_t type = body[0];
  require(type >= static_cast<std::uint8_t>(FrameType::kChunk) &&
              type <= static_cast<std::uint8_t>(FrameType::kCompressed),
          "unknown frame type");
  return static_cast<FrameType>(type);
}

void encode_compressed(const std::uint8_t* body, std::size_t size,
                       ByteBuffer& out) {
  frame(out, [&] {
    Writer writer(out);
    writer.u8(static_cast<std::uint8_t>(FrameType::kCompressed));
    writer.u64(size);
    wire::compress(body, size, out);
  });
}

void decode_compressed(const std::uint8_t* body, std::size_t size,
                       std::uint64_t max_raw, ByteBuffer& raw) {
  require(frame_type(body, size) == FrameType::kCompressed,
          "not a compressed frame");
  require(size >= 1 + sizeof(std::uint64_t), "truncated compressed header");
  std::uint64_t raw_size;
  std::memcpy(&raw_size, body + 1, sizeof raw_size);
  // The same no-unbounded-allocation rule as the outer length prefix:
  // the declared raw size gates the resize, so a hostile wrapper cannot
  // expand past what the run could legitimately ship.
  if (raw_size == 0 || raw_size > max_raw)
    throw std::runtime_error(
        "compressed frame declares raw size " + std::to_string(raw_size) +
        " (limit " + std::to_string(max_raw) + " bytes): refusing to inflate");
  raw.resize(static_cast<std::size_t>(raw_size));
  wire::decompress(body + 1 + sizeof raw_size, size - 1 - sizeof raw_size,
                   raw.data(), raw.size());
  require(frame_type(raw.data(), raw.size()) != FrameType::kCompressed,
          "nested compressed frame");
}

ChunkMessage decode_chunk(const std::uint8_t* body, std::size_t size,
                          BufferPool& pool) {
  require(frame_type(body, size) == FrameType::kChunk, "not a chunk frame");
  Reader reader(body + 1, size - 1);
  ChunkMessage message;
  message.plan = read_plan(reader);
  message.element_rows = static_cast<std::size_t>(reader.u64());
  message.element_cols = static_cast<std::size_t>(reader.u64());
  message.seq = reader.u64();
  message.c = reader.doubles(pool);
  reader.done();
  require(message.c.size() == message.element_rows * message.element_cols,
          "chunk payload shape mismatch");
  return message;
}

OperandMessage decode_operand(const std::uint8_t* body, std::size_t size,
                              BufferPool& pool) {
  require(frame_type(body, size) == FrameType::kOperand,
          "not an operand frame");
  Reader reader(body + 1, size - 1);
  OperandMessage message;
  message.step = static_cast<std::size_t>(reader.u64());
  message.k_elem_begin = static_cast<std::size_t>(reader.u64());
  message.k_elems = static_cast<std::size_t>(reader.u64());
  message.a = reader.doubles(pool);
  message.b = reader.doubles(pool);
  reader.done();
  return message;
}

ResultMessage decode_result(const std::uint8_t* body, std::size_t size,
                            BufferPool& pool) {
  require(frame_type(body, size) == FrameType::kResult,
          "not a result frame");
  Reader reader(body + 1, size - 1);
  ResultMessage message;
  message.plan = read_plan(reader);
  message.element_rows = static_cast<std::size_t>(reader.u64());
  message.element_cols = static_cast<std::size_t>(reader.u64());
  message.seq = reader.u64();
  message.c = reader.doubles(pool);
  message.updates_performed = static_cast<std::size_t>(reader.u64());
  message.step_seconds = reader.doubles_plain();
  reader.done();
  require(message.c.size() == message.element_rows * message.element_cols,
          "result payload shape mismatch");
  return message;
}

CancelMessage decode_cancel(const std::uint8_t* body, std::size_t size) {
  require(frame_type(body, size) == FrameType::kCancel,
          "not a cancel frame");
  Reader reader(body + 1, size - 1);
  CancelMessage message;
  message.seq = reader.u64();
  reader.done();
  return message;
}

HelloFrame decode_hello(const std::uint8_t* body, std::size_t size) {
  require(frame_type(body, size) == FrameType::kHello, "not a hello frame");
  Reader reader(body, size);
  reader.u8();  // frame type, already validated
  HelloFrame hello;
  // Identity gates layout: magic first (is this an hmxp worker at
  // all?), version second (does it speak THIS frame layout?), and only
  // then the fields whose layout the version vouches for. Each mismatch
  // is its own clean error naming both sides.
  hello.magic = reader.u32();
  if (hello.magic != kProtocolMagic)
    throw std::runtime_error(
        "handshake magic mismatch (got 0x" + to_hex(hello.magic) +
        ", want 0x" + to_hex(kProtocolMagic) +
        "): peer is not an hmxp worker");
  hello.version = reader.u32();
  if (hello.version != kProtocolVersion)
    throw std::runtime_error(
        "protocol version mismatch: peer speaks v" +
        std::to_string(hello.version) + ", this build speaks v" +
        std::to_string(kProtocolVersion));
  hello.token = reader.u64();
  hello.cores = reader.u32();
  hello.memory_mb = reader.u64();
  hello.kernel_tier = reader.u8();
  hello.kernel_variant = reader.u8();
  hello.mc = reader.u64();
  hello.kc = reader.u64();
  hello.nc = reader.u64();
  reader.done();
  return hello;
}

// ---- descriptor frames (shm transport) --------------------------------------

namespace {

void require_arena_payload(const Payload& payload, const char* what) {
  if (!payload.in_arena())
    throw std::logic_error(std::string("shm frame payload not in arena: ") +
                           what);
}

}  // namespace

void encode_chunk_ref(const ChunkMessage& message, ByteBuffer& out) {
  require_arena_payload(message.c, "chunk C");
  frame(out, [&] {
    Writer writer(out);
    writer.u8(static_cast<std::uint8_t>(FrameType::kChunkRef));
    write_plan(writer, message.plan);
    writer.u64(message.element_rows);
    writer.u64(message.element_cols);
    writer.u64(message.seq);  // before the slot ref (see encode_chunk)
    writer.slot_ref(message.c);
  });
}

void encode_operand_ref(const OperandMessage& message, ByteBuffer& out) {
  require_arena_payload(message.a, "operand A");
  require_arena_payload(message.b, "operand B");
  frame(out, [&] {
    Writer writer(out);
    writer.u8(static_cast<std::uint8_t>(FrameType::kOperandRef));
    writer.u64(message.step);
    writer.u64(message.k_elem_begin);
    writer.u64(message.k_elems);
    writer.slot_ref(message.a);
    writer.slot_ref(message.b);
  });
}

void encode_result_ref(const ResultMessage& message, ByteBuffer& out) {
  require_arena_payload(message.c, "result C");
  frame(out, [&] {
    Writer writer(out);
    writer.u8(static_cast<std::uint8_t>(FrameType::kResultRef));
    write_plan(writer, message.plan);
    writer.u64(message.element_rows);
    writer.u64(message.element_cols);
    writer.u64(message.seq);  // before the slot ref (see encode_chunk)
    writer.slot_ref(message.c);
    writer.u64(message.updates_performed);
    writer.doubles(message.step_seconds);
  });
}

ChunkMessage decode_chunk_ref(const std::uint8_t* body, std::size_t size,
                              SharedArena& arena) {
  require(frame_type(body, size) == FrameType::kChunkRef,
          "not a chunk-ref frame");
  Reader reader(body + 1, size - 1);
  ChunkMessage message;
  message.plan = read_plan(reader);
  message.element_rows = static_cast<std::size_t>(reader.u64());
  message.element_cols = static_cast<std::size_t>(reader.u64());
  message.seq = reader.u64();
  message.c = reader.slot_ref(arena);
  reader.done();
  require(message.c.size() == message.element_rows * message.element_cols,
          "chunk payload shape mismatch");
  return message;
}

OperandMessage decode_operand_ref(const std::uint8_t* body, std::size_t size,
                                  SharedArena& arena) {
  require(frame_type(body, size) == FrameType::kOperandRef,
          "not an operand-ref frame");
  Reader reader(body + 1, size - 1);
  OperandMessage message;
  message.step = static_cast<std::size_t>(reader.u64());
  message.k_elem_begin = static_cast<std::size_t>(reader.u64());
  message.k_elems = static_cast<std::size_t>(reader.u64());
  message.a = reader.slot_ref(arena);
  message.b = reader.slot_ref(arena);
  reader.done();
  return message;
}

ResultMessage decode_result_ref(const std::uint8_t* body, std::size_t size,
                                SharedArena& arena) {
  require(frame_type(body, size) == FrameType::kResultRef,
          "not a result-ref frame");
  Reader reader(body + 1, size - 1);
  ResultMessage message;
  message.plan = read_plan(reader);
  message.element_rows = static_cast<std::size_t>(reader.u64());
  message.element_cols = static_cast<std::size_t>(reader.u64());
  message.seq = reader.u64();
  message.c = reader.slot_ref(arena);
  message.updates_performed = static_cast<std::size_t>(reader.u64());
  message.step_seconds = reader.doubles_plain();
  reader.done();
  require(message.c.size() == message.element_rows * message.element_cols,
          "result payload shape mismatch");
  return message;
}

std::string decode_error(const std::uint8_t* body, std::size_t size) {
  require(frame_type(body, size) == FrameType::kError, "not an error frame");
  Reader reader(body + 1, size - 1);
  const std::uint64_t length = reader.u64();
  require(length == size - 1 - sizeof(std::uint64_t), "error frame size");
  std::string what;
  what.reserve(static_cast<std::size_t>(length));
  for (std::uint64_t i = 0; i < length; ++i)
    what.push_back(static_cast<char>(reader.u8()));
  reader.done();
  return what;
}

}  // namespace hmxp::runtime::serde
