// Frame serialization for the process transport's data plane.
//
// Every message crossing a worker socket is one length-prefixed frame:
//
//   [u64 length][u8 FrameType][payload...]
//
// where `length` counts everything after itself (type byte included).
// Integers and doubles are host-endian raw bytes: both ends of a
// socketpair(2) are the same machine by construction (a cross-machine
// MPI/ssh transport would pin endianness here and change nothing else).
//
// Payload element vectors (the dense C / A / B windows) are checked out
// of the caller's BufferPool on decode, so a steady-state master
// deserializes results without allocating -- the same recycling
// discipline the zero-copy thread transport enjoys.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "matrix/tuning.hpp"
#include "runtime/buffer_pool.hpp"
#include "runtime/messages.hpp"
#include "runtime/shared_arena.hpp"

namespace hmxp::runtime::serde {

enum class FrameType : std::uint8_t {
  kChunk = 1,    // master -> worker: ChunkMessage
  kOperand = 2,  // master -> worker: OperandMessage
  kResult = 3,   // worker -> master: ResultMessage
  kCredit = 4,   // worker -> master: one inbox slot freed (empty payload)
  kHello = 5,    // worker -> master: bootstrap handshake (kernel tier)
  kError = 6,    // worker -> master: death notice with the what() text
  // Descriptor twins for the zero-copy shm transport: the same message
  // metadata, but payloads are (arena slot, length) references into the
  // run's SharedArena instead of inline bytes.
  kChunkRef = 7,    // master -> worker: ChunkMessage, C in an arena slot
  kOperandRef = 8,  // master -> worker: OperandMessage, A/B in arena slots
  kResultRef = 9,   // worker -> master: ResultMessage, C in an arena slot
  kCancel = 10,     // master -> worker: CancelMessage (seq only, no payload)
  kGoodbye = 11,    // master -> worker: clean shutdown (TCP: EOF without a
                    // goodbye means the CONNECTION died -- reconnect)
  kCompressed = 12,  // either direction: a whole frame body, zero-RLE
                     // compressed ([u64 raw size][stream]); never nested
};

using ByteBuffer = std::vector<std::uint8_t>;

/// Bytes of the [u64 length] prefix.
inline constexpr std::size_t kLengthBytes = sizeof(std::uint64_t);

/// Absolute ceiling on one frame, any run: beyond this is protocol
/// corruption whatever the geometry (per-run limits from
/// max_frame_bytes_for are far tighter).
inline constexpr std::uint64_t kMaxFrameBytes = 1ull << 40;

/// The largest legitimate frame for a run whose biggest single payload
/// is `max_payload_doubles` (from the partition geometry): one operand
/// batch ships TWO payloads (A and B), plus generous header slack.
/// Every transport derives its per-endpoint frame limit here, so a
/// corrupt 8-byte length prefix can never drive an allocation beyond
/// what the run could legitimately ship.
std::uint64_t max_frame_bytes_for(std::size_t max_payload_doubles);

/// Decodes and VALIDATES a length prefix: throws std::runtime_error
/// (naming both the declared length and the limit) when the declared
/// length is zero or exceeds `limit`. Call this -- never bare
/// decode_length -- before sizing any buffer from wire data.
std::uint64_t checked_frame_length(const std::uint8_t* data,
                                   std::uint64_t limit);

/// Appends a complete frame (length prefix + type + payload) for the
/// message to `out`. The encoders never clear `out`, so a caller can
/// batch frames into one write.
void encode_chunk(const ChunkMessage& message, ByteBuffer& out);
void encode_operand(const OperandMessage& message, ByteBuffer& out);
void encode_result(const ResultMessage& message, ByteBuffer& out);
void encode_cancel(const CancelMessage& message, ByteBuffer& out);
/// Payload-free control frame (kCredit).
void encode_control(FrameType type, ByteBuffer& out);

/// Handshake identity: the magic marks a peer as an hmxp worker at all,
/// the version gates the frame layout. Bump kProtocolVersion on ANY
/// wire-visible change; a mismatched peer then gets one clean error
/// naming both versions instead of silently misparsing the next frame.
inline constexpr std::uint32_t kProtocolMagic = 0x50584d48;  // "HMXP"
inline constexpr std::uint32_t kProtocolVersion = 1;

/// Bootstrap handshake payload: protocol identity (magic + version),
/// the worker's identity token and advertised host resources (TCP), and
/// its full kernel configuration -- dispatch tier, micro-kernel
/// variant, and the tuned blocking parameters -- so the master can
/// verify a forked worker computes with the IDENTICAL configuration it
/// resolved (autotuned) before forking. A divergent worker (stale env
/// pin, different tuned blocking) would silently produce different tile
/// timings; the handshake turns that into an immediate, attributable
/// failure.
struct HelloFrame {
  std::uint32_t magic = kProtocolMagic;
  std::uint32_t version = kProtocolVersion;
  /// Per-worker identity for the TCP accept/reconnect lifecycle: a
  /// reconnecting worker presents the same token and is re-admitted to
  /// its endpoint instead of treated as a stranger. 0 on socketpair
  /// transports (the fd IS the identity there).
  std::uint64_t token = 0;
  /// Advertised host resources (hardware threads, physical MiB): the
  /// per-client capability report a real cluster master tracks.
  std::uint32_t cores = 0;
  std::uint64_t memory_mb = 0;
  std::uint8_t kernel_tier = 0;
  std::uint8_t kernel_variant = 0;
  std::uint64_t mc = 0;
  std::uint64_t kc = 0;
  std::uint64_t nc = 0;
  friend bool operator==(const HelloFrame&, const HelloFrame&) = default;
  /// True when the peer runs the same kernel configuration (identity,
  /// resources and token excluded: those legitimately differ per host).
  bool same_kernel_config(const HelloFrame& other) const {
    return kernel_tier == other.kernel_tier &&
           kernel_variant == other.kernel_variant && mc == other.mc &&
           kc == other.kc && nc == other.nc;
  }
};

void encode_hello(const HelloFrame& hello, ByteBuffer& out);
/// The hello THIS build answers for `config`: protocol identity plus
/// the advertised host resources (hardware threads, physical memory).
/// The one construction every spawning transport shares -- a worker
/// always advertises the configuration it ACTUALLY runs, so the caller
/// re-reads current_kernel_config() rather than echoing the master's.
HelloFrame local_hello(const matrix::KernelConfig& config);
/// Death notice: a dying worker ships its exception text so the master
/// can rethrow the real root cause (a child cannot share an
/// exception_ptr across the fork boundary).
void encode_error(const std::string& what, ByteBuffer& out);

/// Frame length declared by a complete prefix at `data` (which must
/// hold at least kLengthBytes). RAW: trusts the wire bytes -- use
/// checked_frame_length anywhere the value sizes an allocation.
std::uint64_t decode_length(const std::uint8_t* data);

/// Wraps one already-encoded frame BODY (type byte + payload, `size`
/// bytes) as a complete kCompressed frame appended to `out`:
/// [u64 length][kCompressed][u64 raw size][zero-RLE stream].
void encode_compressed(const std::uint8_t* body, std::size_t size,
                       ByteBuffer& out);
/// Unwraps a kCompressed body into the original frame body. The
/// declared raw size is validated against `max_raw` BEFORE allocating,
/// and a nested kCompressed payload is rejected (a decompression bomb
/// must not recurse).
void decode_compressed(const std::uint8_t* body, std::size_t size,
                       std::uint64_t max_raw, ByteBuffer& raw);

/// Decoders for one frame BODY (type byte + payload, i.e. `length`
/// bytes starting after the prefix). They validate the type byte and
/// every interior length; a truncated or corrupt frame throws
/// std::runtime_error. Element vectors are acquired from `pool`.
ChunkMessage decode_chunk(const std::uint8_t* body, std::size_t size,
                          BufferPool& pool);
OperandMessage decode_operand(const std::uint8_t* body, std::size_t size,
                              BufferPool& pool);
ResultMessage decode_result(const std::uint8_t* body, std::size_t size,
                            BufferPool& pool);
CancelMessage decode_cancel(const std::uint8_t* body, std::size_t size);
/// Type byte of a frame body (size must be >= 1).
FrameType frame_type(const std::uint8_t* body, std::size_t size);
/// Kernel configuration of a kHello body.
HelloFrame decode_hello(const std::uint8_t* body, std::size_t size);
/// Exception text of a kError body.
std::string decode_error(const std::uint8_t* body, std::size_t size);

// ---- descriptor frames (shm transport) --------------------------------------
//
// The encoders require every payload to be an arena view (the shm
// transport packs windows into slots before encoding) and write only
// (slot, length) pairs; the decoders validate the slot index and length
// against `arena` and hand back messages whose payloads are views into
// the SAME shared slots -- no payload byte is ever copied. A decoded
// message OWNS its slots (Payload releases them back to the arena), so
// the encoder side must detach after shipping the frame.

void encode_chunk_ref(const ChunkMessage& message, ByteBuffer& out);
void encode_operand_ref(const OperandMessage& message, ByteBuffer& out);
void encode_result_ref(const ResultMessage& message, ByteBuffer& out);

ChunkMessage decode_chunk_ref(const std::uint8_t* body, std::size_t size,
                              SharedArena& arena);
OperandMessage decode_operand_ref(const std::uint8_t* body, std::size_t size,
                                  SharedArena& arena);
ResultMessage decode_result_ref(const std::uint8_t* body, std::size_t size,
                                SharedArena& arena);

}  // namespace hmxp::runtime::serde
