#include "runtime/shared_arena.hpp"

#include <cstring>
#include <new>

#include <sys/mman.h>

#include "util/check.hpp"

namespace hmxp::runtime {

namespace {

constexpr std::size_t kCacheLine = 64;

std::size_t align_up(std::size_t value, std::size_t alignment) {
  return (value + alignment - 1) / alignment * alignment;
}

}  // namespace

/// Shared bookkeeping at the head of the mapping. Every field is an
/// atomic living in MAP_SHARED memory, concurrently touched by the
/// master and by forked workers: they must be address-free, which
/// lock-free std::atomic on every supported target guarantees.
struct SharedArena::Header {
  std::atomic<std::uint64_t> acquires;
  std::atomic<std::uint64_t> releases;
  std::atomic<std::uint32_t> in_use;
  std::atomic<std::uint32_t> peak_in_use;
};

static_assert(std::atomic<std::uint32_t>::is_always_lock_free,
              "shared-arena owner tags must be lock-free atomics");
static_assert(std::atomic<std::uint64_t>::is_always_lock_free,
              "shared-arena counters must be lock-free atomics");

SharedArena::Header* SharedArena::header() const {
  return static_cast<Header*>(map_);
}

std::atomic<std::uint32_t>* SharedArena::owners() const {
  return reinterpret_cast<std::atomic<std::uint32_t>*>(
      static_cast<std::uint8_t*>(map_) + align_up(sizeof(Header), kCacheLine));
}

SharedArena::SharedArena(std::size_t slot_count, std::size_t slot_doubles)
    : slot_count_(slot_count), slot_doubles_(slot_doubles) {
  HMXP_REQUIRE(slot_count > 0, "shared arena needs at least one slot");
  HMXP_REQUIRE(slot_doubles > 0, "shared arena slots must hold elements");
  HMXP_REQUIRE(slot_count < kMaster, "absurd shared-arena slot count");

  const std::size_t owners_offset = align_up(sizeof(Header), kCacheLine);
  slots_offset_ = align_up(
      owners_offset + slot_count * sizeof(std::atomic<std::uint32_t>),
      kCacheLine);
  slot_stride_ = align_up(slot_doubles * sizeof(double), kCacheLine);
  map_bytes_ = slots_offset_ + slot_count * slot_stride_;

  // NORESERVE: slots are sized for the worst payload, but pages are
  // only committed for bytes a run actually writes.
  map_ = ::mmap(nullptr, map_bytes_, PROT_READ | PROT_WRITE,
                MAP_SHARED | MAP_ANONYMOUS | MAP_NORESERVE, -1, 0);
  HMXP_CHECK(map_ != MAP_FAILED, "shared arena mmap failed");

  new (map_) Header{};
  std::atomic<std::uint32_t>* tags = owners();
  for (std::size_t i = 0; i < slot_count_; ++i)
    new (&tags[i]) std::atomic<std::uint32_t>(kFree);
}

SharedArena::~SharedArena() {
  if (map_ != nullptr && map_ != MAP_FAILED) ::munmap(map_, map_bytes_);
}

std::optional<SharedArena::Slot> SharedArena::try_acquire(
    std::uint32_t owner) {
  HMXP_REQUIRE(owner != kFree, "kFree is not a valid slot owner");
  std::atomic<std::uint32_t>* tags = owners();
  for (std::uint32_t i = 0; i < slot_count_; ++i) {
    std::uint32_t expected = kFree;
    if (tags[i].compare_exchange_strong(expected, owner,
                                        std::memory_order_acquire,
                                        std::memory_order_relaxed)) {
      Header* head = header();
      head->acquires.fetch_add(1, std::memory_order_relaxed);
      const std::uint32_t now_in_use =
          head->in_use.fetch_add(1, std::memory_order_relaxed) + 1;
      std::uint32_t peak = head->peak_in_use.load(std::memory_order_relaxed);
      while (peak < now_in_use &&
             !head->peak_in_use.compare_exchange_weak(
                 peak, now_in_use, std::memory_order_relaxed)) {
      }
      return Slot{i, slot_data(i)};
    }
  }
  return std::nullopt;
}

double* SharedArena::slot_data(std::uint32_t slot) const {
  HMXP_REQUIRE(slot < slot_count_, "arena slot index out of range");
  return reinterpret_cast<double*>(static_cast<std::uint8_t*>(map_) +
                                   slots_offset_ + slot * slot_stride_);
}

bool SharedArena::release(std::uint32_t slot) {
  HMXP_REQUIRE(slot < slot_count_, "arena slot index out of range");
  // Exchange, not store: a slot the crash-reclamation sweep already
  // freed (master reaping a dying worker whose final release raced the
  // SIGKILL) must not be double-counted -- or worse, freed again after
  // someone else re-acquired it. The release store pairs with the
  // acquire CAS in try_acquire, so payload writes are visible to the
  // next owner.
  const std::uint32_t previous =
      owners()[slot].exchange(kFree, std::memory_order_release);
  if (previous == kFree) return false;
  header()->releases.fetch_add(1, std::memory_order_relaxed);
  header()->in_use.fetch_sub(1, std::memory_order_relaxed);
  return true;
}

std::size_t SharedArena::release_all_owned_by(std::uint32_t owner) {
  HMXP_REQUIRE(owner != kFree, "kFree is not a valid slot owner");
  std::atomic<std::uint32_t>* tags = owners();
  std::size_t reclaimed = 0;
  for (std::uint32_t i = 0; i < slot_count_; ++i) {
    std::uint32_t expected = owner;
    // CAS, not exchange: only slots STILL tagged `owner` are reclaimed;
    // anything the worker released before dying (and possibly already
    // re-acquired for another worker) is left alone.
    if (tags[i].compare_exchange_strong(expected, kFree,
                                        std::memory_order_acq_rel,
                                        std::memory_order_relaxed)) {
      header()->releases.fetch_add(1, std::memory_order_relaxed);
      header()->in_use.fetch_sub(1, std::memory_order_relaxed);
      ++reclaimed;
    }
  }
  return reclaimed;
}

std::size_t SharedArena::release_all() {
  std::atomic<std::uint32_t>* tags = owners();
  std::size_t leaked = 0;
  for (std::uint32_t i = 0; i < slot_count_; ++i) {
    const std::uint32_t previous =
        tags[i].exchange(kFree, std::memory_order_acq_rel);
    if (previous == kFree) continue;
    header()->releases.fetch_add(1, std::memory_order_relaxed);
    header()->in_use.fetch_sub(1, std::memory_order_relaxed);
    ++leaked;
  }
  return leaked;
}

std::size_t SharedArena::in_use() const {
  return header()->in_use.load(std::memory_order_relaxed);
}

SharedArena::Stats SharedArena::stats() const {
  const Header* head = header();
  Stats stats;
  stats.acquires = head->acquires.load(std::memory_order_relaxed);
  stats.releases = head->releases.load(std::memory_order_relaxed);
  stats.in_use = head->in_use.load(std::memory_order_relaxed);
  stats.peak_in_use = head->peak_in_use.load(std::memory_order_relaxed);
  return stats;
}

}  // namespace hmxp::runtime
