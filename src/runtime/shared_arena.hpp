// Cross-process payload arena for the zero-copy shm transport: a
// mmap'd MAP_SHARED | MAP_ANONYMOUS region created by the master BEFORE
// it forks its workers, so every child inherits the same mapping at the
// same address. Operand and result element windows live in fixed-size
// 64-byte-aligned slots inside the region; control frames on the
// socketpair then carry (slot, length) descriptors instead of payload
// bytes -- the serde and kernel-socket copies of the process transport
// disappear from the hot path entirely.
//
// The arena is the cross-process sibling of runtime::BufferPool: where
// the pool recycles heap vectors inside one address space, the arena
// recycles shared slots across address spaces. Slot state is an atomic
// owner tag per slot living INSIDE the shared mapping (lock-free, and
// address-free as required for MAP_SHARED atomics), so:
//
//   * the master acquires slots (tagging each with the worker it is
//     destined for) and blocks its send path when none is free -- arena
//     capacity is backpressure, the natural generalization of the
//     process transport's buffer credits;
//   * a worker releases consumed operand slots directly through shared
//     memory -- a single atomic store, so even a SIGKILL cannot leave a
//     release half-done;
//   * when a worker dies without unwinding, the master reclaims every
//     slot still tagged with that worker (release_all_owned_by), which
//     is what keeps fault-tolerant recovery leak-free.
//
// Acquire/release counters (also shared) make "no slot leaked at
// shutdown" an assertable property, mirroring BufferPool::Stats.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <optional>

namespace hmxp::runtime {

class SharedArena {
 public:
  /// Owner tag of a free slot. Valid owners are small non-negative
  /// integers (worker indices); the master may also tag with kMaster.
  static constexpr std::uint32_t kFree = 0xffffffffu;
  static constexpr std::uint32_t kMaster = 0xfffffffeu;

  struct Slot {
    std::uint32_t index = 0;
    double* data = nullptr;
  };

  struct Stats {
    std::uint64_t acquires = 0;
    std::uint64_t releases = 0;
    std::size_t in_use = 0;
    std::size_t peak_in_use = 0;
  };

  /// Maps `slot_count` slots of `slot_doubles` doubles each. The
  /// mapping is MAP_NORESERVE: virtual space is cheap, physical pages
  /// materialize only for bytes actually written, so generously sized
  /// slots cost only what the run really touches.
  SharedArena(std::size_t slot_count, std::size_t slot_doubles);
  ~SharedArena();

  SharedArena(const SharedArena&) = delete;
  SharedArena& operator=(const SharedArena&) = delete;

  std::size_t slot_count() const { return slot_count_; }
  std::size_t slot_doubles() const { return slot_doubles_; }

  /// Claims a free slot for `owner` (CAS on the slot's owner tag);
  /// nullopt when the arena is full. Non-blocking: the master wraps
  /// this in its socket-pumping wait loop so a full arena blocks the
  /// send path without deadlocking the result path.
  std::optional<Slot> try_acquire(std::uint32_t owner);

  /// Element storage of a slot (valid in every process sharing the
  /// mapping -- fork preserves the address).
  double* slot_data(std::uint32_t slot) const;

  /// Returns a slot to the free state. Tolerant of a benign race: if a
  /// crash-reclamation sweep freed the slot first (the master reaping a
  /// dying worker's slots while the worker's last release is in
  /// flight), the call is a no-op and the counters stay balanced.
  /// Returns true when this call performed the release.
  bool release(std::uint32_t slot);

  /// Crash reclamation: frees every slot still tagged `owner` and
  /// returns how many were reclaimed. Used when a worker dies without
  /// unwinding (SIGKILL): whatever it held -- queued operands, the
  /// chunk it was computing -- goes back to the free set.
  std::size_t release_all_owned_by(std::uint32_t owner);

  /// Shutdown backstop: frees everything. Returns the number of slots
  /// that were still held (0 on a clean run -- the leak detector).
  std::size_t release_all();

  std::size_t in_use() const;
  Stats stats() const;

 private:
  struct Header;
  Header* header() const;
  std::atomic<std::uint32_t>* owners() const;

  void* map_ = nullptr;
  std::size_t map_bytes_ = 0;
  std::size_t slot_count_ = 0;
  std::size_t slot_doubles_ = 0;
  std::size_t slots_offset_ = 0;  // byte offset of slot 0
  std::size_t slot_stride_ = 0;   // bytes between consecutive slots
};

}  // namespace hmxp::runtime
