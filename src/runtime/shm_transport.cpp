// ShmTransport: forked worker processes sharing one pre-fork mmap'd
// payload arena -- process isolation at thread-backend speed.
//
// Topology: the process transport's fork model, but the ENTIRE steady
// state lives in shared memory. Before the first fork the master
// creates three MAP_SHARED structures every child inherits at the same
// virtual address: a SharedArena of fixed 64-byte-aligned payload
// slots, a SharedAckBoard of per-worker dequeue counters (the credit
// scheme reduced to one atomic add), and a pair of SPSC frame rings
// per worker (inbox and outbox) with futex doorbells. The master packs
// each outbound C chunk and A/B panel straight into an arena slot (the
// executor's copy_window writes there via Endpoint::allocate_payload)
// and commits a descriptor frame -- (slot, length) -- to the worker's
// inbox ring with a single cursor bump. The worker computes directly
// from -- and into -- the shared slots and hands the C slot back by
// descriptor through its outbox ring. Zero payload copies AND zero
// syscalls per frame on the hot path; futexes fire only when a side is
// actually parked. The socketpair(2) per child remains, but only as
// the bootstrap and death channel: the hello handshake, a dying
// worker's error notice, and the EOF that announces a SIGKILL.
//
// Slot accounting is the run's second backpressure rule (alongside the
// credit scheme): the arena is sized so a full complement of in-flight
// messages always fits (16 slots per worker vs a worst case of ~7),
// but a master that somehow outruns it blocks in allocate_payload,
// pumping its socket, until a slot frees. Slots are tagged with the
// worker they are bound for, which is what makes SIGKILL recovery
// exact: a dead child's outstanding slots -- including one it held
// mid-compute -- are reclaimed by Endpoint::drain via
// SharedArena::release_all_owned_by, so fault-tolerant reruns never
// leak arena capacity. Releases are single atomic exchanges, safe to
// race against that reclamation from either side of a SIGKILL.
#include <algorithm>
#include <atomic>
#include <cerrno>
#include <climits>
#include <csignal>
#include <cstring>
#include <deque>
#include <memory>
#include <new>
#include <stdexcept>
#include <string>
#include <variant>
#include <vector>

#include <fcntl.h>
#include <poll.h>
#include <sys/mman.h>
#include <sys/socket.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>
#if defined(__linux__)
#include <linux/futex.h>
#include <sys/prctl.h>
#include <sys/syscall.h>
#include <ctime>
#endif

#include "matrix/kernel_dispatch.hpp"
#include "matrix/tuning.hpp"
#include "runtime/executor.hpp"
#include "runtime/serde.hpp"
#include "runtime/shared_arena.hpp"
#include "runtime/socket_util.hpp"
#include "runtime/transport.hpp"
#include "runtime/worker_main.hpp"
#include "util/check.hpp"

namespace hmxp::runtime {

namespace {

using Clock = std::chrono::steady_clock;
using serde::ByteBuffer;
using serde::FrameType;

/// The shm socket carries ONLY bootstrap hello and death-notice frames
/// (payloads ride the arena, descriptors the rings), so its frame
/// budget is tiny: anything above this is protocol corruption, and the
/// tight bound means a corrupt prefix can never drive a big allocation.
constexpr std::uint64_t kBootstrapFrameBytes = 1ull << 20;

/// Arena slots per worker. Worst case per worker is ~7 outstanding
/// (the resident C slot plus a full credit window of operand pairs);
/// 16 leaves slack for results in flight, and MAP_NORESERVE means
/// untouched slots never cost physical memory.
constexpr std::size_t kSlotsPerWorker = 16;

// ---- cross-process parking (futex) ------------------------------------------

#if defined(__linux__)
// FUTEX_WAIT / FUTEX_WAKE (NOT the _PRIVATE forms: the words live in
// MAP_SHARED memory and are touched from both sides of the fork).
void futex_wait_u32(std::atomic<std::uint32_t>* word, std::uint32_t seen,
                    int timeout_ms) {
  struct timespec ts;
  ts.tv_sec = timeout_ms / 1000;
  ts.tv_nsec = static_cast<long>(timeout_ms % 1000) * 1000000L;
  ::syscall(SYS_futex, reinterpret_cast<std::uint32_t*>(word), FUTEX_WAIT,
            seen, timeout_ms < 0 ? nullptr : &ts, nullptr, 0);
}
void futex_wake_u32(std::atomic<std::uint32_t>* word) {
  ::syscall(SYS_futex, reinterpret_cast<std::uint32_t*>(word), FUTEX_WAKE,
            INT_MAX, nullptr, nullptr, 0);
}
#else
// Portable fallback: bounded naps instead of a real parking lot.
void futex_wait_u32(std::atomic<std::uint32_t>* word, std::uint32_t seen,
                    int timeout_ms) {
  if (word->load(std::memory_order_acquire) != seen) return;
  ::poll(nullptr, 0, timeout_ms < 0 ? 1 : std::min(timeout_ms, 1));
}
void futex_wake_u32(std::atomic<std::uint32_t>*) {}
#endif

double seconds_since(Clock::time_point begin) {
  return std::chrono::duration<double>(Clock::now() - begin).count();
}

// ---- shared-memory credit board ---------------------------------------------

/// Per-worker dequeue counters in their own MAP_SHARED page, one
/// cache-line-padded lane per worker. The worker bumps its lane's
/// sequence as it pops a message from its inbox (the
/// credit-before-compute rule); the master compares the sequence
/// against its own send count to enforce the bounded inbox. This is
/// the credit frame of the process transport reduced to a single
/// atomic add -- no syscall, no bytes on the socket. The lane doubles
/// as a cross-process condvar: a credit-starved master parks on the
/// sequence word with a (process-shared) futex, and the worker issues
/// a wake syscall ONLY when the lane's `waiting` flag says someone is
/// parked -- so the syscall count scales with master stalls, not with
/// messages. Must be created BEFORE the first fork, like the arena.
class SharedAckBoard {
 public:
  explicit SharedAckBoard(std::size_t lanes) : lanes_(lanes) {
    bytes_ = std::max<std::size_t>(lanes, 1) * kLaneStride;
    map_ = ::mmap(nullptr, bytes_, PROT_READ | PROT_WRITE,
                  MAP_SHARED | MAP_ANONYMOUS, -1, 0);
    HMXP_CHECK(map_ != MAP_FAILED, "ack board mmap failed");
    for (std::size_t i = 0; i < lanes_; ++i) new (lane(i)) Lane{};
  }
  ~SharedAckBoard() {
    if (map_ != nullptr && map_ != MAP_FAILED) ::munmap(map_, bytes_);
  }
  SharedAckBoard(const SharedAckBoard&) = delete;
  SharedAckBoard& operator=(const SharedAckBoard&) = delete;

  /// Worker side: one inbox message dequeued. The seq_cst add is a
  /// full fence on every supported target, so the `waiting` load
  /// cannot drift ahead of the increment -- the classic unlock/wake
  /// ordering that makes the park below lose-free. The wake fires only
  /// once the sequence reaches the parked master's stated threshold:
  /// waking it per ack would buy one frame of refill per context
  /// switch, and on a single hardware thread those switches are the
  /// dominant messaging cost.
  void add(std::size_t i) {
    Lane* entry = lane(i);
    const std::uint32_t now =
        entry->seq.fetch_add(1, std::memory_order_seq_cst) + 1;
    if (entry->waiting.load(std::memory_order_acquire) &&
        static_cast<std::int32_t>(
            now - entry->wake_at.load(std::memory_order_relaxed)) >= 0)
      futex_wake_u32(&entry->seq);
  }

  /// Master side: how many messages worker `i` has dequeued (mod 2^32;
  /// the in-flight window is tiny, so 32-bit wraparound math is exact).
  std::uint32_t read(std::size_t i) const {
    return lane(i)->seq.load(std::memory_order_acquire);
  }

  /// Worker side: "I just wrote a frame to my socket." The master's
  /// try_recv polls this word -- one shared-memory load -- instead of
  /// issuing a recv(2) per sweep that almost always returns EAGAIN.
  void raise_rx_hint(std::size_t i) {
    lane(i)->rx_hint.store(1, std::memory_order_release);
  }
  /// Master side: consumes the hint. Cleared BEFORE the socket is
  /// drained, so a frame that lands mid-drain re-raises it and costs
  /// at worst one extra (empty) pump on the next sweep.
  bool take_rx_hint(std::size_t i) {
    return lane(i)->rx_hint.exchange(0, std::memory_order_acquire) != 0;
  }

  /// Master side: sleeps until the lane's sequence reaches `target`
  /// (the hysteresis threshold -- the worker skips wakes below it) or
  /// `timeout_ms` elapses (the bound keeps worker death, which never
  /// acks, from parking the master forever). Spurious returns are
  /// fine -- the caller rechecks its credit window either way.
  void park(std::size_t i, std::uint32_t seen, std::uint32_t target,
            int timeout_ms) {
    Lane* entry = lane(i);
    entry->wake_at.store(target, std::memory_order_relaxed);
    entry->waiting.store(1, std::memory_order_seq_cst);
    // Re-check AFTER advertising the park (the seq_cst pair with add()
    // makes this lose-free), and let the kernel recheck seq == seen
    // under the futex lock for the remaining window.
    if (entry->seq.load(std::memory_order_seq_cst) == seen)
      futex_wait_u32(&entry->seq, seen, timeout_ms);
    entry->waiting.store(0, std::memory_order_relaxed);
  }

 private:
  struct Lane {
    std::atomic<std::uint32_t> seq{0};
    std::atomic<std::uint32_t> waiting{0};
    std::atomic<std::uint32_t> wake_at{0};
    std::atomic<std::uint32_t> rx_hint{0};
  };
  static_assert(sizeof(std::atomic<std::uint32_t>) == 4,
                "futex needs a plain 32-bit word");
  static constexpr std::size_t kLaneStride = 64;  // one cache line each

  Lane* lane(std::size_t i) const {
    return reinterpret_cast<Lane*>(static_cast<std::uint8_t*>(map_) +
                                   i * kLaneStride);
  }

  void* map_ = nullptr;
  std::size_t bytes_ = 0;
  std::size_t lanes_ = 0;
};

// ---- shared-memory SPSC frame rings -----------------------------------------

/// Byte capacity of one ring direction. Descriptor frames are O(100)
/// bytes -- O(plan steps) at worst -- and the credit window keeps only
/// a handful in flight, so 16 KiB never fills in practice; both sides
/// still handle a full (or empty) ring by parking on the cursors
/// below. Kept small on purpose: every ring page is faulted in fresh
/// each run, so capacity is paid for in page faults, not just address
/// space.
constexpr std::size_t kRingBytes = std::size_t{1} << 14;

/// Single-producer single-consumer byte ring in MAP_SHARED memory: the
/// steady-state data plane of the shm transport. Frames are the serde
/// wire format unchanged ([u64 length][body]); a frame becomes visible
/// through ONE seq_cst bump of `head` after its bytes are in place, so
/// the consumer observes whole frames or nothing -- a producer
/// SIGKILL'd mid-copy loses only the uncommitted frame and corrupts
/// nothing. Cursors run free (offset = cursor & (kRingBytes - 1)) and
/// double as futex words: a starved side advertises itself via its
/// waiting flag and parks, and the other side issues a wake syscall
/// only then -- the syscall count scales with stalls, not with frames.
/// A zero-length frame is the shutdown sentinel (the serde codecs
/// never emit one).
struct SharedRing {
  std::atomic<std::uint32_t> head{0};          // producer commit cursor
  std::atomic<std::uint32_t> cons_waiting{0};  // consumer parked on head
  std::uint8_t pad0[56];
  std::atomic<std::uint32_t> tail{0};          // consumer cursor
  std::atomic<std::uint32_t> prod_waiting{0};  // producer parked on tail
  std::uint8_t pad1[56];
  std::uint8_t data[kRingBytes];

  /// Appends one complete frame; false when the ring lacks room (the
  /// caller parks on `tail` and retries).
  bool try_push(const std::uint8_t* frame, std::size_t size) {
    HMXP_CHECK(size <= kRingBytes, "frame exceeds the ring capacity");
    const std::uint32_t produced = head.load(std::memory_order_relaxed);
    const std::uint32_t consumed = tail.load(std::memory_order_acquire);
    if (kRingBytes - static_cast<std::size_t>(produced - consumed) < size)
      return false;
    copy_in(produced, frame, size);
    head.store(produced + static_cast<std::uint32_t>(size),
               std::memory_order_seq_cst);
    if (cons_waiting.load(std::memory_order_acquire)) futex_wake_u32(&head);
    return true;
  }

  /// Pops the next whole frame into `out` with the length prefix
  /// stripped (a popped sentinel leaves `out` empty); false when the
  /// ring has nothing committed.
  bool try_pop(std::vector<std::uint8_t>& out) {
    const std::uint32_t consumed = tail.load(std::memory_order_relaxed);
    const std::uint32_t produced = head.load(std::memory_order_acquire);
    if (produced == consumed) return false;
    std::uint8_t prefix[serde::kLengthBytes];
    HMXP_CHECK(static_cast<std::size_t>(produced - consumed) >= sizeof prefix,
               "torn ring frame");
    copy_out(consumed, prefix, sizeof prefix);
    const std::uint64_t length = serde::decode_length(prefix);
    HMXP_CHECK(sizeof prefix + length <=
                   static_cast<std::size_t>(produced - consumed),
               "torn ring frame");
    out.resize(static_cast<std::size_t>(length));
    copy_out(consumed + sizeof prefix, out.data(), out.size());
    tail.store(consumed + static_cast<std::uint32_t>(sizeof prefix + length),
               std::memory_order_seq_cst);
    if (prod_waiting.load(std::memory_order_acquire)) futex_wake_u32(&tail);
    return true;
  }

  /// Parks the consumer until `head` moves past `seen` (or timeout; the
  /// seq_cst store/load pairing with try_push's commit makes the park
  /// lose-free, exactly like SharedAckBoard::park).
  void park_consumer(std::uint32_t seen, int timeout_ms) {
    cons_waiting.store(1, std::memory_order_seq_cst);
    if (head.load(std::memory_order_seq_cst) == seen)
      futex_wait_u32(&head, seen, timeout_ms);
    cons_waiting.store(0, std::memory_order_relaxed);
  }
  /// Parks the producer until `tail` moves past `seen` (or timeout).
  void park_producer(std::uint32_t seen, int timeout_ms) {
    prod_waiting.store(1, std::memory_order_seq_cst);
    if (tail.load(std::memory_order_seq_cst) == seen)
      futex_wait_u32(&tail, seen, timeout_ms);
    prod_waiting.store(0, std::memory_order_relaxed);
  }

 private:
  // Wrap-aware copies; cursors are free-running so the offset math is
  // a single mask.
  void copy_in(std::uint32_t at, const std::uint8_t* src, std::size_t n) {
    if (n == 0) return;
    const std::size_t offset = at & (kRingBytes - 1);
    const std::size_t first = std::min(n, kRingBytes - offset);
    std::memcpy(data + offset, src, first);
    std::memcpy(data, src + first, n - first);
  }
  void copy_out(std::uint32_t at, std::uint8_t* dst, std::size_t n) const {
    if (n == 0) return;
    const std::size_t offset = at & (kRingBytes - 1);
    const std::size_t first = std::min(n, kRingBytes - offset);
    std::memcpy(dst, data + offset, first);
    std::memcpy(dst + first, data, n - first);
  }
};

/// Both directions of one worker's data plane.
struct RingChannel {
  SharedRing inbox;   // master -> worker: chunk / operand descriptors
  SharedRing outbox;  // worker -> master: result descriptors
};

/// The MAP_SHARED block holding every worker's ring pair. Created
/// before the first fork, like the arena and the ack board, so parent
/// and children address the same pages.
class SharedRingBlock {
 public:
  explicit SharedRingBlock(std::size_t workers) : count_(workers) {
    bytes_ = std::max<std::size_t>(count_, 1) * sizeof(RingChannel);
    int flags = MAP_SHARED | MAP_ANONYMOUS;
#if defined(MAP_POPULATE)
    // Prefault the whole block in one syscall: cheaper than trapping
    // on every ring page as the cursors sweep across it mid-run.
    flags |= MAP_POPULATE;
#endif
    map_ = ::mmap(nullptr, bytes_, PROT_READ | PROT_WRITE, flags, -1, 0);
    HMXP_CHECK(map_ != MAP_FAILED, "ring block mmap failed");
    // Default-init, not value-init: the cursors' member initializers
    // run, while the data arrays stay untouched -- anonymous pages are
    // already zero, and zeroing kRingBytes per ring here would fault
    // and dirty every page twice.
    for (std::size_t i = 0; i < count_; ++i) new (channel(i)) RingChannel;
  }
  ~SharedRingBlock() {
    if (map_ != nullptr && map_ != MAP_FAILED) ::munmap(map_, bytes_);
  }
  SharedRingBlock(const SharedRingBlock&) = delete;
  SharedRingBlock& operator=(const SharedRingBlock&) = delete;

  RingChannel* channel(std::size_t i) const {
    return reinterpret_cast<RingChannel*>(static_cast<std::uint8_t*>(map_) +
                                          i * sizeof(RingChannel));
  }

 private:
  void* map_ = nullptr;
  std::size_t bytes_ = 0;
  std::size_t count_ = 0;
};

// ---- child side -------------------------------------------------------------

/// The worker's face of the shm data plane: descriptor frames popped
/// from the inbox ring and pushed to the outbox ring, payloads resolved
/// against the inherited arena -- zero syscalls per frame unless a side
/// is parked. The socket carries only the bootstrap hello and a death
/// notice. Lives entirely in the child process (which shares the
/// mapped pages, not the heap).
class ShmWorkerPort final : public WorkerPort {
 public:
  ShmWorkerPort(int fd, RingChannel* rings, SharedArena* arena,
                SharedAckBoard* acks, std::size_t index)
      : fd_(fd), rings_(rings), arena_(arena), acks_(acks), index_(index) {}

  std::optional<WorkerMessage> receive() override {
    if (done_) return std::nullopt;
    SharedRing& inbox = rings_->inbox;
    while (!inbox.try_pop(rx_)) {
      // Empty inbox: park on the head cursor. The bound is only a
      // belt -- PDEATHSIG reaps an orphan whose master crashed -- and
      // a spurious lap costs two shared-memory loads.
      inbox.park_consumer(inbox.head.load(std::memory_order_acquire),
                          /*timeout_ms=*/100);
    }
    return decode_inbound();
  }

  std::optional<WorkerMessage> try_receive() override {
    // The lookahead may pop the shutdown sentinel; done_ keeps it
    // observed (the sentinel is one-shot, unlike a closed socket), so
    // the follow-up blocking receive() still exits cleanly.
    if (done_) return std::nullopt;
    if (!rings_->inbox.try_pop(rx_)) return std::nullopt;
    return decode_inbound();
  }

  void send(ResultMessage result) override {
    tx_.clear();
    serde::encode_result_ref(result, tx_);
    SharedRing& outbox = rings_->outbox;
    while (!outbox.try_push(tx_.data(), tx_.size())) {
      outbox.park_producer(outbox.tail.load(std::memory_order_acquire),
                           /*timeout_ms=*/100);
    }
    // The frame is committed: the C slot belongs to the master now.
    // Detach AFTER the push so an unwind mid-send still releases the
    // slot (the master's crash reclamation tolerates the benign race).
    result.c.detach();
  }

  void send_hello(const serde::HelloFrame& hello) {
    tx_.clear();
    serde::encode_hello(hello, tx_);
    write_exact(fd_, tx_.data(), tx_.size());
    acks_->raise_rx_hint(index_);
  }

 private:
  /// Decodes the frame just popped into rx_ (shared tail of receive and
  /// try_receive): credit returned before computing, like a channel pop
  /// -- a single atomic add the master reads through shared memory.
  std::optional<WorkerMessage> decode_inbound() {
    if (rx_.empty()) {  // shutdown sentinel: done for good
      done_ = true;
      return std::nullopt;
    }
    acks_->add(index_);
    switch (serde::frame_type(rx_.data(), rx_.size())) {
      case FrameType::kChunkRef:
        return WorkerMessage(
            serde::decode_chunk_ref(rx_.data(), rx_.size(), *arena_));
      case FrameType::kOperandRef:
        return WorkerMessage(
            serde::decode_operand_ref(rx_.data(), rx_.size(), *arena_));
      case FrameType::kCancel:
        // Cancels ride the ring inline (seq only, no arena slot).
        return WorkerMessage(serde::decode_cancel(rx_.data(), rx_.size()));
      default:
        throw std::runtime_error("unexpected inbound frame type");
    }
  }

  int fd_;
  RingChannel* rings_;
  SharedArena* arena_;
  SharedAckBoard* acks_;
  std::size_t index_;
  std::vector<std::uint8_t> rx_;
  ByteBuffer tx_;
  bool done_ = false;
};

/// Child-process entry, the shm twin of the process transport's
/// run_child (see the fork-without-exec notes there). The arena object
/// itself arrives via the inherited heap; its PAGES are MAP_SHARED, so
/// the child's slot releases are the master's slot releases.
[[noreturn]] void run_child(int fd, const WorkerContext& context,
                            RingChannel* rings, SharedArena* arena,
                            SharedAckBoard* acks, std::size_t index,
                            const matrix::KernelConfig& config) {
#if defined(__linux__)
  // An orphaned worker must not outlive a crashed master.
  ::prctl(PR_SET_PDEATHSIG, SIGKILL);
#endif
  // Re-assert the master's tier, micro-kernel variant and tuned
  // blocking: the child can never re-resolve (or re-tune) differently.
  matrix::install_kernel_config(config);

  // The child's private pool only ever serves scratch buffers (the
  // slowdown emulation): every protocol payload lives in the arena.
  BufferPool pool;
  ShmWorkerPort port(fd, rings, arena, acks, index);
  try {
    // Answer with the configuration the child ACTUALLY runs (re-read,
    // not echoed), so the master's verification is end-to-end.
    port.send_hello(serde::local_hello(matrix::current_kernel_config()));
    worker_main(context, port, pool);
  } catch (const std::exception& error) {
    try {
      ByteBuffer notice;
      serde::encode_error(error.what(), notice);
      write_exact(fd, notice.data(), notice.size());
      acks->raise_rx_hint(index);
    } catch (...) {
      // The socket is gone too; the EOF alone carries the news.
    }
    ::close(fd);
    ::_exit(2);
  } catch (...) {
    ::close(fd);
    ::_exit(2);
  }
  ::close(fd);
  ::_exit(0);
}

// ---- master side ------------------------------------------------------------

class ShmEndpoint final : public Endpoint {
 public:
  ShmEndpoint(int index, int fd, pid_t pid, std::size_t capacity,
              const serde::HelloFrame& expected_hello, RingChannel* rings,
              SharedArena* arena, SharedAckBoard* acks,
              TransportStats* stats)
      : index_(index),
        fd_(fd),
        pid_(pid),
        capacity_(capacity),
        expected_hello_(expected_hello),
        rings_(rings),
        arena_(arena),
        acks_(acks),
        stats_(stats) {}

  ~ShmEndpoint() override { teardown(); }

  // ----- Endpoint -----
  /// Checks out an arena slot tagged with this worker instead of a pool
  /// vector: whatever the executor packs into it is already where the
  /// worker will read it. Blocks (pumping the socket, so death and
  /// credits keep flowing) while the arena is saturated -- arena
  /// capacity is part of the backpressure rule.
  Payload allocate_payload(std::size_t size, BufferPool& pool) override {
    (void)pool;  // arena payloads never touch the heap pool
    HMXP_CHECK(size <= arena_->slot_doubles(),
               "payload exceeds the arena slot size");
    for (;;) {
      if (auto slot =
              arena_->try_acquire(static_cast<std::uint32_t>(index_)))
        return Payload::arena_view(arena_, slot->index, slot->data, size);
      throw_if_dead();
      // A full arena frees through worker progress (slot releases are
      // shared-memory stores -- no frame announces them): drain queued
      // results and nap briefly, re-checking for death each lap.
      wait_io(/*want_write=*/false, /*timeout_ms=*/1);
    }
  }

  void send(WorkerMessage message) override {
    throw_if_dead();
    // The bounded-inbox rule, checked BEFORE the frame is committed:
    // at most `capacity_` frames may sit unacknowledged in the
    // worker's inbox. Acks arrive through the shared board, so a
    // starved master parks on the lane's futex (the worker wakes it
    // the moment it dequeues) with a bound that keeps a SIGKILL'd
    // child -- which will never ack -- from parking us past the next
    // death-detection pump.
    const auto lane = static_cast<std::size_t>(index_);
    std::uint32_t acked = acks_->read(lane);
    if (static_cast<std::uint32_t>(sent_) - acked >= capacity_) {
      // Ask to be woken only once TWO slots are free (when the window
      // is that deep): refilling one frame per wake costs a context
      // switch per frame, and the worker still holds a queued frame to
      // chew on while the master tops the window back up.
      const std::uint32_t refill =
          static_cast<std::uint32_t>(std::min<std::size_t>(capacity_, 2));
      const std::uint32_t target =
          static_cast<std::uint32_t>(sent_) - capacity_ + refill;
      while (!failed_ &&
             static_cast<std::uint32_t>(sent_) - acked >= capacity_) {
        acks_->park(lane, acked, target, /*timeout_ms=*/10);
        pump_rings();   // a worker parked on a full outbox cannot ack
        gated_pump();   // death notices keep flowing (at most 1/ms)
        acked = acks_->read(lane);
      }
      throw_if_dead();
    }

    const auto serde_begin = Clock::now();
    tx_.clear();
    std::size_t payload_bytes = 0;
    if (auto* chunk = std::get_if<ChunkMessage>(&message)) {
      serde::encode_chunk_ref(*chunk, tx_);
      payload_bytes = chunk->c.size() * sizeof(double);
    } else if (auto* operands = std::get_if<OperandMessage>(&message)) {
      serde::encode_operand_ref(*operands, tx_);
      payload_bytes =
          (operands->a.size() + operands->b.size()) * sizeof(double);
    } else {
      // CancelMessage: an inline descriptor frame, no arena slot.
      serde::encode_cancel(std::get<CancelMessage>(message), tx_);
    }
    stats_->serde_seconds += seconds_since(serde_begin);

    // Detach BEFORE the commit: once the cursor bump lands the worker
    // may decode, use and release the slots at any moment, so the
    // master must have relinquished them already. If the worker dies
    // with the frame unread, drain()'s owner-tag sweep reclaims them.
    if (auto* chunk = std::get_if<ChunkMessage>(&message)) {
      chunk->c.detach();
    } else if (auto* operands = std::get_if<OperandMessage>(&message)) {
      operands->a.detach();
      operands->b.detach();
    }
    // CancelMessage holds no slots: nothing to detach.
    push_inbox();
    ++sent_;
    ++stats_->messages_sent;
    stats_->bytes_sent += tx_.size();
    stats_->bytes_zero_copied += payload_bytes;
  }

  std::optional<ResultMessage> try_recv() override {
    pump_rings();
    if (results_.empty() && !failed_) {
      // Results arrive through the ring (drained above with zero
      // syscalls); the socket carries only the bootstrap hello, error
      // notices and the EOF that announces death, so it is pumped at
      // most once per millisecond (or on the worker's rx hint).
      gated_pump();
    }
    return pop_result();
  }

  std::optional<ResultMessage> recv() override {
    pump_rings();
    gated_pump();
    while (results_.empty() && !failed_) {
      // Park on the outbox cursor; the worker's result push wakes us.
      // The bound exists because a SIGKILL'd child never pushes -- its
      // EOF, found by the gated pump below, is what breaks the wait.
      SharedRing& outbox = rings_->outbox;
      outbox.park_consumer(outbox.head.load(std::memory_order_acquire),
                           /*timeout_ms=*/10);
      pump_rings();
      gated_pump();
    }
    return pop_result();
  }

  bool failed() const override { return failed_; }
  std::exception_ptr error() const override { return error_; }
  bool killed() const override { return killed_; }

  void kill() override {
    if (killed_) return;
    killed_ = true;
    if (pid_ > 0 && !reaped_) ::kill(pid_, SIGKILL);
    if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
  }

  /// Reclaims everything a decommissioned worker still held: queued
  /// results release their slots back to the arena, then every slot
  /// still TAGGED with this worker -- inbox messages it never dequeued,
  /// the chunk it was computing into when the SIGKILL landed, a result
  /// descriptor parsed but not yet popped -- is swept back in one pass.
  /// The caller has already released any pending result it extracted
  /// from this endpoint, so the sweep cannot double-free a live slot.
  void drain(BufferPool& pool) override {
    drained_ = true;
    while (!results_.empty()) {
      results_.front().c.release_to(pool);
      results_.pop_front();
    }
    rx_.clear();
    // The rings are left untouched: frames still sitting in them
    // reference slots tagged with this worker, so the sweep below
    // reclaims those too, and a decommissioned endpoint never pops its
    // rings again (pump_rings guards on killed_).
    arena_->release_all_owned_by(static_cast<std::uint32_t>(index_));
  }

  // ----- transport-internal -----
  void wait_hello() {
    pump();
    const auto deadline = Clock::now() + std::chrono::seconds(30);
    while (!hello_seen_ && !failed_) {
      if (Clock::now() >= deadline) {
        mark_failed("no bootstrap hello within 30s");
        break;
      }
      wait_io(/*want_write=*/false, /*timeout_ms=*/1000);
    }
  }

  void begin_shutdown() noexcept {
    discarding_ = true;
    if (fd_ >= 0 && !killed_ && !failed_ && !drained_) {
      // The zero-length sentinel is the ring world's half-close: the
      // worker pops it and exits. Bounded retries -- a worker that
      // died with a full inbox will never make room; its EOF ends the
      // wait in finish_shutdown instead.
      const std::uint8_t sentinel[serde::kLengthBytes] = {};
      SharedRing& inbox = rings_->inbox;
      for (int attempt = 0; attempt < 1000; ++attempt) {
        if (inbox.try_push(sentinel, sizeof sentinel)) break;
        if (failed_ || eof_) break;
        pump_rings();
        inbox.park_producer(inbox.tail.load(std::memory_order_acquire),
                            /*timeout_ms=*/1);
      }
    }
    if (fd_ >= 0 && !killed_) ::shutdown(fd_, SHUT_WR);
  }

  void finish_shutdown() noexcept {
    discarding_ = true;
    if (fd_ >= 0) {
      try {
        // Bounded waits: the ring pump inside wait_io is what lets a
        // worker parked on a full outbox drain, finish and close.
        while (!eof_ && !failed_) wait_io(/*want_write=*/false,
                                          /*timeout_ms=*/10);
      } catch (...) {
        // Corrupt trailing frames on a teardown path are ignorable.
      }
    }
    teardown();
  }

 private:
  void teardown() noexcept {
    if (fd_ >= 0) {
      ::close(fd_);
      fd_ = -1;
    }
    if (pid_ > 0 && !reaped_) {
      if (failed_) ::kill(pid_, SIGKILL);
      int status = 0;
      while (::waitpid(pid_, &status, 0) < 0 && errno == EINTR) {
      }
      reaped_ = true;
    }
    // Queued results parsed but never popped would pin their slots
    // forever; a clean run has none, an aborted one hands them back.
    while (!results_.empty()) results_.pop_front();  // Payload releases
  }

  [[noreturn]] void throw_dead() { std::rethrow_exception(error_); }
  void throw_if_dead() {
    if (failed_) throw_dead();
  }

  std::optional<ResultMessage> pop_result() {
    if (results_.empty()) return std::nullopt;
    ResultMessage result = std::move(results_.front());
    results_.pop_front();
    ++stats_->messages_received;
    return result;
  }

  void mark_failed(const std::string& reason) {
    if (failed_) return;
    std::string what = "worker process " + std::to_string(index_) + ": " +
                       reason;
    if (pid_ > 0 && !reaped_) {
      int status = 0;
      const pid_t reaped = ::waitpid(pid_, &status, WNOHANG);
      if (reaped == pid_) {
        reaped_ = true;
        if (WIFSIGNALED(status)) {
          what += " (killed by signal " + std::to_string(WTERMSIG(status)) +
                  ")";
        } else if (WIFEXITED(status)) {
          what += " (exit status " + std::to_string(WEXITSTATUS(status)) +
                  ")";
        }
      }
    }
    error_ = std::make_exception_ptr(std::runtime_error(what));
    failed_ = true;
  }

  /// Commits the frame encoded in tx_ to the worker's inbox ring,
  /// parking on the tail cursor if the ring is somehow full (the
  /// credit window keeps it far from full in practice). Throws if the
  /// worker is (or turns out to be) dead.
  void push_inbox() {
    SharedRing& inbox = rings_->inbox;
    while (!inbox.try_push(tx_.data(), tx_.size())) {
      throw_if_dead();
      pump_rings();  // a worker parked pushing results cannot drain
      inbox.park_producer(inbox.tail.load(std::memory_order_acquire),
                          /*timeout_ms=*/10);
      pump();  // a dead worker will never drain the ring
    }
  }

  /// Drains the worker's outbox ring: every frame the worker committed
  /// is decoded and queued (or, while discarding, dropped -- which
  /// releases its arena slot). Two shared-memory loads when the ring
  /// is empty; never a syscall. A decommissioned endpoint's rings are
  /// never popped: their frames reference slots drain() already swept.
  void pump_rings() {
    if (killed_ || drained_) return;
    try {
      while (rings_->outbox.try_pop(ring_rx_)) {
        if (ring_rx_.empty()) continue;  // sentinel: never sent inbound
        stats_->bytes_received += serde::kLengthBytes + ring_rx_.size();
        dispatch(ring_rx_.data(), ring_rx_.size());
      }
    } catch (const std::exception& error) {
      mark_failed(std::string("protocol corruption: ") + error.what());
    }
  }

  /// Socket pump rate-limited to the death-detection budget: drains
  /// the socket when the worker raised its rx hint (it wrote a hello
  /// or error frame) or when a millisecond passed since the last look
  /// (a SIGKILL'd child raises no hint -- only an EOF).
  void gated_pump() {
    const auto now = Clock::now();
    if (acks_->take_rx_hint(static_cast<std::size_t>(index_)) ||
        now - last_pump_ >= std::chrono::milliseconds(1)) {
      last_pump_ = now;
      pump();
    }
  }

  void wait_io(bool want_write = false, int timeout_ms = -1) {
    pump_rings();
    if (eof_ || fd_ < 0) {
      if (!failed_) mark_failed("connection closed");
      return;
    }
    struct pollfd entry;
    entry.fd = fd_;
    entry.events = static_cast<short>(POLLIN | (want_write ? POLLOUT : 0));
    entry.revents = 0;
    const int ready = ::poll(&entry, 1, timeout_ms);
    if (ready < 0 && errno != EINTR) {
      mark_failed(std::string("poll failed: ") + std::strerror(errno));
      return;
    }
    pump();
    pump_rings();
  }

  void pump() {
    if (eof_ || fd_ < 0) return;
    std::uint8_t buffer[1 << 16];
    for (;;) {
      const ssize_t n = ::recv(fd_, buffer, sizeof buffer, 0);
      if (n > 0) {
        rx_.insert(rx_.end(), buffer, buffer + n);
        if (static_cast<std::size_t>(n) < sizeof buffer) break;
        continue;
      }
      if (n == 0) {
        eof_ = true;
        break;
      }
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      if (errno == EINTR) continue;
      if (errno == ECONNRESET) {
        eof_ = true;
        break;
      }
      mark_failed(std::string("recv failed: ") + std::strerror(errno));
      return;
    }
    parse_frames();
    if (eof_ && !failed_ && !discarding_)
      mark_failed("exited unexpectedly (connection closed)");
  }

  void parse_frames() {
    std::size_t cursor = 0;
    while (rx_.size() - cursor >= serde::kLengthBytes) {
      std::uint64_t length = 0;
      try {
        length = serde::checked_frame_length(rx_.data() + cursor,
                                             kBootstrapFrameBytes);
      } catch (const std::exception& error) {
        mark_failed(error.what());
        break;
      }
      if (rx_.size() - cursor - serde::kLengthBytes < length) break;
      try {
        dispatch(rx_.data() + cursor + serde::kLengthBytes,
                 static_cast<std::size_t>(length));
      } catch (const std::exception& error) {
        mark_failed(std::string("protocol corruption: ") + error.what());
        break;
      }
      cursor += serde::kLengthBytes + static_cast<std::size_t>(length);
      stats_->bytes_received += serde::kLengthBytes +
                                static_cast<std::size_t>(length);
    }
    if (cursor > 0)
      rx_.erase(rx_.begin(),
                rx_.begin() + static_cast<std::ptrdiff_t>(cursor));
  }

  void dispatch(const std::uint8_t* body, std::size_t size) {
    switch (serde::frame_type(body, size)) {
      case FrameType::kResultRef: {
        const auto serde_begin = Clock::now();
        ResultMessage result = serde::decode_result_ref(body, size, *arena_);
        stats_->serde_seconds += seconds_since(serde_begin);
        stats_->bytes_zero_copied += result.c.size() * sizeof(double);
        if (discarding_) break;  // Payload releases the slot right here
        results_.push_back(std::move(result));
        break;
      }
      case FrameType::kHello: {
        const serde::HelloFrame hello = serde::decode_hello(body, size);
        HMXP_CHECK(hello.same_kernel_config(expected_hello_),
                   "worker process booted with a divergent kernel "
                   "configuration (tier/micro-kernel/tuned blocking)");
        hello_seen_ = true;
        break;
      }
      case FrameType::kError:
        mark_failed(serde::decode_error(body, size));
        break;
      default:
        mark_failed("unexpected frame from worker");
        break;
    }
  }

  int index_;
  int fd_;
  pid_t pid_;
  std::size_t capacity_;
  std::uint64_t sent_ = 0;
  serde::HelloFrame expected_hello_;
  RingChannel* rings_;
  SharedArena* arena_;
  SharedAckBoard* acks_;
  TransportStats* stats_;
  ByteBuffer rx_;       // socket bytes (hello / error frames)
  ByteBuffer tx_;       // per-message encode scratch
  ByteBuffer ring_rx_;  // per-frame ring pop scratch
  std::deque<ResultMessage> results_;
  Clock::time_point last_pump_{};
  std::exception_ptr error_;
  bool failed_ = false;
  bool killed_ = false;
  bool eof_ = false;
  bool hello_seen_ = false;
  bool discarding_ = false;
  bool drained_ = false;
  bool reaped_ = false;
};

class ShmTransport final : public Transport {
 public:
  ShmTransport(int workers, std::size_t inbox_capacity,
               const ExecutorOptions& options, Clock::time_point run_begin,
               std::size_t max_payload_doubles)
      // The arena, ack board and rings MUST exist before the first
      // fork: MAP_SHARED pages created here are the ones every child
      // inherits.
      : arena_(static_cast<std::size_t>(workers) * kSlotsPerWorker,
               std::max<std::size_t>(max_payload_doubles, 1)),
        acks_(static_cast<std::size_t>(workers)),
        rings_(static_cast<std::size_t>(workers)),
        endpoint_stats_(static_cast<std::size_t>(workers)) {
    // Resolve (possibly autotune) the blocking in the master, before
    // any fork; children re-assert and answer for exactly this state.
    const matrix::KernelConfig config = matrix::current_kernel_config();
    const serde::HelloFrame expected_hello = serde::local_hello(config);

    const auto count = static_cast<std::size_t>(workers);
    std::vector<int> master_fds(count, -1);
    std::vector<int> child_fds(count, -1);
    try {
      for (std::size_t i = 0; i < count; ++i) {
        int fds[2];
        HMXP_CHECK(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds) == 0,
                   "socketpair failed");
        master_fds[i] = fds[0];
        child_fds[i] = fds[1];
      }
      endpoints_.reserve(count);
      for (std::size_t i = 0; i < count; ++i) {
        const WorkerContext context =
            make_worker_context(options, static_cast<int>(i), run_begin);

        const pid_t pid = ::fork();
        HMXP_CHECK(pid >= 0, "fork failed");
        if (pid == 0) {
          // Child: keep only this worker's own end.
          for (std::size_t j = 0; j < count; ++j) {
            if (master_fds[j] >= 0) ::close(master_fds[j]);
            if (j != i && child_fds[j] >= 0) ::close(child_fds[j]);
          }
          run_child(child_fds[i], context, rings_.channel(i), &arena_,
                    &acks_, i, config);  // never returns
        }
        ::close(child_fds[i]);
        child_fds[i] = -1;
        const int fd = master_fds[i];
        const int flags = ::fcntl(fd, F_GETFL, 0);
        HMXP_CHECK(flags >= 0 &&
                       ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0,
                   "fcntl O_NONBLOCK failed");
        endpoints_.push_back(std::make_unique<ShmEndpoint>(
            static_cast<int>(i), fd, pid, inbox_capacity, expected_hello,
            rings_.channel(i), &arena_, &acks_, &endpoint_stats_[i]));
      }
    } catch (...) {
      for (std::size_t j = endpoints_.size(); j < count; ++j)
        if (master_fds[j] >= 0) ::close(master_fds[j]);
      for (const int fd : child_fds)
        if (fd >= 0) ::close(fd);
      shutdown();
      throw;
    }
    for (auto& endpoint : endpoints_) endpoint->wait_hello();
  }

  ~ShmTransport() override { shutdown(); }

  TransportKind kind() const override { return TransportKind::kShm; }
  int worker_count() const override {
    return static_cast<int>(endpoints_.size());
  }
  Endpoint& endpoint(int worker) override {
    HMXP_REQUIRE(worker >= 0 &&
                     static_cast<std::size_t>(worker) < endpoints_.size(),
                 "worker index out of range");
    return *endpoints_[static_cast<std::size_t>(worker)];
  }

  void shutdown() noexcept override {
    for (auto& endpoint : endpoints_) endpoint->begin_shutdown();
    for (auto& endpoint : endpoints_) endpoint->finish_shutdown();
    if (!leak_recorded_) {
      // Every child is reaped: any slot still held is a reclamation
      // bug the stats must expose (tests assert this is 0). The final
      // sweep keeps the arena's own shutdown assertion quiet so the
      // one loud failure is the test's.
      leaked_slots_ = arena_.in_use();
      arena_.release_all();
      leak_recorded_ = true;
    }
  }

  TransportStats stats() const override {
    TransportStats stats;
    for (const TransportStats& slot : endpoint_stats_) stats += slot;
    const SharedArena::Stats arena = arena_.stats();
    stats.arena_slots = arena_.slot_count();
    stats.arena_peak_slots = arena.peak_in_use;
    stats.arena_leaked_slots =
        leak_recorded_ ? leaked_slots_ : arena.in_use;
    return stats;
  }

 private:
  // Declared before the endpoints: they hold arena, ack-board, ring
  // and stats-slot pointers, so all four must outlive them on every
  // destruction path. One stats slot per endpoint (stable addresses,
  // never resized) so concurrent fleet jobs never race on a counter.
  SharedArena arena_;
  SharedAckBoard acks_;
  SharedRingBlock rings_;
  std::vector<TransportStats> endpoint_stats_;
  std::vector<std::unique_ptr<ShmEndpoint>> endpoints_;
  std::size_t leaked_slots_ = 0;
  bool leak_recorded_ = false;
};

}  // namespace

std::unique_ptr<Transport> make_shm_transport(
    int workers, std::size_t inbox_capacity, const ExecutorOptions& options,
    std::chrono::steady_clock::time_point run_begin, BufferPool* pool,
    std::size_t max_payload_doubles) {
  (void)pool;  // shm payloads live in the arena, not the master pool
  return std::make_unique<ShmTransport>(workers, inbox_capacity, options,
                                        run_begin, max_payload_doubles);
}

}  // namespace hmxp::runtime
