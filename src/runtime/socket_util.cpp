#include "runtime/socket_util.hpp"

#include <cerrno>
#include <cstring>
#include <string>

#include <sys/socket.h>
#include <unistd.h>

#include "runtime/serde.hpp"

namespace hmxp::runtime {

bool read_exact(int fd, std::uint8_t* out, std::size_t size, bool start) {
  std::size_t done = 0;
  while (done < size) {
    const ssize_t n = ::read(fd, out + done, size - done);
    if (n > 0) {
      done += static_cast<std::size_t>(n);
      continue;
    }
    if (n == 0) {
      if (start && done == 0) return false;
      throw PeerDisconnected("peer closed the connection mid-frame");
    }
    if (errno == EINTR) continue;
    if (errno == ECONNRESET)
      throw PeerDisconnected("connection reset by peer");
    throw std::runtime_error(std::string("socket read failed: ") +
                             std::strerror(errno));
  }
  return true;
}

void write_exact(int fd, const std::uint8_t* data, std::size_t size) {
  std::size_t done = 0;
  while (done < size) {
    const ssize_t n = ::send(fd, data + done, size - done, MSG_NOSIGNAL);
    if (n > 0) {
      done += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EPIPE || errno == ECONNRESET))
      throw PeerDisconnected("peer closed the connection mid-write");
    throw std::runtime_error(std::string("socket write failed: ") +
                             std::strerror(errno));
  }
}

bool read_frame(int fd, std::vector<std::uint8_t>& body,
                std::uint64_t max_frame_bytes) {
  std::uint8_t prefix[serde::kLengthBytes];
  if (!read_exact(fd, prefix, sizeof prefix, /*start=*/true)) return false;
  const std::uint64_t length =
      serde::checked_frame_length(prefix, max_frame_bytes);
  body.resize(static_cast<std::size_t>(length));
  read_exact(fd, body.data(), body.size(), /*start=*/false);
  return true;
}

}  // namespace hmxp::runtime
