// Blocking socket I/O shared by every socket-carrying transport: the
// process transport's data plane, the shm transport's bootstrap/death
// channel, and both sides of the TCP transport. One implementation of
// the EINTR-retry / MSG_NOSIGNAL discipline instead of a copy per
// transport -- and one place where "the peer vanished" is classified.
//
// Death classification matters to the fault-tolerant path: an EOF in
// the middle of a frame (or mid-handshake) means the PEER died, which a
// TCP worker answers by reconnecting and the master by recovering the
// orphaned chunk -- while a malformed frame means protocol corruption,
// which is never retried. PeerDisconnected keeps the two distinct where
// a generic runtime_error conflated them.
#pragma once

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <vector>

namespace hmxp::runtime {

/// The peer closed the connection part-way through a frame (or the
/// stream reset under us): the other PROCESS is gone or the link
/// dropped, not a protocol bug. Transports catch this type to route
/// into their reconnect / fault-recovery paths.
class PeerDisconnected : public std::runtime_error {
 public:
  explicit PeerDisconnected(const std::string& what)
      : std::runtime_error(what) {}
};

/// Reads exactly `size` bytes from a blocking fd; returns false on a
/// clean EOF at a frame boundary (`start` == true, nothing read yet),
/// throws PeerDisconnected on mid-frame EOF or a connection reset, and
/// std::runtime_error on other errors. Retries EINTR.
bool read_exact(int fd, std::uint8_t* out, std::size_t size, bool start);

/// Writes exactly `size` bytes to a blocking fd (MSG_NOSIGNAL, EINTR
/// retried). A broken pipe / reset throws PeerDisconnected; other
/// errors throw std::runtime_error.
void write_exact(int fd, const std::uint8_t* data, std::size_t size);

/// Reads one length-prefixed frame into `body` (prefix stripped) from a
/// blocking fd. Returns false on clean EOF at a frame boundary. The
/// declared length is validated against `max_frame_bytes` BEFORE any
/// allocation: a corrupt or hostile prefix must fail the connection,
/// never drive a multi-GiB resize.
bool read_frame(int fd, std::vector<std::uint8_t>& body,
                std::uint64_t max_frame_bytes);

}  // namespace hmxp::runtime
