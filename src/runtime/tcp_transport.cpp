// TcpTransport: the online runtime over loopback TCP -- workers DIAL
// the master instead of inheriting a socketpair end, which is the whole
// connection lifecycle of a real cluster deployment rehearsed inside
// one machine (and one CI job).
//
// Topology: the master binds a listen socket on 127.0.0.1 (ephemeral
// port) BEFORE forking, so the very first connect can never be refused.
// Each forked worker dials that port, sends a versioned hello frame
// carrying its per-worker identity TOKEN, and waits for the master's
// hello ack. The Acceptor owns the listen socket and every connection
// that has not yet proven its identity: it accepts, accumulates the
// handshake frame under a small bound and a deadline, rejects strangers
// (bad magic / wrong protocol version) with a kError naming both
// versions, and stages authenticated connections by token until the
// owning endpoint claims them.
//
// Reconnect lifecycle: a dropped connection surfaces as EOF-without-
// goodbye. The master marks the endpoint failed and recovers exactly
// like any worker death (mirror rollback, chunk back to the pending
// set); the worker closes its end, redials, and re-handshakes with the
// SAME token. Once the master finished recovering it polls
// Endpoint::try_readmit, claims the staged connection, resets the
// credit window and re-admits the worker as a hot-joining idle worker
// -- an FT-* scheduler then hands it orphaned or fresh work. A clean
// shutdown is distinguished by an explicit kGoodbye frame before the
// master half-closes; only EOF WITHOUT a goodbye means "the connection
// died, come back".
//
// Wire compression (ExecutorOptions::wire_compression): frames above a
// small threshold are wrapped as kCompressed (zero-RLE, serde) whenever
// that actually shrinks them -- aimed at the bandwidth-bound regime the
// paper's communication analysis prices, where operand tiles of a
// sparse-ish C carry long zero runs.
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstring>
#include <deque>
#include <memory>
#include <random>
#include <stdexcept>
#include <string>
#include <thread>
#include <variant>
#include <vector>

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>
#if defined(__linux__)
#include <sys/prctl.h>
#endif

#include "matrix/kernel_dispatch.hpp"
#include "matrix/tuning.hpp"
#include "runtime/executor.hpp"
#include "runtime/serde.hpp"
#include "runtime/socket_util.hpp"
#include "runtime/tcp_transport.hpp"
#include "runtime/transport.hpp"
#include "runtime/worker_main.hpp"
#include "util/check.hpp"

namespace hmxp::runtime {

namespace {

using Clock = std::chrono::steady_clock;
using serde::ByteBuffer;
using serde::FrameType;

double seconds_since(Clock::time_point begin) {
  return std::chrono::duration<double>(Clock::now() - begin).count();
}

/// Handshake frames are a fixed handful of integers; anything bigger
/// is not a worker saying hello. Bounding the PRE-authentication read
/// this tightly means an unauthenticated peer can never make the
/// master allocate.
constexpr std::uint64_t kHandshakeFrameBytes = 4096;

/// Frames below this never compress usefully (control frames, tiny
/// descriptors); skip the codec attempt entirely.
constexpr std::size_t kCompressMinBytes = 256;

void set_nodelay(int fd) {
  // Credits and cancels are latency-critical one-liners; never let
  // Nagle batch them behind a payload.
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
}

/// Compresses the frame sitting fully encoded in `frame` in place
/// (via `scratch`) when the codec shrinks it; returns the bytes saved
/// (0 = kept raw). `frame` holds [u64 length][body]; the kCompressed
/// wrapper re-frames the body.
std::size_t maybe_compress_frame(ByteBuffer& frame, ByteBuffer& scratch) {
  if (frame.size() < kCompressMinBytes) return 0;
  scratch.clear();
  serde::encode_compressed(frame.data() + serde::kLengthBytes,
                           frame.size() - serde::kLengthBytes, scratch);
  if (scratch.size() >= frame.size()) return 0;
  const std::size_t saved = frame.size() - scratch.size();
  frame.swap(scratch);
  return saved;
}

// ---- child side -------------------------------------------------------------

/// Dials the master's loopback port with a blocking socket, retrying
/// transient failures (including the refusal window while the master's
/// accept queue churns during recovery) under a deadline.
int dial_master(std::uint16_t port) {
  const auto deadline = Clock::now() + std::chrono::seconds(10);
  for (;;) {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0)
      throw std::runtime_error(std::string("socket failed: ") +
                               std::strerror(errno));
    sockaddr_in addr;
    std::memset(&addr, 0, sizeof addr);
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                  sizeof addr) == 0) {
      set_nodelay(fd);
      return fd;
    }
    const int saved = errno;
    ::close(fd);
    if (saved == EINTR) continue;
    if (Clock::now() >= deadline)
      throw std::runtime_error(std::string("cannot reach master: ") +
                               std::strerror(saved));
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
}

/// Sends the worker's identified hello and blocks for the master's
/// verdict: a hello ack admits (decode_hello validates the master's
/// magic and protocol version symmetrically, so BOTH sides of a
/// version skew report it by name), a kError carries the rejection.
void handshake(int fd, std::uint64_t token) {
  serde::HelloFrame hello = serde::local_hello(matrix::current_kernel_config());
  hello.token = token;
  ByteBuffer frame;
  serde::encode_hello(hello, frame);
  write_exact(fd, frame.data(), frame.size());

  ByteBuffer body;
  if (!read_frame(fd, body, kHandshakeFrameBytes))
    throw PeerDisconnected("master closed the connection during handshake");
  switch (serde::frame_type(body.data(), body.size())) {
    case FrameType::kHello:
      serde::decode_hello(body.data(), body.size());
      return;
    case FrameType::kError:
      throw std::runtime_error("master rejected handshake: " +
                               serde::decode_error(body.data(), body.size()));
    default:
      throw std::runtime_error("unexpected handshake reply from master");
  }
}

/// The worker's face of the TCP connection: frame intake with credit
/// return and kCompressed unwrap, result frames out (compressed when
/// the knob is on and the codec wins). A clean end-of-stream is ONLY
/// the explicit kGoodbye; bare EOF throws PeerDisconnected, which the
/// reconnect loop in run_child answers by redialing.
class TcpWorkerPort final : public WorkerPort {
 public:
  TcpWorkerPort(int fd, BufferPool* pool, std::uint64_t max_frame_bytes,
                bool compress)
      : fd_(fd),
        pool_(pool),
        max_frame_bytes_(max_frame_bytes),
        compress_(compress) {}

  std::optional<WorkerMessage> receive() override {
    if (!read_frame(fd_, body_, max_frame_bytes_))
      throw PeerDisconnected("connection closed without a goodbye");
    if (serde::frame_type(body_.data(), body_.size()) == FrameType::kGoodbye)
      return std::nullopt;  // clean shutdown: done for good
    if (serde::frame_type(body_.data(), body_.size()) ==
        FrameType::kCompressed) {
      serde::decode_compressed(body_.data(), body_.size(), max_frame_bytes_,
                               raw_);
      body_.swap(raw_);
    }

    // Return the inbox credit BEFORE computing: the slot is free the
    // moment the message is dequeued, exactly like a channel pop.
    tx_.clear();
    serde::encode_control(FrameType::kCredit, tx_);
    write_exact(fd_, tx_.data(), tx_.size());

    switch (serde::frame_type(body_.data(), body_.size())) {
      case FrameType::kChunk:
        return WorkerMessage(
            serde::decode_chunk(body_.data(), body_.size(), *pool_));
      case FrameType::kOperand:
        return WorkerMessage(
            serde::decode_operand(body_.data(), body_.size(), *pool_));
      case FrameType::kCancel:
        return WorkerMessage(
            serde::decode_cancel(body_.data(), body_.size()));
      default:
        throw std::runtime_error("unexpected inbound frame type");
    }
  }

  std::optional<WorkerMessage> try_receive() override {
    struct pollfd probe;
    probe.fd = fd_;
    probe.events = POLLIN;
    probe.revents = 0;
    if (::poll(&probe, 1, 0) != 1 || (probe.revents & POLLIN) == 0)
      return std::nullopt;
    return receive();
  }

  void send(ResultMessage result) override {
    tx_.clear();
    serde::encode_result(result, tx_);
    result.c.release_to(*pool_);
    if (compress_) maybe_compress_frame(tx_, scratch_);
    write_exact(fd_, tx_.data(), tx_.size());
  }

 private:
  int fd_;
  BufferPool* pool_;
  std::uint64_t max_frame_bytes_;
  bool compress_;
  ByteBuffer body_;
  ByteBuffer raw_;
  ByteBuffer tx_;
  ByteBuffer scratch_;
};

/// Child-process entry with the reconnect loop: dial, handshake, serve.
/// A severed connection (PeerDisconnected from either direction, or a
/// TcpDisconnectFault injected by a fault hook) drops the socket and
/// loops back to redial -- the worker restarts its protocol state from
/// scratch, which is correct because the master rolled back everything
/// it had in flight when it observed the death. Any other exception is
/// a real worker death: ship the kError notice while the socket lives
/// and exit non-zero, like the process transport's child.
[[noreturn]] void run_child(std::uint16_t port, std::uint64_t token,
                            const WorkerContext& context,
                            const matrix::KernelConfig& config,
                            std::uint64_t max_frame_bytes, bool compress) {
#if defined(__linux__)
  // An orphaned worker must not outlive a crashed master.
  ::prctl(PR_SET_PDEATHSIG, SIGKILL);
#endif
  matrix::install_kernel_config(config);

  BufferPool pool;
  for (;;) {
    int fd = -1;
    try {
      fd = dial_master(port);
      handshake(fd, token);
      TcpWorkerPort worker_port(fd, &pool, max_frame_bytes, compress);
      worker_main(context, worker_port, pool);
      ::close(fd);
      ::_exit(0);  // goodbye received: clean exit
    } catch (const TcpDisconnectFault&) {
      // Injected link failure: sever abruptly (no goodbye, no notice)
      // and come back -- worker_main already surrendered the chunk.
      if (fd >= 0) ::close(fd);
    } catch (const PeerDisconnected&) {
      // The link (or the master's endpoint) dropped under us: redial.
      // If the master is really gone, dial_master's deadline (or
      // PDEATHSIG) ends the loop.
      if (fd >= 0) ::close(fd);
    } catch (const std::exception& error) {
      if (fd >= 0) {
        try {
          ByteBuffer notice;
          serde::encode_error(error.what(), notice);
          write_exact(fd, notice.data(), notice.size());
        } catch (...) {
          // The socket is gone too; the EOF alone carries the news.
        }
        ::close(fd);
      }
      ::_exit(2);
    } catch (...) {
      if (fd >= 0) ::close(fd);
      ::_exit(2);
    }
  }
}

// ---- master side ------------------------------------------------------------

/// Owns the listen socket and every connection that has not yet proven
/// an identity: accepts, reads the handshake frame under a tight bound
/// and a deadline, rejects strangers with a kError, and stages
/// authenticated connections by token until an endpoint claims them.
/// Single-threaded like the whole master loop; endpoints drive it by
/// calling poll() from their bootstrap and re-admission paths.
class Acceptor {
 public:
  Acceptor() {
    listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    HMXP_CHECK(listen_fd_ >= 0, "socket failed");
    int one = 1;
    ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
    sockaddr_in addr;
    std::memset(&addr, 0, sizeof addr);
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = 0;  // ephemeral: the kernel picks a free port
    HMXP_CHECK(::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
                      sizeof addr) == 0,
               "bind 127.0.0.1 failed");
    HMXP_CHECK(::listen(listen_fd_, 64) == 0, "listen failed");
    socklen_t len = sizeof addr;
    HMXP_CHECK(::getsockname(listen_fd_,
                             reinterpret_cast<sockaddr*>(&addr), &len) == 0,
               "getsockname failed");
    port_ = ntohs(addr.sin_port);
    const int flags = ::fcntl(listen_fd_, F_GETFL, 0);
    HMXP_CHECK(flags >= 0 &&
                   ::fcntl(listen_fd_, F_SETFL, flags | O_NONBLOCK) == 0,
               "fcntl O_NONBLOCK failed");
  }

  ~Acceptor() { close_all(); }
  Acceptor(const Acceptor&) = delete;
  Acceptor& operator=(const Acceptor&) = delete;

  std::uint16_t port() const { return port_; }

  /// The forked child must not keep the master's listen socket open (a
  /// dangling copy would keep the port alive past the master).
  void close_in_child() noexcept {
    if (listen_fd_ >= 0) ::close(listen_fd_);
  }

  /// Accepts whatever is queued and advances every pending handshake;
  /// non-blocking throughout.
  void poll() {
    accept_new();
    const auto now = Clock::now();
    for (std::size_t i = 0; i < pending_.size();) {
      if (advance(pending_[i]) || now >= pending_[i].deadline) {
        if (pending_[i].fd >= 0) ::close(pending_[i].fd);
        pending_[i] = std::move(pending_.back());
        pending_.pop_back();
        continue;
      }
      ++i;
    }
  }

  /// Claims the staged connection presenting `token`; -1 if none. The
  /// returned fd is non-blocking, ready for an endpoint's pump loop.
  int take(std::uint64_t token, serde::HelloFrame* hello) {
    for (std::size_t i = 0; i < staged_.size(); ++i) {
      if (staged_[i].hello.token != token) continue;
      const int fd = staged_[i].fd;
      *hello = staged_[i].hello;
      staged_[i] = std::move(staged_.back());
      staged_.pop_back();
      return fd;
    }
    return -1;
  }

  void close_all() noexcept {
    if (listen_fd_ >= 0) {
      ::close(listen_fd_);
      listen_fd_ = -1;
    }
    for (const Pending& conn : pending_)
      if (conn.fd >= 0) ::close(conn.fd);
    pending_.clear();
    for (const Staged& conn : staged_)
      if (conn.fd >= 0) ::close(conn.fd);
    staged_.clear();
  }

 private:
  struct Pending {
    int fd = -1;
    ByteBuffer rx;
    Clock::time_point deadline;
  };
  struct Staged {
    int fd = -1;
    serde::HelloFrame hello;
  };

  void accept_new() {
    if (listen_fd_ < 0) return;
    for (;;) {
      const int fd = ::accept4(listen_fd_, nullptr, nullptr, SOCK_NONBLOCK);
      if (fd < 0) {
        if (errno == EINTR) continue;
        break;  // EAGAIN or a transient accept error: try again later
      }
      set_nodelay(fd);
      Pending conn;
      conn.fd = fd;
      conn.deadline = Clock::now() + std::chrono::seconds(10);
      pending_.push_back(std::move(conn));
    }
  }

  /// Reads whatever the pending connection has; true when it should be
  /// dropped (EOF, corruption, rejection), false to keep waiting. A
  /// completed valid hello moves the connection to staged_ (also
  /// returning true -- the fd moved, Pending::fd is cleared).
  bool advance(Pending& conn) {
    std::uint8_t buffer[1024];
    for (;;) {
      const ssize_t n = ::recv(conn.fd, buffer, sizeof buffer, 0);
      if (n > 0) {
        conn.rx.insert(conn.rx.end(), buffer, buffer + n);
        continue;
      }
      if (n == 0) return true;  // EOF before a full hello
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      return true;  // reset or a real error: drop
    }
    if (conn.rx.size() < serde::kLengthBytes) return false;
    std::uint64_t length = 0;
    try {
      length = serde::checked_frame_length(conn.rx.data(),
                                           kHandshakeFrameBytes);
    } catch (const std::exception& error) {
      reject(conn.fd, error.what());
      return true;
    }
    if (conn.rx.size() - serde::kLengthBytes < length) return false;
    try {
      const serde::HelloFrame hello = serde::decode_hello(
          conn.rx.data() + serde::kLengthBytes,
          static_cast<std::size_t>(length));
      Staged staged;
      staged.fd = conn.fd;
      staged.hello = hello;
      staged_.push_back(staged);
      conn.fd = -1;  // ownership moved
      return true;
    } catch (const std::exception& error) {
      // Not an hmxp worker, or a version skew: tell it why (the error
      // names both versions) and close. Best-effort -- the peer may
      // already be gone.
      reject(conn.fd, error.what());
      return true;
    }
  }

  void reject(int fd, const std::string& reason) noexcept {
    try {
      ByteBuffer frame;
      serde::encode_error(reason, frame);
      std::size_t done = 0;
      while (done < frame.size()) {
        const ssize_t n = ::send(fd, frame.data() + done,
                                 frame.size() - done, MSG_NOSIGNAL);
        if (n > 0) {
          done += static_cast<std::size_t>(n);
          continue;
        }
        if (n < 0 && errno == EINTR) continue;
        break;  // non-blocking fd or dead peer: give up quietly
      }
    } catch (...) {
    }
  }

  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::vector<Pending> pending_;
  std::vector<Staged> staged_;
};

class TcpEndpoint final : public Endpoint {
 public:
  TcpEndpoint(int index, std::uint64_t token, pid_t pid, std::size_t credits,
              const serde::HelloFrame& expected_hello,
              const serde::HelloFrame& ack_hello, BufferPool* pool,
              TransportStats* stats, std::uint64_t max_frame_bytes,
              bool compress, Acceptor* acceptor)
      : index_(index),
        token_(token),
        pid_(pid),
        capacity_(credits),
        credits_(credits),
        expected_hello_(expected_hello),
        ack_hello_(ack_hello),
        pool_(pool),
        stats_(stats),
        max_frame_bytes_(max_frame_bytes),
        compress_(compress),
        acceptor_(acceptor) {}

  ~TcpEndpoint() override { teardown(); }

  // ----- Endpoint -----
  void send(WorkerMessage message) override {
    throw_if_dead();
    const auto serde_begin = Clock::now();
    tx_.clear();
    if (auto* chunk = std::get_if<ChunkMessage>(&message)) {
      serde::encode_chunk(*chunk, tx_);
      chunk->c.release_to(*pool_);
    } else if (auto* operands = std::get_if<OperandMessage>(&message)) {
      serde::encode_operand(*operands, tx_);
      operands->a.release_to(*pool_);
      operands->b.release_to(*pool_);
    } else {
      serde::encode_cancel(std::get<CancelMessage>(message), tx_);
    }
    if (compress_) {
      const std::size_t saved = maybe_compress_frame(tx_, scratch_);
      if (saved > 0) {
        ++stats_->frames_compressed;
        stats_->bytes_saved_by_compression += saved;
      }
    }
    stats_->serde_seconds += seconds_since(serde_begin);

    // The bounded-inbox rule: no credit, no send. Pump while waiting so
    // results and credits keep flowing (and death is noticed).
    while (credits_ == 0 && !failed_) wait_io();
    throw_if_dead();
    --credits_;
    write_frame();
    ++stats_->messages_sent;
    stats_->bytes_sent += tx_.size();
  }

  std::optional<ResultMessage> try_recv() override {
    if (results_.empty() && !failed_) pump();
    return pop_result();
  }

  std::optional<ResultMessage> recv() override {
    pump();
    while (results_.empty() && !failed_) wait_io();
    return pop_result();
  }

  bool failed() const override { return failed_; }
  std::exception_ptr error() const override { return error_; }
  bool killed() const override { return killed_; }

  void kill() override {
    if (killed_) return;
    killed_ = true;
    if (pid_ > 0 && !reaped_) ::kill(pid_, SIGKILL);
    if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
  }

  void drain(BufferPool& pool) override {
    while (!results_.empty()) {
      results_.front().c.release_to(pool);
      results_.pop_front();
    }
    rx_.clear();
  }

  /// Re-admission: the master fully recovered from this worker's death
  /// and asks whether it came back. Claim the staged reconnection (if
  /// the worker redialed by now), reset the connection state and the
  /// credit window, ack the handshake, and report the worker healthy.
  bool try_readmit() override {
    if (!failed_ || killed_) return false;
    acceptor_->poll();
    serde::HelloFrame hello;
    const int fd = acceptor_->take(token_, &hello);
    if (fd < 0) return false;
    if (!hello.same_kernel_config(expected_hello_)) {
      // Cannot happen for a forked child (it re-asserts the master's
      // config), but a drop-in remote worker could diverge: refuse.
      ::close(fd);
      return false;
    }
    if (fd_ >= 0) ::close(fd_);
    fd_ = fd;
    rx_.clear();
    eof_ = false;
    failed_ = false;
    error_ = nullptr;
    credits_ = capacity_;
    try {
      tx_.clear();
      serde::encode_hello(ack_hello_, tx_);
      write_frame();
    } catch (...) {
      return false;  // the fresh connection died instantly: stay failed
    }
    return true;
  }

  // ----- transport-internal -----
  /// Blocks until the worker's first connection handshook (validating
  /// its kernel configuration) or it died on the launch pad. Bounded.
  void wait_hello() {
    const auto deadline = Clock::now() + std::chrono::seconds(30);
    while (fd_ < 0 && !failed_) {
      acceptor_->poll();
      serde::HelloFrame hello;
      const int fd = acceptor_->take(token_, &hello);
      if (fd >= 0) {
        adopt(fd, hello);
        return;
      }
      if (Clock::now() >= deadline) {
        mark_failed("no bootstrap hello within 30s");
        return;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }

  /// Graceful stop: an explicit goodbye (so the worker KNOWS this is
  /// not a dead link and must not redial), then half-close.
  void begin_shutdown() noexcept {
    discarding_ = true;
    if (fd_ >= 0 && !killed_ && !failed_) {
      try {
        tx_.clear();
        serde::encode_control(FrameType::kGoodbye, tx_);
        write_frame();
      } catch (...) {
        // A dying connection on the way out carries the news as EOF.
      }
    }
    if (fd_ >= 0 && !killed_) ::shutdown(fd_, SHUT_WR);
  }

  /// Drains the socket to EOF, reaps the child, closes the fd.
  void finish_shutdown() noexcept {
    discarding_ = true;
    if (fd_ >= 0) {
      try {
        while (!eof_ && !failed_) wait_io();
      } catch (...) {
      }
    }
    teardown();
  }

 private:
  void teardown() noexcept {
    if (fd_ >= 0) {
      ::close(fd_);
      fd_ = -1;
    }
    if (pid_ > 0 && !reaped_) {
      // A FAILED child may be alive and redialing (or wedged); nothing
      // upstream is obliged to have killed it, and waitpid must never
      // block on a process that will not exit.
      if (failed_) ::kill(pid_, SIGKILL);
      int status = 0;
      while (::waitpid(pid_, &status, 0) < 0 && errno == EINTR) {
      }
      reaped_ = true;
    }
  }

  [[noreturn]] void throw_dead() { std::rethrow_exception(error_); }
  void throw_if_dead() {
    if (failed_) throw_dead();
  }

  std::optional<ResultMessage> pop_result() {
    if (results_.empty()) return std::nullopt;
    ResultMessage result = std::move(results_.front());
    results_.pop_front();
    ++stats_->messages_received;
    return result;
  }

  void mark_failed(const std::string& reason) {
    if (failed_) return;
    std::string what = "tcp worker " + std::to_string(index_) + ": " + reason;
    if (pid_ > 0 && !reaped_) {
      int status = 0;
      const pid_t reaped = ::waitpid(pid_, &status, WNOHANG);
      if (reaped == pid_) {
        reaped_ = true;
        if (WIFSIGNALED(status)) {
          what += " (killed by signal " + std::to_string(WTERMSIG(status)) +
                  ")";
        } else if (WIFEXITED(status)) {
          what += " (exit status " + std::to_string(WEXITSTATUS(status)) +
                  ")";
        }
      }
    }
    error_ = std::make_exception_ptr(std::runtime_error(what));
    failed_ = true;
  }

  bool adopt(int fd, const serde::HelloFrame& hello) {
    if (!hello.same_kernel_config(expected_hello_)) {
      ::close(fd);
      mark_failed(
          "worker booted with a divergent kernel configuration "
          "(tier/micro-kernel/tuned blocking)");
      return false;
    }
    fd_ = fd;
    eof_ = false;
    try {
      tx_.clear();
      serde::encode_hello(ack_hello_, tx_);
      write_frame();
    } catch (...) {
      return false;  // write_frame already marked the endpoint failed
    }
    return true;
  }

  /// Ships the prepared frame, pumping inbound traffic whenever the
  /// socket back-pressures.
  void write_frame() {
    std::size_t done = 0;
    while (done < tx_.size()) {
      const ssize_t n = ::send(fd_, tx_.data() + done, tx_.size() - done,
                               MSG_NOSIGNAL);
      if (n > 0) {
        done += static_cast<std::size_t>(n);
        continue;
      }
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
        wait_io(/*want_write=*/true);
        if (failed_) throw_dead();
        continue;
      }
      if (n < 0 && errno == EINTR) continue;
      if (n < 0 && (errno == EPIPE || errno == ECONNRESET)) {
        mark_failed("connection lost mid-write");
        throw_dead();
      }
      mark_failed(std::string("send failed: ") + std::strerror(errno));
      throw_dead();
    }
  }

  void wait_io(bool want_write = false, int timeout_ms = -1) {
    if (eof_ || fd_ < 0) {
      if (!failed_) mark_failed("connection closed");
      return;
    }
    struct pollfd entry;
    entry.fd = fd_;
    entry.events = static_cast<short>(POLLIN | (want_write ? POLLOUT : 0));
    entry.revents = 0;
    const int ready = ::poll(&entry, 1, timeout_ms);
    if (ready < 0 && errno != EINTR) {
      mark_failed(std::string("poll failed: ") + std::strerror(errno));
      return;
    }
    pump();
  }

  void pump() {
    if (eof_ || fd_ < 0) return;
    std::uint8_t buffer[1 << 16];
    for (;;) {
      const ssize_t n = ::recv(fd_, buffer, sizeof buffer, 0);
      if (n > 0) {
        rx_.insert(rx_.end(), buffer, buffer + n);
        if (static_cast<std::size_t>(n) < sizeof buffer) break;
        continue;
      }
      if (n == 0) {
        eof_ = true;
        break;
      }
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      if (errno == EINTR) continue;
      if (errno == ECONNRESET) {
        eof_ = true;
        break;
      }
      mark_failed(std::string("recv failed: ") + std::strerror(errno));
      return;
    }
    parse_frames();
    if (eof_ && !failed_ && !discarding_)
      mark_failed("connection lost (closed without a goodbye)");
  }

  void parse_frames() {
    std::size_t cursor = 0;
    while (rx_.size() - cursor >= serde::kLengthBytes) {
      std::uint64_t length = 0;
      try {
        // Geometry-derived bound: a corrupt prefix fails the endpoint
        // cleanly, it never sizes an allocation.
        length = serde::checked_frame_length(rx_.data() + cursor,
                                             max_frame_bytes_);
      } catch (const std::exception& error) {
        mark_failed(error.what());
        break;
      }
      if (rx_.size() - cursor - serde::kLengthBytes < length) break;
      try {
        dispatch(rx_.data() + cursor + serde::kLengthBytes,
                 static_cast<std::size_t>(length));
      } catch (const std::exception& error) {
        mark_failed(std::string("protocol corruption: ") + error.what());
        break;
      }
      cursor += serde::kLengthBytes + static_cast<std::size_t>(length);
      stats_->bytes_received += serde::kLengthBytes +
                               static_cast<std::size_t>(length);
    }
    if (cursor > 0)
      rx_.erase(rx_.begin(),
                rx_.begin() + static_cast<std::ptrdiff_t>(cursor));
  }

  void dispatch(const std::uint8_t* body, std::size_t size) {
    if (serde::frame_type(body, size) == FrameType::kCompressed) {
      // Unwrap (bounded by the same frame limit; nesting rejected by
      // the decoder) and dispatch the inner body.
      serde::decode_compressed(body, size, max_frame_bytes_, raw_);
      dispatch(raw_.data(), raw_.size());
      return;
    }
    switch (serde::frame_type(body, size)) {
      case FrameType::kCredit:
        ++credits_;
        break;
      case FrameType::kResult: {
        if (discarding_) break;
        const auto serde_begin = Clock::now();
        results_.push_back(serde::decode_result(body, size, *pool_));
        stats_->serde_seconds += seconds_since(serde_begin);
        break;
      }
      case FrameType::kError:
        mark_failed(serde::decode_error(body, size));
        break;
      default:
        // Hellos never ride an admitted connection -- the Acceptor owns
        // every handshake -- so one here is as corrupt as any stranger.
        mark_failed("unexpected frame from worker");
        break;
    }
  }

  int index_;
  std::uint64_t token_;
  pid_t pid_;
  std::size_t capacity_;
  std::size_t credits_;
  serde::HelloFrame expected_hello_;
  serde::HelloFrame ack_hello_;
  BufferPool* pool_;
  TransportStats* stats_;
  std::uint64_t max_frame_bytes_;
  bool compress_;
  Acceptor* acceptor_;
  int fd_ = -1;
  ByteBuffer rx_;
  ByteBuffer tx_;
  ByteBuffer raw_;
  ByteBuffer scratch_;
  std::deque<ResultMessage> results_;
  std::exception_ptr error_;
  bool failed_ = false;
  bool killed_ = false;
  bool eof_ = false;
  bool discarding_ = false;
  bool reaped_ = false;
};

class TcpTransport final : public Transport {
 public:
  TcpTransport(int workers, std::size_t inbox_capacity,
               const ExecutorOptions& options, Clock::time_point run_begin,
               BufferPool* pool, std::size_t max_payload_doubles)
      : endpoint_stats_(static_cast<std::size_t>(workers)) {
    // Resolve (possibly autotune) the blocking in the master, before
    // any fork; children re-assert and answer for exactly this state.
    const matrix::KernelConfig config = matrix::current_kernel_config();
    const serde::HelloFrame expected_hello = serde::local_hello(config);
    const std::uint64_t max_frame_bytes =
        options.max_frame_bytes != 0
            ? static_cast<std::uint64_t>(options.max_frame_bytes)
            : serde::max_frame_bytes_for(max_payload_doubles);

    // Identity tokens: random base + index, never 0 (0 marks the
    // socketpair transports, where the fd itself is the identity).
    std::random_device entropy;
    const std::uint64_t base =
        (static_cast<std::uint64_t>(entropy()) << 32) ^ entropy();
    const auto count = static_cast<std::size_t>(workers);
    try {
      endpoints_.reserve(count);
      for (std::size_t i = 0; i < count; ++i) {
        const std::uint64_t token = (base | 1) + i;
        const WorkerContext context =
            make_worker_context(options, static_cast<int>(i), run_begin);
        const bool compress = options.wire_compression;

        const pid_t pid = ::fork();
        HMXP_CHECK(pid >= 0, "fork failed");
        if (pid == 0) {
          // Child: it DIALS, so the only inherited resource to drop is
          // the master's listen socket.
          acceptor_.close_in_child();
          run_child(acceptor_.port(), token, context, config,
                    max_frame_bytes, compress);  // never returns
        }
        serde::HelloFrame ack = expected_hello;
        ack.token = token;
        endpoints_.push_back(std::make_unique<TcpEndpoint>(
            static_cast<int>(i), token, pid, inbox_capacity, expected_hello,
            ack, pool, &endpoint_stats_[i], max_frame_bytes, compress,
            &acceptor_));
      }
    } catch (...) {
      shutdown();
      throw;
    }
    // Synchronize on every worker's bootstrap handshake: launch-pad
    // deaths, version skews and kernel-tier mismatches surface here.
    for (auto& endpoint : endpoints_) endpoint->wait_hello();
  }

  ~TcpTransport() override { shutdown(); }

  TransportKind kind() const override { return TransportKind::kTcp; }
  int worker_count() const override {
    return static_cast<int>(endpoints_.size());
  }
  Endpoint& endpoint(int worker) override {
    HMXP_REQUIRE(worker >= 0 &&
                     static_cast<std::size_t>(worker) < endpoints_.size(),
                 "worker index out of range");
    return *endpoints_[static_cast<std::size_t>(worker)];
  }

  void shutdown() noexcept override {
    for (auto& endpoint : endpoints_) endpoint->begin_shutdown();
    for (auto& endpoint : endpoints_) endpoint->finish_shutdown();
    acceptor_.close_all();
  }

  TransportStats stats() const override {
    TransportStats total;
    for (const TransportStats& slot : endpoint_stats_) total += slot;
    return total;
  }

 private:
  Acceptor acceptor_;
  // One slot per endpoint (each writes only its own; stable addresses,
  // never resized) so concurrent fleet jobs never race on a counter.
  std::vector<TransportStats> endpoint_stats_;
  std::vector<std::unique_ptr<TcpEndpoint>> endpoints_;
};

}  // namespace

std::unique_ptr<Transport> make_tcp_transport(
    int workers, std::size_t inbox_capacity, const ExecutorOptions& options,
    std::chrono::steady_clock::time_point run_begin, BufferPool* pool,
    std::size_t max_payload_doubles) {
  return std::make_unique<TcpTransport>(workers, inbox_capacity, options,
                                        run_begin, pool, max_payload_doubles);
}

}  // namespace hmxp::runtime
