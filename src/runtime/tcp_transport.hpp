// TcpTransport support declarations. The transport itself is reached
// through make_tcp_transport (runtime/transport.hpp); this header only
// exposes what tests and fault-injection hooks need by name.
#pragma once

#include <stdexcept>
#include <string>

namespace hmxp::runtime {

/// Thrown from a fault_hook inside a TCP worker to sever its connection
/// mid-run WITHOUT killing the process: the worker closes its socket
/// abruptly (no goodbye, no error notice), the master observes a dead
/// connection and recovers the orphaned chunk, and the worker redials
/// and re-handshakes -- exercising the disconnect/reconnect lifecycle a
/// real cluster run would see on a flaky link. Outside the TCP
/// transport it behaves as an ordinary worker-killing exception.
class TcpDisconnectFault : public std::runtime_error {
 public:
  explicit TcpDisconnectFault(const std::string& what)
      : std::runtime_error(what) {}
};

}  // namespace hmxp::runtime
