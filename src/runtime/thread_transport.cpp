// ThreadTransport: the in-process backend, today's threaded runtime
// re-seated behind the Transport interface with NO behaviour change.
// One std::thread per worker runs worker_main over a pair of bounded
// channels; messages move by value (zero-copy payload vectors recycled
// through the master's shared BufferPool), and the channel bound IS the
// worker's buffer capacity: a master pushing past it blocks.
#include <atomic>
#include <memory>
#include <thread>
#include <variant>
#include <vector>

#include "runtime/channel.hpp"
#include "runtime/executor.hpp"
#include "runtime/transport.hpp"
#include "runtime/worker_main.hpp"
#include "util/check.hpp"

namespace hmxp::runtime {

namespace {

/// Per-worker thread: runs worker_main over its channels. On any
/// internal error it records the exception, raises its `failed` flag,
/// and closes BOTH its channels, so a master blocked pushing or popping
/// wakes up; the master notices the flag at its next completion sweep
/// -- and either recovers (tolerate_faults) or unwinds and rethrows.
class ThreadWorker final : public WorkerPort {
 public:
  ThreadWorker(WorkerContext context, std::size_t inbox_capacity,
               BufferPool* pool)
      : context_(std::move(context)),
        pool_(pool),
        inbox_(inbox_capacity),
        outbox_(1) {}

  Channel<WorkerMessage>& inbox() { return inbox_; }
  Channel<ResultMessage>& outbox() { return outbox_; }

  void start() {
    thread_ = std::thread([this] { run(); });
  }
  /// Signals the worker to exit once its inbox drains.
  void request_stop() { inbox_.close(); }
  /// Master-initiated decommission: closes both channels so the worker
  /// unblocks and exits; any error it raises on the way out (e.g. a
  /// push on its now-closed outbox) is expected, not a failure.
  void kill() {
    killed_.store(true, std::memory_order_release);
    inbox_.close();
    outbox_.close();
  }
  void join() {
    if (thread_.joinable()) thread_.join();
  }
  /// True once the worker thread died on an exception. The release
  /// store happens after error_ is recorded, so a master that observes
  /// failed() may read error() without a race (even before join).
  bool failed() const { return failed_.load(std::memory_order_acquire); }
  bool killed() const { return killed_.load(std::memory_order_acquire); }
  /// Valid once failed() is observed (or after join()).
  const std::exception_ptr& error() const { return error_; }

  // ----- WorkerPort (the worker-side face of the channels) -----
  std::optional<WorkerMessage> receive() override { return inbox_.pop(); }
  std::optional<WorkerMessage> try_receive() override {
    // On a closed-and-drained inbox this reads nullopt, same as pop():
    // the follow-up blocking receive() re-observes the closure.
    return inbox_.try_pop();
  }
  void send(ResultMessage result) override { outbox_.push(std::move(result)); }

 private:
  void run() {
    try {
      worker_main(context_, *this, *pool_);
    } catch (...) {
      error_ = std::current_exception();
      failed_.store(true, std::memory_order_release);
      inbox_.close();
      outbox_.close();
    }
  }

  WorkerContext context_;
  BufferPool* pool_;
  Channel<WorkerMessage> inbox_;
  Channel<ResultMessage> outbox_;
  std::exception_ptr error_;
  std::atomic<bool> failed_{false};
  std::atomic<bool> killed_{false};
  std::thread thread_;
};

class ThreadEndpoint final : public Endpoint {
 public:
  ThreadEndpoint(ThreadWorker* worker, TransportStats* stats)
      : worker_(worker), stats_(stats) {}

  void send(WorkerMessage message) override {
    worker_->inbox().push(std::move(message));
    ++stats_->messages_sent;
  }
  std::optional<ResultMessage> try_recv() override {
    auto result = worker_->outbox().try_pop();
    if (result.has_value()) ++stats_->messages_received;
    return result;
  }
  std::optional<ResultMessage> recv() override {
    auto result = worker_->outbox().pop();
    if (result.has_value()) ++stats_->messages_received;
    return result;
  }
  bool failed() const override { return worker_->failed(); }
  std::exception_ptr error() const override { return worker_->error(); }
  bool killed() const override { return worker_->killed(); }
  void kill() override { worker_->kill(); }

  /// Hands every payload still queued on the worker's channels back to
  /// the pool (the channels survive close() for draining).
  void drain(BufferPool& pool) override {
    while (auto message = worker_->inbox().try_pop()) {
      if (auto* chunk = std::get_if<ChunkMessage>(&*message)) {
        chunk->c.release_to(pool);
      } else if (auto* operands = std::get_if<OperandMessage>(&*message)) {
        operands->a.release_to(pool);
        operands->b.release_to(pool);
      }
      // CancelMessage carries no payload: nothing to reclaim.
    }
    while (auto result = worker_->outbox().try_pop())
      result->c.release_to(pool);
  }

 private:
  ThreadWorker* worker_;
  TransportStats* stats_;
};

class ThreadTransport final : public Transport {
 public:
  ThreadTransport(int workers, std::size_t inbox_capacity,
                  const ExecutorOptions& options,
                  std::chrono::steady_clock::time_point run_begin,
                  BufferPool* pool)
      : endpoint_stats_(static_cast<std::size_t>(workers)) {
    workers_.reserve(static_cast<std::size_t>(workers));
    endpoints_.reserve(static_cast<std::size_t>(workers));
    for (int i = 0; i < workers; ++i) {
      workers_.push_back(std::make_unique<ThreadWorker>(
          make_worker_context(options, i, run_begin), inbox_capacity, pool));
      // One stats slot per endpoint: each endpoint writes only its own
      // counters, so concurrent master loops over disjoint endpoint
      // sets (fleet mode) never race here; stats() sums at quiescence.
      endpoints_.push_back(std::make_unique<ThreadEndpoint>(
          workers_.back().get(),
          &endpoint_stats_[static_cast<std::size_t>(i)]));
    }
    for (auto& worker : workers_) worker->start();
  }

  ~ThreadTransport() override { shutdown(); }

  TransportKind kind() const override { return TransportKind::kThread; }
  int worker_count() const override {
    return static_cast<int>(workers_.size());
  }
  Endpoint& endpoint(int worker) override {
    HMXP_REQUIRE(worker >= 0 &&
                     static_cast<std::size_t>(worker) < endpoints_.size(),
                 "worker index out of range");
    return *endpoints_[static_cast<std::size_t>(worker)];
  }

  /// Stops and joins every worker. Closing the inboxes lets workers
  /// drain out; popping one pending result per outbox unblocks a worker
  /// stuck handing a result back. Idempotent, safe on error paths.
  void shutdown() noexcept override {
    for (auto& worker : workers_) worker->request_stop();
    for (auto& worker : workers_) {
      (void)worker->outbox().try_pop();
      worker->join();
    }
  }

  TransportStats stats() const override {
    TransportStats total;
    for (const TransportStats& slot : endpoint_stats_) total += slot;
    return total;
  }

 private:
  // Declared before the endpoints that point into it; never resized
  // after construction, so the slot addresses stay stable.
  std::vector<TransportStats> endpoint_stats_;
  std::vector<std::unique_ptr<ThreadWorker>> workers_;
  std::vector<std::unique_ptr<ThreadEndpoint>> endpoints_;
};

}  // namespace

std::unique_ptr<Transport> make_thread_transport(
    int workers, std::size_t inbox_capacity, const ExecutorOptions& options,
    std::chrono::steady_clock::time_point run_begin, BufferPool* pool) {
  return std::make_unique<ThreadTransport>(workers, inbox_capacity, options,
                                           run_begin, pool);
}

}  // namespace hmxp::runtime
