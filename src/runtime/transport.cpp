#include "runtime/transport.hpp"

#include "runtime/executor.hpp"
#include "util/check.hpp"
#include "util/strings.hpp"

namespace hmxp::runtime {

const char* transport_kind_name(TransportKind kind) {
  switch (kind) {
    case TransportKind::kThread:
      return "thread";
    case TransportKind::kProcess:
      return "process";
  }
  return "unknown";
}

std::optional<TransportKind> parse_transport_kind(const std::string& name) {
  const std::string lower = util::to_lower(name);
  if (lower == "thread" || lower == "threads") return TransportKind::kThread;
  if (lower == "process" || lower == "processes")
    return TransportKind::kProcess;
  return std::nullopt;
}

std::unique_ptr<Transport> make_transport(
    TransportKind kind, int workers, std::size_t inbox_capacity,
    const ExecutorOptions& options,
    std::chrono::steady_clock::time_point run_begin, BufferPool* pool) {
  HMXP_REQUIRE(workers > 0, "transport needs at least one worker");
  HMXP_REQUIRE(pool != nullptr, "transport needs a master buffer pool");
  switch (kind) {
    case TransportKind::kThread:
      return make_thread_transport(workers, inbox_capacity, options,
                                   run_begin, pool);
    case TransportKind::kProcess:
      return make_process_transport(workers, inbox_capacity, options,
                                    run_begin, pool);
  }
  HMXP_CHECK(false, "unknown transport kind");
  return nullptr;
}

}  // namespace hmxp::runtime
