#include "runtime/transport.hpp"

#include "runtime/executor.hpp"
#include "util/check.hpp"
#include "util/strings.hpp"

namespace hmxp::runtime {

const char* transport_kind_name(TransportKind kind) {
  switch (kind) {
    case TransportKind::kThread:
      return "thread";
    case TransportKind::kProcess:
      return "process";
    case TransportKind::kShm:
      return "shm";
    case TransportKind::kTcp:
      return "tcp";
  }
  return "unknown";
}

std::optional<TransportKind> parse_transport_kind(const std::string& name) {
  const std::string lower = util::to_lower(name);
  if (lower == "thread" || lower == "threads") return TransportKind::kThread;
  if (lower == "process" || lower == "processes")
    return TransportKind::kProcess;
  if (lower == "shm" || lower == "shmem" || lower == "shared-memory")
    return TransportKind::kShm;
  if (lower == "tcp" || lower == "loopback-tcp" || lower == "socket")
    return TransportKind::kTcp;
  return std::nullopt;
}

TransportStats& TransportStats::operator+=(const TransportStats& other) {
  messages_sent += other.messages_sent;
  messages_received += other.messages_received;
  bytes_sent += other.bytes_sent;
  bytes_received += other.bytes_received;
  serde_seconds += other.serde_seconds;
  bytes_zero_copied += other.bytes_zero_copied;
  arena_slots += other.arena_slots;
  arena_peak_slots += other.arena_peak_slots;
  arena_leaked_slots += other.arena_leaked_slots;
  frames_compressed += other.frames_compressed;
  bytes_saved_by_compression += other.bytes_saved_by_compression;
  return *this;
}

Payload Endpoint::allocate_payload(std::size_t size, BufferPool& pool) {
  return Payload(pool.acquire(size));
}

std::unique_ptr<Transport> make_transport(
    TransportKind kind, int workers, std::size_t inbox_capacity,
    const ExecutorOptions& options,
    std::chrono::steady_clock::time_point run_begin, BufferPool* pool,
    std::size_t max_payload_doubles) {
  HMXP_REQUIRE(workers > 0, "transport needs at least one worker");
  HMXP_REQUIRE(pool != nullptr, "transport needs a master buffer pool");
  switch (kind) {
    case TransportKind::kThread:
      return make_thread_transport(workers, inbox_capacity, options,
                                   run_begin, pool);
    case TransportKind::kProcess:
      return make_process_transport(workers, inbox_capacity, options,
                                    run_begin, pool, max_payload_doubles);
    case TransportKind::kShm:
      return make_shm_transport(workers, inbox_capacity, options, run_begin,
                                pool, max_payload_doubles);
    case TransportKind::kTcp:
      return make_tcp_transport(workers, inbox_capacity, options, run_begin,
                                pool, max_payload_doubles);
  }
  HMXP_CHECK(false, "unknown transport kind");
  return nullptr;
}

}  // namespace hmxp::runtime
