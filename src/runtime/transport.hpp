// The runtime's data plane, abstracted: everything the online master
// does to move bytes -- hand a chunk or operand batch to a worker,
// collect a finished result, decommission a dead worker, reclaim queued
// payloads -- goes through a per-worker Endpoint owned by a Transport.
//
// The master loop (runtime/executor.cpp) is written against this
// interface only; it never touches a channel, a thread, or a file
// descriptor. Two transports implement it:
//
//   * ThreadTransport  (thread_transport.cpp) -- one std::thread per
//     worker over bounded in-process channels. Zero-copy: messages move
//     by value, payload vectors cycle through the shared BufferPool.
//     Behaviour-identical to the pre-transport executor.
//   * ProcessTransport (process_transport.cpp) -- one forked worker
//     PROCESS per worker over a socketpair(2), messages serialized as
//     length-prefixed frames (runtime/serde.hpp). The real isolation of
//     the paper's MPI deployment: a SIGKILL'd child is a first-class
//     worker failure the master survives under tolerate_faults.
//   * ShmTransport (shm_transport.cpp) -- forked workers whose whole
//     data plane lives in pre-fork MAP_SHARED memory: payloads in a
//     SharedArena, descriptor frames (slot, length) in per-worker SPSC
//     byte rings, and dequeue acknowledgements on a futex-backed shared
//     ack board. The socketpair survives only as the bootstrap and
//     death channel (hello, worker error reports, EOF on child exit).
//     Zero-copy ACROSS the process boundary: process isolation at
//     thread-backend speed.
//
// All preserve the semantic load-bearing bound of the simulator's
// engine: a worker's inbox holds at most `inbox_capacity` messages (the
// chunk plus prefetch_depth + 1 operand batches), so a master pushing
// past a worker's buffer capacity BLOCKS -- channels enforce it with
// their queue bound, the process transport with explicit buffer credits
// the worker returns as it dequeues, the shm transport by comparing its
// sent counter against the worker's ack-board dequeue counter. A
// real-cluster (MPI/ssh) transport is a drop-in implementation of the
// same interface.
#pragma once

#include <chrono>
#include <cstddef>
#include <exception>
#include <memory>
#include <optional>
#include <string>

#include "runtime/buffer_pool.hpp"
#include "runtime/messages.hpp"

namespace hmxp::runtime {

struct ExecutorOptions;  // executor.hpp; broken include cycle

enum class TransportKind { kThread, kProcess, kShm, kTcp };

/// "thread", "process", "shm" or "tcp".
const char* transport_kind_name(TransportKind kind);
/// Parses a transport name (case-insensitive); nullopt if unrecognized.
std::optional<TransportKind> parse_transport_kind(const std::string& name);

/// Aggregate data-plane counters for one run. Message counts are filled
/// by every transport; byte and serialization-time counters only by
/// transports that serialize (the thread transport moves messages
/// zero-copy, so its bytes stay 0 by design).
struct TransportStats {
  std::size_t messages_sent = 0;      // master -> workers
  std::size_t messages_received = 0;  // workers -> master (results)
  std::size_t bytes_sent = 0;         // serialized frame bytes out
  std::size_t bytes_received = 0;     // serialized frame bytes in
  /// Master-side wall seconds spent encoding and decoding frames: the
  /// serialization overhead the process backend pays per run.
  double serde_seconds = 0.0;
  /// Payload bytes that crossed the process boundary WITHOUT being
  /// copied (shm transport: bytes referenced by descriptor frames).
  std::size_t bytes_zero_copied = 0;
  /// Shared-arena occupancy (shm transport only): total slots, the
  /// high-water mark of simultaneously held slots, and slots still held
  /// at shutdown (must be 0 -- anything else is a reclamation bug).
  std::size_t arena_slots = 0;
  std::size_t arena_peak_slots = 0;
  std::size_t arena_leaked_slots = 0;
  /// Wire-compression outcome (TCP transport with
  /// ExecutorOptions::wire_compression on): master-side frames that
  /// shipped compressed, and the bytes the codec removed from them. The
  /// sender keeps a frame raw when compression fails to shrink it, so
  /// incompressible traffic leaves both counters at 0.
  std::size_t frames_compressed = 0;
  std::size_t bytes_saved_by_compression = 0;

  /// Field-wise accumulation. Transports keep one stats slot PER
  /// endpoint (each endpoint writes only its own, so two master loops
  /// driving disjoint endpoint sets -- concurrent jobs on a shared
  /// fleet -- never race on a counter) and sum the slots here. Only
  /// meaningful at a quiescent point: after shutdown, or between jobs.
  TransportStats& operator+=(const TransportStats& other);
};

/// The master's handle to ONE worker's data plane.
class Endpoint {
 public:
  virtual ~Endpoint() = default;

  /// Ships a message to the worker. Blocks while the worker's bounded
  /// inbox is full (the prefetch_depth + 1 backpressure rule). Throws
  /// if the worker is dead; with ExecutorOptions::tolerate_faults the
  /// master catches this, rolls its mirror back and recovers.
  virtual void send(WorkerMessage message) = 0;

  /// Non-blocking receive of a finished chunk; nullopt when none is
  /// ready. Also the transport's failure-detection pump: a dead worker
  /// is discovered here at the latest (failed() flips).
  virtual std::optional<ResultMessage> try_recv() = 0;

  /// Blocking receive: the master waiting on the port for a worker to
  /// hand its chunk back. nullopt means the worker is gone for good.
  virtual std::optional<ResultMessage> recv() = 0;

  /// True once the worker died (exception in a worker thread, a worker
  /// process that exited or was SIGKILL'd). Sticky.
  virtual bool failed() const = 0;
  /// The root cause, valid once failed() is observed. Thread workers
  /// hand their real exception across; process workers synthesize one
  /// from the exit status (a child cannot serialize its exception).
  virtual std::exception_ptr error() const = 0;

  /// True once the master decommissioned the worker via kill().
  virtual bool killed() const = 0;
  /// Master-initiated decommission: tears the worker down without
  /// waiting for it to drain (closes channels / SIGKILLs the child).
  /// Errors the worker raises on the way out are expected, not failures.
  virtual void kill() = 0;

  /// Hands every payload still queued on the endpoint back to the pool
  /// (a dead worker's in-flight messages must not leak their buffers).
  /// The shm endpoint additionally reclaims every arena slot the dead
  /// worker still held -- including slots a SIGKILL'd child was holding
  /// mid-compute -- so fault recovery never leaks arena capacity.
  virtual void drain(BufferPool& pool) = 0;

  /// Checks out payload storage for a message headed to THIS worker.
  /// The default hands out a pool vector (thread/process transports);
  /// the shm endpoint instead acquires an arena slot tagged with this
  /// worker, blocking -- and pumping its socket -- while the arena is
  /// full, which makes arena capacity part of the backpressure rule.
  virtual Payload allocate_payload(std::size_t size, BufferPool& pool);

  /// Worker re-admission: a transport whose workers can come BACK (the
  /// TCP transport's reconnect lifecycle) reports here that a failed
  /// worker re-established its connection -- the endpoint is healthy
  /// again (fresh connection, credits reset, sticky failure cleared)
  /// and the master may resume scheduling it. The master polls this
  /// only AFTER it fully recovered from the failure (mirror rolled
  /// back, in-flight chunk returned), so a rejoin is a hot-join of an
  /// idle worker. Default: failures are final.
  virtual bool try_readmit() { return false; }
};

/// Owns the worker set of one run: endpoints while running, join/reap
/// on shutdown.
class Transport {
 public:
  virtual ~Transport() = default;

  virtual TransportKind kind() const = 0;
  const char* name() const { return transport_kind_name(kind()); }
  virtual int worker_count() const = 0;
  virtual Endpoint& endpoint(int worker) = 0;

  /// Stops every worker and reclaims it (join threads / reap child
  /// processes). Idempotent, noexcept: safe on error paths, called by
  /// the destructor as a backstop.
  virtual void shutdown() noexcept = 0;

  virtual TransportStats stats() const = 0;
};

/// Spawns the workers of one run on the requested transport.
/// `inbox_capacity` is the bounded per-worker inbox depth (the chunk
/// message plus prefetch_depth + 1 operand slots). `pool` is the
/// master-side payload pool: the thread transport shares it with its
/// workers (zero-copy), the process transport recycles master-side
/// encode/decode buffers through it while each child owns a private
/// pool in its own address space. `max_payload_doubles` is the largest
/// single payload the run can ship (from the partition geometry): the
/// shm transport sizes its arena slots with it, and every serializing
/// transport derives its per-endpoint frame-length limit from it
/// (serde::max_frame_bytes_for) so corrupt prefixes fail cleanly.
std::unique_ptr<Transport> make_transport(
    TransportKind kind, int workers, std::size_t inbox_capacity,
    const ExecutorOptions& options,
    std::chrono::steady_clock::time_point run_begin, BufferPool* pool,
    std::size_t max_payload_doubles);

std::unique_ptr<Transport> make_thread_transport(
    int workers, std::size_t inbox_capacity, const ExecutorOptions& options,
    std::chrono::steady_clock::time_point run_begin, BufferPool* pool);

std::unique_ptr<Transport> make_process_transport(
    int workers, std::size_t inbox_capacity, const ExecutorOptions& options,
    std::chrono::steady_clock::time_point run_begin, BufferPool* pool,
    std::size_t max_payload_doubles);

std::unique_ptr<Transport> make_shm_transport(
    int workers, std::size_t inbox_capacity, const ExecutorOptions& options,
    std::chrono::steady_clock::time_point run_begin, BufferPool* pool,
    std::size_t max_payload_doubles);

std::unique_ptr<Transport> make_tcp_transport(
    int workers, std::size_t inbox_capacity, const ExecutorOptions& options,
    std::chrono::steady_clock::time_point run_begin, BufferPool* pool,
    std::size_t max_payload_doubles);

}  // namespace hmxp::runtime
