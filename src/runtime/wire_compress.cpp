#include "runtime/wire_compress.hpp"

#include <cstring>
#include <stdexcept>

namespace hmxp::runtime::wire {

void compress(const std::uint8_t* src, std::size_t n,
              std::vector<std::uint8_t>& out) {
  std::size_t i = 0;
  while (i < n) {
    if (src[i] != 0) {
      std::size_t j = i;
      while (j < n && src[j] != 0) ++j;
      out.insert(out.end(), src + i, src + j);
      i = j;
    } else {
      std::size_t j = i;
      while (j < n && src[j] == 0 && j - i < 256) ++j;
      out.push_back(0);
      out.push_back(static_cast<std::uint8_t>(j - i - 1));
      i = j;
    }
  }
}

void decompress(const std::uint8_t* src, std::size_t n, std::uint8_t* dst,
                std::size_t raw_size) {
  std::size_t in = 0;
  std::size_t out = 0;
  while (in < n) {
    const std::uint8_t byte = src[in++];
    if (byte != 0) {
      if (out >= raw_size)
        throw std::runtime_error(
            "corrupt compressed stream: overflows declared raw size");
      dst[out++] = byte;
      continue;
    }
    if (in >= n)
      throw std::runtime_error("corrupt compressed stream: truncated run");
    const std::size_t run = 1u + src[in++];
    if (run > raw_size - out)
      throw std::runtime_error(
          "corrupt compressed stream: overflows declared raw size");
    std::memset(dst + out, 0, run);
    out += run;
  }
  if (out != raw_size)
    throw std::runtime_error(
        "corrupt compressed stream: underflows declared raw size");
}

}  // namespace hmxp::runtime::wire
