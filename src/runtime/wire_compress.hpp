// Wire-level payload compression for the TCP transport: a zero-run-
// length byte codec, self-contained (no external compression library --
// the build environment is hermetic by design).
//
// Why zero-RLE: the dominant compressible frames in this protocol are
// outbound C chunks early in a product whose C starts at (or near)
// zero, and the structural zeros of short edge panels. Dense random
// payloads do not compress -- the sender keeps a frame raw whenever the
// codec fails to shrink it, so incompressible traffic pays nothing but
// the encode attempt. The paper's CCR analysis prices exactly the
// bandwidth-bound regime where shaving those bytes buys makespan.
//
// Stream format: literal bytes are copied verbatim; every 0x00 in the
// source encodes as the pair [0x00][u8 extra], meaning 1 + extra
// consecutive zeros. Worst case (no zeros) the stream equals the
// source; isolated zeros cost one extra byte each.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace hmxp::runtime::wire {

/// Appends the compressed stream for src[0..n) to `out`.
void compress(const std::uint8_t* src, std::size_t n,
              std::vector<std::uint8_t>& out);

/// Decompresses a stream of `n` bytes into dst[0..raw_size). Throws
/// std::runtime_error on any corrupt stream: a truncated run pair, or a
/// stream that over- or under-fills the declared size. Writes are
/// bounded by `raw_size` (which the CALLER validates against its frame
/// limit before allocating dst), never by wire content.
void decompress(const std::uint8_t* src, std::size_t n, std::uint8_t* dst,
                std::size_t raw_size);

}  // namespace hmxp::runtime::wire
