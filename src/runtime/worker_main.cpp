#include "runtime/worker_main.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>
#include <variant>
#include <vector>

#include "matrix/gemm.hpp"
#include "runtime/executor.hpp"
#include "util/check.hpp"

namespace hmxp::runtime {

WorkerContext make_worker_context(
    const ExecutorOptions& options, int index,
    std::chrono::steady_clock::time_point run_begin) {
  WorkerContext context;
  context.index = index;
  context.base_slowdown =
      options.compute_slowdown.empty()
          ? 1
          : options.compute_slowdown[static_cast<std::size_t>(index)];
  context.perturbation = &options.perturbation;
  context.faults = &options.faults;
  context.fault_hook = options.fault_hook;
  context.run_begin = run_begin;
  return context;
}

namespace {

using Clock = std::chrono::steady_clock;

/// One worker's protocol state machine: at most one resident chunk,
/// steps consumed strictly in order.
class WorkerLoop {
 public:
  WorkerLoop(const WorkerContext& context, WorkerPort& port, BufferPool& pool)
      : context_(context), port_(port), pool_(pool) {}

  void run() {
    while (auto message = port_.receive()) {
      check_scheduled_fault();
      if (auto* chunk = std::get_if<ChunkMessage>(&*message)) {
        HMXP_CHECK(!chunk_.has_value(), "worker received chunk mid-chunk");
        chunk_ = std::move(*chunk);
        steps_done_ = 0;
        step_seconds_.clear();
      } else {
        process(std::move(std::get<OperandMessage>(*message)));
      }
    }
  }

  /// A dying worker hands the pool back what it can (its resident C
  /// copy); in-flight locals are freed by unwinding instead.
  void surrender_chunk() {
    if (chunk_.has_value()) {
      chunk_->c.release_to(pool_);
      chunk_.reset();
    }
  }

 private:
  /// Wall-clock fault schedule: the worker dies for good once its event
  /// time passes, whatever it was about to do.
  void check_scheduled_fault() const {
    if (context_.faults == nullptr || context_.faults->empty()) return;
    const double elapsed = std::chrono::duration<double>(
                               Clock::now() - context_.run_begin)
                               .count();
    if (context_.faults->dead(context_.index, elapsed))
      throw std::runtime_error("scheduled fault: worker " +
                               std::to_string(context_.index) + " died at t=" +
                               std::to_string(elapsed));
  }

  /// Compute repetitions in force right now: the static per-worker
  /// factor times the dynamic perturbation factor at the current wall
  /// offset -- the platform really changes under the master mid-run.
  int current_reps() const {
    if (context_.perturbation == nullptr || context_.perturbation->empty())
      return context_.base_slowdown;
    const double elapsed = std::chrono::duration<double>(
                               Clock::now() - context_.run_begin)
                               .count();
    const double factor =
        context_.perturbation->factor(context_.index, elapsed);
    return std::max(
        1, static_cast<int>(std::lround(
               static_cast<double>(context_.base_slowdown) * factor)));
  }

  void process(OperandMessage&& operands) {
    HMXP_CHECK(chunk_.has_value(), "operands before chunk");
    ChunkMessage& chunk = *chunk_;
    HMXP_CHECK(operands.step == steps_done_, "operand step out of order");
    if (context_.fault_hook) context_.fault_hook(context_.index, operands.step);

    const auto step_begin = Clock::now();
    const std::size_t rows = chunk.element_rows;
    const std::size_t cols = chunk.element_cols;
    const std::size_t kk = operands.k_elems;
    matrix::ConstView a(operands.a.data(), rows, kk, kk);
    matrix::ConstView b(operands.b.data(), kk, cols, cols);
    matrix::View c(chunk.c.data(), rows, cols, cols);
    matrix::gemm_auto(a, b, c);

    // Emulated slowdown: redo the same product into scratch, discarding
    // the result, exactly like the paper's artificial deceleration.
    const int reps = current_reps();
    if (reps > 1) {
      std::vector<double> scratch = pool_.acquire(rows * cols);
      matrix::View sink(scratch.data(), rows, cols, cols);
      for (int rep = 1; rep < reps; ++rep) matrix::gemm_auto(a, b, sink);
      pool_.release(std::move(scratch));
    }
    // The step's measured latency (repetitions included): what the
    // master's calibration loop gets to see.
    step_seconds_.push_back(
        std::chrono::duration<double>(Clock::now() - step_begin).count());

    // Operand buffers are consumed: hand their storage back for reuse
    // (arena slots return to the arena, pool vectors to the pool).
    operands.a.release_to(pool_);
    operands.b.release_to(pool_);

    ++steps_done_;
    if (steps_done_ == chunk.plan.steps.size()) {
      ResultMessage result;
      result.plan = chunk.plan;
      result.element_rows = rows;
      result.element_cols = cols;
      result.c = std::move(chunk.c);
      result.updates_performed = steps_done_;
      result.step_seconds = std::move(step_seconds_);
      step_seconds_.clear();
      chunk_.reset();
      port_.send(std::move(result));
    }
  }

  const WorkerContext& context_;
  WorkerPort& port_;
  BufferPool& pool_;
  std::optional<ChunkMessage> chunk_;
  std::size_t steps_done_ = 0;
  std::vector<double> step_seconds_;
};

}  // namespace

void worker_main(const WorkerContext& context, WorkerPort& port,
                 BufferPool& pool) {
  WorkerLoop loop(context, port, pool);
  try {
    loop.run();
  } catch (...) {
    loop.surrender_chunk();
    throw;
  }
}

}  // namespace hmxp::runtime
