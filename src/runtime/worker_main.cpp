#include "runtime/worker_main.hpp"

#include <algorithm>
#include <cmath>
#include <deque>
#include <stdexcept>
#include <string>
#include <variant>
#include <vector>

#include "matrix/gemm.hpp"
#include "runtime/executor.hpp"
#include "util/check.hpp"

namespace hmxp::runtime {

WorkerContext make_worker_context(
    const ExecutorOptions& options, int index,
    std::chrono::steady_clock::time_point run_begin) {
  WorkerContext context;
  context.index = index;
  context.base_slowdown =
      options.compute_slowdown.empty()
          ? 1
          : options.compute_slowdown[static_cast<std::size_t>(index)];
  context.perturbation = &options.perturbation;
  context.faults = &options.faults;
  context.fault_hook = options.fault_hook;
  context.run_begin = run_begin;
  return context;
}

namespace {

using Clock = std::chrono::steady_clock;

/// One worker's protocol state machine: at most one resident chunk,
/// steps consumed strictly in order.
class WorkerLoop {
 public:
  WorkerLoop(const WorkerContext& context, WorkerPort& port, BufferPool& pool)
      : context_(context), port_(port), pool_(pool) {}

  void run() {
    while (auto message = next_message()) {
      check_scheduled_fault();
      if (auto* chunk = std::get_if<ChunkMessage>(&*message)) {
        HMXP_CHECK(!chunk_.has_value(), "worker received chunk mid-chunk");
        chunk_ = std::move(*chunk);
        steps_done_ = 0;
        step_seconds_.clear();
        revoked_ = false;
      } else if (auto* cancel = std::get_if<CancelMessage>(&*message)) {
        // Non-fatal revocation: drop the named chunk and keep serving.
        // A mismatched seq means the result already shipped (the master
        // discards it by seq); nothing to do here.
        if (chunk_.has_value() && chunk_->seq == cancel->seq) drop_chunk();
      } else {
        OperandMessage operands =
            std::move(std::get<OperandMessage>(*message));
        // Before paying for a step, scan everything the master already
        // queued for a revocation of the resident chunk: each further
        // step of a cancelled chunk is dead work whose result the
        // master would discard by seq anyway.
        if (cancel_queued()) drop_chunk();
        if (!chunk_.has_value()) {
          HMXP_CHECK(revoked_, "operands before chunk");
          // A stale step of the revoked chunk: recycle, never compute.
          operands.a.release_to(pool_);
          operands.b.release_to(pool_);
        } else {
          process(std::move(operands));
        }
      }
    }
  }

  /// A dying worker hands the pool back what it can (its resident C
  /// copy); in-flight locals are freed by unwinding instead.
  void surrender_chunk() {
    if (chunk_.has_value()) {
      chunk_->c.release_to(pool_);
      chunk_.reset();
    }
  }

 private:
  /// Queued messages drained by the cancel lookahead, replayed in order
  /// before the port is read again.
  std::optional<WorkerMessage> next_message() {
    if (!lookahead_.empty()) {
      WorkerMessage message = std::move(lookahead_.front());
      lookahead_.pop_front();
      return message;
    }
    return port_.receive();
  }

  /// Drains whatever the port has buffered and reports whether a cancel
  /// naming the RESIDENT chunk is among it. Drained messages keep their
  /// order through lookahead_, so the protocol stream is untouched --
  /// the matched cancel itself degrades to a no-op once dequeued.
  bool cancel_queued() {
    if (!chunk_.has_value()) return false;
    while (auto extra = port_.try_receive())
      lookahead_.push_back(std::move(*extra));
    for (const WorkerMessage& queued : lookahead_) {
      const auto* cancel = std::get_if<CancelMessage>(&queued);
      if (cancel != nullptr && cancel->seq == chunk_->seq) return true;
    }
    return false;
  }

  /// Revocation: the resident chunk's C copy goes back to the pool and
  /// in-flight operand steps that still name it are discarded, not
  /// computed, until the next ChunkMessage re-arms the worker.
  void drop_chunk() {
    steps_done_ = 0;
    step_seconds_.clear();
    surrender_chunk();
    revoked_ = true;
  }

  /// Wall-clock fault schedule: the worker dies for good once its event
  /// time passes, whatever it was about to do.
  void check_scheduled_fault() const {
    if (context_.faults == nullptr || context_.faults->empty()) return;
    const double elapsed = std::chrono::duration<double>(
                               Clock::now() - context_.run_begin)
                               .count();
    if (context_.faults->dead(context_.index, elapsed))
      throw std::runtime_error("scheduled fault: worker " +
                               std::to_string(context_.index) + " died at t=" +
                               std::to_string(elapsed));
  }

  /// Compute repetitions in force right now: the static per-worker
  /// factor times the dynamic perturbation factor at the current wall
  /// offset -- the platform really changes under the master mid-run.
  int current_reps() const {
    if (context_.perturbation == nullptr || context_.perturbation->empty())
      return context_.base_slowdown;
    const double elapsed = std::chrono::duration<double>(
                               Clock::now() - context_.run_begin)
                               .count();
    const double factor =
        context_.perturbation->factor(context_.index, elapsed);
    return std::max(
        1, static_cast<int>(std::lround(
               static_cast<double>(context_.base_slowdown) * factor)));
  }

  void process(OperandMessage&& operands) {
    HMXP_CHECK(chunk_.has_value(), "operands before chunk");
    ChunkMessage& chunk = *chunk_;
    HMXP_CHECK(operands.step == steps_done_, "operand step out of order");
    // The hook runs INSIDE the timed window: a hook that stalls (or
    // throws) emulates the worker itself degrading, so its latency must
    // reach the master's calibration loop like any real slowdown.
    const auto step_begin = Clock::now();
    if (context_.fault_hook) context_.fault_hook(context_.index, operands.step);
    const std::size_t rows = chunk.element_rows;
    const std::size_t cols = chunk.element_cols;
    const std::size_t kk = operands.k_elems;
    matrix::ConstView a(operands.a.data(), rows, kk, kk);
    matrix::ConstView b(operands.b.data(), kk, cols, cols);
    matrix::View c(chunk.c.data(), rows, cols, cols);
    matrix::gemm_auto(a, b, c);

    // Emulated slowdown: redo the same product into scratch, discarding
    // the result, exactly like the paper's artificial deceleration.
    const int reps = current_reps();
    if (reps > 1) {
      std::vector<double> scratch = pool_.acquire(rows * cols);
      matrix::View sink(scratch.data(), rows, cols, cols);
      for (int rep = 1; rep < reps; ++rep) matrix::gemm_auto(a, b, sink);
      pool_.release(std::move(scratch));
    }
    // The step's measured latency (repetitions included): what the
    // master's calibration loop gets to see.
    step_seconds_.push_back(
        std::chrono::duration<double>(Clock::now() - step_begin).count());

    // Operand buffers are consumed: hand their storage back for reuse
    // (arena slots return to the arena, pool vectors to the pool).
    operands.a.release_to(pool_);
    operands.b.release_to(pool_);

    ++steps_done_;
    if (steps_done_ == chunk.plan.steps.size()) {
      ResultMessage result;
      result.plan = chunk.plan;
      result.element_rows = rows;
      result.element_cols = cols;
      result.c = std::move(chunk.c);
      result.updates_performed = steps_done_;
      result.step_seconds = std::move(step_seconds_);
      result.seq = chunk.seq;
      step_seconds_.clear();
      chunk_.reset();
      port_.send(std::move(result));
    }
  }

  const WorkerContext& context_;
  WorkerPort& port_;
  BufferPool& pool_;
  std::optional<ChunkMessage> chunk_;
  std::size_t steps_done_ = 0;
  std::vector<double> step_seconds_;
  std::deque<WorkerMessage> lookahead_;
  bool revoked_ = false;  // operands may legitimately arrive chunk-less
};

}  // namespace

void worker_main(const WorkerContext& context, WorkerPort& port,
                 BufferPool& pool) {
  WorkerLoop loop(context, port, pool);
  try {
    loop.run();
    // A clean port close can still leave a resident chunk (the master
    // decommissioned the worker mid-chunk): its C copy must go back to
    // the pool too, or the pool's accounting leaks the buffer.
    loop.surrender_chunk();
  } catch (...) {
    loop.surrender_chunk();
    throw;
  }
}

}  // namespace hmxp::runtime
