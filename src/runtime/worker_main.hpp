// The worker side of the runtime protocol, extracted so it runs
// IDENTICALLY in a std::thread (ThreadTransport) and in a forked child
// process (ProcessTransport): receive a chunk, then per step receive an
// operand batch, perform the real block updates (with the paper's
// emulated slowdown, the wall-clock perturbation schedule, scheduled
// faults and the fault-injection hook), and hand the finished chunk
// back with its measured per-step latencies.
//
// The transport a worker runs over is abstracted as a WorkerPort; the
// loop itself never knows whether its messages cross a channel or a
// socket. Errors propagate by exception to the caller, which owns the
// transport-specific death protocol (a thread records the exception and
// closes its channels; a child process exits non-zero and lets the
// socket EOF carry the news).
#pragma once

#include <chrono>
#include <functional>
#include <optional>

#include "platform/perturbation.hpp"
#include "runtime/buffer_pool.hpp"
#include "runtime/messages.hpp"

namespace hmxp::runtime {

/// Per-worker configuration, snapshotted from ExecutorOptions by the
/// transport that spawns the worker. Pointed-to schedules must outlive
/// the worker (they live in the executor's options; a forked child
/// inherits its own copy-on-write copy of them).
struct WorkerContext {
  int index = 0;
  /// Static compute repetition factor (>= 1), the paper's slowdown trick.
  int base_slowdown = 1;
  const platform::SlowdownSchedule* perturbation = nullptr;
  const platform::FaultSchedule* faults = nullptr;
  std::function<void(int worker, std::size_t step)> fault_hook;
  std::chrono::steady_clock::time_point run_begin{};
};

struct ExecutorOptions;  // executor.hpp; broken include cycle

/// The one snapshot rule both transports share: worker `index`'s
/// context from the run's options (schedules and hook stay pointers
/// into `options`, which must outlive the worker).
WorkerContext make_worker_context(const ExecutorOptions& options, int index,
                                  std::chrono::steady_clock::time_point
                                      run_begin);

/// The worker's view of its transport: blocking message intake (nullopt
/// = closed, exit cleanly) and result return.
class WorkerPort {
 public:
  virtual ~WorkerPort() = default;
  virtual std::optional<WorkerMessage> receive() = 0;
  virtual void send(ResultMessage result) = 0;
  /// Non-blocking peek-and-take: the next message if one is ALREADY
  /// buffered, nullopt otherwise (which never means end-of-stream --
  /// only receive() signals that). The worker loop uses it to spot a
  /// CancelMessage queued behind operand batches before paying for the
  /// steps a revoked chunk would waste. Ports without cheap polling may
  /// keep the default: lookahead is an optimization, never a
  /// correctness requirement.
  virtual std::optional<WorkerMessage> try_receive() { return std::nullopt; }
};

/// Runs the worker protocol until the port closes. Payload buffers cycle
/// through `pool` (the shared master pool for thread workers, a private
/// per-process pool for forked workers). Throws on scheduled faults,
/// fault-hook injections, protocol violations, or port errors.
void worker_main(const WorkerContext& context, WorkerPort& port,
                 BufferPool& pool);

}  // namespace hmxp::runtime
