#include "sched/chunk_source.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace hmxp::sched {

namespace {
std::vector<model::BlockCount> default_widths(
    const platform::Platform& platform, Layout layout) {
  std::vector<model::BlockCount> widths;
  widths.reserve(static_cast<std::size_t>(platform.size()));
  for (const platform::WorkerSpec& worker : platform.workers()) {
    switch (layout) {
      case Layout::kDoubleBuffered:
        widths.push_back(worker.mu());
        break;
      case Layout::kToledo:
        widths.push_back(worker.beta());
        break;
      case Layout::kMaxReuse:
        widths.push_back(model::max_reuse_mu(worker.m));
        break;
    }
  }
  return widths;
}
}  // namespace

ChunkSource::ChunkSource(const platform::Platform& platform,
                         const matrix::Partition& partition, Layout layout)
    : platform_(&platform),
      partition_(partition),
      layout_(layout),
      widths_(default_widths(platform, layout)),
      groups_(static_cast<std::size_t>(platform.size())),
      remaining_(partition.c_blocks()) {}

ChunkSource::ChunkSource(const platform::Platform& platform,
                         const matrix::Partition& partition, Layout layout,
                         model::BlockCount uniform_width)
    : platform_(&platform),
      partition_(partition),
      layout_(layout),
      widths_(static_cast<std::size_t>(platform.size()), uniform_width),
      groups_(static_cast<std::size_t>(platform.size())),
      remaining_(partition.c_blocks()) {
  HMXP_REQUIRE(uniform_width >= 1, "chunk width must be positive");
}

model::BlockCount ChunkSource::width(int worker) const {
  HMXP_REQUIRE(worker >= 0 && worker < platform_->size(),
               "worker index out of range");
  return widths_[static_cast<std::size_t>(worker)];
}

std::optional<matrix::BlockRect> ChunkSource::carve(
    int worker, Group& group, std::size_t& next_col,
    std::vector<FreeRange>& released) const {
  const auto mu = static_cast<std::size_t>(width(worker));
  if (!group.open() || group.next_row >= partition_.r()) {
    if (!released.empty()) {
      // Adopt territory a failed worker left behind, at most mu columns
      // at a time (the adopter's memory rules its chunk side, not the
      // previous owner's); any leftover span stays adoptable.
      FreeRange& range = released.back();
      group.j0 = range.j0;
      group.j1 = std::min(range.j0 + mu, range.j1);
      group.next_row = range.row0;
      if (group.j1 == range.j1) {
        released.pop_back();
      } else {
        range.j0 = group.j1;
      }
    } else {
      // Claim a fresh column group.
      if (next_col >= partition_.s()) return std::nullopt;
      group.j0 = next_col;
      group.j1 = std::min(next_col + mu, partition_.s());
      group.next_row = 0;
      next_col = group.j1;
    }
  }
  // Balanced row slicing: the rows still to carve split into
  // ceil(left/mu) nearly equal slices rather than mu-tall slices plus a
  // sliver. A sliver chunk (e.g. 11 rows when r = 100, mu = 89) carries
  // almost no work per operand batch, so every work-per-port-time
  // heuristic starves it until the drain phase, where its t serialized
  // batches extend the makespan; balanced slices keep every chunk's
  // work-to-communication ratio comparable. Each slice still fits the
  // worker's memory (height <= mu). Slicing the REMAINDER (not the full
  // r) yields the same boundaries for a group consumed from row 0 and
  // additionally handles adopted groups that start mid-matrix.
  const std::size_t r = partition_.r();
  const std::size_t left = r - group.next_row;
  const std::size_t slices = (left + mu - 1) / mu;
  const std::size_t height = slices == 0 ? 0 : (left + slices - 1) / slices;

  matrix::BlockRect rect;
  rect.i0 = group.next_row;
  rect.i1 = std::min(rect.i0 + height, r);
  rect.j0 = group.j0;
  rect.j1 = group.j1;
  group.next_row = rect.i1;
  HMXP_CHECK(!rect.empty(), "carved an empty chunk");
  return rect;
}

sim::ChunkPlan ChunkSource::to_plan(int worker,
                                    const matrix::BlockRect& rect) const {
  switch (layout_) {
    case Layout::kDoubleBuffered:
      return sim::make_double_buffered_chunk(rect, partition_.t());
    case Layout::kToledo:
      return sim::make_toledo_chunk(rect, partition_.t(),
                                    platform_->worker(worker).beta());
    case Layout::kMaxReuse:
      return sim::make_max_reuse_chunk(rect, partition_.t());
  }
  HMXP_CHECK(false, "unreachable");
  return {};
}

std::optional<sim::ChunkPlan> ChunkSource::next_chunk(int worker) {
  HMXP_REQUIRE(worker >= 0 && worker < platform_->size(),
               "worker index out of range");
  Group& group = groups_[static_cast<std::size_t>(worker)];
  const auto rect = carve(worker, group, next_col_, released_);
  if (!rect) return std::nullopt;
  remaining_ -= rect->count();
  return to_plan(worker, *rect);
}

std::optional<sim::ChunkPlan> ChunkSource::peek_chunk(int worker) const {
  HMXP_REQUIRE(worker >= 0 && worker < platform_->size(),
               "worker index out of range");
  Group group = groups_[static_cast<std::size_t>(worker)];
  std::size_t next_col = next_col_;
  std::vector<FreeRange> released = released_;
  const auto rect = carve(worker, group, next_col, released);
  if (!rect) return std::nullopt;
  return to_plan(worker, *rect);
}

void ChunkSource::release_worker(int worker) {
  HMXP_REQUIRE(worker >= 0 && worker < platform_->size(),
               "worker index out of range");
  Group& group = groups_[static_cast<std::size_t>(worker)];
  if (group.open() && group.next_row < partition_.r())
    released_.push_back(FreeRange{group.j0, group.j1, group.next_row});
  group = Group{};
}

bool ChunkSource::has_work() const { return remaining_ > 0; }

bool ChunkSource::has_work_for(int worker) const {
  return peek_chunk(worker).has_value();
}

}  // namespace hmxp::sched
