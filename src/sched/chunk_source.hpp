// Chunk carving: turns the global C matrix into per-worker chunks.
//
// Following section 5, workers are assigned *full block columns*: when a
// worker needs work it owns a "column group" as wide as its chunk side
// (mu_i, or beta_i for the Toledo layout) and consumes it top to bottom
// in chunk-side-tall slices; only when the group is exhausted does it
// claim the next group of columns. This is the global partitioning rule
// all schedulers share (the paper applies it to every algorithm "in
// order to simplify the global partitioning of matrix C").
//
// ChunkSource is a value type: the Het look-ahead copies it alongside
// the engine to evaluate hypothetical futures.
#pragma once

#include <optional>
#include <vector>

#include "matrix/partition.hpp"
#include "platform/platform.hpp"
#include "sim/chunk.hpp"

namespace hmxp::sched {

enum class Layout {
  kDoubleBuffered,  // the paper's layout, chunk side mu_i
  kToledo,          // thirds layout (BMM baseline), chunk side beta_i
  kMaxReuse         // section 3 single-worker layout, chunk side from
                    // 1 + mu + mu^2 <= m, streaming A
};

class ChunkSource {
 public:
  /// Widths default to each worker's layout-implied chunk side; a
  /// uniform override (the homogeneous algorithm's virtual mu) may be
  /// supplied instead.
  ChunkSource(const platform::Platform& platform,
              const matrix::Partition& partition, Layout layout);
  ChunkSource(const platform::Platform& platform,
              const matrix::Partition& partition, Layout layout,
              model::BlockCount uniform_width);

  /// Next chunk for the worker, committing the carve; nullopt when all
  /// of C has been handed out.
  std::optional<sim::ChunkPlan> next_chunk(int worker);

  /// Same chunk without committing (for candidate evaluation).
  std::optional<sim::ChunkPlan> peek_chunk(int worker) const;

  /// Returns a (dead) worker's unconsumed column-group territory to the
  /// global pool: the uncarved rows of its open group become a free
  /// range any other worker may adopt (in mu-wide column spans) before
  /// claiming fresh columns. Without this, the exclusive column-group
  /// rule would strand the remainder of a failed worker's group forever.
  /// Idempotent; a no-op for workers with no open group.
  void release_worker(int worker);

  /// True while any C block remains uncarved (globally or in an open
  /// column group).
  bool has_work() const;
  /// True if next_chunk(worker) would produce a chunk.
  bool has_work_for(int worker) const;

  /// Blocks not yet carved.
  std::size_t remaining_blocks() const { return remaining_; }

  model::BlockCount width(int worker) const;

 private:
  struct Group {
    std::size_t j0 = 0, j1 = 0;  // column range
    std::size_t next_row = 0;    // rows [0, next_row) already carved
    bool open() const { return j1 > j0; }
  };
  /// Column span a released group left behind; rows [0, row0) were
  /// already carved by the previous owner.
  struct FreeRange {
    std::size_t j0 = 0, j1 = 0;
    std::size_t row0 = 0;
  };

  const platform::Platform* platform_;
  matrix::Partition partition_;
  Layout layout_;
  std::vector<model::BlockCount> widths_;  // carve width per worker
  std::vector<Group> groups_;              // active column group per worker
  std::vector<FreeRange> released_;        // adoptable territory
  std::size_t next_col_ = 0;               // first unallocated column
  std::size_t remaining_ = 0;

  std::optional<matrix::BlockRect> carve(int worker, Group& group,
                                         std::size_t& next_col,
                                         std::vector<FreeRange>& released)
      const;
  sim::ChunkPlan to_plan(int worker, const matrix::BlockRect& rect) const;
};

}  // namespace hmxp::sched
