#include "sched/demand_driven.hpp"
#include "sched/registry.hpp"

#include <limits>

#include "util/check.hpp"

namespace hmxp::sched {

namespace {
constexpr model::Time kNever = std::numeric_limits<model::Time>::infinity();

/// Kind priority for tie-breaks: results first (frees a worker), then
/// new chunks, then operand batches. Ranking enrollment above feeding
/// makes demand-driven algorithms enroll every idle worker as soon as
/// the port can serve it -- the paper's ORROML/ODDOML/BMM "do not make
/// any resource selection" and always use the whole platform.
int kind_rank(sim::CommKind kind) {
  switch (kind) {
    case sim::CommKind::kRecvC: return 0;
    case sim::CommKind::kSendC: return 1;
    case sim::CommKind::kSendAB: return 2;
    case sim::CommKind::kCancel: return 3;  // wrappers only; never ranked here
  }
  return 3;
}
}  // namespace

DemandDrivenScheduler::DemandDrivenScheduler(std::string name,
                                             ChunkSource source)
    : name_(std::move(name)), source_(std::move(source)) {}

sim::Decision DemandDrivenScheduler::next(const sim::ExecutionView& view) {
  model::Time best_start = kNever;
  int best_rank = 4;
  int best_worker = -1;
  sim::CommKind best_kind = sim::CommKind::kSendC;

  for (int worker = 0; worker < view.worker_count(); ++worker) {
    if (!view.alive(worker)) {
      // Dead workers take no actions; their unclaimed column-group
      // territory returns to the pool for survivors to adopt.
      source_.release_worker(worker);
      continue;
    }
    const sim::WorkerProgress& state = view.progress(worker);
    sim::CommKind kind;
    model::Time start;
    if (!state.has_chunk) {
      if (!source_.has_work_for(worker)) continue;
      kind = sim::CommKind::kSendC;
      start = view.earliest_start(worker, kind);
    } else if (state.steps_received < state.chunk.steps.size()) {
      kind = sim::CommKind::kSendAB;
      start = view.earliest_start(worker, kind);
    } else {
      kind = sim::CommKind::kRecvC;
      start = view.earliest_start(worker, kind);
    }
    const int rank = kind_rank(kind);
    if (start < best_start - 1e-12 ||
        (start < best_start + 1e-12 &&
         (rank < best_rank ||
          (rank == best_rank && best_worker != -1 && worker < best_worker)))) {
      best_start = start;
      best_rank = rank;
      best_worker = worker;
      best_kind = kind;
    }
  }

  if (best_worker < 0) {
    HMXP_CHECK(view.all_work_done(),
               "demand-driven found no action but work remains");
    return sim::Decision::done();
  }
  switch (best_kind) {
    case sim::CommKind::kSendC: {
      auto plan = source_.next_chunk(best_worker);
      HMXP_CHECK(plan.has_value(), "chunk vanished between peek and carve");
      return sim::Decision::send_chunk(best_worker, std::move(*plan));
    }
    case sim::CommKind::kSendAB:
      return sim::Decision::send_operands(best_worker);
    case sim::CommKind::kRecvC:
      return sim::Decision::recv_result(best_worker);
    case sim::CommKind::kCancel:
      break;  // cancels are issued by speculation wrappers, never here
  }
  HMXP_CHECK(false, "unreachable");
  return sim::Decision::done();
}

DemandDrivenScheduler make_oddoml(const platform::Platform& platform,
                                  const matrix::Partition& partition) {
  return DemandDrivenScheduler(
      "ODDOML", ChunkSource(platform, partition, Layout::kDoubleBuffered));
}

DemandDrivenScheduler make_bmm(const platform::Platform& platform,
                               const matrix::Partition& partition) {
  return DemandDrivenScheduler(
      "BMM", ChunkSource(platform, partition, Layout::kToledo));
}

HMXP_REGISTER_ALGORITHM(
    oddoml, "ODDOML", "overlapped demand-driven, our layout", 5,
    [](const platform::Platform& platform, const matrix::Partition& partition,
       HetSelection*) -> std::unique_ptr<sim::Scheduler> {
      return std::make_unique<DemandDrivenScheduler>(
          make_oddoml(platform, partition));
    });

HMXP_REGISTER_ALGORITHM(
    bmm, "BMM", "Toledo's block matrix multiply (thirds layout)", 6,
    [](const platform::Platform& platform, const matrix::Partition& partition,
       HetSelection*) -> std::unique_ptr<sim::Scheduler> {
      return std::make_unique<DemandDrivenScheduler>(
          make_bmm(platform, partition));
    });

}  // namespace hmxp::sched
