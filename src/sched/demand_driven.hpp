// Demand-driven scheduling (section 6.2):
//
//  * ODDOML -- the paper's memory layout (per-worker mu_i with double
//    buffering): "one sends the next block to the first worker which can
//    receive it". No resource selection: any idle worker gets a chunk.
//  * BMM -- Toledo's algorithm: thirds memory layout (beta_i x beta_i
//    panels, no prefetch buffers), demand-driven order: a worker
//    receives a C panel, then corresponding A and B panels until C is
//    fully computed, then returns it.
//
// Both pick, whenever the port frees, the action that can START
// earliest; ties break by action kind (collect finished results first,
// then feed operand batches, then start new chunks) and then by worker
// index ("the first worker").
#pragma once

#include "sched/chunk_source.hpp"
#include "sim/scheduler.hpp"

namespace hmxp::sched {

class DemandDrivenScheduler : public sim::Scheduler {
 public:
  DemandDrivenScheduler(std::string name, ChunkSource source);

  std::string name() const override { return name_; }
  sim::Decision next(const sim::ExecutionView& view) override;

 private:
  std::string name_;
  ChunkSource source_;
};

/// ODDOML: demand-driven on the paper's layout.
DemandDrivenScheduler make_oddoml(const platform::Platform& platform,
                                  const matrix::Partition& partition);

/// BMM: demand-driven on Toledo's thirds layout.
DemandDrivenScheduler make_bmm(const platform::Platform& platform,
                               const matrix::Partition& partition);

}  // namespace hmxp::sched
