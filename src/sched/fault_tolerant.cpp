#include "sched/fault_tolerant.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

#include "sched/demand_driven.hpp"
#include "sched/min_min.hpp"
#include "sched/registry.hpp"
#include "sched/round_robin.hpp"
#include "util/check.hpp"

namespace hmxp::sched {

namespace {
constexpr model::Time kNever = std::numeric_limits<model::Time>::infinity();

/// Rebuilds a plan of `original`'s layout family over `rect`, keeping
/// the k-step structure (step count for the paper's layout, k-grouping
/// width for Toledo's) so a re-assigned chunk performs bit-for-bit the
/// same per-element accumulation as the lost one.
sim::ChunkPlan rebuild(const sim::ChunkPlan& original,
                       const matrix::BlockRect& rect) {
  HMXP_CHECK(!original.steps.empty(), "orphan plan has no steps");
  const std::size_t t = original.steps.back().k_end;
  if (original.peak_override > 0) return sim::make_max_reuse_chunk(rect, t);
  if (original.prefetch_depth == 0) {
    std::size_t beta = 0;
    for (const sim::StepPlan& step : original.steps)
      beta = std::max(beta, step.k_end - step.k_begin);
    return sim::make_toledo_chunk(rect, t,
                                  static_cast<model::BlockCount>(beta));
  }
  return sim::make_double_buffered_chunk(rect, t);
}

void split_to_fit(const sim::ChunkPlan& plan, model::BlockCount memory,
                  std::vector<sim::ChunkPlan>& out) {
  if (plan.peak_buffers() <= memory) {
    out.push_back(plan);
    return;
  }
  const matrix::BlockRect& rect = plan.rect;
  HMXP_REQUIRE(rect.rows() > 1 || rect.cols() > 1,
               "orphaned chunk cannot fit the target worker's memory");
  matrix::BlockRect first = rect;
  matrix::BlockRect second = rect;
  if (rect.rows() >= rect.cols()) {
    const std::size_t mid = rect.i0 + rect.rows() / 2;
    first.i1 = mid;
    second.i0 = mid;
  } else {
    const std::size_t mid = rect.j0 + rect.cols() / 2;
    first.j1 = mid;
    second.j0 = mid;
  }
  split_to_fit(rebuild(plan, first), memory, out);
  split_to_fit(rebuild(plan, second), memory, out);
}

}  // namespace

std::vector<sim::ChunkPlan> replan_for_memory(const sim::ChunkPlan& plan,
                                              model::BlockCount memory) {
  std::vector<sim::ChunkPlan> pieces;
  split_to_fit(plan, memory, pieces);
  return pieces;
}

FaultTolerantScheduler::FaultTolerantScheduler(
    std::string name, std::unique_ptr<sim::Scheduler> inner)
    : name_(std::move(name)), inner_(std::move(inner)) {
  HMXP_REQUIRE(inner_ != nullptr, "fault-tolerant wrapper needs a policy");
}

void FaultTolerantScheduler::absorb_failures(const sim::ExecutionView& view) {
  const auto workers = static_cast<std::size_t>(view.worker_count());
  if (known_alive_.size() != workers) {
    known_alive_.assign(workers, true);
    in_flight_.assign(workers, std::nullopt);
  }
  for (std::size_t w = 0; w < workers; ++w) {
    // Confirm completions from the view's ground truth: the shadow
    // clears only once the worker's returned-chunk count moved past
    // its assign-time value.
    if (in_flight_[w].has_value() &&
        view.progress(static_cast<int>(w)).chunks_returned >
            in_flight_[w]->returned_before)
      in_flight_[w].reset();
    if (!known_alive_[w]) {
      // A worker can come BACK (TCP reconnect re-admission): re-arm the
      // death detector, or a second loss of the same worker would slip
      // by with its in-flight chunk never orphaned.
      if (view.alive(static_cast<int>(w))) known_alive_[w] = true;
      continue;
    }
    if (view.alive(static_cast<int>(w))) continue;
    known_alive_[w] = false;
    if (in_flight_[w].has_value()) {
      orphans_.push_back(std::move(in_flight_[w]->plan));
      in_flight_[w].reset();
    }
  }
  if (view.alive_count() == 0 &&
      (!orphans_.empty() || !view.all_work_done()))
    throw std::runtime_error(
        "fault tolerance exhausted: every worker failed with work pending");
}

std::optional<sim::Decision> FaultTolerantScheduler::reissue(
    const sim::ExecutionView& view) {
  if (orphans_.empty()) return std::nullopt;

  // A dead worker's chunk may not be lost at all: a speculation wrapper
  // can have duplicated it, and the surviving twin inherited sole
  // ownership when the owner died. Such a rectangle is still fully
  // assigned on the view, and re-issuing it would double-assign its C
  // blocks -- drop those orphans (backends without coverage
  // introspection report rect_assigned() == false and keep re-issuing).
  while (!orphans_.empty() && view.rect_assigned(orphans_.front().rect))
    orphans_.pop_front();
  if (orphans_.empty()) return std::nullopt;

  // Best survivor to adopt the chunk: free, alive, and minimal
  // estimated completion under the CALIBRATED speeds -- a worker that
  // drifted slow adopts orphans last, whatever its static w_i says.
  const sim::ChunkPlan& orphan = orphans_.front();
  const double updates = static_cast<double>(orphan.total_updates());
  int target = -1;
  model::Time best_finish = kNever;
  for (int worker = 0; worker < view.worker_count(); ++worker) {
    if (!view.alive(worker) || view.progress(worker).has_chunk) continue;
    const model::Time start =
        view.earliest_start(worker, sim::CommKind::kSendC);
    if (start >= kNever) continue;
    const platform::WorkerSpec& spec = view.platform().worker(worker);
    const model::Time finish =
        start +
        2.0 * static_cast<double>(orphan.rect.count()) * spec.c +  // C in+out
        updates * view.calibrated_w(worker);
    if (finish < best_finish) {
      best_finish = finish;
      target = worker;
    }
  }
  if (target < 0) return std::nullopt;  // every survivor is busy; wait

  std::vector<sim::ChunkPlan> pieces =
      replan_for_memory(orphan, view.platform().worker(target).m);
  orphans_.pop_front();
  HMXP_CHECK(!pieces.empty(), "re-planning produced no chunks");
  // Later pieces go back to the queue head, preserving re-issue order.
  for (std::size_t i = pieces.size(); i > 1; --i)
    orphans_.push_front(std::move(pieces[i - 1]));
  return sim::Decision::send_chunk(target, std::move(pieces.front()));
}

sim::Decision FaultTolerantScheduler::track(const sim::ExecutionView& view,
                                            sim::Decision decision) {
  if (decision.kind == sim::Decision::Kind::kComm &&
      decision.comm == sim::CommKind::kSendC) {
    const auto w = static_cast<std::size_t>(decision.worker);
    in_flight_[w] =
        Shadow{decision.chunk, view.progress(decision.worker).chunks_returned};
  }
  return decision;
}

sim::Decision FaultTolerantScheduler::next(const sim::ExecutionView& view) {
  absorb_failures(view);
  if (std::optional<sim::Decision> rescue = reissue(view))
    return track(view, std::move(*rescue));
  return track(view, inner_->next(view));
}

std::unique_ptr<sim::Scheduler> make_fault_tolerant(
    std::string name, std::unique_ptr<sim::Scheduler> inner) {
  return std::make_unique<FaultTolerantScheduler>(std::move(name),
                                                  std::move(inner));
}

// Self-registrations: the demand-driven family wrapped fault-tolerant.
// FT-OMMOML wraps the CALIBRATED min-min, so the unreliable scenario
// gets both recovery and speed adaptation from one registry name.

HMXP_REGISTER_ALGORITHM(
    ft_oddoml, "FT-ODDOML", "fault-tolerant demand-driven (re-assigns)", 10,
    [](const platform::Platform& platform, const matrix::Partition& partition,
       HetSelection*) -> std::unique_ptr<sim::Scheduler> {
      return make_fault_tolerant(
          "FT-ODDOML", std::make_unique<DemandDrivenScheduler>(
                           make_oddoml(platform, partition)));
    });

HMXP_REGISTER_ALGORITHM(
    ft_ommoml, "FT-OMMOML",
    "fault-tolerant calibrated min-min (re-assigns, adapts)", 11,
    [](const platform::Platform& platform, const matrix::Partition& partition,
       HetSelection*) -> std::unique_ptr<sim::Scheduler> {
      return make_fault_tolerant(
          "FT-OMMOML", std::make_unique<MinMinScheduler>(
                           make_ommoml_calibrated(platform, partition)));
    });

HMXP_REGISTER_ALGORITHM(
    ft_orroml, "FT-ORROML", "fault-tolerant round-robin (re-assigns)", 12,
    [](const platform::Platform& platform, const matrix::Partition& partition,
       HetSelection*) -> std::unique_ptr<sim::Scheduler> {
      return make_fault_tolerant(
          "FT-ORROML", std::make_unique<RoundRobinScheduler>(
                           make_orroml(platform, partition)));
    });

HMXP_REGISTER_ALGORITHM(
    ft_bmm, "FT-BMM", "fault-tolerant Toledo BMM (re-assigns)", 13,
    [](const platform::Platform& platform, const matrix::Partition& partition,
       HetSelection*) -> std::unique_ptr<sim::Scheduler> {
      return make_fault_tolerant(
          "FT-BMM",
          std::make_unique<DemandDrivenScheduler>(make_bmm(platform,
                                                           partition)));
    });

}  // namespace hmxp::sched
