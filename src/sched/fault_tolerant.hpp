// Fault-tolerant wrapper policy: makes any chunk-cycle scheduler
// survive permanent worker loss.
//
// The wrapper shadows the chunk each worker currently holds (it sees
// every decision it returns). When the view reports a worker newly dead
// (FaultSchedule event in the simulator, a dead thread in the online
// runtime), the backend has already returned the lost chunk's blocks to
// the pending set; the wrapper moves its shadow copy onto an orphan
// queue and re-issues it to a survivor ahead of the inner policy's own
// decisions:
//
//   * the re-issue target is the free surviving worker with the best
//     estimated chunk completion under the view's CALIBRATED speeds
//     (EWMA over observed per-step latencies), not the static w_i --
//     on a drifting platform the nominally fastest worker is often the
//     wrong choice;
//   * a chunk sized for the dead worker's memory is re-planned for the
//     target: if it fits, the identical plan is re-sent (the recompute
//     is bit-for-bit the original work); otherwise the rectangle splits
//     along its longer side until every piece fits, preserving the
//     layout family (double-buffered / Toledo / max-reuse) and the
//     k-step structure. Under the paper's one-k-per-step layout the
//     recovered product is bitwise identical to the fault-free one
//     whoever adopts the blocks; Toledo's beta_i k-grouping is owner-
//     dependent, so re-owned blocks may reassociate the k sum by ulps;
//   * once the re-issued SendC lands, the INNER policy naturally feeds
//     and collects the chunk -- every wrapped policy derives SendAB and
//     RecvC from the view's per-worker progress, not from private
//     bookkeeping, so recovery needs no inner-policy cooperation.
//
// Registered for the whole demand-driven family: FT-ODDOML, FT-OMMOML
// (over the calibrated min-min), FT-ORROML, FT-BMM. Policies with a
// frozen decision log (Het's replay) cannot be wrapped: a prerecorded
// schedule has no way to re-route work.
#pragma once

#include <deque>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "sim/scheduler.hpp"

namespace hmxp::sched {

class FaultTolerantScheduler final : public sim::Scheduler {
 public:
  FaultTolerantScheduler(std::string name,
                         std::unique_ptr<sim::Scheduler> inner);

  std::string name() const override { return name_; }
  sim::Decision next(const sim::ExecutionView& view) override;

  /// Chunks currently waiting for a survivor (for tests/diagnostics).
  std::size_t orphan_count() const { return orphans_.size(); }

 private:
  /// Shadow of a chunk handed to a worker, plus the worker's
  /// chunks_returned count at assign time: the chunk is confirmed done
  /// only once the view's count moves past it. (A returned RecvC
  /// decision proves nothing -- the online backend rolls a decision
  /// back when the worker dies under its real half.)
  struct Shadow {
    sim::ChunkPlan plan;
    model::BlockCount returned_before = 0;
  };

  std::string name_;
  std::unique_ptr<sim::Scheduler> inner_;
  std::vector<std::optional<Shadow>> in_flight_;  // lazily sized
  std::vector<bool> known_alive_;
  std::deque<sim::ChunkPlan> orphans_;

  void absorb_failures(const sim::ExecutionView& view);
  std::optional<sim::Decision> reissue(const sim::ExecutionView& view);
  sim::Decision track(const sim::ExecutionView& view, sim::Decision decision);
};

/// Wraps `inner` (takes ownership) under the given display name.
std::unique_ptr<sim::Scheduler> make_fault_tolerant(
    std::string name, std::unique_ptr<sim::Scheduler> inner);

/// Re-plans `plan` to fit a worker with `memory` block buffers:
/// returns the plan unchanged when it already fits, otherwise splits the
/// rectangle (longer side first) until every piece fits, preserving the
/// layout family and k-step structure. Exposed for tests.
std::vector<sim::ChunkPlan> replan_for_memory(const sim::ChunkPlan& plan,
                                              model::BlockCount memory);

}  // namespace hmxp::sched
