#include "sched/het.hpp"
#include "sched/registry.hpp"

#include <limits>

#include "util/check.hpp"

namespace hmxp::sched {

HetSelection select_het(const platform::Platform& platform,
                        const matrix::Partition& partition) {
  HetSelection selection;
  selection.predicted_makespan = std::numeric_limits<model::Time>::infinity();

  for (const HetVariant& variant : all_het_variants()) {
    IncrementalScheduler scheduler(platform, partition, variant);
    std::vector<sim::Decision> decisions;
    const sim::RunResult result = sim::simulate(
        scheduler, platform, partition, /*record_trace=*/false, &decisions);
    selection.variant_makespans.push_back(result.makespan);
    if (result.makespan < selection.predicted_makespan) {
      selection.predicted_makespan = result.makespan;
      selection.variant = variant;
      selection.decisions = std::move(decisions);
    }
  }
  HMXP_CHECK(!selection.decisions.empty(), "Het selection produced no plan");
  return selection;
}

sim::ReplayScheduler make_het(const platform::Platform& platform,
                              const matrix::Partition& partition,
                              HetSelection* selection_out) {
  HetSelection selection = select_het(platform, partition);
  std::vector<sim::Decision> decisions = selection.decisions;
  if (selection_out != nullptr) *selection_out = std::move(selection);
  return sim::ReplayScheduler("Het", std::move(decisions));
}

HMXP_REGISTER_ALGORITHM(
    het, "Het", "the paper's heterogeneous algorithm (8-variant selection)", 2,
    [](const platform::Platform& platform, const matrix::Partition& partition,
       HetSelection* selection_out) -> std::unique_ptr<sim::Scheduler> {
      return std::make_unique<sim::ReplayScheduler>(
          make_het(platform, partition, selection_out));
    });

}  // namespace hmxp::sched
