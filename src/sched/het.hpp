// Het -- the paper's heterogeneous algorithm (section 5, evaluated in
// section 6): "as we can have eight different versions of the resource
// selection, in a first step we simulate the eight versions, and then we
// pick and run the best one."
//
// Phase 1 simulates every IncrementalScheduler variant on the platform
// model and records the winner's full communication sequence; phase 2
// replays that sequence (on the simulator here; the threaded runtime
// replays the same log against real matrices). The phase-1 simulation
// is exactly the engine, so prediction and execution agree by
// construction -- the property the paper's two-phase design relies on.
#pragma once

#include "sched/incremental.hpp"
#include "sim/scheduler.hpp"

namespace hmxp::sched {

struct HetSelection {
  HetVariant variant;                   // winning variant
  model::Time predicted_makespan = 0.0;
  std::vector<sim::Decision> decisions; // full winning schedule
  /// Simulated makespan of every variant, index-aligned with
  /// all_het_variants(); useful for the ablation bench.
  std::vector<model::Time> variant_makespans;
};

/// Runs phase 1: simulates all eight variants, keeps the best.
HetSelection select_het(const platform::Platform& platform,
                        const matrix::Partition& partition);

/// Phase-2 scheduler replaying the winning schedule. If `selection_out`
/// is non-null the full phase-1 outcome is copied there.
sim::ReplayScheduler make_het(const platform::Platform& platform,
                              const matrix::Partition& partition,
                              HetSelection* selection_out = nullptr);

}  // namespace hmxp::sched
