#include "sched/homogeneous.hpp"

#include <numeric>

#include "model/costs.hpp"
#include "util/check.hpp"

namespace hmxp::sched {

model::BlockCount HomogeneousParams::mu() const {
  return model::double_buffered_mu(m);
}

int HomogeneousParams::enrollment(int available) const {
  return model::homogeneous_enrollment(available, mu(), c, w);
}

RoundRobinScheduler make_homogeneous(const platform::Platform& platform,
                                     const matrix::Partition& partition) {
  HMXP_REQUIRE(platform.is_homogeneous(),
               "make_homogeneous needs a homogeneous platform; use "
               "make_homogeneous_on with explicit parameters otherwise");
  const platform::WorkerSpec& spec = platform.worker(0);
  HomogeneousParams params{spec.c, spec.w, spec.m};
  std::vector<int> all(static_cast<std::size_t>(platform.size()));
  std::iota(all.begin(), all.end(), 0);
  return make_homogeneous_on("Homogeneous", platform, partition, params, all);
}

RoundRobinScheduler make_homogeneous_on(
    std::string name, const platform::Platform& platform,
    const matrix::Partition& partition, const HomogeneousParams& params,
    const std::vector<int>& candidates) {
  HMXP_REQUIRE(!candidates.empty(), "no candidate workers");
  for (int worker : candidates) {
    HMXP_REQUIRE(worker >= 0 && worker < platform.size(),
                 "candidate index out of range");
    HMXP_REQUIRE(platform.worker(worker).m >= params.m,
                 "candidate has less memory than the virtual platform");
  }
  const int p = params.enrollment(static_cast<int>(candidates.size()));
  std::vector<int> enrolled(candidates.begin(),
                            candidates.begin() + p);
  ChunkSource source(platform, partition, Layout::kDoubleBuffered,
                     params.mu());
  return RoundRobinScheduler(std::move(name), std::move(enrolled),
                             std::move(source));
}

}  // namespace hmxp::sched
