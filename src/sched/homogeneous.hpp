// The homogeneous algorithm of section 4 (Algorithms 1 and 2).
//
// Given per-worker parameters (c, w, m) assumed identical:
//   * mu = largest integer with mu^2 + 4mu <= m (double buffering),
//   * P  = min(p, ceil(mu w / 2c)) workers enrolled -- the smallest
//     count saturating the master port while keeping workers busy,
//   * chunks of mu x mu C blocks distributed round-robin, operand
//     batches interleaved per k across the P workers, C I/O
//     sequentialized with compute.
#pragma once

#include "sched/round_robin.hpp"

namespace hmxp::sched {

/// Parameters of the (possibly virtual) homogeneous platform a
/// homogeneous schedule is derived from.
struct HomogeneousParams {
  model::Time c = 0.0;
  model::Time w = 0.0;
  model::BlockCount m = 0;

  model::BlockCount mu() const;
  /// Enrollment P over `available` candidate workers.
  int enrollment(int available) const;
};

/// Builds the section 4 schedule for a truly homogeneous platform
/// (params taken from the first worker; REQUIREs homogeneity).
RoundRobinScheduler make_homogeneous(const platform::Platform& platform,
                                     const matrix::Partition& partition);

/// Builds a homogeneous schedule over an arbitrary platform using the
/// supplied virtual parameters and candidate workers (used by Hom and
/// HomI after virtual-platform selection). Enrolls the first
/// params.enrollment(candidates.size()) candidates, in order.
RoundRobinScheduler make_homogeneous_on(
    std::string name, const platform::Platform& platform,
    const matrix::Partition& partition, const HomogeneousParams& params,
    const std::vector<int>& candidates);

}  // namespace hmxp::sched
