#include "sched/incremental.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <memory>

#include "util/check.hpp"

namespace hmxp::sched {

namespace {
constexpr model::Time kNever = std::numeric_limits<model::Time>::infinity();
}

std::string HetVariant::name() const {
  std::string name = global ? "het-global" : "het-local";
  if (lookahead) name += "+la";
  if (count_c_cost) name += "+ccost";
  return name;
}

std::vector<HetVariant> all_het_variants() {
  std::vector<HetVariant> variants;
  for (const bool global : {true, false})
    for (const bool lookahead : {false, true})
      for (const bool ccost : {false, true})
        variants.push_back(HetVariant{global, lookahead, ccost});
  return variants;
}

IncrementalScheduler::IncrementalScheduler(const platform::Platform& platform,
                                           const matrix::Partition& partition,
                                           const HetVariant& variant)
    : source_(platform, partition, Layout::kDoubleBuffered),
      variant_(variant) {}

std::vector<IncrementalScheduler::Candidate> IncrementalScheduler::enumerate(
    const sim::ExecutionView& view, const ChunkSource& source) const {
  std::vector<Candidate> candidates;
  for (int worker = 0; worker < view.worker_count(); ++worker) {
    if (!view.alive(worker)) continue;  // dead workers take no actions
    const sim::WorkerProgress& state = view.progress(worker);
    if (state.has_chunk) {
      if (state.steps_received >= state.chunk.steps.size()) continue;
      Candidate candidate;
      candidate.worker = worker;
      candidate.kind = sim::CommKind::kSendAB;
      candidate.delta_updates = static_cast<double>(
          state.chunk.steps[state.steps_received].updates);
      const model::Time start =
          view.earliest_start(worker, sim::CommKind::kSendAB);
      candidate.end_eval =
          start + view.comm_duration(worker, sim::CommKind::kSendAB);
      candidates.push_back(candidate);
    } else {
      const auto plan = source.peek_chunk(worker);
      if (!plan) continue;
      Candidate candidate;
      candidate.worker = worker;
      candidate.kind = sim::CommKind::kSendC;
      candidate.delta_updates =
          static_cast<double>(plan->steps.front().updates);
      const model::Time start =
          view.earliest_start(worker, sim::CommKind::kSendC);
      const platform::WorkerSpec& spec = view.platform().worker(worker);
      model::Time duration =
          static_cast<double>(plan->steps.front().operand_blocks) * spec.c;
      if (variant_.count_c_cost)
        duration += static_cast<double>(plan->rect.count()) * spec.c;
      candidate.end_eval = start + duration;
      candidates.push_back(candidate);
    }
  }
  return candidates;
}

double IncrementalScheduler::score(const Candidate& candidate,
                                   double total_updates,
                                   model::Time now) const {
  if (variant_.global) {
    HMXP_CHECK(candidate.end_eval > 0, "zero completion time");
    return (total_updates + candidate.delta_updates) / candidate.end_eval;
  }
  const model::Time slice = candidate.end_eval - now;
  HMXP_CHECK(slice > 0, "non-positive port slice");
  return candidate.delta_updates / slice;
}

sim::Engine& IncrementalScheduler::scratch_for(
    const sim::ExecutionView& view) const {
  // The scratch engine projects hypothetical futures, so it must price
  // compute with the speeds the backend has OBSERVED -- a worker that
  // slowed 2x mid-run costs 2x in every probe -- not the static w_i of
  // the instance. Rebuild the calibrated twin context when the instance
  // changes or any calibrated speed drifts >1% off the twin's platform
  // (an EWMA moves every observation; re-deriving a context per probe
  // would defeat the shared-context scratch idiom).
  bool rebuild = scratch_ == nullptr || scratch_base_ != view.context();
  if (!rebuild) {
    for (int worker = 0; worker < view.worker_count(); ++worker) {
      const model::Time calibrated = view.calibrated_w(worker);
      const model::Time assumed =
          scratch_w_[static_cast<std::size_t>(worker)];
      if (std::abs(calibrated - assumed) > 0.01 * assumed) {
        rebuild = true;
        break;
      }
    }
  }
  if (rebuild) {
    scratch_base_ = view.context();
    scratch_w_.clear();
    std::vector<platform::WorkerSpec> specs;
    specs.reserve(static_cast<std::size_t>(view.worker_count()));
    for (int worker = 0; worker < view.worker_count(); ++worker) {
      platform::WorkerSpec spec = view.platform().worker(worker);
      spec.w = view.calibrated_w(worker);
      scratch_w_.push_back(spec.w);
      specs.push_back(std::move(spec));
    }
    const sim::InstanceContext& base = *scratch_base_;
    // The twin carries NO slowdown schedule: calibrated_w already
    // embodies whatever slowdown the backend observed (the engine's
    // EWMA tracks the schedule-scaled step costs), so keeping the
    // schedule would price a slowed worker's probes with the factor
    // squared.
    auto calibrated_context = std::make_shared<const sim::InstanceContext>(
        platform::Platform(view.platform().name(), std::move(specs)),
        base.partition(), platform::SlowdownSchedule{}, base.faults(),
        base.calibration());
    scratch_ = std::make_unique<sim::Engine>(std::move(calibrated_context),
                                             /*record_trace=*/false);
  }
  return *scratch_;
}

double IncrementalScheduler::lookahead_score(const Candidate& candidate,
                                             const sim::ExecutionView& view,
                                             const sim::EngineState& base,
                                             model::Time now) const {
  // Hypothetically execute the candidate on a rewound scratch engine
  // (and a copy of the chunk source), then score the best follow-up with
  // the same one-step criterion.
  sim::Engine& hypothetical = scratch_for(view);
  hypothetical.restore(base);
  ChunkSource source_copy = source_;
  if (candidate.kind == sim::CommKind::kSendC) {
    auto plan = source_copy.next_chunk(candidate.worker);
    HMXP_CHECK(plan.has_value(), "look-ahead chunk vanished");
    hypothetical.execute(
        sim::Decision::send_chunk(candidate.worker, std::move(*plan)));
    hypothetical.execute(sim::Decision::send_operands(candidate.worker));
  } else {
    hypothetical.execute(sim::Decision::send_operands(candidate.worker));
  }

  const double updates_after =
      static_cast<double>(hypothetical.updates_total());
  const std::vector<Candidate> seconds =
      enumerate(hypothetical, source_copy);
  if (seconds.empty()) {
    // Drained future: fall back to the one-step score.
    return score(candidate, static_cast<double>(view.updates_total()), now);
  }
  double best = -kNever;
  for (const Candidate& second : seconds) {
    double combined;
    if (variant_.global) {
      combined = (updates_after + second.delta_updates) / second.end_eval;
    } else {
      const model::Time slice = second.end_eval - now;
      HMXP_CHECK(slice > 0, "non-positive look-ahead slice");
      combined = (candidate.delta_updates + second.delta_updates) / slice;
    }
    best = std::max(best, combined);
  }
  return best;
}

sim::Decision IncrementalScheduler::next(const sim::ExecutionView& view) {
  const model::Time now = view.now();

  // Dead workers take no actions; their unclaimed column-group
  // territory returns to the pool for survivors to adopt.
  for (int worker = 0; worker < view.worker_count(); ++worker)
    if (!view.alive(worker)) source_.release_worker(worker);

  // Collect any chunk already computed: the port loses nothing and the
  // worker frees up for re-enrollment.
  int ready_result = -1;
  model::Time earliest_finish = kNever;
  for (int worker = 0; worker < view.worker_count(); ++worker) {
    if (!view.alive(worker)) continue;
    const sim::WorkerProgress& state = view.progress(worker);
    if (state.has_chunk && state.chunk_computed(now)) {
      const model::Time finish = state.chunk_compute_finish();
      if (finish < earliest_finish) {
        earliest_finish = finish;
        ready_result = worker;
      }
    }
  }
  if (ready_result >= 0) return sim::Decision::recv_result(ready_result);

  const std::vector<Candidate> candidates = enumerate(view, source_);
  if (candidates.empty()) {
    // Drain: collect outstanding results in compute-completion order.
    int pending = -1;
    model::Time pending_finish = kNever;
    for (int worker = 0; worker < view.worker_count(); ++worker) {
      if (!view.alive(worker)) continue;
      const sim::WorkerProgress& state = view.progress(worker);
      if (state.has_chunk && state.all_steps_received()) {
        const model::Time finish = state.chunk_compute_finish();
        if (finish < pending_finish) {
          pending_finish = finish;
          pending = worker;
        }
      }
    }
    if (pending >= 0) return sim::Decision::recv_result(pending);
    HMXP_CHECK(view.all_work_done(),
               "incremental scheduler stalled with work remaining");
    return sim::Decision::done();
  }

  const double total_updates = static_cast<double>(view.updates_total());
  // One snapshot serves every lookahead probe this round; each probe
  // rewinds the scratch engine to it before executing hypotheticals.
  sim::EngineState base;
  if (variant_.lookahead) base = view.model_state();
  double best_score = -kNever;
  const Candidate* best = nullptr;
  for (const Candidate& candidate : candidates) {
    const double candidate_score =
        variant_.lookahead ? lookahead_score(candidate, view, base, now)
                           : score(candidate, total_updates, now);
    if (candidate_score > best_score + 1e-15 ||
        (best != nullptr && candidate_score > best_score - 1e-15 &&
         candidate.worker < best->worker)) {
      best_score = candidate_score;
      best = &candidate;
    }
  }
  HMXP_CHECK(best != nullptr, "no candidate selected");

  if (best->kind == sim::CommKind::kSendC) {
    auto plan = source_.next_chunk(best->worker);
    HMXP_CHECK(plan.has_value(), "chunk vanished between peek and carve");
    return sim::Decision::send_chunk(best->worker, std::move(*plan));
  }
  return sim::Decision::send_operands(best->worker);
}

}  // namespace hmxp::sched
