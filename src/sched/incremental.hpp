// Incremental resource selection for heterogeneous platforms (section 5).
//
// The master decides, communication by communication, which worker the
// port serves next, ranking candidates by a work-per-port-time ratio:
//
//  * GLOBAL variant: maximize
//        (total work achieved so far + candidate's updates)
//        / (completion time of the candidate communication),
//    the completion time accounting for ready times -- a busy worker
//    with full buffers cannot receive data early, so choosing it leaves
//    the master idle and the ratio penalizes that.
//
//  * LOCAL variant: maximize
//        candidate's updates
//        / (candidate completion - end of previous communication),
//    i.e. the best use of the port-time slice this communication
//    occupies, idle wait included.
//
//  * LOOK-AHEAD option: each candidate is scored by the best two-step
//    ratio -- the candidate is hypothetically executed on a scratch
//    engine (sharing the real engine's InstanceContext, state restored
//    from a snapshot per candidate) and the best follow-up candidate
//    completes the score. (The paper leaves the look-ahead depth
//    unspecified; depth one is the natural reading and what we
//    implement.)
//
//  * C-COST option: when a candidate would enroll a worker on a new
//    chunk, the mu_i^2-block C-chunk transfer is charged to the ratio's
//    denominator (the base version follows the paper in neglecting C
//    traffic during selection; the engine always charges it for real).
//
// 2 x 2 x 2 = the paper's eight selection algorithms. Result collection
// is common to all variants: a finished chunk is collected as soon as
// the port would otherwise not delay feeding other workers (completed
// and compute-done chunks take priority; remaining results drain at the
// end).
#pragma once

#include "sched/chunk_source.hpp"
#include "sim/scheduler.hpp"

namespace hmxp::sched {

struct HetVariant {
  bool global = true;
  bool lookahead = false;
  bool count_c_cost = false;

  std::string name() const;
};

/// All eight variants, in a fixed order (global first, then local).
std::vector<HetVariant> all_het_variants();

class IncrementalScheduler : public sim::Scheduler {
 public:
  IncrementalScheduler(const platform::Platform& platform,
                       const matrix::Partition& partition,
                       const HetVariant& variant);

  std::string name() const override { return variant_.name(); }
  sim::Decision next(const sim::ExecutionView& view) override;

 private:
  struct Candidate {
    int worker = -1;
    sim::CommKind kind = sim::CommKind::kSendAB;
    double delta_updates = 0.0;   // updates the communication enables
    model::Time end_eval = 0.0;   // ranking completion time
  };

  ChunkSource source_;
  HetVariant variant_;
  // Scratch engine for hypothetical probes: built over a CALIBRATED
  // twin of the view's instance context (platform w_i replaced by
  // ExecutionView::calibrated_w, so the probes project with the speeds
  // the backend actually observed, not the datasheet ones), never
  // records a trace, and is rewound with restore() before every probe
  // instead of re-copying an engine. Rebuilt when the instance changes
  // or any calibrated speed drifts off the twin's assumption.
  mutable std::unique_ptr<sim::Engine> scratch_;
  mutable std::shared_ptr<const sim::InstanceContext> scratch_base_;
  mutable std::vector<model::Time> scratch_w_;

  sim::Engine& scratch_for(const sim::ExecutionView& view) const;
  std::vector<Candidate> enumerate(const sim::ExecutionView& view,
                                   const ChunkSource& source) const;
  double score(const Candidate& candidate, double total_updates,
               model::Time now) const;
  double lookahead_score(const Candidate& candidate,
                         const sim::ExecutionView& view,
                         const sim::EngineState& base, model::Time now) const;
};

}  // namespace hmxp::sched
