#include "sched/maxreuse.hpp"

#include "util/check.hpp"

namespace hmxp::sched {

MaxReuseScheduler::MaxReuseScheduler(const platform::Platform& platform,
                                     const matrix::Partition& partition,
                                     int worker)
    : source_(platform, partition, Layout::kMaxReuse), worker_(worker) {
  HMXP_REQUIRE(worker >= 0 && worker < platform.size(),
               "worker index out of range");
}

sim::Decision MaxReuseScheduler::next(const sim::ExecutionView& view) {
  const sim::WorkerProgress& state = view.progress(worker_);
  if (!state.has_chunk) {
    auto plan = source_.next_chunk(worker_);
    if (!plan) return sim::Decision::done();
    return sim::Decision::send_chunk(worker_, std::move(*plan));
  }
  if (state.steps_received < state.chunk.steps.size())
    return sim::Decision::send_operands(worker_);
  return sim::Decision::recv_result(worker_);
}

}  // namespace hmxp::sched
