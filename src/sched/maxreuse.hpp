// The maximum re-use algorithm of section 3 (single worker).
//
// Memory layout: 1 buffer for A, mu for B, mu^2 for C with the largest
// mu satisfying 1 + mu + mu^2 <= m. The master loads a mu x mu chunk of
// C, then for each k sends the B row and streams the A column, the
// worker updating as blocks arrive; the chunk is returned when its final
// value is computed. Achieves CCR = 2/t + 2/mu, within sqrt(32/27) of
// the paper's lower bound.
#pragma once

#include "sched/chunk_source.hpp"
#include "sim/scheduler.hpp"

namespace hmxp::sched {

class MaxReuseScheduler final : public sim::Scheduler {
 public:
  /// Drives only `worker` (default the first); other platform workers
  /// stay idle, matching the one-worker analysis.
  MaxReuseScheduler(const platform::Platform& platform,
                    const matrix::Partition& partition, int worker = 0);

  std::string name() const override { return "MaxReuse"; }
  sim::Decision next(const sim::ExecutionView& view) override;

  model::BlockCount mu() const { return source_.width(worker_); }

 private:
  ChunkSource source_;
  int worker_;
};

}  // namespace hmxp::sched
