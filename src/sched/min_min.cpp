#include "sched/min_min.hpp"
#include "sched/registry.hpp"

#include <algorithm>
#include <limits>

#include "util/check.hpp"

namespace hmxp::sched {

namespace {
constexpr model::Time kNever = std::numeric_limits<model::Time>::infinity();
}

MinMinScheduler::MinMinScheduler(const platform::Platform& platform,
                                 const matrix::Partition& partition,
                                 bool calibrated)
    : source_(platform, partition, Layout::kDoubleBuffered),
      calibrated_(calibrated) {}

model::Time MinMinScheduler::cost_w(const sim::ExecutionView& view,
                                    int worker) const {
  return calibrated_ ? view.calibrated_w(worker)
                     : view.platform().worker(worker).w;
}

model::Time MinMinScheduler::estimate_chunk_finish(
    const sim::ExecutionView& view, int worker, const sim::ChunkPlan& plan,
    model::Time start) const {
  const platform::WorkerSpec& spec = view.platform().worker(worker);
  const model::Time w = cost_w(view, worker);
  const double chunk_blocks = static_cast<double>(plan.rect.count());
  model::Time time = start + chunk_blocks * spec.c;  // C in
  model::Time compute_done = time;
  for (const sim::StepPlan& step : plan.steps) {
    // Operand transfers and compute overlap (double buffering): the
    // worker finishes a step at the max of data arrival and CPU
    // availability plus the update time.
    time += static_cast<double>(step.operand_blocks) * spec.c;
    compute_done = std::max(compute_done, time) +
                   static_cast<double>(step.updates) * w;
  }
  return std::max(time, compute_done) + chunk_blocks * spec.c;  // C out
}

sim::Decision MinMinScheduler::next(const sim::ExecutionView& view) {
  model::Time best_finish = kNever;
  int best_worker = -1;
  sim::CommKind best_kind = sim::CommKind::kSendC;

  for (int worker = 0; worker < view.worker_count(); ++worker) {
    if (!view.alive(worker)) {
      // Dead workers take no actions; their unclaimed column-group
      // territory returns to the pool for survivors to adopt.
      source_.release_worker(worker);
      continue;
    }
    const sim::WorkerProgress& state = view.progress(worker);
    const platform::WorkerSpec& spec = view.platform().worker(worker);
    sim::CommKind kind;
    model::Time finish;

    if (!state.has_chunk) {
      if (!source_.has_work_for(worker)) continue;
      // Min-min schedules block by block: the candidate "task" for an
      // idle worker is its C-chunk transfer, and its finish time is the
      // end of that transfer. (Estimating the whole chunk's lifetime
      // here would compare a ~chunk-long horizon against single-batch
      // horizons of busy workers and never enroll anyone.)
      kind = sim::CommKind::kSendC;
      const auto plan = source_.peek_chunk(worker);
      const model::Time start = view.earliest_start(worker, kind);
      finish = start + static_cast<double>(plan->rect.count()) * spec.c;
    } else if (state.steps_received < state.chunk.steps.size()) {
      kind = sim::CommKind::kSendAB;
      const std::size_t n = state.steps_received;
      const sim::StepPlan& step = state.chunk.steps[n];
      const model::Time start = view.earliest_start(worker, kind);
      const model::Time arrival =
          start + static_cast<double>(step.operand_blocks) * spec.c;
      const model::Time cpu_free =
          n == 0 ? state.chunk_arrival : state.compute_end[n - 1];
      finish = std::max(arrival, cpu_free) +
               static_cast<double>(step.updates) * cost_w(view, worker);
    } else {
      kind = sim::CommKind::kRecvC;
      finish = view.earliest_start(worker, kind) +
               view.comm_duration(worker, kind);
    }

    if (finish < best_finish - 1e-12) {
      best_finish = finish;
      best_worker = worker;
      best_kind = kind;
    }
  }

  if (best_worker < 0) {
    HMXP_CHECK(view.all_work_done(),
               "min-min found no action but work remains");
    return sim::Decision::done();
  }
  switch (best_kind) {
    case sim::CommKind::kSendC: {
      auto plan = source_.next_chunk(best_worker);
      HMXP_CHECK(plan.has_value(), "chunk vanished between peek and carve");
      return sim::Decision::send_chunk(best_worker, std::move(*plan));
    }
    case sim::CommKind::kSendAB:
      return sim::Decision::send_operands(best_worker);
    case sim::CommKind::kRecvC:
      return sim::Decision::recv_result(best_worker);
    case sim::CommKind::kCancel:
      break;  // cancels are issued by speculation wrappers, never here
  }
  HMXP_CHECK(false, "unreachable");
  return sim::Decision::done();
}

MinMinScheduler make_ommoml(const platform::Platform& platform,
                            const matrix::Partition& partition) {
  return MinMinScheduler(platform, partition);
}

MinMinScheduler make_ommoml_calibrated(const platform::Platform& platform,
                                       const matrix::Partition& partition) {
  return MinMinScheduler(platform, partition, /*calibrated=*/true);
}

HMXP_REGISTER_ALGORITHM(
    ommoml, "OMMOML", "overlapped min-min, our layout", 4,
    [](const platform::Platform& platform, const matrix::Partition& partition,
       HetSelection*) -> std::unique_ptr<sim::Scheduler> {
      return std::make_unique<MinMinScheduler>(
          make_ommoml(platform, partition));
    });

HMXP_REGISTER_ALGORITHM(
    ommoml_cal, "OMMOML-cal",
    "min-min over EWMA-calibrated speeds (adapts to mid-run drift)", 14,
    [](const platform::Platform& platform, const matrix::Partition& partition,
       HetSelection*) -> std::unique_ptr<sim::Scheduler> {
      return std::make_unique<MinMinScheduler>(
          make_ommoml_calibrated(platform, partition));
    });

}  // namespace hmxp::sched
