// OMMOML -- Overlapped Min-Min on the paper's memory layout
// (section 6.2, after Maheswaran et al. [13]).
//
// A static min-min heuristic at communication granularity: whenever the
// port frees, every feasible next communication is scored by the
// estimated completion time of the work it triggers (operand batch ->
// end of the induced compute; new chunk -> estimated end of the whole
// chunk on that worker; result -> end of the transfer), and the minimum
// wins -- "sends the next block to the first worker that will finish
// it". Because cold workers estimate later finishes than warm ones,
// min-min implicitly performs resource selection; on memory-
// heterogeneous platforms it is very thrifty but can badly underuse the
// platform (fig. 4 of the paper).
#pragma once

#include "sched/chunk_source.hpp"
#include "sim/scheduler.hpp"

namespace hmxp::sched {

class MinMinScheduler : public sim::Scheduler {
 public:
  /// `calibrated` switches the finish-time estimates from the static
  /// w_i to the view's calibrated per-update cost (EWMA over observed
  /// speeds), so the heuristic adapts to mid-run speed drift.
  MinMinScheduler(const platform::Platform& platform,
                  const matrix::Partition& partition, bool calibrated = false);

  std::string name() const override {
    return calibrated_ ? "OMMOML-cal" : "OMMOML";
  }
  sim::Decision next(const sim::ExecutionView& view) override;

 private:
  ChunkSource source_;
  bool calibrated_;

  /// Per-update cost the estimates use: static w_i, or the view's
  /// calibrated estimate when adaptivity is on.
  model::Time cost_w(const sim::ExecutionView& view, int worker) const;

  /// Optimistic single-worker estimate of a whole chunk's completion if
  /// its SendC starts at `start` (ignores future port contention, as
  /// min-min estimates do).
  model::Time estimate_chunk_finish(const sim::ExecutionView& view, int worker,
                                    const sim::ChunkPlan& plan,
                                    model::Time start) const;
};

/// Factory matching the other algorithms' naming convention.
MinMinScheduler make_ommoml(const platform::Platform& platform,
                            const matrix::Partition& partition);

/// The calibrated (speed-adaptive) variant, registered as "OMMOML-cal".
MinMinScheduler make_ommoml_calibrated(const platform::Platform& platform,
                                       const matrix::Partition& partition);

}  // namespace hmxp::sched
