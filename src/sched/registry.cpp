#include "sched/registry.hpp"

#include <algorithm>
#include <cctype>
#include <stdexcept>

#include "util/check.hpp"

namespace hmxp::sched {

namespace {
std::string ascii_lower(const std::string& text) {
  std::string lowered = text;
  std::transform(lowered.begin(), lowered.end(), lowered.begin(),
                 [](unsigned char ch) {
                   return static_cast<char>(std::tolower(ch));
                 });
  return lowered;
}
}  // namespace

Registry& Registry::instance() {
  static Registry registry;
  return registry;
}

void Registry::add(AlgorithmInfo info) {
  HMXP_REQUIRE(!info.name.empty(), "algorithm needs a name");
  HMXP_REQUIRE(info.build != nullptr,
               "algorithm '" + info.name + "' needs a builder");
  const std::lock_guard<std::mutex> lock(mutex_);
  if (find_locked(info.name) != nullptr)
    throw std::invalid_argument("algorithm '" + info.name +
                                "' registered twice");
  const auto before = [](const AlgorithmInfo& a, const AlgorithmInfo& b) {
    if (a.paper_order != b.paper_order) return a.paper_order < b.paper_order;
    return a.name < b.name;
  };
  infos_.insert(
      std::upper_bound(infos_.begin(), infos_.end(), info, before),
      std::move(info));
}

const AlgorithmInfo* Registry::find_locked(const std::string& name) const {
  const std::string lowered = ascii_lower(name);
  for (const AlgorithmInfo& info : infos_)
    if (ascii_lower(info.name) == lowered) return &info;
  return nullptr;
}

bool Registry::contains(const std::string& name) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return find_locked(name) != nullptr;
}

AlgorithmInfo Registry::at(const std::string& name) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (const AlgorithmInfo* info = find_locked(name)) return *info;
  std::string valid;
  for (const AlgorithmInfo& info : infos_) {
    if (!valid.empty()) valid += ", ";
    valid += info.name;
  }
  throw std::invalid_argument("unknown algorithm: " + name +
                              " (valid names: " + valid + ")");
}

std::vector<std::string> Registry::names() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> names;
  names.reserve(infos_.size());
  for (const AlgorithmInfo& info : infos_) names.push_back(info.name);
  return names;
}

std::unique_ptr<sim::Scheduler> Registry::make(
    const std::string& name, const platform::Platform& platform,
    const matrix::Partition& partition, HetSelection* selection_out) const {
  // Copy the builder out under the lock (a concurrent add() may move
  // infos_), then run it unlocked: selection phases can be expensive and
  // the parallel experiment pipeline calls make() from many threads.
  std::function<std::unique_ptr<sim::Scheduler>(
      const platform::Platform&, const matrix::Partition&, HetSelection*)>
      build;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (const AlgorithmInfo* info = find_locked(name)) build = info->build;
  }
  if (build == nullptr) at(name);  // throws with the valid-name list
  return build(platform, partition, selection_out);
}

Registration::Registration(AlgorithmInfo info) {
  Registry::instance().add(std::move(info));
}

}  // namespace hmxp::sched
