// Self-registering algorithm registry: canonical name -> scheduler
// builder + metadata.
//
// Every algorithm module registers itself (see HMXP_REGISTER_ALGORITHM
// at the bottom of the sched/*.cpp files), so the registry is the single
// source of truth the core facade, the experiment harness, the threaded
// runtime, the benches and the examples all consult; adding an algorithm
// never touches core. Lookup is case-insensitive and an unknown name
// throws std::invalid_argument listing every valid name.
//
// Builders receive the instance (platform, partition) and an optional
// HetSelection out-parameter; algorithms with no selection phase ignore
// it. Presentation order (`paper_order`) fixes the column order of every
// table to the paper's, independent of static-initialization order.
#pragma once

#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "matrix/partition.hpp"
#include "platform/platform.hpp"
#include "sched/het.hpp"
#include "sim/scheduler.hpp"

namespace hmxp::sched {

struct AlgorithmInfo {
  std::string name;     // canonical spelling, e.g. "ODDOML"
  std::string summary;  // one-line description for listings
  int paper_order = 1000;  // presentation order (section 6); ties by name
  std::function<std::unique_ptr<sim::Scheduler>(
      const platform::Platform&, const matrix::Partition&, HetSelection*)>
      build;
};

class Registry {
 public:
  /// The process-wide registry (built-ins register before main()).
  static Registry& instance();

  /// Registers an algorithm; throws std::invalid_argument on a
  /// (case-insensitive) duplicate name or a missing builder.
  void add(AlgorithmInfo info);

  bool contains(const std::string& name) const;
  /// Case-insensitive lookup; throws std::invalid_argument naming every
  /// valid algorithm on an unknown name. Returns a copy: a reference
  /// into the registry could dangle if a concurrent add() reallocates.
  AlgorithmInfo at(const std::string& name) const;
  /// Canonical names in presentation order.
  std::vector<std::string> names() const;

  /// Builds the scheduler (running any selection phase the algorithm
  /// requires). `selection_out`, if non-null, receives the phase-1
  /// outcome of algorithms that have one (Het).
  std::unique_ptr<sim::Scheduler> make(
      const std::string& name, const platform::Platform& platform,
      const matrix::Partition& partition,
      HetSelection* selection_out = nullptr) const;

 private:
  Registry() = default;
  const AlgorithmInfo* find_locked(const std::string& name) const;

  mutable std::mutex mutex_;
  std::vector<AlgorithmInfo> infos_;  // kept sorted by (paper_order, name)
};

/// Static-initialization helper: constructing one registers `info`.
struct Registration {
  explicit Registration(AlgorithmInfo info);
};

}  // namespace hmxp::sched

/// Registers an algorithm from any translation unit linked into the
/// binary. `ident` must be a unique C identifier; the remaining
/// arguments initialize AlgorithmInfo {name, summary, paper_order,
/// build}.
#define HMXP_REGISTER_ALGORITHM(ident, ...)                   \
  static const ::hmxp::sched::Registration                    \
      hmxp_algorithm_registration_##ident {                   \
    ::hmxp::sched::AlgorithmInfo { __VA_ARGS__ }              \
  }
