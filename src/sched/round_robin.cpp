#include "sched/round_robin.hpp"
#include "sched/registry.hpp"

#include <numeric>

#include "util/check.hpp"

namespace hmxp::sched {

RoundRobinScheduler::RoundRobinScheduler(std::string name,
                                         std::vector<int> enrolled,
                                         ChunkSource source)
    : name_(std::move(name)),
      enrolled_(std::move(enrolled)),
      source_(std::move(source)) {
  HMXP_REQUIRE(!enrolled_.empty(), "round robin needs at least one worker");
}

sim::Decision RoundRobinScheduler::next(const sim::ExecutionView& view) {
  // One full cycle looking for a worker with an outstanding action.
  for (std::size_t offset = 0; offset < enrolled_.size(); ++offset) {
    const std::size_t slot = (cursor_ + offset) % enrolled_.size();
    const int worker = enrolled_[slot];
    if (!view.alive(worker)) {
      // Dead workers take no actions; their unclaimed column-group
      // territory returns to the pool for survivors to adopt.
      source_.release_worker(worker);
      continue;
    }
    const sim::WorkerProgress& state = view.progress(worker);

    if (!state.has_chunk) {
      auto plan = source_.next_chunk(worker);
      if (!plan) continue;  // this worker is finished
      cursor_ = slot + 1;
      return sim::Decision::send_chunk(worker, std::move(*plan));
    }
    if (state.steps_received < state.chunk.steps.size()) {
      cursor_ = slot + 1;
      return sim::Decision::send_operands(worker);
    }
    cursor_ = slot + 1;
    return sim::Decision::recv_result(worker);
  }
  HMXP_CHECK(view.all_work_done(),
             "round robin found no action but work remains");
  return sim::Decision::done();
}

RoundRobinScheduler make_orroml(const platform::Platform& platform,
                                const matrix::Partition& partition) {
  std::vector<int> all(static_cast<std::size_t>(platform.size()));
  std::iota(all.begin(), all.end(), 0);
  return RoundRobinScheduler(
      "ORROML", std::move(all),
      ChunkSource(platform, partition, Layout::kDoubleBuffered));
}

HMXP_REGISTER_ALGORITHM(
    orroml, "ORROML", "overlapped round-robin, our layout", 3,
    [](const platform::Platform& platform, const matrix::Partition& partition,
       HetSelection*) -> std::unique_ptr<sim::Scheduler> {
      return std::make_unique<RoundRobinScheduler>(
          make_orroml(platform, partition));
    });

}  // namespace hmxp::sched
