// Round-robin chunk service over a set of workers.
//
// This is both the communication order of the homogeneous Algorithm 1
// (when restricted to the P selected workers with the virtual mu) and
// the ORROML baseline of section 6.2 (all workers, per-worker mu_i, no
// resource selection). The master cycles through the enrolled workers;
// on a worker's turn it performs that worker's next required
// communication (new C chunk, operand batch, or result collection),
// waiting on the port if the worker is not ready yet -- exactly the
// lockstep behaviour of Algorithms 1 and 2.
#pragma once

#include <vector>

#include "sched/chunk_source.hpp"
#include "sim/scheduler.hpp"

namespace hmxp::sched {

class RoundRobinScheduler : public sim::Scheduler {
 public:
  /// Serves `enrolled` (indices into the platform) in the given cyclic
  /// order, carving chunks from `source`.
  RoundRobinScheduler(std::string name, std::vector<int> enrolled,
                      ChunkSource source);

  std::string name() const override { return name_; }
  sim::Decision next(const sim::ExecutionView& view) override;

  const std::vector<int>& enrolled() const { return enrolled_; }

 private:
  std::string name_;
  std::vector<int> enrolled_;
  ChunkSource source_;
  std::size_t cursor_ = 0;
};

/// ORROML: overlapped round-robin over every worker with the paper's
/// memory layout, no resource selection.
RoundRobinScheduler make_orroml(const platform::Platform& platform,
                                const matrix::Partition& partition);

}  // namespace hmxp::sched
