#include "sched/speculative.hpp"

#include <algorithm>
#include <limits>
#include <mutex>

#include "sched/demand_driven.hpp"
#include "sched/fault_tolerant.hpp"
#include "sched/min_min.hpp"
#include "sched/registry.hpp"
#include "util/check.hpp"

namespace hmxp::sched {

namespace {

constexpr model::Time kNever = std::numeric_limits<model::Time>::infinity();

std::mutex& options_mutex() {
  static std::mutex mutex;
  return mutex;
}

SpeculationOptions& options_slot() {
  static SpeculationOptions options;
  return options;
}

bool same_rect(const matrix::BlockRect& a, const matrix::BlockRect& b) {
  return a.i0 == b.i0 && a.i1 == b.i1 && a.j0 == b.j0 && a.j1 == b.j1;
}

}  // namespace

void set_default_speculation_options(const SpeculationOptions& options) {
  const std::lock_guard<std::mutex> lock(options_mutex());
  options_slot() = options;
}

SpeculationOptions default_speculation_options() {
  const std::lock_guard<std::mutex> lock(options_mutex());
  return options_slot();
}

SpeculativeScheduler::SpeculativeScheduler(std::string name,
                                           std::unique_ptr<sim::Scheduler> inner,
                                           SpeculationOptions options)
    : name_(std::move(name)), inner_(std::move(inner)), options_(options) {
  HMXP_REQUIRE(inner_ != nullptr, "speculative wrapper needs a policy");
  HMXP_REQUIRE(options_.drift_threshold > 1.0,
               "speculation threshold must exceed nominal drift (1.0)");
}

bool SpeculativeScheduler::in_pair(int worker) const {
  for (const Pair& pair : pairs_)
    if (pair.primary == worker || pair.duplicate == worker) return true;
  return false;
}

std::optional<sim::Decision> SpeculativeScheduler::resolve_pairs(
    const sim::ExecutionView& view) {
  for (std::size_t i = 0; i < pairs_.size(); ++i) {
    const Pair pair = pairs_[i];
    const sim::WorkerProgress& primary = view.progress(pair.primary);
    const sim::WorkerProgress& duplicate = view.progress(pair.duplicate);

    // First completion: whoever's returned-chunk count moved past its
    // race-start value committed the blocks; the other copy is now a
    // zombie the backend refuses to collect -- revoke it.
    const bool primary_won = primary.chunks_returned > pair.returned_primary;
    const bool duplicate_won =
        duplicate.chunks_returned > pair.returned_duplicate;
    if (primary_won || duplicate_won) {
      const int loser = primary_won ? pair.duplicate : pair.primary;
      pairs_.erase(pairs_.begin() + static_cast<std::ptrdiff_t>(i));
      const sim::WorkerProgress& lost = view.progress(loser);
      if (view.alive(loser) && lost.has_chunk &&
          same_rect(lost.chunk.rect, pair.plan.rect))
        return sim::Decision::cancel(loser);
      --i;  // a dead loser needs nothing; re-examine the shifted slot
      continue;
    }

    // A broken race: one member died mid-flight. The backend already
    // handed sole ownership to the surviving twin (or rolled the
    // coverage back if both are gone -- the FT layer's orphan path).
    if (!view.alive(pair.primary) && view.alive(pair.duplicate)) {
      // The survivor is the DUPLICATE, whose SendC the FT layer below
      // never saw: adopt its shadow so a second death still re-issues.
      if (duplicate.has_chunk && same_rect(duplicate.chunk.rect,
                                           pair.plan.rect))
        adopted_[static_cast<std::size_t>(pair.duplicate)] =
            Adopted{pair.plan, pair.returned_duplicate};
      pairs_.erase(pairs_.begin() + static_cast<std::ptrdiff_t>(i));
      --i;
      continue;
    }
    if (!view.alive(pair.duplicate)) {
      // Duplicate lost (primary too, possibly): the primary's copy is
      // whatever layer issued it's problem (FT shadow or plain failure).
      pairs_.erase(pairs_.begin() + static_cast<std::ptrdiff_t>(i));
      --i;
    }
  }

  // Adopted shadows: confirm completions, orphan chunks whose holder
  // died (unless the rectangle somehow stayed assigned -- then another
  // copy survives and re-issuing would double-assign it).
  for (std::size_t w = 0; w < adopted_.size(); ++w) {
    if (!adopted_[w].has_value()) continue;
    const sim::WorkerProgress& progress =
        view.progress(static_cast<int>(w));
    if (progress.chunks_returned > adopted_[w]->returned_before) {
      adopted_[w].reset();
      continue;
    }
    if (!view.alive(static_cast<int>(w))) {
      if (!view.rect_assigned(adopted_[w]->plan.rect))
        orphans_.push_back(adopted_[w]->plan);
      adopted_[w].reset();
    }
  }
  return std::nullopt;
}

std::optional<sim::Decision> SpeculativeScheduler::reissue(
    const sim::ExecutionView& view) {
  while (!orphans_.empty() && view.rect_assigned(orphans_.front().rect))
    orphans_.pop_front();
  if (orphans_.empty()) return std::nullopt;

  // Same adoption rule as the FT layer: the free survivor with the best
  // estimated completion under the CALIBRATED speeds.
  const sim::ChunkPlan& orphan = orphans_.front();
  const double updates = static_cast<double>(orphan.total_updates());
  int target = -1;
  model::Time best_finish = kNever;
  for (int worker = 0; worker < view.worker_count(); ++worker) {
    if (!view.alive(worker) || view.progress(worker).has_chunk) continue;
    if (in_pair(worker)) continue;
    const model::Time start =
        view.earliest_start(worker, sim::CommKind::kSendC);
    if (start >= kNever) continue;
    const platform::WorkerSpec& spec = view.platform().worker(worker);
    const model::Time finish =
        start +
        2.0 * static_cast<double>(orphan.rect.count()) * spec.c +
        updates * view.calibrated_w(worker);
    if (finish < best_finish) {
      best_finish = finish;
      target = worker;
    }
  }
  if (target < 0) return std::nullopt;  // every survivor is busy; wait

  std::vector<sim::ChunkPlan> pieces =
      replan_for_memory(orphan, view.platform().worker(target).m);
  orphans_.pop_front();
  HMXP_CHECK(!pieces.empty(), "re-planning produced no chunks");
  for (std::size_t i = pieces.size(); i > 1; --i)
    orphans_.push_front(std::move(pieces[i - 1]));
  return sim::Decision::send_chunk(target, std::move(pieces.front()));
}

std::optional<sim::Decision> SpeculativeScheduler::speculate(
    const sim::ExecutionView& view) {
  // The worst straggler past the threshold: alive, sitting on a chunk
  // it owns outright (not already racing), and drifted. The chunk need
  // NOT be fully fed yet -- the duplicate gets its own operand feed, so
  // a straggler throttled by double-buffered streaming (each slow step
  // delays the next operand batch) is duplicated just as readily.
  int straggler = -1;
  double worst = options_.drift_threshold;
  for (int s = 0; s < view.worker_count(); ++s) {
    if (!view.alive(s)) continue;
    const sim::WorkerProgress& progress = view.progress(s);
    if (!progress.has_chunk) continue;
    if (progress.chunk_speculative || progress.twin >= 0 || in_pair(s))
      continue;
    if (view.observed_drift(s) >= worst) {
      worst = view.observed_drift(s);
      straggler = s;
    }
  }
  if (straggler < 0) return std::nullopt;

  // Pessimistic straggler estimate: the whole chunk recomputed at its
  // calibrated (drifted) speed from now. The duplicate must beat that
  // from a cold start -- C out, every operand re-fed by the inner
  // policy, the full recompute, C back.
  const sim::WorkerProgress& progress = view.progress(straggler);
  const double updates = static_cast<double>(progress.chunk.total_updates());
  const model::Time straggler_finish =
      view.now() + updates * view.calibrated_w(straggler);

  int target = -1;
  model::Time best_finish = straggler_finish;
  for (int w = 0; w < view.worker_count(); ++w) {
    if (w == straggler || !view.alive(w)) continue;
    if (view.progress(w).has_chunk || in_pair(w)) continue;
    // The duplicate must run the IDENTICAL plan (bit-for-bit C), so the
    // plan has to fit as-is: splitting would reassociate the k sums.
    if (progress.chunk.peak_buffers() > view.platform().worker(w).m)
      continue;
    const model::Time start = view.earliest_start(w, sim::CommKind::kSendC);
    if (start >= kNever) continue;
    const platform::WorkerSpec& spec = view.platform().worker(w);
    const model::Time finish =
        std::max(view.now(), start) +
        2.0 * static_cast<double>(progress.chunk.rect.count()) * spec.c +
        updates * view.calibrated_w(w);
    if (finish < best_finish) {
      best_finish = finish;
      target = w;
    }
  }
  if (target < 0) return std::nullopt;  // no copy would win the race

  pairs_.push_back(Pair{straggler, target, progress.chunk,
                        progress.chunks_returned,
                        view.progress(target).chunks_returned});
  return sim::Decision::send_chunk_speculative(target, progress.chunk);
}

sim::Decision SpeculativeScheduler::redirect_recv(
    const sim::ExecutionView& view, sim::Decision decision) const {
  const int x = decision.worker;

  // A racing pair member: never park the master on the copy the static
  // model happens to rank first -- drive the race to its first
  // completion instead. Feed the twin's missing steps, then block on
  // whichever member calibration expects to finish first.
  for (const Pair& pair : pairs_) {
    if (pair.primary != x && pair.duplicate != x) continue;
    const int other = pair.primary == x ? pair.duplicate : pair.primary;
    const sim::WorkerProgress& twin = view.progress(other);
    if (!view.alive(other) || !twin.has_chunk ||
        !same_rect(twin.chunk.rect, pair.plan.rect))
      return decision;  // broken race; resolve_pairs owns it next turn
    if (!twin.all_steps_received())
      return sim::Decision::send_operands(other);
    if (view.observed_drift(other) < view.observed_drift(x))
      return sim::Decision::recv_result(other);
    return decision;
  }

  // A plain drifted worker: while some less-drifted fully-fed chunk is
  // collectible, collect that one first. The straggler's RecvC comes
  // back around once nothing faster remains -- or never, if a duplicate
  // out-races it in the meantime.
  if (view.observed_drift(x) < options_.drift_threshold) return decision;
  int best = -1;
  double best_drift = options_.drift_threshold;
  for (int w = 0; w < view.worker_count(); ++w) {
    if (w == x || !view.alive(w) || in_pair(w)) continue;
    const sim::WorkerProgress& progress = view.progress(w);
    if (!progress.all_steps_received() || progress.chunk_speculative)
      continue;
    if (view.observed_drift(w) < best_drift) {
      best_drift = view.observed_drift(w);
      best = w;
    }
  }
  if (best >= 0) return sim::Decision::recv_result(best);
  return decision;
}

sim::Decision SpeculativeScheduler::next(const sim::ExecutionView& view) {
  const auto workers = static_cast<std::size_t>(view.worker_count());
  if (adopted_.size() != workers) adopted_.assign(workers, std::nullopt);

  // Resolution first: a zombie must be revoked before the inner policy
  // could try to collect it, and broken races must be re-shadowed
  // before any new decision builds on them.
  if (std::optional<sim::Decision> cancel = resolve_pairs(view))
    return *cancel;
  if (std::optional<sim::Decision> rescue = reissue(view))
    return *rescue;
  if (std::optional<sim::Decision> duplicate = speculate(view))
    return *duplicate;
  sim::Decision decision = inner_->next(view);
  if (decision.kind == sim::Decision::Kind::kComm &&
      decision.comm == sim::CommKind::kRecvC)
    return redirect_recv(view, decision);
  return decision;
}

std::unique_ptr<sim::Scheduler> make_speculative(
    std::string name, std::unique_ptr<sim::Scheduler> inner,
    SpeculationOptions options) {
  return std::make_unique<SpeculativeScheduler>(std::move(name),
                                                std::move(inner), options);
}

// Self-registrations: speculation over the demand-driven family, plain
// and composed over fault tolerance (speculation outermost, so its
// duplicate bookkeeping sees every decision that reaches the backend).

HMXP_REGISTER_ALGORITHM(
    sp_oddoml, "SP-ODDOML",
    "speculative demand-driven (duplicates stragglers)", 15,
    [](const platform::Platform& platform, const matrix::Partition& partition,
       HetSelection*) -> std::unique_ptr<sim::Scheduler> {
      return make_speculative(
          "SP-ODDOML", std::make_unique<DemandDrivenScheduler>(
                           make_oddoml(platform, partition)));
    });

HMXP_REGISTER_ALGORITHM(
    sp_ommoml, "SP-OMMOML",
    "speculative calibrated min-min (duplicates stragglers)", 16,
    [](const platform::Platform& platform, const matrix::Partition& partition,
       HetSelection*) -> std::unique_ptr<sim::Scheduler> {
      return make_speculative(
          "SP-OMMOML", std::make_unique<MinMinScheduler>(
                           make_ommoml_calibrated(platform, partition)));
    });

HMXP_REGISTER_ALGORITHM(
    sp_ft_oddoml, "SP-FT-ODDOML",
    "speculative + fault-tolerant demand-driven", 17,
    [](const platform::Platform& platform, const matrix::Partition& partition,
       HetSelection*) -> std::unique_ptr<sim::Scheduler> {
      return make_speculative(
          "SP-FT-ODDOML",
          make_fault_tolerant("FT-ODDOML",
                              std::make_unique<DemandDrivenScheduler>(
                                  make_oddoml(platform, partition))));
    });

HMXP_REGISTER_ALGORITHM(
    sp_ft_ommoml, "SP-FT-OMMOML",
    "speculative + fault-tolerant calibrated min-min", 18,
    [](const platform::Platform& platform, const matrix::Partition& partition,
       HetSelection*) -> std::unique_ptr<sim::Scheduler> {
      return make_speculative(
          "SP-FT-OMMOML",
          make_fault_tolerant("FT-OMMOML",
                              std::make_unique<MinMinScheduler>(
                                  make_ommoml_calibrated(platform,
                                                         partition))));
    });

}  // namespace hmxp::sched
