// Speculative wrapper policy: proactive straggler mitigation by
// redundant chunk execution with cancel-on-first-completion.
//
// The wrapper watches the view's calibration feedback. Once a worker's
// observed drift (EWMA per-update cost over its own baseline) crosses
// the configured threshold while it sits on an in-flight chunk, the
// wrapper estimates when the straggler will finish under its CALIBRATED
// speed and when the best idle survivor could deliver the same chunk
// from scratch (C out + identical plan recompute + C back). If the
// duplicate wins the race on paper, the wrapper issues a speculative
// SendC: the backend links the two workers as twins over the SAME
// rectangle (no new coverage is claimed), the inner policy feeds and
// collects both copies naturally, the FIRST completion commits the
// blocks, and the loser's now-zombie copy is revoked with a non-fatal
// cancel -- the cancelled worker keeps its territory and its next
// chunk. Because the duplicate runs the IDENTICAL plan (same k-step
// structure, never split), the committed C is bit-for-bit the same
// whichever copy wins.
//
// Rules of engagement:
//   * speculation can fire at ANY point of the run, not just the tail:
//     an online master serializes on the straggler's endpoint chunk
//     after chunk, so waiting for the last assignment would miss every
//     mid-run slowdown. The race estimate already prices the insurance
//     copy (an idle survivor only duplicates when its COLD-START finish
//     beats the straggler's calibrated one), and the drift threshold
//     keeps healthy platforms duplicate-free;
//   * one duplicate per chunk, and a worker participates in at most one
//     race at a time;
//   * the duplicate target must hold the identical plan in memory
//     (peak_buffers <= m); chunks that would need splitting are never
//     duplicated -- a split would reassociate k-sums and break the
//     bit-for-bit guarantee;
//   * composition with fault tolerance (SP over FT-*): if a race
//     member dies, the backend hands sole ownership to the surviving
//     twin. The FT layer below never saw the duplicate's SendC, so the
//     wrapper adopts a shadow of every duplicate-inherited chunk and
//     re-issues it itself if that survivor also dies (the FT layer
//     skips rectangles that are still assigned -- see
//     ExecutionView::rect_assigned -- so the two layers never
//     double-issue);
//   * the wrapper also REORDERS the inner policy's collections: a
//     RecvC aimed at a drifted worker (or a racing pair member) is
//     redirected while a less-drifted fully-fed chunk is collectible.
//     The online master BLOCKS for real on the worker a RecvC names,
//     and its model mirror projects with static speeds -- without the
//     redirect it would park on the straggler's endpoint while the
//     survivors finish, and no worker would ever be idle for a
//     duplicate. Drift-free the redirect never engages, so the wrapper
//     stays a bit-exact pass-through of the inner policy.
//
// Registered as SP-ODDOML / SP-OMMOML (plain inner policies) and
// SP-FT-ODDOML / SP-FT-OMMOML (speculation over fault tolerance).
#pragma once

#include <deque>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "sim/scheduler.hpp"

namespace hmxp::sched {

/// Tuning knobs for the speculation wrapper.
struct SpeculationOptions {
  /// Observed-drift ratio at which a worker counts as a straggler. The
  /// default doubles the paper's nominal speed: transient noise stays
  /// below it, a genuine 4x slowdown crosses it within a few steps.
  double drift_threshold = 2.0;
};

/// Process-wide default consumed by registry-built SP-* schedulers (the
/// registry's builder signature is fixed and cannot carry options).
/// Thread-safe; set it before building the scheduler.
void set_default_speculation_options(const SpeculationOptions& options);
SpeculationOptions default_speculation_options();

class SpeculativeScheduler final : public sim::Scheduler {
 public:
  SpeculativeScheduler(
      std::string name, std::unique_ptr<sim::Scheduler> inner,
      SpeculationOptions options = default_speculation_options());

  std::string name() const override { return name_; }
  sim::Decision next(const sim::ExecutionView& view) override;

  /// Races currently in flight (for tests/diagnostics).
  std::size_t active_pairs() const { return pairs_.size(); }

 private:
  /// One speculation race: the straggler, its duplicate, and both
  /// workers' returned-chunk counts at race start (the view's counts
  /// moving past these is the proof of a first completion -- a returned
  /// RecvC decision proves nothing under the online backend's
  /// mid-decision rollback).
  struct Pair {
    int primary = -1;
    int duplicate = -1;
    sim::ChunkPlan plan;
    model::BlockCount returned_primary = 0;
    model::BlockCount returned_duplicate = 0;
  };

  /// Shadow of a chunk a surviving duplicate inherited when its primary
  /// died: the FT layer below never tracked it, so this wrapper must
  /// re-issue it if the survivor dies too.
  struct Adopted {
    sim::ChunkPlan plan;
    model::BlockCount returned_before = 0;
  };

  std::string name_;
  std::unique_ptr<sim::Scheduler> inner_;
  SpeculationOptions options_;
  std::vector<Pair> pairs_;
  std::vector<std::optional<Adopted>> adopted_;  // lazily sized
  std::deque<sim::ChunkPlan> orphans_;

  bool in_pair(int worker) const;
  /// Resolves finished/broken races; may return the loser's cancel.
  std::optional<sim::Decision> resolve_pairs(const sim::ExecutionView& view);
  /// Re-issues duplicate-inherited chunks whose holder died.
  std::optional<sim::Decision> reissue(const sim::ExecutionView& view);
  /// Starts a new race when a straggler crosses the drift threshold.
  std::optional<sim::Decision> speculate(const sim::ExecutionView& view);
  /// Reroutes an inner RecvC that would park the master on a drifted
  /// worker or stall a race (see the header comment).
  sim::Decision redirect_recv(const sim::ExecutionView& view,
                              sim::Decision decision) const;
};

/// Wraps `inner` (takes ownership) under the given display name.
std::unique_ptr<sim::Scheduler> make_speculative(
    std::string name, std::unique_ptr<sim::Scheduler> inner,
    SpeculationOptions options = default_speculation_options());

}  // namespace hmxp::sched
