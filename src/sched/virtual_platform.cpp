#include "sched/virtual_platform.hpp"
#include "sched/registry.hpp"

#include <algorithm>
#include <limits>
#include <set>
#include <sstream>

#include "sim/scheduler.hpp"
#include "util/check.hpp"

namespace hmxp::sched {

namespace {

/// Exact makespan of the homogeneous algorithm on a virtual homogeneous
/// platform of `count` workers with the given parameters.
model::Time predict(const HomogeneousParams& params, int count,
                    const matrix::Partition& partition) {
  const platform::Platform virtual_platform =
      platform::Platform::homogeneous(count, params.c, params.w, params.m);
  RoundRobinScheduler scheduler =
      make_homogeneous(virtual_platform, partition);
  return sim::simulate(scheduler, virtual_platform, partition).makespan;
}

std::string describe(const HomogeneousParams& params, std::size_t eligible) {
  std::ostringstream os;
  os << "m>=" << params.m << " c<=" << params.c << " w<=" << params.w << " ("
     << eligible << " eligible)";
  return os.str();
}

/// Evaluates one (m, c, w) threshold triple; updates `best` if finer.
void consider(const platform::Platform& platform,
              const matrix::Partition& partition, model::BlockCount m,
              model::Time c, model::Time w, VirtualSelection& best) {
  std::vector<int> eligible;
  for (int i = 0; i < platform.size(); ++i) {
    const platform::WorkerSpec& spec = platform.worker(i);
    if (spec.m >= m && spec.c <= c + 1e-15 && spec.w <= w + 1e-15)
      eligible.push_back(i);
  }
  if (eligible.empty()) return;

  HomogeneousParams params{c, w, m};
  const model::Time makespan =
      predict(params, static_cast<int>(eligible.size()), partition);
  if (makespan < best.predicted_makespan) {
    best.params = params;
    best.candidates = std::move(eligible);
    best.predicted_makespan = makespan;
    best.description = describe(params, best.candidates.size());
  }
}

}  // namespace

VirtualSelection select_hom(const platform::Platform& platform,
                            const matrix::Partition& partition) {
  VirtualSelection best;
  best.predicted_makespan = std::numeric_limits<model::Time>::infinity();

  std::set<model::BlockCount> memories;
  for (const platform::WorkerSpec& worker : platform.workers())
    memories.insert(worker.m);

  for (const model::BlockCount m : memories) {
    // Apparent bandwidth/speed: the worst among eligible workers.
    model::Time c = 0.0;
    model::Time w = 0.0;
    for (const platform::WorkerSpec& worker : platform.workers()) {
      if (worker.m >= m) {
        c = std::max(c, worker.c);
        w = std::max(w, worker.w);
      }
    }
    consider(platform, partition, m, c, w, best);
  }
  HMXP_CHECK(!best.candidates.empty(), "Hom selection found no platform");
  return best;
}

VirtualSelection select_homi(const platform::Platform& platform,
                             const matrix::Partition& partition) {
  VirtualSelection best;
  best.predicted_makespan = std::numeric_limits<model::Time>::infinity();

  std::set<model::BlockCount> memories;
  std::set<model::Time> bandwidths;
  std::set<model::Time> speeds;
  for (const platform::WorkerSpec& worker : platform.workers()) {
    memories.insert(worker.m);
    bandwidths.insert(worker.c);
    speeds.insert(worker.w);
  }

  for (const model::BlockCount m : memories)
    for (const model::Time c : bandwidths)
      for (const model::Time w : speeds)
        consider(platform, partition, m, c, w, best);

  HMXP_CHECK(!best.candidates.empty(), "HomI selection found no platform");
  return best;
}

RoundRobinScheduler make_hom(const platform::Platform& platform,
                             const matrix::Partition& partition) {
  const VirtualSelection selection = select_hom(platform, partition);
  return make_homogeneous_on("Hom", platform, partition, selection.params,
                             selection.candidates);
}

RoundRobinScheduler make_homi(const platform::Platform& platform,
                              const matrix::Partition& partition) {
  const VirtualSelection selection = select_homi(platform, partition);
  return make_homogeneous_on("HomI", platform, partition, selection.params,
                             selection.candidates);
}

HMXP_REGISTER_ALGORITHM(
    hom, "Hom", "homogeneous algorithm on the best memory-threshold platform",
    0,
    [](const platform::Platform& platform, const matrix::Partition& partition,
       HetSelection*) -> std::unique_ptr<sim::Scheduler> {
      return std::make_unique<RoundRobinScheduler>(
          make_hom(platform, partition));
    });

HMXP_REGISTER_ALGORITHM(
    homi, "HomI", "improved Hom: (m, c, w) threshold grid", 1,
    [](const platform::Platform& platform, const matrix::Partition& partition,
       HetSelection*) -> std::unique_ptr<sim::Scheduler> {
      return std::make_unique<RoundRobinScheduler>(
          make_homi(platform, partition));
    });

}  // namespace hmxp::sched
