// Virtual-platform extraction for Hom and HomI (section 6.2).
//
// Hom: for every distinct memory size M in the platform, consider the
// virtual homogeneous platform of all workers with m_i >= M, with
// apparent speed the slowest speed and apparent bandwidth the slowest
// bandwidth among them; estimate the homogeneous algorithm's makespan on
// it; keep the best.
//
// HomI: the same, but the candidate set ranges over every combination of
// (memory size, bandwidth, speed) present in the platform; a worker is
// eligible if it is at least as good on all three axes, and the virtual
// parameters are the threshold values themselves -- a much finer
// selection (the paper's fig. 5 shows the difference).
//
// Makespans are estimated by running the simulator on the virtual
// platform, which is exact under the model (the paper computes the same
// quantity analytically).
//
// The paper does not specify which eligible workers execute when more
// are eligible than the P the homogeneous selection enrolls; we take
// them in platform index order, matching MPI-rank-order enrollment.
#pragma once

#include <string>
#include <vector>

#include "sched/homogeneous.hpp"

namespace hmxp::sched {

struct VirtualSelection {
  HomogeneousParams params;
  std::vector<int> candidates;      // eligible workers, platform order
  model::Time predicted_makespan = 0.0;
  std::string description;          // e.g. "m>=6710,c<=0.0041,w<=0.00041"
};

/// Best Hom virtual platform (memory-threshold candidates only).
VirtualSelection select_hom(const platform::Platform& platform,
                            const matrix::Partition& partition);

/// Best HomI virtual platform (full (m, c, w) threshold grid).
VirtualSelection select_homi(const platform::Platform& platform,
                             const matrix::Partition& partition);

/// Ready-to-run schedulers (selection embedded).
RoundRobinScheduler make_hom(const platform::Platform& platform,
                             const matrix::Partition& partition);
RoundRobinScheduler make_homi(const platform::Platform& platform,
                              const matrix::Partition& partition);

}  // namespace hmxp::sched
