#include "service/admission.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "core/algorithms.hpp"
#include "matrix/partition.hpp"
#include "model/steady_state.hpp"

namespace hmxp::service {

namespace {

AdmissionVerdict reject(std::string reason) {
  AdmissionVerdict verdict;
  verdict.admitted = false;
  verdict.reason = std::move(reason);
  return verdict;
}

}  // namespace

AdmissionVerdict price_job(const JobSpec& spec,
                           const platform::Platform& platform,
                           const std::vector<double>& drift,
                           const std::vector<char>& alive,
                           std::size_t max_payload_doubles) {
  if (spec.n_a == 0 || spec.n_ab == 0 || spec.n_b == 0 || spec.q == 0)
    return reject("job geometry must be positive in every dimension");
  if (!(spec.weight > 0.0) || !std::isfinite(spec.weight))
    return reject("job weight must be positive and finite");

  // Policy check: only FT-* schedulers survive starting with zero
  // workers and losing leased ones at rebalance points.
  try {
    const std::string canonical = core::algorithm_from_name(spec.algorithm);
    if (canonical.rfind("FT-", 0) != 0)
      return reject("algorithm \"" + canonical +
                    "\" is not fault-tolerant; service jobs require an "
                    "FT-* policy");
  } catch (const std::exception& error) {
    return reject(error.what());
  }

  // Geometry check: the fleet's arena slots and frame ceilings were
  // sized once at spawn; a larger payload cannot be shipped.
  const std::size_t payload =
      std::max({spec.n_a * spec.n_b, spec.n_a * spec.n_ab,
                spec.n_ab * spec.n_b});
  if (payload > max_payload_doubles)
    return reject("job payload (" + std::to_string(payload) +
                  " doubles) exceeds the fleet's sizing ceiling (" +
                  std::to_string(max_payload_doubles) + ")");

  // Steady-state pricing over the leasable platform, with each w_i
  // scaled by its observed drift -- a worker that slowed 2x since
  // calibration is priced at its real speed, not its datasheet.
  std::vector<model::SteadyWorker> workers = platform.steady_workers();
  const std::size_t p = workers.size();
  for (std::size_t i = 0; i < p; ++i) {
    if (i < drift.size() && std::isfinite(drift[i]) && drift[i] > 0.0)
      workers[i].w *= drift[i];
    if (i < alive.size() && !alive[i]) {
      // A dead worker can never be leased: price it out entirely.
      workers[i].mu = 0;
    }
  }
  const model::SteadyStateSolution solution =
      model::solve_bandwidth_centric(workers);
  if (solution.throughput <= 0.0)
    return reject("no leasable worker can sustain any throughput");

  // Table 2 memory feasibility: the buffers each enrolled worker needs
  // to HOLD its steady-state rate must fit its memory, or the schedule
  // stalls on operand starvation no matter what the scheduler does.
  const std::vector<double> demand = model::steady_state_buffer_demand(workers);
  for (std::size_t i = 0; i < p; ++i) {
    if (solution.x[i] <= 1e-12) continue;
    const double memory =
        static_cast<double>(platform.worker(static_cast<int>(i)).m);
    if (demand[i] > memory)
      return reject("steady-state working set of worker " +
                    std::to_string(i) + " (" + std::to_string(demand[i]) +
                    " blocks) overcommits its memory (" +
                    std::to_string(platform.worker(static_cast<int>(i)).m) +
                    " blocks)");
  }

  AdmissionVerdict verdict;
  verdict.admitted = true;
  verdict.throughput = solution.throughput;
  return verdict;
}

std::vector<int> fair_targets(const std::vector<double>& weights,
                              int alive_workers) {
  const std::size_t jobs = weights.size();
  std::vector<int> targets(jobs, 0);
  if (jobs == 0 || alive_workers <= 0) return targets;

  // Guarantee 1: every job gets a worker while supply lasts, in
  // registration order -- the oldest waiting job is served first.
  const std::size_t floored =
      std::min(jobs, static_cast<std::size_t>(alive_workers));
  for (std::size_t j = 0; j < floored; ++j) targets[j] = 1;
  int surplus = alive_workers - static_cast<int>(floored);
  if (surplus <= 0 || floored < jobs) return targets;

  // Split the surplus proportionally to weight, largest remainder
  // breaking ties by index (deterministic for tests and replays).
  double total_weight = 0.0;
  for (const double weight : weights) total_weight += weight;
  std::vector<double> remainders(jobs, 0.0);
  int assigned = 0;
  for (std::size_t j = 0; j < jobs; ++j) {
    const double share =
        static_cast<double>(surplus) * weights[j] / total_weight;
    const int whole = static_cast<int>(std::floor(share));
    targets[j] += whole;
    remainders[j] = share - static_cast<double>(whole);
    assigned += whole;
  }
  std::vector<std::size_t> order(jobs);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (remainders[a] != remainders[b]) return remainders[a] > remainders[b];
    return a < b;
  });
  for (std::size_t k = 0; k < order.size() && assigned < surplus; ++k) {
    ++targets[order[k]];
    ++assigned;
  }
  return targets;
}

}  // namespace hmxp::service
