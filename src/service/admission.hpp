// Admission control and fair sharing for the multi-job service.
//
// Admission prices a submitted job against the paper's own steady-state
// machinery BEFORE it queues: the Table 1 bandwidth-centric optimum
// (model/steady_state.hpp) over the fleet's platform -- with each w_i
// scaled by the worker's observed calibration drift -- yields the
// honest throughput the fleet can sustain, and the Table 2 buffer
// demand says how many block buffers each enrolled worker needs to hold
// that rate. A job whose steady-state working set overcommits a
// worker's memory, whose payloads exceed the fleet's sizing ceiling, or
// whose policy cannot survive lease churn is rejected with a reason
// instead of wedging the queue.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "platform/platform.hpp"
#include "service/job.hpp"

namespace hmxp::service {

struct AdmissionVerdict {
  bool admitted = false;
  std::string reason;  // set when rejected
  /// Steady-state block updates per second the fleet sustains for this
  /// job (Table 1 optimum under current calibration drift).
  double throughput = 0.0;
};

/// Prices `spec` against the fleet's platform. `drift` is the
/// per-worker observed slowdown ratio (1.0 = nominal; from
/// Fleet::drift), `alive` flags which workers can still be leased, and
/// `max_payload_doubles` is the fleet's frame/arena sizing ceiling.
/// Pure function of its inputs; never throws.
AdmissionVerdict price_job(const JobSpec& spec,
                           const platform::Platform& platform,
                           const std::vector<double>& drift,
                           const std::vector<char>& alive,
                           std::size_t max_payload_doubles);

/// Weighted fair-share worker targets for the running jobs: `weights`
/// in registration order, `alive_workers` leasable workers. Every job
/// targets at least 1 worker while supply lasts (jobs beyond the supply
/// target 0 and wait); the surplus is split proportionally to weight by
/// largest remainder, deterministically. Sum of targets ==
/// min(alive_workers, ...) never exceeds alive_workers.
std::vector<int> fair_targets(const std::vector<double>& weights,
                              int alive_workers);

}  // namespace hmxp::service
