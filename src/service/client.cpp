#include "service/client.hpp"

#include <cstring>
#include <stdexcept>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include "runtime/socket_util.hpp"
#include "service/wire.hpp"

namespace hmxp::service {

TcpClient::TcpClient(std::uint16_t port, std::size_t max_payload_doubles)
    : max_response_bytes_(wire::max_frame_bytes_for(max_payload_doubles)) {
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) throw std::runtime_error("service client: socket() failed");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd_);
    fd_ = -1;
    throw std::runtime_error("service client: connect failed (port " +
                             std::to_string(port) + ")");
  }
  bool ok = false;
  try {
    ok = wire::client_handshake(fd_);
  } catch (...) {
    ::close(fd_);
    fd_ = -1;
    throw;
  }
  if (!ok) {
    ::close(fd_);
    fd_ = -1;
    throw std::runtime_error(
        "service client: daemon refused the handshake (protocol version "
        "mismatch?)");
  }
}

TcpClient::~TcpClient() {
  if (fd_ >= 0) ::close(fd_);
}

JobResult TcpClient::run(const JobSpec& spec) {
  if (fd_ < 0) throw std::runtime_error("service client: not connected");
  wire::ByteBuffer frame(sizeof(std::uint64_t), 0);
  wire::encode_job_spec(spec, frame);
  const auto length =
      static_cast<std::uint64_t>(frame.size() - sizeof(std::uint64_t));
  std::memcpy(frame.data(), &length, sizeof(length));
  runtime::write_exact(fd_, frame.data(), frame.size());

  std::vector<std::uint8_t> body;
  if (!runtime::read_frame(fd_, body, max_response_bytes_))
    throw std::runtime_error(
        "service client: daemon closed before responding");
  std::optional<JobResult> result = wire::decode_job_result(body);
  if (!result.has_value())
    throw std::runtime_error("service client: malformed response frame");
  return std::move(*result);
}

}  // namespace hmxp::service
