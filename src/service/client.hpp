// Client surfaces of the multi-job service. Two ways in, one contract:
//
//  * Client -- in-process: wraps a Daemon reference directly. Submit
//    returns a job id immediately; wait blocks for the result. Many
//    Client instances (one per application thread) share one daemon.
//  * TcpClient -- remote: dials the daemon's loopback TCP front-end,
//    performs the versioned handshake, and runs jobs synchronously
//    over the wire (one in flight per connection; open several
//    connections for concurrency, exactly like the tests do).
#pragma once

#include <cstdint>
#include <string>

#include "service/daemon.hpp"
#include "service/job.hpp"

namespace hmxp::service {

class Client {
 public:
  explicit Client(Daemon& daemon) : daemon_(&daemon) {}

  /// Submits and returns the job id (possibly already terminal when
  /// admission rejected the spec -- wait() reports the reason).
  std::uint64_t submit(const JobSpec& spec) { return daemon_->submit(spec); }
  /// Blocks until terminal; consumes the result.
  JobResult wait(std::uint64_t job_id) { return daemon_->wait(job_id); }
  /// Submit + wait in one call.
  JobResult run(const JobSpec& spec) { return wait(submit(spec)); }

 private:
  Daemon* daemon_;
};

class TcpClient {
 public:
  /// Connects to the daemon's TCP front-end on loopback and performs
  /// the handshake. Throws std::runtime_error when the daemon is
  /// unreachable or speaks an incompatible protocol version.
  TcpClient(std::uint16_t port, std::size_t max_payload_doubles);
  ~TcpClient();
  TcpClient(const TcpClient&) = delete;
  TcpClient& operator=(const TcpClient&) = delete;

  /// Runs one job synchronously over the connection: ships the spec,
  /// blocks for the result frame (the product matrix rides inline).
  /// Throws on transport errors or a malformed response.
  JobResult run(const JobSpec& spec);

 private:
  int fd_ = -1;
  std::uint64_t max_response_bytes_ = 0;
};

}  // namespace hmxp::service
