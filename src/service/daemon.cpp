#include "service/daemon.hpp"

#include <algorithm>
#include <cstring>
#include <utility>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include "core/algorithms.hpp"
#include "core/run.hpp"
#include "matrix/partition.hpp"
#include "platform/calibration.hpp"
#include "runtime/socket_util.hpp"
#include "service/admission.hpp"
#include "service/wire.hpp"
#include "util/check.hpp"
#include "util/strings.hpp"

namespace hmxp::service {

namespace {

bool terminal(JobState state) {
  return state == JobState::kCompleted || state == JobState::kFailed ||
         state == JobState::kRejected;
}

}  // namespace

Daemon::Daemon(DaemonConfig config) : config_(std::move(config)) {
  HMXP_REQUIRE(config_.max_concurrent_jobs > 0,
               "daemon needs at least one runner");
  HMXP_REQUIRE(config_.queue_capacity > 0,
               "daemon needs a positive queue capacity");
  fleet_ = std::make_unique<runtime::Fleet>(
      config_.platform, config_.executor, config_.max_payload_doubles);
  const auto size = static_cast<std::size_t>(fleet_->size());
  free_workers_.reserve(size);
  for (std::size_t w = 0; w < size; ++w)
    free_workers_.push_back(static_cast<int>(w));

  // Reheat calibration: a restarted daemon starts where the previous
  // one left off, on matching silicon and fleet shape only. A missing
  // or corrupt cache is simply a cold start.
  if (config_.calibration_cache.has_value())
    calibration_path_ =
        util::to_lower(*config_.calibration_cache) == "off"
            ? std::string()
            : *config_.calibration_cache;
  else
    calibration_path_ = platform::calibration_cache_path();
  calibration_key_ =
      platform::calibration_cache_key(config_.fleet_label, size);
  if (const auto speeds = platform::load_calibration(
          calibration_path_, calibration_key_, size)) {
    fleet_->speeds() = *speeds;
    for (std::size_t w = 0; w < size; ++w)
      fleet_->publish_drift(static_cast<int>(w), (*speeds)[w].drift());
  }

  runners_.reserve(config_.max_concurrent_jobs);
  for (std::size_t i = 0; i < config_.max_concurrent_jobs; ++i)
    runners_.emplace_back([this] { runner_loop(); });
}

Daemon::~Daemon() { shutdown(); }

std::uint64_t Daemon::submit(const JobSpec& spec) {
  // Price OUTSIDE the registry lock: admission reads only the fleet's
  // lock-free drift/death snapshots and pure model code.
  const auto size = static_cast<std::size_t>(fleet_->size());
  std::vector<double> drift(size, 1.0);
  std::vector<char> alive(size, 1);
  for (std::size_t w = 0; w < size; ++w) {
    drift[w] = fleet_->drift(static_cast<int>(w));
    alive[w] = fleet_->alive(static_cast<int>(w)) ? 1 : 0;
  }
  const AdmissionVerdict verdict =
      price_job(spec, fleet_->platform(), drift, alive,
                config_.max_payload_doubles);

  std::lock_guard<std::mutex> lock(jobs_mutex_);
  const std::uint64_t id = next_job_id_++;
  JobRecord& record = jobs_[id];
  record.spec = spec;
  std::string rejection;
  if (!accepting_)
    rejection = "daemon is shutting down";
  else if (!verdict.admitted)
    rejection = verdict.reason;
  else if (queue_.size() >= config_.queue_capacity)
    rejection = "job queue is full (" +
                std::to_string(config_.queue_capacity) + " jobs)";
  if (!rejection.empty()) {
    record.state = JobState::kRejected;
    record.result.state = JobState::kRejected;
    record.result.error = std::move(rejection);
    jobs_cv_.notify_all();
    return id;
  }
  record.state = JobState::kQueued;
  record.result.priced_throughput = verdict.throughput;
  queue_.push_back(id);
  queue_cv_.notify_one();
  return id;
}

JobResult Daemon::wait(std::uint64_t job_id) {
  std::unique_lock<std::mutex> lock(jobs_mutex_);
  const auto it = jobs_.find(job_id);
  HMXP_REQUIRE(it != jobs_.end(), "unknown job id");
  jobs_cv_.wait(lock, [&] { return terminal(it->second.state); });
  HMXP_REQUIRE(!it->second.consumed, "job result already consumed");
  it->second.consumed = true;
  JobResult result = std::move(it->second.result);
  result.state = it->second.state;
  return result;
}

JobState Daemon::state(std::uint64_t job_id) const {
  std::lock_guard<std::mutex> lock(jobs_mutex_);
  const auto it = jobs_.find(job_id);
  HMXP_REQUIRE(it != jobs_.end(), "unknown job id");
  return it->second.state;
}

std::size_t Daemon::jobs_completed() const {
  std::lock_guard<std::mutex> lock(jobs_mutex_);
  return completed_;
}

void Daemon::runner_loop() {
  while (true) {
    std::uint64_t id = 0;
    {
      std::unique_lock<std::mutex> lock(jobs_mutex_);
      queue_cv_.wait(lock, [&] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      id = queue_.front();
      queue_.pop_front();
      jobs_[id].state = JobState::kRunning;
      ++running_;
    }
    run_job(id);
    {
      std::lock_guard<std::mutex> lock(jobs_mutex_);
      --running_;
      jobs_cv_.notify_all();
    }
  }
}

void Daemon::run_job(std::uint64_t job_id) {
  JobSpec spec;
  JobResult result;
  {
    std::lock_guard<std::mutex> lock(jobs_mutex_);
    spec = jobs_[job_id].spec;
    // Carry admission's estimate through to the final result.
    result.priced_throughput = jobs_[job_id].result.priced_throughput;
  }

  LeaseAccount account;
  account.job_id = job_id;
  account.weight = spec.weight;
  bool registered = false;
  try {
    const matrix::Partition partition(spec.n_a, spec.n_ab, spec.n_b, spec.q);
    // Deterministic operands: bit-identical to a standalone
    // run_algorithm_online of the same (partition, seed) pair.
    core::OperandSet operands =
        core::generate_operands(partition, spec.data_seed);
    const std::unique_ptr<sim::Scheduler> scheduler = core::make_scheduler(
        core::algorithm_from_name(spec.algorithm), fleet_->platform(),
        partition);

    runtime::LeaseHooks hooks;
    hooks.poll_grants = [this, &account] {
      std::lock_guard<std::mutex> lock(lease_mutex_);
      return std::exchange(account.backlog, {});
    };
    hooks.wait_grant = [this, &account] {
      std::unique_lock<std::mutex> lock(lease_mutex_);
      rebalance_locked();
      lease_cv_.wait(lock, [&] {
        return !account.backlog.empty() || fleet_->alive_count() == 0;
      });
      return std::exchange(account.backlog, {});
    };
    hooks.target = [this, &account] {
      std::lock_guard<std::mutex> lock(lease_mutex_);
      return target_for_locked(account);
    };
    hooks.release = [this, &account](int worker) {
      std::lock_guard<std::mutex> lock(lease_mutex_);
      --account.held;
      free_workers_.push_back(worker);
      rebalance_locked();
    };
    hooks.worker_dead = [this, &account](int) {
      std::lock_guard<std::mutex> lock(lease_mutex_);
      --account.held;
      rebalance_locked();
      // A waiting job's "can a grant ever come" condition may have
      // flipped; wake everyone to re-check.
      lease_cv_.notify_all();
    };

    register_account(account);
    registered = true;
    runtime::FleetJobOptions job;
    job.verify = spec.verify;
    const runtime::ExecutorReport report =
        runtime::execute_on_fleet(*scheduler, *fleet_, partition, operands.a,
                                  operands.b, operands.c,
                                  /*initial_lease=*/{}, hooks, job);
    unregister_account(account);
    registered = false;

    result.state = JobState::kCompleted;
    result.c = std::move(operands.c);
    result.wall_seconds = report.wall_seconds;
    result.chunks_processed = report.chunks_processed;
    result.updates_performed = report.updates_performed;
    result.workers_used = report.fleet_workers_used;
    result.workers_failed = report.workers_failed;
    result.verified = report.verified;
    result.max_abs_error = report.max_abs_error;
    result.pool_delta = report.buffer_pool_delta;
  } catch (const std::exception& error) {
    if (registered) unregister_account(account);
    result.state = JobState::kFailed;
    result.error = error.what();
  }

  std::lock_guard<std::mutex> lock(jobs_mutex_);
  JobRecord& record = jobs_[job_id];
  record.state = result.state;
  record.result = std::move(result);
  if (record.state == JobState::kCompleted) ++completed_;
  jobs_cv_.notify_all();
}

// ----- lease manager ---------------------------------------------------------

void Daemon::register_account(LeaseAccount& account) {
  std::lock_guard<std::mutex> lock(lease_mutex_);
  accounts_.push_back(&account);
  rebalance_locked();
}

void Daemon::unregister_account(LeaseAccount& account) {
  std::lock_guard<std::mutex> lock(lease_mutex_);
  accounts_.erase(std::remove(accounts_.begin(), accounts_.end(), &account),
                  accounts_.end());
  // Workers granted but never polled flow straight back to the pool.
  for (const int worker : account.backlog) free_workers_.push_back(worker);
  account.backlog.clear();
  rebalance_locked();
  lease_cv_.notify_all();
}

int Daemon::target_for_locked(const LeaseAccount& account) const {
  std::vector<double> weights;
  weights.reserve(accounts_.size());
  int leasable = static_cast<int>(free_workers_.size());
  std::size_t index = accounts_.size();
  for (std::size_t i = 0; i < accounts_.size(); ++i) {
    weights.push_back(accounts_[i]->weight);
    leasable += accounts_[i]->held;
    if (accounts_[i] == &account) index = i;
  }
  if (index == accounts_.size()) return 0;  // not registered (shutting down)
  return fair_targets(weights, leasable)[index];
}

void Daemon::rebalance_locked() {
  if (accounts_.empty() || free_workers_.empty()) return;
  std::vector<double> weights;
  weights.reserve(accounts_.size());
  int leasable = static_cast<int>(free_workers_.size());
  for (const LeaseAccount* account : accounts_) {
    weights.push_back(account->weight);
    leasable += account->held;
  }
  const std::vector<int> targets = fair_targets(weights, leasable);
  bool granted = false;
  while (!free_workers_.empty()) {
    // Grant to the largest deficit; a job holding NOTHING always wins
    // over one that merely wants more (starvation beats imbalance).
    std::size_t best = accounts_.size();
    int best_deficit = 0;
    bool best_empty = false;
    for (std::size_t i = 0; i < accounts_.size(); ++i) {
      const int deficit = targets[i] - accounts_[i]->held;
      if (deficit <= 0) continue;
      const bool empty = accounts_[i]->held == 0;
      if (best == accounts_.size() || (empty && !best_empty) ||
          (empty == best_empty && deficit > best_deficit)) {
        best = i;
        best_deficit = deficit;
        best_empty = empty;
      }
    }
    if (best == accounts_.size()) break;  // everyone at target
    const int worker = free_workers_.back();
    free_workers_.pop_back();
    accounts_[best]->backlog.push_back(worker);
    ++accounts_[best]->held;
    granted = true;
  }
  if (granted) lease_cv_.notify_all();
}

// ----- TCP front-end ---------------------------------------------------------

std::uint16_t Daemon::serve_tcp(std::uint16_t port) {
  HMXP_REQUIRE(listen_fd_ < 0, "TCP front-end already serving");
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  HMXP_CHECK(fd >= 0, "service listen socket creation failed");
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
      ::listen(fd, 16) != 0) {
    ::close(fd);
    HMXP_CHECK(false, "service listen socket bind/listen failed");
  }
  socklen_t addr_len = sizeof(addr);
  ::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &addr_len);
  listen_fd_ = fd;
  tcp_port_ = ntohs(addr.sin_port);
  acceptor_ = std::thread([this] { tcp_accept_loop(); });
  return tcp_port_;
}

void Daemon::tcp_accept_loop() {
  while (true) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) return;  // listen socket closed: shutting down
    std::lock_guard<std::mutex> lock(sessions_mutex_);
    session_fds_.push_back(fd);
    sessions_.emplace_back([this, fd] { tcp_session(fd); });
  }
}

void Daemon::tcp_session(int fd) {
  try {
    if (wire::server_handshake(fd)) {
      std::vector<std::uint8_t> body;
      while (runtime::read_frame(fd, body, wire::kMaxRequestBytes)) {
        const std::optional<JobSpec> spec = wire::decode_job_spec(body);
        if (!spec.has_value()) break;  // malformed request: drop session
        const JobResult result = wait(submit(*spec));
        wire::ByteBuffer frame(sizeof(std::uint64_t), 0);
        wire::encode_job_result(result, frame);
        const auto length =
            static_cast<std::uint64_t>(frame.size() - sizeof(std::uint64_t));
        std::memcpy(frame.data(), &length, sizeof(length));
        runtime::write_exact(fd, frame.data(), frame.size());
      }
    }
  } catch (...) {
    // A vanished client is that client's problem, never the daemon's.
  }
  ::close(fd);
}

// ----- shutdown --------------------------------------------------------------

void Daemon::shutdown() {
  {
    std::lock_guard<std::mutex> lock(shutdown_mutex_);
    if (shut_down_) return;
    shut_down_ = true;
  }
  // 1. Stop admitting; every later submit is rejected with a reason.
  {
    std::lock_guard<std::mutex> lock(jobs_mutex_);
    accepting_ = false;
  }
  // 2. Drain: queued jobs still run, running jobs finish, waiting
  //    clients get their results.
  {
    std::unique_lock<std::mutex> lock(jobs_mutex_);
    jobs_cv_.wait(lock, [&] { return queue_.empty() && running_ == 0; });
    stopping_ = true;
    queue_cv_.notify_all();
  }
  for (std::thread& runner : runners_) runner.join();
  runners_.clear();
  // 3. Tear the TCP front-end down: closing the listen socket pops the
  //    acceptor, shutting session sockets pops their read_frame loops.
  if (listen_fd_ >= 0) {
    ::shutdown(listen_fd_, SHUT_RDWR);
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  if (acceptor_.joinable()) acceptor_.join();
  {
    std::lock_guard<std::mutex> lock(sessions_mutex_);
    for (const int fd : session_fds_) ::shutdown(fd, SHUT_RDWR);
  }
  for (std::thread& session : sessions_) session.join();
  sessions_.clear();
  session_fds_.clear();
  // 4. Persist what the fleet learned (quiescent now: no jobs, no
  //    sessions), then stop the workers.
  if (!calibration_path_.empty())
    platform::store_calibration(calibration_path_, calibration_key_,
                                fleet_->speeds());
  fleet_->shutdown();
}

}  // namespace hmxp::service
