// The persistent multi-job service: a long-lived daemon owning ONE
// worker fleet (runtime/fleet.hpp) and serving a queue of
// matrix-product jobs from many concurrent clients.
//
// What stays warm across jobs -- the whole point of the daemon:
//  * the workers themselves: worker_main's job-agnostic loop serves
//    successive jobs over one transport, no spawn/teardown per job;
//  * the BufferPool (and the shm transport's SharedArena): after
//    warm-up, jobs recycle payload buffers instead of allocating --
//    total heap growth is bounded by the worst-case in-flight buffer
//    population, never by the number of jobs served;
//  * per-worker calibration: SpeedEstimates accumulate across jobs and
//    persist across daemon restarts (platform/calibration.hpp cache);
//  * kernel tuning: resolved once per process, shared by every job.
//
// Concurrency: up to max_concurrent_jobs run at once, each as its own
// master loop over a DISJOINT lease of workers. The lease manager in
// this class is the single synchronization point: weighted fair-share
// targets (admission.hpp) decide who holds how many workers, grants
// and releases happen at chunk boundaries, and a finished job's
// workers flow to the next job's prologue while the finisher's tail
// still drains (pipelined epilogue/prologue -- workers never idle
// between jobs while work is queued).
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "platform/platform.hpp"
#include "runtime/executor.hpp"
#include "runtime/fleet.hpp"
#include "service/job.hpp"

namespace hmxp::service {

struct DaemonConfig {
  platform::Platform platform;
  /// Fleet-wide executor configuration (transport kind, fault hooks,
  /// calibration alpha). tolerate_faults is forced on by the fleet.
  runtime::ExecutorOptions executor;
  /// Largest single payload any admitted job may ship; sizes the shm
  /// arena and frame ceilings once, at fleet spawn.
  std::size_t max_payload_doubles = 0;
  /// Jobs running concurrently (each is one runner thread + mirror).
  std::size_t max_concurrent_jobs = 4;
  /// Admitted-but-not-running jobs the queue holds before rejecting.
  std::size_t queue_capacity = 64;
  /// Keys the persistent calibration cache (with CPU model + size).
  std::string fleet_label = "service";
  /// Calibration cache file override: nullopt = default resolution
  /// chain (HMXP_CALIB_CACHE env, then next to the tuning cache),
  /// "off" = no persistence. Tests point this at a temp file.
  std::optional<std::string> calibration_cache;
};

class Daemon {
 public:
  /// Spawns the fleet and the runner threads; loads persisted
  /// calibration if the cache holds a matching entry.
  explicit Daemon(DaemonConfig config);
  /// Implies shutdown() (drains the queue, persists calibration).
  ~Daemon();
  Daemon(const Daemon&) = delete;
  Daemon& operator=(const Daemon&) = delete;

  /// Admits or rejects `spec` (admission runs HERE, synchronously) and
  /// returns the job id either way -- a rejected job is immediately
  /// terminal with state kRejected and the reason in its result.
  /// Thread-safe; many clients submit concurrently.
  std::uint64_t submit(const JobSpec& spec);

  /// Blocks until the job is terminal and returns its result (moving
  /// the product matrix out -- wait() consumes the job; a second wait
  /// on the same id throws).
  JobResult wait(std::uint64_t job_id);

  JobState state(std::uint64_t job_id) const;

  /// Serves the wire protocol (service/wire.hpp) on loopback TCP.
  /// `port` 0 binds an ephemeral port; the bound port is returned.
  std::uint16_t serve_tcp(std::uint16_t port = 0);
  std::uint16_t tcp_port() const { return tcp_port_; }

  int alive_workers() const { return fleet_->alive_count(); }
  runtime::Fleet& fleet() { return *fleet_; }
  std::size_t jobs_completed() const;

  /// Stops accepting, drains every queued and running job, persists
  /// calibration, and shuts the fleet down. Idempotent.
  void shutdown();

 private:
  struct JobRecord {
    JobSpec spec;
    JobState state = JobState::kQueued;
    JobResult result;
    bool consumed = false;  // wait() already returned it
  };

  /// One RUNNING job's slice of the lease manager's state. Lives on the
  /// runner's stack; registered/unregistered under lease_mutex_.
  struct LeaseAccount {
    std::uint64_t job_id = 0;
    double weight = 1.0;
    std::vector<int> backlog;  // granted, not yet polled by the master
    int held = 0;              // granted workers the job still owns
  };

  void runner_loop();
  void run_job(std::uint64_t job_id);
  void tcp_accept_loop();
  void tcp_session(int fd);

  // Lease manager (all under lease_mutex_).
  void register_account(LeaseAccount& account);
  void unregister_account(LeaseAccount& account);
  void rebalance_locked();
  int target_for_locked(const LeaseAccount& account) const;

  DaemonConfig config_;
  std::unique_ptr<runtime::Fleet> fleet_;
  std::string calibration_path_;
  std::string calibration_key_;

  // Job registry + queue.
  mutable std::mutex jobs_mutex_;
  std::condition_variable jobs_cv_;   // job state transitions
  std::condition_variable queue_cv_;  // queue pushes / stop
  std::map<std::uint64_t, JobRecord> jobs_;
  std::deque<std::uint64_t> queue_;
  std::uint64_t next_job_id_ = 1;
  std::size_t running_ = 0;
  std::size_t completed_ = 0;
  bool accepting_ = true;
  bool stopping_ = false;

  // Lease manager.
  std::mutex lease_mutex_;
  std::condition_variable lease_cv_;
  std::vector<int> free_workers_;         // alive, unleased
  std::vector<LeaseAccount*> accounts_;   // running jobs, registration order

  std::vector<std::thread> runners_;

  // TCP front-end.
  int listen_fd_ = -1;
  std::uint16_t tcp_port_ = 0;
  std::thread acceptor_;
  std::mutex sessions_mutex_;
  std::vector<std::thread> sessions_;
  std::vector<int> session_fds_;

  std::mutex shutdown_mutex_;
  bool shut_down_ = false;
};

}  // namespace hmxp::service
