#include "service/job.hpp"

namespace hmxp::service {

const char* job_state_name(JobState state) {
  switch (state) {
    case JobState::kQueued:
      return "queued";
    case JobState::kRunning:
      return "running";
    case JobState::kCompleted:
      return "completed";
    case JobState::kFailed:
      return "failed";
    case JobState::kRejected:
      return "rejected";
  }
  return "unknown";
}

}  // namespace hmxp::service
