// The unit of work the multi-job service queues: one C += A * B
// product, fully described by value. A job names its geometry and data
// seed instead of carrying matrices -- operands are regenerated
// deterministically on the daemon side (core::generate_operands), so a
// service job and a standalone run of the same (partition, seed) pair
// compute over bit-identical inputs, and the submit path stays cheap
// enough to price at admission time.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include "matrix/matrix.hpp"
#include "runtime/buffer_pool.hpp"

namespace hmxp::service {

struct JobSpec {
  /// Scheduling policy. MUST be fault-tolerant (an FT-* registry name):
  /// a fleet job starts with zero workers and acquires them through
  /// leases, which only an FT policy's hot-join machinery understands.
  /// Admission rejects anything else.
  std::string algorithm = "FT-ODDOML";
  std::size_t n_a = 0;   // element rows of A and C
  std::size_t n_ab = 0;  // inner element dimension
  std::size_t n_b = 0;   // element cols of B and C
  std::size_t q = 80;    // block side
  std::uint64_t data_seed = 42;
  /// Fair-share weight: a weight-2 job targets twice the workers of a
  /// weight-1 job running beside it. Must be positive.
  double weight = 1.0;
  /// Verify C against a reference product inside the job (costly).
  bool verify = false;
};

enum class JobState : std::uint8_t {
  kQueued = 0,
  kRunning = 1,
  kCompleted = 2,
  kFailed = 3,    // started but did not finish (worker loss beyond FT, ...)
  kRejected = 4,  // never queued: admission refused it (see error)
};

const char* job_state_name(JobState state);

struct JobResult {
  JobState state = JobState::kQueued;
  /// Rejection or failure reason; empty on completion.
  std::string error;
  /// The product: C_initial + A * B. Empty unless state == kCompleted.
  matrix::Matrix c;
  double wall_seconds = 0.0;
  std::size_t chunks_processed = 0;
  std::size_t updates_performed = 0;
  /// Distinct workers that ever held this job's lease.
  int workers_used = 0;
  /// Workers that really died while this job held them.
  int workers_failed = 0;
  bool verified = false;
  double max_abs_error = 0.0;
  /// Admission's throughput estimate for this job (block updates per
  /// second at the fleet's current calibration), for telemetry.
  double priced_throughput = 0.0;
  /// This job's slice of the fleet's buffer-pool activity (counters are
  /// differences; a warm-fleet job allocates only when it pushes the
  /// in-flight buffer population past every earlier job's peak).
  runtime::BufferPool::Stats pool_delta;
};

}  // namespace hmxp::service
