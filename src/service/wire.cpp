#include "service/wire.hpp"

#include <cstring>

#include "runtime/serde.hpp"
#include "runtime/socket_util.hpp"

namespace hmxp::service::wire {

namespace {

constexpr std::size_t kMaxStringBytes = 4096;

template <typename T>
void append_raw(const T& value, ByteBuffer& out) {
  const auto* bytes = reinterpret_cast<const std::uint8_t*>(&value);
  out.insert(out.end(), bytes, bytes + sizeof(T));
}

void append_string(const std::string& text, ByteBuffer& out) {
  append_raw(static_cast<std::uint32_t>(text.size()), out);
  out.insert(out.end(), text.begin(), text.end());
}

/// Bounds-checked sequential reader over one frame body.
struct Reader {
  const std::uint8_t* data;
  std::size_t size;
  std::size_t offset = 0;
  bool failed = false;

  template <typename T>
  T read() {
    T value{};
    if (failed || size - offset < sizeof(T)) {
      failed = true;
      return value;
    }
    std::memcpy(&value, data + offset, sizeof(T));
    offset += sizeof(T);
    return value;
  }

  std::string read_string() {
    const auto length = read<std::uint32_t>();
    if (failed || length > kMaxStringBytes || size - offset < length) {
      failed = true;
      return {};
    }
    std::string text(reinterpret_cast<const char*>(data + offset), length);
    offset += length;
    return text;
  }

  bool done() const { return !failed && offset == size; }
};

}  // namespace

std::uint64_t max_frame_bytes_for(std::size_t max_payload_doubles) {
  return static_cast<std::uint64_t>(max_payload_doubles) * sizeof(double) +
         2 * kMaxStringBytes + 1024;
}

void encode_job_spec(const JobSpec& spec, ByteBuffer& out) {
  append_string(spec.algorithm, out);
  append_raw(static_cast<std::uint64_t>(spec.n_a), out);
  append_raw(static_cast<std::uint64_t>(spec.n_ab), out);
  append_raw(static_cast<std::uint64_t>(spec.n_b), out);
  append_raw(static_cast<std::uint64_t>(spec.q), out);
  append_raw(spec.data_seed, out);
  append_raw(spec.weight, out);
  append_raw(static_cast<std::uint8_t>(spec.verify ? 1 : 0), out);
}

std::optional<JobSpec> decode_job_spec(const ByteBuffer& body) {
  Reader reader{body.data(), body.size()};
  JobSpec spec;
  spec.algorithm = reader.read_string();
  spec.n_a = static_cast<std::size_t>(reader.read<std::uint64_t>());
  spec.n_ab = static_cast<std::size_t>(reader.read<std::uint64_t>());
  spec.n_b = static_cast<std::size_t>(reader.read<std::uint64_t>());
  spec.q = static_cast<std::size_t>(reader.read<std::uint64_t>());
  spec.data_seed = reader.read<std::uint64_t>();
  spec.weight = reader.read<double>();
  spec.verify = reader.read<std::uint8_t>() != 0;
  if (!reader.done()) return std::nullopt;
  return spec;
}

void encode_job_result(const JobResult& result, ByteBuffer& out) {
  append_raw(static_cast<std::uint8_t>(result.state), out);
  append_string(result.error, out);
  append_raw(result.wall_seconds, out);
  append_raw(static_cast<std::uint64_t>(result.chunks_processed), out);
  append_raw(static_cast<std::uint64_t>(result.updates_performed), out);
  append_raw(static_cast<std::int32_t>(result.workers_used), out);
  append_raw(static_cast<std::int32_t>(result.workers_failed), out);
  append_raw(static_cast<std::uint8_t>(result.verified ? 1 : 0), out);
  append_raw(result.max_abs_error, out);
  append_raw(result.priced_throughput, out);
  append_raw(static_cast<std::uint64_t>(result.c.rows()), out);
  append_raw(static_cast<std::uint64_t>(result.c.cols()), out);
  const auto* bytes = reinterpret_cast<const std::uint8_t*>(result.c.data());
  out.insert(out.end(), bytes,
             bytes + result.c.size() * sizeof(double));
}

std::optional<JobResult> decode_job_result(const ByteBuffer& body) {
  Reader reader{body.data(), body.size()};
  JobResult result;
  result.state = static_cast<JobState>(reader.read<std::uint8_t>());
  result.error = reader.read_string();
  result.wall_seconds = reader.read<double>();
  result.chunks_processed =
      static_cast<std::size_t>(reader.read<std::uint64_t>());
  result.updates_performed =
      static_cast<std::size_t>(reader.read<std::uint64_t>());
  result.workers_used = reader.read<std::int32_t>();
  result.workers_failed = reader.read<std::int32_t>();
  result.verified = reader.read<std::uint8_t>() != 0;
  result.max_abs_error = reader.read<double>();
  result.priced_throughput = reader.read<double>();
  const auto rows = static_cast<std::size_t>(reader.read<std::uint64_t>());
  const auto cols = static_cast<std::size_t>(reader.read<std::uint64_t>());
  if (reader.failed) return std::nullopt;
  const std::size_t doubles = rows * cols;
  if (cols != 0 && doubles / cols != rows) return std::nullopt;  // overflow
  if (reader.size - reader.offset != doubles * sizeof(double))
    return std::nullopt;
  if (doubles > 0) {
    result.c = matrix::Matrix(rows, cols, 0.0);
    std::memcpy(result.c.data(), reader.data + reader.offset,
                doubles * sizeof(double));
  }
  return result;
}

bool client_handshake(int fd) {
  std::uint8_t hello[8];
  std::memcpy(hello, &runtime::serde::kProtocolMagic, 4);
  std::memcpy(hello + 4, &kServiceVersion, 4);
  runtime::write_exact(fd, hello, sizeof(hello));
  std::uint8_t reply[9];
  if (!runtime::read_exact(fd, reply, sizeof(reply), /*start=*/true))
    return false;
  std::uint32_t magic = 0, version = 0;
  std::memcpy(&magic, reply, 4);
  std::memcpy(&version, reply + 4, 4);
  return magic == runtime::serde::kProtocolMagic &&
         version == kServiceVersion && reply[8] == 1;
}

bool server_handshake(int fd) {
  std::uint8_t hello[8];
  if (!runtime::read_exact(fd, hello, sizeof(hello), /*start=*/true))
    return false;
  std::uint32_t magic = 0, version = 0;
  std::memcpy(&magic, hello, 4);
  std::memcpy(&version, hello + 4, 4);
  const bool ok =
      magic == runtime::serde::kProtocolMagic && version == kServiceVersion;
  std::uint8_t reply[9];
  std::memcpy(reply, &runtime::serde::kProtocolMagic, 4);
  std::memcpy(reply + 4, &kServiceVersion, 4);
  reply[8] = ok ? 1 : 0;
  runtime::write_exact(fd, reply, sizeof(reply));
  return ok;
}

}  // namespace hmxp::service::wire
