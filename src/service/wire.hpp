// Wire protocol of the service's TCP front-end: how a CLIENT talks to
// the daemon (distinct from the worker data plane, which has its own
// protocol in runtime/serde.hpp -- a client submits jobs, a worker
// moves blocks).
//
// Framing reuses the runtime's discipline wholesale: a [u32 magic]
// [u32 version] handshake first (serde's magic, a service-local
// version), then length-prefixed frames whose declared length is
// validated against a ceiling BEFORE any allocation (socket_util::
// read_frame). Integers and doubles are host-endian raw bytes, same
// single-machine assumption as the worker protocol.
//
//   client -> server  [u32 magic][u32 version]
//   server -> client  [u32 magic][u32 version][u8 ok]   (ok=0: refused)
//   then, repeated:
//   client -> server  [u64 len][JobSpec]
//   server -> client  [u64 len][JobResult]               (C inline)
//   until the client closes (EOF at a frame boundary = clean goodbye).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "service/job.hpp"

namespace hmxp::service::wire {

/// Bump on ANY wire-visible change to the job frames below; a
/// mismatched client gets one clean refusal naming the mismatch
/// instead of misparsing frames (same contract as the worker serde).
inline constexpr std::uint32_t kServiceVersion = 1;

using ByteBuffer = std::vector<std::uint8_t>;

/// The largest legitimate response frame when the daemon's payload
/// ceiling is `max_payload_doubles`: the product matrix inline plus
/// generous header/string slack.
std::uint64_t max_frame_bytes_for(std::size_t max_payload_doubles);

/// Request frames are spec-only (no matrix data ever travels
/// client->server), so a tight constant bounds them.
inline constexpr std::uint64_t kMaxRequestBytes = 64 * 1024;

void encode_job_spec(const JobSpec& spec, ByteBuffer& out);
void encode_job_result(const JobResult& result, ByteBuffer& out);

/// Strict decoders: nullopt on ANY anomaly (short body, trailing
/// bytes, oversized string) -- a malformed frame fails the session,
/// it is never "partially" applied. Note: pool_delta does not travel;
/// it decodes zeroed (clients read it from in-process results only).
std::optional<JobSpec> decode_job_spec(const ByteBuffer& body);
std::optional<JobResult> decode_job_result(const ByteBuffer& body);

/// Blocking handshake halves over a connected socket. Each returns
/// false when the peer is incompatible (and, server-side, after
/// sending the refusal); they throw only on transport errors.
bool client_handshake(int fd);
bool server_handshake(int fd);

}  // namespace hmxp::service::wire
