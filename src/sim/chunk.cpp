#include "sim/chunk.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace hmxp::sim {

model::BlockCount ChunkPlan::total_updates() const {
  model::BlockCount total = 0;
  for (const StepPlan& step : steps) total += step.updates;
  return total;
}

model::BlockCount ChunkPlan::total_operand_blocks() const {
  model::BlockCount total = 0;
  for (const StepPlan& step : steps) total += step.operand_blocks;
  return total;
}

model::BlockCount ChunkPlan::max_operand_blocks() const {
  model::BlockCount worst = 0;
  for (const StepPlan& step : steps)
    worst = std::max(worst, step.operand_blocks);
  return worst;
}

model::BlockCount ChunkPlan::peak_buffers() const {
  if (peak_override > 0) return peak_override;
  return static_cast<model::BlockCount>(rect.count()) +
         (1 + prefetch_depth) * max_operand_blocks();
}

ChunkPlan make_double_buffered_chunk(const matrix::BlockRect& rect,
                                     std::size_t t) {
  HMXP_REQUIRE(!rect.empty(), "chunk rectangle must be non-empty");
  HMXP_REQUIRE(t >= 1, "inner dimension must be positive");
  ChunkPlan plan;
  plan.rect = rect;
  plan.prefetch_depth = 1;
  plan.steps.reserve(t);
  const auto rows = static_cast<model::BlockCount>(rect.rows());
  const auto cols = static_cast<model::BlockCount>(rect.cols());
  for (std::size_t k = 0; k < t; ++k)
    plan.steps.push_back(StepPlan{rows + cols, rows * cols, k, k + 1});
  return plan;
}

ChunkPlan make_toledo_chunk(const matrix::BlockRect& rect, std::size_t t,
                            model::BlockCount beta) {
  HMXP_REQUIRE(!rect.empty(), "chunk rectangle must be non-empty");
  HMXP_REQUIRE(t >= 1, "inner dimension must be positive");
  HMXP_REQUIRE(beta >= 1, "beta must be positive");
  ChunkPlan plan;
  plan.rect = rect;
  plan.prefetch_depth = 0;
  const auto rows = static_cast<model::BlockCount>(rect.rows());
  const auto cols = static_cast<model::BlockCount>(rect.cols());
  const auto width = static_cast<std::size_t>(beta);
  for (std::size_t k0 = 0; k0 < t; k0 += width) {
    const std::size_t k1 = std::min(k0 + width, t);
    const auto kk = static_cast<model::BlockCount>(k1 - k0);
    plan.steps.push_back(
        StepPlan{rows * kk + kk * cols, rows * cols * kk, k0, k1});
  }
  return plan;
}

ChunkPlan make_max_reuse_chunk(const matrix::BlockRect& rect, std::size_t t) {
  ChunkPlan plan = make_double_buffered_chunk(rect, t);
  plan.prefetch_depth = 0;
  plan.peak_override = static_cast<model::BlockCount>(rect.count()) +
                       static_cast<model::BlockCount>(rect.cols()) + 1;
  return plan;
}

}  // namespace hmxp::sim
