// Chunk plans: the unit of work a master assigns to a worker.
//
// A chunk covers a rectangle of C blocks. Its life cycle on a worker is
//   1. receive the C blocks                       (one port operation),
//   2. for each step: receive an operand batch,   (one port op per step)
//      then update every covered C block,         (worker compute)
//   3. return the C blocks to the master          (one port operation).
//
// The paper's layout (sections 4-5) has one step per k in 1..t: the
// batch is mu A-blocks + mu B-blocks and updates the whole mu x mu chunk
// once. Toledo's layout (the BMM baseline) covers beta values of k per
// step with beta^2-block A and B panels. Both are instances of the same
// StepPlan sequence, which is what the engine executes.
#pragma once

#include <cstddef>
#include <vector>

#include "matrix/partition.hpp"
#include "model/costs.hpp"
#include "model/layout.hpp"

namespace hmxp::sim {

struct StepPlan {
  model::BlockCount operand_blocks = 0;  // A+B blocks received this step
  model::BlockCount updates = 0;         // block updates it enables
  /// Inner (k) range this step covers, for runtimes that move real data.
  std::size_t k_begin = 0;
  std::size_t k_end = 0;
  bool operator==(const StepPlan&) const = default;
};

struct ChunkPlan {
  matrix::BlockRect rect;        // C blocks covered
  std::vector<StepPlan> steps;   // in execution order
  /// Operand batches that may be resident beyond the one being consumed:
  /// 1 under the paper's double-buffered layout, 0 under Toledo's.
  int prefetch_depth = 1;
  /// Layouts that stream operands sub-batch (the section 3 maximum
  /// re-use algorithm keeps a single A buffer) set their true peak here;
  /// 0 means "derive from the batch formula".
  model::BlockCount peak_override = 0;

  model::BlockCount total_updates() const;
  model::BlockCount total_operand_blocks() const;
  model::BlockCount max_operand_blocks() const;
  /// Peak simultaneous buffers: C blocks + (1 + prefetch) operand
  /// batches, or the explicit override for streaming layouts.
  model::BlockCount peak_buffers() const;
};

/// Chunk under the paper's layout: t steps, each with rect.rows() A
/// blocks + rect.cols() B blocks enabling rect.count() updates.
ChunkPlan make_double_buffered_chunk(const matrix::BlockRect& rect,
                                     std::size_t t);

/// Chunk under Toledo's layout: ceil(t / beta) steps; step covering kk
/// inner indices moves rect.rows()*kk + kk*rect.cols() operand blocks and
/// enables rect.count()*kk updates. No prefetch (thirds layout has no
/// spare buffers).
ChunkPlan make_toledo_chunk(const matrix::BlockRect& rect, std::size_t t,
                            model::BlockCount beta);

/// Chunk under the section 3 maximum re-use layout: t steps as in the
/// double-buffered layout, but no prefetch and a streaming peak of
/// rect.count() + rect.cols() + 1 buffers (mu^2 for C, mu for the B row,
/// one for the A block in flight).
ChunkPlan make_max_reuse_chunk(const matrix::BlockRect& rect, std::size_t t);

}  // namespace hmxp::sim
