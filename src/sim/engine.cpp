#include "sim/engine.hpp"

#include <algorithm>
#include <limits>

#include "util/check.hpp"

namespace hmxp::sim {

namespace {
constexpr model::Time kNever = std::numeric_limits<model::Time>::infinity();
}

Engine::Engine(std::shared_ptr<const InstanceContext> context,
               bool record_trace)
    : context_(std::move(context)), record_trace_(record_trace) {
  HMXP_REQUIRE(context_ != nullptr, "engine needs an instance context");
  const auto& part = context_->partition();
  state_.workers.resize(
      static_cast<std::size_t>(context_->platform().size()));
  state_.assigned.assign(part.c_blocks(), false);
  state_.unassigned_blocks = static_cast<model::BlockCount>(part.c_blocks());
}

Engine::Engine(const platform::Platform& platform,
               const matrix::Partition& part, bool record_trace)
    : Engine(InstanceContext::make(platform, part), record_trace) {}

int Engine::worker_count() const { return context_->platform().size(); }

const WorkerProgress& Engine::progress(int worker) const {
  HMXP_REQUIRE(worker >= 0 && worker < worker_count(),
               "worker index out of range");
  return state_.workers[static_cast<std::size_t>(worker)];
}

WorkerProgress& Engine::progress_mut(int worker) {
  HMXP_REQUIRE(worker >= 0 && worker < worker_count(),
               "worker index out of range");
  return state_.workers[static_cast<std::size_t>(worker)];
}

EngineState Engine::snapshot() const {
  EngineState snapshot = state_;
  snapshot.trace_comms = trace_.comms().size();
  snapshot.trace_computes = trace_.computes().size();
  return snapshot;
}

void Engine::snapshot_into(EngineState& out) const {
  out = state_;
  out.trace_comms = trace_.comms().size();
  out.trace_computes = trace_.computes().size();
}

void Engine::restore(const EngineState& snapshot) {
  HMXP_REQUIRE(snapshot.workers.size() == state_.workers.size(),
               "snapshot from a different platform");
  HMXP_REQUIRE(snapshot.assigned.size() == state_.assigned.size(),
               "snapshot from a different partition");
  if (record_trace_)
    trace_.truncate(snapshot.trace_comms, snapshot.trace_computes);
  state_ = snapshot;
}

model::Time Engine::earliest_start(int worker, CommKind kind) const {
  const WorkerProgress& state = progress(worker);
  if (!state.alive) return kNever;  // nothing is ever feasible again
  switch (kind) {
    case CommKind::kSendC:
      if (state.has_chunk) return kNever;
      return std::max(state_.port_free, state.ready_for_chunk);
    case CommKind::kSendAB: {
      if (!state.has_chunk) return kNever;
      const std::size_t n = state.steps_received;
      if (n >= state.chunk.steps.size()) return kNever;
      // Buffer for step n frees when the compute consuming the batch
      // that lives in its slot ends: step n - 1 - prefetch_depth.
      const std::size_t depth =
          static_cast<std::size_t>(state.chunk.prefetch_depth) + 1;
      model::Time buffer_free = 0.0;
      if (n >= depth) buffer_free = state.compute_end[n - depth];
      return std::max(state_.port_free, buffer_free);
    }
    case CommKind::kRecvC: {
      if (!state.has_chunk || !state.all_steps_received()) return kNever;
      return std::max(state_.port_free, state.chunk_compute_finish());
    }
    case CommKind::kCancel:
      // A cancel frame is control traffic: feasible whenever the worker
      // holds a chunk, regardless of its compute progress.
      if (!state.has_chunk) return kNever;
      return state_.port_free;
  }
  return kNever;
}

model::Time Engine::comm_duration(int worker, CommKind kind) const {
  const WorkerProgress& state = progress(worker);
  const platform::WorkerSpec& spec = context_->platform().worker(worker);
  // Estimate with the link factor in force now; execution re-reads it at
  // the communication's actual start.
  const double link =
      spec.c * context_->slowdown().bandwidth_factor(worker, state_.port_free);
  switch (kind) {
    case CommKind::kSendC:
      HMXP_REQUIRE(false, "SendC duration needs the chunk plan");
      return kNever;
    case CommKind::kSendAB: {
      HMXP_REQUIRE(state.has_chunk, "no active chunk");
      const std::size_t n = state.steps_received;
      HMXP_REQUIRE(n < state.chunk.steps.size(), "all steps already sent");
      return static_cast<double>(state.chunk.steps[n].operand_blocks) * link;
    }
    case CommKind::kRecvC:
      HMXP_REQUIRE(state.has_chunk, "no active chunk");
      return static_cast<double>(state.chunk.rect.count()) * link;
    case CommKind::kCancel:
      // A few bytes against block-sized payloads: free in block units.
      HMXP_REQUIRE(state.has_chunk, "no active chunk");
      return 0.0;
  }
  return kNever;
}

model::Time Engine::chunk_comm_duration(int worker,
                                        const ChunkPlan& plan) const {
  return static_cast<double>(plan.rect.count()) *
         context_->platform().worker(worker).c *
         context_->slowdown().bandwidth_factor(worker, state_.port_free);
}

model::Time Engine::execute(const Decision& decision) {
  HMXP_REQUIRE(decision.kind == Decision::Kind::kComm,
               "only communications can be executed");
  HMXP_CHECK(progress(decision.worker).alive,
             "communication with a failed worker");
  model::Time end = kNever;
  switch (decision.comm) {
    case CommKind::kSendC:
      end = execute_send_chunk(decision.worker, decision.chunk,
                               decision.speculative);
      break;
    case CommKind::kSendAB:
      end = execute_send_operands(decision.worker);
      break;
    case CommKind::kRecvC:
      end = execute_recv_result(decision.worker);
      break;
    case CommKind::kCancel:
      end = execute_cancel(decision.worker);
      break;
  }
  // Failures surface at decision boundaries: every event the port clock
  // has now passed applies before the scheduler decides again, so a
  // policy never acts on a stale alive() answer.
  apply_due_faults();
  return end;
}

void Engine::apply_due_faults() {
  const auto& events = context_->faults().events();
  while (state_.fault_cursor < events.size() &&
         events[state_.fault_cursor].at <= state_.port_free) {
    const int worker = events[state_.fault_cursor].worker;
    ++state_.fault_cursor;
    if (worker >= 0 && worker < worker_count()) fail_worker(worker);
  }
}

void Engine::fail_worker(int worker) {
  WorkerProgress& state = progress_mut(worker);
  if (!state.alive) return;
  state.alive = false;
  if (state.has_chunk) {
    if (state.twin >= 0) {
      // A speculative twin holds an identical copy: the surviving copy
      // inherits sole ownership of the rect, so coverage stays intact
      // and nothing needs re-issuing.
      WorkerProgress& twin = progress_mut(state.twin);
      twin.twin = -1;
      if (!state.chunk_speculative) twin.chunk_speculative = false;
    } else if (!state.chunk_speculative) {
      // The chunk returns to the pending set: clear its coverage so a
      // fault-tolerant policy can re-assign the blocks, and roll back the
      // updates its delivered batches enabled (they will be recomputed by
      // the re-assignment; only returned results count). The port time
      // already spent on it stays in comm_blocks -- lost work is not free.
      const matrix::BlockRect& rect = state.chunk.rect;
      const matrix::Partition& partition = context_->partition();
      for (std::size_t i = rect.i0; i < rect.i1; ++i) {
        for (std::size_t j = rect.j0; j < rect.j1; ++j) {
          const std::size_t index = i * partition.s() + j;
          HMXP_CHECK(state_.assigned[index], "failed chunk was not assigned");
          state_.assigned[index] = false;
        }
      }
      state_.unassigned_blocks +=
          static_cast<model::BlockCount>(rect.count());
    }
    // else: a zombie (its rect already committed by the twin's first
    // completion) -- nothing to roll back but the delivered updates.
    for (std::size_t n = 0; n < state.steps_received; ++n)
      state_.updates_done -= state.chunk.steps[n].updates;
    --state_.chunks_outstanding;
    state.chunks_lost += 1;
    state.has_chunk = false;
    state.chunk_speculative = false;
    state.twin = -1;
    state.steps_received = 0;
    state.recv_end.clear();
    state.compute_end.clear();
  }
}

void Engine::revive_worker(int worker) {
  WorkerProgress& state = progress_mut(worker);
  if (state.alive) return;
  HMXP_CHECK(!state.has_chunk, "revived worker still holds a chunk");
  state.alive = true;
}

model::Time Engine::calibrated_w(int worker) const {
  const WorkerProgress& state = progress(worker);
  return state.speed.value_or(context_->platform().worker(worker).w);
}

model::Time Engine::execute_send_chunk(int worker, const ChunkPlan& plan,
                                       bool speculative) {
  WorkerProgress& state = progress_mut(worker);
  const platform::WorkerSpec& spec = context_->platform().worker(worker);
  const matrix::Partition& partition = context_->partition();

  HMXP_CHECK(!state.has_chunk, "worker already has an active chunk");
  HMXP_CHECK(!plan.rect.empty(), "empty chunk");
  HMXP_CHECK(plan.rect.i1 <= partition.r() && plan.rect.j1 <= partition.s(),
             "chunk exceeds matrix bounds");
  HMXP_CHECK(plan.peak_buffers() <= spec.m,
             "chunk would exceed worker memory");
  HMXP_CHECK(plan.total_updates() ==
                 static_cast<model::BlockCount>(plan.rect.count()) *
                     static_cast<model::BlockCount>(partition.t()),
             "chunk steps do not cover all t updates of every block");

  if (speculative) {
    // A duplicate of another worker's in-flight chunk: the rect is
    // already assigned to the primary, which must exist, be untwinned
    // and still own its coverage. The two workers become twins; the
    // first completion commits the rect, the loser is cancelled.
    int primary = -1;
    for (int other = 0; other < worker_count(); ++other) {
      if (other == worker) continue;
      const WorkerProgress& candidate = progress(other);
      if (candidate.alive && candidate.has_chunk &&
          candidate.chunk.rect.i0 == plan.rect.i0 &&
          candidate.chunk.rect.i1 == plan.rect.i1 &&
          candidate.chunk.rect.j0 == plan.rect.j0 &&
          candidate.chunk.rect.j1 == plan.rect.j1) {
        primary = other;
        break;
      }
    }
    HMXP_CHECK(primary >= 0, "speculative chunk duplicates no in-flight rect");
    WorkerProgress& owner = progress_mut(primary);
    HMXP_CHECK(owner.twin < 0, "chunk already has a speculative duplicate");
    HMXP_CHECK(!owner.chunk_speculative,
               "cannot duplicate an already-committed (zombie) chunk");
    HMXP_CHECK(rect_assigned(plan.rect),
               "speculative chunk over unassigned blocks");
    owner.twin = worker;
    state.twin = primary;
    state.chunk_speculative = true;
  } else {
    // Coverage bookkeeping: every block must be assigned exactly once.
    for (std::size_t i = plan.rect.i0; i < plan.rect.i1; ++i) {
      for (std::size_t j = plan.rect.j0; j < plan.rect.j1; ++j) {
        const std::size_t index = i * partition.s() + j;
        HMXP_CHECK(!state_.assigned[index], "C block assigned twice");
        state_.assigned[index] = true;
      }
    }
    state_.unassigned_blocks -=
        static_cast<model::BlockCount>(plan.rect.count());
  }

  const model::Time start = std::max(state_.port_free, state.ready_for_chunk);
  const model::Time duration = static_cast<double>(plan.rect.count()) *
                               spec.c *
                               context_->slowdown().bandwidth_factor(worker,
                                                                     start);
  const model::Time end = start + duration;

  state.has_chunk = true;
  state.chunk = plan;
  state.steps_received = 0;
  state.recv_end.clear();
  state.compute_end.clear();
  state.chunk_arrival = end;
  state.chunks_assigned += 1;
  state.updates_assigned += plan.total_updates();

  state_.port_free = end;
  state_.comm_blocks += static_cast<model::BlockCount>(plan.rect.count());
  ++state_.chunks_outstanding;
  if (record_trace_)
    trace_.record_comm(CommEvent{
        worker, CommKind::kSendC, start, end,
        static_cast<model::BlockCount>(plan.rect.count())});
  return end;
}

model::Time Engine::execute_send_operands(int worker) {
  WorkerProgress& state = progress_mut(worker);
  const platform::WorkerSpec& spec = context_->platform().worker(worker);

  HMXP_CHECK(state.has_chunk, "operands sent to a worker with no chunk");
  const std::size_t n = state.steps_received;
  HMXP_CHECK(n < state.chunk.steps.size(), "operands sent past last step");
  const StepPlan& step = state.chunk.steps[n];

  const model::Time start = earliest_start(worker, CommKind::kSendAB);
  HMXP_CHECK(start < kNever, "SendAB infeasible");
  const model::Time end =
      start + static_cast<double>(step.operand_blocks) * spec.c *
                  context_->slowdown().bandwidth_factor(worker, start);

  // Project the induced computation: starts when the batch has arrived,
  // the previous step finished, and the C chunk is resident. The
  // instance's slowdown schedule scales the duration by the factor in
  // force at compute start -- a time-varying platform, known exactly to
  // the engine (the engine IS that platform's ground truth).
  const model::Time previous_done =
      n == 0 ? state.chunk_arrival : state.compute_end[n - 1];
  const model::Time compute_start = std::max(end, previous_done);
  const model::Time compute_duration =
      static_cast<double>(step.updates) * spec.w *
      context_->slowdown().factor(worker, compute_start);
  const model::Time compute_done = compute_start + compute_duration;

  // Each projected step is a speed observation (the engine is the
  // ground truth, so "observed" and projected agree): feed the EWMA the
  // slowdown-scaled per-update cost so calibrated_w tracks the drift.
  if (step.updates > 0)
    state.speed.observe(compute_duration / static_cast<double>(step.updates),
                        context_->calibration().alpha);

  state.recv_end.push_back(end);
  state.compute_end.push_back(compute_done);
  state.steps_received = n + 1;
  state.busy_compute += compute_duration;

  state_.port_free = end;
  state_.comm_blocks += step.operand_blocks;
  state_.updates_done += step.updates;
  if (record_trace_) {
    trace_.record_comm(
        CommEvent{worker, CommKind::kSendAB, start, end, step.operand_blocks});
    trace_.record_compute(
        ComputeEvent{worker, n, compute_start, compute_done, step.updates});
  }
  return end;
}

model::Time Engine::execute_recv_result(int worker) {
  WorkerProgress& state = progress_mut(worker);
  const platform::WorkerSpec& spec = context_->platform().worker(worker);

  HMXP_CHECK(state.has_chunk, "result requested from a worker with no chunk");
  HMXP_CHECK(state.all_steps_received(),
             "result requested before all operand steps were sent");
  HMXP_CHECK(!(state.chunk_speculative && state.twin < 0),
             "result collected from a cancelled (zombie) duplicate");

  const model::Time start = earliest_start(worker, CommKind::kRecvC);
  HMXP_CHECK(start < kNever, "RecvC infeasible");
  const auto blocks = static_cast<model::BlockCount>(state.chunk.rect.count());
  const model::Time end =
      start + static_cast<double>(blocks) * spec.c *
                  context_->slowdown().bandwidth_factor(worker, start);

  if (state.twin >= 0) {
    // First completion of a twinned pair commits the rect; the loser
    // becomes a zombie awaiting cancellation (its eventual result, if
    // any, must never be collected).
    WorkerProgress& twin = progress_mut(state.twin);
    twin.twin = -1;
    twin.chunk_speculative = true;
  }

  state.has_chunk = false;
  state.chunk_speculative = false;
  state.twin = -1;
  state.ready_for_chunk = end;
  state.steps_received = 0;
  state.recv_end.clear();
  state.compute_end.clear();
  state.chunks_returned += 1;

  state_.port_free = end;
  state_.comm_blocks += blocks;
  state_.blocks_returned += blocks;
  --state_.chunks_outstanding;
  if (record_trace_)
    trace_.record_comm(CommEvent{worker, CommKind::kRecvC, start, end, blocks});
  return end;
}

model::Time Engine::execute_cancel(int worker) {
  WorkerProgress& state = progress_mut(worker);

  HMXP_CHECK(state.has_chunk, "cancel sent to a worker with no chunk");

  const model::Time start = earliest_start(worker, CommKind::kCancel);
  HMXP_CHECK(start < kNever, "cancel infeasible");
  const model::Time end = start;  // control frame: free in block units

  if (state.twin >= 0) {
    // Cancelling one copy of an uncommitted pair: the surviving copy
    // inherits sole ownership of the rect.
    WorkerProgress& twin = progress_mut(state.twin);
    twin.twin = -1;
    if (!state.chunk_speculative) twin.chunk_speculative = false;
  } else if (!state.chunk_speculative) {
    // Sole owner revoked: the rect returns to the pending set, exactly
    // like a failed worker's chunk -- except the worker stays alive.
    const matrix::BlockRect& rect = state.chunk.rect;
    const matrix::Partition& partition = context_->partition();
    for (std::size_t i = rect.i0; i < rect.i1; ++i) {
      for (std::size_t j = rect.j0; j < rect.j1; ++j) {
        const std::size_t index = i * partition.s() + j;
        HMXP_CHECK(state_.assigned[index], "cancelled chunk was not assigned");
        state_.assigned[index] = false;
      }
    }
    state_.unassigned_blocks +=
        static_cast<model::BlockCount>(rect.count());
  }
  // else: a zombie -- its rect was already committed by the twin.

  // Delivered-but-discarded operand batches are speculation's wasted
  // work: roll them out of updates_done and into the wasted account.
  for (std::size_t n = 0; n < state.steps_received; ++n) {
    state_.updates_done -= state.chunk.steps[n].updates;
    state_.wasted_updates += state.chunk.steps[n].updates;
  }
  --state_.chunks_outstanding;
  state.chunks_cancelled += 1;
  state.has_chunk = false;
  state.chunk_speculative = false;
  state.twin = -1;
  state.steps_received = 0;
  state.recv_end.clear();
  state.compute_end.clear();
  // The worker drops the chunk on receipt and is immediately ready for
  // a new one; it keeps its territory.
  state.ready_for_chunk = std::max(state.ready_for_chunk, end);

  state_.port_free = end;
  if (record_trace_)
    trace_.record_comm(CommEvent{worker, CommKind::kCancel, start, end, 0});
  return end;
}

bool Engine::rect_assigned(const matrix::BlockRect& rect) const {
  const matrix::Partition& partition = context_->partition();
  for (std::size_t i = rect.i0; i < rect.i1; ++i) {
    for (std::size_t j = rect.j0; j < rect.j1; ++j) {
      if (!state_.assigned[i * partition.s() + j]) return false;
    }
  }
  return true;
}

bool Engine::all_work_done() const {
  return state_.unassigned_blocks == 0 && state_.chunks_outstanding == 0;
}

model::Time Engine::makespan_so_far() const {
  model::Time latest = state_.port_free;
  for (const WorkerProgress& state : state_.workers) {
    if (state.has_chunk && !state.compute_end.empty())
      latest = std::max(latest, state.compute_end.back());
  }
  return latest;
}

model::Time Engine::finalize() {
  HMXP_CHECK(state_.unassigned_blocks == 0,
             "schedule left C blocks unassigned");
  HMXP_CHECK(state_.chunks_outstanding == 0,
             "chunks never returned to the master");
  HMXP_CHECK(state_.blocks_returned ==
                 static_cast<model::BlockCount>(
                     context_->partition().c_blocks()),
             "returned block count mismatch");
  return state_.port_free;
}

}  // namespace hmxp::sim
