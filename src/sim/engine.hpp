// Discrete-event engine for the one-port star platform of section 2.
//
// The master owns a single port: communications (C chunks out, operand
// batches out, C chunks back in) execute strictly one at a time, in the
// order a Scheduler decides. Worker timing follows the paper's rules:
//   * a worker cannot start computing a step before its operand batch
//     has fully arrived (and its previous step finished -- one CPU);
//   * it cannot return a chunk before all steps are computed;
//   * it CAN receive the next operand batch while computing, but only
//     into a free prefetch buffer (depth 1 for the paper's layout, 0 for
//     Toledo's), never exceeding its memory capacity;
//   * C I/O is sequentialized with compute, per section 4: a new chunk
//     may only be sent after the previous chunk left the worker.
//
// Because the model is deterministic and the port serializes decisions,
// the engine advances greedily: each executed decision fixes its own
// start/end and the induced compute completions arithmetically. A
// decision whose precondition is not yet met simply blocks the port (the
// master waits) -- exactly the behaviour of the paper's master programs.
//
// The engine is one of the two ExecutionView backends (the other is the
// threaded runtime's OnlineExecutor) and is split in two layers:
//   * InstanceContext -- the immutable problem instance (platform,
//     partition, dynamic-slowdown schedule), shared by reference among
//     every engine probing the same instance; it is never copied per
//     decision. A non-empty slowdown schedule makes the instance a
//     time-varying platform: projected compute durations are scaled by
//     the factor in force at each step's compute start.
//   * EngineState -- the small mutable simulation state (port clock,
//     per-worker progress, coverage bitmap, counters), exposed through
//     snapshot()/restore().
// Schedulers that look ahead (the Het variants) no longer copy the whole
// engine: they keep one scratch engine over the shared context, restore
// the current state into it (ExecutionView::model_state), execute
// hypothetical decisions, and restore again for the next candidate.
// restore() also rolls back any trace events recorded after the
// snapshot, so it is a true rewind.
#pragma once

#include <memory>

#include "sim/execution_view.hpp"

namespace hmxp::sim {

class Engine final : public ExecutionView {
 public:
  /// Shares `context` with other engines over the same instance (the
  /// scratch-engine idiom of the lookahead schedulers).
  explicit Engine(std::shared_ptr<const InstanceContext> context,
                  bool record_trace = true);
  /// Convenience: builds a private context from copies.
  Engine(const platform::Platform& platform, const matrix::Partition& part,
         bool record_trace = true);

  // ----- ExecutionView (schedulers decide from these) -----
  model::Time now() const override { return state_.port_free; }
  int worker_count() const override;
  const platform::Platform& platform() const override {
    return context_->platform();
  }
  const matrix::Partition& partition() const override {
    return context_->partition();
  }
  const std::shared_ptr<const InstanceContext>& context() const override {
    return context_;
  }
  const WorkerProgress& progress(int worker) const override;

  model::Time earliest_start(int worker, CommKind kind) const override;
  model::Time comm_duration(int worker, CommKind kind) const override;

  model::BlockCount unassigned_blocks() const override {
    return state_.unassigned_blocks;
  }
  bool rect_assigned(const matrix::BlockRect& rect) const override;
  model::BlockCount updates_total() const override {
    return state_.updates_done;
  }
  bool all_work_done() const override;
  /// Identical to snapshot(); the view-level name for scratch rewinds.
  EngineState model_state() const override { return snapshot(); }

  /// Kills a worker at the current port clock: its in-flight chunk (if
  /// any) returns to the pending set -- coverage bits cleared, enabled
  /// updates rolled back -- while the communication already spent on it
  /// stays counted (lost work costs port time for real). Idempotent.
  /// Also driven automatically by the instance's FaultSchedule at
  /// decision boundaries (see execute()).
  void fail_worker(int worker) override;

  /// Re-admits a failed worker at the current port clock (the TCP
  /// transport's reconnect lifecycle): the worker rejoins ALIVE and
  /// IDLE -- fail_worker already returned its in-flight chunk to the
  /// pending set and rolled back its enabled updates, so revival only
  /// flips the liveness bit; chunks_lost keeps counting the loss. A
  /// worker that is already alive is left untouched (idempotent).
  void revive_worker(int worker);

  /// EWMA of the observed per-update cost (model clock): the engine IS
  /// the platform's ground truth, so each executed step's slowdown-
  /// scaled duration is an observation. Falls back to the static w_i
  /// until the worker computed a step.
  model::Time calibrated_w(int worker) const override;

  /// Duration of a SendC for a specific plan (not part of the view:
  /// CommKind::kSendC durations need the plan).
  model::Time chunk_comm_duration(int worker, const ChunkPlan& plan) const;

  // ----- snapshot / restore -----
  /// Copies the mutable state out. O(workers + r*s bits), no platform or
  /// partition copy.
  EngineState snapshot() const;
  /// Same, into an existing state: copy-assignment reuses the target's
  /// vector capacities, so a caller snapshotting every step (the
  /// fault-tolerant online master) stays allocation-free after warm-up.
  void snapshot_into(EngineState& out) const;
  /// Rewinds to a snapshot taken from an engine over the same instance
  /// (same worker count and block grid). Rolls the trace back to the
  /// lengths captured by the snapshot.
  void restore(const EngineState& snapshot);

  // ----- execution -----
  /// Executes one communication; returns its end time. Throws
  /// std::logic_error on any protocol violation (wrong order, chunk
  /// overlap, memory overflow), which tests rely on.
  model::Time execute(const Decision& decision);

  /// Validates global completion (exact coverage of C). Throws if the
  /// schedule was incomplete or inconsistent. Returns the makespan.
  model::Time finalize();

  const Trace& trace() const { return trace_; }
  Trace take_trace() { return std::move(trace_); }
  bool recording() const { return record_trace_; }

  // Aggregate counters.
  model::BlockCount comm_blocks_total() const { return state_.comm_blocks; }
  model::Time makespan_so_far() const;

 private:
  std::shared_ptr<const InstanceContext> context_;
  bool record_trace_;
  EngineState state_;
  Trace trace_;

  model::Time execute_send_chunk(int worker, const ChunkPlan& plan,
                                 bool speculative);
  model::Time execute_send_operands(int worker);
  model::Time execute_recv_result(int worker);
  model::Time execute_cancel(int worker);
  WorkerProgress& progress_mut(int worker);
  /// Applies every FaultSchedule event whose time has passed the port
  /// clock (called at the end of each execute(), so failures surface at
  /// decision boundaries -- deterministic for any scheduler).
  void apply_due_faults();
};

}  // namespace hmxp::sim
