// Discrete-event engine for the one-port star platform of section 2.
//
// The master owns a single port: communications (C chunks out, operand
// batches out, C chunks back in) execute strictly one at a time, in the
// order a Scheduler decides. Worker timing follows the paper's rules:
//   * a worker cannot start computing a step before its operand batch
//     has fully arrived (and its previous step finished -- one CPU);
//   * it cannot return a chunk before all steps are computed;
//   * it CAN receive the next operand batch while computing, but only
//     into a free prefetch buffer (depth 1 for the paper's layout, 0 for
//     Toledo's), never exceeding its memory capacity;
//   * C I/O is sequentialized with compute, per section 4: a new chunk
//     may only be sent after the previous chunk left the worker.
//
// Because the model is deterministic and the port serializes decisions,
// the engine advances greedily: each executed decision fixes its own
// start/end and the induced compute completions arithmetically. A
// decision whose precondition is not yet met simply blocks the port (the
// master waits) -- exactly the behaviour of the paper's master programs.
//
// The engine is split in two layers:
//   * InstanceContext -- the immutable problem instance (platform and
//     partition), shared by reference among every engine probing the
//     same instance; it is never copied per decision.
//   * EngineState -- the small mutable simulation state (port clock,
//     per-worker progress, coverage bitmap, counters), exposed through
//     snapshot()/restore().
// Schedulers that look ahead (the Het variants) no longer copy the whole
// engine: they keep one scratch engine over the shared context, restore
// the current state into it, execute hypothetical decisions, and restore
// again for the next candidate. restore() also rolls back any trace
// events recorded after the snapshot, so it is a true rewind.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "matrix/partition.hpp"
#include "platform/platform.hpp"
#include "sim/chunk.hpp"
#include "sim/trace.hpp"

namespace hmxp::sim {

/// What the scheduler tells the engine to do next.
struct Decision {
  enum class Kind { kComm, kDone };
  Kind kind = Kind::kDone;
  CommKind comm = CommKind::kSendC;
  int worker = -1;
  ChunkPlan chunk;  // payload for kSendC only

  static Decision done();
  static Decision send_chunk(int worker, ChunkPlan plan);
  static Decision send_operands(int worker);
  static Decision recv_result(int worker);
};

/// Dynamic state of one worker, exposed read-only to schedulers.
struct WorkerProgress {
  bool has_chunk = false;
  ChunkPlan chunk;                      // valid while has_chunk
  std::size_t steps_received = 0;
  std::vector<model::Time> recv_end;    // per received step
  std::vector<model::Time> compute_end; // per received step (projected)
  model::Time chunk_arrival = 0.0;      // end of the SendC
  model::Time ready_for_chunk = 0.0;    // end of the last RecvC
  // Lifetime statistics.
  model::BlockCount chunks_assigned = 0;
  model::BlockCount updates_assigned = 0;
  model::Time busy_compute = 0.0;

  bool all_steps_received() const {
    return has_chunk && steps_received == chunk.steps.size();
  }
  bool chunk_computed(model::Time at) const;
  /// Projected completion of the whole active chunk (+inf if steps are
  /// still missing operands).
  model::Time chunk_compute_finish() const;
};

/// The immutable problem instance an engine simulates: platform and
/// partition (and everything derived from them). Engines over the same
/// instance share one context by shared_ptr instead of carrying copies.
class InstanceContext {
 public:
  InstanceContext(platform::Platform platform, matrix::Partition partition);

  /// Convenience: heap-allocate a shared context from copies.
  static std::shared_ptr<const InstanceContext> make(
      const platform::Platform& platform, const matrix::Partition& partition);

  const platform::Platform& platform() const { return platform_; }
  const matrix::Partition& partition() const { return partition_; }

 private:
  platform::Platform platform_;
  matrix::Partition partition_;
};

/// The mutable simulation state, cheap to copy relative to the context:
/// no platform, no partition, no cost tables. snapshot() hands one out,
/// restore() swaps one back in.
struct EngineState {
  model::Time port_free = 0.0;
  std::vector<WorkerProgress> workers;
  // Coverage bitmap over r x s C blocks; set when a chunk covering the
  // block is assigned.
  std::vector<bool> assigned;
  model::BlockCount unassigned_blocks = 0;
  model::BlockCount comm_blocks = 0;
  model::BlockCount updates_done = 0;
  int chunks_outstanding = 0;
  model::BlockCount blocks_returned = 0;
  // Trace lengths at snapshot time, so restore() can roll back events
  // recorded by hypothetical decisions.
  std::size_t trace_comms = 0;
  std::size_t trace_computes = 0;
};

class Engine {
 public:
  /// Shares `context` with other engines over the same instance (the
  /// scratch-engine idiom of the lookahead schedulers).
  explicit Engine(std::shared_ptr<const InstanceContext> context,
                  bool record_trace = true);
  /// Convenience: builds a private context from copies.
  Engine(const platform::Platform& platform, const matrix::Partition& part,
         bool record_trace = true);

  // ----- state queries (schedulers decide from these) -----
  model::Time now() const { return state_.port_free; }
  int worker_count() const;
  const platform::Platform& platform() const { return context_->platform(); }
  const matrix::Partition& partition() const { return context_->partition(); }
  const std::shared_ptr<const InstanceContext>& context() const {
    return context_;
  }
  const WorkerProgress& progress(int worker) const;

  /// Earliest time the given communication could START given port and
  /// worker-side constraints; +inf if its precondition can never be met
  /// in the current state (e.g. SendAB with no active chunk).
  model::Time earliest_start(int worker, CommKind kind) const;
  /// Duration the communication would occupy the port (SendC duration
  /// requires the plan, hence the chunk overload).
  model::Time comm_duration(int worker, CommKind kind) const;
  model::Time chunk_comm_duration(int worker, const ChunkPlan& plan) const;

  /// Blocks of C not yet covered by any assigned chunk.
  model::BlockCount unassigned_blocks() const {
    return state_.unassigned_blocks;
  }
  /// True when every C block was assigned, computed, and returned.
  bool all_work_done() const;

  // ----- snapshot / restore -----
  /// Copies the mutable state out. O(workers + r*s bits), no platform or
  /// partition copy.
  EngineState snapshot() const;
  /// Rewinds to a snapshot taken from an engine over the same instance
  /// (same worker count and block grid). Rolls the trace back to the
  /// lengths captured by the snapshot.
  void restore(const EngineState& snapshot);

  // ----- execution -----
  /// Executes one communication; returns its end time. Throws
  /// std::logic_error on any protocol violation (wrong order, chunk
  /// overlap, memory overflow), which tests rely on.
  model::Time execute(const Decision& decision);

  /// Validates global completion (exact coverage of C). Throws if the
  /// schedule was incomplete or inconsistent. Returns the makespan.
  model::Time finalize();

  const Trace& trace() const { return trace_; }
  Trace take_trace() { return std::move(trace_); }
  bool recording() const { return record_trace_; }

  // Aggregate counters.
  model::BlockCount comm_blocks_total() const { return state_.comm_blocks; }
  model::BlockCount updates_total() const { return state_.updates_done; }
  model::Time makespan_so_far() const;

 private:
  std::shared_ptr<const InstanceContext> context_;
  bool record_trace_;
  EngineState state_;
  Trace trace_;

  model::Time execute_send_chunk(int worker, const ChunkPlan& plan);
  model::Time execute_send_operands(int worker);
  model::Time execute_recv_result(int worker);
  WorkerProgress& progress_mut(int worker);
};

}  // namespace hmxp::sim
