#include "sim/execution_view.hpp"

#include <limits>

namespace hmxp::sim {

namespace {
constexpr model::Time kNever = std::numeric_limits<model::Time>::infinity();
}

Decision Decision::done() { return Decision{}; }

Decision Decision::send_chunk(int worker, ChunkPlan plan) {
  Decision decision;
  decision.kind = Kind::kComm;
  decision.comm = CommKind::kSendC;
  decision.worker = worker;
  decision.chunk = std::move(plan);
  return decision;
}

Decision Decision::send_chunk_speculative(int worker, ChunkPlan plan) {
  Decision decision = send_chunk(worker, std::move(plan));
  decision.speculative = true;
  return decision;
}

Decision Decision::send_operands(int worker) {
  Decision decision;
  decision.kind = Kind::kComm;
  decision.comm = CommKind::kSendAB;
  decision.worker = worker;
  return decision;
}

Decision Decision::recv_result(int worker) {
  Decision decision;
  decision.kind = Kind::kComm;
  decision.comm = CommKind::kRecvC;
  decision.worker = worker;
  return decision;
}

Decision Decision::cancel(int worker) {
  Decision decision;
  decision.kind = Kind::kComm;
  decision.comm = CommKind::kCancel;
  decision.worker = worker;
  return decision;
}

bool WorkerProgress::chunk_computed(model::Time at) const {
  return all_steps_received() && !compute_end.empty() &&
         compute_end.back() <= at;
}

model::Time WorkerProgress::chunk_compute_finish() const {
  if (!all_steps_received()) return kNever;
  return compute_end.empty() ? chunk_arrival : compute_end.back();
}

InstanceContext::InstanceContext(platform::Platform platform,
                                 matrix::Partition partition,
                                 platform::SlowdownSchedule slowdown,
                                 platform::FaultSchedule faults,
                                 platform::CalibrationOptions calibration)
    : platform_(std::move(platform)),
      partition_(std::move(partition)),
      slowdown_(std::move(slowdown)),
      faults_(std::move(faults)),
      calibration_(calibration) {}

std::shared_ptr<const InstanceContext> InstanceContext::make(
    const platform::Platform& platform, const matrix::Partition& partition,
    const platform::SlowdownSchedule& slowdown,
    const platform::FaultSchedule& faults,
    const platform::CalibrationOptions& calibration) {
  return std::make_shared<const InstanceContext>(platform, partition,
                                                 slowdown, faults,
                                                 calibration);
}

}  // namespace hmxp::sim
