// ExecutionView: the master-state interface schedulers decide from.
//
// The paper's schedulers are decision procedures for a master reacting
// to port and worker events; nothing in them is specific to simulation.
// This header holds everything a policy may read -- the port clock,
// per-worker progress, coverage/assignment state, the platform and
// partition -- behind an abstract interface with two implementations:
//
//   * sim::Engine -- the discrete-event simulator (engine.hpp);
//   * the threaded runtime's online master loop (runtime/executor.cpp),
//     which projects its state through a model mirror and overrides
//     readiness with *actual* worker completions.
//
// The shared value types (Decision, WorkerProgress, InstanceContext,
// EngineState) live here too so the view interface, the engine and the
// online master all speak the same vocabulary.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "matrix/partition.hpp"
#include "platform/calibration.hpp"
#include "platform/perturbation.hpp"
#include "platform/platform.hpp"
#include "sim/chunk.hpp"
#include "sim/trace.hpp"

namespace hmxp::sim {

/// What the scheduler tells the master to do next.
struct Decision {
  enum class Kind { kComm, kDone };
  Kind kind = Kind::kDone;
  CommKind comm = CommKind::kSendC;
  int worker = -1;
  ChunkPlan chunk;  // payload for kSendC only
  /// SendC only: this chunk duplicates another worker's in-flight chunk
  /// (straggler speculation). The backend skips the coverage claim -- the
  /// rect is already assigned to the primary -- and links the two workers
  /// as twins so the first completion commits and the loser is cancelled.
  bool speculative = false;

  static Decision done();
  static Decision send_chunk(int worker, ChunkPlan plan);
  static Decision send_chunk_speculative(int worker, ChunkPlan plan);
  static Decision send_operands(int worker);
  static Decision recv_result(int worker);
  /// Revoke the worker's in-flight chunk without killing the worker: it
  /// drops the chunk, keeps its territory and stays schedulable.
  static Decision cancel(int worker);
};

/// Dynamic state of one worker, exposed read-only to schedulers. Times
/// are in the backend's clock: model seconds under the simulator,
/// model-projected seconds under the online runtime (whose mirror keeps
/// the same bookkeeping while real threads do the work).
struct WorkerProgress {
  /// False once the worker failed (FaultSchedule event, a dead runtime
  /// thread, or an explicit fail_worker). While dead, every
  /// communication to it is infeasible and its in-flight chunk has
  /// returned to the pending set. A dead worker normally stays dead;
  /// the one exception is the TCP transport's reconnect lifecycle,
  /// where a re-admitted worker flips back alive (Engine::
  /// revive_worker) and rejoins idle -- schedulers must therefore
  /// re-check alive() rather than cache deaths forever.
  bool alive = true;
  bool has_chunk = false;
  ChunkPlan chunk;                      // valid while has_chunk
  std::size_t steps_received = 0;
  std::vector<model::Time> recv_end;    // per received step
  std::vector<model::Time> compute_end; // per received step (projected)
  model::Time chunk_arrival = 0.0;      // end of the SendC
  model::Time ready_for_chunk = 0.0;    // end of the last RecvC
  /// True while the resident chunk does NOT own its rect's coverage: it
  /// was delivered speculatively (twin >= 0 and the primary still owns
  /// it), or its rect was already committed by the twin's first
  /// completion (twin == -1: a zombie awaiting cancellation).
  bool chunk_speculative = false;
  /// The other worker holding an identical in-flight copy of this
  /// chunk, -1 if none. Exactly one of the pair has
  /// chunk_speculative == false (the coverage owner).
  int twin = -1;
  /// EWMA of the observed per-update cost in the backend's clock
  /// (ExecutionView::calibrated_w folds it into the w_i projection).
  platform::SpeedEstimate speed;
  // Lifetime statistics.
  model::BlockCount chunks_assigned = 0;
  /// Chunks the master actually collected (RecvC executed). Recovery
  /// logic compares this against its assign-time value to distinguish
  /// "completed just before death" from "lost in flight" -- a returned
  /// decision is NOT proof of completion, since the online backend
  /// rolls back a decision whose real half died under it.
  model::BlockCount chunks_returned = 0;
  model::BlockCount updates_assigned = 0;
  model::BlockCount chunks_lost = 0;    // in-flight chunks lost to failure
  model::BlockCount chunks_cancelled = 0;  // in-flight chunks revoked
  model::Time busy_compute = 0.0;

  bool all_steps_received() const {
    return has_chunk && steps_received == chunk.steps.size();
  }
  bool chunk_computed(model::Time at) const;
  /// Projected completion of the whole active chunk (+inf if steps are
  /// still missing operands).
  model::Time chunk_compute_finish() const;
};

/// The immutable problem instance a backend executes: platform,
/// partition, the (possibly empty) dynamic-slowdown schedule, the
/// (possibly empty) fault schedule, and the calibration knobs --
/// time-varying and unreliable platforms are part of the instance, not
/// of the engine. Backends over the same instance share one context by
/// shared_ptr instead of carrying copies.
class InstanceContext {
 public:
  InstanceContext(platform::Platform platform, matrix::Partition partition,
                  platform::SlowdownSchedule slowdown = {},
                  platform::FaultSchedule faults = {},
                  platform::CalibrationOptions calibration = {});

  /// Convenience: heap-allocate a shared context from copies.
  static std::shared_ptr<const InstanceContext> make(
      const platform::Platform& platform, const matrix::Partition& partition,
      const platform::SlowdownSchedule& slowdown = {},
      const platform::FaultSchedule& faults = {},
      const platform::CalibrationOptions& calibration = {});

  const platform::Platform& platform() const { return platform_; }
  const matrix::Partition& partition() const { return partition_; }
  const platform::SlowdownSchedule& slowdown() const { return slowdown_; }
  const platform::FaultSchedule& faults() const { return faults_; }
  const platform::CalibrationOptions& calibration() const {
    return calibration_;
  }

 private:
  platform::Platform platform_;
  matrix::Partition partition_;
  platform::SlowdownSchedule slowdown_;
  platform::FaultSchedule faults_;
  platform::CalibrationOptions calibration_;
};

/// The mutable simulation/model state, cheap to copy relative to the
/// context: no platform, no partition, no cost tables. Engine::snapshot()
/// hands one out, Engine::restore() swaps one back in; the online
/// backend exposes its mirror's state through ExecutionView::model_state.
struct EngineState {
  model::Time port_free = 0.0;
  std::vector<WorkerProgress> workers;
  // Coverage bitmap over r x s C blocks; set when a chunk covering the
  // block is assigned.
  std::vector<bool> assigned;
  model::BlockCount unassigned_blocks = 0;
  model::BlockCount comm_blocks = 0;
  model::BlockCount updates_done = 0;
  int chunks_outstanding = 0;
  model::BlockCount blocks_returned = 0;
  /// Updates delivered to workers whose chunk was later cancelled (or
  /// raced and lost): speculation's wasted-work account. Subtracted from
  /// updates_done when the losing copy is revoked.
  model::BlockCount wasted_updates = 0;
  // Fault events of the instance's FaultSchedule already applied (the
  // schedule is sorted by time, so a cursor suffices and snapshots
  // rewind fault application together with everything else).
  std::size_t fault_cursor = 0;
  // Trace lengths at snapshot time, so restore() can roll back events
  // recorded by hypothetical decisions.
  std::size_t trace_comms = 0;
  std::size_t trace_computes = 0;
};

/// Read-only master state, the full vocabulary of Scheduler::next().
/// Implemented by the simulator's Engine and by the threaded runtime's
/// OnlineExecutor; policies written against it run on either backend.
class ExecutionView {
 public:
  virtual ~ExecutionView() = default;

  /// Current port clock (the end of the last executed communication).
  virtual model::Time now() const = 0;
  virtual int worker_count() const = 0;
  virtual const platform::Platform& platform() const = 0;
  virtual const matrix::Partition& partition() const = 0;
  virtual const WorkerProgress& progress(int worker) const = 0;

  /// Earliest time the given communication could START given port and
  /// worker-side constraints; +inf if its precondition can never be met
  /// in the current state (e.g. SendAB with no active chunk). The online
  /// backend additionally returns now() for a RecvC whose result has
  /// actually arrived, so policies react to real completions.
  virtual model::Time earliest_start(int worker, CommKind kind) const = 0;
  /// Duration the communication would occupy the port (SendC duration
  /// requires the plan; see Engine::chunk_comm_duration).
  virtual model::Time comm_duration(int worker, CommKind kind) const = 0;

  /// Blocks of C not yet covered by any assigned chunk.
  virtual model::BlockCount unassigned_blocks() const = 0;
  /// True iff EVERY block of the rect is currently covered by an
  /// assigned chunk. Recovery logic uses this to detect that a dead
  /// worker's chunk survived through a speculative twin (the rect stayed
  /// assigned) and must not be re-issued. Backends without coverage
  /// introspection conservatively report false (never skip a re-issue).
  virtual bool rect_assigned(const matrix::BlockRect&) const { return false; }
  /// Block updates enabled by the operand batches delivered so far.
  virtual model::BlockCount updates_total() const = 0;
  /// True when every C block was assigned, computed, and returned.
  virtual bool all_work_done() const = 0;

  // ----- unreliable-platform support -----
  /// False once the worker failed; schedulers must skip dead workers
  /// (every communication to one is infeasible).
  virtual bool alive(int worker) const { return progress(worker).alive; }
  /// Marks the worker failed: its in-flight chunk returns to the
  /// pending set (coverage and progress invalidated), and the backend
  /// reclaims whatever real resources the worker held. Idempotent.
  virtual void fail_worker(int worker) = 0;
  /// Workers still alive.
  int alive_count() const {
    int count = 0;
    for (int i = 0; i < worker_count(); ++i)
      if (alive(i)) ++count;
    return count;
  }

  // ----- online calibration -----
  /// Best current estimate of the worker's per-update cost in MODEL
  /// seconds: the static w_i blended with the observed speeds the
  /// backend measured (EWMA; model clock under the simulator, wall-drift
  /// scaled under the runtime). Equals platform().worker(i).w until the
  /// worker has produced an observation. Policies that consult this
  /// instead of the static w_i adapt to mid-run speed drift.
  virtual model::Time calibrated_w(int worker) const {
    return platform().worker(worker).w;
  }
  /// Observed current-vs-initial slowdown ratio (1.0 = nominal speed or
  /// no observation yet).
  virtual double observed_drift(int worker) const {
    return progress(worker).speed.drift();
  }

  // ----- lookahead support -----
  /// The instance this view executes; lookahead schedulers build their
  /// scratch engine over it.
  virtual const std::shared_ptr<const InstanceContext>& context() const = 0;
  /// The current state expressed as simulator state, restorable into a
  /// scratch engine for hypothetical probes (Engine::snapshot(); the
  /// online backend hands out its mirror's snapshot).
  virtual EngineState model_state() const = 0;
};

}  // namespace hmxp::sim
