#include "sim/scheduler.hpp"

#include "util/check.hpp"

namespace hmxp::sim {

double RunResult::ccr() const {
  if (updates == 0) return 0.0;
  return static_cast<double>(comm_blocks) / static_cast<double>(updates);
}

double RunResult::throughput() const {
  if (makespan <= 0.0) return 0.0;
  return static_cast<double>(updates) / makespan;
}

double RunResult::work() const {
  return makespan * static_cast<double>(workers_enrolled);
}

std::size_t decision_budget(const matrix::Partition& partition) {
  const auto c_blocks = static_cast<std::size_t>(partition.c_blocks());
  return 16 + 8 * c_blocks * (2 + partition.t());
}

RunResult collect_result(const std::string& scheduler_name, Engine& engine,
                         std::size_t decisions) {
  RunResult result;
  result.scheduler_name = scheduler_name;
  result.makespan = engine.finalize();
  result.comm_blocks = engine.comm_blocks_total();
  result.updates = engine.updates_total();
  result.decisions = decisions;
  for (int i = 0; i < engine.worker_count(); ++i) {
    const WorkerProgress& state = engine.progress(i);
    if (state.chunks_assigned > 0) ++result.workers_enrolled;
    if (!state.alive) ++result.workers_failed;
    result.worker_busy.push_back(state.busy_compute);
  }
  if (engine.recording()) {
    result.trace = engine.take_trace();
    result.port_busy = result.trace.port_busy_time();
  }
  return result;
}

RunResult run(Scheduler& scheduler, Engine& engine,
              std::vector<Decision>* decision_log) {
  const std::size_t max_decisions = decision_budget(engine.partition());
  std::size_t executed = 0;

  while (true) {
    Decision decision = scheduler.next(engine);
    if (decision.kind == Decision::Kind::kDone) break;
    engine.execute(decision);
    if (decision_log != nullptr) decision_log->push_back(decision);
    ++executed;
    HMXP_CHECK(executed <= max_decisions,
               "scheduler exceeded decision budget (livelock?)");
  }
  return collect_result(scheduler.name(), engine, executed);
}

RunResult simulate(Scheduler& scheduler, const platform::Platform& platform,
                   const matrix::Partition& partition, bool record_trace,
                   std::vector<Decision>* decision_log) {
  Engine engine(platform, partition, record_trace);
  return run(scheduler, engine, decision_log);
}

RunResult simulate(Scheduler& scheduler, const platform::Platform& platform,
                   const matrix::Partition& partition,
                   const platform::SlowdownSchedule& slowdown,
                   bool record_trace, std::vector<Decision>* decision_log) {
  Engine engine(InstanceContext::make(platform, partition, slowdown),
                record_trace);
  return run(scheduler, engine, decision_log);
}

RunResult simulate(Scheduler& scheduler,
                   std::shared_ptr<const InstanceContext> context,
                   bool record_trace, std::vector<Decision>* decision_log) {
  Engine engine(std::move(context), record_trace);
  return run(scheduler, engine, decision_log);
}

ReplayScheduler::ReplayScheduler(std::string name,
                                 std::vector<Decision> decisions)
    : name_(std::move(name)), decisions_(std::move(decisions)) {}

Decision ReplayScheduler::next(const ExecutionView& view) {
  (void)view;
  if (cursor_ >= decisions_.size()) return Decision::done();
  return decisions_[cursor_++];
}

}  // namespace hmxp::sim
