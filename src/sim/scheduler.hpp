// The Scheduler interface: the master's decision procedure.
//
// Whenever the port frees, the backend asks the scheduler for the next
// communication. Schedulers read the ExecutionView (they never mutate
// it) and keep their own bookkeeping (chunk carving, ratios, orders).
// Returning kDone ends the run; the backend then validates completion.
//
// The view is backend-agnostic: the same scheduler object drives the
// discrete-event simulator (sim::run / sim::simulate below) or the
// threaded runtime's live master loop (runtime::execute_online), which
// feeds it real completion events. Both backends emit the same
// RunResult + Trace shape, collected by collect_result().
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "sim/engine.hpp"

namespace hmxp::sim {

class Scheduler {
 public:
  virtual ~Scheduler() = default;
  virtual std::string name() const = 0;
  /// Next master action given the current execution state.
  virtual Decision next(const ExecutionView& view) = 0;
};

/// Summary of one run, identical in shape for both backends: the
/// simulator fills it from its engine, the online runtime from its
/// model mirror (so makespan etc. are model-projected there, while the
/// wall clock lives in runtime::ExecutorReport).
struct RunResult {
  std::string scheduler_name;
  model::Time makespan = 0.0;
  int workers_enrolled = 0;           // workers that received >= 1 chunk
  int workers_failed = 0;             // workers lost to the fault schedule
  model::BlockCount comm_blocks = 0;  // total blocks through the port
  model::BlockCount updates = 0;      // total block updates performed
  std::size_t decisions = 0;
  model::Time port_busy = 0.0;
  std::vector<model::Time> worker_busy;  // per worker compute time
  Trace trace;                           // populated iff recording was on

  /// Communication-to-computation ratio actually achieved (block units).
  double ccr() const;
  /// Block updates per second.
  double throughput() const;
  /// makespan * workers_enrolled: the paper's "work" metric.
  double work() const;
};

/// Decision-count ceiling for a run over `partition`: every chunk needs
/// 2 + steps communications; anything beyond (with slack) indicates a
/// scheduler livelock. Shared by both backends' master loops.
std::size_t decision_budget(const matrix::Partition& partition);

/// Finalizes `engine` (validating completion) and assembles the common
/// RunResult. Both backends call this at the end of their master loop.
RunResult collect_result(const std::string& scheduler_name, Engine& engine,
                         std::size_t decisions);

/// Drives `scheduler` against `engine` to completion; optionally records
/// every decision into `decision_log` (used by Het's two-phase replay
/// and by the threaded runtime's replay path).
RunResult run(Scheduler& scheduler, Engine& engine,
              std::vector<Decision>* decision_log = nullptr);

/// Convenience: fresh engine over (platform, partition).
RunResult simulate(Scheduler& scheduler, const platform::Platform& platform,
                   const matrix::Partition& partition,
                   bool record_trace = false,
                   std::vector<Decision>* decision_log = nullptr);

/// Same, over a time-varying instance: `slowdown` scales each worker's
/// per-update cost from its events' times on (model clock).
RunResult simulate(Scheduler& scheduler, const platform::Platform& platform,
                   const matrix::Partition& partition,
                   const platform::SlowdownSchedule& slowdown,
                   bool record_trace = false,
                   std::vector<Decision>* decision_log = nullptr);

/// Fully general instance: any perturbation/fault/calibration mix the
/// InstanceContext can describe (the unreliable-platform scenario).
RunResult simulate(Scheduler& scheduler,
                   std::shared_ptr<const InstanceContext> context,
                   bool record_trace = false,
                   std::vector<Decision>* decision_log = nullptr);

/// Replays a prerecorded decision sequence (phase 2 of Het; also how the
/// threaded runtime executes any pre-simulated schedule).
class ReplayScheduler final : public Scheduler {
 public:
  ReplayScheduler(std::string name, std::vector<Decision> decisions);
  std::string name() const override { return name_; }
  Decision next(const ExecutionView& view) override;

 private:
  std::string name_;
  std::vector<Decision> decisions_;
  std::size_t cursor_ = 0;
};

}  // namespace hmxp::sim
