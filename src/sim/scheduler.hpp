// The Scheduler interface: the master's decision procedure.
//
// Whenever the port frees, the engine asks the scheduler for the next
// communication. Schedulers read the engine state (they never mutate
// it) and keep their own bookkeeping (chunk carving, ratios, orders).
// Returning kDone ends the run; the engine then validates completion.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "sim/engine.hpp"

namespace hmxp::sim {

class Scheduler {
 public:
  virtual ~Scheduler() = default;
  virtual std::string name() const = 0;
  /// Next master action given the current engine state.
  virtual Decision next(const Engine& engine) = 0;
};

/// Summary of one simulated run.
struct RunResult {
  std::string scheduler_name;
  model::Time makespan = 0.0;
  int workers_enrolled = 0;           // workers that received >= 1 chunk
  model::BlockCount comm_blocks = 0;  // total blocks through the port
  model::BlockCount updates = 0;      // total block updates performed
  std::size_t decisions = 0;
  model::Time port_busy = 0.0;
  std::vector<model::Time> worker_busy;  // per worker compute time
  Trace trace;                           // populated iff recording was on

  /// Communication-to-computation ratio actually achieved (block units).
  double ccr() const;
  /// Block updates per second.
  double throughput() const;
  /// makespan * workers_enrolled: the paper's "work" metric.
  double work() const;
};

/// Drives `scheduler` against `engine` to completion; optionally records
/// every decision into `decision_log` (used by Het's two-phase replay
/// and by the threaded runtime).
RunResult run(Scheduler& scheduler, Engine& engine,
              std::vector<Decision>* decision_log = nullptr);

/// Convenience: fresh engine over (platform, partition).
RunResult simulate(Scheduler& scheduler, const platform::Platform& platform,
                   const matrix::Partition& partition,
                   bool record_trace = false,
                   std::vector<Decision>* decision_log = nullptr);

/// Replays a prerecorded decision sequence (phase 2 of Het).
class ReplayScheduler final : public Scheduler {
 public:
  ReplayScheduler(std::string name, std::vector<Decision> decisions);
  std::string name() const override { return name_; }
  Decision next(const Engine& engine) override;

 private:
  std::string name_;
  std::vector<Decision> decisions_;
  std::size_t cursor_ = 0;
};

}  // namespace hmxp::sim
