#include "sim/trace.hpp"

#include <algorithm>
#include <map>
#include <ostream>

namespace hmxp::sim {

namespace {
constexpr double kTimeSlack = 1e-9;
}

const char* comm_kind_name(CommKind kind) {
  switch (kind) {
    case CommKind::kSendC: return "send-C";
    case CommKind::kSendAB: return "send-AB";
    case CommKind::kRecvC: return "recv-C";
    case CommKind::kCancel: return "cancel";
  }
  return "?";
}

bool Trace::one_port_respected() const {
  std::vector<std::pair<model::Time, model::Time>> intervals;
  intervals.reserve(comms_.size());
  for (const CommEvent& event : comms_)
    intervals.emplace_back(event.start, event.end);
  std::sort(intervals.begin(), intervals.end());
  for (std::size_t i = 1; i < intervals.size(); ++i) {
    if (intervals[i].first < intervals[i - 1].second - kTimeSlack)
      return false;
  }
  return true;
}

bool Trace::compute_serialized() const {
  // Group compute events per worker preserving order of record (which is
  // execution order), then check serialization and operand availability.
  std::map<int, std::vector<const ComputeEvent*>> by_worker;
  for (const ComputeEvent& event : computes_)
    by_worker[event.worker].push_back(&event);

  // Operand arrival per worker: list of SendAB end times in order.
  std::map<int, std::vector<model::Time>> arrivals;
  for (const CommEvent& event : comms_) {
    if (event.kind == CommKind::kSendAB)
      arrivals[event.worker].push_back(event.end);
  }

  for (const auto& [worker, events] : by_worker) {
    model::Time previous_end = 0.0;
    std::size_t batch = 0;
    const auto& worker_arrivals = arrivals[worker];
    for (const ComputeEvent* event : events) {
      if (event->start < previous_end - kTimeSlack) return false;
      if (batch >= worker_arrivals.size()) return false;  // computed unsent data
      if (event->start < worker_arrivals[batch] - kTimeSlack) return false;
      previous_end = event->end;
      ++batch;
    }
  }
  return true;
}

model::Time Trace::port_busy_time() const {
  model::Time total = 0.0;
  for (const CommEvent& event : comms_) total += event.end - event.start;
  return total;
}

model::Time Trace::worker_busy_time(int worker) const {
  model::Time total = 0.0;
  for (const ComputeEvent& event : computes_) {
    if (event.worker == worker) total += event.end - event.start;
  }
  return total;
}

void Trace::write_gantt_csv(std::ostream& os) const {
  os << "resource,kind,start,end,detail\n";
  for (const CommEvent& event : comms_) {
    os << "master," << comm_kind_name(event.kind) << ',' << event.start << ','
       << event.end << ",P" << (event.worker + 1) << ':' << event.blocks
       << "blk\n";
  }
  for (const ComputeEvent& event : computes_) {
    os << 'P' << (event.worker + 1) << ",compute," << event.start << ','
       << event.end << ",step" << event.step << ':' << event.updates
       << "upd\n";
  }
}

void Trace::clear() {
  comms_.clear();
  computes_.clear();
}

void Trace::truncate(std::size_t comm_count, std::size_t compute_count) {
  if (comm_count < comms_.size()) comms_.resize(comm_count);
  if (compute_count < computes_.size()) computes_.resize(compute_count);
}

}  // namespace hmxp::sim
