// Event trace of a run: every port operation and every per-step worker
// computation, with start/end times. Powers the Gantt export, the run
// statistics, and the one-port / overlap invariant checks in tests.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

#include "model/costs.hpp"
#include "model/layout.hpp"

namespace hmxp::sim {

enum class CommKind { kSendC, kSendAB, kRecvC, kCancel };

const char* comm_kind_name(CommKind kind);

struct CommEvent {
  int worker = -1;
  CommKind kind = CommKind::kSendC;
  model::Time start = 0.0;
  model::Time end = 0.0;
  model::BlockCount blocks = 0;
};

struct ComputeEvent {
  int worker = -1;
  std::size_t step = 0;           // step index within the worker's chunk
  model::Time start = 0.0;
  model::Time end = 0.0;
  model::BlockCount updates = 0;
};

class Trace {
 public:
  void record_comm(const CommEvent& event) { comms_.push_back(event); }
  void record_compute(const ComputeEvent& event) { computes_.push_back(event); }

  const std::vector<CommEvent>& comms() const { return comms_; }
  const std::vector<ComputeEvent>& computes() const { return computes_; }

  /// True iff no two port operations overlap (one-port model).
  bool one_port_respected() const;

  /// True iff per worker, compute intervals are serialized and each
  /// compute starts no earlier than its operand batch arrived.
  bool compute_serialized() const;

  /// Total port busy time; master idle = makespan - this.
  model::Time port_busy_time() const;

  /// Busy compute time of one worker.
  model::Time worker_busy_time(int worker) const;

  /// Gantt chart as CSV rows: resource,kind,start,end,detail. The
  /// "resource" column is `master` for port events and `P<i>` for
  /// computes, directly loadable into a plotting tool.
  void write_gantt_csv(std::ostream& os) const;

  void clear();

  /// Rolls the trace back to the given event counts (used by
  /// Engine::restore to discard events recorded after a snapshot).
  void truncate(std::size_t comm_count, std::size_t compute_count);

 private:
  std::vector<CommEvent> comms_;
  std::vector<ComputeEvent> computes_;
};

}  // namespace hmxp::sim
