// Cache-line-aligned allocation: an allocator usable with std::vector
// so bulk numeric storage (matrix::Matrix, the GEMM pack buffers) starts
// on a 64-byte boundary. Alignment matters twice on the compute path:
// aligned SIMD loads from the packed GEMM panels, and no false sharing
// when adjacent buffers are written by different worker threads.
#pragma once

#include <cstddef>
#include <limits>
#include <new>
#include <vector>

namespace hmxp::util {

inline constexpr std::size_t kCacheLineBytes = 64;

template <typename T, std::size_t Alignment = kCacheLineBytes>
class AlignedAllocator {
 public:
  static_assert((Alignment & (Alignment - 1)) == 0,
                "alignment must be a power of two");
  static_assert(Alignment >= alignof(T),
                "alignment must not weaken the type's natural alignment");

  using value_type = T;

  AlignedAllocator() noexcept = default;
  template <typename U>
  AlignedAllocator(const AlignedAllocator<U, Alignment>&) noexcept {}  // NOLINT

  template <typename U>
  struct rebind {
    using other = AlignedAllocator<U, Alignment>;
  };

  T* allocate(std::size_t n) {
    if (n > std::numeric_limits<std::size_t>::max() / sizeof(T))
      throw std::bad_alloc();
    return static_cast<T*>(
        ::operator new(n * sizeof(T), std::align_val_t(Alignment)));
  }
  void deallocate(T* p, std::size_t) noexcept {
    ::operator delete(p, std::align_val_t(Alignment));
  }

  friend bool operator==(const AlignedAllocator&,
                         const AlignedAllocator&) noexcept {
    return true;
  }
  friend bool operator!=(const AlignedAllocator&,
                         const AlignedAllocator&) noexcept {
    return false;
  }
};

/// std::vector with 64-byte-aligned storage.
template <typename T>
using AlignedVector = std::vector<T, AlignedAllocator<T>>;

}  // namespace hmxp::util
