// Contract-checking macros used across hmxp.
//
// HMXP_REQUIRE  -- precondition on a public API: always on, throws
//                  std::invalid_argument so callers can recover/test.
// HMXP_CHECK    -- internal invariant: always on, throws std::logic_error.
//                  These guard scheduler/engine state machines whose
//                  corruption would silently produce wrong schedules.
//
// Both evaluate their condition exactly once and cost one branch on the
// hot path; the simulator processes O(10^5) events per run, for which
// this is negligible next to the heap operations it performs.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace hmxp::util {

[[noreturn]] inline void throw_requirement(const char* expr, const char* file,
                                           int line, const std::string& msg) {
  std::ostringstream os;
  os << "requirement violated: (" << expr << ") at " << file << ':' << line;
  if (!msg.empty()) os << " -- " << msg;
  throw std::invalid_argument(os.str());
}

[[noreturn]] inline void throw_invariant(const char* expr, const char* file,
                                         int line, const std::string& msg) {
  std::ostringstream os;
  os << "invariant violated: (" << expr << ") at " << file << ':' << line;
  if (!msg.empty()) os << " -- " << msg;
  throw std::logic_error(os.str());
}

}  // namespace hmxp::util

#define HMXP_REQUIRE(cond, msg)                                         \
  do {                                                                  \
    if (!(cond))                                                        \
      ::hmxp::util::throw_requirement(#cond, __FILE__, __LINE__, (msg)); \
  } while (false)

#define HMXP_CHECK(cond, msg)                                          \
  do {                                                                 \
    if (!(cond))                                                       \
      ::hmxp::util::throw_invariant(#cond, __FILE__, __LINE__, (msg)); \
  } while (false)
