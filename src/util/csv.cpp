#include "util/csv.hpp"

#include <cmath>
#include <cstdio>
#include <stdexcept>

#include "util/check.hpp"

namespace hmxp::util {

CsvWriter::CsvWriter(const std::string& path) : out_(path), path_(path) {
  if (!out_) throw std::runtime_error("cannot open CSV file for writing: " + path);
}

std::string CsvWriter::escape(const std::string& cell) {
  const bool needs_quotes = cell.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quotes) return cell;
  std::string escaped = "\"";
  for (char ch : cell) {
    if (ch == '"') escaped += '"';
    escaped += ch;
  }
  escaped += '"';
  return escaped;
}

void CsvWriter::write_raw(const std::vector<std::string>& cells) {
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i > 0) out_ << ',';
    out_ << escape(cells[i]);
  }
  out_ << '\n';
}

void CsvWriter::header(const std::vector<std::string>& columns) {
  HMXP_REQUIRE(rows_ == 0 && columns_ == 0, "CSV header must come first");
  HMXP_REQUIRE(!columns.empty(), "CSV header needs at least one column");
  columns_ = columns.size();
  write_raw(columns);
}

void CsvWriter::row(const std::vector<std::string>& cells) {
  if (columns_ != 0)
    HMXP_REQUIRE(cells.size() == columns_, "CSV row width differs from header");
  write_raw(cells);
  ++rows_;
}

CsvWriter::RowBuilder& CsvWriter::RowBuilder::cell(const std::string& value) {
  cells_.push_back(value);
  return *this;
}

CsvWriter::RowBuilder& CsvWriter::RowBuilder::cell(double value) {
  char buffer[64];
  if (std::isfinite(value) && value == std::floor(value) &&
      std::fabs(value) < 1e15) {
    std::snprintf(buffer, sizeof(buffer), "%.0f", value);
  } else {
    std::snprintf(buffer, sizeof(buffer), "%.6g", value);
  }
  cells_.emplace_back(buffer);
  return *this;
}

CsvWriter::RowBuilder& CsvWriter::RowBuilder::cell(long long value) {
  cells_.push_back(std::to_string(value));
  return *this;
}

CsvWriter::RowBuilder& CsvWriter::RowBuilder::cell(std::size_t value) {
  cells_.push_back(std::to_string(value));
  return *this;
}

void CsvWriter::RowBuilder::done() { writer_.row(cells_); }

}  // namespace hmxp::util
