// CSV writer for benchmark/experiment output. Each bench can optionally
// dump its series as CSV (one file per figure) so the paper's plots can be
// regenerated with any plotting tool.
#pragma once

#include <fstream>
#include <string>
#include <vector>

namespace hmxp::util {

class CsvWriter {
 public:
  /// Opens `path` for writing; throws std::runtime_error on failure.
  explicit CsvWriter(const std::string& path);

  /// Writes a header row. Must be the first row written.
  void header(const std::vector<std::string>& columns);

  /// Appends one row; cells are quoted/escaped per RFC 4180 as needed.
  void row(const std::vector<std::string>& cells);

  /// Convenience mixed row builder: formats doubles with 6 significant
  /// digits unless they are integral.
  class RowBuilder {
   public:
    explicit RowBuilder(CsvWriter& writer) : writer_(writer) {}
    RowBuilder& cell(const std::string& value);
    RowBuilder& cell(double value);
    RowBuilder& cell(long long value);
    RowBuilder& cell(std::size_t value);
    void done();

   private:
    CsvWriter& writer_;
    std::vector<std::string> cells_;
  };
  RowBuilder build_row() { return RowBuilder(*this); }

  std::size_t rows_written() const { return rows_; }
  const std::string& path() const { return path_; }

  /// Escapes one cell per RFC 4180 (exposed for testing).
  static std::string escape(const std::string& cell);

 private:
  std::ofstream out_;
  std::string path_;
  std::size_t rows_ = 0;
  std::size_t columns_ = 0;
  void write_raw(const std::vector<std::string>& cells);
};

}  // namespace hmxp::util
