#include "util/flags.hpp"

#include <sstream>
#include <stdexcept>

#include "util/check.hpp"
#include "util/strings.hpp"

namespace hmxp::util {

void Flags::define(const std::string& name, const std::string& default_value,
                   const std::string& help) {
  HMXP_REQUIRE(!name.empty(), "flag name must not be empty");
  HMXP_REQUIRE(specs_.find(name) == specs_.end(), "duplicate flag: " + name);
  specs_[name] = Spec{default_value, help, /*is_bool=*/false};
}

void Flags::define_bool(const std::string& name, bool default_value,
                        const std::string& help) {
  HMXP_REQUIRE(!name.empty(), "flag name must not be empty");
  HMXP_REQUIRE(specs_.find(name) == specs_.end(), "duplicate flag: " + name);
  specs_[name] = Spec{default_value ? "true" : "false", help, /*is_bool=*/true};
}

void Flags::parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      help_requested_ = true;
      continue;
    }
    if (!starts_with(arg, "--")) {
      positional_.push_back(arg);
      continue;
    }
    std::string body = arg.substr(2);
    std::string name;
    std::string value;
    bool has_value = false;
    const std::size_t eq = body.find('=');
    if (eq != std::string::npos) {
      name = body.substr(0, eq);
      value = body.substr(eq + 1);
      has_value = true;
    } else {
      name = body;
    }
    const auto it = specs_.find(name);
    if (it == specs_.end())
      throw std::invalid_argument("unknown flag: --" + name);
    if (!has_value) {
      if (it->second.is_bool) {
        value = "true";  // bare --flag means true
      } else if (i + 1 < argc) {
        value = argv[++i];
      } else {
        throw std::invalid_argument("flag --" + name + " needs a value");
      }
    }
    values_[name] = value;
  }
}

const Flags::Spec& Flags::spec_or_throw(const std::string& name) const {
  const auto it = specs_.find(name);
  if (it == specs_.end())
    throw std::invalid_argument("flag was never defined: --" + name);
  return it->second;
}

std::string Flags::get_string(const std::string& name) const {
  const Spec& spec = spec_or_throw(name);
  const auto it = values_.find(name);
  return it == values_.end() ? spec.default_value : it->second;
}

double Flags::get_double(const std::string& name) const {
  return parse_double(get_string(name));
}

long long Flags::get_int(const std::string& name) const {
  return parse_int(get_string(name));
}

bool Flags::get_bool(const std::string& name) const {
  return parse_bool(get_string(name));
}

bool Flags::provided(const std::string& name) const {
  spec_or_throw(name);
  return values_.find(name) != values_.end();
}

std::string Flags::usage(const std::string& program_description) const {
  std::ostringstream os;
  os << program_description << "\n\nFlags:\n";
  for (const auto& [name, spec] : specs_) {
    os << "  --" << name;
    if (!spec.is_bool) os << "=<value>";
    os << "  (default: " << spec.default_value << ")\n      " << spec.help
       << '\n';
  }
  os << "  --help\n      Print this message.\n";
  return os.str();
}

}  // namespace hmxp::util
