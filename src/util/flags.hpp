// Tiny CLI flag parser used by every bench and example binary.
// Syntax: --name=value, --name value, or bare --name for booleans.
// Unknown flags are an error (typos in sweep parameters must not be
// silently ignored -- they would quietly change an experiment).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace hmxp::util {

class Flags {
 public:
  /// Registers flags before parsing. `help` is printed by usage().
  void define(const std::string& name, const std::string& default_value,
              const std::string& help);
  void define_bool(const std::string& name, bool default_value,
                   const std::string& help);

  /// Parses argv; throws std::invalid_argument on unknown/malformed flags.
  /// Recognizes --help and sets help_requested().
  void parse(int argc, const char* const* argv);

  bool help_requested() const { return help_requested_; }
  std::string usage(const std::string& program_description) const;

  /// Typed getters; throw if the flag was never defined or fails to parse.
  std::string get_string(const std::string& name) const;
  double get_double(const std::string& name) const;
  long long get_int(const std::string& name) const;
  bool get_bool(const std::string& name) const;

  /// Positional (non-flag) arguments in order.
  const std::vector<std::string>& positional() const { return positional_; }

  /// True if the user explicitly supplied the flag.
  bool provided(const std::string& name) const;

 private:
  struct Spec {
    std::string default_value;
    std::string help;
    bool is_bool = false;
  };
  std::map<std::string, Spec> specs_;
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
  bool help_requested_ = false;

  const Spec& spec_or_throw(const std::string& name) const;
};

}  // namespace hmxp::util
