#include "util/log.hpp"

#include <algorithm>
#include <atomic>
#include <cctype>
#include <stdexcept>

namespace hmxp::util {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kWarn};

const char* level_tag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF  ";
  }
  return "?????";
}
}  // namespace

LogLevel log_level() { return g_level.load(std::memory_order_relaxed); }

void set_log_level(LogLevel level) {
  g_level.store(level, std::memory_order_relaxed);
}

LogLevel parse_log_level(const std::string& name) {
  std::string lower(name);
  std::transform(lower.begin(), lower.end(), lower.begin(),
                 [](unsigned char ch) { return static_cast<char>(std::tolower(ch)); });
  if (lower == "debug") return LogLevel::kDebug;
  if (lower == "info") return LogLevel::kInfo;
  if (lower == "warn" || lower == "warning") return LogLevel::kWarn;
  if (lower == "error") return LogLevel::kError;
  if (lower == "off" || lower == "none") return LogLevel::kOff;
  throw std::invalid_argument("unknown log level: " + name);
}

namespace detail {
void emit(LogLevel level, const std::string& message) {
  std::ostream& os = (level >= LogLevel::kWarn) ? std::cerr : std::clog;
  os << "[hmxp " << level_tag(level) << "] " << message << '\n';
}
}  // namespace detail

}  // namespace hmxp::util
