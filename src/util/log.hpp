// Minimal leveled logger. Not thread-safe per message interleaving beyond
// the atomicity of a single ostream insertion; the runtime serializes its
// logging through the master thread.
#pragma once

#include <iostream>
#include <sstream>
#include <string>

namespace hmxp::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global log threshold; messages below it are discarded.
LogLevel log_level();
void set_log_level(LogLevel level);

/// Parses "debug"/"info"/"warn"/"error"/"off" (case-insensitive).
/// Throws std::invalid_argument on anything else.
LogLevel parse_log_level(const std::string& name);

namespace detail {
void emit(LogLevel level, const std::string& message);
}

// Stream-style logging: HMXP_LOG(kInfo) << "x = " << x;
// The temporary collects the message and emits it on destruction.
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;
  ~LogLine() {
    if (level_ >= log_level()) detail::emit(level_, os_.str());
  }
  template <typename T>
  LogLine& operator<<(const T& value) {
    if (level_ >= log_level()) os_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream os_;
};

}  // namespace hmxp::util

#define HMXP_LOG(level) ::hmxp::util::LogLine(::hmxp::util::LogLevel::level)
