#include "util/rng.hpp"

// Rng is header-only; this translation unit anchors the library target and
// provides a home for future out-of-line additions.
namespace hmxp::util {
static_assert(Rng::min() == 0);
static_assert(Rng::max() == ~0ULL);
}  // namespace hmxp::util
