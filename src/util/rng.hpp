// Deterministic random number generation.
//
// Every stochastic element of hmxp (random platform generation, random
// matrix fill, shuffles in tests) draws from an explicitly seeded Rng so
// each experiment is reproducible from the seed its bench prints.
//
// The generator is xoshiro256** seeded through SplitMix64, the standard
// recommendation of Blackman & Vigna; both are implemented here from the
// public-domain reference algorithms (no third-party code).
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "util/check.hpp"

namespace hmxp::util {

/// SplitMix64 step: used to expand a single 64-bit seed into a full
/// xoshiro state and useful on its own for hash-like seeding.
constexpr std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x853c49e6748fea9bULL) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    seed_ = seed;
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  /// The seed this generator was (re)constructed with.
  std::uint64_t seed() const { return seed_; }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }

  result_type operator()() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi). Requires lo < hi.
  double uniform(double lo, double hi) {
    HMXP_REQUIRE(lo < hi, "uniform(lo,hi) needs lo < hi");
    return lo + (hi - lo) * uniform();
  }

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  /// Unbiased via rejection sampling (Lemire-style bound).
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    HMXP_REQUIRE(lo <= hi, "uniform_int(lo,hi) needs lo <= hi");
    const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
    if (span == 0) return static_cast<std::int64_t>((*this)());  // full range
    const std::uint64_t limit = max() - max() % span;
    std::uint64_t draw = (*this)();
    while (draw >= limit) draw = (*this)();
    return lo + static_cast<std::int64_t>(draw % span);
  }

  /// Picks one element index of a non-empty container size.
  std::size_t index(std::size_t size) {
    HMXP_REQUIRE(size > 0, "index() over empty range");
    return static_cast<std::size_t>(
        uniform_int(0, static_cast<std::int64_t>(size) - 1));
  }

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& values) {
    for (std::size_t i = values.size(); i > 1; --i) {
      std::size_t j = index(i);
      std::swap(values[i - 1], values[j]);
    }
  }

  /// Derives an independent child generator (for per-run substreams).
  Rng fork() {
    const std::uint64_t child_seed = (*this)() ^ 0xd1b54a32d192ed03ULL;
    return Rng(child_seed);
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
  std::uint64_t seed_ = 0;
};

}  // namespace hmxp::util
