#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "util/check.hpp"

namespace hmxp::util {

void StreamingStats::add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double StreamingStats::mean() const {
  HMXP_REQUIRE(count_ > 0, "mean of empty accumulator");
  return mean_;
}

double StreamingStats::variance() const {
  HMXP_REQUIRE(count_ > 1, "variance needs >= 2 samples");
  return m2_ / static_cast<double>(count_ - 1);
}

double StreamingStats::stddev() const { return std::sqrt(variance()); }

double StreamingStats::min() const {
  HMXP_REQUIRE(count_ > 0, "min of empty accumulator");
  return min_;
}

double StreamingStats::max() const {
  HMXP_REQUIRE(count_ > 0, "max of empty accumulator");
  return max_;
}

void Samples::add(double x) {
  values_.push_back(x);
  sorted_valid_ = false;
}

void Samples::add_all(const std::vector<double>& xs) {
  values_.insert(values_.end(), xs.begin(), xs.end());
  sorted_valid_ = false;
}

const std::vector<double>& Samples::sorted() const {
  if (!sorted_valid_) {
    sorted_ = values_;
    std::sort(sorted_.begin(), sorted_.end());
    sorted_valid_ = true;
  }
  return sorted_;
}

double Samples::mean() const {
  HMXP_REQUIRE(!values_.empty(), "mean of empty sample set");
  double total = 0.0;
  for (double v : values_) total += v;
  return total / static_cast<double>(values_.size());
}

double Samples::stddev() const {
  HMXP_REQUIRE(values_.size() > 1, "stddev needs >= 2 samples");
  const double m = mean();
  double m2 = 0.0;
  for (double v : values_) m2 += (v - m) * (v - m);
  return std::sqrt(m2 / static_cast<double>(values_.size() - 1));
}

double Samples::min() const {
  HMXP_REQUIRE(!values_.empty(), "min of empty sample set");
  return sorted().front();
}

double Samples::max() const {
  HMXP_REQUIRE(!values_.empty(), "max of empty sample set");
  return sorted().back();
}

double Samples::median() const { return quantile(0.5); }

double Samples::quantile(double p) const {
  HMXP_REQUIRE(!values_.empty(), "quantile of empty sample set");
  HMXP_REQUIRE(p >= 0.0 && p <= 1.0, "quantile fraction outside [0,1]");
  const auto& s = sorted();
  if (s.size() == 1) return s.front();
  const double pos = p * static_cast<double>(s.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, s.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return s[lo] * (1.0 - frac) + s[hi] * frac;
}

double Samples::geomean() const {
  HMXP_REQUIRE(!values_.empty(), "geomean of empty sample set");
  double log_sum = 0.0;
  for (double v : values_) {
    HMXP_REQUIRE(v > 0.0, "geomean needs positive samples");
    log_sum += std::log(v);
  }
  return std::exp(log_sum / static_cast<double>(values_.size()));
}

std::string format_fixed(double x, int precision) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.*f", precision, x);
  return buffer;
}

}  // namespace hmxp::util
