// Streaming and exact summary statistics used by the experiment harness
// (relative cost / relative work aggregation) and by the calibration code
// (median of repeated timings, as in the paper's benchmark phase).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace hmxp::util {

/// Welford streaming accumulator: O(1) memory, numerically stable
/// mean/variance, plus min/max. Suitable when samples need not be kept.
class StreamingStats {
 public:
  void add(double x);
  std::size_t count() const { return count_; }
  bool empty() const { return count_ == 0; }
  /// Mean of the added samples. Requires count() > 0.
  double mean() const;
  /// Unbiased sample variance (n-1 denominator). Requires count() > 1.
  double variance() const;
  /// Sample standard deviation. Requires count() > 1.
  double stddev() const;
  double min() const;
  double max() const;
  double sum() const { return sum_; }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Keeps all samples; offers exact order statistics in addition to the
/// moments. Used where the paper reports medians and worst cases.
class Samples {
 public:
  void add(double x);
  void add_all(const std::vector<double>& xs);
  std::size_t count() const { return values_.size(); }
  bool empty() const { return values_.empty(); }
  double mean() const;
  double stddev() const;
  double min() const;
  double max() const;
  /// Median (average of middle two for even counts). Requires non-empty.
  double median() const;
  /// Linear-interpolated p-quantile, p in [0,1]. Requires non-empty.
  double quantile(double p) const;
  /// Geometric mean; requires all samples > 0.
  double geomean() const;
  const std::vector<double>& values() const { return values_; }

 private:
  std::vector<double> values_;
  mutable std::vector<double> sorted_;
  mutable bool sorted_valid_ = false;
  const std::vector<double>& sorted() const;
};

/// Formats a double with the given precision (fixed notation).
std::string format_fixed(double x, int precision);

}  // namespace hmxp::util
