#include "util/strings.hpp"

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>

namespace hmxp::util {

std::vector<std::string> split(std::string_view text, char sep) {
  std::vector<std::string> parts;
  std::size_t begin = 0;
  while (true) {
    const std::size_t pos = text.find(sep, begin);
    if (pos == std::string_view::npos) {
      parts.emplace_back(text.substr(begin));
      return parts;
    }
    parts.emplace_back(text.substr(begin, pos - begin));
    begin = pos + 1;
  }
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string trim(std::string_view text) {
  std::size_t begin = 0;
  std::size_t end = text.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(text[begin]))) ++begin;
  while (end > begin && std::isspace(static_cast<unsigned char>(text[end - 1]))) --end;
  return std::string(text.substr(begin, end - begin));
}

bool starts_with(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() && text.substr(0, prefix.size()) == prefix;
}

bool ends_with(std::string_view text, std::string_view suffix) {
  return text.size() >= suffix.size() &&
         text.substr(text.size() - suffix.size()) == suffix;
}

std::string to_lower(std::string_view text) {
  std::string out(text);
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char ch) {
    return static_cast<char>(std::tolower(ch));
  });
  return out;
}

double parse_double(const std::string& text) {
  const std::string trimmed = trim(text);
  if (trimmed.empty()) throw std::invalid_argument("empty number");
  errno = 0;
  char* end = nullptr;
  const double value = std::strtod(trimmed.c_str(), &end);
  if (end != trimmed.c_str() + trimmed.size())
    throw std::invalid_argument("not a number: '" + text + "'");
  if (errno == ERANGE) throw std::invalid_argument("number out of range: '" + text + "'");
  return value;
}

long long parse_int(const std::string& text) {
  const std::string trimmed = trim(text);
  if (trimmed.empty()) throw std::invalid_argument("empty integer");
  errno = 0;
  char* end = nullptr;
  const long long value = std::strtoll(trimmed.c_str(), &end, 10);
  if (end != trimmed.c_str() + trimmed.size())
    throw std::invalid_argument("not an integer: '" + text + "'");
  if (errno == ERANGE) throw std::invalid_argument("integer out of range: '" + text + "'");
  return value;
}

bool parse_bool(const std::string& text) {
  const std::string lower = to_lower(trim(text));
  if (lower == "1" || lower == "true" || lower == "yes" || lower == "on") return true;
  if (lower == "0" || lower == "false" || lower == "no" || lower == "off") return false;
  throw std::invalid_argument("not a boolean: '" + text + "'");
}

std::string format_duration(double seconds) {
  char buffer[64];
  const double magnitude = std::fabs(seconds);
  if (magnitude < 1e-6) {
    std::snprintf(buffer, sizeof(buffer), "%.1f ns", seconds * 1e9);
  } else if (magnitude < 1e-3) {
    std::snprintf(buffer, sizeof(buffer), "%.2f us", seconds * 1e6);
  } else if (magnitude < 1.0) {
    std::snprintf(buffer, sizeof(buffer), "%.2f ms", seconds * 1e3);
  } else if (magnitude < 120.0) {
    std::snprintf(buffer, sizeof(buffer), "%.2f s", seconds);
  } else if (magnitude < 7200.0) {
    std::snprintf(buffer, sizeof(buffer), "%.1f min", seconds / 60.0);
  } else {
    std::snprintf(buffer, sizeof(buffer), "%.2f h", seconds / 3600.0);
  }
  return buffer;
}

std::string pad_left(std::string_view text, std::size_t width) {
  if (text.size() >= width) return std::string(text.substr(0, width));
  return std::string(width - text.size(), ' ') + std::string(text);
}

std::string pad_right(std::string_view text, std::size_t width) {
  if (text.size() >= width) return std::string(text.substr(0, width));
  return std::string(text) + std::string(width - text.size(), ' ');
}

}  // namespace hmxp::util
