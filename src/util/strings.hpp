// Small string helpers shared by the CLI parser, CSV writer and table
// printer. libstdc++ 12 lacks <format>, so formatting goes through
// snprintf-based helpers.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace hmxp::util {

/// Splits on a single character; keeps empty fields.
std::vector<std::string> split(std::string_view text, char sep);

/// Joins with a separator.
std::string join(const std::vector<std::string>& parts, std::string_view sep);

/// Strips ASCII whitespace from both ends.
std::string trim(std::string_view text);

bool starts_with(std::string_view text, std::string_view prefix);
bool ends_with(std::string_view text, std::string_view suffix);

/// Lower-cases ASCII.
std::string to_lower(std::string_view text);

/// Parses a double/int with full-string validation; throws
/// std::invalid_argument on trailing garbage or overflow.
double parse_double(const std::string& text);
long long parse_int(const std::string& text);
bool parse_bool(const std::string& text);

/// Human-readable duration: "1.23 s", "45.6 ms", "2h03m". Used by run
/// reports; keeps bench output legible across 5 orders of magnitude.
std::string format_duration(double seconds);

/// Pads/truncates to an exact width (left- or right-aligned).
std::string pad_left(std::string_view text, std::size_t width);
std::string pad_right(std::string_view text, std::size_t width);

}  // namespace hmxp::util
