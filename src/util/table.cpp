#include "util/table.hpp"

#include <algorithm>
#include <cstdio>
#include <ostream>
#include <sstream>

#include "util/check.hpp"
#include "util/strings.hpp"

namespace hmxp::util {

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers)), aligns_(headers_.size(), Align::kRight) {
  HMXP_REQUIRE(!headers_.empty(), "table needs at least one column");
}

void Table::set_align(std::size_t column, Align align) {
  HMXP_REQUIRE(column < aligns_.size(), "column index out of range");
  aligns_[column] = align;
}

void Table::add_row(std::vector<std::string> cells) {
  HMXP_REQUIRE(cells.size() == headers_.size(),
               "row width differs from header width");
  Row row;
  row.cells = std::move(cells);
  row.rule_before = pending_rule_;
  pending_rule_ = false;
  rows_.push_back(std::move(row));
}

void Table::add_rule() { pending_rule_ = true; }

Table::RowBuilder& Table::RowBuilder::cell(const std::string& value) {
  cells_.push_back(value);
  return *this;
}

Table::RowBuilder& Table::RowBuilder::cell(const char* value) {
  cells_.emplace_back(value);
  return *this;
}

Table::RowBuilder& Table::RowBuilder::cell(double value, int precision) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.*f", precision, value);
  cells_.emplace_back(buffer);
  return *this;
}

Table::RowBuilder& Table::RowBuilder::cell(long long value) {
  cells_.push_back(std::to_string(value));
  return *this;
}

Table::RowBuilder& Table::RowBuilder::cell(std::size_t value) {
  cells_.push_back(std::to_string(value));
  return *this;
}

void Table::RowBuilder::done() { table_.add_row(std::move(cells_)); }

std::string Table::render() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t i = 0; i < headers_.size(); ++i) widths[i] = headers_[i].size();
  for (const Row& row : rows_)
    for (std::size_t i = 0; i < row.cells.size(); ++i)
      widths[i] = std::max(widths[i], row.cells[i].size());

  const auto rule = [&] {
    std::string line = "+";
    for (std::size_t w : widths) {
      line += std::string(w + 2, '-');
      line += '+';
    }
    line += '\n';
    return line;
  }();

  const auto format_row = [&](const std::vector<std::string>& cells) {
    std::string line = "|";
    for (std::size_t i = 0; i < cells.size(); ++i) {
      line += ' ';
      line += (aligns_[i] == Align::kRight) ? pad_left(cells[i], widths[i])
                                            : pad_right(cells[i], widths[i]);
      line += " |";
    }
    line += '\n';
    return line;
  };

  std::ostringstream os;
  os << rule << format_row(headers_) << rule;
  for (const Row& row : rows_) {
    if (row.rule_before) os << rule;
    os << format_row(row.cells);
  }
  os << rule;
  return os.str();
}

void Table::print(std::ostream& os) const { os << render(); }

}  // namespace hmxp::util
