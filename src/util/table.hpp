// ASCII table printer. The figure-reproduction benches print the same
// rows/series the paper plots; this formats them readably on a terminal.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace hmxp::util {

enum class Align { kLeft, kRight };

class Table {
 public:
  /// Column headers fix the column count for all subsequent rows.
  explicit Table(std::vector<std::string> headers);

  /// Per-column alignment; default is right-aligned for every column.
  void set_align(std::size_t column, Align align);

  void add_row(std::vector<std::string> cells);

  /// Convenience builder mirroring CsvWriter::RowBuilder.
  class RowBuilder {
   public:
    explicit RowBuilder(Table& table) : table_(table) {}
    RowBuilder& cell(const std::string& value);
    RowBuilder& cell(const char* value);
    RowBuilder& cell(double value, int precision = 3);
    RowBuilder& cell(long long value);
    RowBuilder& cell(std::size_t value);
    void done();

   private:
    Table& table_;
    std::vector<std::string> cells_;
  };
  RowBuilder build_row() { return RowBuilder(*this); }

  /// Inserts a horizontal rule before the next row.
  void add_rule();

  std::size_t row_count() const { return rows_.size(); }

  /// Renders with box-drawing done in plain ASCII ('+', '-', '|').
  std::string render() const;
  void print(std::ostream& os) const;

 private:
  struct Row {
    std::vector<std::string> cells;
    bool rule_before = false;
  };
  std::vector<std::string> headers_;
  std::vector<Align> aligns_;
  std::vector<Row> rows_;
  bool pending_rule_ = false;
};

}  // namespace hmxp::util
