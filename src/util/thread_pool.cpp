#include "util/thread_pool.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace hmxp::util {

int ThreadPool::default_thread_count() {
  return std::max(1u, std::thread::hardware_concurrency());
}

ThreadPool::ThreadPool(int threads) {
  HMXP_REQUIRE(threads >= 0, "thread count cannot be negative");
  const int count = threads == 0 ? default_thread_count() : threads;
  workers_.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  task_ready_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::submit(std::function<void()> task) {
  HMXP_REQUIRE(task != nullptr, "cannot submit an empty task");
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    HMXP_REQUIRE(!stopping_, "pool is shutting down");
    queue_.push_back(std::move(task));
    ++in_flight_;
  }
  task_ready_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(mutex_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
  if (first_error_ != nullptr) {
    std::exception_ptr error = first_error_;
    first_error_ = nullptr;
    std::rethrow_exception(error);
  }
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      task_ready_.wait(lock,
                       [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ with a drained queue
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    try {
      task();
    } catch (...) {
      const std::lock_guard<std::mutex> lock(mutex_);
      if (first_error_ == nullptr) first_error_ = std::current_exception();
    }
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      --in_flight_;
      if (in_flight_ == 0) all_done_.notify_all();
    }
  }
}

}  // namespace hmxp::util
