// A small fixed-size thread pool for fanning independent work items
// across cores: the experiment pipeline's instance x algorithm cells,
// and (through matrix::gemm_parallel's process-wide shared instance)
// the 2-D C-tile work items of the parallel GEMM driver -- kernels no
// longer spawn threads per call.
//
// Semantics are deliberately minimal: submit() enqueues a task, the
// workers drain the queue FIFO, wait_idle() blocks until every submitted
// task has finished. Tasks should capture their own output slots --
// the pool imposes no ordering on completion, so deterministic results
// come from writing into pre-sized vectors by index, never from
// completion order. A task that throws is caught; the first exception is
// stashed and rethrown from wait_idle() (or the destructor swallows it
// if the caller never waits).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace hmxp::util {

class ThreadPool {
 public:
  /// Spawns `threads` workers; 0 means hardware_concurrency (min 1).
  explicit ThreadPool(int threads = 0);
  /// Joins after the queue drains (pending tasks still run).
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int size() const { return static_cast<int>(workers_.size()); }

  void submit(std::function<void()> task);

  /// Blocks until all submitted tasks completed; rethrows the first
  /// exception any task threw since the last wait_idle().
  void wait_idle();

  /// What a `threads = 0` request resolves to on this machine.
  static int default_thread_count();

 private:
  void worker_loop();

  std::mutex mutex_;
  std::condition_variable task_ready_;
  std::condition_variable all_done_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  std::size_t in_flight_ = 0;  // queued + currently running
  std::exception_ptr first_error_;
  bool stopping_ = false;
};

}  // namespace hmxp::util
