// runtime::BufferPool semantics: released storage is recycled (the
// zero-steady-state-allocation property the online data plane relies
// on), best-fit checkout, counter accounting, and safety under
// concurrent checkout/return from many threads (the TSan job's target).
#include <gtest/gtest.h>

#include <cstdint>
#include <thread>
#include <vector>

#include "runtime/buffer_pool.hpp"
#include "util/rng.hpp"

namespace hmxp::runtime {
namespace {

TEST(BufferPool, ReusesReleasedStorage) {
  BufferPool pool;
  BufferPool::Buffer first = pool.acquire(128);
  const double* storage = first.data();
  pool.release(std::move(first));

  // Same-or-smaller checkout must come back without allocating.
  BufferPool::Buffer second = pool.acquire(100);
  EXPECT_EQ(second.data(), storage);
  const BufferPool::Stats stats = pool.stats();
  EXPECT_EQ(stats.acquires, 2u);
  EXPECT_EQ(stats.allocations, 1u);
  EXPECT_EQ(stats.reuses, 1u);
}

TEST(BufferPool, GrowsWhenNothingFits) {
  BufferPool pool;
  pool.release(BufferPool::Buffer(16));
  BufferPool::Buffer big = pool.acquire(1024);
  EXPECT_EQ(big.size(), 1024u);
  const BufferPool::Stats stats = pool.stats();
  EXPECT_EQ(stats.allocations, 1u);  // the recycled 16 had to grow
  EXPECT_EQ(stats.reuses, 0u);
}

TEST(BufferPool, BestFitPrefersSmallestSufficientBuffer) {
  BufferPool pool;
  pool.release(BufferPool::Buffer(1000));
  pool.release(BufferPool::Buffer(50));
  pool.release(BufferPool::Buffer(200));
  // 60 fits in 200 and 1000; best fit takes 200 and leaves 1000 free
  // for a genuinely large checkout.
  BufferPool::Buffer buffer = pool.acquire(60);
  EXPECT_EQ(buffer.capacity(), 200u);
  BufferPool::Buffer large = pool.acquire(900);
  EXPECT_EQ(large.capacity(), 1000u);
  EXPECT_EQ(pool.stats().reuses, 2u);
}

TEST(BufferPool, SteadyStateCycleStopsAllocating) {
  // The executor's pattern: a rotating set of a few sizes. After the
  // first cycle seeds the free list, allocations must not grow.
  BufferPool pool;
  const std::size_t sizes[] = {64, 128, 256};
  for (int cycle = 0; cycle < 100; ++cycle) {
    std::vector<BufferPool::Buffer> held;
    for (const std::size_t size : sizes) held.push_back(pool.acquire(size));
    for (auto& buffer : held) pool.release(std::move(buffer));
  }
  const BufferPool::Stats stats = pool.stats();
  EXPECT_EQ(stats.acquires, 300u);
  EXPECT_LE(stats.allocations, 3u);
  EXPECT_GE(stats.reuses, 297u);
  EXPECT_LE(stats.peak_outstanding, 3u);
}

TEST(BufferPool, ConcurrentCheckoutReturn) {
  // Hammer the pool from several threads; each writes a thread-unique
  // pattern and verifies it before returning the buffer, so overlapping
  // hand-outs of the same storage (or races on the free list) surface
  // as value corruption here and as races under TSan.
  BufferPool pool;
  constexpr int kThreads = 4;
  constexpr int kIterations = 500;
  std::vector<std::thread> threads;
  std::vector<int> failures(kThreads, 0);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&pool, &failures, t] {
      util::Rng rng(static_cast<std::uint64_t>(t) + 1);
      for (int i = 0; i < kIterations; ++i) {
        const auto size = static_cast<std::size_t>(rng.uniform_int(1, 512));
        BufferPool::Buffer buffer = pool.acquire(size);
        const double stamp = t * 1e4 + i;
        for (double& value : buffer) value = stamp;
        for (const double value : buffer)
          if (value != stamp) ++failures[t];
        pool.release(std::move(buffer));
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  for (int t = 0; t < kThreads; ++t) EXPECT_EQ(failures[t], 0) << t;

  const BufferPool::Stats stats = pool.stats();
  EXPECT_EQ(stats.acquires,
            static_cast<std::size_t>(kThreads) * kIterations);
  EXPECT_EQ(stats.allocations + stats.reuses, stats.acquires);
  EXPECT_LE(stats.peak_outstanding, static_cast<std::size_t>(kThreads));
  // With at most kThreads buffers in flight, the warm-up is tiny.
  EXPECT_GE(stats.reuses, stats.acquires - 64);
}

TEST(BufferPool, ForeignAndEmptyReleasesAreSafe) {
  BufferPool pool;
  pool.release(BufferPool::Buffer{});  // capacity 0: dropped
  BufferPool::Buffer foreign(33, 1.5);
  pool.release(std::move(foreign));  // never acquired: adopted
  BufferPool::Buffer reused = pool.acquire(20);
  EXPECT_EQ(reused.size(), 20u);
  EXPECT_EQ(pool.stats().reuses, 1u);
}

}  // namespace
}  // namespace hmxp::runtime
