// Tests for chunk plans: step structure, operand counts, peak buffers.
#include <gtest/gtest.h>

#include "sim/chunk.hpp"

namespace hmxp::sim {
namespace {

TEST(DoubleBufferedChunk, FullSquareStructure) {
  const matrix::BlockRect rect{0, 4, 0, 4};  // mu = 4
  const ChunkPlan plan = make_double_buffered_chunk(rect, 10);
  ASSERT_EQ(plan.steps.size(), 10u);
  for (std::size_t k = 0; k < 10; ++k) {
    EXPECT_EQ(plan.steps[k].operand_blocks, 8);   // mu A + mu B
    EXPECT_EQ(plan.steps[k].updates, 16);          // mu^2
    EXPECT_EQ(plan.steps[k].k_begin, k);
    EXPECT_EQ(plan.steps[k].k_end, k + 1);
  }
  EXPECT_EQ(plan.prefetch_depth, 1);
  EXPECT_EQ(plan.total_updates(), 160);
  EXPECT_EQ(plan.total_operand_blocks(), 80);
  EXPECT_EQ(plan.max_operand_blocks(), 8);
  // Peak: mu^2 C + 2 batches of 2mu = mu^2 + 4mu.
  EXPECT_EQ(plan.peak_buffers(), 16 + 16);
}

TEST(DoubleBufferedChunk, RectangularClippedChunk) {
  const matrix::BlockRect rect{10, 13, 4, 9};  // 3 x 5
  const ChunkPlan plan = make_double_buffered_chunk(rect, 7);
  EXPECT_EQ(plan.steps.front().operand_blocks, 8);  // 3 A + 5 B
  EXPECT_EQ(plan.steps.front().updates, 15);
  EXPECT_EQ(plan.total_updates(), 105);
  EXPECT_EQ(plan.peak_buffers(), 15 + 2 * 8);
}

TEST(ToledoChunk, StepsCoverInnerDimension) {
  const matrix::BlockRect rect{0, 3, 0, 3};  // beta = 3
  const ChunkPlan plan = make_toledo_chunk(rect, 10, 3);
  // ceil(10 / 3) = 4 steps covering 3+3+3+1 inner blocks.
  ASSERT_EQ(plan.steps.size(), 4u);
  EXPECT_EQ(plan.steps[0].operand_blocks, 18);  // 3x3 A + 3x3 B
  EXPECT_EQ(plan.steps[0].updates, 27);         // 3x3x3
  EXPECT_EQ(plan.steps[3].operand_blocks, 6);   // 3x1 + 1x3
  EXPECT_EQ(plan.steps[3].updates, 9);
  EXPECT_EQ(plan.steps[3].k_begin, 9u);
  EXPECT_EQ(plan.steps[3].k_end, 10u);
  EXPECT_EQ(plan.prefetch_depth, 0);
  // Every C block updated exactly t times in total.
  EXPECT_EQ(plan.total_updates(), 9 * 10);
  // Peak: beta^2 C + one step's 2 beta^2 operands = 3 beta^2.
  EXPECT_EQ(plan.peak_buffers(), 27);
}

TEST(ToledoChunk, BetaLargerThanT) {
  const matrix::BlockRect rect{0, 2, 0, 2};
  const ChunkPlan plan = make_toledo_chunk(rect, 3, 5);
  ASSERT_EQ(plan.steps.size(), 1u);
  EXPECT_EQ(plan.steps[0].operand_blocks, 2 * 3 + 3 * 2);
  EXPECT_EQ(plan.total_updates(), 4 * 3);
}

TEST(MaxReuseChunk, StreamingPeakOverride) {
  const matrix::BlockRect rect{0, 4, 0, 4};
  const ChunkPlan plan = make_max_reuse_chunk(rect, 10);
  EXPECT_EQ(plan.prefetch_depth, 0);
  // 1 + mu + mu^2 for a square mu-chunk.
  EXPECT_EQ(plan.peak_buffers(), 1 + 4 + 16);
  EXPECT_EQ(plan.total_updates(), 160);
}

TEST(ChunkPlan, RejectsDegenerateInput) {
  const matrix::BlockRect empty{2, 2, 0, 4};
  EXPECT_THROW(make_double_buffered_chunk(empty, 5), std::invalid_argument);
  const matrix::BlockRect rect{0, 1, 0, 1};
  EXPECT_THROW(make_double_buffered_chunk(rect, 0), std::invalid_argument);
  EXPECT_THROW(make_toledo_chunk(rect, 5, 0), std::invalid_argument);
}

}  // namespace
}  // namespace hmxp::sim
