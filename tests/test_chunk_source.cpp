// Tests for the column-group carver shared by every scheduler.
#include <gtest/gtest.h>

#include <vector>

#include "sched/chunk_source.hpp"

namespace hmxp::sched {
namespace {

matrix::Partition blocks(std::size_t r, std::size_t t, std::size_t s) {
  return matrix::Partition::from_blocks(r, t, s, 80);
}

TEST(ChunkSource, SingleWorkerCoversEverythingExactlyOnce) {
  const auto plat = platform::Platform::homogeneous(1, 0.01, 0.001, 45);
  // m = 45 -> mu = 5 (25 + 20 = 45).
  const auto part = blocks(12, 4, 17);
  ChunkSource source(plat, part, Layout::kDoubleBuffered);
  EXPECT_EQ(source.width(0), 5);

  std::vector<std::vector<int>> covered(12, std::vector<int>(17, 0));
  std::size_t total = 0;
  while (auto plan = source.next_chunk(0)) {
    for (std::size_t i = plan->rect.i0; i < plan->rect.i1; ++i)
      for (std::size_t j = plan->rect.j0; j < plan->rect.j1; ++j)
        covered[i][j] += 1;
    total += plan->rect.count();
    EXPECT_LE(plan->rect.rows(), 5u);
    EXPECT_LE(plan->rect.cols(), 5u);
  }
  EXPECT_EQ(total, 12u * 17u);
  EXPECT_FALSE(source.has_work());
  for (const auto& row : covered)
    for (const int count : row) EXPECT_EQ(count, 1);
}

TEST(ChunkSource, BalancedRowSlicing) {
  // r = 100, mu = 89: two balanced slices of 50, never 89 + 11.
  const auto plat = platform::Platform::homogeneous(1, 0.01, 0.001,
                                                    89 * 89 + 4 * 89);
  const auto part = blocks(100, 4, 89);
  ChunkSource source(plat, part, Layout::kDoubleBuffered);
  auto first = source.next_chunk(0);
  auto second = source.next_chunk(0);
  ASSERT_TRUE(first && second);
  EXPECT_EQ(first->rect.rows(), 50u);
  EXPECT_EQ(second->rect.rows(), 50u);
  EXPECT_EQ(second->rect.i0, 50u);
  EXPECT_FALSE(source.has_work());
}

TEST(ChunkSource, BalancedSlicesDifferByAtMostOne) {
  const auto plat = platform::Platform::homogeneous(1, 0.01, 0.001, 45);
  const auto part = blocks(13, 4, 5);  // mu = 5: slices of 13 -> 5,4,4
  ChunkSource source(plat, part, Layout::kDoubleBuffered);
  std::vector<std::size_t> heights;
  while (auto plan = source.next_chunk(0)) heights.push_back(plan->rect.rows());
  ASSERT_EQ(heights.size(), 3u);
  EXPECT_EQ(heights[0] + heights[1] + heights[2], 13u);
  for (const std::size_t h : heights) {
    EXPECT_GE(h, 4u);
    EXPECT_LE(h, 5u);
  }
}

TEST(ChunkSource, PerWorkerColumnGroups) {
  // Two workers with different mu must own disjoint column groups.
  std::vector<platform::WorkerSpec> specs = {
      {0.01, 0.001, 3 * 3 + 4 * 3, "small"},   // mu = 3
      {0.01, 0.001, 5 * 5 + 4 * 5, "large"}};  // mu = 5
  const platform::Platform plat("duo", specs);
  const auto part = blocks(6, 4, 11);
  ChunkSource source(plat, part, Layout::kDoubleBuffered);

  auto c0 = source.next_chunk(0);  // worker 0 claims columns [0, 3)
  auto c1 = source.next_chunk(1);  // worker 1 claims columns [3, 8)
  ASSERT_TRUE(c0 && c1);
  EXPECT_EQ(c0->rect.j0, 0u);
  EXPECT_EQ(c0->rect.j1, 3u);
  EXPECT_EQ(c1->rect.j0, 3u);
  EXPECT_EQ(c1->rect.j1, 8u);
  // Worker 0 finishes its group (6 rows / mu 3 = 2 slices) before moving.
  auto c0b = source.next_chunk(0);
  ASSERT_TRUE(c0b);
  EXPECT_EQ(c0b->rect.j0, 0u);
  EXPECT_EQ(c0b->rect.i0, 3u);
  auto c0c = source.next_chunk(0);  // new group: columns [8, 11)
  ASSERT_TRUE(c0c);
  EXPECT_EQ(c0c->rect.j0, 8u);
  EXPECT_EQ(c0c->rect.j1, 11u);
}

TEST(ChunkSource, PeekDoesNotCommit) {
  const auto plat = platform::Platform::homogeneous(2, 0.01, 0.001, 60);
  const auto part = blocks(5, 4, 10);
  ChunkSource source(plat, part, Layout::kDoubleBuffered);
  const auto peeked = source.peek_chunk(0);
  const auto peeked_again = source.peek_chunk(0);
  ASSERT_TRUE(peeked && peeked_again);
  EXPECT_EQ(peeked->rect, peeked_again->rect);
  const auto committed = source.next_chunk(0);
  ASSERT_TRUE(committed);
  EXPECT_EQ(committed->rect, peeked->rect);
  const auto after = source.peek_chunk(0);
  ASSERT_TRUE(after);
  EXPECT_NE(after->rect, peeked->rect);
}

TEST(ChunkSource, ToledoLayoutUsesBeta) {
  const auto plat = platform::Platform::homogeneous(1, 0.01, 0.001, 75);
  // beta = 5 (3 * 25 = 75); mu would be 6 (36 + 24 = 60 <= 75).
  const auto part = blocks(10, 7, 10);
  ChunkSource source(plat, part, Layout::kToledo);
  EXPECT_EQ(source.width(0), 5);
  const auto plan = source.next_chunk(0);
  ASSERT_TRUE(plan);
  EXPECT_EQ(plan->prefetch_depth, 0);
  EXPECT_EQ(plan->steps.size(), 2u);  // ceil(7/5)
}

TEST(ChunkSource, MaxReuseLayoutWidth) {
  const auto plat = platform::Platform::homogeneous(1, 0.01, 0.001, 21);
  const auto part = blocks(8, 3, 8);
  ChunkSource source(plat, part, Layout::kMaxReuse);
  EXPECT_EQ(source.width(0), 4);  // 1 + 4 + 16 = 21
  const auto plan = source.next_chunk(0);
  ASSERT_TRUE(plan);
  EXPECT_EQ(plan->peak_buffers(), 21);
}

TEST(ChunkSource, UniformWidthOverride) {
  const auto plat = platform::Platform::homogeneous(2, 0.01, 0.001, 1000);
  const auto part = blocks(9, 4, 9);
  ChunkSource source(plat, part, Layout::kDoubleBuffered, 3);
  EXPECT_EQ(source.width(0), 3);
  EXPECT_EQ(source.width(1), 3);
  const auto plan = source.next_chunk(1);
  ASSERT_TRUE(plan);
  EXPECT_EQ(plan->rect.cols(), 3u);
  EXPECT_EQ(plan->rect.rows(), 3u);
}

TEST(ChunkSource, HasWorkForTracksGroups) {
  const auto plat = platform::Platform::homogeneous(2, 0.01, 0.001, 60);
  const auto part = blocks(5, 4, 5);  // a single 5-wide group
  ChunkSource source(plat, part, Layout::kDoubleBuffered);
  EXPECT_TRUE(source.has_work_for(0));
  EXPECT_TRUE(source.has_work_for(1));
  ASSERT_TRUE(source.next_chunk(0));
  // Worker 0 consumed the only group entirely (5 rows <= mu).
  EXPECT_FALSE(source.has_work());
  EXPECT_FALSE(source.has_work_for(1));
}

TEST(ChunkSource, RemainingBlocksAccounting) {
  const auto plat = platform::Platform::homogeneous(1, 0.01, 0.001, 60);
  const auto part = blocks(10, 4, 10);
  ChunkSource source(plat, part, Layout::kDoubleBuffered);
  EXPECT_EQ(source.remaining_blocks(), 100u);
  const auto plan = source.next_chunk(0);
  ASSERT_TRUE(plan);
  EXPECT_EQ(source.remaining_blocks(), 100u - plan->rect.count());
}

}  // namespace
}  // namespace hmxp::sched
