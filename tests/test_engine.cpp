// Engine semantics tests: hand-computed timelines for the one-port
// model, buffer-limited prefetch, sequentialized C I/O, and the protocol
// violations the engine must reject.
#include <gtest/gtest.h>

#include <sstream>

#include "sim/engine.hpp"

namespace hmxp::sim {
namespace {

matrix::Partition blocks(std::size_t r, std::size_t t, std::size_t s) {
  return matrix::Partition::from_blocks(r, t, s, 80);
}

matrix::BlockRect rect(std::size_t i0, std::size_t i1, std::size_t j0,
                       std::size_t j1) {
  return matrix::BlockRect{i0, i1, j0, j1};
}

// One worker, c = 1 s/block, w = 1 s/update, one 2x2 chunk, t = 2.
// Timeline (double-buffered, prefetch 1):
//   SendC   [0, 4)                         (4 blocks)
//   SendAB0 [4, 8)   compute0 [8, 12)      (4 operand blocks, 4 updates)
//   SendAB1 [8, 12)  compute1 [12, 16)     (prefetch overlaps compute0)
//   RecvC   [16, 20)                       (waits for compute1)
TEST(Engine, HandComputedDoubleBufferedTimeline) {
  const auto plat = platform::Platform::homogeneous(1, 1.0, 1.0, 12);
  const auto part = blocks(2, 2, 2);
  Engine engine(plat, part);

  const ChunkPlan plan = make_double_buffered_chunk(rect(0, 2, 0, 2), 2);
  EXPECT_DOUBLE_EQ(engine.execute(Decision::send_chunk(0, plan)), 4.0);
  EXPECT_DOUBLE_EQ(engine.execute(Decision::send_operands(0)), 8.0);
  EXPECT_DOUBLE_EQ(engine.progress(0).compute_end[0], 12.0);
  // Prefetch slot free: second batch transfers during compute 0.
  EXPECT_DOUBLE_EQ(engine.earliest_start(0, CommKind::kSendAB), 8.0);
  EXPECT_DOUBLE_EQ(engine.execute(Decision::send_operands(0)), 12.0);
  EXPECT_DOUBLE_EQ(engine.progress(0).compute_end[1], 16.0);
  // Result waits for the last compute.
  EXPECT_DOUBLE_EQ(engine.earliest_start(0, CommKind::kRecvC), 16.0);
  EXPECT_DOUBLE_EQ(engine.execute(Decision::recv_result(0)), 20.0);
  EXPECT_DOUBLE_EQ(engine.finalize(), 20.0);
  EXPECT_TRUE(engine.all_work_done());
}

// Same scenario with prefetch 0 (Toledo-style): batch k+1 may only be
// received after compute k finished.
TEST(Engine, NoPrefetchSerializesCommAndCompute) {
  const auto plat = platform::Platform::homogeneous(1, 1.0, 1.0, 12);
  const auto part = blocks(2, 2, 2);
  Engine engine(plat, part);

  ChunkPlan plan = make_double_buffered_chunk(rect(0, 2, 0, 2), 2);
  plan.prefetch_depth = 0;
  engine.execute(Decision::send_chunk(0, plan));        // [0, 4)
  engine.execute(Decision::send_operands(0));           // [4, 8), compute [8,12)
  EXPECT_DOUBLE_EQ(engine.earliest_start(0, CommKind::kSendAB), 12.0);
  EXPECT_DOUBLE_EQ(engine.execute(Decision::send_operands(0)), 16.0);
  EXPECT_DOUBLE_EQ(engine.progress(0).compute_end[1], 20.0);
  EXPECT_DOUBLE_EQ(engine.execute(Decision::recv_result(0)), 24.0);
  EXPECT_DOUBLE_EQ(engine.finalize(), 24.0);
}

// Deep prefetch pressure: with t = 4 and prefetch 1, batch k + 2 waits
// for compute k to end. Batches pile up against the compute pipeline.
TEST(Engine, PrefetchDepthLimitsBatchLead) {
  const auto plat = platform::Platform::homogeneous(1, 0.25, 1.0, 12);
  const auto part = blocks(2, 4, 2);
  Engine engine(plat, part);
  const ChunkPlan plan = make_double_buffered_chunk(rect(0, 2, 0, 2), 4);
  engine.execute(Decision::send_chunk(0, plan));   // [0, 1)
  engine.execute(Decision::send_operands(0));      // [1, 2) compute [2, 6)
  engine.execute(Decision::send_operands(0));      // [2, 3) compute [6, 10)
  // Batch 2 needs compute 0's buffer: starts at 6, not 3.
  EXPECT_DOUBLE_EQ(engine.earliest_start(0, CommKind::kSendAB), 6.0);
  EXPECT_DOUBLE_EQ(engine.execute(Decision::send_operands(0)), 7.0);
  EXPECT_DOUBLE_EQ(engine.progress(0).compute_end[2], 14.0);
  // Batch 3 waits for compute 1 (ends at 10).
  EXPECT_DOUBLE_EQ(engine.earliest_start(0, CommKind::kSendAB), 10.0);
}

// Two workers share the port: the second SendC starts when the first
// ends, and a later send to a busy worker blocks the port.
TEST(Engine, OnePortSerializesWorkers) {
  const auto plat = platform::Platform::homogeneous(2, 1.0, 10.0, 12);
  const auto part = blocks(2, 1, 4);
  Engine engine(plat, part);

  engine.execute(
      Decision::send_chunk(0, make_double_buffered_chunk(rect(0, 2, 0, 2), 1)));
  EXPECT_DOUBLE_EQ(engine.now(), 4.0);
  engine.execute(
      Decision::send_chunk(1, make_double_buffered_chunk(rect(0, 2, 2, 4), 1)));
  EXPECT_DOUBLE_EQ(engine.now(), 8.0);  // port was busy until 4
  engine.execute(Decision::send_operands(0));  // [8, 12), compute [12, 52)
  engine.execute(Decision::send_operands(1));  // [12, 16), compute [16, 56)
  // Results: worker 0 finishes compute at 52; port idles 16 -> 52.
  EXPECT_DOUBLE_EQ(engine.execute(Decision::recv_result(0)), 56.0);
  EXPECT_DOUBLE_EQ(engine.execute(Decision::recv_result(1)), 60.0);
  EXPECT_DOUBLE_EQ(engine.finalize(), 60.0);

  // The trace agrees with the one-port and serialization invariants.
  EXPECT_TRUE(engine.trace().one_port_respected());
  EXPECT_TRUE(engine.trace().compute_serialized());
}

TEST(Engine, SequentializedChunkIO) {
  // A worker's next chunk may not be sent before its previous result
  // left; the engine starts the send at the worker's ready time.
  const auto plat = platform::Platform::homogeneous(2, 1.0, 1.0, 12);
  const auto part = blocks(2, 1, 4);
  Engine engine(plat, part);

  engine.execute(
      Decision::send_chunk(0, make_double_buffered_chunk(rect(0, 2, 0, 2), 1)));
  engine.execute(Decision::send_operands(0));  // [4, 8) compute [8, 12)
  engine.execute(Decision::recv_result(0));    // [12, 16)
  EXPECT_DOUBLE_EQ(engine.progress(0).ready_for_chunk, 16.0);
  // Next chunk to the same worker: starts immediately (port free at 16).
  engine.execute(
      Decision::send_chunk(0, make_double_buffered_chunk(rect(0, 2, 2, 4), 1)));
  EXPECT_DOUBLE_EQ(engine.now(), 20.0);
  engine.execute(Decision::send_operands(0));
  engine.execute(Decision::recv_result(0));
  EXPECT_DOUBLE_EQ(engine.finalize(), 32.0);  // 24 recv start + compute wait
}

TEST(Engine, RejectsProtocolViolations) {
  const auto plat = platform::Platform::homogeneous(1, 1.0, 1.0, 12);
  const auto part = blocks(2, 2, 2);
  Engine engine(plat, part);

  // Operands before any chunk.
  EXPECT_THROW(engine.execute(Decision::send_operands(0)), std::logic_error);
  // Result before any chunk.
  EXPECT_THROW(engine.execute(Decision::recv_result(0)), std::logic_error);

  const ChunkPlan plan = make_double_buffered_chunk(rect(0, 2, 0, 2), 2);
  engine.execute(Decision::send_chunk(0, plan));
  // Second chunk while one is outstanding.
  EXPECT_THROW(engine.execute(Decision::send_chunk(0, plan)),
               std::logic_error);
  // Result before all steps sent.
  EXPECT_THROW(engine.execute(Decision::recv_result(0)), std::logic_error);
  engine.execute(Decision::send_operands(0));
  engine.execute(Decision::send_operands(0));
  // Operands past the last step.
  EXPECT_THROW(engine.execute(Decision::send_operands(0)), std::logic_error);
}

TEST(Engine, RejectsMemoryOverflowAndDoubleCoverage) {
  const auto plat = platform::Platform::homogeneous(2, 1.0, 1.0, 12);
  const auto part = blocks(4, 2, 4);
  Engine engine(plat, part);

  // 3x3 chunk peak = 9 + 4*3 = 21 > 12 buffers.
  EXPECT_THROW(
      engine.execute(
          Decision::send_chunk(0, make_double_buffered_chunk(rect(0, 3, 0, 3), 2))),
      std::logic_error);

  engine.execute(
      Decision::send_chunk(0, make_double_buffered_chunk(rect(0, 2, 0, 2), 2)));
  // Overlapping assignment to another worker.
  EXPECT_THROW(
      engine.execute(
          Decision::send_chunk(1, make_double_buffered_chunk(rect(1, 3, 1, 3), 2))),
      std::logic_error);
}

TEST(Engine, RejectsWrongStepCount) {
  const auto plat = platform::Platform::homogeneous(1, 1.0, 1.0, 12);
  const auto part = blocks(2, 3, 2);  // t = 3
  Engine engine(plat, part);
  // Chunk built for t = 2 cannot cover t = 3 updates per block.
  EXPECT_THROW(
      engine.execute(
          Decision::send_chunk(0, make_double_buffered_chunk(rect(0, 2, 0, 2), 2))),
      std::logic_error);
}

TEST(Engine, FinalizeRejectsIncompleteRuns) {
  const auto plat = platform::Platform::homogeneous(1, 1.0, 1.0, 12);
  const auto part = blocks(2, 1, 2);
  {
    Engine engine(plat, part);
    EXPECT_THROW(engine.finalize(), std::logic_error);  // nothing assigned
  }
  {
    Engine engine(plat, part);
    engine.execute(Decision::send_chunk(
        0, make_double_buffered_chunk(rect(0, 2, 0, 2), 1)));
    engine.execute(Decision::send_operands(0));
    EXPECT_THROW(engine.finalize(), std::logic_error);  // never returned
  }
}

TEST(Engine, CountersAndEnrollment) {
  const auto plat = platform::Platform::homogeneous(2, 1.0, 1.0, 12);
  const auto part = blocks(2, 2, 2);
  Engine engine(plat, part);
  engine.execute(
      Decision::send_chunk(0, make_double_buffered_chunk(rect(0, 2, 0, 2), 2)));
  engine.execute(Decision::send_operands(0));
  engine.execute(Decision::send_operands(0));
  engine.execute(Decision::recv_result(0));
  engine.finalize();
  // Comm blocks: 4 (C in) + 4 + 4 (operands) + 4 (C out).
  EXPECT_EQ(engine.comm_blocks_total(), 16);
  EXPECT_EQ(engine.updates_total(), 8);
  EXPECT_EQ(engine.progress(0).chunks_assigned, 1);
  EXPECT_EQ(engine.progress(1).chunks_assigned, 0);
}

TEST(Engine, HeterogeneousSpeedsRespected) {
  // Worker 1 is half the speed in both c and w.
  std::vector<platform::WorkerSpec> specs = {{1.0, 1.0, 12, "fast"},
                                             {2.0, 2.0, 12, "slow"}};
  const platform::Platform plat("duo", specs);
  const auto part = blocks(2, 1, 4);
  Engine engine(plat, part);
  engine.execute(
      Decision::send_chunk(1, make_double_buffered_chunk(rect(0, 2, 0, 2), 1)));
  EXPECT_DOUBLE_EQ(engine.now(), 8.0);  // 4 blocks * 2 s
  engine.execute(Decision::send_operands(1));  // 4 blocks * 2 = [8, 16)
  EXPECT_DOUBLE_EQ(engine.progress(1).compute_end[0], 16.0 + 8.0);
  engine.execute(
      Decision::send_chunk(0, make_double_buffered_chunk(rect(0, 2, 2, 4), 1)));
  EXPECT_DOUBLE_EQ(engine.now(), 20.0);  // 16 + 4 * 1
  engine.execute(Decision::send_operands(0));
  engine.execute(Decision::recv_result(0));
  engine.execute(Decision::recv_result(1));
  engine.finalize();
}

TEST(Trace, GanttExportContainsAllResources) {
  const auto plat = platform::Platform::homogeneous(1, 1.0, 1.0, 12);
  const auto part = blocks(2, 1, 2);
  Engine engine(plat, part);
  engine.execute(
      Decision::send_chunk(0, make_double_buffered_chunk(rect(0, 2, 0, 2), 1)));
  engine.execute(Decision::send_operands(0));
  engine.execute(Decision::recv_result(0));
  engine.finalize();
  std::ostringstream os;
  engine.trace().write_gantt_csv(os);
  const std::string csv = os.str();
  EXPECT_NE(csv.find("resource,kind,start,end,detail"), std::string::npos);
  EXPECT_NE(csv.find("master,send-C"), std::string::npos);
  EXPECT_NE(csv.find("master,send-AB"), std::string::npos);
  EXPECT_NE(csv.find("master,recv-C"), std::string::npos);
  EXPECT_NE(csv.find("P1,compute"), std::string::npos);
}

}  // namespace
}  // namespace hmxp::sim
