// Tests for the core facade: registry, run reports, experiment harness.
#include <gtest/gtest.h>

#include <cmath>

#include "core/experiment.hpp"
#include "platform/generator.hpp"

namespace hmxp::core {
namespace {

matrix::Partition blocks(std::size_t r, std::size_t t, std::size_t s) {
  return matrix::Partition::from_blocks(r, t, s, 80);
}

TEST(Registry, AllAlgorithmsRoundTripNames) {
  // The paper's seven plus the fault-tolerant wrappers, the calibrated
  // min-min, and the straggler-speculation family.
  const auto& algorithms = all_algorithms();
  ASSERT_EQ(algorithms.size(), 16u);
  for (const Algorithm& algorithm : algorithms) {
    EXPECT_EQ(algorithm_from_name(algorithm_name(algorithm)), algorithm);
  }
  EXPECT_THROW(algorithm_from_name("NotAnAlgorithm"), std::invalid_argument);
}

TEST(Registry, LookupIsCaseInsensitive) {
  EXPECT_EQ(algorithm_from_name("oddoml"), "ODDOML");
  EXPECT_EQ(algorithm_from_name("HET"), "Het");
  EXPECT_EQ(algorithm_from_name("homi"), "HomI");
  EXPECT_EQ(algorithm_name("bmm"), "BMM");
}

TEST(Registry, UnknownNameErrorListsValidNames) {
  try {
    algorithm_from_name("NotAnAlgorithm");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& error) {
    const std::string message = error.what();
    EXPECT_NE(message.find("NotAnAlgorithm"), std::string::npos);
    for (const Algorithm& algorithm : all_algorithms())
      EXPECT_NE(message.find(algorithm), std::string::npos) << algorithm;
  }
}

TEST(Registry, PaperPresentationOrder) {
  // Paper columns first, then the unreliable-platform family, then the
  // straggler-speculation wrappers.
  const std::vector<Algorithm> expected = {
      "Hom",          "HomI",       "Het",          "ORROML",
      "OMMOML",       "ODDOML",     "BMM",          "FT-ODDOML",
      "FT-OMMOML",    "FT-ORROML",  "FT-BMM",       "OMMOML-cal",
      "SP-ODDOML",    "SP-OMMOML",  "SP-FT-ODDOML", "SP-FT-OMMOML"};
  EXPECT_EQ(all_algorithms(), expected);
  // The figure/table benches keep the paper's seven columns.
  const std::vector<Algorithm> paper = {"Hom",    "HomI",   "Het",
                                        "ORROML", "OMMOML", "ODDOML",
                                        "BMM"};
  EXPECT_EQ(paper_algorithms(), paper);
}

TEST(RunReport, BoundsAndMetadata) {
  const platform::Platform plat = platform::hetero_memory();
  const auto part = blocks(15, 8, 40);
  const RunReport report = run_algorithm("Het", plat, part);
  EXPECT_EQ(report.algorithm_label, "Het");
  ASSERT_TRUE(report.het_variant.has_value());
  // The steady-state LP is an upper bound on achieved throughput.
  EXPECT_GT(report.steady_state_bound, 0.0);
  EXPECT_GE(report.bound_over_achieved, 1.0);
  EXPECT_GE(report.selection_wall_seconds, 0.0);
}

TEST(RunReport, NonHetHasNoVariant) {
  const platform::Platform plat = platform::hetero_memory();
  const auto part = blocks(10, 5, 25);
  const RunReport report = run_algorithm("BMM", plat, part);
  EXPECT_FALSE(report.het_variant.has_value());
}

TEST(Experiment, RelativeMetricsNormalized) {
  const auto part = blocks(15, 8, 40);
  const Instance instance{"test", platform::hetero_memory(), part};
  const auto algorithms = all_algorithms();
  const InstanceResults results = run_instance(instance, algorithms);

  ASSERT_EQ(results.reports.size(), algorithms.size());
  double min_cost = 1e18, min_work = 1e18;
  for (std::size_t i = 0; i < algorithms.size(); ++i) {
    EXPECT_GE(results.relative_cost[i], 1.0 - 1e-12);
    EXPECT_GE(results.relative_work[i], 1.0 - 1e-12);
    min_cost = std::min(min_cost, results.relative_cost[i]);
    min_work = std::min(min_work, results.relative_work[i]);
  }
  EXPECT_NEAR(min_cost, 1.0, 1e-12);  // someone achieves the best
  EXPECT_NEAR(min_work, 1.0, 1e-12);
}

TEST(Experiment, SummaryAggregatesAcrossInstances) {
  const auto part = blocks(10, 5, 25);
  std::vector<Instance> instances;
  instances.push_back({"a", platform::hetero_memory(), part});
  instances.push_back({"b", platform::hetero_compute(), part});
  const std::vector<Algorithm> algorithms = {"Het",
                                             "BMM"};
  const auto results = run_experiment(instances, algorithms);
  const auto summaries = summarize(results, algorithms);
  ASSERT_EQ(summaries.size(), 2u);
  EXPECT_EQ(summaries[0].label, "Het");
  EXPECT_EQ(summaries[0].relative_cost.count(), 2u);
  EXPECT_EQ(summaries[1].relative_work.count(), 2u);
  EXPECT_GE(summaries[1].relative_cost.mean(), 1.0);
}

TEST(Experiment, TablesHaveOneRowPerInstance) {
  const auto part = blocks(10, 5, 25);
  std::vector<Instance> instances;
  instances.push_back({"row-one", platform::hetero_memory(), part});
  instances.push_back({"row-two", platform::hetero_links(), part});
  const std::vector<Algorithm> algorithms = {"Het",
                                             "ODDOML"};
  const auto results = run_experiment(instances, algorithms);

  const auto cost = relative_cost_table(results, algorithms);
  const auto work = relative_work_table(results, algorithms);
  const auto enrolled = enrolled_table(results, algorithms);
  EXPECT_EQ(cost.row_count(), 2u);
  EXPECT_EQ(work.row_count(), 2u);
  EXPECT_EQ(enrolled.row_count(), 2u);
  const std::string rendered = cost.render();
  EXPECT_NE(rendered.find("row-one"), std::string::npos);
  EXPECT_NE(rendered.find("ODDOML"), std::string::npos);
}

// The acceptance-critical determinism property of the parallel pipeline:
// a >= 20-instance grid fanned across threads produces tables
// bit-identical to the serial path.
TEST(Experiment, ParallelMatchesSerialBitIdentical) {
  std::vector<Instance> instances;
  const std::vector<platform::Platform> platforms = {
      platform::hetero_memory(), platform::hetero_links(),
      platform::hetero_compute(), platform::fully_hetero(2.0),
      platform::fully_hetero(4.0)};
  for (std::size_t p = 0; p < platforms.size(); ++p) {
    for (const std::size_t s : {16u, 20u, 24u, 28u}) {
      std::string name = "p";
      name += std::to_string(p);
      name += "-s";
      name += std::to_string(s);
      instances.push_back({std::move(name), platforms[p], blocks(8, 4, s)});
    }
  }
  ASSERT_GE(instances.size(), 20u);
  const auto algorithms = all_algorithms();

  ExperimentOptions serial;
  serial.threads = 1;
  ExperimentOptions parallel;
  parallel.threads = 4;
  const auto serial_results = run_experiment(instances, algorithms, serial);
  const auto parallel_results =
      run_experiment(instances, algorithms, parallel);

  ASSERT_EQ(serial_results.size(), parallel_results.size());
  for (std::size_t i = 0; i < serial_results.size(); ++i) {
    const InstanceResults& a = serial_results[i];
    const InstanceResults& b = parallel_results[i];
    EXPECT_EQ(a.instance_name, b.instance_name);
    ASSERT_EQ(a.reports.size(), b.reports.size());
    EXPECT_EQ(a.best_makespan, b.best_makespan);  // bit-identical
    EXPECT_EQ(a.best_work, b.best_work);
    for (std::size_t j = 0; j < a.reports.size(); ++j) {
      EXPECT_EQ(a.reports[j].result.makespan, b.reports[j].result.makespan);
      EXPECT_EQ(a.reports[j].result.comm_blocks,
                b.reports[j].result.comm_blocks);
      EXPECT_EQ(a.relative_cost[j], b.relative_cost[j]);
      EXPECT_EQ(a.relative_work[j], b.relative_work[j]);
    }
  }
  // The rendered paper tables agree character for character.
  EXPECT_EQ(relative_cost_table(serial_results, algorithms).render(),
            relative_cost_table(parallel_results, algorithms).render());
  EXPECT_EQ(relative_work_table(serial_results, algorithms).render(),
            relative_work_table(parallel_results, algorithms).render());
}

TEST(Experiment, FailedCellIsCapturedNotFatal) {
  const auto part = blocks(10, 5, 25);
  std::vector<Instance> instances;
  instances.push_back({"ok", platform::hetero_memory(), part});
  // "NoSuchAlgorithm" fails inside its cell; the grid must survive with
  // the error captured and the healthy cells normalized as usual.
  const std::vector<Algorithm> algorithms = {"Het", "NoSuchAlgorithm",
                                             "ODDOML"};
  const auto results = run_experiment(instances, algorithms);
  ASSERT_EQ(results.size(), 1u);
  const InstanceResults& row = results.front();
  ASSERT_EQ(row.reports.size(), 3u);
  EXPECT_TRUE(row.cell_ok(0));
  EXPECT_FALSE(row.cell_ok(1));
  EXPECT_TRUE(row.cell_ok(2));
  EXPECT_NE(row.errors[1].find("NoSuchAlgorithm"), std::string::npos);
  EXPECT_TRUE(std::isinf(row.relative_cost[1]));
  EXPECT_GE(row.relative_cost[0], 1.0 - 1e-12);
  EXPECT_GE(row.relative_cost[2], 1.0 - 1e-12);
  // Summaries skip the failed cell instead of averaging infinities.
  const auto summaries = summarize(results, algorithms);
  EXPECT_EQ(summaries[1].relative_cost.count(), 0u);
  EXPECT_EQ(summaries[0].relative_cost.count(), 1u);
}

}  // namespace
}  // namespace hmxp::core
