// Tests for the core facade: registry, run reports, experiment harness.
#include <gtest/gtest.h>

#include "core/experiment.hpp"
#include "platform/generator.hpp"

namespace hmxp::core {
namespace {

matrix::Partition blocks(std::size_t r, std::size_t t, std::size_t s) {
  return matrix::Partition::from_blocks(r, t, s, 80);
}

TEST(Registry, SevenAlgorithmsRoundTripNames) {
  const auto& algorithms = all_algorithms();
  ASSERT_EQ(algorithms.size(), 7u);
  for (const Algorithm algorithm : algorithms) {
    EXPECT_EQ(algorithm_from_name(algorithm_name(algorithm)), algorithm);
  }
  EXPECT_THROW(algorithm_from_name("NotAnAlgorithm"), std::invalid_argument);
}

TEST(RunReport, BoundsAndMetadata) {
  const platform::Platform plat = platform::hetero_memory();
  const auto part = blocks(15, 8, 40);
  const RunReport report = run_algorithm(Algorithm::kHet, plat, part);
  EXPECT_EQ(report.algorithm_label, "Het");
  ASSERT_TRUE(report.het_variant.has_value());
  // The steady-state LP is an upper bound on achieved throughput.
  EXPECT_GT(report.steady_state_bound, 0.0);
  EXPECT_GE(report.bound_over_achieved, 1.0);
  EXPECT_GE(report.selection_wall_seconds, 0.0);
}

TEST(RunReport, NonHetHasNoVariant) {
  const platform::Platform plat = platform::hetero_memory();
  const auto part = blocks(10, 5, 25);
  const RunReport report = run_algorithm(Algorithm::kBmm, plat, part);
  EXPECT_FALSE(report.het_variant.has_value());
}

TEST(Experiment, RelativeMetricsNormalized) {
  const auto part = blocks(15, 8, 40);
  const Instance instance{"test", platform::hetero_memory(), part};
  const auto algorithms = all_algorithms();
  const InstanceResults results = run_instance(instance, algorithms);

  ASSERT_EQ(results.reports.size(), algorithms.size());
  double min_cost = 1e18, min_work = 1e18;
  for (std::size_t i = 0; i < algorithms.size(); ++i) {
    EXPECT_GE(results.relative_cost[i], 1.0 - 1e-12);
    EXPECT_GE(results.relative_work[i], 1.0 - 1e-12);
    min_cost = std::min(min_cost, results.relative_cost[i]);
    min_work = std::min(min_work, results.relative_work[i]);
  }
  EXPECT_NEAR(min_cost, 1.0, 1e-12);  // someone achieves the best
  EXPECT_NEAR(min_work, 1.0, 1e-12);
}

TEST(Experiment, SummaryAggregatesAcrossInstances) {
  const auto part = blocks(10, 5, 25);
  std::vector<Instance> instances;
  instances.push_back({"a", platform::hetero_memory(), part});
  instances.push_back({"b", platform::hetero_compute(), part});
  const std::vector<Algorithm> algorithms = {Algorithm::kHet,
                                             Algorithm::kBmm};
  const auto results = run_experiment(instances, algorithms);
  const auto summaries = summarize(results, algorithms);
  ASSERT_EQ(summaries.size(), 2u);
  EXPECT_EQ(summaries[0].label, "Het");
  EXPECT_EQ(summaries[0].relative_cost.count(), 2u);
  EXPECT_EQ(summaries[1].relative_work.count(), 2u);
  EXPECT_GE(summaries[1].relative_cost.mean(), 1.0);
}

TEST(Experiment, TablesHaveOneRowPerInstance) {
  const auto part = blocks(10, 5, 25);
  std::vector<Instance> instances;
  instances.push_back({"row-one", platform::hetero_memory(), part});
  instances.push_back({"row-two", platform::hetero_links(), part});
  const std::vector<Algorithm> algorithms = {Algorithm::kHet,
                                             Algorithm::kOddoml};
  const auto results = run_experiment(instances, algorithms);

  const auto cost = relative_cost_table(results, algorithms);
  const auto work = relative_work_table(results, algorithms);
  const auto enrolled = enrolled_table(results, algorithms);
  EXPECT_EQ(cost.row_count(), 2u);
  EXPECT_EQ(work.row_count(), 2u);
  EXPECT_EQ(enrolled.row_count(), 2u);
  const std::string rendered = cost.render();
  EXPECT_NE(rendered.find("row-one"), std::string::npos);
  EXPECT_NE(rendered.find("ODDOML"), std::string::npos);
}

}  // namespace
}  // namespace hmxp::core
