// Fault-tolerance stress suite: the unreliable-platform scenario on
// both execution backends.
//
//   * engine-level failure semantics: a failed worker's in-flight chunk
//     returns to the pending set, its projections go infeasible, and
//     the same blocks can be re-assigned to a survivor;
//   * orphan re-planning: a chunk sized for a big worker splits to fit
//     a small survivor's memory, covering exactly the same rectangle;
//   * the deterministic stress matrix: every FT-* scheduler x
//     {sim, online} backend x {0, 1, 2} injected failures completes
//     with every C block covered exactly once (updates == r*s*t,
//     finalize's coverage checks), and on the online backend the
//     recovered C equals the fault-free C BIT FOR BIT -- re-assignment
//     re-runs the identical ascending-k accumulation, so not even the
//     last ulp may differ;
//   * non-fault-tolerant policies abort cleanly on the same faults
//     instead of producing a wrong product;
//   * calibrated min-min beats its uncalibrated counterpart's makespan
//     under a 2x mid-run slowdown (the adaptive-scheduling payoff).
#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <cmath>
#include <memory>
#include <stdexcept>
#include <string>
#include <tuple>
#include <vector>

#include "core/run.hpp"
#include "runtime/executor.hpp"
#include "sched/fault_tolerant.hpp"
#include "sched/min_min.hpp"
#include "sched/registry.hpp"
#include "sim/engine.hpp"
#include "testing_support.hpp"
#include "util/rng.hpp"

namespace hmxp {
namespace {

matrix::Partition stress_partition() {
  return matrix::Partition(40, 48, 64, 8);  // r=5, t=6, s=8
}
constexpr model::BlockCount kStressUpdates = 5 * 8 * 6;

platform::Platform stress_platform() {
  std::vector<platform::WorkerSpec> specs = {
      {0.010, 0.0020, 30, "w0"},
      {0.008, 0.0015, 60, "w1"},
      {0.012, 0.0010, 140, "w2"},
      {0.010, 0.0025, 40, "w3"},
  };
  return platform::Platform("unreliable", specs);
}

std::vector<std::string> ft_names() {
  std::vector<std::string> names;
  for (const std::string& name : sched::Registry::instance().names())
    if (name.rfind("FT-", 0) == 0) names.push_back(name);
  return names;
}

matrix::Matrix random_matrix(std::size_t rows, std::size_t cols,
                             std::uint64_t seed) {
  util::Rng rng(seed);
  return matrix::Matrix::random(rows, cols, rng);
}

// ---- engine-level failure semantics ----------------------------------------

TEST(EngineFaults, FailWorkerReturnsChunkToPendingSet) {
  const auto plat = stress_platform();
  const auto part = stress_partition();
  sim::Engine engine(plat, part);

  const auto plan = sim::make_double_buffered_chunk({0, 2, 0, 2}, part.t());
  engine.execute(sim::Decision::send_chunk(0, plan));
  engine.execute(sim::Decision::send_operands(0));
  const model::BlockCount total =
      static_cast<model::BlockCount>(part.c_blocks());
  EXPECT_EQ(engine.unassigned_blocks(), total - 4);
  EXPECT_GT(engine.updates_total(), 0);

  engine.fail_worker(0);
  EXPECT_FALSE(engine.alive(0));
  EXPECT_EQ(engine.alive_count(), plat.size() - 1);
  // Blocks back in the pending set, enabled updates rolled back.
  EXPECT_EQ(engine.unassigned_blocks(), total);
  EXPECT_EQ(engine.updates_total(), 0);
  EXPECT_EQ(engine.progress(0).chunks_lost, 1);
  // Every further communication with the dead worker is infeasible ...
  for (const auto kind : {sim::CommKind::kSendC, sim::CommKind::kSendAB,
                          sim::CommKind::kRecvC})
    EXPECT_TRUE(std::isinf(engine.earliest_start(0, kind)));
  EXPECT_THROW(engine.execute(sim::Decision::send_operands(0)),
               std::logic_error);
  // ... and a survivor may adopt the very same blocks.
  engine.execute(sim::Decision::send_chunk(2, plan));
  EXPECT_EQ(engine.unassigned_blocks(), total - 4);
  // fail_worker is idempotent.
  engine.fail_worker(0);
  EXPECT_EQ(engine.alive_count(), plat.size() - 1);
}

TEST(EngineFaults, SnapshotRestoreRewindsFailure) {
  const auto plat = stress_platform();
  const auto part = stress_partition();
  platform::FaultSchedule faults;
  faults.add(1, 0.0);  // applies at the first decision boundary
  sim::Engine engine(sim::InstanceContext::make(plat, part, {}, faults),
                     /*record_trace=*/false);

  const sim::EngineState before = engine.snapshot();
  const auto plan = sim::make_double_buffered_chunk({0, 1, 0, 1}, part.t());
  engine.execute(sim::Decision::send_chunk(0, plan));
  EXPECT_FALSE(engine.alive(1));  // the scheduled fault fired

  engine.restore(before);
  EXPECT_TRUE(engine.alive(1));  // rewound, will re-fire deterministically
  engine.execute(sim::Decision::send_chunk(0, plan));
  EXPECT_FALSE(engine.alive(1));
}

// ---- orphan re-planning -----------------------------------------------------

TEST(FaultTolerant, ReplanSplitsChunksToFitSmallerMemory) {
  const auto big = sim::make_double_buffered_chunk({0, 6, 0, 6}, 7);
  ASSERT_GT(big.peak_buffers(), 40);

  const auto pieces = sched::replan_for_memory(big, 40);
  ASSERT_GT(pieces.size(), 1u);
  std::size_t covered = 0;
  for (const sim::ChunkPlan& piece : pieces) {
    EXPECT_LE(piece.peak_buffers(), 40);
    EXPECT_EQ(piece.steps.size(), 7u);  // k-step structure preserved
    EXPECT_TRUE(big.rect.i0 <= piece.rect.i0 && piece.rect.i1 <= big.rect.i1);
    EXPECT_TRUE(big.rect.j0 <= piece.rect.j0 && piece.rect.j1 <= big.rect.j1);
    covered += piece.rect.count();
  }
  for (std::size_t a = 0; a < pieces.size(); ++a)
    for (std::size_t b = a + 1; b < pieces.size(); ++b)
      EXPECT_FALSE(pieces[a].rect.overlaps(pieces[b].rect));
  EXPECT_EQ(covered, big.rect.count());  // exact cover, no overlap

  // A plan that already fits passes through untouched.
  const auto pass = sched::replan_for_memory(big, 1000);
  ASSERT_EQ(pass.size(), 1u);
  EXPECT_EQ(pass[0].rect, big.rect);
}

// ---- stress matrix: simulator backend ---------------------------------------

class FtSimStress
    : public ::testing::TestWithParam<std::tuple<std::string, int>> {};

TEST_P(FtSimStress, RecoversWithFullCoverage) {
  const auto& [name, failures] = GetParam();
  const auto plat = stress_platform();
  const auto part = stress_partition();
  sched::Registry& registry = sched::Registry::instance();

  auto baseline = registry.make(name, plat, part);
  const sim::RunResult fault_free = sim::simulate(*baseline, plat, part);
  EXPECT_EQ(fault_free.workers_failed, 0);
  EXPECT_EQ(fault_free.updates, kStressUpdates);

  platform::FaultSchedule faults;
  if (failures >= 1) faults.add(1, fault_free.makespan * 0.30);
  if (failures >= 2) faults.add(2, fault_free.makespan * 0.55);

  auto scheduler = registry.make(name, plat, part);
  const sim::RunResult result = sim::simulate(
      *scheduler, sim::InstanceContext::make(plat, part, {}, faults));
  // finalize() inside simulate already proved exact coverage: every
  // block assigned, computed and returned exactly once.
  EXPECT_EQ(result.workers_failed, failures);
  EXPECT_EQ(result.updates, kStressUpdates);
  EXPECT_GE(result.makespan, fault_free.makespan - 1e-9);
  EXPECT_GT(result.makespan, 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, FtSimStress,
    ::testing::Combine(::testing::ValuesIn(ft_names()),
                       ::testing::Values(0, 1, 2)),
    [](const auto& info) {
      return testing::param_safe(std::get<0>(info.param)) + "_kill" +
             std::to_string(std::get<1>(info.param));
    });

TEST(FtSimStress, NonFaultTolerantPolicyCannotRecover) {
  const auto plat = stress_platform();
  const auto part = stress_partition();
  sched::Registry& registry = sched::Registry::instance();

  auto baseline = registry.make("ODDOML", plat, part);
  const sim::RunResult fault_free = sim::simulate(*baseline, plat, part);

  platform::FaultSchedule faults;
  faults.add(1, fault_free.makespan * 0.30);
  auto scheduler = registry.make("ODDOML", plat, part);
  // The lost chunk has no way back into a plain policy's carve: the run
  // stalls with work remaining and the invariant check aborts it --
  // loudly, never as a silently wrong product.
  EXPECT_THROW(
      sim::simulate(*scheduler,
                    sim::InstanceContext::make(plat, part, {}, faults)),
      std::logic_error);
}

// ---- stress matrix: online backend ------------------------------------------

class FtOnlineStress
    : public ::testing::TestWithParam<std::tuple<std::string, int>> {};

TEST_P(FtOnlineStress, RecoveredCMatchesFaultFreeCBitForBit) {
  const auto& [name, failures] = GetParam();
  const auto plat = stress_platform();
  const auto part = stress_partition();
  sched::Registry& registry = sched::Registry::instance();

  const auto a = random_matrix(part.n_a(), part.n_ab(), 11);
  const auto b = random_matrix(part.n_ab(), part.n_b(), 12);
  const auto c0 = random_matrix(part.n_a(), part.n_b(), 13);

  // Fault-free reference product on the same data.
  matrix::Matrix c_reference = c0;
  {
    auto scheduler = registry.make(name, plat, part);
    const runtime::ExecutorReport report = runtime::execute_online(
        *scheduler, plat, part, a, b, c_reference, {});
    ASSERT_TRUE(report.verified);
    ASSERT_EQ(report.workers_failed, 0);
  }

  // The same run with {0, 1, 2} injected kills. Each kill fires at a
  // fixed point of a worker's OWN message stream (its 2nd operand
  // step), so the trigger is independent of thread interleaving; which
  // workers claim the kill slots may vary with scheduling, but every
  // slot is always claimed -- any scheduler hands at least `failures`+1
  // workers a chunk of >= 2 steps once re-assignment kicks in -- and
  // the invariants below hold for any victim set.
  matrix::Matrix c_faulty = c0;
  struct KillPlan {
    std::array<std::atomic<int>, 4> steps{};
    std::atomic<int> slots{0};
  };
  auto plan = std::make_shared<KillPlan>();
  plan->slots = failures;
  runtime::ExecutorOptions options;
  options.tolerate_faults = true;
  options.fault_hook = [plan](int worker, std::size_t) {
    const int seen =
        1 + plan->steps[static_cast<std::size_t>(worker)].fetch_add(1);
    if (seen == 2 && plan->slots.fetch_sub(1) > 0)
      throw std::runtime_error("injected kill: worker " +
                               std::to_string(worker));
  };
  auto scheduler = registry.make(name, plat, part);
  const runtime::ExecutorReport report = runtime::execute_online(
      *scheduler, plat, part, a, b, c_faulty, options);

  EXPECT_TRUE(report.verified);
  EXPECT_EQ(report.workers_failed, failures);
  EXPECT_EQ(report.result.workers_failed, failures);
  // No chunk lost or double-applied: the mirror's bookkeeping closed at
  // exactly r*s*t effective updates (real updates may exceed it by the
  // recomputed lost work) ...
  EXPECT_EQ(report.result.updates, kStressUpdates);
  EXPECT_GE(report.updates_performed,
            static_cast<std::size_t>(kStressUpdates));
  // ... and the recovered product matches the fault-free one. Under
  // the paper's layout (one k per step) re-assignment repeats the same
  // per-element accumulation bit for bit, whoever adopts the blocks.
  // Toledo's k-grouping is OWNER-dependent (beta_i steps), and the
  // kernel folds each step's panel sum into C as one rounded add, so a
  // re-owned block may reassociate the k sum: FT-BMM is held to a
  // few-ulp bound instead of bitwise equality.
  const double tolerance = name == "FT-BMM" ? 1e-12 : 0.0;
  EXPECT_LE(matrix::Matrix::max_abs_diff(c_faulty, c_reference), tolerance);
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, FtOnlineStress,
    ::testing::Combine(::testing::ValuesIn(ft_names()),
                       ::testing::Values(0, 1, 2)),
    [](const auto& info) {
      return testing::param_safe(std::get<0>(info.param)) + "_kill" +
             std::to_string(std::get<1>(info.param));
    });

// ---- the calibration payoff -------------------------------------------------

TEST(Calibration, CalibratedMinMinBeatsStaticUnderMidRunSlowdown) {
  // Compute-bound instance: four equal workers, then one of them slows
  // 2x a quarter into the run. Static min-min keeps trusting the stale
  // w_i and overloads the slowed worker; the calibrated variant watches
  // the observed per-step costs drift and shifts work to the others.
  const auto plat = platform::Platform::homogeneous(4, 0.001, 0.02, 40);
  const auto part = matrix::Partition(80, 64, 96, 8);  // r=10, t=8, s=12

  auto probe = sched::make_ommoml(plat, part);
  const sim::RunResult fault_free = sim::simulate(probe, plat, part);

  platform::SlowdownSchedule drift;
  drift.add(/*worker=*/0, fault_free.makespan * 0.25, /*factor=*/2.0);

  auto uncalibrated = sched::make_ommoml(plat, part);
  const sim::RunResult stale =
      sim::simulate(uncalibrated, plat, part, drift);
  auto calibrated = sched::make_ommoml_calibrated(plat, part);
  const sim::RunResult adaptive =
      sim::simulate(calibrated, plat, part, drift);

  EXPECT_EQ(stale.updates, adaptive.updates);
  EXPECT_LT(adaptive.makespan, stale.makespan);
}

// ---- the unreliable scenario through the core facade ------------------------

TEST(CoreFaults, ExperimentCellRunsUnreliableScenarioOnEitherBackend) {
  const auto plat = stress_platform();
  const auto part = stress_partition();

  auto probe = sched::Registry::instance().make("FT-ODDOML", plat, part);
  const sim::RunResult fault_free = sim::simulate(*probe, plat, part);

  core::SimOptions sim_options;
  sim_options.faults.add(1, fault_free.makespan * 0.4);
  const core::RunReport simulated =
      core::run_algorithm("FT-ODDOML", plat, part, sim_options);
  EXPECT_EQ(simulated.result.workers_failed, 1);
  EXPECT_EQ(simulated.result.updates, kStressUpdates);

  core::OnlineOptions online_options;
  online_options.tolerate_faults = true;
  online_options.faults.add(1, 0.0);  // dies on its first message
  const core::RunReport executed = core::run_algorithm_online(
      "FT-ODDOML", plat, part, online_options);
  EXPECT_TRUE(executed.online_verified);
  EXPECT_EQ(executed.result.workers_failed, 1);
  EXPECT_EQ(executed.result.updates, kStressUpdates);
}

}  // namespace
}  // namespace hmxp
