// GEMM kernel tests: the tiled, packed-SIMD and parallel kernels must
// agree with the naive oracle on arbitrary (including degenerate)
// shapes -- randomized rectangular sweeps, unaligned sub-window views,
// every dispatch tier -- and all kernels must accumulate rather than
// overwrite.
#include <gtest/gtest.h>

#include <thread>
#include <tuple>
#include <vector>

#include "matrix/gemm.hpp"
#include "matrix/kernel_dispatch.hpp"
#include "matrix/tuning.hpp"
#include "util/rng.hpp"

namespace hmxp::matrix {
namespace {

Matrix reference_product(const Matrix& a, const Matrix& b, const Matrix& c0) {
  Matrix c = c0;
  gemm_naive(a.view(), b.view(), c.view());
  return c;
}

class GemmShapes
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(GemmShapes, AllKernelsMatchNaive) {
  const auto [m, k, n] = GetParam();
  // Mix the shape into a seed in 64-bit unsigned arithmetic (the int
  // products overflow for the larger shapes, which UBSan rejects).
  util::Rng rng(static_cast<std::uint64_t>(m) * 73856093u ^
                static_cast<std::uint64_t>(k) * 19349663u ^
                static_cast<std::uint64_t>(n) * 83492791u);
  const Matrix a = Matrix::random(static_cast<std::size_t>(m),
                                  static_cast<std::size_t>(k), rng);
  const Matrix b = Matrix::random(static_cast<std::size_t>(k),
                                  static_cast<std::size_t>(n), rng);
  const Matrix c0 = Matrix::random(static_cast<std::size_t>(m),
                                   static_cast<std::size_t>(n), rng);
  const Matrix expected = reference_product(a, b, c0);

  Matrix tiled = c0;
  gemm_tiled(a.view(), b.view(), tiled.view());
  EXPECT_LT(Matrix::max_abs_diff(tiled, expected), 1e-11);

  Matrix simd = c0;
  gemm_simd(a.view(), b.view(), simd.view());
  EXPECT_LT(Matrix::max_abs_diff(simd, expected), 1e-11);

  Matrix parallel = c0;
  gemm_parallel(a.view(), b.view(), parallel.view(), 3);
  EXPECT_LT(Matrix::max_abs_diff(parallel, expected), 1e-11);
}

INSTANTIATE_TEST_SUITE_P(
    ShapeSweep, GemmShapes,
    ::testing::Values(std::make_tuple(1, 1, 1), std::make_tuple(1, 7, 1),
                      std::make_tuple(3, 1, 5), std::make_tuple(4, 4, 4),
                      std::make_tuple(5, 3, 2), std::make_tuple(16, 16, 16),
                      std::make_tuple(17, 13, 11), std::make_tuple(64, 64, 64),
                      std::make_tuple(65, 64, 63), std::make_tuple(80, 80, 80),
                      std::make_tuple(100, 128, 96),
                      std::make_tuple(33, 129, 65)));

TEST(Gemm, AccumulatesIntoC) {
  // C starts at identity * 10; product adds on top.
  const Matrix a = Matrix::identity(3);
  Matrix b(3, 3, 1.0);
  Matrix c(3, 3, 10.0);
  gemm_tiled(a.view(), b.view(), c.view());
  for (std::size_t i = 0; i < 3; ++i)
    for (std::size_t j = 0; j < 3; ++j)
      EXPECT_DOUBLE_EQ(c.at(i, j), 11.0);
}

TEST(Gemm, IdentityLeavesOperandIntact) {
  util::Rng rng(3);
  const Matrix b = Matrix::random(5, 4, rng);
  Matrix c(5, 4, 0.0);
  gemm_tiled(Matrix::identity(5).view(), b.view(), c.view());
  EXPECT_LT(Matrix::max_abs_diff(c, b), 1e-14);
}

TEST(Gemm, ViewsWithStride) {
  // Multiply windows of larger matrices: strides != cols.
  util::Rng rng(17);
  Matrix big_a = Matrix::random(10, 10, rng);
  Matrix big_b = Matrix::random(10, 10, rng);
  Matrix big_c(10, 10, 0.0);

  Matrix small_a(4, 3), small_b(3, 5), small_c(4, 5, 0.0);
  copy_into(big_a.window(2, 1, 4, 3), small_a.view());
  copy_into(big_b.window(0, 4, 3, 5), small_b.view());

  gemm_tiled(big_a.window(2, 1, 4, 3), big_b.window(0, 4, 3, 5),
             big_c.window(5, 5, 4, 5));
  gemm_naive(small_a.view(), small_b.view(), small_c.view());

  Matrix extracted(4, 5);
  copy_into(big_c.window(5, 5, 4, 5), extracted.view());
  EXPECT_LT(Matrix::max_abs_diff(extracted, small_c), 1e-12);
}

TEST(Gemm, ShapeMismatchThrows) {
  Matrix a(2, 3), b(4, 2), c(2, 2);
  EXPECT_THROW(gemm_tiled(a.view(), b.view(), c.view()),
               std::invalid_argument);
  Matrix b2(3, 2), c_bad(3, 2);
  EXPECT_THROW(gemm_tiled(a.view(), b2.view(), c_bad.view()),
               std::invalid_argument);
}

TEST(Gemm, ParallelThreadCountVariants) {
  util::Rng rng(23);
  const Matrix a = Matrix::random(37, 29, rng);
  const Matrix b = Matrix::random(29, 41, rng);
  Matrix expected(37, 41, 0.0);
  gemm_naive(a.view(), b.view(), expected.view());
  for (const int threads : {0, 1, 2, 7, 64}) {
    Matrix c(37, 41, 0.0);
    gemm_parallel(a.view(), b.view(), c.view(), threads);
    EXPECT_LT(Matrix::max_abs_diff(c, expected), 1e-11) << threads;
  }
}

TEST(Gemm, WholeMatrixConvenience) {
  util::Rng rng(31);
  const Matrix a = Matrix::random(6, 7, rng);
  const Matrix b = Matrix::random(7, 8, rng);
  Matrix c(6, 8, 0.0);
  Matrix expected = c;
  gemm(a, b, c);
  gemm_naive(a.view(), b.view(), expected.view());
  EXPECT_LT(Matrix::max_abs_diff(c, expected), 1e-12);
}

TEST(Gemm, FlopCount) {
  EXPECT_DOUBLE_EQ(gemm_flops(80, 80, 80), 2.0 * 80 * 80 * 80);
  EXPECT_DOUBLE_EQ(gemm_flops(0, 5, 5), 0.0);
}

// ---- randomized kernel-equivalence sweep ------------------------------------

struct Shape {
  std::size_t m, k, n;
};

/// ~50 rectangular shapes: forced degenerate rows (1 x n, n x 1, 1-deep
/// inner dimension) plus random draws spanning micro-tile remainders.
std::vector<Shape> sweep_shapes() {
  std::vector<Shape> shapes = {
      {1, 1, 1},   {1, 37, 1},  {1, 1, 129},  {129, 1, 1},  {1, 200, 9},
      {200, 5, 1}, {2, 256, 2}, {131, 1, 67}, {1, 131, 67}, {67, 131, 1},
  };
  util::Rng rng(0xC0FFEE);
  while (shapes.size() < 50) {
    shapes.push_back({static_cast<std::size_t>(rng.uniform_int(1, 150)),
                      static_cast<std::size_t>(rng.uniform_int(1, 300)),
                      static_cast<std::size_t>(rng.uniform_int(1, 150))});
  }
  return shapes;
}

TEST(Gemm, RandomizedKernelEquivalenceSweep) {
  util::Rng rng(99);
  for (const Shape& shape : sweep_shapes()) {
    const Matrix a = Matrix::random(shape.m, shape.k, rng);
    const Matrix b = Matrix::random(shape.k, shape.n, rng);
    const Matrix c0 = Matrix::random(shape.m, shape.n, rng);
    const Matrix expected = reference_product(a, b, c0);
    const std::string label = std::to_string(shape.m) + "x" +
                              std::to_string(shape.k) + "x" +
                              std::to_string(shape.n);

    Matrix tiled = c0;
    gemm_tiled(a.view(), b.view(), tiled.view());
    EXPECT_LT(Matrix::max_abs_diff(tiled, expected), 1e-10) << label;

    Matrix simd = c0;
    gemm_simd(a.view(), b.view(), simd.view());
    EXPECT_LT(Matrix::max_abs_diff(simd, expected), 1e-10) << label;

    Matrix parallel = c0;
    gemm_parallel(a.view(), b.view(), parallel.view(), 4);
    EXPECT_LT(Matrix::max_abs_diff(parallel, expected), 1e-10) << label;
  }
}

TEST(Gemm, RandomizedUnalignedSubWindowSweep) {
  // Operands live at odd offsets inside larger matrices, so every view
  // has stride != cols and deliberately misaligned row starts -- the
  // packed path must not depend on operand alignment.
  util::Rng rng(77);
  for (int trial = 0; trial < 12; ++trial) {
    const auto m = static_cast<std::size_t>(rng.uniform_int(1, 60));
    const auto k = static_cast<std::size_t>(rng.uniform_int(1, 80));
    const auto n = static_cast<std::size_t>(rng.uniform_int(1, 60));
    Matrix big_a = Matrix::random(m + 5, k + 3, rng);
    Matrix big_b = Matrix::random(k + 7, n + 9, rng);
    Matrix big_c = Matrix::random(m + 3, n + 5, rng);
    const ConstView a = big_a.window(3, 1, m, k);
    const ConstView b = big_b.window(5, 3, k, n);

    Matrix small_a(m, k), small_b(k, n), expected(m, n);
    copy_into(a, small_a.view());
    copy_into(b, small_b.view());
    copy_into(big_c.window(1, 3, m, n), expected.view());
    gemm_naive(small_a.view(), small_b.view(), expected.view());

    Matrix c_simd = big_c;
    gemm_simd(a, b, c_simd.window(1, 3, m, n));
    Matrix got(m, n);
    copy_into(c_simd.window(1, 3, m, n), got.view());
    EXPECT_LT(Matrix::max_abs_diff(got, expected), 1e-10) << trial;

    Matrix c_par = big_c;
    gemm_parallel(a, b, c_par.window(1, 3, m, n), 3);
    copy_into(c_par.window(1, 3, m, n), got.view());
    EXPECT_LT(Matrix::max_abs_diff(got, expected), 1e-10) << trial;
  }
}

// ---- dispatch tiers ---------------------------------------------------------

TEST(Gemm, KernelTierNamesRoundTrip) {
  EXPECT_EQ(parse_kernel_tier("naive"), KernelTier::kNaive);
  EXPECT_EQ(parse_kernel_tier("Tiled"), KernelTier::kTiled);
  EXPECT_EQ(parse_kernel_tier("SIMD"), KernelTier::kPacked);
  EXPECT_EQ(parse_kernel_tier("atlas"), std::nullopt);
  for (const KernelTier tier :
       {KernelTier::kNaive, KernelTier::kTiled, KernelTier::kPacked})
    EXPECT_EQ(parse_kernel_tier(kernel_tier_name(tier)), tier);
}

TEST(Gemm, ForcedTierDrivesAutoDispatch) {
  util::Rng rng(41);
  const Matrix a = Matrix::random(33, 21, rng);
  const Matrix b = Matrix::random(21, 29, rng);
  Matrix expected(33, 29, 0.0);
  gemm_naive(a.view(), b.view(), expected.view());

  for (const KernelTier tier :
       {KernelTier::kNaive, KernelTier::kTiled, KernelTier::kPacked}) {
    force_kernel_tier(tier);
    EXPECT_EQ(active_kernel_tier(), tier);
    Matrix c(33, 29, 0.0);
    gemm_auto(a.view(), b.view(), c.view());
    EXPECT_LT(Matrix::max_abs_diff(c, expected), 1e-11)
        << kernel_tier_name(tier);
    Matrix c_par(33, 29, 0.0);
    gemm_parallel(a.view(), b.view(), c_par.view(), 2);
    EXPECT_LT(Matrix::max_abs_diff(c_par, expected), 1e-11)
        << kernel_tier_name(tier);
  }
  force_kernel_tier(std::nullopt);
}

TEST(Gemm, PortableMicroKernelMatchesAvx2Path) {
  // On an AVX2 host this compares the two micro-kernel implementations;
  // elsewhere both runs take the portable one and trivially agree.
  util::Rng rng(43);
  const Matrix a = Matrix::random(70, 90, rng);
  const Matrix b = Matrix::random(90, 75, rng);
  Matrix expected(70, 75, 0.0);
  gemm_naive(a.view(), b.view(), expected.view());

  force_portable_micro_kernel(true);
  EXPECT_STREQ(packed_kernel_variant(), "portable");
  Matrix portable(70, 75, 0.0);
  gemm_simd(a.view(), b.view(), portable.view());
  force_portable_micro_kernel(false);
  EXPECT_LT(Matrix::max_abs_diff(portable, expected), 1e-10);

  Matrix native(70, 75, 0.0);
  gemm_simd(a.view(), b.view(), native.view());
  EXPECT_LT(Matrix::max_abs_diff(native, expected), 1e-10);
}

// ---- AVX-512 micro-kernel ---------------------------------------------------

TEST(Gemm, Avx512MatchesNaiveOracleOnRandomShapes) {
  if (!cpu_supports_avx512())
    GTEST_SKIP() << "host has no AVX-512F; kernel not executable here";
  util::Rng rng(0x512);
  force_micro_kernel_variant(MicroKernelVariant::kAvx512);
  EXPECT_STREQ(packed_kernel_variant(), "avx512");
  // Randomized rectangular shapes spanning full 8x8 tiles, ragged
  // edges, and degenerate rows/columns.
  std::vector<Shape> shapes = {{8, 8, 8},   {64, 64, 64}, {1, 50, 9},
                               {9, 1, 17},  {120, 256, 8}, {7, 7, 7},
                               {129, 33, 65}};
  for (int trial = 0; trial < 20; ++trial)
    shapes.push_back({static_cast<std::size_t>(rng.uniform_int(1, 140)),
                      static_cast<std::size_t>(rng.uniform_int(1, 260)),
                      static_cast<std::size_t>(rng.uniform_int(1, 140))});
  for (const Shape& shape : shapes) {
    const Matrix a = Matrix::random(shape.m, shape.k, rng);
    const Matrix b = Matrix::random(shape.k, shape.n, rng);
    const Matrix c0 = Matrix::random(shape.m, shape.n, rng);
    const Matrix expected = reference_product(a, b, c0);
    Matrix c = c0;
    gemm_simd(a.view(), b.view(), c.view());
    EXPECT_LT(Matrix::max_abs_diff(c, expected), 1e-10)
        << shape.m << "x" << shape.k << "x" << shape.n;
  }
  force_micro_kernel_variant(std::nullopt);
}

TEST(Gemm, Avx512PinRejectedOnIncapableHost) {
  if (cpu_supports_avx512())
    GTEST_SKIP() << "host executes AVX-512; the rejection path is "
                    "exercised on narrower machines";
  EXPECT_THROW(force_micro_kernel_variant(MicroKernelVariant::kAvx512),
               std::invalid_argument);
  EXPECT_THROW(apply_kernel_pin("avx512"), std::invalid_argument);
}

TEST(Gemm, EverySupportedVariantMatchesOracle) {
  util::Rng rng(0xABCD);
  const Matrix a = Matrix::random(77, 130, rng);
  const Matrix b = Matrix::random(130, 91, rng);
  const Matrix c0 = Matrix::random(77, 91, rng);
  const Matrix expected = reference_product(a, b, c0);
  for (const MicroKernelVariant variant :
       {MicroKernelVariant::kPortable, MicroKernelVariant::kAvx2Fma,
        MicroKernelVariant::kAvx512}) {
    if (!micro_kernel_supported(variant)) continue;
    force_micro_kernel_variant(variant);
    EXPECT_STREQ(packed_kernel_variant(),
                 micro_kernel_variant_name(variant));
    Matrix c = c0;
    gemm_simd(a.view(), b.view(), c.view());
    EXPECT_LT(Matrix::max_abs_diff(c, expected), 1e-10)
        << micro_kernel_variant_name(variant);
  }
  force_micro_kernel_variant(std::nullopt);
}

// ---- kernel pins ------------------------------------------------------------

TEST(Gemm, KernelPinParsesTiersAndVariants) {
  // Tier names pin only the tier.
  const auto tiled = parse_kernel_pin("tiled");
  ASSERT_TRUE(tiled.has_value());
  EXPECT_EQ(tiled->tier, KernelTier::kTiled);
  EXPECT_EQ(tiled->variant, std::nullopt);
  // Variant names imply the packed tier.
  for (const char* name : {"portable", "avx2", "AVX2+FMA", "avx512"}) {
    const auto pin = parse_kernel_pin(name);
    ASSERT_TRUE(pin.has_value()) << name;
    EXPECT_EQ(pin->tier, KernelTier::kPacked) << name;
    EXPECT_TRUE(pin->variant.has_value()) << name;
  }
  EXPECT_EQ(parse_kernel_pin("atlas"), std::nullopt);
}

TEST(Gemm, KernelPinErrorListsEveryValidName) {
  // A typo'd pin must name every accepted spelling -- including the
  // avx512 tier -- so the error is self-documenting.
  try {
    apply_kernel_pin("sse9");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& error) {
    const std::string what = error.what();
    for (const char* name :
         {"naive", "tiled", "simd", "portable", "avx2", "avx512"})
      EXPECT_NE(what.find(name), std::string::npos) << name;
  }
}

TEST(Gemm, ApplyKernelPinDrivesDispatch) {
  apply_kernel_pin("tiled");
  EXPECT_EQ(active_kernel_tier(), KernelTier::kTiled);
  EXPECT_EQ(forced_micro_kernel_variant(), std::nullopt);
  apply_kernel_pin("portable");
  EXPECT_EQ(active_kernel_tier(), KernelTier::kPacked);
  EXPECT_STREQ(packed_kernel_variant(), "portable");
  force_kernel_tier(std::nullopt);
  force_micro_kernel_variant(std::nullopt);
}

// ---- runtime blocking parameters --------------------------------------------

TEST(Gemm, ExplicitBlockingEdgeShapes) {
  // Blockings that do NOT divide the problem (ragged final panels in
  // every dimension), plus tall-skinny and short-wide operands, must
  // agree with the oracle bit-for-tolerance.
  util::Rng rng(0xB10C);
  const std::size_t mr = micro_kernel_mr(active_micro_kernel_variant());
  const BlockingParams cases[] = {
      {mr * 1, 4, 8},      // minimal legal blocking
      {mr * 2, 5, 16},     // tiny KC, non-dividing everything
      {mr * 5, 37, 24},    // odd KC
      {mr * 10, 512, 64},  // KC deeper than the problem
  };
  const struct {
    std::size_t m, k, n;
  } shapes[] = {{67, 43, 29}, {611, 13, 5}, {5, 13, 611}, {128, 128, 128}};
  for (const BlockingParams& blocking : cases) {
    for (const auto& shape : shapes) {
      const Matrix a = Matrix::random(shape.m, shape.k, rng);
      const Matrix b = Matrix::random(shape.k, shape.n, rng);
      const Matrix c0 = Matrix::random(shape.m, shape.n, rng);
      const Matrix expected = reference_product(a, b, c0);
      Matrix c = c0;
      gemm_simd_with_blocking(a.view(), b.view(), c.view(), blocking);
      EXPECT_LT(Matrix::max_abs_diff(c, expected), 1e-10)
          << blocking_to_string(blocking) << " @ " << shape.m << "x"
          << shape.k << "x" << shape.n;
    }
  }
}

TEST(Gemm, AbsurdBlockingRejected) {
  const std::size_t mr = micro_kernel_mr(active_micro_kernel_variant());
  const std::size_t nr = micro_kernel_nr(active_micro_kernel_variant());
  util::Rng rng(7);
  const Matrix a = Matrix::random(8, 8, rng);
  const Matrix b = Matrix::random(8, 8, rng);
  Matrix c(8, 8, 0.0);
  const BlockingParams absurd[] = {
      {0, 256, 512},             // zero extent
      {mr + 1, 256, 512},        // MC not a multiple of MR
      {mr, 256, nr + 1},         // NC not a multiple of NR
      {mr, 2, nr},               // KC below the floor
      {mr, 1 << 20, nr},         // KC beyond the ceiling
      {1 << 20, 256, nr},        // MC beyond the ceiling
      {4096, 8192, 16384},       // footprint past 256 MiB
  };
  for (const BlockingParams& params : absurd) {
    EXPECT_THROW(validate_blocking(params, mr, nr), std::invalid_argument)
        << blocking_to_string(params);
    EXPECT_THROW(
        gemm_simd_with_blocking(a.view(), b.view(), c.view(), params),
        std::invalid_argument)
        << blocking_to_string(params);
    EXPECT_THROW(force_blocking(params), std::invalid_argument)
        << blocking_to_string(params);
  }
  // A rejected force leaves no pin behind.
  EXPECT_EQ(forced_blocking(), std::nullopt);
}

TEST(Gemm, ForcedBlockingGovernsPackedPath) {
  util::Rng rng(0xF0);
  const Matrix a = Matrix::random(90, 70, rng);
  const Matrix b = Matrix::random(70, 80, rng);
  const Matrix c0 = Matrix::random(90, 80, rng);
  const Matrix expected = reference_product(a, b, c0);
  force_blocking(BlockingParams{48, 96, 128});
  EXPECT_EQ(active_blocking(), (BlockingParams{48, 96, 128}));
  Matrix c = c0;
  gemm_simd(a.view(), b.view(), c.view());
  EXPECT_LT(Matrix::max_abs_diff(c, expected), 1e-10);
  force_blocking(std::nullopt);
  EXPECT_EQ(forced_blocking(), std::nullopt);
}

TEST(Gemm, PackBuffersGrowOnlyAcrossBlockingChanges) {
  util::Rng rng(0xA110C);
  const Matrix a = Matrix::random(140, 140, rng);
  const Matrix b = Matrix::random(140, 140, rng);
  Matrix c(140, 140, 0.0);
  // Warm up at the LARGEST blocking this test will use.
  gemm_simd_with_blocking(a.view(), b.view(), c.view(),
                          BlockingParams{120, 256, 512});
  const std::size_t warm = pack_buffer_allocations();
  // Repeat runs -- including runs that SHRINK the blocking and then
  // restore it -- must not touch the heap: the buffers are grow-only.
  for (int repeat = 0; repeat < 3; ++repeat) {
    gemm_simd_with_blocking(a.view(), b.view(), c.view(),
                            BlockingParams{120, 256, 512});
    gemm_simd_with_blocking(a.view(), b.view(), c.view(),
                            BlockingParams{24, 64, 64});
    gemm_simd_with_blocking(a.view(), b.view(), c.view(),
                            BlockingParams{48, 128, 256});
  }
  EXPECT_EQ(pack_buffer_allocations(), warm)
      << "steady-state GEMM must perform zero pack-buffer allocation";
}

TEST(Gemm, ConcurrentParallelGemmUnderFreshlyInstalledTuning) {
  // The TSan-covered scenario: force_blocking installs a non-default
  // tuned configuration, then several threads run gemm_parallel (whose
  // helpers share the process-wide pool) concurrently. All results
  // must match the oracle and the blocking reads must not race.
  util::Rng rng(0x7541);
  const Matrix a = Matrix::random(96, 88, rng);
  const Matrix b = Matrix::random(88, 104, rng);
  Matrix expected(96, 104, 0.0);
  gemm_naive(a.view(), b.view(), expected.view());

  force_blocking(BlockingParams{24, 48, 64});
  std::vector<Matrix> results(3, Matrix(96, 104, 0.0));
  {
    std::vector<std::thread> threads;
    threads.reserve(results.size());
    for (Matrix& result : results)
      threads.emplace_back([&a, &b, &result] {
        gemm_parallel(a.view(), b.view(), result.view(), 2);
      });
    for (std::thread& thread : threads) thread.join();
  }
  force_blocking(std::nullopt);
  for (const Matrix& result : results)
    EXPECT_LT(Matrix::max_abs_diff(result, expected), 1e-10);
}

// ---- parallel split degeneracies --------------------------------------------

TEST(Gemm, ParallelTallSkinnyAndShortWide) {
  // The old rows/threads split left trailing threads idle on tall-
  // skinny C and serialized short-wide C entirely; tile work-stealing
  // must both stay correct and split these shapes.
  util::Rng rng(47);
  const struct {
    std::size_t m, k, n;
  } cases[] = {{611, 13, 5}, {5, 13, 611}, {1024, 3, 3}, {2, 500, 2}};
  for (const auto& shape : cases) {
    const Matrix a = Matrix::random(shape.m, shape.k, rng);
    const Matrix b = Matrix::random(shape.k, shape.n, rng);
    Matrix expected(shape.m, shape.n, 0.0);
    gemm_naive(a.view(), b.view(), expected.view());
    for (const int threads : {2, 7, 64}) {
      Matrix c(shape.m, shape.n, 0.0);
      gemm_parallel(a.view(), b.view(), c.view(), threads);
      EXPECT_LT(Matrix::max_abs_diff(c, expected), 1e-10)
          << shape.m << "x" << shape.n << " threads=" << threads;
    }
  }
}

}  // namespace
}  // namespace hmxp::matrix
