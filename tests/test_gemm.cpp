// GEMM kernel tests: the tiled, packed-SIMD and parallel kernels must
// agree with the naive oracle on arbitrary (including degenerate)
// shapes -- randomized rectangular sweeps, unaligned sub-window views,
// every dispatch tier -- and all kernels must accumulate rather than
// overwrite.
#include <gtest/gtest.h>

#include <tuple>
#include <vector>

#include "matrix/gemm.hpp"
#include "matrix/kernel_dispatch.hpp"
#include "util/rng.hpp"

namespace hmxp::matrix {
namespace {

Matrix reference_product(const Matrix& a, const Matrix& b, const Matrix& c0) {
  Matrix c = c0;
  gemm_naive(a.view(), b.view(), c.view());
  return c;
}

class GemmShapes
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(GemmShapes, AllKernelsMatchNaive) {
  const auto [m, k, n] = GetParam();
  // Mix the shape into a seed in 64-bit unsigned arithmetic (the int
  // products overflow for the larger shapes, which UBSan rejects).
  util::Rng rng(static_cast<std::uint64_t>(m) * 73856093u ^
                static_cast<std::uint64_t>(k) * 19349663u ^
                static_cast<std::uint64_t>(n) * 83492791u);
  const Matrix a = Matrix::random(static_cast<std::size_t>(m),
                                  static_cast<std::size_t>(k), rng);
  const Matrix b = Matrix::random(static_cast<std::size_t>(k),
                                  static_cast<std::size_t>(n), rng);
  const Matrix c0 = Matrix::random(static_cast<std::size_t>(m),
                                   static_cast<std::size_t>(n), rng);
  const Matrix expected = reference_product(a, b, c0);

  Matrix tiled = c0;
  gemm_tiled(a.view(), b.view(), tiled.view());
  EXPECT_LT(Matrix::max_abs_diff(tiled, expected), 1e-11);

  Matrix simd = c0;
  gemm_simd(a.view(), b.view(), simd.view());
  EXPECT_LT(Matrix::max_abs_diff(simd, expected), 1e-11);

  Matrix parallel = c0;
  gemm_parallel(a.view(), b.view(), parallel.view(), 3);
  EXPECT_LT(Matrix::max_abs_diff(parallel, expected), 1e-11);
}

INSTANTIATE_TEST_SUITE_P(
    ShapeSweep, GemmShapes,
    ::testing::Values(std::make_tuple(1, 1, 1), std::make_tuple(1, 7, 1),
                      std::make_tuple(3, 1, 5), std::make_tuple(4, 4, 4),
                      std::make_tuple(5, 3, 2), std::make_tuple(16, 16, 16),
                      std::make_tuple(17, 13, 11), std::make_tuple(64, 64, 64),
                      std::make_tuple(65, 64, 63), std::make_tuple(80, 80, 80),
                      std::make_tuple(100, 128, 96),
                      std::make_tuple(33, 129, 65)));

TEST(Gemm, AccumulatesIntoC) {
  // C starts at identity * 10; product adds on top.
  const Matrix a = Matrix::identity(3);
  Matrix b(3, 3, 1.0);
  Matrix c(3, 3, 10.0);
  gemm_tiled(a.view(), b.view(), c.view());
  for (std::size_t i = 0; i < 3; ++i)
    for (std::size_t j = 0; j < 3; ++j)
      EXPECT_DOUBLE_EQ(c.at(i, j), 11.0);
}

TEST(Gemm, IdentityLeavesOperandIntact) {
  util::Rng rng(3);
  const Matrix b = Matrix::random(5, 4, rng);
  Matrix c(5, 4, 0.0);
  gemm_tiled(Matrix::identity(5).view(), b.view(), c.view());
  EXPECT_LT(Matrix::max_abs_diff(c, b), 1e-14);
}

TEST(Gemm, ViewsWithStride) {
  // Multiply windows of larger matrices: strides != cols.
  util::Rng rng(17);
  Matrix big_a = Matrix::random(10, 10, rng);
  Matrix big_b = Matrix::random(10, 10, rng);
  Matrix big_c(10, 10, 0.0);

  Matrix small_a(4, 3), small_b(3, 5), small_c(4, 5, 0.0);
  copy_into(big_a.window(2, 1, 4, 3), small_a.view());
  copy_into(big_b.window(0, 4, 3, 5), small_b.view());

  gemm_tiled(big_a.window(2, 1, 4, 3), big_b.window(0, 4, 3, 5),
             big_c.window(5, 5, 4, 5));
  gemm_naive(small_a.view(), small_b.view(), small_c.view());

  Matrix extracted(4, 5);
  copy_into(big_c.window(5, 5, 4, 5), extracted.view());
  EXPECT_LT(Matrix::max_abs_diff(extracted, small_c), 1e-12);
}

TEST(Gemm, ShapeMismatchThrows) {
  Matrix a(2, 3), b(4, 2), c(2, 2);
  EXPECT_THROW(gemm_tiled(a.view(), b.view(), c.view()),
               std::invalid_argument);
  Matrix b2(3, 2), c_bad(3, 2);
  EXPECT_THROW(gemm_tiled(a.view(), b2.view(), c_bad.view()),
               std::invalid_argument);
}

TEST(Gemm, ParallelThreadCountVariants) {
  util::Rng rng(23);
  const Matrix a = Matrix::random(37, 29, rng);
  const Matrix b = Matrix::random(29, 41, rng);
  Matrix expected(37, 41, 0.0);
  gemm_naive(a.view(), b.view(), expected.view());
  for (const int threads : {0, 1, 2, 7, 64}) {
    Matrix c(37, 41, 0.0);
    gemm_parallel(a.view(), b.view(), c.view(), threads);
    EXPECT_LT(Matrix::max_abs_diff(c, expected), 1e-11) << threads;
  }
}

TEST(Gemm, WholeMatrixConvenience) {
  util::Rng rng(31);
  const Matrix a = Matrix::random(6, 7, rng);
  const Matrix b = Matrix::random(7, 8, rng);
  Matrix c(6, 8, 0.0);
  Matrix expected = c;
  gemm(a, b, c);
  gemm_naive(a.view(), b.view(), expected.view());
  EXPECT_LT(Matrix::max_abs_diff(c, expected), 1e-12);
}

TEST(Gemm, FlopCount) {
  EXPECT_DOUBLE_EQ(gemm_flops(80, 80, 80), 2.0 * 80 * 80 * 80);
  EXPECT_DOUBLE_EQ(gemm_flops(0, 5, 5), 0.0);
}

// ---- randomized kernel-equivalence sweep ------------------------------------

struct Shape {
  std::size_t m, k, n;
};

/// ~50 rectangular shapes: forced degenerate rows (1 x n, n x 1, 1-deep
/// inner dimension) plus random draws spanning micro-tile remainders.
std::vector<Shape> sweep_shapes() {
  std::vector<Shape> shapes = {
      {1, 1, 1},   {1, 37, 1},  {1, 1, 129},  {129, 1, 1},  {1, 200, 9},
      {200, 5, 1}, {2, 256, 2}, {131, 1, 67}, {1, 131, 67}, {67, 131, 1},
  };
  util::Rng rng(0xC0FFEE);
  while (shapes.size() < 50) {
    shapes.push_back({static_cast<std::size_t>(rng.uniform_int(1, 150)),
                      static_cast<std::size_t>(rng.uniform_int(1, 300)),
                      static_cast<std::size_t>(rng.uniform_int(1, 150))});
  }
  return shapes;
}

TEST(Gemm, RandomizedKernelEquivalenceSweep) {
  util::Rng rng(99);
  for (const Shape& shape : sweep_shapes()) {
    const Matrix a = Matrix::random(shape.m, shape.k, rng);
    const Matrix b = Matrix::random(shape.k, shape.n, rng);
    const Matrix c0 = Matrix::random(shape.m, shape.n, rng);
    const Matrix expected = reference_product(a, b, c0);
    const std::string label = std::to_string(shape.m) + "x" +
                              std::to_string(shape.k) + "x" +
                              std::to_string(shape.n);

    Matrix tiled = c0;
    gemm_tiled(a.view(), b.view(), tiled.view());
    EXPECT_LT(Matrix::max_abs_diff(tiled, expected), 1e-10) << label;

    Matrix simd = c0;
    gemm_simd(a.view(), b.view(), simd.view());
    EXPECT_LT(Matrix::max_abs_diff(simd, expected), 1e-10) << label;

    Matrix parallel = c0;
    gemm_parallel(a.view(), b.view(), parallel.view(), 4);
    EXPECT_LT(Matrix::max_abs_diff(parallel, expected), 1e-10) << label;
  }
}

TEST(Gemm, RandomizedUnalignedSubWindowSweep) {
  // Operands live at odd offsets inside larger matrices, so every view
  // has stride != cols and deliberately misaligned row starts -- the
  // packed path must not depend on operand alignment.
  util::Rng rng(77);
  for (int trial = 0; trial < 12; ++trial) {
    const auto m = static_cast<std::size_t>(rng.uniform_int(1, 60));
    const auto k = static_cast<std::size_t>(rng.uniform_int(1, 80));
    const auto n = static_cast<std::size_t>(rng.uniform_int(1, 60));
    Matrix big_a = Matrix::random(m + 5, k + 3, rng);
    Matrix big_b = Matrix::random(k + 7, n + 9, rng);
    Matrix big_c = Matrix::random(m + 3, n + 5, rng);
    const ConstView a = big_a.window(3, 1, m, k);
    const ConstView b = big_b.window(5, 3, k, n);

    Matrix small_a(m, k), small_b(k, n), expected(m, n);
    copy_into(a, small_a.view());
    copy_into(b, small_b.view());
    copy_into(big_c.window(1, 3, m, n), expected.view());
    gemm_naive(small_a.view(), small_b.view(), expected.view());

    Matrix c_simd = big_c;
    gemm_simd(a, b, c_simd.window(1, 3, m, n));
    Matrix got(m, n);
    copy_into(c_simd.window(1, 3, m, n), got.view());
    EXPECT_LT(Matrix::max_abs_diff(got, expected), 1e-10) << trial;

    Matrix c_par = big_c;
    gemm_parallel(a, b, c_par.window(1, 3, m, n), 3);
    copy_into(c_par.window(1, 3, m, n), got.view());
    EXPECT_LT(Matrix::max_abs_diff(got, expected), 1e-10) << trial;
  }
}

// ---- dispatch tiers ---------------------------------------------------------

TEST(Gemm, KernelTierNamesRoundTrip) {
  EXPECT_EQ(parse_kernel_tier("naive"), KernelTier::kNaive);
  EXPECT_EQ(parse_kernel_tier("Tiled"), KernelTier::kTiled);
  EXPECT_EQ(parse_kernel_tier("SIMD"), KernelTier::kPacked);
  EXPECT_EQ(parse_kernel_tier("atlas"), std::nullopt);
  for (const KernelTier tier :
       {KernelTier::kNaive, KernelTier::kTiled, KernelTier::kPacked})
    EXPECT_EQ(parse_kernel_tier(kernel_tier_name(tier)), tier);
}

TEST(Gemm, ForcedTierDrivesAutoDispatch) {
  util::Rng rng(41);
  const Matrix a = Matrix::random(33, 21, rng);
  const Matrix b = Matrix::random(21, 29, rng);
  Matrix expected(33, 29, 0.0);
  gemm_naive(a.view(), b.view(), expected.view());

  for (const KernelTier tier :
       {KernelTier::kNaive, KernelTier::kTiled, KernelTier::kPacked}) {
    force_kernel_tier(tier);
    EXPECT_EQ(active_kernel_tier(), tier);
    Matrix c(33, 29, 0.0);
    gemm_auto(a.view(), b.view(), c.view());
    EXPECT_LT(Matrix::max_abs_diff(c, expected), 1e-11)
        << kernel_tier_name(tier);
    Matrix c_par(33, 29, 0.0);
    gemm_parallel(a.view(), b.view(), c_par.view(), 2);
    EXPECT_LT(Matrix::max_abs_diff(c_par, expected), 1e-11)
        << kernel_tier_name(tier);
  }
  force_kernel_tier(std::nullopt);
}

TEST(Gemm, PortableMicroKernelMatchesAvx2Path) {
  // On an AVX2 host this compares the two micro-kernel implementations;
  // elsewhere both runs take the portable one and trivially agree.
  util::Rng rng(43);
  const Matrix a = Matrix::random(70, 90, rng);
  const Matrix b = Matrix::random(90, 75, rng);
  Matrix expected(70, 75, 0.0);
  gemm_naive(a.view(), b.view(), expected.view());

  force_portable_micro_kernel(true);
  EXPECT_STREQ(packed_kernel_variant(), "portable");
  Matrix portable(70, 75, 0.0);
  gemm_simd(a.view(), b.view(), portable.view());
  force_portable_micro_kernel(false);
  EXPECT_LT(Matrix::max_abs_diff(portable, expected), 1e-10);

  Matrix native(70, 75, 0.0);
  gemm_simd(a.view(), b.view(), native.view());
  EXPECT_LT(Matrix::max_abs_diff(native, expected), 1e-10);
}

// ---- parallel split degeneracies --------------------------------------------

TEST(Gemm, ParallelTallSkinnyAndShortWide) {
  // The old rows/threads split left trailing threads idle on tall-
  // skinny C and serialized short-wide C entirely; tile work-stealing
  // must both stay correct and split these shapes.
  util::Rng rng(47);
  const struct {
    std::size_t m, k, n;
  } cases[] = {{611, 13, 5}, {5, 13, 611}, {1024, 3, 3}, {2, 500, 2}};
  for (const auto& shape : cases) {
    const Matrix a = Matrix::random(shape.m, shape.k, rng);
    const Matrix b = Matrix::random(shape.k, shape.n, rng);
    Matrix expected(shape.m, shape.n, 0.0);
    gemm_naive(a.view(), b.view(), expected.view());
    for (const int threads : {2, 7, 64}) {
      Matrix c(shape.m, shape.n, 0.0);
      gemm_parallel(a.view(), b.view(), c.view(), threads);
      EXPECT_LT(Matrix::max_abs_diff(c, expected), 1e-10)
          << shape.m << "x" << shape.n << " threads=" << threads;
    }
  }
}

}  // namespace
}  // namespace hmxp::matrix
