// GEMM kernel tests: the tiled and parallel kernels must agree with the
// naive oracle on arbitrary (including degenerate) shapes, and all
// kernels must accumulate rather than overwrite.
#include <gtest/gtest.h>

#include <tuple>

#include "matrix/gemm.hpp"
#include "util/rng.hpp"

namespace hmxp::matrix {
namespace {

Matrix reference_product(const Matrix& a, const Matrix& b, const Matrix& c0) {
  Matrix c = c0;
  gemm_naive(a.view(), b.view(), c.view());
  return c;
}

class GemmShapes
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(GemmShapes, TiledMatchesNaive) {
  const auto [m, k, n] = GetParam();
  // Mix the shape into a seed in 64-bit unsigned arithmetic (the int
  // products overflow for the larger shapes, which UBSan rejects).
  util::Rng rng(static_cast<std::uint64_t>(m) * 73856093u ^
                static_cast<std::uint64_t>(k) * 19349663u ^
                static_cast<std::uint64_t>(n) * 83492791u);
  const Matrix a = Matrix::random(static_cast<std::size_t>(m),
                                  static_cast<std::size_t>(k), rng);
  const Matrix b = Matrix::random(static_cast<std::size_t>(k),
                                  static_cast<std::size_t>(n), rng);
  const Matrix c0 = Matrix::random(static_cast<std::size_t>(m),
                                   static_cast<std::size_t>(n), rng);
  const Matrix expected = reference_product(a, b, c0);

  Matrix tiled = c0;
  gemm_tiled(a.view(), b.view(), tiled.view());
  EXPECT_LT(Matrix::max_abs_diff(tiled, expected), 1e-11);

  Matrix parallel = c0;
  gemm_parallel(a.view(), b.view(), parallel.view(), 3);
  EXPECT_LT(Matrix::max_abs_diff(parallel, expected), 1e-11);
}

INSTANTIATE_TEST_SUITE_P(
    ShapeSweep, GemmShapes,
    ::testing::Values(std::make_tuple(1, 1, 1), std::make_tuple(1, 7, 1),
                      std::make_tuple(3, 1, 5), std::make_tuple(4, 4, 4),
                      std::make_tuple(5, 3, 2), std::make_tuple(16, 16, 16),
                      std::make_tuple(17, 13, 11), std::make_tuple(64, 64, 64),
                      std::make_tuple(65, 64, 63), std::make_tuple(80, 80, 80),
                      std::make_tuple(100, 128, 96),
                      std::make_tuple(33, 129, 65)));

TEST(Gemm, AccumulatesIntoC) {
  // C starts at identity * 10; product adds on top.
  const Matrix a = Matrix::identity(3);
  Matrix b(3, 3, 1.0);
  Matrix c(3, 3, 10.0);
  gemm_tiled(a.view(), b.view(), c.view());
  for (std::size_t i = 0; i < 3; ++i)
    for (std::size_t j = 0; j < 3; ++j)
      EXPECT_DOUBLE_EQ(c.at(i, j), 11.0);
}

TEST(Gemm, IdentityLeavesOperandIntact) {
  util::Rng rng(3);
  const Matrix b = Matrix::random(5, 4, rng);
  Matrix c(5, 4, 0.0);
  gemm_tiled(Matrix::identity(5).view(), b.view(), c.view());
  EXPECT_LT(Matrix::max_abs_diff(c, b), 1e-14);
}

TEST(Gemm, ViewsWithStride) {
  // Multiply windows of larger matrices: strides != cols.
  util::Rng rng(17);
  Matrix big_a = Matrix::random(10, 10, rng);
  Matrix big_b = Matrix::random(10, 10, rng);
  Matrix big_c(10, 10, 0.0);

  Matrix small_a(4, 3), small_b(3, 5), small_c(4, 5, 0.0);
  copy_into(big_a.window(2, 1, 4, 3), small_a.view());
  copy_into(big_b.window(0, 4, 3, 5), small_b.view());

  gemm_tiled(big_a.window(2, 1, 4, 3), big_b.window(0, 4, 3, 5),
             big_c.window(5, 5, 4, 5));
  gemm_naive(small_a.view(), small_b.view(), small_c.view());

  Matrix extracted(4, 5);
  copy_into(big_c.window(5, 5, 4, 5), extracted.view());
  EXPECT_LT(Matrix::max_abs_diff(extracted, small_c), 1e-12);
}

TEST(Gemm, ShapeMismatchThrows) {
  Matrix a(2, 3), b(4, 2), c(2, 2);
  EXPECT_THROW(gemm_tiled(a.view(), b.view(), c.view()),
               std::invalid_argument);
  Matrix b2(3, 2), c_bad(3, 2);
  EXPECT_THROW(gemm_tiled(a.view(), b2.view(), c_bad.view()),
               std::invalid_argument);
}

TEST(Gemm, ParallelThreadCountVariants) {
  util::Rng rng(23);
  const Matrix a = Matrix::random(37, 29, rng);
  const Matrix b = Matrix::random(29, 41, rng);
  Matrix expected(37, 41, 0.0);
  gemm_naive(a.view(), b.view(), expected.view());
  for (const int threads : {0, 1, 2, 7, 64}) {
    Matrix c(37, 41, 0.0);
    gemm_parallel(a.view(), b.view(), c.view(), threads);
    EXPECT_LT(Matrix::max_abs_diff(c, expected), 1e-11) << threads;
  }
}

TEST(Gemm, WholeMatrixConvenience) {
  util::Rng rng(31);
  const Matrix a = Matrix::random(6, 7, rng);
  const Matrix b = Matrix::random(7, 8, rng);
  Matrix c(6, 8, 0.0);
  Matrix expected = c;
  gemm(a, b, c);
  gemm_naive(a.view(), b.view(), expected.view());
  EXPECT_LT(Matrix::max_abs_diff(c, expected), 1e-12);
}

TEST(Gemm, FlopCount) {
  EXPECT_DOUBLE_EQ(gemm_flops(80, 80, 80), 2.0 * 80 * 80 * 80);
  EXPECT_DOUBLE_EQ(gemm_flops(0, 5, 5), 0.0);
}

}  // namespace
}  // namespace hmxp::matrix
